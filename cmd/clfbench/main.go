// Command clfbench regenerates Table I: the Page Classifier's runtime
// accuracy, precision, recall and F1 against ground-truth page lifetimes on
// every trace, plus the paper's two classifier ablations — truncating the
// feature sequence to length 1 (§V-C: accuracy drops by up to 9.2%, 4.0% on
// average) and deploying unquantized float weights (§IV: int8 quantization
// costs <1% accuracy).
//
// Usage:
//
//	clfbench [-dw 8] [-traces "#52,#326"] [-seqlen1] [-noquant]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/phftl/phftl/internal/core"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/workload"
)

func main() {
	driveWrites := flag.Int("dw", 8, "drive writes to replay per trace")
	tracesFlag := flag.String("traces", "", "comma-separated trace IDs (default: all 20)")
	seqlen1 := flag.Bool("seqlen1", false, "also run the history-truncation ablation (SeqLen=1)")
	noquant := flag.Bool("noquant", false, "also run the unquantized-deployment ablation")
	model := flag.String("model", "gru", "classifier architecture: gru, lstm or mlp (design-space ablation)")
	flag.Parse()

	profiles := workload.Profiles()
	if *tracesFlag != "" {
		var sel []workload.Profile
		for _, id := range strings.Split(*tracesFlag, ",") {
			p, ok := workload.ProfileByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown trace %q\n", id)
				os.Exit(1)
			}
			sel = append(sel, p)
		}
		profiles = sel
	}

	fmt.Printf("Table I: Page Classifier performance, %d drive writes per trace\n", *driveWrites)
	header := "trace    accuracy precision   recall       f1"
	if *seqlen1 {
		header += "   acc(seq=1)  Δ"
	}
	if *noquant {
		header += "   acc(float)  Δ"
	}
	fmt.Println(header)

	var sumAcc, sumPrec, sumRec, sumF1, sumAcc1, sumAccF float64
	for _, p := range profiles {
		baseOpts := core.DefaultOptions()
		baseOpts.Model = *model
		if *model == "lstm" {
			baseOpts.Hidden = 16 // h and c must share the 32-byte state slot
		}
		res, err := sim.RunProfile(p, sim.SchemePHFTL, *driveWrites, &baseOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		c := res.Confusion
		fmt.Printf("%-8s   %6.3f    %6.3f   %6.3f   %6.3f",
			p.ID, c.Accuracy(), c.Precision(), c.Recall(), c.F1())
		sumAcc += c.Accuracy()
		sumPrec += c.Precision()
		sumRec += c.Recall()
		sumF1 += c.F1()
		if *seqlen1 {
			opts := core.DefaultOptions()
			opts.SeqLen = 1
			r1, err := sim.RunProfile(p, sim.SchemePHFTL, *driveWrites, &opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			a1 := r1.Confusion.Accuracy()
			sumAcc1 += a1
			fmt.Printf("      %6.3f %+.3f", a1, a1-c.Accuracy())
		}
		if *noquant {
			opts := core.DefaultOptions()
			opts.Quantize = false
			rf, err := sim.RunProfile(p, sim.SchemePHFTL, *driveWrites, &opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			af := rf.Confusion.Accuracy()
			sumAccF += af
			fmt.Printf("      %6.3f %+.3f", af, af-c.Accuracy())
		}
		fmt.Println()
	}
	n := float64(len(profiles))
	fmt.Printf("%-8s   %6.3f    %6.3f   %6.3f   %6.3f", "Average", sumAcc/n, sumPrec/n, sumRec/n, sumF1/n)
	if *seqlen1 {
		fmt.Printf("      %6.3f %+.3f", sumAcc1/n, (sumAcc1-sumAcc)/n)
	}
	if *noquant {
		fmt.Printf("      %6.3f %+.3f", sumAccF/n, (sumAccF-sumAcc)/n)
	}
	fmt.Println()
	fmt.Println("(paper Table I averages: acc 0.909, prec 0.834, rec 0.921, F1 0.867)")
}
