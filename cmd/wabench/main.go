// Command wabench regenerates Figure 5: overall write amplification of
// Base, 2R, SepBIT and PHFTL across the 20 (synthetic stand-ins for the)
// Alibaba Cloud drive traces, plus the normalized average, and reports the
// metadata-cache hit rates the paper quotes in §V-B.
//
// Usage:
//
//	wabench [-dw 20] [-traces "#52,#144"] [-schemes "Base,PHFTL"] [-csv out.csv]
//	wabench -traces "#52" -telemetry out.jsonl -cpuprofile cpu.pb.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/workload"
)

func main() {
	driveWrites := flag.Int("dw", 20, "full drive writes to replay per trace (paper: 20)")
	tracesFlag := flag.String("traces", "", "comma-separated trace IDs (default: all 20)")
	schemesFlag := flag.String("schemes", "", "comma-separated schemes (default: Base,2R,SepBIT,PHFTL)")
	csvPath := flag.String("csv", "", "also write results as CSV to this file")
	telemetry := flag.String("telemetry", "", "write per-run trace events and samples as JSONL to this file (lines tagged trace/scheme)")
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var telemetryF *os.File
	if *telemetry != "" {
		telemetryF, err = os.Create(*telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	profiles := workload.Profiles()
	if *tracesFlag != "" {
		var sel []workload.Profile
		for _, id := range strings.Split(*tracesFlag, ",") {
			p, ok := workload.ProfileByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown trace %q\n", id)
				os.Exit(1)
			}
			sel = append(sel, p)
		}
		profiles = sel
	}
	schemes := sim.Schemes()
	if *schemesFlag != "" {
		schemes = nil
		for _, s := range strings.Split(*schemesFlag, ",") {
			schemes = append(schemes, sim.Scheme(strings.TrimSpace(s)))
		}
	}

	fmt.Printf("Figure 5: write amplification (GC data writes), %d drive writes per trace\n", *driveWrites)
	fmt.Println("note: WA columns exclude PHFTL's meta-page programs, whose share is inflated")
	fmt.Println("by the scaled-down superblocks; the 'meta' column and the CSV report them.")
	fmt.Printf("%-7s %-6s", "trace", "size")
	for _, s := range schemes {
		fmt.Printf(" %9s", s)
	}
	fmt.Printf("  %s\n", "phftl: meta%% hit-rate thr")

	var csv strings.Builder
	csv.WriteString("trace,size,scheme,wa,data_wa,user_writes,gc_writes,meta_writes,hit_rate\n")

	sums := make(map[sim.Scheme]float64)
	norms := make(map[sim.Scheme]float64) // normalized to Base per trace
	count := 0
	for _, p := range profiles {
		fmt.Printf("%-7s %-6s", p.ID, p.DriveClass)
		was := make(map[sim.Scheme]float64)
		var hitRate, thr, metaFrac float64
		for _, s := range schemes {
			geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
			in, err := sim.Build(s, geo, nil)
			if err != nil {
				fmt.Fprintf(os.Stderr, "\n%s on %s: %v\n", s, p.ID, err)
				os.Exit(1)
			}
			if telemetryF != nil {
				sim.Observe(in, sim.ObserveConfig{})
			}
			res, err := sim.RunOn(in, p, *driveWrites)
			if err != nil {
				fmt.Fprintf(os.Stderr, "\n%s on %s: %v\n", s, p.ID, err)
				os.Exit(1)
			}
			if telemetryF != nil {
				run := fmt.Sprintf("%s/%s", p.ID, s)
				if err := obs.WriteJSONL(telemetryF, run, in.Obs.Rec.Events(), in.Obs.Sampler.Series()); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			was[s] = res.DataWA
			fmt.Printf(" %8.1f%%", res.DataWA*100)
			if s == sim.SchemePHFTL {
				hitRate = res.MetaStats.HitRate()
				thr = res.Threshold
				metaFrac = float64(res.FTLStats.MetaPageWrites) / float64(res.FTLStats.FlashPageWrites())
			}
			fmt.Fprintf(&csv, "%s,%s,%s,%.4f,%.4f,%d,%d,%d,%.4f\n",
				p.ID, p.DriveClass, s, res.WA, res.DataWA,
				res.FTLStats.UserPageWrites, res.FTLStats.GCPageWrites,
				res.FTLStats.MetaPageWrites, hitRate)
		}
		fmt.Printf("   %4.2f%% %5.1f%% %7.0f\n", metaFrac*100, hitRate*100, thr)
		for _, s := range schemes {
			sums[s] += was[s]
			if was[sim.SchemeBase] > 0 {
				norms[s] += was[s] / was[sim.SchemeBase]
			}
		}
		count++
	}
	if count > 1 {
		fmt.Printf("%-7s %-6s", "AVG", "")
		for _, s := range schemes {
			fmt.Printf(" %8.1f%%", sums[s]/float64(count)*100)
		}
		fmt.Println()
		if _, ok := sums[sim.SchemeBase]; ok {
			fmt.Printf("%-7s %-6s", "NORM", "")
			for _, s := range schemes {
				fmt.Printf(" %9.3f", norms[s]/float64(count))
			}
			fmt.Println(" (normalized to Base, cf. Fig. 5 right)")
		}
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if telemetryF != nil {
		if err := telemetryF.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *telemetry)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
