// Command wabench regenerates Figure 5: overall write amplification of
// Base, 2R, SepBIT and PHFTL across the 20 (synthetic stand-ins for the)
// Alibaba Cloud drive traces, plus the normalized average, and reports the
// metadata-cache hit rates the paper quotes in §V-B.
//
// The trace×scheme cells are independent single-threaded simulations; they
// run on a worker pool (-parallel, default GOMAXPROCS) and are re-serialized
// in input order, so the table, CSV and merged telemetry are byte-identical
// at any parallelism.
//
// Usage:
//
//	wabench [-dw 20] [-traces "#52,#144"] [-schemes "Base,PHFTL"] [-parallel 8] [-csv out.csv]
//	wabench -traces "#52" -telemetry out.jsonl -cpuprofile cpu.pb.gz
//	wabench -dw 2 -traces "#52,#144" -schemes "Base,PHFTL" -telemetry-csv testdata/golden
//	wabench -dw 4 -traces "#52" -op-sweep "0.07,0.15,0.28"
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/phftl/phftl/internal/core"
	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/obs/httpd"
	"github.com/phftl/phftl/internal/obs/registry"
	"github.com/phftl/phftl/internal/runner"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/workload"
)

func main() {
	driveWrites := flag.Int("dw", 20, "full drive writes to replay per trace (paper: 20)")
	tracesFlag := flag.String("traces", "", "comma-separated trace IDs (default: all 20)")
	schemesFlag := flag.String("schemes", "", "comma-separated schemes (default: Base,2R,SepBIT,PHFTL)")
	parallel := flag.Int("parallel", 0, "trace×scheme cells to run concurrently (0 = GOMAXPROCS)")
	cellWorkers := flag.Int("cell-workers", 1, "intra-cell workers: pipeline trace decoding ahead of the FTL and parallelize GC copies and PHFTL retraining within each cell (1 = serial; results are byte-identical at any value)")
	csvPath := flag.String("csv", "", "also write results as CSV to this file")
	telemetry := flag.String("telemetry", "", "write per-run trace events and samples as JSONL to this file (lines tagged trace/scheme)")
	telemetryCSV := flag.String("telemetry-csv", "", "write each cell's sample time series as <trace>_<scheme>.csv into this directory (created if missing); the golden-curve harness consumes this format")
	ringCap := flag.Int("ring-cap", 0, "deprecated one-size alias: bound every per-cell per-kind event ring at this many events (0 = per-kind defaults: rare kinds lossless, hot kinds sampled); overflow drops oldest events with a stderr warning")
	opSweep := flag.String("op-sweep", "", "comma-separated overprovisioning ratios (e.g. \"0.07,0.15,0.28\"): replay each trace×scheme cell once per ratio and report WA vs OP instead of the Figure 5 table")
	listen := flag.String("listen", "", "serve live telemetry over HTTP on this address while the run executes (e.g. :9090 or 127.0.0.1:0): /metrics, /api/v1/status, /api/v1/cells, /api/v1/events, /debug/pprof; the bound URL is printed to stderr")
	wallDurations := flag.Bool("wall-durations", false, "record wall-clock durations (window_retrain duration_ns) into telemetry; off by default so default telemetry stays byte-identical across runs, hosts and worker counts")
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	flag.Parse()

	profiles, err := runner.ParseTraces(*tracesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	schemes, err := runner.ParseSchemes(*schemesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hasPHFTL := false
	for _, s := range schemes {
		if s == sim.SchemePHFTL {
			hasPHFTL = true
		}
	}

	var coreOpts *core.Options
	if *wallDurations {
		o := core.DefaultOptions()
		o.WallDurations = true
		coreOpts = &o
	}
	var reg *registry.Registry
	if *listen != "" {
		reg = registry.New()
		srv, err := httpd.Serve(*listen, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Stderr so stdout stays parseable; the smoke harness reads the
		// bound URL off this line. The server lives until process exit.
		fmt.Fprintf(os.Stderr, "telemetry: listening on %s\n", srv.URL())
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var telemetryF *os.File
	if *telemetry != "" {
		telemetryF, err = os.Create(*telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *telemetryCSV != "" {
		if err := os.MkdirAll(*telemetryCSV, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *opSweep != "" {
		ops, err := parseOPs(*opSweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *telemetryCSV != "" {
			fmt.Fprintln(os.Stderr, "-telemetry-csv is not supported with -op-sweep (cell file names do not encode the OP ratio)")
			os.Exit(1)
		}
		code := runOPSweep(profiles, schemes, ops, *driveWrites, *parallel, *cellWorkers, *csvPath, telemetryF, *ringCap, reg, coreOpts)
		if telemetryF != nil {
			if err := telemetryF.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				code = 1
			}
		}
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
		os.Exit(code)
	}

	byID := make(map[string]workload.Profile, len(profiles))
	cells := make([]runner.Cell, 0, len(profiles)*len(schemes))
	for _, p := range profiles {
		byID[p.ID] = p
		for _, s := range schemes {
			cells = append(cells, runner.Cell{
				Trace: p.ID, Scheme: s,
				TargetOps: uint64(*driveWrites) * uint64(p.ExportedPages),
			})
		}
	}
	// File sinks need the buffered events/samples carried back through the
	// runner; the live registry needs only the Observe bridge.
	sink := telemetryF != nil || *telemetryCSV != ""
	observe := sink || reg != nil
	run := func(c runner.Cell) (runner.Output, error) {
		p := byID[c.Trace]
		geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
		in, err := sim.Build(c.Scheme, geo, coreOpts)
		if err != nil {
			return runner.Output{}, err
		}
		in.SetCellWorkers(*cellWorkers)
		if observe {
			cfg := sim.ObserveConfig{RingCap: *ringCap}
			if reg != nil {
				cfg.Cell = reg.Cell(c.RunTag()) // pre-opened by runner.Run
			}
			sim.Observe(in, cfg)
		}
		res, err := sim.RunOn(in, p, *driveWrites)
		if err != nil {
			return runner.Output{}, err
		}
		out := runner.Output{Result: res}
		if sink {
			out.Events = in.Obs.Rec.Events()
			out.Samples = in.Obs.Sampler.Series()
			out.Dropped = in.Obs.Rec.Dropped()
		}
		return out, nil
	}
	opts := runner.Options{Parallel: *parallel, Progress: os.Stderr, Registry: reg}
	if telemetryF != nil {
		opts.Telemetry = telemetryF
	}
	outs, runErr := runner.Run(cells, run, opts)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
	}
	runner.WarnDropped(os.Stderr, outs)

	fmt.Printf("Figure 5: write amplification (GC data writes), %d drive writes per trace\n", *driveWrites)
	fmt.Println("note: WA columns exclude PHFTL's meta-page programs, whose share is inflated")
	fmt.Println("by the scaled-down superblocks; the 'meta' column and the CSV report them.")
	fmt.Printf("%-7s %-6s", "trace", "size")
	for _, s := range schemes {
		fmt.Printf(" %9s", s)
	}
	if hasPHFTL {
		fmt.Printf("  %s", "phftl: meta% hit-rate thr")
	}
	fmt.Println()

	var csv strings.Builder
	csv.WriteString(runner.CSVHeader)

	sums := make(map[sim.Scheme]float64)
	counts := make(map[sim.Scheme]int)
	norms := make(map[sim.Scheme]float64) // normalized to Base per trace
	normCounts := make(map[sim.Scheme]int)
	traceCount := 0
	for i, p := range profiles {
		fmt.Printf("%-7s %-6s", p.ID, p.DriveClass)
		was := make(map[sim.Scheme]float64)
		ok := make(map[sim.Scheme]bool)
		var hitRate, thr, metaFrac float64
		phftlOK := false
		for j, s := range schemes {
			out := outs[i*len(schemes)+j]
			if out.Err != nil {
				fmt.Printf(" %9s", "err")
				continue
			}
			res := out.Result
			was[s], ok[s] = res.DataWA, true
			fmt.Printf(" %8.1f%%", res.DataWA*100)
			if s == sim.SchemePHFTL {
				phftlOK = true
				hitRate = res.MetaStats.HitRate()
				thr = res.Threshold
				metaFrac = float64(res.FTLStats.MetaPageWrites) / float64(res.FTLStats.FlashPageWrites())
			}
			if err := runner.WriteCSVRow(&csv, p.DriveClass, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if phftlOK {
			fmt.Printf("   %4.2f%% %5.1f%% %7.0f", metaFrac*100, hitRate*100, thr)
		}
		fmt.Println()
		for _, s := range schemes {
			if !ok[s] {
				continue
			}
			sums[s] += was[s]
			counts[s]++
			if ok[sim.SchemeBase] && was[sim.SchemeBase] > 0 {
				norms[s] += was[s] / was[sim.SchemeBase]
				normCounts[s]++
			}
		}
		traceCount++
	}
	if traceCount > 1 {
		fmt.Printf("%-7s %-6s", "AVG", "")
		for _, s := range schemes {
			if counts[s] == 0 {
				fmt.Printf(" %9s", "-")
				continue
			}
			fmt.Printf(" %8.1f%%", sums[s]/float64(counts[s])*100)
		}
		fmt.Println()
		if counts[sim.SchemeBase] > 0 {
			fmt.Printf("%-7s %-6s", "NORM", "")
			for _, s := range schemes {
				if normCounts[s] == 0 {
					fmt.Printf(" %9s", "-")
					continue
				}
				fmt.Printf(" %9.3f", norms[s]/float64(normCounts[s]))
			}
			fmt.Println(" (normalized to Base, cf. Fig. 5 right)")
		}
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if telemetryF != nil {
		if err := telemetryF.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *telemetry)
	}
	if *telemetryCSV != "" {
		wrote := 0
		for _, out := range outs {
			if out.Err != nil || len(out.Samples) == 0 {
				continue
			}
			path := filepath.Join(*telemetryCSV, runner.CellCSVName(out.Cell))
			f, err := os.Create(path)
			if err == nil {
				err = obs.WriteSamplesCSV(f, out.Samples)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			wrote++
		}
		fmt.Printf("wrote %d sample CSVs to %s\n", wrote, *telemetryCSV)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if runErr != nil {
		os.Exit(1)
	}
}
