package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"github.com/phftl/phftl/internal/obs/httpd"
)

// TestWabenchSmokeChild is not a test: it is the re-exec target for
// TestHTTPSmoke, running the real wabench main with a live -listen server so
// the smoke scrape exercises the exact harness wiring (flag parsing, runner
// pre-registration, the stderr URL line).
func TestWabenchSmokeChild(t *testing.T) {
	if os.Getenv("WABENCH_SMOKE_CHILD") != "1" {
		t.Skip("re-exec helper, driven by TestHTTPSmoke")
	}
	os.Args = []string{
		"wabench",
		"-listen", "127.0.0.1:0",
		"-traces", "#52",
		"-schemes", "Base,PHFTL",
		"-dw", "2",
	}
	main()
}

// TestHTTPSmoke is the end-to-end telemetry check behind `make http-smoke`:
// start wabench with -listen on a small cell, read the bound URL off stderr,
// scrape /metrics (validated line by line against the exposition format) and
// /api/v1/cells + /api/v1/status while the run executes, and require the
// served ops figure to advance monotonically.
func TestHTTPSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a full wabench run")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, os.Args[0], "-test.run", "TestWabenchSmokeChild", "-test.v")
	cmd.Env = append(os.Environ(), "WABENCH_SMOKE_CHILD=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go io.Copy(io.Discard, stdout)

	// The harness prints "telemetry: listening on <URL>" to stderr before
	// the replay starts.
	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "telemetry: listening on "); ok {
				select {
				case urlCh <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	var base string
	select {
	case base = <-urlCh:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("no telemetry URL on stderr within 30s")
	}

	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) ([]byte, http.Header, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return body, resp.Header, err
	}

	// The server comes up before the runner pre-registers the fleet; wait
	// for the cells to appear so every validated scrape sees a populated
	// registry (an empty one renders an empty — hence invalid — exposition).
	for deadline := time.Now().Add(30 * time.Second); ; {
		body, _, err := get("/api/v1/cells")
		if err == nil {
			var cells httpd.CellsJSON
			if json.Unmarshal(body, &cells) == nil && len(cells.Cells) == 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("fleet never appeared on /api/v1/cells")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Scrape while the benchmark runs. The run takes long enough that at
	// least the first scrapes land mid-replay; every scrape must be a valid
	// exposition, and fleet ops must never go backwards.
	var lastOps uint64
	var scrapes int
	for {
		expo, hdr, err := get("/metrics")
		if err != nil {
			break // server gone: the run finished and the process exited
		}
		scrapes++
		if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Errorf("scrape %d: content type %q", scrapes, ct)
		}
		if err := httpd.CheckExposition(strings.NewReader(string(expo))); err != nil {
			t.Fatalf("scrape %d: malformed exposition: %v", scrapes, err)
		}

		cellsBody, _, err := get("/api/v1/cells")
		if err != nil {
			break
		}
		var cells httpd.CellsJSON
		if err := json.Unmarshal(cellsBody, &cells); err != nil {
			t.Fatalf("scrape %d: bad cells JSON: %v\n%s", scrapes, err, cellsBody)
		}
		if len(cells.Cells) != 2 {
			t.Fatalf("scrape %d: %d cells, want 2 (#52 x Base,PHFTL)", scrapes, len(cells.Cells))
		}
		for _, c := range cells.Cells {
			switch c.State {
			case "queued", "running", "done":
			default:
				t.Fatalf("scrape %d: cell %s in state %q", scrapes, c.Cell, c.State)
			}
		}

		statusBody, _, err := get("/api/v1/status")
		if err != nil {
			break
		}
		var st httpd.StatusJSON
		if err := json.Unmarshal(statusBody, &st); err != nil {
			t.Fatalf("scrape %d: bad status JSON: %v", scrapes, err)
		}
		if st.Ops < lastOps {
			t.Fatalf("scrape %d: fleet ops went backwards: %d -> %d", scrapes, lastOps, st.Ops)
		}
		lastOps = st.Ops
		time.Sleep(200 * time.Millisecond)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("wabench child failed: %v", err)
	}
	if scrapes == 0 {
		t.Fatal("benchmark exited before a single scrape landed")
	}
	t.Logf("%d scrapes, final fleet ops %d", scrapes, lastOps)
}
