package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/phftl/phftl/internal/core"
	"github.com/phftl/phftl/internal/obs/registry"
	"github.com/phftl/phftl/internal/runner"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/workload"
)

// parseOPs parses the -op-sweep ratio list.
func parseOPs(flagVal string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(flagVal, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -op-sweep ratio %q: %v", f, err)
		}
		if v <= 0 || v >= 1 {
			return nil, fmt.Errorf("-op-sweep ratio %v outside (0,1)", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// opCellInfo is the sweep bookkeeping each cell carries back through
// runner.Output.Extra.
type opCellInfo struct {
	spare float64 // effective spare factor of the built geometry
	pred  float64 // uniform-random greedy closed-form WA at that spare
}

// opSweepCSVHeader heads the -csv output in sweep mode.
const opSweepCSVHeader = "trace,scheme,op,spare_eff,wa,data_wa,user_writes,gc_writes\n"

// runOPSweep replays every trace×scheme cell once per overprovisioning ratio
// and prints WA vs OP per scheme, next to the closed-form prediction for the
// Base scheme (Frankie et al.'s TRIM/overprovisioning analysis; the
// uniform-random greedy approximation (1−Sf)/(2·Sf), stated in this repo's
// extra-flash-writes-per-user-write WA convention). Returns the process exit
// code.
func runOPSweep(profiles []workload.Profile, schemes []sim.Scheme, ops []float64,
	driveWrites, parallel, cellWorkers int, csvPath string, telemetry *os.File, ringCap int,
	reg *registry.Registry, coreOpts *core.Options) int {
	byID := make(map[string]workload.Profile, len(profiles))
	cells := make([]runner.Cell, 0, len(profiles)*len(ops)*len(schemes))
	for _, p := range profiles {
		byID[p.ID] = p
		for _, op := range ops {
			for _, s := range schemes {
				cells = append(cells, runner.Cell{
					Trace: p.ID, Scheme: s, OP: op,
					TargetOps: uint64(driveWrites) * uint64(p.ExportedPages),
				})
			}
		}
	}
	run := func(c runner.Cell) (runner.Output, error) {
		p := byID[c.Trace]
		geo := sim.GeometryForDriveOP(p.ExportedPages, p.PageSize, c.OP)
		in, err := sim.BuildOP(c.Scheme, geo, c.OP, coreOpts)
		if err != nil {
			return runner.Output{}, err
		}
		in.SetCellWorkers(cellWorkers)
		if telemetry != nil || reg != nil {
			cfg := sim.ObserveConfig{RingCap: ringCap}
			if reg != nil {
				cfg.Cell = reg.Cell(c.RunTag()) // pre-opened by runner.Run
			}
			sim.Observe(in, cfg)
		}
		res, err := sim.RunOn(in, p, driveWrites)
		if err != nil {
			return runner.Output{}, err
		}
		// Effective spare factor: the share of the device's data capacity
		// not occupied by the workload's footprint. It exceeds the nominal
		// ratio because superblock sizing quantizes capacity upward.
		totalData := float64(geo.Superblocks() * in.FTL.DataPagesPerSB())
		foot := p.ExportedPages
		if exp := in.FTL.ExportedPages(); exp < foot {
			foot = exp
		}
		sf := (totalData - float64(foot)) / totalData
		out := runner.Output{Result: res, Extra: opCellInfo{spare: sf, pred: (1 - sf) / (2 * sf)}}
		if telemetry != nil {
			out.Events = in.Obs.Rec.Events()
			out.Samples = in.Obs.Sampler.Series()
			out.Dropped = in.Obs.Rec.Dropped()
		}
		return out, nil
	}
	opts := runner.Options{Parallel: parallel, Progress: os.Stderr, Registry: reg}
	if telemetry != nil {
		opts.Telemetry = telemetry
	}
	outs, runErr := runner.Run(cells, run, opts)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
	}
	runner.WarnDropped(os.Stderr, outs)

	fmt.Printf("OP sweep: write amplification vs overprovisioning, %d drive writes per trace\n", driveWrites)
	fmt.Println("pred(Base) is the uniform-random greedy closed form (1-Sf)/(2Sf) at the")
	fmt.Println("effective spare factor Sf (repo WA convention: extra flash writes per user write).")
	var csv strings.Builder
	csv.WriteString(opSweepCSVHeader)
	idx := 0
	for _, p := range profiles {
		fmt.Printf("trace %s (%s)\n", p.ID, p.DriveClass)
		fmt.Printf("  %6s %7s", "op", "spare")
		for _, s := range schemes {
			fmt.Printf(" %9s", s)
		}
		fmt.Printf(" %11s\n", "pred(Base)")
		for _, op := range ops {
			var info opCellInfo
			row := make([]string, 0, len(schemes))
			for _, s := range schemes {
				out := outs[idx]
				idx++
				if out.Err != nil {
					row = append(row, fmt.Sprintf(" %9s", "err"))
					continue
				}
				res := out.Result
				info = out.Extra.(opCellInfo)
				row = append(row, fmt.Sprintf(" %8.1f%%", res.WA*100))
				fmt.Fprintf(&csv, "%s,%s,%g,%.4f,%.4f,%.4f,%d,%d\n",
					p.ID, s, op, info.spare, res.WA, res.DataWA,
					res.FTLStats.UserPageWrites, res.FTLStats.GCPageWrites)
			}
			fmt.Printf("  %6.3f %7.4f%s %10.1f%%\n", op, info.spare, strings.Join(row, ""), info.pred*100)
		}
	}
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	if runErr != nil {
		return 1
	}
	return 0
}
