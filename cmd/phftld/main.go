// Command phftld is the fleet service: a long-running daemon that accepts
// simulation cells over HTTP, runs them on a bounded worker pool, and serves
// live telemetry plus fleet-wide WA percentiles while they execute. It is the
// service-shaped counterpart to the batch harnesses (wabench et al.): instead
// of a fixed trace×scheme matrix decided at launch, cells arrive at runtime
// and survive restarts through a JSONL queue journal.
//
// Usage:
//
//	phftld serve [-listen :9090] [-workers 8] [-journal queue.jsonl]
//	             [-stagger 500ms] [-max-restarts 1] [-dw 2]
//
// Control plane (see internal/obs/httpd for the full endpoint list):
//
//	curl -X POST localhost:9090/api/v1/cells \
//	     -d '{"trace":"#52","scheme":"PHFTL","drive_writes":2}'
//	curl -X POST localhost:9090/api/v1/cells/%2352%2FPHFTL@j1/cancel
//	curl localhost:9090/api/v1/fleet
//
// SIGINT/SIGTERM shut down gracefully: running cells are interrupted without
// being journaled terminal, so the next phftld over the same journal resumes
// them alongside anything still queued.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/phftl/phftl/internal/fleet"
	"github.com/phftl/phftl/internal/obs/httpd"
	"github.com/phftl/phftl/internal/obs/registry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 1 || args[0] != "serve" {
		fmt.Fprintln(os.Stderr, "usage: phftld serve [flags]")
		return 2
	}
	fs := flag.NewFlagSet("phftld serve", flag.ExitOnError)
	listen := fs.String("listen", ":9090", "HTTP listen address (host:port; :0 picks a free port)")
	workers := fs.Int("workers", 0, "worker-pool size: cells running concurrently (0 = GOMAXPROCS)")
	journal := fs.String("journal", "", "JSONL queue journal: submissions and terminal states are appended here, and pending cells resume on restart (empty = no persistence)")
	stagger := fs.Duration("stagger", 0, "delay between consecutive cell dispatches (ramps a submission burst up gradually)")
	maxRestarts := fs.Int("max-restarts", 1, "times a failed cell is re-queued before being marked failed")
	defaultDW := fs.Int("dw", 1, "drive writes for submissions that omit drive_writes")
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}

	reg := registry.New()
	sup, err := fleet.New(fleet.Config{
		Workers:            *workers,
		Registry:           reg,
		JournalPath:        *journal,
		Stagger:            *stagger,
		MaxRestarts:        *maxRestarts,
		DefaultDriveWrites: *defaultDW,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv, err := httpd.ServeWith(*listen, reg, sup)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// Same stderr line as the batch harnesses: watop -http and the smoke
	// drivers read the bound URL off it.
	fmt.Fprintf(os.Stderr, "telemetry: listening on %s\n", srv.URL())
	if n := sup.Pending(); n > 0 {
		fmt.Fprintf(os.Stderr, "phftld: resuming %d pending cell(s) from %s\n", n, *journal)
	}
	sup.Start()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "phftld: shutting down")
	// Stop accepting HTTP work first, then interrupt the pool; bound the
	// whole farewell so a wedged cell cannot hold the process hostage.
	done := make(chan struct{})
	go func() {
		sup.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		fmt.Fprintln(os.Stderr, "phftld: shutdown timed out")
		_ = srv.Close()
		return 1
	}
	_ = srv.Close()
	return 0
}
