package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/phftl/phftl/internal/fleet"
	"github.com/phftl/phftl/internal/metrics"
	"github.com/phftl/phftl/internal/obs/httpd"
	"github.com/phftl/phftl/internal/obs/registry"
)

func postJSON(t *testing.T, urlStr, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(urlStr, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", urlStr, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestFleetSmoke is the end-to-end check behind `make fleet-smoke`: a live
// phftld-shaped service (real listener, real supervisor, -race) accepts four
// submissions over HTTP, cancels one, runs the rest to completion, serves
// fleet WA percentiles that match an offline recomputation from the per-cell
// results, and delivers every event-ring sequence exactly once through a
// limit-truncated drain.
func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full replays")
	}
	reg := registry.New()
	sup, err := fleet.New(fleet.Config{
		Workers:            2,
		Registry:           reg,
		JournalPath:        filepath.Join(t.TempDir(), "queue.jsonl"),
		DefaultDriveWrites: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Shutdown()
	srv, err := httpd.ServeWith("127.0.0.1:0", reg, sup)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sup.Start()

	// Submit four cells over HTTP; the last exists to be cancelled.
	specs := []string{
		`{"trace":"#52","scheme":"Base","drive_writes":1}`,
		`{"trace":"#52","scheme":"PHFTL","drive_writes":1}`,
		`{"trace":"#144","scheme":"Base","drive_writes":1}`,
		`{"trace":"#144","scheme":"PHFTL","drive_writes":1}`,
	}
	names := make([]string, len(specs))
	for i, spec := range specs {
		resp, body := postJSON(t, srv.URL()+"/api/v1/cells", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, body)
		}
		var sub httpd.SubmitJSON
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatal(err)
		}
		names[i] = sub.Cell
	}

	// Cancel the last submission through the control plane (path-escaped:
	// the name contains both '#' and '/').
	cancelURL := srv.URL() + "/api/v1/cells/" + url.PathEscape(names[3]) + "/cancel"
	resp, body := postJSON(t, cancelURL, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d: %s", resp.StatusCode, body)
	}

	done := make(chan struct{})
	go func() { sup.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(4 * time.Minute):
		t.Fatal("fleet did not drain")
	}

	// Lifecycle over HTTP: three done, one cancelled, none failed.
	resp, body = getBody(t, srv.URL()+"/api/v1/cells")
	var cellsDoc httpd.CellsJSON
	if err := json.Unmarshal(body, &cellsDoc); err != nil {
		t.Fatalf("decode cells: %v\n%s", err, body)
	}
	states := map[string]string{}
	for _, c := range cellsDoc.Cells {
		states[c.Cell] = c.State
	}
	for _, n := range names[:3] {
		if states[n] != "done" {
			t.Errorf("%s state = %q, want done", n, states[n])
		}
	}
	if states[names[3]] != "cancelled" {
		t.Errorf("%s state = %q, want cancelled", names[3], states[names[3]])
	}

	// Fleet percentiles match an offline recomputation: feed each completed
	// cell's end-of-run WA into the same fixed-bucket histogram the registry
	// uses and compare the served per-scheme final-WA quantiles exactly.
	resp, body = getBody(t, srv.URL()+"/api/v1/fleet")
	var fleetDoc httpd.FleetJSON
	if err := json.Unmarshal(body, &fleetDoc); err != nil {
		t.Fatalf("decode fleet: %v\n%s", err, body)
	}
	offline := map[string]*metrics.Histogram{}
	offlineMax := map[string]float64{}
	for _, n := range names[:3] {
		out, ok := sup.Output(n)
		if !ok || out.Err != nil {
			t.Fatalf("%s: output %v, ok=%v", n, out.Err, ok)
		}
		scheme := string(out.Cell.Scheme)
		h := offline[scheme]
		if h == nil {
			h = metrics.NewHistogram(60, 0.05)
			offline[scheme] = h
		}
		h.Add(out.Result.WA)
		if out.Result.WA > offlineMax[scheme] {
			offlineMax[scheme] = out.Result.WA
		}
	}
	for _, s := range fleetDoc.Schemes {
		h := offline[s.Scheme]
		if h == nil {
			if s.FinalWA.Count != 0 {
				t.Errorf("%s: served final count %d for scheme with no completed cells", s.Scheme, s.FinalWA.Count)
			}
			continue
		}
		if s.FinalWA.Count != h.Count() {
			t.Errorf("%s: final count %d, offline %d", s.Scheme, s.FinalWA.Count, h.Count())
			continue
		}
		for _, q := range []struct {
			q      float64
			served *float64
		}{{0.50, s.FinalWA.P50}, {0.90, s.FinalWA.P90}, {0.99, s.FinalWA.P99}} {
			if q.served == nil {
				t.Errorf("%s: q%.2f missing", s.Scheme, q.q)
				continue
			}
			if want := h.Quantile(q.q); *q.served != want {
				t.Errorf("%s: q%.2f = %v, offline recomputation %v", s.Scheme, q.q, *q.served, want)
			}
		}
		if s.FinalWA.Max == nil || *s.FinalWA.Max != offlineMax[s.Scheme] {
			t.Errorf("%s: max %v, offline %v", s.Scheme, s.FinalWA.Max, offlineMax[s.Scheme])
		}
	}

	// Event-drain exactness: page through the ring with a small limit,
	// resuming at each X-Next-Seq; every sequence in the retained range must
	// arrive exactly once, in order, with no holes.
	seen := map[uint64]bool{}
	var minSeq, maxSeq uint64
	since := uint64(0)
	for {
		resp, body = getBody(t, srv.URL()+"/api/v1/events?limit=100&since="+strconv.FormatUint(since, 10))
		next, err := strconv.ParseUint(resp.Header.Get("X-Next-Seq"), 10, 64)
		if err != nil {
			t.Fatalf("bad X-Next-Seq: %v", err)
		}
		if len(body) == 0 {
			break
		}
		for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
			var ev struct {
				Seq uint64 `json:"seq"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("decode %q: %v", line, err)
			}
			if seen[ev.Seq] {
				t.Fatalf("seq %d delivered twice", ev.Seq)
			}
			seen[ev.Seq] = true
			if minSeq == 0 || ev.Seq < minSeq {
				minSeq = ev.Seq
			}
			if ev.Seq > maxSeq {
				maxSeq = ev.Seq
			}
		}
		since = next
	}
	if len(seen) == 0 {
		t.Fatal("event drain returned nothing")
	}
	if want := maxSeq - minSeq + 1; uint64(len(seen)) != want {
		t.Fatalf("drain delivered %d seqs over range [%d,%d] (%d expected): events lost",
			len(seen), minSeq, maxSeq, want)
	}
}

func getBody(t *testing.T, urlStr string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(urlStr)
	if err != nil {
		t.Fatalf("GET %s: %v", urlStr, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", urlStr, resp.StatusCode, b)
	}
	return resp, b
}

// TestUsage pins the CLI skeleton: no subcommand is an error, not a panic.
func TestUsage(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Fatalf("run() = %d, want 2", code)
	}
	if code := run([]string{"nope"}); code != 2 {
		t.Fatalf("run(nope) = %d, want 2", code)
	}
}
