package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
BenchmarkWritePathSteadyState/PHFTL-4         	  100000	      1000 ns/op	      90 B/op	       1 allocs/op
BenchmarkWritePathSteadyState/PHFTL-4         	  100000	       950 ns/op	      88 B/op	       1 allocs/op
BenchmarkWritePathSteadyState/Base-4          	  100000	       400 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseFoldsRepeats(t *testing.T) {
	got, err := parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	ent := got["BenchmarkWritePathSteadyState/PHFTL"]
	if ent == nil {
		t.Fatal("missing folded PHFTL entry (GOMAXPROCS suffix not stripped?)")
	}
	if ent.NsPerOp != 950 {
		t.Errorf("ns/op = %v, want min of repeats 950", ent.NsPerOp)
	}
	if ent.BytesPerOp == nil || *ent.BytesPerOp != 90 {
		t.Errorf("B/op = %v, want max of repeats 90", ent.BytesPerOp)
	}
	if ent.AllocsPerOp == nil || *ent.AllocsPerOp != 1 {
		t.Errorf("allocs/op = %v, want 1", ent.AllocsPerOp)
	}
}

// TestRegressionsFlagsInjectedSlowdown is the compare-mode acceptance test:
// an injected ns/op regression beyond the limit must be reported, while
// in-limit drift, improvements and new benchmarks must not.
func TestRegressionsFlagsInjectedSlowdown(t *testing.T) {
	prev := map[string]*Entry{
		"BenchmarkA": {NsPerOp: 1000},
		"BenchmarkB": {NsPerOp: 1000},
		"BenchmarkC": {NsPerOp: 1000},
	}
	cur := map[string]*Entry{
		"BenchmarkA": {NsPerOp: 1250}, // +25%: over the 10% limit
		"BenchmarkB": {NsPerOp: 1050}, // +5%: within the limit
		"BenchmarkC": {NsPerOp: 800},  // improvement
		"BenchmarkD": {NsPerOp: 9999}, // new benchmark: no baseline
	}
	regs := regressions(cur, prev, 10)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkA") {
		t.Fatalf("regressions = %v, want exactly the BenchmarkA slowdown", regs)
	}
	if regs := regressions(cur, prev, 30); len(regs) != 0 {
		t.Fatalf("regressions at 30%% limit = %v, want none", regs)
	}
}
