// Command benchjson converts `go test -bench` output on stdin into a stable
// machine-readable snapshot: a JSON object mapping benchmark name to its
// ns/op, allocs/op and B/op. `make benchcmp` uses it to write dated
// BENCH_<date>.json files that successive PRs can diff.
//
// Repeated runs of the same benchmark (-count=N) are folded into one entry:
// ns/op keeps the minimum (the least-noisy estimate on a shared machine),
// allocation counts keep the maximum (they are deterministic in steady
// state, so any spread is itself a signal).
//
// With -against, the snapshot is additionally compared to a previous
// BENCH_<date>.json: any benchmark present in both whose ns/op regressed by
// more than -max-regress percent fails the run (exit 1), turning the dated
// snapshots into a CI perf gate.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./... | go run ./cmd/benchjson > BENCH.json
//	go test -bench . -benchmem -run '^$' ./... | go run ./cmd/benchjson -against BENCH_2026-08-06.json -max-regress 40 > /dev/null
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's folded measurements. AllocsPerOp and BytesPerOp
// are pointers so benchmarks run without -benchmem serialize as null rather
// than a fake 0.
type Entry struct {
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
}

// parse folds `go test -bench` result lines from r into per-benchmark
// entries (min ns/op, max allocs/op and B/op across repeats).
func parse(r io.Reader) (map[string]*Entry, error) {
	results := make(map[string]*Entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		// A result line is "BenchmarkName-P  iters  v1 unit1  v2 unit2 ...".
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the GOMAXPROCS suffix so snapshots compare across hosts.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ent := results[name]
		first := ent == nil
		if first {
			ent = &Entry{}
			results[name] = ent
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				if first || v < ent.NsPerOp {
					ent.NsPerOp = v
				}
			case "allocs/op":
				if ent.AllocsPerOp == nil || v > *ent.AllocsPerOp {
					ent.AllocsPerOp = ptr(v)
				}
			case "B/op":
				if ent.BytesPerOp == nil || v > *ent.BytesPerOp {
					ent.BytesPerOp = ptr(v)
				}
			}
		}
	}
	return results, sc.Err()
}

// regressions compares cur against prev and reports every benchmark present
// in both whose ns/op grew by more than maxRegressPct percent, sorted by
// name. Benchmarks only in one snapshot are ignored (new or retired).
func regressions(cur, prev map[string]*Entry, maxRegressPct float64) []string {
	var out []string
	for name, c := range cur {
		p, ok := prev[name]
		if !ok || p.NsPerOp <= 0 {
			continue
		}
		pct := (c.NsPerOp - p.NsPerOp) / p.NsPerOp * 100
		if pct > maxRegressPct {
			out = append(out, fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (+%.1f%% > %.0f%%)",
				name, p.NsPerOp, c.NsPerOp, pct, maxRegressPct))
		}
	}
	sort.Strings(out)
	return out
}

func main() {
	against := flag.String("against", "", "previous BENCH_<date>.json to compare against; ns/op regressions beyond -max-regress fail the run")
	maxRegress := flag.Float64("max-regress", 10, "allowed ns/op regression in percent when -against is set")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout) // map keys marshal sorted: stable diffs
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *against == "" {
		return
	}
	raw, err := os.ReadFile(*against)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	prev := make(map[string]*Entry)
	if err := json.Unmarshal(raw, &prev); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *against, err)
		os.Exit(1)
	}
	if regs := regressions(results, prev, *maxRegress); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d ns/op regression(s) vs %s:\n", len(regs), *against)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: ok, no ns/op regression beyond %.0f%% vs %s\n", *maxRegress, *against)
}

func ptr(v float64) *float64 { return &v }
