// Command benchjson converts `go test -bench` output on stdin into a stable
// machine-readable snapshot: a JSON object mapping benchmark name to its
// ns/op, allocs/op and B/op. `make benchcmp` uses it to write dated
// BENCH_<date>.json files that successive PRs can diff.
//
// Repeated runs of the same benchmark (-count=N) are folded into one entry:
// ns/op keeps the minimum (the least-noisy estimate on a shared machine),
// allocation counts keep the maximum (they are deterministic in steady
// state, so any spread is itself a signal).
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./... | go run ./cmd/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark's folded measurements. AllocsPerOp and BytesPerOp
// are pointers so benchmarks run without -benchmem serialize as null rather
// than a fake 0.
type Entry struct {
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
}

func main() {
	results := make(map[string]*Entry)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		// A result line is "BenchmarkName-P  iters  v1 unit1  v2 unit2 ...".
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the GOMAXPROCS suffix so snapshots compare across hosts.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ent := results[name]
		first := ent == nil
		if first {
			ent = &Entry{}
			results[name] = ent
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				if first || v < ent.NsPerOp {
					ent.NsPerOp = v
				}
			case "allocs/op":
				if ent.AllocsPerOp == nil || v > *ent.AllocsPerOp {
					ent.AllocsPerOp = ptr(v)
				}
			case "B/op":
				if ent.BytesPerOp == nil || v > *ent.BytesPerOp {
					ent.BytesPerOp = ptr(v)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout) // map keys marshal sorted: stable diffs
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func ptr(v float64) *float64 { return &v }
