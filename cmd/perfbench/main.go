// Command perfbench regenerates Figure 7: the impact of WA reduction on
// end-to-end I/O performance, replaying the paper's two representative
// 500 GB-class traces (#52, lowest WA; #144, highest WA) on the timing
// model. Phase 1 stress-loads the trace with 32 closed-loop workers and
// reports per-drive-write bandwidth; phase 2 replays a timed tail open-loop
// and reports the write-latency distribution.
//
// The trace×scheme cells run on a worker pool (-parallel, default
// GOMAXPROCS); outputs are re-serialized in input order so stdout and the
// merged telemetry are byte-identical at any parallelism.
//
// Usage:
//
//	perfbench [-dw 10] [-traces "#52,#144"] [-schemes "Base,PHFTL"] [-pages 8192] [-parallel 4]
//	perfbench -traces "#144" -telemetry out.jsonl -exectrace run.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/phftl/phftl/internal/core"
	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/obs/httpd"
	"github.com/phftl/phftl/internal/obs/registry"
	"github.com/phftl/phftl/internal/perfsim"
	"github.com/phftl/phftl/internal/runner"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/trace"
	"github.com/phftl/phftl/internal/workload"
)

// phaseOut is one cell's timing-model payload, carried through the runner
// as Output.Extra.
type phaseOut struct {
	bw    []perfsim.BandwidthPoint
	stats perfsim.LatencyStats
}

// displayName maps schemes to Figure 7's row labels.
func displayName(s sim.Scheme) string {
	switch s {
	case sim.SchemeBase:
		return "Stock"
	case sim.SchemePHFTL:
		return "PHFTL-hw"
	default:
		return string(s)
	}
}

func main() {
	driveWrites := flag.Int("dw", 10, "drive writes in phase 1 (paper: ~19, then 1 timed)")
	tracesFlag := flag.String("traces", "#52,#144", "trace IDs to replay")
	schemesFlag := flag.String("schemes", "Base,PHFTL", "comma-separated schemes to compare")
	parallel := flag.Int("parallel", 0, "trace×scheme cells to run concurrently (0 = GOMAXPROCS)")
	pagesOverride := flag.Int("pages", 8192, "override drive size in pages (0 = profile default); timing replay is slower than WA-only replay")
	iaPerPage := flag.Float64("iapp", 700, "phase-2 mean inter-arrival per written page, µs")
	telemetry := flag.String("telemetry", "", "write per-run trace events and samples as JSONL to this file (lines tagged trace/scheme)")
	ringCap := flag.Int("ring-cap", 0, "deprecated one-size alias: bound every per-cell per-kind event ring at this many events (0 = per-kind defaults: rare kinds lossless, hot kinds sampled); overflow drops oldest events with a stderr warning")
	listen := flag.String("listen", "", "serve live telemetry over HTTP on this address while the run executes (e.g. :9090 or 127.0.0.1:0): /metrics, /api/v1/status, /api/v1/cells, /api/v1/events, /debug/pprof; the bound URL is printed to stderr")
	wallDurations := flag.Bool("wall-durations", false, "record wall-clock durations (window_retrain duration_ns) into telemetry; off by default so default telemetry stays byte-identical across runs, hosts and worker counts")
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	flag.Parse()

	profiles, err := runner.ParseTraces(*tracesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	schemes, err := runner.ParseSchemes(*schemesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var coreOpts *core.Options
	if *wallDurations {
		o := core.DefaultOptions()
		o.WallDurations = true
		coreOpts = &o
	}
	var reg *registry.Registry
	if *listen != "" {
		reg = registry.New()
		srv, err := httpd.Serve(*listen, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry: listening on %s\n", srv.URL())
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var telemetryF *os.File
	if *telemetry != "" {
		telemetryF, err = os.Create(*telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// Adjust every profile up front: apply the size override and scale the
	// open-loop arrival rate to the profile's mean request size so every
	// trace presents the same page rate in phase 2.
	byID := make(map[string]workload.Profile, len(profiles))
	for i, p := range profiles {
		if *pagesOverride > 0 {
			p.ExportedPages = *pagesOverride
		}
		probe := p.NewGenerator()
		sample := probe.Records(4096)
		writeReqs := 0
		for _, r := range sample {
			if r.Op == trace.OpWrite {
				writeReqs++
			}
		}
		avgPages := float64(probe.PageWrites()) / float64(writeReqs)
		p.InterArrivalUS = *iaPerPage * avgPages
		profiles[i] = p
		byID[p.ID] = p
	}

	cells := make([]runner.Cell, 0, len(profiles)*len(schemes))
	for _, p := range profiles {
		for _, s := range schemes {
			cells = append(cells, runner.Cell{
				Trace: p.ID, Scheme: s,
				// Phase 1 load plus the phase 2 timed tail, in pages.
				TargetOps: uint64(*driveWrites)*uint64(p.ExportedPages) + uint64(p.ExportedPages/2),
			})
		}
	}
	sink := telemetryF != nil
	observe := sink || reg != nil
	run := func(c runner.Cell) (runner.Output, error) {
		p := byID[c.Trace]
		geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
		m, err := perfsim.NewMachine(c.Scheme, geo, perfsim.DefaultTiming(), coreOpts)
		if err != nil {
			return runner.Output{}, err
		}
		if observe {
			cfg := sim.ObserveConfig{RingCap: *ringCap}
			if reg != nil {
				cfg.Cell = reg.Cell(c.RunTag()) // pre-opened by runner.Run
			}
			m.Observe(sim.Observe(m.In, cfg))
		}
		gen := p.NewGenerator()
		load := gen.Records(*driveWrites * p.ExportedPages)
		bw, err := m.RunPhase1(load, p.PageSize, 32)
		if err != nil {
			return runner.Output{}, err
		}
		tail := gen.Records(p.ExportedPages / 2)
		stats, err := m.RunPhase2(tail, p.PageSize)
		if err != nil {
			return runner.Output{}, err
		}
		out := runner.Output{Extra: phaseOut{bw: bw, stats: stats}}
		if observe {
			m.In.Obs.Finish(m.In.FTL.Clock())
		}
		if sink {
			out.Events = m.In.Obs.Rec.Events()
			out.Samples = m.In.Obs.Sampler.Series()
			out.Dropped = m.In.Obs.Rec.Dropped()
		}
		return out, nil
	}
	opts := runner.Options{Parallel: *parallel, Progress: os.Stderr, Registry: reg}
	if telemetryF != nil {
		opts.Telemetry = telemetryF
	}
	outs, runErr := runner.Run(cells, run, opts)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
	}
	runner.WarnDropped(os.Stderr, outs)

	for i, p := range profiles {
		fmt.Printf("=== trace %s (%s, %d pages) ===\n", p.ID, p.DriveClass, p.ExportedPages)
		results := map[sim.Scheme]phaseOut{}
		okSchemes := make([]sim.Scheme, 0, len(schemes))
		for j, s := range schemes {
			out := outs[i*len(schemes)+j]
			if out.Err != nil {
				fmt.Printf("  %s: failed (see stderr)\n", displayName(s))
				continue
			}
			results[s] = out.Extra.(phaseOut)
			okSchemes = append(okSchemes, s)
		}
		if len(okSchemes) == 0 {
			continue
		}

		fmt.Println("phase 1: bandwidth per drive write (MB/s)")
		fmt.Printf("  %-8s", "dw")
		n := len(results[okSchemes[0]].bw)
		for _, s := range okSchemes[1:] {
			if m := len(results[s].bw); m < n {
				n = m
			}
		}
		for i := 0; i < n; i++ {
			fmt.Printf(" %6d", i+1)
		}
		fmt.Println()
		for _, s := range okSchemes {
			fmt.Printf("  %-8s", displayName(s))
			for i := 0; i < n; i++ {
				fmt.Printf(" %6.1f", results[s].bw[i].MBPerSec)
			}
			fmt.Println()
		}
		baseOK := false
		phftlOK := false
		for _, s := range okSchemes {
			baseOK = baseOK || s == sim.SchemeBase
			phftlOK = phftlOK || s == sim.SchemePHFTL
		}
		// n == 0 when phase 1 was too short for one full drive write.
		if baseOK && phftlOK && n > 0 {
			sb := results[sim.SchemeBase].bw[n-1].MBPerSec
			pb := results[sim.SchemePHFTL].bw[n-1].MBPerSec
			fmt.Printf("  last drive write: PHFTL-hw %+.1f%% vs stock\n", (pb/sb-1)*100)
		}

		fmt.Println("phase 2: write latency (ms)")
		fmt.Printf("  %-8s %8s %8s %8s %8s %8s %8s\n", "", "P50", "P90", "P99", "P99.5", "P99.9", "Avg")
		for _, s := range okSchemes {
			st := results[s].stats
			fmt.Printf("  %-8s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
				displayName(s), st.P50, st.P90, st.P99, st.P995, st.P999, st.Avg)
		}
		if baseOK && phftlOK {
			sa := results[sim.SchemeBase].stats.Avg
			pa := results[sim.SchemePHFTL].stats.Avg
			fmt.Printf("  average latency: PHFTL-hw %+.1f%% vs stock\n\n", (pa/sa-1)*100)
		} else {
			fmt.Println()
		}
	}
	if telemetryF != nil {
		if err := telemetryF.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *telemetry)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if runErr != nil {
		os.Exit(1)
	}
}
