// Command perfbench regenerates Figure 7: the impact of WA reduction on
// end-to-end I/O performance, replaying the paper's two representative
// 500 GB-class traces (#52, lowest WA; #144, highest WA) on the timing
// model. Phase 1 stress-loads the trace with 32 closed-loop workers and
// reports per-drive-write bandwidth; phase 2 replays a timed tail open-loop
// and reports the write-latency distribution.
//
// Usage:
//
//	perfbench [-dw 10] [-traces "#52,#144"] [-pages 8192]
//	perfbench -traces "#144" -telemetry out.jsonl -exectrace run.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/perfsim"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/trace"
	"github.com/phftl/phftl/internal/workload"
)

func main() {
	driveWrites := flag.Int("dw", 10, "drive writes in phase 1 (paper: ~19, then 1 timed)")
	tracesFlag := flag.String("traces", "#52,#144", "trace IDs to replay")
	pagesOverride := flag.Int("pages", 8192, "override drive size in pages (0 = profile default); timing replay is slower than WA-only replay")
	iaPerPage := flag.Float64("iapp", 700, "phase-2 mean inter-arrival per written page, µs")
	telemetry := flag.String("telemetry", "", "write per-run trace events and samples as JSONL to this file (lines tagged trace/scheme)")
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var telemetryF *os.File
	if *telemetry != "" {
		telemetryF, err = os.Create(*telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	for _, id := range strings.Split(*tracesFlag, ",") {
		p, ok := workload.ProfileByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown trace %q\n", id)
			os.Exit(1)
		}
		if *pagesOverride > 0 {
			p.ExportedPages = *pagesOverride
		}
		// Scale the open-loop arrival rate to the profile's mean request
		// size so every trace presents the same page rate in phase 2.
		probe := p.NewGenerator()
		sample := probe.Records(4096)
		writeReqs := 0
		for _, r := range sample {
			if r.Op == trace.OpWrite {
				writeReqs++
			}
		}
		avgPages := float64(probe.PageWrites()) / float64(writeReqs)
		p.InterArrivalUS = *iaPerPage * avgPages
		geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
		fmt.Printf("=== trace %s (%s, %d pages) ===\n", p.ID, p.DriveClass, p.ExportedPages)

		type phaseOut struct {
			bw    []perfsim.BandwidthPoint
			stats perfsim.LatencyStats
		}
		results := map[sim.Scheme]phaseOut{}
		for _, scheme := range []sim.Scheme{sim.SchemeBase, sim.SchemePHFTL} {
			m, err := perfsim.NewMachine(scheme, geo, perfsim.DefaultTiming(), nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if telemetryF != nil {
				m.Observe(sim.Observe(m.In, sim.ObserveConfig{}))
			}
			gen := p.NewGenerator()
			load := gen.Records(*driveWrites * p.ExportedPages)
			bw, err := m.RunPhase1(load, p.PageSize, 32)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			tail := gen.Records(p.ExportedPages / 2)
			stats, err := m.RunPhase2(tail, p.PageSize)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if telemetryF != nil {
				m.In.Obs.Finish(m.In.FTL.Clock())
				run := fmt.Sprintf("%s/%s", p.ID, scheme)
				if err := obs.WriteJSONL(telemetryF, run, m.In.Obs.Rec.Events(), m.In.Obs.Sampler.Series()); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			results[scheme] = phaseOut{bw: bw, stats: stats}
		}

		fmt.Println("phase 1: bandwidth per drive write (MB/s)")
		fmt.Printf("  %-8s", "dw")
		n := len(results[sim.SchemeBase].bw)
		if m := len(results[sim.SchemePHFTL].bw); m < n {
			n = m
		}
		for i := 0; i < n; i++ {
			fmt.Printf(" %6d", i+1)
		}
		fmt.Println()
		for _, scheme := range []sim.Scheme{sim.SchemeBase, sim.SchemePHFTL} {
			name := "Stock"
			if scheme == sim.SchemePHFTL {
				name = "PHFTL-hw"
			}
			fmt.Printf("  %-8s", name)
			for i := 0; i < n; i++ {
				fmt.Printf(" %6.1f", results[scheme].bw[i].MBPerSec)
			}
			fmt.Println()
		}
		sb := results[sim.SchemeBase].bw[n-1].MBPerSec
		pb := results[sim.SchemePHFTL].bw[n-1].MBPerSec
		fmt.Printf("  last drive write: PHFTL-hw %+.1f%% vs stock\n", (pb/sb-1)*100)

		fmt.Println("phase 2: write latency (ms)")
		fmt.Printf("  %-8s %8s %8s %8s %8s %8s %8s\n", "", "P50", "P90", "P99", "P99.5", "P99.9", "Avg")
		for _, scheme := range []sim.Scheme{sim.SchemeBase, sim.SchemePHFTL} {
			name := "Stock"
			if scheme == sim.SchemePHFTL {
				name = "PHFTL-hw"
			}
			s := results[scheme].stats
			fmt.Printf("  %-8s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
				name, s.P50, s.P90, s.P99, s.P995, s.P999, s.Avg)
		}
		sa := results[sim.SchemeBase].stats.Avg
		pa := results[sim.SchemePHFTL].stats.Avg
		fmt.Printf("  average latency: PHFTL-hw %+.1f%% vs stock\n\n", (pa/sa-1)*100)
	}
	if telemetryF != nil {
		if err := telemetryF.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *telemetry)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
