package main

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/obs/httpd"
	"github.com/phftl/phftl/internal/obs/registry"
)

// telemetryServer is an httptest server over a registry with one running
// PHFTL cell and one queued baseline — the shape watop -http polls.
func telemetryServer(t *testing.T) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg := registry.New()
	c := reg.OpenCell("#52/PHFTL", registry.CellMeta{Trace: "#52", Scheme: "PHFTL", TargetOps: 1000})
	c.SetState(registry.StateRunning)
	c.Record(obs.Event{Kind: obs.KindGCStart, Clock: 5, F0: 0.4})
	c.Record(obs.Event{Kind: obs.KindWindowRetrain, Clock: 7})
	c.PublishSample(obs.Sample{
		Clock:         400,
		IntervalWA:    1.25,
		CumWA:         1.5,
		FreeSB:        9,
		Threshold:     900,
		CacheHitRatio: 0.8,
		LatencyP50MS:  math.NaN(),
		LatencyP99MS:  math.NaN(),
		WearSkew:      math.NaN(),
		WearCoV:       math.NaN(),
	}, registry.FTLTotals{UserWrites: 400, GCWrites: 80})
	reg.OpenCell("#52/Base", registry.CellMeta{Trace: "#52", Scheme: "Base"})
	srv := httptest.NewServer(httpd.Handler(reg))
	t.Cleanup(srv.Close)
	return srv, reg
}

// TestHTTPPollerFoldsIntoModel pins the -http source against the model: one
// poll must land the picked cell's gauges as a sample and drain the event
// ring, and a second poll must resume at the cursor without double-counting.
func TestHTTPPollerFoldsIntoModel(t *testing.T) {
	srv, reg := telemetryServer(t)
	m := newModel("", 80)
	p := newHTTPPoller(srv.URL)
	if err := p.poll(m); err != nil {
		t.Fatal(err)
	}
	if m.clock != 400 || m.samples != 1 {
		t.Fatalf("sample not folded: clock %d, samples %d", m.clock, m.samples)
	}
	if m.events["gc_start"] != 1 || m.events["window_retrain"] != 1 {
		t.Fatalf("events not drained: %v", m.events)
	}
	if p.since != 2 {
		t.Fatalf("cursor = %d, want 2", p.since)
	}

	// New activity between polls: only the delta arrives.
	cell := reg.Cell("#52/PHFTL")
	cell.Record(obs.Event{Kind: obs.KindGCStart, Clock: 8})
	if err := p.poll(m); err != nil {
		t.Fatal(err)
	}
	if m.events["gc_start"] != 2 {
		t.Fatalf("resumed drain wrong: %v", m.events)
	}
	if m.samples != 2 {
		t.Fatalf("samples = %d after second poll", m.samples)
	}

	frame := m.frame()
	for _, want := range []string{"#52/PHFTL", "samples 2", "fleet", "running:1"} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
}

// TestHTTPPollerTruncatedBodyKeepsCursor is the regression for the client
// half of the cursor-loss bug: the poller used to advance its ?since= cursor
// from X-Next-Seq before reading the body, so a response truncated
// mid-transfer skipped every event it carried. The cursor must move only
// after the body is fully consumed.
func TestHTTPPollerTruncatedBodyKeepsCursor(t *testing.T) {
	reg := registry.New()
	c := reg.OpenCell("#52/PHFTL", registry.CellMeta{Trace: "#52", Scheme: "PHFTL"})
	c.SetState(registry.StateRunning)
	c.Record(obs.Event{Kind: obs.KindGCStart, Clock: 1})
	c.Record(obs.Event{Kind: obs.KindGCStart, Clock: 2})
	inner := httpd.Handler(reg)
	var truncate atomic.Bool
	truncate.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/events" && truncate.CompareAndSwap(true, false) {
			// Mimic a transfer cut mid-body: the headers (including the
			// cursor) arrive intact, but the promised body does not.
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("X-Next-Seq", "2")
			w.Header().Set("Content-Length", "1000")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(`{"seq":1,"ev":"gc_`))
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	m := newModel("", 80)
	p := newHTTPPoller(srv.URL)
	if err := p.poll(m); err == nil {
		t.Fatal("truncated poll reported success")
	}
	if p.since != 0 {
		t.Fatalf("cursor advanced to %d on a truncated body, want 0", p.since)
	}
	if err := p.poll(m); err != nil {
		t.Fatal(err)
	}
	if m.events["gc_start"] != 2 {
		t.Fatalf("retry delivered %d gc_start events, want 2 (events lost)", m.events["gc_start"])
	}
	if p.since != 2 {
		t.Fatalf("cursor = %d after clean drain, want 2", p.since)
	}
}

// TestPickCell pins the follow heuristic: -run filter wins, then the first
// running cell, then the first with progress, then the first registered.
func TestPickCell(t *testing.T) {
	cells := []httpd.CellJSON{
		{Cell: "a", State: "queued"},
		{Cell: "b", State: "queued", Ops: 10},
		{Cell: "c", State: "running"},
	}
	if got := pickCell(cells, "b"); got == nil || got.Cell != "b" {
		t.Fatalf("run filter: %+v", got)
	}
	if got := pickCell(cells, "missing"); got != nil {
		t.Fatalf("missing run filter matched %+v", got)
	}
	if got := pickCell(cells, ""); got == nil || got.Cell != "c" {
		t.Fatalf("running preference: %+v", got)
	}
	if got := pickCell(cells[:2], ""); got == nil || got.Cell != "b" {
		t.Fatalf("progress preference: %+v", got)
	}
	if got := pickCell(cells[:1], ""); got == nil || got.Cell != "a" {
		t.Fatalf("first fallback: %+v", got)
	}
	if got := pickCell(nil, ""); got != nil {
		t.Fatalf("empty cells matched %+v", got)
	}
}

// TestWatopHTTPOnce drives the full -http -once path end to end.
func TestWatopHTTPOnce(t *testing.T) {
	srv, _ := telemetryServer(t)
	var b strings.Builder
	if err := watopHTTP(srv.URL, true, 0, 80, "", &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "#52/PHFTL") {
		t.Fatalf("frame missing cell:\n%s", b.String())
	}
}

// TestWatopHTTPLiveExit pins the clean-shutdown path: after at least one
// successful poll, a vanished server means the benchmark finished — the
// dashboard renders a final frame and exits nil rather than erroring.
func TestWatopHTTPLiveExit(t *testing.T) {
	srv, _ := telemetryServer(t)
	go func() {
		time.Sleep(150 * time.Millisecond)
		srv.Close()
	}()
	var b strings.Builder
	if err := watopHTTP(srv.URL, false, 20*time.Millisecond, 80, "", &b); err != nil {
		t.Fatalf("live exit: %v", err)
	}
	if !strings.Contains(b.String(), "#52/PHFTL") {
		t.Fatal("no frames rendered before exit")
	}
}

// TestWatopHTTPUnreachable pins the immediate-failure path: a target that
// never answers is an error, not an empty dashboard.
func TestWatopHTTPUnreachable(t *testing.T) {
	var b strings.Builder
	if err := watopHTTP("127.0.0.1:1", false, time.Millisecond, 80, "", &b); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

// TestNewHTTPPollerNormalization pins the target spellings the flag accepts.
func TestNewHTTPPollerNormalization(t *testing.T) {
	cases := map[string]string{
		":9090":                  "http://localhost:9090",
		"host:9090":              "http://host:9090",
		"http://host:9090/":      "http://host:9090",
		"https://host:9090":      "https://host:9090",
		"http://host:9090/path/": "http://host:9090/path",
	}
	for in, want := range cases {
		if got := newHTTPPoller(in).base; got != want {
			t.Errorf("newHTTPPoller(%q).base = %q, want %q", in, got, want)
		}
	}
}
