package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/phftl/phftl/internal/obs/httpd"
)

// httpPoller drains a -listen telemetry server (wabench/perfbench/phftlsim)
// into the model: per poll it folds one synthesized sample line from
// /api/v1/cells and every new event from /api/v1/events (resuming at the
// ?since= cursor), so the dashboard state matches what a JSONL tail of the
// same run would have produced.
type httpPoller struct {
	base   string
	client *http.Client
	since  uint64
	polls  uint64
}

// newHTTPPoller normalizes the target ("host:port", ":9090" or a full URL)
// into a base URL.
func newHTTPPoller(target string) *httpPoller {
	base := strings.TrimRight(target, "/")
	if !strings.Contains(base, "://") {
		if strings.HasPrefix(base, ":") {
			base = "localhost" + base
		}
		base = "http://" + base
	}
	return &httpPoller{base: base, client: &http.Client{Timeout: 5 * time.Second}}
}

// sampleLine is the synthesized "sample" JSONL shape fed back through
// model.consume, so the HTTP source reuses the exact stream parser. Field
// names match the obs JSONL sink; omitted pointers reproduce its NaN-gauge
// omission.
type sampleLine struct {
	Ev         string   `json:"ev"`
	Run        string   `json:"run,omitempty"`
	Clock      uint64   `json:"clock"`
	IntervalWA *float64 `json:"interval_wa,omitempty"`
	CumWA      *float64 `json:"cum_wa,omitempty"`
	Threshold  *float64 `json:"threshold,omitempty"`
	CacheHit   *float64 `json:"cache_hit,omitempty"`
	WearSkew   *float64 `json:"wear_skew,omitempty"`
	WearCoV    *float64 `json:"wear_cov,omitempty"`
	FreeSB     *int     `json:"free_sb,omitempty"`
}

func (p *httpPoller) get(path string) (*http.Response, error) {
	resp, err := p.client.Get(p.base + path)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		resp.Body.Close()
		return nil, fmt.Errorf("%s: %s: %s", p.base+path, resp.Status, strings.TrimSpace(string(body)))
	}
	return resp, nil
}

// pickCell selects which cell the dashboard follows: the -run match when a
// filter is set, else the first running cell, else the first cell that has
// replayed anything, else the first registered.
func pickCell(cells []httpd.CellJSON, run string) *httpd.CellJSON {
	if len(cells) == 0 {
		return nil
	}
	if run != "" {
		for i := range cells {
			if cells[i].Cell == run {
				return &cells[i]
			}
		}
		return nil
	}
	for i := range cells {
		if cells[i].State == "running" {
			return &cells[i]
		}
	}
	for i := range cells {
		if cells[i].Ops > 0 {
			return &cells[i]
		}
	}
	return &cells[0]
}

// poll fetches one round of cells + events and folds it into the model.
func (p *httpPoller) poll(m *model) error {
	resp, err := p.get("/api/v1/cells")
	if err != nil {
		return err
	}
	var doc httpd.CellsJSON
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decode /api/v1/cells: %w", err)
	}
	if c := pickCell(doc.Cells, m.run); c != nil {
		sl := sampleLine{
			Ev: "sample", Run: c.Cell, Clock: c.Ops,
			IntervalWA: c.IntervalWA, CumWA: c.CumWA, Threshold: c.Threshold,
			CacheHit: c.CacheHit, WearSkew: c.WearSkew, WearCoV: c.WearCoV,
		}
		if c.FreeSB != nil {
			fsb := int(*c.FreeSB)
			sl.FreeSB = &fsb
		}
		raw, err := json.Marshal(sl)
		if err != nil {
			return err
		}
		m.consume(raw)
	}

	resp, err = p.get("/api/v1/events?since=" + strconv.FormatUint(p.since, 10))
	if err != nil {
		return err
	}
	// Parse the cursor up front but advance it only after the body has been
	// fully read and folded in. Advancing before the read loses events: a
	// response truncated mid-transfer (server restart, connection drop) would
	// move the cursor past lines this poll never delivered, and the next poll
	// would resume beyond them.
	next, nextErr := strconv.ParseUint(resp.Header.Get("X-Next-Seq"), 10, 64)
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(body), "\n") {
		if line != "" {
			m.consume([]byte(line))
		}
	}
	if nextErr == nil {
		p.since = next
	}

	p.fleet(m)
	p.polls++
	return nil
}

// fleet refreshes the fleet-summary pane from /api/v1/fleet. Best-effort: the
// endpoint exists on every server (it is part of the telemetry mux), but a
// transient error just leaves the previous pane in place rather than failing
// the poll.
func (p *httpPoller) fleet(m *model) {
	resp, err := p.get("/api/v1/fleet")
	if err != nil {
		return
	}
	var doc httpd.FleetJSON
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		return
	}
	m.setFleet(&doc)
}

// watopHTTP drives the dashboard off an HTTP telemetry server instead of a
// JSONL stream. In live mode the loop ends cleanly when the server goes away
// after at least one successful poll — the benchmark finished and exited —
// rendering the final frame first; an immediately unreachable server is an
// error.
func watopHTTP(target string, once bool, refresh time.Duration, width int, run string, w io.Writer) error {
	m := newModel(run, width)
	p := newHTTPPoller(target)
	if once {
		if err := p.poll(m); err != nil {
			return err
		}
		fmt.Fprint(w, m.frame())
		return nil
	}
	for {
		if err := p.poll(m); err != nil {
			if p.polls == 0 {
				return err
			}
			fmt.Fprint(w, "\x1b[2J\x1b[H", m.frame())
			return nil
		}
		fmt.Fprint(w, "\x1b[2J\x1b[H", m.frame())
		time.Sleep(refresh)
	}
}
