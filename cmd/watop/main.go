// Command watop is a live terminal dashboard over a PHFTL telemetry JSONL
// stream (phftlsim/wabench -telemetry): sparklines for interval WA,
// threshold, cache-hit and wear-skew, plus per-die wear bars fed by erase
// events. It tails a file (following appends, like tail -f), reads stdin, or
// polls a harness's -listen HTTP telemetry server:
//
//	phftlsim -trace '#52' -telemetry /dev/stdout | watop
//	watop -f run.jsonl            # follow a file another process writes
//	watop -once -f run.jsonl      # render one frame of what's there and exit
//	watop -http :9090             # poll a wabench/phftlsim -listen server
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

func main() {
	var (
		file    = flag.String("f", "", "telemetry JSONL file to tail (default: read stdin)")
		httpSrc = flag.String("http", "", "poll a -listen telemetry server (URL, host:port or :port) instead of reading a JSONL stream; /api/v1/cells feeds the gauges and /api/v1/events the event rows")
		once    = flag.Bool("once", false, "consume what is available, render a single frame, exit")
		refresh = flag.Duration("refresh", 500*time.Millisecond, "frame interval in live mode")
		width   = flag.Int("width", 60, "sparkline/bar width in cells")
		run     = flag.String("run", "", "only show lines tagged with this run id (with -http: follow this cell)")
	)
	flag.Parse()
	if flag.NArg() > 0 && *file == "" {
		*file = flag.Arg(0)
	}
	var err error
	if *httpSrc != "" {
		err = watopHTTP(*httpSrc, *once, *refresh, *width, *run, os.Stdout)
	} else {
		err = watop(*file, *once, *refresh, *width, *run)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "watop:", err)
		os.Exit(1)
	}
}

func watop(file string, once bool, refresh time.Duration, width int, run string) error {
	m := newModel(run, width)
	var r io.Reader = os.Stdin
	follow := false // a file is followed tail -f style; a pipe ends at EOF
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
		follow = true
	}
	if once {
		drainOnce(m, bufio.NewReader(r))
		fmt.Print(m.frame())
		return nil
	}
	return live(m, bufio.NewReader(r), follow, refresh, os.Stdout)
}

// drainOnce consumes every line currently available, including a trailing
// line without a newline (the stream may end mid-append).
func drainOnce(m *model, br *bufio.Reader) {
	for {
		line, err := br.ReadBytes('\n')
		if n := len(line); n > 0 {
			if line[n-1] == '\n' {
				line = line[:n-1]
			}
			m.consume(line)
		}
		if err != nil {
			return
		}
	}
}

// live renders a frame every refresh interval while a reader goroutine feeds
// lines in. A followed file is re-polled after EOF (tail -f); a pipe renders
// its final frame and exits when the writer closes it. Frames are drawn with
// an ANSI clear-home so the dashboard redraws in place.
func live(m *model, br *bufio.Reader, follow bool, refresh time.Duration, w io.Writer) error {
	lines := make(chan []byte, 1024)
	done := make(chan error, 1)
	go func() {
		for {
			line, err := br.ReadBytes('\n')
			if n := len(line); n > 0 && line[n-1] == '\n' {
				buf := make([]byte, n-1)
				copy(buf, line[:n-1])
				lines <- buf
			}
			switch {
			case err == io.EOF && follow:
				time.Sleep(refresh / 2) // wait for the writer to append more
			case err != nil:
				if err == io.EOF {
					err = nil // closed pipe: clean end of stream
				}
				done <- err
				return
			}
		}
	}()
	draw := func() { fmt.Fprint(w, "\x1b[2J\x1b[H", m.frame()) }
	tick := time.NewTicker(refresh)
	defer tick.Stop()
	for {
		select {
		case err := <-done:
			for { // fold in anything still queued before the last frame
				select {
				case l := <-lines:
					m.consume(l)
				default:
					draw()
					return err
				}
			}
		case l := <-lines:
			m.consume(l)
		case <-tick.C:
			draw()
		}
	}
}
