package main

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"github.com/phftl/phftl/internal/obs/httpd"
	"github.com/phftl/phftl/internal/timeseries"
)

// line is the loose shape of one telemetry JSONL line. Gauge fields are
// pointers so an omitted field (a NaN gauge at the emitter) stays
// distinguishable from a recorded zero. Unknown fields are ignored, so
// watop keeps working when the stream grows new columns.
type line struct {
	Ev         string   `json:"ev"`
	Run        string   `json:"run"`
	Clock      uint64   `json:"clock"`
	IntervalWA *float64 `json:"interval_wa"`
	CumWA      *float64 `json:"cum_wa"`
	Threshold  *float64 `json:"threshold"`
	CacheHit   *float64 `json:"cache_hit"`
	WearSkew   *float64 `json:"wear_skew"`
	WearCoV    *float64 `json:"wear_cov"`
	FreeSB     *int     `json:"free_sb"`
	Die        *int     `json:"die"`
	EraseCount *int     `json:"erase_count"`
}

// model accumulates a telemetry stream into the state one frame renders
// from: rolling gauge windows, per-die erase totals, and event counts.
type model struct {
	run   string // filter: when set, lines tagged with other runs are skipped
	width int

	lines   uint64 // parsed lines (post filter)
	badLine uint64 // unparsable lines (skipped; a tail can cut a line mid-byte)
	clock   uint64
	runSeen string

	intervalWA *timeseries.Ring
	threshold  *timeseries.Ring
	cacheHit   *timeseries.Ring
	wearSkew   *timeseries.Ring

	lastCumWA, lastWearCoV float64
	freeSB                 int
	samples                uint64

	dieErases  []uint64 // grows to the highest die index seen
	events     map[string]uint64
	hasCumWA   bool
	hasWearCoV bool

	// fleet is the latest /api/v1/fleet document (HTTP mode only; nil until
	// the first successful fetch keeps the pane out of JSONL-driven frames).
	fleet *httpd.FleetJSON
}

// setFleet installs the fleet-summary document rendered as the fleet pane.
func (m *model) setFleet(f *httpd.FleetJSON) { m.fleet = f }

func newModel(run string, width int) *model {
	if width < 16 {
		width = 16
	}
	return &model{
		run:        run,
		width:      width,
		intervalWA: timeseries.NewRing(width),
		threshold:  timeseries.NewRing(width),
		cacheHit:   timeseries.NewRing(width),
		wearSkew:   timeseries.NewRing(width),
		events:     map[string]uint64{},
	}
}

// consume folds one raw JSONL line into the model. Blank and unparsable
// lines are counted and skipped, never fatal: a live tail regularly sees a
// final line that is still being written.
func (m *model) consume(raw []byte) {
	if len(raw) == 0 {
		return
	}
	var l line
	if err := json.Unmarshal(raw, &l); err != nil || l.Ev == "" {
		m.badLine++
		return
	}
	if m.run != "" && l.Run != m.run {
		return
	}
	m.lines++
	if l.Run != "" {
		m.runSeen = l.Run
	}
	if l.Clock > m.clock {
		m.clock = l.Clock
	}
	switch l.Ev {
	case "sample":
		m.samples++
		if l.IntervalWA != nil {
			m.intervalWA.Push(*l.IntervalWA)
		}
		if l.Threshold != nil {
			m.threshold.Push(*l.Threshold)
		}
		if l.CacheHit != nil {
			m.cacheHit.Push(*l.CacheHit)
		}
		if l.WearSkew != nil {
			m.wearSkew.Push(*l.WearSkew)
		}
		if l.CumWA != nil {
			m.lastCumWA, m.hasCumWA = *l.CumWA, true
		}
		if l.WearCoV != nil {
			m.lastWearCoV, m.hasWearCoV = *l.WearCoV, true
		}
		if l.FreeSB != nil {
			m.freeSB = *l.FreeSB
		}
	case "erase":
		if l.Die != nil && *l.Die >= 0 {
			for len(m.dieErases) <= *l.Die {
				m.dieErases = append(m.dieErases, 0)
			}
			m.dieErases[*l.Die]++
		}
		m.events[l.Ev]++
	default:
		m.events[l.Ev]++
	}
}

// distCells renders one WA distribution as " p50/p90/p99/max (n)", or " -"
// when the distribution is empty (quantiles omitted on the wire).
func distCells(d httpd.DistJSON) string {
	if d.Count == 0 || d.P50 == nil || d.P90 == nil || d.P99 == nil || d.Max == nil {
		return " -"
	}
	return fmt.Sprintf(" %.2f/%.2f/%.2f/%.2f (%d)", *d.P50, *d.P90, *d.P99, *d.Max, d.Count)
}

// gaugeRow renders one sparkline row: label, strip, current value.
func (m *model) gaugeRow(b *strings.Builder, label string, r *timeseries.Ring, format string) {
	fmt.Fprintf(b, "  %-12s %s  ", label, timeseries.Sparkline(r.Values(), m.width))
	if r.Len() == 0 {
		b.WriteString("-\n")
		return
	}
	fmt.Fprintf(b, format+"\n", r.Last())
}

// frame renders the dashboard as one plain-text block (no terminal control;
// the caller owns screen clearing).
func (m *model) frame() string {
	var b strings.Builder
	b.WriteString("watop — PHFTL live telemetry")
	if m.runSeen != "" {
		fmt.Fprintf(&b, " [run %s]", m.runSeen)
	}
	fmt.Fprintf(&b, "\n  clock %d  lines %d  samples %d", m.clock, m.lines, m.samples)
	if m.hasCumWA {
		fmt.Fprintf(&b, "  cum-wa %.1f%%", m.lastCumWA*100)
	}
	if m.freeSB > 0 {
		fmt.Fprintf(&b, "  free-sb %d", m.freeSB)
	}
	if m.badLine > 0 {
		fmt.Fprintf(&b, "  (%d unparsable)", m.badLine)
	}
	b.WriteString("\n\n")
	m.gaugeRow(&b, "interval-wa", m.intervalWA, "%.3f")
	m.gaugeRow(&b, "threshold", m.threshold, "%.0f")
	m.gaugeRow(&b, "cache-hit", m.cacheHit, "%.3f")
	m.gaugeRow(&b, "wear-skew", m.wearSkew, "%.3f")
	if m.hasWearCoV {
		fmt.Fprintf(&b, "  %-12s %*s  %.3f\n", "wear-cov", m.width, "", m.lastWearCoV)
	}
	if len(m.dieErases) > 0 {
		b.WriteString("\n  per-die erases\n")
		maxE := uint64(0)
		for _, e := range m.dieErases {
			if e > maxE {
				maxE = e
			}
		}
		for die, e := range m.dieErases {
			fmt.Fprintf(&b, "    die %-2d |%s| %d\n", die,
				timeseries.Bar(float64(e), float64(maxE), m.width), e)
		}
	}
	if f := m.fleet; f != nil {
		b.WriteString("\n  fleet ")
		for _, st := range []string{"queued", "running", "done", "failed", "cancelled"} {
			if n := f.Cells[st]; n > 0 {
				fmt.Fprintf(&b, " %s:%d", st, n)
			}
		}
		fmt.Fprintf(&b, "  %.0f ops/s\n", f.OpsPerSec)
		for _, s := range f.Schemes {
			fmt.Fprintf(&b, "    %-8s wa%s  final%s\n",
				s.Scheme, distCells(s.IntervalWA), distCells(s.FinalWA))
		}
	}
	if len(m.events) > 0 {
		b.WriteString("\n  events ")
		kinds := make([]string, 0, len(m.events))
		for k := range m.events {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for i, k := range kinds {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%s:%d", k, m.events[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}
