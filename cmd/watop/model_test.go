package main

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

const testStream = `{"ev":"sb_open","run":"r1","clock":1,"sb":0,"stream":0,"gc_class":-1,"free_sb":9}
{"ev":"sample","run":"r1","clock":64,"interval_wa":0.1,"cum_wa":0.1,"free_sb":9,"threshold":500,"cache_hit":0.9,"wear_skew":1.1,"wear_cov":0.2,"open_fill":[0.5]}
{"ev":"erase","run":"r1","clock":70,"die":0,"block":3,"erase_count":1}
{"ev":"erase","run":"r1","clock":70,"die":1,"block":3,"erase_count":1}
{"ev":"erase","run":"r1","clock":90,"die":1,"block":4,"erase_count":1}
{"ev":"sample","run":"r1","clock":128,"interval_wa":0.3,"cum_wa":0.2,"free_sb":8,"threshold":520,"cache_hit":0.95,"wear_skew":1.4,"wear_cov":0.3,"open_fill":[0.7]}
`

func feed(m *model, stream string) {
	for _, l := range strings.Split(strings.TrimSpace(stream), "\n") {
		m.consume([]byte(l))
	}
}

func TestModelAccumulatesStream(t *testing.T) {
	m := newModel("", 20)
	feed(m, testStream)
	if m.lines != 6 || m.badLine != 0 {
		t.Fatalf("lines %d bad %d", m.lines, m.badLine)
	}
	if m.samples != 2 || m.clock != 128 {
		t.Fatalf("samples %d clock %d", m.samples, m.clock)
	}
	if m.intervalWA.Len() != 2 || m.intervalWA.Last() != 0.3 {
		t.Fatalf("intervalWA ring: len %d last %v", m.intervalWA.Len(), m.intervalWA.Last())
	}
	if m.threshold.Last() != 520 || m.cacheHit.Last() != 0.95 || m.wearSkew.Last() != 1.4 {
		t.Fatalf("gauges: thr %v hit %v skew %v", m.threshold.Last(), m.cacheHit.Last(), m.wearSkew.Last())
	}
	if len(m.dieErases) != 2 || m.dieErases[0] != 1 || m.dieErases[1] != 2 {
		t.Fatalf("dieErases = %v", m.dieErases)
	}
	if m.events["erase"] != 3 || m.events["sb_open"] != 1 {
		t.Fatalf("events = %v", m.events)
	}
	if m.freeSB != 8 || m.lastCumWA != 0.2 || m.lastWearCoV != 0.3 {
		t.Fatalf("gauges: freeSB %d cumWA %v cov %v", m.freeSB, m.lastCumWA, m.lastWearCoV)
	}
}

func TestModelRunFilter(t *testing.T) {
	m := newModel("other", 20)
	feed(m, testStream)
	if m.lines != 0 || m.samples != 0 {
		t.Fatalf("filter leaked: lines %d samples %d", m.lines, m.samples)
	}
}

func TestModelToleratesGarbage(t *testing.T) {
	m := newModel("", 20)
	m.consume([]byte(`{"ev":"sample","clock":1,"interval_`)) // torn tail line
	m.consume([]byte(`not json at all`))
	m.consume([]byte(``))
	m.consume([]byte(`{"clock":5}`)) // missing ev
	if m.badLine != 3 || m.lines != 0 {
		t.Fatalf("badLine %d lines %d", m.badLine, m.lines)
	}
	// A frame still renders.
	if f := m.frame(); !strings.Contains(f, "3 unparsable") {
		t.Fatalf("frame missing unparsable note:\n%s", f)
	}
}

// Omitted gauge fields (NaN at the emitter) must not poison the rings: a
// baseline stream without cache_hit/wear_skew keeps those rows empty.
func TestModelOmittedGauges(t *testing.T) {
	m := newModel("", 20)
	m.consume([]byte(`{"ev":"sample","clock":64,"interval_wa":0.5,"cum_wa":0.5,"free_sb":4,"threshold":0,"open_fill":[]}`))
	if m.cacheHit.Len() != 0 || m.wearSkew.Len() != 0 {
		t.Fatalf("omitted gauges landed in rings: hit %d skew %d", m.cacheHit.Len(), m.wearSkew.Len())
	}
	f := m.frame()
	if !strings.Contains(f, "cache-hit") {
		t.Fatalf("frame dropped the gauge row:\n%s", f)
	}
}

func TestFrameRendersDashboard(t *testing.T) {
	m := newModel("", 20)
	feed(m, testStream)
	f := m.frame()
	for _, want := range []string{
		"watop", "[run r1]", "clock 128",
		"interval-wa", "threshold", "cache-hit", "wear-skew", "wear-cov",
		"per-die erases", "die 0", "die 1",
		"erase:3", "sb_open:1",
	} {
		if !strings.Contains(f, want) {
			t.Fatalf("frame missing %q:\n%s", want, f)
		}
	}
	// Die 1 took more erases than die 0; its bar must be at least as full.
	var bar0, bar1 string
	for _, l := range strings.Split(f, "\n") {
		if strings.Contains(l, "die 0") {
			bar0 = l
		}
		if strings.Contains(l, "die 1") {
			bar1 = l
		}
	}
	if strings.Count(bar1, "█") < strings.Count(bar0, "█") {
		t.Fatalf("die bars out of proportion:\n%s\n%s", bar0, bar1)
	}
}

func TestDrainOnceHandlesMissingTrailingNewline(t *testing.T) {
	m := newModel("", 20)
	stream := strings.TrimSuffix(testStream, "\n") // last line unterminated
	drainOnce(m, bufio.NewReader(strings.NewReader(stream)))
	if m.lines != 6 {
		t.Fatalf("lines = %d, want 6 (unterminated tail line consumed)", m.lines)
	}
}

// live on a closing pipe must fold every line in, draw a final frame and
// return cleanly — the watop-smoke make target depends on this exit path.
func TestLiveExitsOnPipeEOF(t *testing.T) {
	m := newModel("", 20)
	var out bytes.Buffer
	pr, pw := io.Pipe()
	go func() {
		pw.Write([]byte(testStream))
		pw.Close()
	}()
	errc := make(chan error, 1)
	go func() { errc <- live(m, bufio.NewReader(pr), false, 10*time.Millisecond, &out) }()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("live returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live did not exit on pipe EOF")
	}
	if m.lines != 6 {
		t.Fatalf("lines = %d, want 6", m.lines)
	}
	if !strings.Contains(out.String(), "clock 128") {
		t.Fatalf("final frame missing:\n%s", out.String())
	}
}
