// Command wadiff diffs interval-WA sample curves (the cmd/wabench and
// cmd/phftlsim -telemetry-csv format) against golden baselines: it aligns
// the two series on the virtual clock and compares the behavioural columns
// (interval_wa, cum_wa, threshold, cache_hit — see internal/golden for why
// exactly these) point by point under per-column absolute+relative
// tolerances, reporting the first divergence and the max deviation per
// column.
//
// Usage:
//
//	wadiff golden.csv candidate.csv           compare two files
//	wadiff testdata/golden /tmp/regen         compare directories pairwise
//
// In directory mode every *.csv in the golden directory is compared against
// the file of the same name in the candidate directory; a file present on
// only one side is a divergence (regenerate with `make golden` after an
// intentional behavioural change).
//
// Exit status: 0 when every comparison is within tolerance, 1 on any
// divergence (with a per-column report on stdout), 2 on usage or I/O
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/phftl/phftl/internal/golden"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func main() {
	columns := flag.String("columns", strings.Join(golden.ComparedColumns, ","),
		"comma-separated columns to compare")
	absTol := flag.Float64("abs", -1, "absolute tolerance override for every column (<0 keeps the per-column default)")
	relTol := flag.Float64("rel", -1, "relative tolerance override for every column (<0 keeps the per-column default)")
	quiet := flag.Bool("q", false, "suppress per-comparison reports; only the exit status and the summary line")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: wadiff [flags] <golden.csv> <candidate.csv>\n"+
				"       wadiff [flags] <goldenDir> <candidateDir>\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	goldenPath, candPath := flag.Arg(0), flag.Arg(1)

	defaults := golden.DefaultTolerances()
	tols := make(map[string]golden.Tolerance)
	for _, c := range strings.Split(*columns, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		t, ok := defaults[c]
		if !ok {
			// A non-default column still gets the standard CSV-quantum
			// tolerance unless overridden below.
			t = golden.Tolerance{Abs: 1e-6, Rel: 1e-6}
		}
		if *absTol >= 0 {
			t.Abs = *absTol
		}
		if *relTol >= 0 {
			t.Rel = *relTol
		}
		tols[c] = t
	}
	if len(tols) == 0 {
		fatal(fmt.Errorf("wadiff: -columns selected nothing to compare"))
	}

	gInfo, err := os.Stat(goldenPath)
	if err != nil {
		fatal(err)
	}
	pairs := [][2]string{{goldenPath, candPath}}
	divergent := false
	if gInfo.IsDir() {
		cInfo, err := os.Stat(candPath)
		if err != nil {
			fatal(err)
		}
		if !cInfo.IsDir() {
			fatal(fmt.Errorf("wadiff: %s is a directory but %s is not", goldenPath, candPath))
		}
		pairs, divergent = dirPairs(goldenPath, candPath)
	}

	compared := 0
	for _, pair := range pairs {
		rep, err := golden.CompareFiles(pair[0], pair[1], tols)
		if err != nil {
			fatal(err)
		}
		compared++
		if rep.Divergent() {
			divergent = true
			fmt.Print(rep)
		} else if !*quiet {
			fmt.Printf("ok: %s vs %s (%d samples aligned)\n", pair[0], pair[1], rep.Aligned)
		}
	}
	if divergent {
		fmt.Printf("wadiff: DIVERGED (%d comparisons); regenerate baselines with `make golden` if the change is intentional\n", compared)
		os.Exit(1)
	}
	fmt.Printf("wadiff: ok (%d comparisons within tolerance)\n", compared)
}

// dirPairs matches *.csv files between the two directories, reporting files
// present on only one side as divergences.
func dirPairs(goldenDir, candDir string) (pairs [][2]string, divergent bool) {
	names := func(dir string) map[string]bool {
		matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
		if err != nil {
			fatal(err)
		}
		set := make(map[string]bool, len(matches))
		for _, m := range matches {
			set[filepath.Base(m)] = true
		}
		return set
	}
	g, c := names(goldenDir), names(candDir)
	if len(g) == 0 {
		fatal(fmt.Errorf("wadiff: no *.csv files in golden directory %s", goldenDir))
	}
	all := make([]string, 0, len(g))
	for n := range g {
		all = append(all, n)
	}
	for n := range c {
		if !g[n] {
			all = append(all, n)
		}
	}
	sort.Strings(all)
	for _, n := range all {
		switch {
		case g[n] && c[n]:
			pairs = append(pairs, [2]string{filepath.Join(goldenDir, n), filepath.Join(candDir, n)})
		case g[n]:
			fmt.Printf("missing candidate curve: %s has no counterpart in %s\n", filepath.Join(goldenDir, n), candDir)
			divergent = true
		default:
			fmt.Printf("unexpected candidate curve: %s has no golden baseline in %s (run `make golden`?)\n", filepath.Join(candDir, n), goldenDir)
			divergent = true
		}
	}
	return pairs, divergent
}
