// Command phftlsim runs one trace — a named synthetic profile or an
// external CSV trace (native or Alibaba layout, see internal/trace) — under
// one scheme and prints the full measurement set: WA, GC activity, and for
// PHFTL the classifier confusion, threshold and metadata-cache statistics.
//
// Usage:
//
//	phftlsim -trace "#52" [-scheme PHFTL] [-dw 20]
//	phftlsim -csv mytrace.csv -pages 16384 [-scheme SepBIT]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/phftl/phftl/internal/ftl"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/trace"
	"github.com/phftl/phftl/internal/workload"
)

func main() {
	traceID := flag.String("trace", "", "synthetic profile ID (e.g. #52)")
	csvPath := flag.String("csv", "", "external CSV trace file")
	pages := flag.Int("pages", 16384, "drive size in pages for -csv traces")
	pageSize := flag.Int("pagesize", 16384, "page size in bytes for -csv traces")
	schemeFlag := flag.String("scheme", "PHFTL", "Base, 2R, SepBIT or PHFTL")
	driveWrites := flag.Int("dw", 20, "drive writes to replay (synthetic profiles)")
	flag.Parse()

	scheme := sim.Scheme(*schemeFlag)
	var res sim.Result
	var wear ftl.WearReport
	var lifetime uint64
	var err error
	switch {
	case *traceID != "":
		p, ok := workload.ProfileByID(*traceID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown trace %q (have %d synthetic profiles)\n", *traceID, len(workload.Profiles()))
			os.Exit(1)
		}
		fmt.Printf("trace %s (%s, %d pages x %d B), scheme %s, %d drive writes\n",
			p.ID, p.DriveClass, p.ExportedPages, p.PageSize, scheme, *driveWrites)
		geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
		in, berr := sim.Build(scheme, geo, nil)
		if berr != nil {
			fmt.Fprintln(os.Stderr, berr)
			os.Exit(1)
		}
		res, err = sim.RunOn(in, p, *driveWrites)
		wear = in.FTL.Wear()
		lifetime = in.FTL.LifetimeWrites(3000)
	case *csvPath != "":
		f, ferr := os.Open(*csvPath)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		records, rerr := trace.ReadCSV(f)
		f.Close()
		if rerr != nil {
			fmt.Fprintln(os.Stderr, rerr)
			os.Exit(1)
		}
		st := trace.Summarize(records)
		fmt.Printf("csv trace %s: %d writes (%d MB), %d reads, scheme %s\n",
			*csvPath, st.Writes, st.WriteBytes>>20, st.Reads, scheme)
		geo := sim.GeometryForDrive(*pages, *pageSize)
		in, berr := sim.Build(scheme, geo, nil)
		if berr != nil {
			fmt.Fprintln(os.Stderr, berr)
			os.Exit(1)
		}
		ops := trace.Expand(records, *pageSize, in.FTL.ExportedPages())
		if err = in.Replay(ops); err == nil {
			wear = in.FTL.Wear()
			lifetime = in.FTL.LifetimeWrites(3000)
			in.Finish()
			res = sim.Result{
				Profile: *csvPath, Scheme: scheme,
				WA: in.FTL.Stats().WA(), DataWA: in.FTL.Stats().DataWA(),
				FTLStats: in.FTL.Stats(),
			}
			if in.PHFTL != nil {
				res.Confusion = in.PHFTL.Confusion()
				res.MetaStats = in.PHFTL.MetaStats()
				res.Threshold = in.PHFTL.Threshold()
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	s := res.FTLStats
	fmt.Printf("\nwrite amplification    %.1f%% (data-only %.1f%%)\n", res.WA*100, res.DataWA*100)
	fmt.Printf("user page writes       %d\n", s.UserPageWrites)
	fmt.Printf("gc page migrations     %d (over %d victims, %d futile passes)\n", s.GCPageWrites, s.GCVictims, s.GCFutile)
	fmt.Printf("meta page writes       %d\n", s.MetaPageWrites)
	fmt.Printf("wear                   %d erases (max/block %d, imbalance %.2f)\n",
		wear.TotalErases, wear.MaxErases, wear.ImbalanceRatio)
	if lifetime > 0 {
		fmt.Printf("endurance estimate     %d user page writes at 3K P/E cycles\n", lifetime)
	}
	if res.Confusion != nil {
		fmt.Printf("classifier             %s\n", res.Confusion)
		fmt.Printf("threshold              %.0f page-writes\n", res.Threshold)
		ms := res.MetaStats
		fmt.Printf("metadata cache         %.2f%% hit rate (%d hits, %d misses, %d open-buffer hits)\n",
			ms.HitRate()*100, ms.CacheHits, ms.CacheMisses, ms.OpenHits)
	}
}
