// Command phftlsim runs one trace — a named synthetic profile or an
// external CSV trace (native or Alibaba layout, see internal/trace) — under
// one scheme and prints the full measurement set: WA, GC activity, and for
// PHFTL the classifier confusion, threshold and metadata-cache statistics.
//
// Usage:
//
//	phftlsim -trace "#52" [-scheme PHFTL] [-dw 20]
//	phftlsim -csv mytrace.csv -pages 16384 [-scheme SepBIT]
//
// Observability (see README "Observability & profiling"):
//
//	phftlsim -trace "#52" -telemetry out.jsonl -report
//	phftlsim -trace "#144" -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/phftl/phftl/internal/core"
	"github.com/phftl/phftl/internal/ftl"
	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/obs/httpd"
	"github.com/phftl/phftl/internal/obs/registry"
	"github.com/phftl/phftl/internal/runner"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/trace"
	"github.com/phftl/phftl/internal/workload"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	traceID := flag.String("trace", "", "synthetic profile ID (e.g. #52)")
	csvPath := flag.String("csv", "", "external CSV trace file")
	pages := flag.Int("pages", 16384, "drive size in pages for -csv traces")
	pageSize := flag.Int("pagesize", 16384, "page size in bytes for -csv traces")
	schemeFlag := flag.String("scheme", "PHFTL", "Base, 2R, SepBIT or PHFTL")
	driveWrites := flag.Int("dw", 20, "drive writes to replay (synthetic profiles)")
	telemetry := flag.String("telemetry", "", "write trace events and samples as JSONL to this file")
	telemetryCSV := flag.String("telemetry-csv", "", "also write the sample time series as CSV to this file")
	sampleEvery := flag.Uint64("sample-every", 0, "sampling interval in user-page writes (0 = exported/64)")
	cellWorkers := flag.Int("cell-workers", 1, "intra-cell workers: pipeline trace decoding ahead of the FTL and parallelize GC copies and PHFTL retraining (1 = serial; results are byte-identical at any value)")
	ringCap := flag.Int("ring-cap", 0, "deprecated one-size alias: bound EVERY per-kind event ring at this many events (0 = per-kind defaults: rare kinds lossless, hot meta-cache kinds sampled 1/16 into bounded rings); overflow drops oldest events of that kind with a stderr warning")
	report := flag.Bool("report", false, "print the observability report after the run")
	listen := flag.String("listen", "", "serve live telemetry over HTTP on this address while the run executes (e.g. :9090 or 127.0.0.1:0): /metrics, /api/v1/status, /api/v1/cells, /api/v1/events, /debug/pprof; the bound URL is printed to stderr")
	wallDurations := flag.Bool("wall-durations", false, "record wall-clock durations (window_retrain duration_ns) into telemetry; off by default so default telemetry stays byte-identical across runs, hosts and worker counts")
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	flag.Parse()

	var coreOpts *core.Options
	if *wallDurations {
		o := core.DefaultOptions()
		o.WallDurations = true
		coreOpts = &o
	}
	var reg *registry.Registry
	if *listen != "" {
		reg = registry.New()
		srv, err := httpd.Serve(*listen, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: listening on %s\n", srv.URL())
	}

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}

	// Open the sinks before the (possibly minutes-long) replay so a bad
	// path fails now, not after the run.
	var telemetryF, telemetryCSVF *os.File
	if *telemetry != "" {
		if telemetryF, err = os.Create(*telemetry); err != nil {
			fatal(err)
		}
	}
	if *telemetryCSV != "" {
		if telemetryCSVF, err = os.Create(*telemetryCSV); err != nil {
			fatal(err)
		}
	}

	observing := *telemetry != "" || *telemetryCSV != "" || *report || reg != nil
	scheme := sim.Scheme(*schemeFlag)
	// openCell registers this run as a live cell when -listen is set; a nil
	// return keeps the serial path untouched.
	openCell := func(traceName string, targetOps uint64) *registry.Cell {
		if reg == nil {
			return nil
		}
		c := reg.OpenCell(traceName+"/"+string(scheme), registry.CellMeta{
			Trace: traceName, Scheme: string(scheme), TargetOps: targetOps,
		})
		c.SetState(registry.StateRunning)
		return c
	}
	var in *sim.Instance
	var res sim.Result
	var wear ftl.WearReport
	var lifetime uint64
	switch {
	case *traceID != "":
		p, ok := workload.ProfileByID(*traceID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown trace %q (have %d synthetic profiles)\n", *traceID, len(workload.Profiles()))
			os.Exit(1)
		}
		fmt.Printf("trace %s (%s, %d pages x %d B), scheme %s, %d drive writes\n",
			p.ID, p.DriveClass, p.ExportedPages, p.PageSize, scheme, *driveWrites)
		geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
		in, err = sim.Build(scheme, geo, coreOpts)
		if err != nil {
			fatal(err)
		}
		in.SetCellWorkers(*cellWorkers)
		cell := openCell(p.ID, uint64(*driveWrites)*uint64(p.ExportedPages))
		if observing {
			sim.Observe(in, sim.ObserveConfig{SampleEvery: *sampleEvery, RingCap: *ringCap, Cell: cell})
		}
		res, err = sim.RunOn(in, p, *driveWrites)
		if err != nil {
			fatal(err)
		}
		if cell != nil {
			cell.SetState(registry.StateDone)
		}
		wear = in.FTL.Wear()
		lifetime = in.FTL.LifetimeWrites(3000)
	case *csvPath != "":
		f, ferr := os.Open(*csvPath)
		if ferr != nil {
			fatal(ferr)
		}
		records, rerr := trace.ReadCSV(f)
		f.Close()
		if rerr != nil {
			fatal(rerr)
		}
		st := trace.Summarize(records)
		fmt.Printf("csv trace %s: %d writes (%d MB), %d reads, %d trims, scheme %s\n",
			*csvPath, st.Writes, st.WriteBytes>>20, st.Reads, st.Trims, scheme)
		geo := sim.GeometryForDrive(*pages, *pageSize)
		in, err = sim.Build(scheme, geo, coreOpts)
		if err != nil {
			fatal(err)
		}
		in.SetCellWorkers(*cellWorkers)
		// The page-op total is only known after expansion, so the CSV path
		// registers with an unknown target (no ETA, progress still live).
		cell := openCell(*csvPath, 0)
		if observing {
			sim.Observe(in, sim.ObserveConfig{SampleEvery: *sampleEvery, RingCap: *ringCap, Cell: cell})
		}
		ops := trace.Expand(records, *pageSize, in.FTL.ExportedPages())
		if err = in.Replay(ops); err != nil {
			fatal(err)
		}
		if cell != nil {
			cell.SetState(registry.StateDone)
		}
		wear = in.FTL.Wear()
		lifetime = in.FTL.LifetimeWrites(3000)
		in.Finish()
		res = sim.Result{
			Profile: *csvPath, Scheme: scheme,
			WA: in.FTL.Stats().WA(), DataWA: in.FTL.Stats().DataWA(),
			FTLStats: in.FTL.Stats(),
		}
		if in.PHFTL != nil {
			res.Confusion = in.PHFTL.Confusion()
			res.MetaStats = in.PHFTL.MetaStats()
			res.Threshold = in.PHFTL.Threshold()
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("\n%s", runner.Summary(res, wear, lifetime))

	if o := in.Obs; o != nil {
		if d := o.Rec.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "warning: per-kind event rings dropped %d of %d events (total bounded capacity %d); raise -ring-cap or use the per-kind defaults (-ring-cap 0) for lossless rare kinds\n",
				d, o.Rec.Total(), o.Rec.Capacity())
		}
		if telemetryF != nil {
			if err := obs.WriteJSONL(telemetryF, "", o.Rec.Events(), o.Sampler.Series()); err != nil {
				telemetryF.Close()
				fatal(err)
			}
			if err := telemetryF.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("\nwrote %s (%d events, %d dropped, %d samples)\n",
				*telemetry, len(o.Rec.Events()), o.Rec.Dropped(), len(o.Sampler.Series()))
		}
		if telemetryCSVF != nil {
			if err := obs.WriteSamplesCSV(telemetryCSVF, o.Sampler.Series()); err != nil {
				telemetryCSVF.Close()
				fatal(err)
			}
			if err := telemetryCSVF.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *telemetryCSV)
		}
		if *report {
			fmt.Printf("\n%s", obs.BuildReport(o.Rec, o.Sampler.Series()))
			if o.Wear != nil && o.Wear.Total() > 0 {
				fmt.Printf("\n%s", o.Wear.Heatmap(48))
			}
		}
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}
