// Command tracegen materializes one of the synthetic drive workloads as a
// CSV block trace (native 4-field layout: timestamp_us,op,offset,size), so
// it can be inspected, archived, or replayed through phftlsim -csv or other
// tools.
//
// Usage:
//
//	tracegen -trace "#52" -dw 2 > t52.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/phftl/phftl/internal/trace"
	"github.com/phftl/phftl/internal/workload"
)

func main() {
	traceID := flag.String("trace", "#52", "synthetic profile ID")
	driveWrites := flag.Int("dw", 1, "drive writes worth of page writes to emit")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list available profiles and exit")
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %-7s %10s %8s %8s %8s %8s\n", "id", "class", "pages", "hot%", "seq%", "read%", "drift")
		for _, p := range workload.Profiles() {
			drift := "-"
			if p.PhaseEvery > 0 {
				drift = fmt.Sprintf("%d", p.PhaseEvery)
			}
			fmt.Printf("%-8s %-7s %10d %8.2f %8.2f %8.2f %8s\n",
				p.ID, p.DriveClass, p.ExportedPages, p.HotFrac*100, p.SeqFrac*100, p.ReadFrac*100, drift)
		}
		return
	}

	p, ok := workload.ProfileByID(*traceID)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown trace %q (use -list)\n", *traceID)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	gen := p.NewGenerator()
	records := gen.Records(*driveWrites * p.ExportedPages)
	if err := trace.WriteCSV(bw, records); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "emitted %d requests (%d page writes) for %s\n",
		len(records), gen.PageWrites(), p.ID)
}
