// Command latbench regenerates Figure 6: average write latency (with
// standard deviation) versus request size for the stock FTL, PHFTL with
// prediction on the critical path (sync), and PHFTL with off-critical-path
// prediction, using the OpenSSD-class timing model.
//
// Usage:
//
//	latbench [-n 10000] [-predict 9000]
package main

import (
	"flag"
	"fmt"

	"github.com/phftl/phftl/internal/perfsim"
)

func main() {
	n := flag.Int("n", 10000, "requests per cell")
	predict := flag.Int64("predict", 9000, "prediction cost in ns (paper: ~9 µs)")
	seed := flag.Int64("seed", 1, "noise seed")
	flag.Parse()

	tm := perfsim.DefaultTiming()
	tm.PredictNS = *predict
	const pageSize = 16384

	fmt.Println("Figure 6: write latency vs request size (requests served from the RAM buffer)")
	fmt.Printf("%-18s", "placement")
	for _, sz := range perfsim.Fig6RequestSizes {
		fmt.Printf(" %10s", sizeLabel(sz))
	}
	fmt.Println()
	sums := map[perfsim.PredPlacement]float64{}
	for _, place := range []perfsim.PredPlacement{perfsim.PredNone, perfsim.PredSync, perfsim.PredOffPath} {
		fmt.Printf("%-18s", place)
		for _, sz := range perfsim.Fig6RequestSizes {
			r := perfsim.WriteLatencyMicrobench(tm, place, sz, pageSize, *n, *seed)
			fmt.Printf(" %6.1f±%-4.1f", r.MeanNS/1000, r.StdDevNS/1000)
			sums[place] += r.MeanNS
		}
		fmt.Println(" (µs)")
	}
	base := sums[perfsim.PredNone]
	fmt.Printf("\naverage latency inflation vs stock: sync %+.1f%%, off-path %+.1f%%\n",
		(sums[perfsim.PredSync]/base-1)*100, (sums[perfsim.PredOffPath]/base-1)*100)
	fmt.Println("(paper §V-D: sync +139.7% on average; off-path ~stock with higher stddev)")
}

func sizeLabel(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dKB", b>>10)
	}
}
