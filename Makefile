GO ?= go

.PHONY: check vet build test race fmt bench smoke

## check: the tier-1 gate — everything CI (and the next PR) relies on.
check: vet build race fmt smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## smoke: short parallel wabench sweep under -race — catches regressions in
## the runner's telemetry-sink serialization that unit tests can miss.
smoke:
	$(GO) run -race ./cmd/wabench -dw 1 -traces "#52,#144" -parallel 2 \
		-csv /tmp/wabench-smoke.csv -telemetry /tmp/wabench-smoke.jsonl

# gofmt -l prints offending files; grep inverts that into an exit status.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## bench: disabled-recorder overhead check against the seed write path.
bench:
	$(GO) test -bench 'BenchmarkWritePath' -benchtime=200000x -count=3 -run '^$$' .
