GO ?= go

.PHONY: check vet build test race fmt bench benchcmp smoke

## check: the tier-1 gate — everything CI (and the next PR) relies on.
check: vet build race fmt smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## smoke: short parallel wabench sweep under -race — catches regressions in
## the runner's telemetry-sink serialization that unit tests can miss.
smoke:
	$(GO) run -race ./cmd/wabench -dw 1 -traces "#52,#144" -parallel 2 \
		-csv /tmp/wabench-smoke.csv -telemetry /tmp/wabench-smoke.jsonl

# gofmt -l prints offending files; grep inverts that into an exit status.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## bench: the perf-critical microbenchmark suite — replay write path (cold
## and steady-state), model inference step, and GC victim selection — with
## allocation counts, so the zero-allocation invariant is visible.
bench:
	$(GO) test -bench 'BenchmarkWritePath' -benchtime=200000x -count=3 -benchmem -run '^$$' .
	$(GO) test -bench 'BenchmarkPredictStep' -benchmem -run '^$$' ./internal/ml
	$(GO) test -bench 'BenchmarkSelectVictim' -benchmem -run '^$$' ./internal/ftl

## benchcmp: run the bench suite and fold it into a dated JSON snapshot
## (benchmark name -> ns/op, allocs/op, B/op) for cross-PR comparison.
## Compare against the previous BENCH_<date>.json with any JSON diff.
benchcmp:
	@{ $(GO) test -bench 'BenchmarkWritePath' -benchtime=100000x -count=3 -benchmem -run '^$$' . && \
	   $(GO) test -bench 'BenchmarkPredictStep' -count=3 -benchmem -run '^$$' ./internal/ml && \
	   $(GO) test -bench 'BenchmarkSelectVictim' -count=3 -benchmem -run '^$$' ./internal/ftl ; } \
	| $(GO) run ./cmd/benchjson > BENCH_$$(date +%F).json
	@echo "wrote BENCH_$$(date +%F).json"
