GO ?= go

.PHONY: check vet build test race fmt bench benchcmp benchcheck smoke watop-smoke opsweep-smoke scaling-smoke http-smoke fleet-smoke golden golden-check

## check: the tier-1 gate — everything CI (and the next PR) relies on.
check: vet build race fmt smoke watop-smoke opsweep-smoke scaling-smoke http-smoke fleet-smoke golden-check benchcheck

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## smoke: short parallel wabench sweep under -race — catches regressions in
## the runner's telemetry-sink serialization that unit tests can miss.
smoke:
	$(GO) run -race ./cmd/wabench -dw 1 -traces "#52,#144" -parallel 2 \
		-csv /tmp/wabench-smoke.csv -telemetry /tmp/wabench-smoke.jsonl

## opsweep-smoke: one small overprovisioning sweep cell under -race — proves
## the -op-sweep path (GeometryForDriveOP/BuildOP and the sweep table) end
## to end and that Base WA decreases with the spare factor.
opsweep-smoke:
	$(GO) run -race ./cmd/wabench -dw 1 -traces "#52" -schemes "Base" \
		-op-sweep "0.07,0.15,0.28"

## scaling-smoke: the intra-cell parallelism determinism gate — one tiny
## trace×scheme pair replayed serially and at -cell-workers 4, both under
## -race, with the telemetry CSVs diffed byte-for-byte. Proves the pipelined
## replay, parallel GC snapshot and sharded retrainer are data-race-free AND
## bit-identical to the serial path end to end (unit tests pin the same
## property per layer; this pins the composed binary).
scaling-smoke:
	rm -rf /tmp/phftl-scaling-serial /tmp/phftl-scaling-w4
	$(GO) run -race ./cmd/wabench -dw 1 -traces "#144" -schemes "Base,PHFTL" \
		-telemetry-csv /tmp/phftl-scaling-serial > /dev/null
	$(GO) run -race ./cmd/wabench -dw 1 -traces "#144" -schemes "Base,PHFTL" \
		-cell-workers 4 -telemetry-csv /tmp/phftl-scaling-w4 > /dev/null
	diff -r /tmp/phftl-scaling-serial /tmp/phftl-scaling-w4
	@echo "scaling-smoke: -cell-workers 4 output byte-identical to serial"

## watop-smoke: a short phftlsim -telemetry run fed into the live dashboard
## in -once mode under -race — proves the erase/sample stream renders a
## frame end to end (and fails loudly if the JSONL field names drift from
## what watop parses).
watop-smoke:
	$(GO) run -race ./cmd/phftlsim -trace "#52" -dw 2 -telemetry /tmp/watop-smoke.jsonl > /dev/null
	$(GO) run -race ./cmd/watop -once -f /tmp/watop-smoke.jsonl

## http-smoke: the live-telemetry gate under -race — spawn a real wabench run
## with -listen, read the bound URL off stderr, scrape /metrics (every line
## validated against the Prometheus text exposition format), /api/v1/cells
## and /api/v1/status while the replay executes, and require the served fleet
## ops figure to advance monotonically. Fails on any malformed exposition
## line, so metric renames or label-escaping regressions cannot ship silently.
http-smoke:
	$(GO) test -race -run 'TestHTTPSmoke' -count=1 -v ./cmd/wabench

## fleet-smoke: the fleet-service gate under -race — a live phftld-shaped
## supervisor behind a real listener accepts four cell submissions over HTTP,
## cancels one through the control plane, drains the rest, and must then serve
## (a) lifecycle states (3 done / 1 cancelled), (b) per-scheme fleet WA
## percentiles that EXACTLY match an offline recomputation from the per-cell
## results, and (c) an event drain that delivers every retained sequence
## exactly once through limit-truncated pages (the cursor-loss regression).
fleet-smoke:
	$(GO) test -race -run 'TestFleetSmoke' -count=1 -v ./cmd/phftld

## Golden-curve regression harness: checked-in per-cell sample CSVs
## (the wabench -telemetry-csv format) for GOLDEN_TRACES × {Base,PHFTL} at
## GOLDEN_DW drive writes. `golden-check` replays the same cells and diffs
## the interval-WA/cum-WA/threshold/cache-hit curves point-by-point
## (cmd/wadiff), so a GC or separator change that trades early-run WA for
## late-run WA fails CI even when the end-of-run scalar looks fine.
## Regenerate with `make golden` ONLY after an intentional behavioural
## change, and commit the new baselines with the change that caused them.
## #52T is the trim-enabled twin of #52: its baseline pins the TRIM path
## (workload discard generation through FTL.Trim) against curve regressions.
GOLDEN_TRACES := \#52,\#144,\#326,\#52T
GOLDEN_DW := 4
GOLDEN_DIR := testdata/golden
GOLDEN_TMP := /tmp/phftl-golden-check

golden:
	$(GO) run ./cmd/wabench -dw $(GOLDEN_DW) -traces "$(GOLDEN_TRACES)" \
		-schemes "Base,PHFTL" -telemetry-csv $(GOLDEN_DIR)

golden-check:
	rm -rf $(GOLDEN_TMP)
	$(GO) run ./cmd/wabench -dw $(GOLDEN_DW) -traces "$(GOLDEN_TRACES)" \
		-schemes "Base,PHFTL" -telemetry-csv $(GOLDEN_TMP)
	$(GO) run ./cmd/wadiff -q $(GOLDEN_DIR) $(GOLDEN_TMP)

# gofmt -l prints offending files; grep inverts that into an exit status.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## bench: the perf-critical microbenchmark suite — replay write path (cold
## and steady-state), model inference step, and GC victim selection — with
## allocation counts, so the zero-allocation invariant is visible.
bench:
	$(GO) test -bench 'BenchmarkWritePath' -benchtime=200000x -count=3 -benchmem -run '^$$' .
	$(GO) test -bench 'BenchmarkPredictStep' -benchmem -run '^$$' ./internal/ml
	$(GO) test -bench 'BenchmarkSelectVictim' -benchmem -run '^$$' ./internal/ftl

## benchcmp: run the bench suite and fold it into a dated JSON snapshot
## (benchmark name -> ns/op, allocs/op, B/op) for cross-PR comparison.
## Compare against the previous BENCH_<date>.json with any JSON diff.
benchcmp:
	@{ $(GO) test -bench 'BenchmarkWritePath' -benchtime=100000x -count=3 -benchmem -run '^$$' . && \
	   $(GO) test -bench 'BenchmarkPredictStep' -count=3 -benchmem -run '^$$' ./internal/ml && \
	   $(GO) test -bench 'BenchmarkSelectVictim' -count=3 -benchmem -run '^$$' ./internal/ftl ; } \
	| $(GO) run ./cmd/benchjson > BENCH_$$(date +%F).json
	@echo "wrote BENCH_$$(date +%F).json"

## benchcheck: CI perf gate — rerun the write-path benchmark (short) and fail
## if ns/op regressed beyond BENCHCHECK_REGRESS percent against the newest
## committed BENCH_<date>.json. The limit is deliberately generous: the gate
## is meant to catch step-change regressions (an accidental allocation or
## lock on the hot path), not wall-clock noise on a shared host.
BENCHCHECK_REGRESS := 50

benchcheck:
	@base=$$(ls BENCH_*.json 2>/dev/null | sort | tail -1); \
	if [ -z "$$base" ]; then echo "benchcheck: no BENCH_<date>.json baseline"; exit 1; fi; \
	echo "benchcheck: comparing against $$base (max +$(BENCHCHECK_REGRESS)% ns/op)"; \
	$(GO) test -bench 'BenchmarkWritePath' -benchtime=50000x -count=3 -benchmem -run '^$$' . \
	| $(GO) run ./cmd/benchjson -against $$base -max-regress $(BENCHCHECK_REGRESS) > /dev/null
