GO ?= go

.PHONY: check vet build test race fmt bench

## check: the tier-1 gate — everything CI (and the next PR) relies on.
check: vet build race fmt

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# gofmt -l prints offending files; grep inverts that into an exit status.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## bench: disabled-recorder overhead check against the seed write path.
bench:
	$(GO) test -bench 'BenchmarkWritePath' -benchtime=200000x -count=3 -run '^$$' .
