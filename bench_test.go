// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V), at reduced scale so the whole suite finishes in minutes. The cmd/
// harnesses (wabench, clfbench, latbench, perfbench) run the same
// experiments at full scaled size with human-readable output.
//
// Results are attached to each benchmark via b.ReportMetric, so
// `go test -bench=. -benchmem` prints the reproduced quantities alongside
// the usual ns/op.
package phftl_test

import (
	"math/rand"
	"testing"

	"github.com/phftl/phftl/internal/core"
	"github.com/phftl/phftl/internal/ftl"
	"github.com/phftl/phftl/internal/metrics"
	"github.com/phftl/phftl/internal/nand"
	"github.com/phftl/phftl/internal/perfsim"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/trace"
	"github.com/phftl/phftl/internal/workload"
)

// benchProfile returns a reduced-size copy of a named profile so benchmarks
// stay fast.
func benchProfile(b *testing.B, id string, pages int) workload.Profile {
	b.Helper()
	p, ok := workload.ProfileByID(id)
	if !ok {
		b.Fatalf("missing profile %s", id)
	}
	if pages > 0 {
		p.ExportedPages = pages
	}
	return p
}

// BenchmarkFig2LifetimeCDF reproduces Figure 2(a): the skewed page-lifetime
// distribution of a cloud workload and the inflection-point threshold at the
// knee of its CDF. Reported metrics: the knee value and the fraction of
// samples below it.
func BenchmarkFig2LifetimeCDF(b *testing.B) {
	p := benchProfile(b, "#52", 8192)
	var knee, fracBelow float64
	for i := 0; i < b.N; i++ {
		gen := p.NewGenerator()
		recs := gen.Records(3 * p.ExportedPages)
		ops := trace.Expand(recs, p.PageSize, p.ExportedPages)
		var finite []float64
		for _, l := range trace.AnnotateLifetimes(ops) {
			if l != trace.InfiniteLifetime {
				finite = append(finite, float64(l))
			}
		}
		var idx int
		knee, idx = metrics.InflectionPoint(finite)
		fracBelow = float64(idx) / float64(len(finite))
	}
	b.ReportMetric(knee, "knee-lifetime")
	b.ReportMetric(fracBelow*100, "%samples-below-knee")
}

// BenchmarkFig5WriteAmplification reproduces Figure 5 on two representative
// traces (#52, lowest WA; #144, highest WA) across all four schemes,
// reporting each scheme's data write amplification in percent. Run
// cmd/wabench for the full 20-trace sweep.
func BenchmarkFig5WriteAmplification(b *testing.B) {
	for _, id := range []string{"#52", "#144"} {
		for _, scheme := range sim.Schemes() {
			b.Run(id+"/"+string(scheme), func(b *testing.B) {
				p := benchProfile(b, id, 8192)
				var wa float64
				for i := 0; i < b.N; i++ {
					res, err := sim.RunProfile(p, scheme, 4, nil)
					if err != nil {
						b.Fatal(err)
					}
					wa = res.DataWA
				}
				b.ReportMetric(wa*100, "%WA")
			})
		}
	}
}

// BenchmarkTable1Classifier reproduces Table I on three traces spanning the
// paper's accuracy range, reporting accuracy/precision/recall/F1.
func BenchmarkTable1Classifier(b *testing.B) {
	for _, id := range []string{"#52", "#144", "#326"} {
		b.Run(id, func(b *testing.B) {
			p := benchProfile(b, id, 8192)
			var c *metrics.Confusion
			for i := 0; i < b.N; i++ {
				res, err := sim.RunProfile(p, sim.SchemePHFTL, 4, nil)
				if err != nil {
					b.Fatal(err)
				}
				c = res.Confusion
			}
			b.ReportMetric(c.Accuracy(), "accuracy")
			b.ReportMetric(c.Precision(), "precision")
			b.ReportMetric(c.Recall(), "recall")
			b.ReportMetric(c.F1(), "f1")
		})
	}
}

// BenchmarkMetaCacheHitRate reproduces the §V-B claim that the 1% RAM
// metadata cache serves 98.2%-99.9% of flash-backed retrievals, on the
// sequential-leaning trace #52.
func BenchmarkMetaCacheHitRate(b *testing.B) {
	p := benchProfile(b, "#52", 8192)
	var hit float64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunProfile(p, sim.SchemePHFTL, 4, nil)
		if err != nil {
			b.Fatal(err)
		}
		hit = res.MetaStats.HitRate()
	}
	b.ReportMetric(hit*100, "%hit-rate")
}

// BenchmarkAblationSeqLen1 reproduces the §V-C ablation: truncating the
// feature sequence to length 1 (no cached hidden state) reduces accuracy —
// the paper reports a drop of up to 9.2% (4.0% on average).
func BenchmarkAblationSeqLen1(b *testing.B) {
	p := benchProfile(b, "#144", 8192)
	var full, trunc float64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunProfile(p, sim.SchemePHFTL, 4, nil)
		if err != nil {
			b.Fatal(err)
		}
		full = res.Confusion.Accuracy()
		opts := core.DefaultOptions()
		opts.SeqLen = 1
		res1, err := sim.RunProfile(p, sim.SchemePHFTL, 4, &opts)
		if err != nil {
			b.Fatal(err)
		}
		trunc = res1.Confusion.Accuracy()
	}
	b.ReportMetric(full, "accuracy-seq8")
	b.ReportMetric(trunc, "accuracy-seq1")
	b.ReportMetric((full-trunc)*100, "accuracy-drop-pp")
}

// BenchmarkAblationQuantization reproduces the §IV claim: deploying int8
// weights costs <1% accuracy versus float weights.
func BenchmarkAblationQuantization(b *testing.B) {
	p := benchProfile(b, "#326", 8192)
	var quant, float float64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunProfile(p, sim.SchemePHFTL, 4, nil)
		if err != nil {
			b.Fatal(err)
		}
		quant = res.Confusion.Accuracy()
		opts := core.DefaultOptions()
		opts.Quantize = false
		resf, err := sim.RunProfile(p, sim.SchemePHFTL, 4, &opts)
		if err != nil {
			b.Fatal(err)
		}
		float = resf.Confusion.Accuracy()
	}
	b.ReportMetric(quant, "accuracy-int8")
	b.ReportMetric(float, "accuracy-float")
	b.ReportMetric((float-quant)*100, "quantization-loss-pp")
}

// BenchmarkFig6OffCriticalPath reproduces Figure 6: mean write latency for
// stock / sync / off-path prediction at 4 KiB and 1 MiB request sizes, and
// the sync placement's average inflation (paper: +139.7%).
func BenchmarkFig6OffCriticalPath(b *testing.B) {
	tm := perfsim.DefaultTiming()
	var res []perfsim.MicrobenchResult
	for i := 0; i < b.N; i++ {
		res = perfsim.RunFig6(tm, 16384, 2000, 1)
	}
	var sums [3]float64
	for i, r := range res {
		sums[i/len(perfsim.Fig6RequestSizes)] += r.MeanNS
	}
	b.ReportMetric(res[0].MeanNS/1000, "stock-4K-us")
	b.ReportMetric(res[len(perfsim.Fig6RequestSizes)].MeanNS/1000, "sync-4K-us")
	b.ReportMetric(res[2*len(perfsim.Fig6RequestSizes)].MeanNS/1000, "offpath-4K-us")
	b.ReportMetric((sums[1]/sums[0]-1)*100, "%sync-inflation")
	b.ReportMetric((sums[2]/sums[0]-1)*100, "%offpath-inflation")
}

// BenchmarkFig7Bandwidth reproduces Figure 7 (top) on trace #144: phase-1
// steady-state bandwidth of the stock FTL versus PHFTL-hw.
func BenchmarkFig7Bandwidth(b *testing.B) {
	p := benchProfile(b, "#144", 6144)
	geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
	var stock, phftl float64
	for i := 0; i < b.N; i++ {
		for _, scheme := range []sim.Scheme{sim.SchemeBase, sim.SchemePHFTL} {
			m, err := perfsim.NewMachine(scheme, geo, perfsim.DefaultTiming(), nil)
			if err != nil {
				b.Fatal(err)
			}
			gen := p.NewGenerator()
			pts, err := m.RunPhase1(gen.Records(6*p.ExportedPages), p.PageSize, 32)
			if err != nil {
				b.Fatal(err)
			}
			last := pts[len(pts)-1].MBPerSec
			if scheme == sim.SchemeBase {
				stock = last
			} else {
				phftl = last
			}
		}
	}
	b.ReportMetric(stock, "stock-MBps")
	b.ReportMetric(phftl, "phftl-MBps")
	b.ReportMetric((phftl/stock-1)*100, "%bandwidth-gain")
}

// BenchmarkFig7Latency reproduces Figure 7 (bottom) on trace #144: phase-2
// write-latency percentiles and average for stock versus PHFTL-hw.
func BenchmarkFig7Latency(b *testing.B) {
	p := benchProfile(b, "#144", 4096)
	p.InterArrivalUS = 2600
	geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
	var stock, phftl perfsim.LatencyStats
	for i := 0; i < b.N; i++ {
		for _, scheme := range []sim.Scheme{sim.SchemeBase, sim.SchemePHFTL} {
			m, err := perfsim.NewMachine(scheme, geo, perfsim.DefaultTiming(), nil)
			if err != nil {
				b.Fatal(err)
			}
			gen := p.NewGenerator()
			if _, err := m.RunPhase1(gen.Records(4*p.ExportedPages), p.PageSize, 32); err != nil {
				b.Fatal(err)
			}
			st, err := m.RunPhase2(gen.Records(p.ExportedPages/2), p.PageSize)
			if err != nil {
				b.Fatal(err)
			}
			if scheme == sim.SchemeBase {
				stock = st
			} else {
				phftl = st
			}
		}
	}
	b.ReportMetric(stock.P999, "stock-P99.9-ms")
	b.ReportMetric(phftl.P999, "phftl-P99.9-ms")
	b.ReportMetric((phftl.Avg/stock.Avg-1)*100, "%avg-latency-delta")
}

// BenchmarkAblationVictimPolicy compares PHFTL under its Adjusted Greedy
// policy (Eq. 1) against plain Greedy and Cost-Benefit, the design choice
// §III-D motivates.
func BenchmarkAblationVictimPolicy(b *testing.B) {
	p := benchProfile(b, "#144", 8192)
	geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
	for _, pol := range []string{"adjusted", "greedy", "costbenefit"} {
		b.Run(pol, func(b *testing.B) {
			var wa float64
			for i := 0; i < b.N; i++ {
				in, err := sim.BuildPHFTLWithPolicy(geo, core.DefaultOptions(), pol)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.RunOn(in, p, 4)
				if err != nil {
					b.Fatal(err)
				}
				wa = res.DataWA
			}
			b.ReportMetric(wa*100, "%WA")
		})
	}
}

// BenchmarkAblationGCStreams compares PHFTL's GC-count-separated GC writes
// (5 classes, §III-A) against collapsing all GC writes into one stream.
func BenchmarkAblationGCStreams(b *testing.B) {
	p := benchProfile(b, "#144", 8192)
	for _, streams := range []int{1, 5} {
		b.Run(map[int]string{1: "single", 5: "five-classes"}[streams], func(b *testing.B) {
			var wa float64
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.GCStreams = streams
				res, err := sim.RunProfile(p, sim.SchemePHFTL, 4, &opts)
				if err != nil {
					b.Fatal(err)
				}
				wa = res.DataWA
			}
			b.ReportMetric(wa*100, "%WA")
		})
	}
}

// BenchmarkWritePath measures the per-page cost of PHFTL's full write path
// (features + O(1) GRU prediction + metadata + placement) versus the Base
// FTL — the software analogue of the paper's single-prediction overhead.
func BenchmarkWritePath(b *testing.B) {
	p := benchProfile(b, "#177", 8192)
	for _, scheme := range []sim.Scheme{sim.SchemeBase, sim.SchemePHFTL} {
		b.Run(string(scheme), func(b *testing.B) {
			geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
			in, err := sim.Build(scheme, geo, nil)
			if err != nil {
				b.Fatal(err)
			}
			gen := p.NewGenerator()
			ops := trace.Expand(gen.Records(b.N+p.ExportedPages), p.PageSize, in.FTL.ExportedPages())
			b.ResetTimer()
			if err := in.Replay(ops[:b.N]); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkWritePathSteadyState measures the per-page write cost once the
// drive is in steady state — fully written, GC active, model deployed —
// which is the regime wabench wall-clock is dominated by. With -benchmem it
// also pins the zero-allocation invariant of the hot path (the alloc
// regression tests in internal/core assert the same property exactly).
// Because GC is active, every erase taken here crosses the device's
// disabled (nil) erase-hook branch, so this benchmark is also the
// ≤2%-overhead gate for the wear-observability hooks when no Observation
// is attached.
func BenchmarkWritePathSteadyState(b *testing.B) {
	for _, scheme := range []sim.Scheme{sim.SchemeBase, sim.SchemePHFTL} {
		b.Run(string(scheme), func(b *testing.B) {
			geo := sim.GeometryForDrive(8192, 16384)
			in, err := sim.Build(scheme, geo, nil)
			if err != nil {
				b.Fatal(err)
			}
			exported := in.FTL.ExportedPages()
			rng := rand.New(rand.NewSource(7))
			write := func(lpn nand.LPN) {
				if err := in.FTL.Write(ftl.UserWrite{LPN: lpn, ReqPages: 1}); err != nil {
					b.Fatal(err)
				}
			}
			for lpn := 0; lpn < exported; lpn++ {
				write(nand.LPN(lpn))
			}
			for i := 0; i < 2*exported; i++ {
				write(nand.LPN(rng.Intn(exported)))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				write(nand.LPN(rng.Intn(exported)))
			}
		})
	}
}

// BenchmarkAblationModelArch reproduces the paper's §III-B design-space
// exploration ("after exploring a wide variety of machine learning models"):
// the GRU Page Classifier versus an LSTM (same state budget: 16 hidden
// units, h‖c persisted) and a stateless MLP, on runtime accuracy.
func BenchmarkAblationModelArch(b *testing.B) {
	p := benchProfile(b, "#144", 0)
	for _, mk := range []struct {
		model  string
		hidden int
	}{{"gru", 32}, {"lstm", 16}, {"mlp", 32}} {
		b.Run(mk.model, func(b *testing.B) {
			var acc, wa float64
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.Model = mk.model
				opts.Hidden = mk.hidden
				res, err := sim.RunProfile(p, sim.SchemePHFTL, 4, &opts)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.Confusion.Accuracy()
				wa = res.DataWA
			}
			b.ReportMetric(acc, "accuracy")
			b.ReportMetric(wa*100, "%WA")
		})
	}
}
