package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New[int, string]()
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if _, ok := tr.Get(1); ok {
		t.Error("Get on empty tree returned ok")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree returned ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Error("Max on empty tree returned ok")
	}
	if tr.Delete(1) {
		t.Error("Delete on empty tree returned true")
	}
}

func TestPutGetReplace(t *testing.T) {
	tr := New[int, string]()
	tr.Put(5, "five")
	tr.Put(3, "three")
	tr.Put(7, "seven")
	if v, ok := tr.Get(3); !ok || v != "three" {
		t.Errorf("Get(3) = %q, %v", v, ok)
	}
	tr.Put(3, "THREE")
	if v, _ := tr.Get(3); v != "THREE" {
		t.Errorf("after replace Get(3) = %q", v)
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
}

func TestMinMaxAndOrder(t *testing.T) {
	tr := New[int, int]()
	vals := []int{9, 1, 8, 2, 7, 3, 6, 4, 5}
	for _, v := range vals {
		tr.Put(v, v*10)
	}
	if k, v, _ := tr.Min(); k != 1 || v != 10 {
		t.Errorf("Min = %d,%d", k, v)
	}
	if k, v, _ := tr.Max(); k != 9 || v != 90 {
		t.Errorf("Max = %d,%d", k, v)
	}
	keys := tr.Keys()
	if !sort.IntsAreSorted(keys) {
		t.Errorf("Keys not sorted: %v", keys)
	}
	if len(keys) != len(vals) {
		t.Errorf("len(Keys) = %d, want %d", len(keys), len(vals))
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New[int, int]()
	for i := 0; i < 10; i++ {
		tr.Put(i, i)
	}
	var visited []int
	tr.Ascend(func(k, _ int) bool {
		visited = append(visited, k)
		return k < 4
	})
	if len(visited) != 5 || visited[4] != 4 {
		t.Errorf("visited = %v, want [0..4]", visited)
	}
}

func TestDelete(t *testing.T) {
	tr := New[int, int]()
	for i := 0; i < 100; i++ {
		tr.Put(i, i)
	}
	for i := 0; i < 100; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d, want 50", tr.Len())
	}
	for i := 0; i < 100; i++ {
		_, ok := tr.Get(i)
		if (i%2 == 0) == ok {
			t.Errorf("Get(%d) present=%v after deleting evens", i, ok)
		}
	}
	if !tr.checkInvariants() {
		t.Error("invariants violated after deletions")
	}
	if tr.Delete(0) {
		t.Error("double delete returned true")
	}
}

func TestInvariantsUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New[uint32, int]()
	ref := map[uint32]int{}
	for i := 0; i < 5000; i++ {
		k := uint32(rng.Intn(800))
		if rng.Intn(3) == 0 {
			delete(ref, k)
			tr.Delete(k)
		} else {
			ref[k] = i
			tr.Put(k, i)
		}
		if i%500 == 0 && !tr.checkInvariants() {
			t.Fatalf("invariants violated at op %d", i)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
	if !tr.checkInvariants() {
		t.Error("final invariants violated")
	}
}

// Property: a tree built from any key set contains exactly that key set, in
// sorted order, and satisfies red-black invariants.
func TestTreeMatchesSetProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		tr := New[uint16, bool]()
		set := map[uint16]bool{}
		for _, k := range keys {
			tr.Put(k, true)
			set[k] = true
		}
		if tr.Len() != len(set) {
			return false
		}
		got := tr.Keys()
		want := make([]uint16, 0, len(set))
		for k := range set {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return tr.checkInvariants()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreePut(b *testing.B) {
	tr := New[uint32, int]()
	for i := 0; i < b.N; i++ {
		tr.Put(uint32(i*2654435761), i)
	}
}

func BenchmarkTreeGet(b *testing.B) {
	tr := New[uint32, int]()
	for i := 0; i < 1<<16; i++ {
		tr.Put(uint32(i*2654435761), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint32(i * 2654435761))
	}
}
