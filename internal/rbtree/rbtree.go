// Package rbtree implements a left-leaning red-black binary search tree used
// as the ordered index of PHFTL's RAM metadata cache (the paper indexes the
// cache by meta-page physical page number with a red-black tree).
//
// The tree is generic over ordered keys and arbitrary values and provides
// O(log n) Get/Put/Delete plus ordered traversal helpers.
package rbtree

import "cmp"

type color bool

const (
	red   color = true
	black color = false
)

type node[K cmp.Ordered, V any] struct {
	key         K
	val         V
	left, right *node[K, V]
	color       color
	size        int // nodes in subtree rooted here
}

// Tree is a left-leaning red-black BST. The zero value is an empty tree
// ready to use.
//
// Deleted nodes are kept on an internal freelist and recycled by Put, so a
// tree cycling at a steady size (PHFTL's fixed-capacity metadata cache
// evicting on every miss) stops allocating once it has warmed up. Recycled
// nodes have key and value zeroed so deleted values are not retained.
type Tree[K cmp.Ordered, V any] struct {
	root *node[K, V]
	free *node[K, V] // freelist of recycled nodes, linked through right
}

// New returns an empty tree.
func New[K cmp.Ordered, V any]() *Tree[K, V] { return &Tree[K, V]{} }

func (n *node[K, V]) isRed() bool { return n != nil && n.color == red }

func size[K cmp.Ordered, V any](n *node[K, V]) int {
	if n == nil {
		return 0
	}
	return n.size
}

// Len returns the number of keys in the tree.
func (t *Tree[K, V]) Len() int { return size(t.root) }

// Get returns the value stored under key, and whether it was present.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (t *Tree[K, V]) Contains(key K) bool {
	_, ok := t.Get(key)
	return ok
}

// Put inserts or replaces the value under key.
func (t *Tree[K, V]) Put(key K, val V) {
	t.root = t.put(t.root, key, val)
	t.root.color = black
}

func (t *Tree[K, V]) put(n *node[K, V], key K, val V) *node[K, V] {
	if n == nil {
		if f := t.free; f != nil {
			t.free = f.right
			f.key, f.val = key, val
			f.left, f.right = nil, nil
			f.color = red
			f.size = 1
			return f
		}
		return &node[K, V]{key: key, val: val, color: red, size: 1}
	}
	switch {
	case key < n.key:
		n.left = t.put(n.left, key, val)
	case key > n.key:
		n.right = t.put(n.right, key, val)
	default:
		n.val = val
	}
	return fixUp(n)
}

func rotateLeft[K cmp.Ordered, V any](h *node[K, V]) *node[K, V] {
	x := h.right
	h.right = x.left
	x.left = h
	x.color = h.color
	h.color = red
	x.size = h.size
	h.size = size(h.left) + size(h.right) + 1
	return x
}

func rotateRight[K cmp.Ordered, V any](h *node[K, V]) *node[K, V] {
	x := h.left
	h.left = x.right
	x.right = h
	x.color = h.color
	h.color = red
	x.size = h.size
	h.size = size(h.left) + size(h.right) + 1
	return x
}

func flipColors[K cmp.Ordered, V any](h *node[K, V]) {
	h.color = !h.color
	h.left.color = !h.left.color
	h.right.color = !h.right.color
}

func fixUp[K cmp.Ordered, V any](h *node[K, V]) *node[K, V] {
	if h.right.isRed() && !h.left.isRed() {
		h = rotateLeft(h)
	}
	if h.left.isRed() && h.left.left.isRed() {
		h = rotateRight(h)
	}
	if h.left.isRed() && h.right.isRed() {
		flipColors(h)
	}
	h.size = size(h.left) + size(h.right) + 1
	return h
}

func moveRedLeft[K cmp.Ordered, V any](h *node[K, V]) *node[K, V] {
	flipColors(h)
	if h.right != nil && h.right.left.isRed() {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight[K cmp.Ordered, V any](h *node[K, V]) *node[K, V] {
	flipColors(h)
	if h.left != nil && h.left.left.isRed() {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

// Delete removes key from the tree. It reports whether the key was present.
func (t *Tree[K, V]) Delete(key K) bool {
	if !t.Contains(key) {
		return false
	}
	if !t.root.left.isRed() && !t.root.right.isRed() {
		t.root.color = red
	}
	t.root = t.delete(t.root, key)
	if t.root != nil {
		t.root.color = black
	}
	return true
}

func (t *Tree[K, V]) delete(h *node[K, V], key K) *node[K, V] {
	if key < h.key {
		if !h.left.isRed() && h.left != nil && !h.left.left.isRed() {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, key)
	} else {
		if h.left.isRed() {
			h = rotateRight(h)
		}
		if key == h.key && h.right == nil {
			t.release(h)
			return nil
		}
		if !h.right.isRed() && h.right != nil && !h.right.left.isRed() {
			h = moveRedRight(h)
		}
		if key == h.key {
			m := minNode(h.right)
			h.key = m.key
			h.val = m.val
			h.right = t.deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, key)
		}
	}
	return fixUp(h)
}

func minNode[K cmp.Ordered, V any](n *node[K, V]) *node[K, V] {
	for n.left != nil {
		n = n.left
	}
	return n
}

func (t *Tree[K, V]) deleteMin(h *node[K, V]) *node[K, V] {
	if h.left == nil {
		t.release(h)
		return nil
	}
	if !h.left.isRed() && !h.left.left.isRed() {
		h = moveRedLeft(h)
	}
	h.left = t.deleteMin(h.left)
	return fixUp(h)
}

// release pushes a detached node onto the freelist, dropping its key/value so
// the tree does not retain deleted entries.
func (t *Tree[K, V]) release(n *node[K, V]) {
	var zeroK K
	var zeroV V
	n.key, n.val = zeroK, zeroV
	n.left = nil
	n.right = t.free
	t.free = n
}

// Min returns the smallest key and its value. ok is false for an empty tree.
func (t *Tree[K, V]) Min() (key K, val V, ok bool) {
	if t.root == nil {
		return key, val, false
	}
	n := minNode(t.root)
	return n.key, n.val, true
}

// Max returns the largest key and its value. ok is false for an empty tree.
func (t *Tree[K, V]) Max() (key K, val V, ok bool) {
	if t.root == nil {
		return key, val, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Ascend calls fn for every key/value pair in ascending key order until fn
// returns false.
func (t *Tree[K, V]) Ascend(fn func(key K, val V) bool) {
	ascend(t.root, fn)
}

func ascend[K cmp.Ordered, V any](n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return ascend(n.right, fn)
}

// Keys returns all keys in ascending order.
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.Len())
	t.Ascend(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// checkInvariants verifies BST order, no right-leaning red links, no
// consecutive red links, and perfect black balance. Used by tests.
func (t *Tree[K, V]) checkInvariants() bool {
	if t.root == nil {
		return true
	}
	if t.root.isRed() {
		return false
	}
	blackDepth := -1
	var walk func(n *node[K, V], depth int) bool
	walk = func(n *node[K, V], depth int) bool {
		if n == nil {
			if blackDepth == -1 {
				blackDepth = depth
			}
			return depth == blackDepth
		}
		if n.right.isRed() && !n.left.isRed() {
			return false // right-leaning red link
		}
		if n.isRed() && n.left.isRed() {
			return false // consecutive reds
		}
		if n.left != nil && n.left.key >= n.key {
			return false
		}
		if n.right != nil && n.right.key <= n.key {
			return false
		}
		if n.size != size(n.left)+size(n.right)+1 {
			return false
		}
		d := depth
		if !n.isRed() {
			d++
		}
		return walk(n.left, d) && walk(n.right, d)
	}
	return walk(t.root, 0)
}
