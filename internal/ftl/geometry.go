package ftl

import (
	"math"

	"github.com/phftl/phftl/internal/nand"
)

// GeometryFor sizes a device geometry that exports at least exportedPages of
// logical capacity under the given over-provisioning ratio, meta-page
// reservation, and GC reserve for a scheme with numStreams streams. It is
// the sizing helper the benchmark harnesses use to build scaled-down drives
// that keep the paper's capacity ratios.
//
// targetSBs steers the superblock count (GC granularity): more superblocks
// mean finer-grained GC. The result always satisfies ftl.New's spare-
// superblock requirement, growing the superblock count beyond targetSBs when
// the OP fraction alone cannot fund the GC reserve.
func GeometryFor(exportedPages int, opRatio float64, metaPagesPerSB, numStreams, dies, targetSBs, pageSize, oobSize int) nand.Geometry {
	if targetSBs < 2*(numStreams+2) {
		targetSBs = 2 * (numStreams + 2)
	}
	needData := float64(exportedPages) * (1 + opRatio)
	pagesPerBlock := int(math.Ceil(needData/float64(dies*targetSBs))) + metaPagesPerSB/dies
	if pagesPerBlock < 4 {
		pagesPerBlock = 4
	}
	dataPerSB := dies*pagesPerBlock - metaPagesPerSB
	for dataPerSB < 1 {
		pagesPerBlock++
		dataPerSB = dies*pagesPerBlock - metaPagesPerSB
	}
	sbs := targetSBs
	// Cap growth: when opRatio cannot fund the 5% watermark reserve at any
	// size, stop and let ftl.New report the configuration error.
	maxSBs := targetSBs*100 + 1000
	for sbs < maxSBs {
		totalData := sbs * dataPerSB
		exported := int(float64(totalData) / (1 + opRatio))
		// Spare must cover the GC floor (streams+1), the open superblocks'
		// transient unfilled slots (~streams), and a few superblocks of
		// aging garbage — otherwise GC is forced to harvest half-dead
		// victims and WA explodes regardless of placement quality.
		liveSBs := (exported + dataPerSB - 1) / dataPerSB
		spare := sbs - liveSBs
		if exported >= exportedPages && spare >= 2*numStreams+5 {
			break
		}
		sbs++
	}
	return nand.Geometry{
		PageSize:      pageSize,
		OOBSize:       oobSize,
		PagesPerBlock: pagesPerBlock,
		BlocksPerDie:  sbs,
		Dies:          dies,
	}
}
