package ftl

import (
	"math"
	"testing"
)

func view(valid, invalid, dataPages int, closeClock uint64, stream int) SBView {
	return SBView{
		ID: 1, Stream: stream, Valid: valid, Invalid: invalid,
		DataPages: dataPages, CloseClock: closeClock,
	}
}

func TestGreedyPrefersMostInvalid(t *testing.T) {
	p := GreedyPolicy{}
	a := p.Score(view(10, 90, 100, 0, 0), 1000)
	b := p.Score(view(50, 50, 100, 0, 0), 1000)
	if a <= b {
		t.Errorf("greedy: 90-invalid score %v <= 50-invalid score %v", a, b)
	}
}

func TestCostBenefitAgeBreaksTies(t *testing.T) {
	p := CostBenefitPolicy{}
	young := p.Score(view(50, 50, 100, 900, 0), 1000)
	old := p.Score(view(50, 50, 100, 100, 0), 1000)
	if old <= young {
		t.Errorf("cost-benefit: old score %v <= young score %v", old, young)
	}
	// Empty superblock is a free win.
	if !math.IsInf(p.Score(view(0, 100, 100, 0, 0), 1000), 1) {
		t.Error("cost-benefit: zero-valid superblock should score +Inf")
	}
}

func TestAdjustedGreedyDiscountsShortLivingSuperblocks(t *testing.T) {
	p := &AdjustedGreedyPolicy{
		Thresh:        FixedThreshold(1000),
		IsShortStream: func(s int) bool { return s == 1 },
	}
	clock := uint64(2000)
	// Same occupancy: short-living superblock recently closed must score
	// below a long-living one (Eq. 1 discount), because its valid pages are
	// about to die on their own.
	long := p.Score(view(50, 50, 100, 1900, 0), clock)
	short := p.Score(view(50, 50, 100, 1900, 1), clock)
	if short >= long {
		t.Errorf("fresh short-living sb score %v >= long-living %v", short, long)
	}
	// But as the short-living superblock ages past the threshold (likely
	// mispredictions), its score recovers: C grows, discount shrinks.
	shortOld := p.Score(view(50, 50, 100, 0, 1), clock)
	if shortOld <= short {
		t.Errorf("aged short-living sb score %v <= fresh %v", shortOld, short)
	}
	// Once C outgrows V·T the discount saturates at 1: an aged-out short
	// superblock (likely holding mispredicted pages, §III-D) scores exactly
	// like plain greedy — never *below* an equally-occupied long one.
	if shortOld != long {
		t.Errorf("aged-out short sb %v should equal plain-greedy score %v", shortOld, long)
	}
}

func TestAdjustedGreedyEdgeCases(t *testing.T) {
	p := &AdjustedGreedyPolicy{
		Thresh:        FixedThreshold(0), // before first window
		IsShortStream: func(s int) bool { return s == 1 },
	}
	got := p.Score(view(50, 50, 100, 0, 1), 100)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("zero-threshold score = %v", got)
	}
	p2 := &AdjustedGreedyPolicy{Thresh: FixedThreshold(100), IsShortStream: func(s int) bool { return true }}
	if !math.IsInf(p2.Score(view(0, 100, 100, 0, 1), 200), 1) {
		t.Error("zero-valid short sb should score +Inf")
	}
	// Nil IsShortStream treats everything as long-living.
	p3 := &AdjustedGreedyPolicy{Thresh: FixedThreshold(100)}
	if got := p3.Score(view(50, 50, 100, 0, 1), 200); got != 0.5 {
		t.Errorf("nil IsShortStream score = %v, want plain greedy 0.5", got)
	}
}

func TestPolicyNames(t *testing.T) {
	if (GreedyPolicy{}).Name() != "Greedy" {
		t.Error("greedy name")
	}
	if (CostBenefitPolicy{}).Name() != "CostBenefit" {
		t.Error("cost-benefit name")
	}
	if (&AdjustedGreedyPolicy{}).Name() != "AdjustedGreedy" {
		t.Error("adjusted-greedy name")
	}
}
