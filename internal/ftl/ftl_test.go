package ftl

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/phftl/phftl/internal/nand"
)

// smallGeo returns a geometry small enough for exhaustive tests but with
// enough superblocks to satisfy the GC reserve for 1-2 streams.
func smallGeo() nand.Geometry {
	return nand.Geometry{PageSize: 4096, OOBSize: 64, PagesPerBlock: 8, BlocksPerDie: 512, Dies: 2}
}

func newBaseFTL(t *testing.T) *FTL {
	t.Helper()
	cfg := DefaultConfig(smallGeo())
	f, err := New(cfg, NewBaseSeparator(), GreedyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig(smallGeo())
	if _, err := New(cfg, NewBaseSeparator(), GreedyPolicy{}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := cfg
	bad.MetaPagesPerSB = smallGeo().PagesPerSuperblock()
	if _, err := New(bad, NewBaseSeparator(), GreedyPolicy{}); err == nil {
		t.Error("meta pages consuming whole superblock accepted")
	}
	bad = cfg
	bad.GCWatermark = 0
	if _, err := New(bad, NewBaseSeparator(), GreedyPolicy{}); err == nil {
		t.Error("zero watermark accepted")
	}
	bad = cfg
	bad.OPRatio = -0.5
	if _, err := New(bad, NewBaseSeparator(), GreedyPolicy{}); err == nil {
		t.Error("negative OP accepted")
	}
	// OP too small to fund the GC reserve must be rejected up front.
	bad = cfg
	bad.OPRatio = 0.001
	if _, err := New(bad, NewBaseSeparator(), GreedyPolicy{}); err == nil {
		t.Error("unsustainable OP accepted")
	}
}

func TestWriteReadTrim(t *testing.T) {
	f := newBaseFTL(t)
	if err := f.Write(UserWrite{LPN: 5, ReqPages: 1}); err != nil {
		t.Fatal(err)
	}
	if f.MappedPPN(5) == nand.InvalidPPN {
		t.Fatal("lpn 5 unmapped after write")
	}
	if err := f.Read(5, 1); err != nil {
		t.Fatalf("read mapped: %v", err)
	}
	if err := f.Read(6, 1); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("read unmapped: %v", err)
	}
	if err := f.Trim(5); err != nil {
		t.Fatal(err)
	}
	if f.MappedPPN(5) != nand.InvalidPPN {
		t.Error("lpn 5 still mapped after trim")
	}
	if err := f.Trim(5); err != nil {
		t.Errorf("double trim: %v", err)
	}
	if f.Stats().Trims != 1 {
		t.Errorf("trims = %d", f.Stats().Trims)
	}
	if err := f.Write(UserWrite{LPN: nand.LPN(f.ExportedPages())}); !errors.Is(err, ErrLPNRange) {
		t.Errorf("out-of-range write: %v", err)
	}
	if err := f.Read(nand.LPN(f.ExportedPages()), 1); !errors.Is(err, ErrLPNRange) {
		t.Errorf("out-of-range read: %v", err)
	}
	if err := f.Trim(nand.LPN(f.ExportedPages())); !errors.Is(err, ErrLPNRange) {
		t.Errorf("out-of-range trim: %v", err)
	}
}

func TestOverwriteInvalidatesOldPage(t *testing.T) {
	f := newBaseFTL(t)
	if err := f.Write(UserWrite{LPN: 1}); err != nil {
		t.Fatal(err)
	}
	first := f.MappedPPN(1)
	if err := f.Write(UserWrite{LPN: 1}); err != nil {
		t.Fatal(err)
	}
	second := f.MappedPPN(1)
	if first == second {
		t.Fatal("overwrite did not relocate the page")
	}
	st, _ := f.Device().State(first)
	if st != nand.PageInvalid {
		t.Errorf("old page state = %v, want invalid", st)
	}
	if f.Clock() != 2 {
		t.Errorf("clock = %d, want 2", f.Clock())
	}
}

func TestVirtualClockCountsOnlyUserWrites(t *testing.T) {
	f := newBaseFTL(t)
	for i := 0; i < 100; i++ {
		if err := f.Write(UserWrite{LPN: nand.LPN(i % 10)}); err != nil {
			t.Fatal(err)
		}
		_ = f.Read(nand.LPN(i%10), 1)
	}
	if f.Clock() != 100 {
		t.Errorf("clock = %d, want 100 (reads must not advance it)", f.Clock())
	}
}

// fillDrive writes every exported LPN once, then applies extra random
// overwrites to force GC activity.
func fillDrive(t *testing.T, f *FTL, overwrites int, seed int64) {
	t.Helper()
	for lpn := 0; lpn < f.ExportedPages(); lpn++ {
		if err := f.Write(UserWrite{LPN: nand.LPN(lpn), ReqPages: 1}); err != nil {
			t.Fatalf("fill lpn %d: %v", lpn, err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < overwrites; i++ {
		lpn := nand.LPN(rng.Intn(f.ExportedPages()))
		if err := f.Write(UserWrite{LPN: lpn, ReqPages: 1}); err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
	}
}

func TestGCReclaimsSpaceUnderSteadyState(t *testing.T) {
	f := newBaseFTL(t)
	fillDrive(t, f, 4*f.ExportedPages(), 42)
	s := f.Stats()
	if s.GCVictims == 0 {
		t.Fatal("no GC happened despite 5 drive writes")
	}
	if s.GCPageWrites == 0 {
		t.Fatal("GC migrated no pages (suspicious for random overwrites)")
	}
	if f.FreeSuperblocks() == 0 {
		t.Fatal("free pool exhausted")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// WA sanity: uniform random overwrites at 7% OP must amplify writes.
	if wa := s.WA(); wa <= 0 {
		t.Errorf("WA = %v, want > 0 under uniform random", wa)
	}
}

func TestGCPreservesAllData(t *testing.T) {
	// After heavy churn every mapped LPN must still record the right LPN on
	// the device (no lost or cross-wired mappings).
	f := newBaseFTL(t)
	fillDrive(t, f, 3*f.ExportedPages(), 7)
	for lpn := 0; lpn < f.ExportedPages(); lpn++ {
		ppn := f.MappedPPN(nand.LPN(lpn))
		if ppn == nand.InvalidPPN {
			t.Fatalf("lpn %d lost its mapping", lpn)
		}
		got, err := f.Device().LPNAt(ppn)
		if err != nil {
			t.Fatal(err)
		}
		if got != nand.LPN(lpn) {
			t.Fatalf("lpn %d maps to page holding lpn %d", lpn, got)
		}
	}
}

func TestWAIdentityForSequentialFill(t *testing.T) {
	// Writing each LPN exactly once can trigger no GC migrations: WA = 0.
	f := newBaseFTL(t)
	for lpn := 0; lpn < f.ExportedPages(); lpn++ {
		if err := f.Write(UserWrite{LPN: nand.LPN(lpn)}); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.GCPageWrites != 0 {
		t.Errorf("GC migrated %d pages on first fill", s.GCPageWrites)
	}
	if wa := s.WA(); wa != 0 {
		t.Errorf("WA = %v, want 0", wa)
	}
}

func TestStatsAccounting(t *testing.T) {
	f := newBaseFTL(t)
	fillDrive(t, f, 2*f.ExportedPages(), 3)
	s := f.Stats()
	wantUser := uint64(3 * f.ExportedPages())
	if s.UserPageWrites != wantUser {
		t.Errorf("UserPageWrites = %d, want %d", s.UserPageWrites, wantUser)
	}
	// Device programs = user + GC + meta.
	if got := f.Device().Stats().Programs; got != s.FlashPageWrites() {
		t.Errorf("device programs %d != stats flash writes %d", got, s.FlashPageWrites())
	}
	// GC reads equal GC writes (every migrated page is read once).
	if s.GCPageReads != s.GCPageWrites {
		t.Errorf("GC reads %d != GC writes %d", s.GCPageReads, s.GCPageWrites)
	}
}

// hotColdSeparator is a two-stream oracle separator for testing
// separation-dependent behaviour: LPNs below the split are "hot".
type hotColdSeparator struct {
	NopSeparator
	split nand.LPN
}

func (h *hotColdSeparator) Name() string    { return "oracle" }
func (h *hotColdSeparator) NumStreams() int { return 2 }
func (h *hotColdSeparator) PlaceUserWrite(w UserWrite, _ uint64) (int, []byte) {
	if w.LPN < h.split {
		return 0, nil
	}
	return 1, nil
}
func (h *hotColdSeparator) PlaceGCWrite(nand.LPN, []byte, int, uint64) (int, []byte) {
	return 1, nil
}

func TestOracleSeparationBeatsBase(t *testing.T) {
	// A hot/cold workload: 90% of writes hit 10% of LPNs. Perfect separation
	// must yield materially lower WA than no separation — the core premise
	// of the paper (§II-B).
	run := func(sep Separator) float64 {
		cfg := DefaultConfig(smallGeo())
		f, err := New(cfg, sep, GreedyPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		// The hot set must be small relative to the OP slack (as in real
		// cloud traces) for separation to pay off; 1% of LPNs take 90% of
		// the writes.
		hot := f.ExportedPages() / 100
		for lpn := 0; lpn < f.ExportedPages(); lpn++ {
			if err := f.Write(UserWrite{LPN: nand.LPN(lpn)}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 6*f.ExportedPages(); i++ {
			var lpn int
			if rng.Float64() < 0.9 {
				lpn = rng.Intn(hot)
			} else {
				lpn = hot + rng.Intn(f.ExportedPages()-hot)
			}
			if err := f.Write(UserWrite{LPN: nand.LPN(lpn)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return f.Stats().WA()
	}
	split := nand.LPN(0)
	{
		cfg := DefaultConfig(smallGeo())
		f, err := New(cfg, NewBaseSeparator(), GreedyPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		split = nand.LPN(f.ExportedPages() / 100)
	}
	waBase := run(NewBaseSeparator())
	waOracle := run(&hotColdSeparator{split: split})
	if waOracle >= waBase*0.8 {
		t.Fatalf("oracle separation WA %.3f not clearly below base WA %.3f", waOracle, waBase)
	}
}

func TestMetaPagesProgrammedAtClose(t *testing.T) {
	cfg := DefaultConfig(smallGeo())
	cfg.MetaPagesPerSB = 1
	sep := &metaSep{}
	f, err := New(cfg, sep, GreedyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Fill exactly one superblock's data region.
	for i := 0; i < f.DataPagesPerSB(); i++ {
		if err := f.Write(UserWrite{LPN: nand.LPN(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if sep.metaCalls != 1 {
		t.Fatalf("MetaPages calls = %d, want 1", sep.metaCalls)
	}
	if f.Stats().MetaPageWrites != 1 {
		t.Fatalf("MetaPageWrites = %d, want 1", f.Stats().MetaPageWrites)
	}
	// The meta page occupies the superblock tail and holds our payload.
	sb := f.cfg.Geometry.SuperblockOf(f.MappedPPN(0))
	mppn := f.cfg.Geometry.SuperblockPPN(sb, f.DataPagesPerSB())
	lpn, _, err := f.ReadFlashPage(mppn)
	if err != nil {
		t.Fatal(err)
	}
	if lpn != nand.InvalidLPN {
		t.Errorf("meta page lpn = %d, want InvalidLPN", lpn)
	}
	data, err := f.ReadMetaPage(mppn)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 3 || data[0] != 0xAB {
		t.Errorf("meta payload = %v", data)
	}
}

type metaSep struct {
	NopSeparator
	metaCalls int
}

func (m *metaSep) Name() string    { return "meta" }
func (m *metaSep) NumStreams() int { return 1 }
func (m *metaSep) PlaceUserWrite(UserWrite, uint64) (int, []byte) {
	return 0, nil
}
func (m *metaSep) PlaceGCWrite(nand.LPN, []byte, int, uint64) (int, []byte) { return 0, nil }
func (m *metaSep) MetaPages(int) [][]byte {
	m.metaCalls++
	return [][]byte{{0xAB, 0xCD, 0xEF}}
}

func TestGCClassPropagation(t *testing.T) {
	// Pages migrated by GC enter class 1; re-migrated pages class 2, capped
	// at MaxGCClass. Observe via a separator that records classes.
	cfg := DefaultConfig(smallGeo())
	cfg.MaxGCClass = 3
	sep := &classRecorder{}
	f, err := New(cfg, sep, GreedyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for lpn := 0; lpn < f.ExportedPages(); lpn++ {
		if err := f.Write(UserWrite{LPN: nand.LPN(lpn)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10*f.ExportedPages(); i++ {
		if err := f.Write(UserWrite{LPN: nand.LPN(rng.Intn(f.ExportedPages()))}); err != nil {
			t.Fatal(err)
		}
	}
	if len(sep.classes) == 0 {
		t.Fatal("no GC writes observed")
	}
	seen := map[int]bool{}
	for _, c := range sep.classes {
		if c < 1 || c > 3 {
			t.Fatalf("gc class %d outside [1,3]", c)
		}
		seen[c] = true
	}
	if !seen[1] {
		t.Error("class 1 never observed")
	}
	if !seen[3] && !seen[2] {
		t.Error("no re-migration classes observed after 10 drive writes")
	}
}

type classRecorder struct {
	NopSeparator
	classes []int
}

func (c *classRecorder) Name() string    { return "classes" }
func (c *classRecorder) NumStreams() int { return 2 }
func (c *classRecorder) PlaceUserWrite(UserWrite, uint64) (int, []byte) {
	return 0, nil
}
func (c *classRecorder) PlaceGCWrite(_ nand.LPN, _ []byte, class int, _ uint64) (int, []byte) {
	c.classes = append(c.classes, class)
	return 1, nil
}
func (c *classRecorder) StreamGCClass(stream int) int {
	if stream == 1 {
		return 1
	}
	return 0
}

func TestGeometryForSatisfiesNew(t *testing.T) {
	for _, exported := range []int{2000, 8192, 24576} {
		for _, streams := range []int{1, 2, 7} {
			geo := GeometryFor(exported, 0.07, 0, streams, 2, 128, 16384, 64)
			cfg := DefaultConfig(geo)
			sep := &nStreamSep{n: streams}
			f, err := New(cfg, sep, GreedyPolicy{})
			if err != nil {
				t.Fatalf("exported=%d streams=%d: %v", exported, streams, err)
			}
			if f.ExportedPages() < exported {
				t.Errorf("exported=%d streams=%d: got %d pages", exported, streams, f.ExportedPages())
			}
		}
	}
}

type nStreamSep struct {
	NopSeparator
	n int
}

func (s *nStreamSep) Name() string                                   { return "n" }
func (s *nStreamSep) NumStreams() int                                { return s.n }
func (s *nStreamSep) PlaceUserWrite(UserWrite, uint64) (int, []byte) { return 0, nil }
func (s *nStreamSep) PlaceGCWrite(nand.LPN, []byte, int, uint64) (int, []byte) {
	return 0, nil
}

// trimSpySep records TrimAware callbacks for assertion.
type trimSpySep struct {
	BaseSeparator
	trims []struct {
		lpn   nand.LPN
		ppn   nand.PPN
		clock uint64
	}
}

func (s *trimSpySep) OnTrim(lpn nand.LPN, oldPPN nand.PPN, clock uint64) {
	s.trims = append(s.trims, struct {
		lpn   nand.LPN
		ppn   nand.PPN
		clock uint64
	}{lpn, oldPPN, clock})
}

func TestTrimAwareHookSeesOldPPN(t *testing.T) {
	sep := &trimSpySep{}
	f, err := New(DefaultConfig(smallGeo()), sep, GreedyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Write(UserWrite{LPN: 3, ReqPages: 1}); err != nil {
		t.Fatal(err)
	}
	want := f.MappedPPN(3)
	if err := f.Trim(3); err != nil {
		t.Fatal(err)
	}
	if len(sep.trims) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(sep.trims))
	}
	got := sep.trims[0]
	if got.lpn != 3 || got.ppn != want || got.clock != 1 {
		t.Errorf("hook got (lpn=%d ppn=%d clock=%d), want (3, %d, 1)", got.lpn, got.ppn, got.clock, want)
	}
	// Trimming an unmapped LPN must not re-fire the hook.
	if err := f.Trim(3); err != nil {
		t.Fatal(err)
	}
	if len(sep.trims) != 1 {
		t.Errorf("hook fired on unmapped trim")
	}
}

// TestTrimChurnInvariants drives randomized write/trim churn hard enough to
// force GC and verifies the victim index, valid counts, and L2P mapping stay
// consistent — trims must decrement valid counts exactly like overwrites.
func TestTrimChurnInvariants(t *testing.T) {
	f := newBaseFTL(t)
	rng := rand.New(rand.NewSource(7))
	exported := f.ExportedPages()
	mapped := make(map[nand.LPN]bool)
	var issued uint64
	for i := 0; i < 6*exported; i++ {
		lpn := nand.LPN(rng.Intn(exported))
		if rng.Intn(4) == 0 { // 25% trims
			wasMapped := f.MappedPPN(lpn) != nand.InvalidPPN
			if err := f.Trim(lpn); err != nil {
				t.Fatal(err)
			}
			if wasMapped {
				issued++
			}
			delete(mapped, lpn)
		} else {
			if err := f.Write(UserWrite{LPN: lpn, ReqPages: 1}); err != nil {
				t.Fatal(err)
			}
			mapped[lpn] = true
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}
	if f.Stats().Trims != issued {
		t.Errorf("Stats.Trims = %d, want %d (mapped trims issued)", f.Stats().Trims, issued)
	}
	for lpn := range mapped {
		if f.MappedPPN(lpn) == nand.InvalidPPN {
			t.Fatalf("lpn %d lost its mapping", lpn)
		}
	}
}
