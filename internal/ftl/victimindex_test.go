package ftl

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/phftl/phftl/internal/nand"
	"github.com/phftl/phftl/internal/obs"
)

// victimRecorder captures the sequence of GC victims an FTL collects.
type victimRecorder struct {
	victims []int32
}

func (r *victimRecorder) Record(ev obs.Event) {
	if ev.Kind == obs.KindGCStart {
		r.victims = append(r.victims, ev.SB)
	}
}

// diffProfile is one workload shape for the scan-vs-indexed differential.
type diffProfile struct {
	name  string
	write func(f *FTL, rng *rand.Rand) error
}

func diffProfiles() []diffProfile {
	return []diffProfile{
		{name: "uniform", write: func(f *FTL, rng *rand.Rand) error {
			return f.Write(UserWrite{LPN: nand.LPN(rng.Intn(f.ExportedPages())), ReqPages: 1})
		}},
		// 90% of writes hit the hottest 10% of LPNs; a sliver of trims mixed
		// in exercises the invalidate path outside Write.
		{name: "hotcold", write: func(f *FTL, rng *rand.Rand) error {
			var lpn nand.LPN
			if rng.Intn(10) < 9 {
				lpn = nand.LPN(rng.Intn(f.ExportedPages() / 10))
			} else {
				lpn = nand.LPN(rng.Intn(f.ExportedPages()))
			}
			if rng.Intn(64) == 0 {
				return f.Trim(lpn)
			}
			return f.Write(UserWrite{LPN: lpn, ReqPages: 1})
		}},
	}
}

func diffPolicies() []struct {
	name string
	make func() VictimPolicy
} {
	return []struct {
		name string
		make func() VictimPolicy
	}{
		{"greedy", func() VictimPolicy { return GreedyPolicy{} }},
		{"adjusted", func() VictimPolicy {
			return &AdjustedGreedyPolicy{
				Thresh:        FixedThreshold(4000),
				IsShortStream: func(stream int) bool { return stream == 0 },
			}
		}},
		// No score bound: exercises the indexed selector's full-descent path.
		{"costbenefit", func() VictimPolicy { return CostBenefitPolicy{} }},
	}
}

// runVictimProfile fills the drive and applies overwrites under the given
// mode, returning the victim sequence and final stats.
func runVictimProfile(t *testing.T, p diffProfile, policy VictimPolicy, mode VictimSelectorMode) ([]int32, Stats) {
	t.Helper()
	cfg := DefaultConfig(smallGeo())
	// hotColdSeparator (ftl_test.go) sends LPNs below split to stream 0 —
	// the "short-living" stream AdjustedGreedy discounts.
	f, err := New(cfg, &hotColdSeparator{split: 1}, policy)
	if err != nil {
		t.Fatal(err)
	}
	f.sep.(*hotColdSeparator).split = nand.LPN(f.ExportedPages() / 10)
	f.SetVictimSelectorMode(mode)
	rec := &victimRecorder{}
	f.SetRecorder(rec)
	for lpn := 0; lpn < f.ExportedPages(); lpn++ {
		if err := f.Write(UserWrite{LPN: nand.LPN(lpn), ReqPages: 1}); err != nil {
			t.Fatalf("fill lpn %d: %v", lpn, err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4*f.ExportedPages(); i++ {
		if err := p.write(f, rng); err != nil {
			t.Fatalf("%s op %d: %v", p.name, i, err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("%s invariants: %v", p.name, err)
	}
	return rec.victims, f.Stats()
}

// TestVictimSelectorDifferential drives the scan and indexed selectors over
// the same workloads and requires byte-identical victim sequences and final
// statistics — the guarantee that lets wabench results stay reproducible
// across the selector swap. CrossCheck mode additionally panics inside the
// FTL on the first divergent selection, pinpointing the clock if the two
// ever disagree.
func TestVictimSelectorDifferential(t *testing.T) {
	for _, p := range diffProfiles() {
		for _, pol := range diffPolicies() {
			t.Run(p.name+"/"+pol.name, func(t *testing.T) {
				scanV, scanS := runVictimProfile(t, p, pol.make(), VictimScan)
				idxV, idxS := runVictimProfile(t, p, pol.make(), VictimIndexed)
				crossV, crossS := runVictimProfile(t, p, pol.make(), VictimCrossCheck)
				if len(scanV) == 0 {
					t.Fatal("workload triggered no GC; differential is vacuous")
				}
				if !reflect.DeepEqual(scanV, idxV) {
					n := len(scanV)
					if len(idxV) < n {
						n = len(idxV)
					}
					for i := 0; i < n; i++ {
						if scanV[i] != idxV[i] {
							t.Fatalf("victim %d diverges: scan=%d indexed=%d", i, scanV[i], idxV[i])
						}
					}
					t.Fatalf("victim count diverges: scan=%d indexed=%d", len(scanV), len(idxV))
				}
				if scanS != idxS {
					t.Errorf("stats diverge:\nscan:    %+v\nindexed: %+v", scanS, idxS)
				}
				if !reflect.DeepEqual(scanV, crossV) || scanS != crossS {
					t.Error("cross-check mode diverges from scan")
				}
			})
		}
	}
}

// TestVictimIndexMaintenance checks the incremental index against ground
// truth after randomized open/close/invalidate/collect churn (CheckInvariants
// includes checkVictimIndex).
func TestVictimIndexMaintenance(t *testing.T) {
	f := newBaseFTL(t)
	rng := rand.New(rand.NewSource(3))
	for lpn := 0; lpn < f.ExportedPages(); lpn++ {
		if err := f.Write(UserWrite{LPN: nand.LPN(lpn), ReqPages: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2*f.ExportedPages(); i++ {
		lpn := nand.LPN(rng.Intn(f.ExportedPages()))
		if rng.Intn(32) == 0 {
			if err := f.Trim(lpn); err != nil {
				t.Fatal(err)
			}
		} else if err := f.Write(UserWrite{LPN: lpn, ReqPages: 1}); err != nil {
			t.Fatal(err)
		}
		if i%1024 == 0 {
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelectVictim(b *testing.B) {
	build := func(b *testing.B, mode VictimSelectorMode) *FTL {
		b.Helper()
		cfg := DefaultConfig(smallGeo())
		f, err := New(cfg, NewBaseSeparator(), GreedyPolicy{})
		if err != nil {
			b.Fatal(err)
		}
		f.SetVictimSelectorMode(mode)
		for lpn := 0; lpn < f.ExportedPages(); lpn++ {
			if err := f.Write(UserWrite{LPN: nand.LPN(lpn), ReqPages: 1}); err != nil {
				b.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 2*f.ExportedPages(); i++ {
			if err := f.Write(UserWrite{LPN: nand.LPN(rng.Intn(f.ExportedPages())), ReqPages: 1}); err != nil {
				b.Fatal(err)
			}
		}
		return f
	}
	b.Run("scan", func(b *testing.B) {
		f := build(b, VictimScan)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if f.selectVictim() < 0 {
				b.Fatal("no victim")
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		f := build(b, VictimIndexed)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if f.selectVictim() < 0 {
				b.Fatal("no victim")
			}
		}
	})
}
