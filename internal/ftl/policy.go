package ftl

import "math"

// SBView is the read-only view of a closed superblock offered to victim
// policies.
type SBView struct {
	ID         int
	Stream     int
	GCClass    int
	Valid      int    // valid data pages
	Invalid    int    // invalid data pages
	DataPages  int    // data-region capacity
	CloseClock uint64 // virtual clock when the superblock closed
}

// VictimPolicy scores GC victim candidates; the superblock with the highest
// score is collected. Scores of -Inf exclude a candidate.
type VictimPolicy interface {
	Name() string
	Score(sb SBView, clock uint64) float64
}

// GreedyPolicy picks the superblock with the most invalid pages — the
// classic minimum-valid-page-copy policy.
type GreedyPolicy struct{}

// Name implements VictimPolicy.
func (GreedyPolicy) Name() string { return "Greedy" }

// Score implements VictimPolicy.
func (GreedyPolicy) Score(sb SBView, _ uint64) float64 {
	return float64(sb.Invalid) / float64(sb.DataPages)
}

// CostBenefitPolicy is the Cost-Benefit policy of LFS (Rosenblum & Ousterhout
// 1992), used by the paper for baselines that do not specify a victim policy:
// score = age·(1−u) / 2u, where u is the valid-page fraction and age the time
// since the superblock closed.
type CostBenefitPolicy struct{}

// Name implements VictimPolicy.
func (CostBenefitPolicy) Name() string { return "CostBenefit" }

// Score implements VictimPolicy.
func (CostBenefitPolicy) Score(sb SBView, clock uint64) float64 {
	u := float64(sb.Valid) / float64(sb.DataPages)
	if u == 0 {
		return math.Inf(1) // free win: nothing to migrate
	}
	age := float64(clock - sb.CloseClock)
	return age * (1 - u) / (2 * u)
}

// ThresholdSource supplies the current classification threshold T (in
// virtual-clock units) to the Adjusted Greedy policy; PHFTL's adaptive
// labeler implements it.
type ThresholdSource interface {
	Threshold() float64
}

// FixedThreshold is a constant ThresholdSource for tests and baselines.
type FixedThreshold float64

// Threshold implements ThresholdSource.
func (t FixedThreshold) Threshold() float64 { return float64(t) }

// AdjustedGreedyPolicy implements the paper's Equation 1 (§III-D):
//
//	score = I / (V·T/C)  for superblocks holding short-living pages
//	score = I            otherwise
//
// where I and V are the invalid/valid page proportions, T the current
// classification threshold, and C the elapsed virtual time since the
// superblock closed. The V·T/C denominator discounts hot superblocks whose
// remaining valid pages are likely to die soon — but the discount decays
// with age (C), so superblocks full of mispredicted "false short-living"
// pages regain GC priority over genuinely hot ones.
type AdjustedGreedyPolicy struct {
	// Thresh supplies T. Required.
	Thresh ThresholdSource
	// IsShortStream reports whether a stream receives short-living pages.
	IsShortStream func(stream int) bool
}

// Name implements VictimPolicy.
func (p *AdjustedGreedyPolicy) Name() string { return "AdjustedGreedy" }

// Score implements VictimPolicy.
func (p *AdjustedGreedyPolicy) Score(sb SBView, clock uint64) float64 {
	inv := float64(sb.Invalid) / float64(sb.DataPages)
	if p.IsShortStream == nil || !p.IsShortStream(sb.Stream) {
		return inv
	}
	v := float64(sb.Valid) / float64(sb.DataPages)
	t := p.Thresh.Threshold()
	c := float64(clock - sb.CloseClock)
	if v == 0 {
		return math.Inf(1)
	}
	if t <= 0 || c <= 0 {
		// Degenerate window bootstrap: fall back to plain greedy with the
		// hot-superblock discount fully applied.
		return inv * 1e-6
	}
	// V·T/C is a *discount* divisor: while the superblock is younger than
	// the expected death time of its valid (hot) pages, its score shrinks;
	// once C outgrows V·T the pages have overstayed the prediction (likely
	// mispredicted) and the discount disappears. The divisor is clamped at
	// 1 so a short-living superblock never outranks an equally-invalid
	// long-living one purely by aging.
	discount := v * t / c
	if discount < 1 {
		discount = 1
	}
	return inv / discount
}
