// Package ftl implements the flash translation layer framework shared by
// every scheme in the PHFTL reproduction: a page-granularity L2P table,
// superblock-based allocation with round-robin die striping, multi-stream
// open superblocks (the mechanism data separation schemes plug into), the
// garbage-collection engine with pluggable victim-selection policies, and
// write-amplification accounting.
//
// Data separation schemes (Base, 2R, SepBIT, PHFTL) implement the Separator
// interface, which decides — for each user-written and GC-migrated page —
// which open superblock (stream) the page goes to, and optionally attaches
// per-page OOB metadata and per-superblock meta pages (PHFTL's ML metadata
// layout, paper §III-C).
package ftl

import "github.com/phftl/phftl/internal/nand"

// UserWrite describes one page-granularity host write with the request
// context PHFTL extracts features from.
type UserWrite struct {
	LPN      nand.LPN
	ReqPages int  // pages in the parent request (io_len)
	Seq      bool // parent request was sequential

	// OldPPN is filled in by the FTL before the separator sees the write:
	// the page's current physical location (InvalidPPN when never written).
	// Schemes with flash-resident per-page metadata use it to locate the
	// page's metadata entry.
	OldPPN nand.PPN
}

// Separator decides data placement. Implementations must be deterministic
// given the same call sequence; the FTL invokes them single-threaded.
type Separator interface {
	// Name identifies the scheme in reports.
	Name() string

	// NumStreams returns how many open superblocks the scheme maintains.
	// Stream IDs passed back to the FTL must lie in [0, NumStreams).
	NumStreams() int

	// StreamGCClass maps a stream ID to the GC class of pages it receives:
	// 0 for user-written data, k for pages GC'ed k times (paper §III-A(3)).
	StreamGCClass(stream int) int

	// PlaceUserWrite picks the stream for a host-written page and returns
	// the OOB payload to program alongside it (nil for schemes without
	// per-page metadata). clock is the global page-write virtual clock
	// *before* this write.
	PlaceUserWrite(w UserWrite, clock uint64) (stream int, oob []byte)

	// PlaceGCWrite picks the stream for a page migrated by GC. oldOOB is
	// the OOB payload read from the victim page (aliases device memory;
	// copy if retained); gcClass is the class the page is entering.
	PlaceGCWrite(lpn nand.LPN, oldOOB []byte, gcClass int, clock uint64) (stream int, oob []byte)

	// OnPagePlaced reports where a page landed after PlaceUserWrite or
	// PlaceGCWrite. Schemes that maintain flash-resident metadata use it to
	// associate the metadata entry with its (superblock, offset) slot.
	OnPagePlaced(lpn nand.LPN, ppn nand.PPN, userWrite bool)

	// OnUserRead reports a host read of one page (feature bookkeeping).
	OnUserRead(lpn nand.LPN, reqPages int)

	// MetaPages is called when a superblock's data region fills, before the
	// superblock closes. It must return exactly Config.MetaPagesPerSB
	// buffers, programmed into the superblock's tail pages. The FTL copies
	// the buffers while programming and never retains them, so schemes may
	// reuse them across calls.
	MetaPages(sb int) [][]byte

	// OnSuperblockErased is called after GC erases a superblock, so schemes
	// can invalidate cached metadata addressed by physical page numbers.
	OnSuperblockErased(sb int)
}

// TrimAware is an optional Separator extension: schemes that keep per-page
// lifetime state implement it to observe host discards. OnTrim is invoked
// for every trim of a *mapped* LPN, before the FTL invalidates the page:
// oldPPN is the page's physical location at that moment (so schemes with
// flash-resident metadata can invalidate the matching entry), and clock is
// the user-page-write virtual clock. A trim is a ground-truth invalidation —
// the page's lifetime resolves at the trim, exactly like an overwrite,
// except no new version is created.
type TrimAware interface {
	OnTrim(lpn nand.LPN, oldPPN nand.PPN, clock uint64)
}

// NopSeparator provides no-op implementations of the optional Separator
// callbacks; scheme implementations embed it and override what they need.
type NopSeparator struct{}

// StreamGCClass returns 0 (everything is user class).
func (NopSeparator) StreamGCClass(int) int { return 0 }

// OnPagePlaced does nothing.
func (NopSeparator) OnPagePlaced(nand.LPN, nand.PPN, bool) {}

// OnUserRead does nothing.
func (NopSeparator) OnUserRead(nand.LPN, int) {}

// MetaPages returns nil (no meta pages reserved).
func (NopSeparator) MetaPages(int) [][]byte { return nil }

// OnSuperblockErased does nothing.
func (NopSeparator) OnSuperblockErased(int) {}

// BaseSeparator is the no-separation baseline ("Base" in the evaluation,
// FEMU's original FTL): user writes and GC migrations share one stream.
type BaseSeparator struct {
	NopSeparator
}

// NewBaseSeparator returns the Base scheme.
func NewBaseSeparator() *BaseSeparator { return &BaseSeparator{} }

// Name implements Separator.
func (*BaseSeparator) Name() string { return "Base" }

// NumStreams implements Separator: a single shared stream.
func (*BaseSeparator) NumStreams() int { return 1 }

// PlaceUserWrite implements Separator.
func (*BaseSeparator) PlaceUserWrite(UserWrite, uint64) (int, []byte) { return 0, nil }

// PlaceGCWrite implements Separator.
func (*BaseSeparator) PlaceGCWrite(nand.LPN, []byte, int, uint64) (int, []byte) { return 0, nil }
