package ftl

import (
	"errors"
	"fmt"
	"math"

	"github.com/phftl/phftl/internal/metrics"
	"github.com/phftl/phftl/internal/nand"
	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/par"
)

// Config parameterizes an FTL instance.
type Config struct {
	Geometry nand.Geometry

	// OPRatio is the over-provisioning ratio: the exported logical capacity
	// is data capacity / (1 + OPRatio). The paper uses 7%.
	OPRatio float64

	// GCWatermark triggers GC after a write when the fraction of free
	// superblocks falls to or below this value. The paper uses 5%.
	GCWatermark float64

	// MetaPagesPerSB reserves tail pages of every superblock for
	// scheme-managed metadata (PHFTL's meta pages). 0 for schemes without
	// flash-resident metadata.
	MetaPagesPerSB int

	// MaxGCClass caps the per-page GC count used for GC-write separation
	// (paper: pages GC'ed five times or more share a superblock).
	MaxGCClass int

	// CountHostReads charges host reads as flash reads on the device.
	// WA-only experiments leave it false for speed; timing models set it.
	CountHostReads bool
}

// DefaultConfig returns the paper's parameters for a given geometry.
func DefaultConfig(geo nand.Geometry) Config {
	return Config{
		Geometry:    geo,
		OPRatio:     0.07,
		GCWatermark: 0.05,
		MaxGCClass:  5,
	}
}

// SuperblockState is the lifecycle state of a superblock.
type SuperblockState uint8

const (
	// SBFree means the superblock is erased and on the free list.
	SBFree SuperblockState = iota
	// SBOpen means the superblock is accepting writes for one stream.
	SBOpen
	// SBClosed means the superblock is full and awaiting GC.
	SBClosed
)

type superblock struct {
	state      SuperblockState
	stream     int
	gcClass    int
	writePtr   int // next data-region allocation offset
	valid      int // valid data pages
	openClock  uint64
	closeClock uint64
}

// Stats aggregates FTL activity. Page counts are in pages.
type Stats struct {
	UserPageWrites uint64 // U: host-written pages
	GCPageWrites   uint64 // valid-page migrations
	MetaPageWrites uint64 // scheme meta-page programs
	HostPageReads  uint64
	GCPageReads    uint64
	GCVictims      uint64 // superblocks collected
	GCFutile       uint64 // GC passes that found no victim with invalid pages
	Trims          uint64
}

// FlashPageWrites returns F: every page programmed to flash (user + GC +
// meta).
func (s Stats) FlashPageWrites() uint64 {
	return s.UserPageWrites + s.GCPageWrites + s.MetaPageWrites
}

// WA returns the paper's write amplification (F−U)/U including meta-page
// writes in F.
func (s Stats) WA() float64 {
	return metrics.WriteAmp(s.FlashPageWrites(), s.UserPageWrites)
}

// DataWA returns (F−U)/U counting only data-page writes, isolating GC
// amplification from metadata overhead.
func (s Stats) DataWA() float64 {
	return metrics.WriteAmp(s.UserPageWrites+s.GCPageWrites, s.UserPageWrites)
}

// Errors returned by the FTL.
var (
	ErrLPNRange    = errors.New("ftl: LPN beyond exported capacity")
	ErrNoFreeSpace = errors.New("ftl: free superblock pool exhausted")
	ErrUnmapped    = errors.New("ftl: read of unmapped LPN")
)

// FTL is the flash translation layer engine. It is not safe for concurrent
// use.
type FTL struct {
	cfg     Config
	dev     *nand.Device
	sep     Separator
	trimSep TrimAware // sep's TrimAware view, nil if not implemented
	policy  VictimPolicy

	l2p       []nand.PPN
	sbs       []superblock
	free      []int // free superblock IDs (LIFO)
	open      []int // stream -> open superblock ID, -1 if none
	dataPages int   // data pages per superblock
	exported  int   // exported logical pages
	minFree   int   // hard GC floor: always keep this many free superblocks

	clock uint64 // virtual time: user pages written
	stats Stats

	// vidx buckets closed superblocks by invalid-page count; victimMode
	// picks the selector implementation (see victimindex.go). The index is
	// maintained in every mode.
	vidx       victimIndex
	victimMode VictimSelectorMode

	// rec, when non-nil, receives structured trace events (superblock
	// lifecycle, GC, write stalls). Every emit is guarded by a nil check so
	// the disabled path costs one predictable branch.
	rec obs.Recorder

	// pool, when non-nil, snapshots GC victims die-parallel (SetParallel).
	// The migration itself — PPN assignment, map updates, read accounting —
	// always runs serially in ascending offset order, so collection results
	// are byte-identical with and without a pool.
	pool     *par.Pool
	gcSnaps  []gcPageSnap
	gcVictim int
	gcLaneFn func(lane int)
}

// gcPageSnap is one victim page captured by the parallel snapshot stage. The
// OOB slice aliases device memory, which stays unmutated until the victim's
// erase — after the merge loop has consumed every snapshot.
type gcPageSnap struct {
	lpn   nand.LPN
	oob   []byte
	state nand.PageState
}

// New assembles an FTL over a fresh device.
func New(cfg Config, sep Separator, policy VictimPolicy) (*FTL, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	dev, err := nand.NewDevice(cfg.Geometry)
	if err != nil {
		return nil, err
	}
	return NewWithDevice(cfg, dev, sep, policy)
}

// NewWithDevice assembles an FTL over an existing (fresh) device, letting
// callers install device hooks first.
func NewWithDevice(cfg Config, dev *nand.Device, sep Separator, policy VictimPolicy) (*FTL, error) {
	geo := cfg.Geometry
	dataPages := geo.PagesPerSuperblock() - cfg.MetaPagesPerSB
	if dataPages <= 0 {
		return nil, fmt.Errorf("ftl: MetaPagesPerSB %d leaves no data pages (superblock has %d)",
			cfg.MetaPagesPerSB, geo.PagesPerSuperblock())
	}
	if cfg.OPRatio < 0 {
		return nil, fmt.Errorf("ftl: negative OPRatio %v", cfg.OPRatio)
	}
	if cfg.GCWatermark <= 0 || cfg.GCWatermark >= 1 {
		return nil, fmt.Errorf("ftl: GCWatermark %v outside (0,1)", cfg.GCWatermark)
	}
	if cfg.MaxGCClass < 1 {
		cfg.MaxGCClass = 1
	}
	totalData := geo.Superblocks() * dataPages
	exported := int(float64(totalData) / (1 + cfg.OPRatio))
	if exported < 1 {
		return nil, fmt.Errorf("ftl: configuration exports no capacity")
	}
	if sep.NumStreams() < 1 {
		return nil, fmt.Errorf("ftl: separator %q declares %d streams", sep.Name(), sep.NumStreams())
	}
	if geo.Superblocks() < 2*(sep.NumStreams()+2) {
		return nil, fmt.Errorf("ftl: %d streams need at least %d superblocks, geometry provides %d",
			sep.NumStreams(), 2*(sep.NumStreams()+2), geo.Superblocks())
	}
	f := &FTL{
		cfg:       cfg,
		dev:       dev,
		sep:       sep,
		policy:    policy,
		l2p:       make([]nand.PPN, exported),
		sbs:       make([]superblock, geo.Superblocks()),
		open:      make([]int, sep.NumStreams()),
		dataPages: dataPages,
		exported:  exported,
	}
	f.trimSep, _ = sep.(TrimAware)
	for i := range f.l2p {
		f.l2p[i] = nand.InvalidPPN
	}
	f.vidx.init(geo.Superblocks(), dataPages)
	// Safety floor: one GC pass can open a destination superblock per
	// stream before the victim's erase lands, so this many superblocks must
	// always stay free or allocation deadlocks.
	f.minFree = sep.NumStreams() + 1
	// The physical spare (superblocks not needed to hold the exported
	// capacity) must exceed that floor, or GC can never make progress once
	// the drive fills.
	liveSBs := (exported + dataPages - 1) / dataPages
	spare := geo.Superblocks() - liveSBs
	if spare < f.minFree+2 {
		return nil, fmt.Errorf(
			"ftl: only %d spare superblocks for a GC floor of %d; increase OPRatio or device size",
			spare, f.minFree)
	}
	for i := range f.open {
		f.open[i] = -1
	}
	// Free list: high IDs popped first keeps low superblocks for early data,
	// which makes traces reproducible and debuggable.
	for sb := geo.Superblocks() - 1; sb >= 0; sb-- {
		f.free = append(f.free, sb)
	}
	return f, nil
}

// Device exposes the underlying NAND device (read-only use by schemes and
// timing models).
func (f *FTL) Device() *nand.Device { return f.dev }

// Config returns the configuration the FTL runs with.
func (f *FTL) Config() Config { return f.cfg }

// ExportedPages returns the logical capacity in pages.
func (f *FTL) ExportedPages() int { return f.exported }

// DataPagesPerSB returns the data-region size of each superblock.
func (f *FTL) DataPagesPerSB() int { return f.dataPages }

// Clock returns the virtual time: total user pages written so far.
func (f *FTL) Clock() uint64 { return f.clock }

// Stats returns a copy of the accumulated statistics.
func (f *FTL) Stats() Stats { return f.stats }

// Separator returns the installed data-separation scheme.
func (f *FTL) Separator() Separator { return f.sep }

// SetRecorder installs (or with nil removes) the trace-event recorder.
func (f *FTL) SetRecorder(r obs.Recorder) { f.rec = r }

// OpenFill returns the per-stream fill fraction (pages written / data
// pages) of each stream's open superblock; streams with no open superblock
// report 0. The returned slice is reused across calls.
func (f *FTL) OpenFill(dst []float64) []float64 {
	if cap(dst) < len(f.open) {
		dst = make([]float64, len(f.open))
	}
	dst = dst[:len(f.open)]
	for stream, sbID := range f.open {
		if sbID < 0 {
			dst[stream] = 0
			continue
		}
		dst[stream] = float64(f.sbs[sbID].writePtr) / float64(f.dataPages)
	}
	return dst
}

// MappedPPN returns the current physical location of an LPN, or InvalidPPN.
func (f *FTL) MappedPPN(lpn nand.LPN) nand.PPN {
	if int(lpn) >= f.exported {
		return nand.InvalidPPN
	}
	return f.l2p[lpn]
}

// allocPage takes the next page of the stream's open superblock, opening a
// fresh superblock when needed, and returns its PPN. It does NOT close full
// superblocks; the caller must invoke closeIfFull after programming.
func (f *FTL) allocPage(stream, gcClass int) (nand.PPN, error) {
	sbID := f.open[stream]
	if sbID < 0 {
		if len(f.free) == 0 {
			return nand.InvalidPPN, fmt.Errorf("%w: stream %d", ErrNoFreeSpace, stream)
		}
		sbID = f.free[len(f.free)-1]
		f.free = f.free[:len(f.free)-1]
		sb := &f.sbs[sbID]
		sb.state = SBOpen
		sb.stream = stream
		sb.gcClass = gcClass
		sb.writePtr = 0
		sb.valid = 0
		sb.openClock = f.clock
		f.open[stream] = sbID
		if f.rec != nil {
			f.rec.Record(obs.Event{
				Kind: obs.KindSBOpen, Clock: f.clock,
				SB: int32(sbID), Stream: int16(stream), GCClass: int16(gcClass),
				B: int64(len(f.free)),
			})
		}
	}
	sb := &f.sbs[sbID]
	ppn := f.cfg.Geometry.SuperblockPPN(sbID, sb.writePtr)
	sb.writePtr++
	sb.valid++
	return ppn, nil
}

// closeIfFull seals the stream's open superblock when its data region is
// full: the separator's meta pages are programmed into the tail and the
// superblock transitions to SBClosed.
func (f *FTL) closeIfFull(stream int) error {
	sbID := f.open[stream]
	if sbID < 0 {
		return nil
	}
	sb := &f.sbs[sbID]
	if sb.writePtr < f.dataPages {
		return nil
	}
	if f.cfg.MetaPagesPerSB > 0 {
		pages := f.sep.MetaPages(sbID)
		if len(pages) != f.cfg.MetaPagesPerSB {
			return fmt.Errorf("ftl: separator %q returned %d meta pages, want %d",
				f.sep.Name(), len(pages), f.cfg.MetaPagesPerSB)
		}
		for i, buf := range pages {
			ppn := f.cfg.Geometry.SuperblockPPN(sbID, f.dataPages+i)
			if err := f.dev.ProgramFull(ppn, nand.InvalidLPN, buf, nil); err != nil {
				return fmt.Errorf("ftl: meta page program: %w", err)
			}
			f.stats.MetaPageWrites++
		}
	}
	sb.state = SBClosed
	sb.closeClock = f.clock
	f.open[stream] = -1
	// Pages can be invalidated while the superblock is still open, so it
	// enters the victim index at its current invalid count, not zero.
	f.vidx.insert(sbID, f.dataPages-sb.valid)
	if f.rec != nil {
		f.rec.Record(obs.Event{
			Kind: obs.KindSBClose, Clock: f.clock,
			SB: int32(sbID), Stream: int16(stream), GCClass: int16(sb.gcClass),
			A: int64(sb.valid),
		})
	}
	return nil
}

// Write performs one page-granularity host write.
func (f *FTL) Write(w UserWrite) error {
	if int(w.LPN) >= f.exported {
		return fmt.Errorf("%w: %d >= %d", ErrLPNRange, w.LPN, f.exported)
	}
	w.OldPPN = f.l2p[w.LPN]
	stream, oob := f.sep.PlaceUserWrite(w, f.clock)
	ppn, err := f.allocPage(stream, 0)
	if err != nil {
		return err
	}
	if err := f.dev.Program(ppn, w.LPN, oob); err != nil {
		return err
	}
	f.invalidateOld(w.LPN)
	f.l2p[w.LPN] = ppn
	f.clock++
	f.stats.UserPageWrites++
	f.sep.OnPagePlaced(w.LPN, ppn, true)
	if err := f.closeIfFull(stream); err != nil {
		return err
	}
	return f.maybeGC()
}

func (f *FTL) invalidateOld(lpn nand.LPN) {
	old := f.l2p[lpn]
	if old == nand.InvalidPPN {
		return
	}
	if err := f.dev.Invalidate(old); err != nil {
		// Programming errors above guarantee this cannot happen; a failure
		// here indicates simulator state corruption.
		panic(fmt.Sprintf("ftl: invalidate %d: %v", old, err))
	}
	sbID := f.cfg.Geometry.SuperblockOf(old)
	sb := &f.sbs[sbID]
	sb.valid--
	if sb.state == SBClosed {
		f.vidx.bump(sbID)
	}
}

// Read performs one page-granularity host read. It returns ErrUnmapped for
// never-written LPNs (hosts read zeroes there; callers may ignore it).
func (f *FTL) Read(lpn nand.LPN, reqPages int) error {
	if int(lpn) >= f.exported {
		return fmt.Errorf("%w: %d >= %d", ErrLPNRange, lpn, f.exported)
	}
	f.sep.OnUserRead(lpn, reqPages)
	ppn := f.l2p[lpn]
	if ppn == nand.InvalidPPN {
		return ErrUnmapped
	}
	f.stats.HostPageReads++
	if f.cfg.CountHostReads {
		if _, _, err := f.dev.Read(ppn); err != nil {
			return err
		}
	}
	return nil
}

// Trim invalidates an LPN (e.g. a discard command). Trims of unmapped LPNs
// are no-ops. The separator's TrimAware hook (if any) fires before the page
// is invalidated, so the scheme can still resolve metadata addressed by the
// old physical location.
func (f *FTL) Trim(lpn nand.LPN) error {
	if int(lpn) >= f.exported {
		return fmt.Errorf("%w: %d >= %d", ErrLPNRange, lpn, f.exported)
	}
	if f.l2p[lpn] == nand.InvalidPPN {
		return nil
	}
	if f.trimSep != nil {
		f.trimSep.OnTrim(lpn, f.l2p[lpn], f.clock)
	}
	f.invalidateOld(lpn)
	f.l2p[lpn] = nand.InvalidPPN
	f.stats.Trims++
	return nil
}

// ReadFlashPage reads an arbitrary physical page's logical identity and OOB
// payload, charging a flash read.
func (f *FTL) ReadFlashPage(ppn nand.PPN) (nand.LPN, []byte, error) {
	return f.dev.Read(ppn)
}

// ReadMetaPage reads the data payload of a (metadata) page, charging a flash
// read. PHFTL's metadata store uses it to fetch meta pages on cache misses.
func (f *FTL) ReadMetaPage(ppn nand.PPN) ([]byte, error) {
	_, data, _, err := f.dev.ReadFull(ppn)
	return data, err
}

// FreeSuperblocks returns the current number of free superblocks.
func (f *FTL) FreeSuperblocks() int { return len(f.free) }

// maybeGC implements the paper's GC trigger (§III-D): after each write, if
// the proportion of free superblocks is below the watermark, one victim is
// collected. Collecting only one victim per write lets the free pool float
// below the watermark under pressure, so garbage ages toward fully-dead
// superblocks instead of being harvested prematurely — the free pool is a
// trigger, not a reserve. A hard floor (enough free superblocks for every
// stream to open a GC destination) is enforced unconditionally to keep
// allocation deadlock-free.
func (f *FTL) maybeGC() error {
	for len(f.free) <= f.minFree {
		// The free pool has hit the hard floor: the host write is stalled
		// behind synchronous reclamation.
		if f.rec != nil {
			f.rec.Record(obs.Event{
				Kind: obs.KindWriteStall, Clock: f.clock,
				SB: -1, Stream: -1, GCClass: -1,
				A: int64(len(f.free)),
			})
		}
		victim := f.selectVictim()
		if victim < 0 {
			f.stats.GCFutile++
			return nil
		}
		if err := f.collect(victim); err != nil {
			return err
		}
	}
	if float64(len(f.free))/float64(f.cfg.Geometry.Superblocks()) < f.cfg.GCWatermark {
		victim := f.selectVictim()
		if victim < 0 {
			f.stats.GCFutile++
			return nil
		}
		return f.collect(victim)
	}
	return nil
}

// selectVictim returns the closed superblock with the highest policy score,
// or -1 when no closed superblock has any invalid page (GC would make no
// progress). Ties are broken toward the lowest superblock ID; every selector
// implementation must preserve that guarantee so traces stay reproducible.
func (f *FTL) selectVictim() int {
	switch f.victimMode {
	case VictimScan:
		return f.selectVictimScan()
	case VictimCrossCheck:
		s := f.selectVictimScan()
		i := f.selectVictimIndexed()
		if s != i {
			panic(fmt.Sprintf("ftl: victim selector divergence at clock %d: scan=%d indexed=%d", f.clock, s, i))
		}
		return s
	default:
		return f.selectVictimIndexed()
	}
}

// selectVictimScan is the reference selector: a full scan over all
// superblocks in ascending ID order with a strict score comparison, which
// realizes the lowest-ID tie-break implicitly.
func (f *FTL) selectVictimScan() int {
	best := -1
	bestScore := math.Inf(-1)
	for id := range f.sbs {
		sb := &f.sbs[id]
		if sb.state != SBClosed {
			continue
		}
		invalid := f.dataPages - sb.valid
		if invalid == 0 {
			continue
		}
		view := SBView{
			ID:         id,
			Stream:     sb.stream,
			GCClass:    sb.gcClass,
			Valid:      sb.valid,
			Invalid:    invalid,
			DataPages:  f.dataPages,
			CloseClock: sb.closeClock,
		}
		if score := f.policy.Score(view, f.clock); score > bestScore {
			bestScore = score
			best = id
		}
	}
	return best
}

// SetParallel installs (or removes, with nil) the worker pool used for
// die-parallel GC victim snapshots. Switching pools never changes collection
// results — victim sequences, stats, events and wear are byte-identical —
// only wall-clock.
func (f *FTL) SetParallel(p *par.Pool) {
	f.pool = p
	if f.gcLaneFn == nil {
		f.gcLaneFn = f.gcSnapshotLane
	}
}

// gcSnapshotLane captures the victim pages of every die assigned to one pool
// lane (die ≡ lane mod pool size). PeekPage performs no accounting and no
// hooks, so concurrent lanes never race; the serial merge charges the reads.
func (f *FTL) gcSnapshotLane(lane int) {
	geo := f.cfg.Geometry
	lanes := f.pool.Lanes()
	for die := lane; die < geo.Dies; die += lanes {
		for off := die; off < f.dataPages; off += geo.Dies {
			st, lpn, oob := f.dev.PeekPage(geo.SuperblockPPN(f.gcVictim, off))
			f.gcSnaps[off] = gcPageSnap{state: st, lpn: lpn, oob: oob}
		}
	}
}

// migratePage relocates one valid victim page: separator placement, program,
// invalidate, map update, accounting. Shared by the serial and parallel GC
// paths — both call it in ascending victim offset order.
func (f *FTL) migratePage(sb *superblock, victimPPN nand.PPN, lpn nand.LPN, oldOOB []byte, class int) error {
	stream, oob := f.sep.PlaceGCWrite(lpn, oldOOB, class, f.clock)
	newPPN, err := f.allocPage(stream, class)
	if err != nil {
		return err
	}
	if err := f.dev.Program(newPPN, lpn, oob); err != nil {
		return err
	}
	if err := f.dev.Invalidate(victimPPN); err != nil {
		return err
	}
	sb.valid--
	f.l2p[lpn] = newPPN
	f.stats.GCPageWrites++
	f.sep.OnPagePlaced(lpn, newPPN, false)
	return f.closeIfFull(stream)
}

// collect migrates the victim's valid pages and erases it.
func (f *FTL) collect(victim int) error {
	geo := f.cfg.Geometry
	sb := &f.sbs[victim]
	// The victim leaves the index before migration: its valid count decays
	// page by page below, and it re-enters only when it closes again.
	f.vidx.remove(victim)
	class := sb.gcClass + 1
	if class > f.cfg.MaxGCClass {
		class = f.cfg.MaxGCClass
	}
	victimStream, victimClass := sb.stream, sb.gcClass
	validAtStart := sb.valid
	validRatio := float64(validAtStart) / float64(f.dataPages)
	if f.rec != nil {
		f.rec.Record(obs.Event{
			Kind: obs.KindGCStart, Clock: f.clock,
			SB: int32(victim), Stream: int16(victimStream), GCClass: int16(victimClass),
			A: int64(validAtStart), B: int64(len(f.free)), F0: validRatio,
		})
	}
	if f.pool != nil {
		// Stage 1 (parallel): snapshot every victim page, partitioned by die.
		// Stage 2 (serial, ascending offset): charge reads and migrate — the
		// same order, accounting and placement decisions as the serial path.
		if len(f.gcSnaps) < f.dataPages {
			f.gcSnaps = make([]gcPageSnap, f.dataPages)
		}
		f.gcVictim = victim
		f.pool.Run(f.gcLaneFn)
		for off := 0; off < f.dataPages; off++ {
			snap := &f.gcSnaps[off]
			if snap.state != nand.PageValid {
				continue
			}
			ppn := geo.SuperblockPPN(victim, off)
			f.dev.ChargeRead(ppn)
			f.stats.GCPageReads++
			if err := f.migratePage(sb, ppn, snap.lpn, snap.oob, class); err != nil {
				return err
			}
		}
	} else {
		for off := 0; off < f.dataPages; off++ {
			ppn := geo.SuperblockPPN(victim, off)
			st, err := f.dev.State(ppn)
			if err != nil {
				return err
			}
			if st != nand.PageValid {
				continue
			}
			lpn, oldOOB, err := f.dev.Read(ppn)
			if err != nil {
				return err
			}
			f.stats.GCPageReads++
			if err := f.migratePage(sb, ppn, lpn, oldOOB, class); err != nil {
				return err
			}
		}
	}
	// Invalidate still-valid meta pages so the erase precondition holds.
	for off := f.dataPages; off < geo.PagesPerSuperblock(); off++ {
		ppn := geo.SuperblockPPN(victim, off)
		st, err := f.dev.State(ppn)
		if err != nil {
			return err
		}
		if st == nand.PageValid {
			if err := f.dev.Invalidate(ppn); err != nil {
				return err
			}
		}
	}
	if err := f.dev.EraseSuperblock(victim); err != nil {
		return err
	}
	sb.state = SBFree
	sb.stream = 0
	sb.gcClass = 0
	sb.writePtr = 0
	sb.valid = 0
	f.free = append(f.free, victim)
	f.stats.GCVictims++
	f.sep.OnSuperblockErased(victim)
	if f.rec != nil {
		f.rec.Record(obs.Event{
			Kind: obs.KindGCEnd, Clock: f.clock,
			SB: int32(victim), Stream: int16(victimStream), GCClass: int16(victimClass),
			A: int64(validAtStart), B: int64(len(f.free)), F0: validRatio,
		})
	}
	return nil
}

// SuperblockView returns the policy view of any superblock (for inspection
// and tests).
func (f *FTL) SuperblockView(id int) SBView {
	sb := &f.sbs[id]
	written := sb.writePtr
	if sb.state == SBClosed {
		written = f.dataPages
	}
	return SBView{
		ID:         id,
		Stream:     sb.stream,
		GCClass:    sb.gcClass,
		Valid:      sb.valid,
		Invalid:    written - sb.valid,
		DataPages:  f.dataPages,
		CloseClock: sb.closeClock,
	}
}

// SuperblockStateOf returns the lifecycle state of a superblock.
func (f *FTL) SuperblockStateOf(id int) SuperblockState { return f.sbs[id].state }

// CheckInvariants validates internal consistency: every mapped LPN points at
// a valid page recording that LPN, per-superblock valid counts match the
// device, and free/open/closed partitioning is coherent. Tests call it after
// workloads; it is O(device size).
func (f *FTL) CheckInvariants() error {
	geo := f.cfg.Geometry
	validBySB := make([]int, geo.Superblocks())
	for lpn, ppn := range f.l2p {
		if ppn == nand.InvalidPPN {
			continue
		}
		st, err := f.dev.State(ppn)
		if err != nil {
			return err
		}
		if st != nand.PageValid {
			return fmt.Errorf("ftl: lpn %d maps to %s page %d", lpn, st, ppn)
		}
		got, err := f.dev.LPNAt(ppn)
		if err != nil {
			return err
		}
		if got != nand.LPN(lpn) {
			return fmt.Errorf("ftl: lpn %d maps to page %d recording lpn %d", lpn, ppn, got)
		}
		validBySB[geo.SuperblockOf(ppn)]++
	}
	freeSet := map[int]bool{}
	for _, id := range f.free {
		freeSet[id] = true
	}
	for id := range f.sbs {
		sb := &f.sbs[id]
		if sb.state == SBFree != freeSet[id] {
			return fmt.Errorf("ftl: superblock %d state %d vs free-list membership %v", id, sb.state, freeSet[id])
		}
		if sb.valid != validBySB[id] {
			return fmt.Errorf("ftl: superblock %d valid count %d, l2p says %d", id, sb.valid, validBySB[id])
		}
	}
	return f.checkVictimIndex()
}
