package ftl

import (
	"fmt"
	"math"
)

// VictimSelectorMode selects the implementation behind selectVictim.
type VictimSelectorMode uint8

const (
	// VictimIndexed (the default) selects victims from the incremental
	// invalid-count bucket index, evaluating the policy only over the top
	// bucket(s) that can still beat the best score found so far.
	VictimIndexed VictimSelectorMode = iota
	// VictimScan selects victims with the original full scan over all
	// superblocks. Kept as the reference implementation.
	VictimScan
	// VictimCrossCheck runs both selectors on every GC decision and panics
	// if they disagree. Differential tests use it; never enable in
	// benchmarks.
	VictimCrossCheck
)

// SetVictimSelectorMode switches the victim-selection implementation. The
// bucket index is maintained in every mode, so the mode can change at any
// point in a run.
func (f *FTL) SetVictimSelectorMode(m VictimSelectorMode) { f.victimMode = m }

// VictimScoreBound is an optional extension of VictimPolicy. MaxScore returns
// an upper bound on Score over every closed superblock with the given invalid
// count; the indexed selector descends buckets from most-invalid downward and
// stops as soon as a bucket's bound falls below the best score already found.
// Policies whose score is not bounded by the invalid count (e.g. Cost-Benefit,
// which grows with age) simply don't implement it, and the indexed selector
// evaluates every bucket.
type VictimScoreBound interface {
	MaxScore(invalid, dataPages int) float64
}

// MaxScore implements VictimScoreBound: the greedy score is exactly
// invalid/dataPages, so the bound is tight and selection terminates after the
// top non-empty bucket.
func (GreedyPolicy) MaxScore(invalid, dataPages int) float64 {
	return float64(invalid) / float64(dataPages)
}

// MaxScore implements VictimScoreBound. The adjusted-greedy score is the
// invalid proportion shrunk by a discount divisor clamped at 1, so it never
// exceeds invalid/dataPages — except that a fully-invalid short-living
// superblock scores +Inf.
func (p *AdjustedGreedyPolicy) MaxScore(invalid, dataPages int) float64 {
	if invalid == dataPages {
		return math.Inf(1)
	}
	return float64(invalid) / float64(dataPages)
}

// victimIndex buckets closed superblocks by invalid-page count so victim
// selection touches only candidates that can win, instead of scanning every
// superblock on each GC trigger. Each bucket is an intrusive doubly-linked
// list threaded through the parallel next/prev arrays (no per-node
// allocations); bucketOf doubles as the membership flag (-1 = not indexed).
//
// Lifecycle hooks in the FTL keep it exact:
//   - closeIfFull inserts the superblock at its current invalid count
//     (pages may already have been invalidated while it was open);
//   - invalidateOld / Trim move a closed superblock up one bucket;
//   - collect removes the victim before migrating (its valid count decays
//     during migration while it is out of the index).
//
// maxInv is a lazy upper bound on the highest non-empty bucket: inserts raise
// it eagerly, removals leave it stale, and selection walks it down past empty
// buckets (amortized O(1) — each decrement undoes one insert's raise).
type victimIndex struct {
	next, prev []int32 // per-superblock list links, -1 = end
	bucketOf   []int32 // per-superblock current bucket, -1 = not in index
	heads      []int32 // invalid count -> first superblock in bucket, -1 = empty
	maxInv     int
}

func (vi *victimIndex) init(superblocks, dataPages int) {
	vi.next = make([]int32, superblocks)
	vi.prev = make([]int32, superblocks)
	vi.bucketOf = make([]int32, superblocks)
	vi.heads = make([]int32, dataPages+1)
	for i := range vi.next {
		vi.next[i] = -1
		vi.prev[i] = -1
		vi.bucketOf[i] = -1
	}
	for i := range vi.heads {
		vi.heads[i] = -1
	}
	vi.maxInv = 0
}

// insert adds a superblock to the bucket for its invalid count. The caller
// guarantees it is not already indexed.
func (vi *victimIndex) insert(id, inv int) {
	head := vi.heads[inv]
	vi.next[id] = head
	vi.prev[id] = -1
	if head >= 0 {
		vi.prev[head] = int32(id)
	}
	vi.heads[inv] = int32(id)
	vi.bucketOf[id] = int32(inv)
	if inv > vi.maxInv {
		vi.maxInv = inv
	}
}

// remove unlinks a superblock from its bucket. No-op if not indexed.
func (vi *victimIndex) remove(id int) {
	b := vi.bucketOf[id]
	if b < 0 {
		return
	}
	n, p := vi.next[id], vi.prev[id]
	if p >= 0 {
		vi.next[p] = n
	} else {
		vi.heads[b] = n
	}
	if n >= 0 {
		vi.prev[n] = p
	}
	vi.next[id] = -1
	vi.prev[id] = -1
	vi.bucketOf[id] = -1
}

// bump moves an indexed superblock up one bucket after one of its pages was
// invalidated.
func (vi *victimIndex) bump(id int) {
	b := vi.bucketOf[id]
	vi.remove(id)
	vi.insert(id, int(b)+1)
}

// top returns the highest non-empty bucket, walking the lazy bound down.
func (vi *victimIndex) top() int {
	for vi.maxInv > 0 && vi.heads[vi.maxInv] < 0 {
		vi.maxInv--
	}
	return vi.maxInv
}

// selectVictimIndexed is the indexed victim selector. It visits buckets from
// most-invalid downward and applies the same winner rule as the reference
// scan — highest score, ties broken by lowest superblock ID — which the scan
// realizes implicitly by iterating IDs in ascending order with a strict
// comparison. When the policy provides a score bound, descent stops at the
// first bucket whose bound cannot beat the incumbent (a bound equal to the
// best score still gets scanned: a tie with a lower ID wins).
func (f *FTL) selectVictimIndexed() int {
	vi := &f.vidx
	best := -1
	bestScore := math.Inf(-1)
	bound, hasBound := f.policy.(VictimScoreBound)
	for b := vi.top(); b >= 1; b-- {
		head := vi.heads[b]
		if head < 0 {
			continue
		}
		if hasBound && bound.MaxScore(b, f.dataPages) < bestScore {
			break
		}
		for id := head; id >= 0; id = vi.next[id] {
			sb := &f.sbs[id]
			view := SBView{
				ID:         int(id),
				Stream:     sb.stream,
				GCClass:    sb.gcClass,
				Valid:      sb.valid,
				Invalid:    b,
				DataPages:  f.dataPages,
				CloseClock: sb.closeClock,
			}
			score := f.policy.Score(view, f.clock)
			if score > bestScore || (score == bestScore && int(id) < best) {
				bestScore = score
				best = int(id)
			}
		}
	}
	return best
}

// checkVictimIndex validates the bucket index against superblock state:
// closed superblocks appear in exactly the bucket matching their invalid
// count, nothing else is indexed, and the intrusive lists are well-linked.
func (f *FTL) checkVictimIndex() error {
	vi := &f.vidx
	for id := range f.sbs {
		sb := &f.sbs[id]
		b := vi.bucketOf[id]
		if sb.state != SBClosed {
			if b >= 0 {
				return fmt.Errorf("ftl: victim index holds superblock %d in state %d", id, sb.state)
			}
			continue
		}
		want := int32(f.dataPages - sb.valid)
		if b != want {
			return fmt.Errorf("ftl: victim index has superblock %d in bucket %d, invalid count is %d", id, b, want)
		}
	}
	for inv, head := range vi.heads {
		prev := int32(-1)
		for id := head; id >= 0; id = vi.next[id] {
			if vi.bucketOf[id] != int32(inv) {
				return fmt.Errorf("ftl: superblock %d linked in bucket %d but records bucket %d", id, inv, vi.bucketOf[id])
			}
			if vi.prev[id] != prev {
				return fmt.Errorf("ftl: superblock %d in bucket %d has prev %d, want %d", id, inv, vi.prev[id], prev)
			}
			prev = id
		}
	}
	return nil
}
