package ftl

import (
	"math"
	"sort"
)

// WearReport summarizes device wear, the quantity write amplification
// ultimately costs (§I: WA "consumes extra P/E cycles and accelerates device
// wear out"). Erase counts are per block.
type WearReport struct {
	TotalErases  uint64
	MaxErases    int
	MinErases    int
	MeanErases   float64
	StdDevErases float64
	// P99Erases is the 99th-percentile per-block erase count.
	P99Erases int
	// ImbalanceRatio is Max/Mean (1.0 = perfectly even wear); log-structured
	// allocation with round-robin superblocks keeps it low without a
	// dedicated wear-leveler.
	ImbalanceRatio float64
	// PerDie is each die's total erase count, indexed by die. Superblock
	// erases touch every die once, so the entries are equal unless block
	// erases bypassed superblock addressing; the sum always equals
	// TotalErases, which cross-checks the incremental accounting in
	// internal/wear against this device scan.
	PerDie []uint64
}

// Wear scans the device and returns the erase-count distribution.
func (f *FTL) Wear() WearReport {
	geo := f.cfg.Geometry
	counts := make([]int, 0, geo.TotalBlocks())
	perDie := make([]uint64, geo.Dies)
	var total uint64
	for die := 0; die < geo.Dies; die++ {
		for blk := 0; blk < geo.BlocksPerDie; blk++ {
			c, err := f.dev.EraseCount(die, blk)
			if err != nil {
				continue
			}
			counts = append(counts, c)
			perDie[die] += uint64(c)
			total += uint64(c)
		}
	}
	if len(counts) == 0 {
		return WearReport{}
	}
	sort.Ints(counts)
	mean := float64(total) / float64(len(counts))
	varSum := 0.0
	for _, c := range counts {
		d := float64(c) - mean
		varSum += d * d
	}
	rep := WearReport{
		TotalErases: total,
		PerDie:      perDie,
		MinErases:   counts[0],
		MaxErases:   counts[len(counts)-1],
		MeanErases:  mean,
		P99Erases:   counts[len(counts)*99/100],
	}
	rep.StdDevErases = math.Sqrt(varSum / float64(len(counts)))
	if mean > 0 {
		rep.ImbalanceRatio = float64(rep.MaxErases) / mean
	}
	return rep
}

// LifetimeWrites estimates how many user page writes the drive can absorb
// before any block reaches enduranceCycles erases, extrapolating linearly
// from the observed wear distribution. Returns 0 before any erase happened.
func (f *FTL) LifetimeWrites(enduranceCycles int) uint64 {
	rep := f.Wear()
	if rep.MaxErases == 0 || f.stats.UserPageWrites == 0 {
		return 0
	}
	return f.stats.UserPageWrites * uint64(enduranceCycles) / uint64(rep.MaxErases)
}
