package ftl

import (
	"testing"

	"github.com/phftl/phftl/internal/nand"
)

func TestWearReportFreshDevice(t *testing.T) {
	f := newBaseFTL(t)
	rep := f.Wear()
	if rep.TotalErases != 0 || rep.MaxErases != 0 || rep.ImbalanceRatio != 0 {
		t.Errorf("fresh device wear = %+v", rep)
	}
	if f.LifetimeWrites(3000) != 0 {
		t.Error("lifetime estimate on fresh device should be 0")
	}
}

func TestWearAccumulatesAndStaysBalanced(t *testing.T) {
	f := newBaseFTL(t)
	fillDrive(t, f, 5*f.ExportedPages(), 9)
	rep := f.Wear()
	if rep.TotalErases == 0 {
		t.Fatal("no erases after 6 drive writes")
	}
	if rep.TotalErases != f.Device().Stats().Erases {
		t.Errorf("wear total %d != device erases %d", rep.TotalErases, f.Device().Stats().Erases)
	}
	if rep.MaxErases < rep.MinErases || rep.MeanErases <= 0 {
		t.Errorf("inconsistent report %+v", rep)
	}
	if rep.P99Erases > rep.MaxErases {
		t.Errorf("p99 %d > max %d", rep.P99Erases, rep.MaxErases)
	}
	// Round-robin superblock allocation plus uniform churn keeps wear
	// reasonably even without a dedicated leveler.
	if rep.ImbalanceRatio > 5 {
		t.Errorf("wear imbalance %.2f suspiciously high", rep.ImbalanceRatio)
	}
	// Endurance extrapolation is monotone in the cycle budget.
	lo := f.LifetimeWrites(1000)
	hi := f.LifetimeWrites(3000)
	if lo == 0 || hi < 3*lo-3 || hi > 3*lo+3 {
		t.Errorf("lifetime estimates lo=%d hi=%d, want hi ~ 3*lo", lo, hi)
	}
}

func TestLowerWAMeansLowerWear(t *testing.T) {
	// The paper's motivation in one test: fewer GC migrations (lower WA)
	// must translate into fewer total erases for the same user writes.
	runWear := func(sep Separator) (uint64, float64) {
		cfg := DefaultConfig(smallGeo())
		f, err := New(cfg, sep, GreedyPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		split := f.ExportedPages() / 100
		_ = split
		// Reuse the oracle workload from TestOracleSeparationBeatsBase.
		for lpn := 0; lpn < f.ExportedPages(); lpn++ {
			if err := f.Write(UserWrite{LPN: nand.LPN(lpn)}); err != nil {
				t.Fatal(err)
			}
		}
		h := 0
		for i := 0; i < 5*f.ExportedPages(); i++ {
			var lpn int
			if i%10 != 0 {
				lpn = h % split
				h++
			} else {
				lpn = split + (i*2654435761)%(f.ExportedPages()-split)
			}
			if err := f.Write(UserWrite{LPN: nand.LPN(lpn)}); err != nil {
				t.Fatal(err)
			}
		}
		return f.Wear().TotalErases, f.Stats().WA()
	}
	probe, err := New(DefaultConfig(smallGeo()), NewBaseSeparator(), GreedyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	split := nand.LPN(probe.ExportedPages() / 100)
	baseErases, baseWA := runWear(NewBaseSeparator())
	oracleErases, oracleWA := runWear(&hotColdSeparator{split: split})
	t.Logf("base: %d erases (WA %.2f); oracle: %d erases (WA %.2f)", baseErases, baseWA, oracleErases, oracleWA)
	if oracleWA < baseWA && oracleErases >= baseErases {
		t.Errorf("lower WA (%.2f < %.2f) did not reduce wear (%d >= %d)",
			oracleWA, baseWA, oracleErases, baseErases)
	}
}
