// Package fleet is the long-running service counterpart to the batch engine
// in internal/runner: a supervisor that owns a runner.Pool for the process
// lifetime and accepts simulation cells at runtime instead of from a fixed
// list. It implements httpd.Controller, so cmd/phftld can expose it as the
// control plane of the telemetry server:
//
//	POST /api/v1/cells               -> SubmitCell (validate, journal, enqueue)
//	POST /api/v1/cells/{name}/cancel -> CancelCell (context-based, cooperative)
//	GET  /api/v1/fleet               -> registry.FleetWA over the cells it ran
//
// Lifecycle per cell: queued -> running -> done | failed | cancelled, with a
// bounded restart policy in between (a failed cell re-queues up to
// MaxRestarts times before going terminal). Submissions append to a JSONL
// queue journal; on restart, cells without a journaled terminal state are
// re-registered and re-enqueued, so a killed service resumes its pending work
// — and, the simulations being deterministic, produces the results the
// uninterrupted service would have.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/phftl/phftl/internal/obs/httpd"
	"github.com/phftl/phftl/internal/obs/registry"
	"github.com/phftl/phftl/internal/runner"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/workload"
)

// Config sizes a Supervisor. Registry is required; everything else has
// serviceable zero defaults.
type Config struct {
	// Workers is the pool size (<= 0 selects GOMAXPROCS).
	Workers int
	// Registry receives every cell's lifecycle and replay metrics; the HTTP
	// endpoints serve from it. Required.
	Registry *registry.Registry
	// JournalPath, when set, appends every submission and terminal transition
	// as JSONL; New replays it so pending cells survive a restart. Empty runs
	// journal-less (submissions die with the process).
	JournalPath string
	// Stagger inserts a delay between consecutive dispatches, so a burst of
	// submissions ramps the pool up gradually instead of thundering onto the
	// allocator at once.
	Stagger time.Duration
	// MaxRestarts bounds the restart policy: a cell that fails is re-queued
	// at most this many times before being journaled failed.
	MaxRestarts int
	// DefaultDriveWrites fills a submission's zero DriveWrites (<= 0 means 1).
	DefaultDriveWrites int

	// exec overrides cell execution (tests inject failures and slow runs).
	exec execFunc
}

type execFunc func(ctx context.Context, spec httpd.CellSpec, rc *registry.Cell) (runner.Output, error)

// entry is one submitted cell's supervisor-side record.
type entry struct {
	id        uint64
	name      string
	spec      httpd.CellSpec
	rc        *registry.Cell
	cancelFn  context.CancelFunc // non-nil only while running
	cancelled bool               // CancelCell was called
	terminal  bool               // reached done/failed/cancelled
	// finalState holds a journal-replayed terminal state between loadJournal
	// and the registry registration that applies it.
	finalState registry.State
	restarts   int
	out        runner.Output
}

// Supervisor is the fleet service: one long-lived worker pool plus a pending
// queue fed by SubmitCell. All methods are safe for concurrent use.
type Supervisor struct {
	cfg Config

	baseCtx context.Context
	stop    context.CancelFunc

	mu          sync.Mutex
	cond        *sync.Cond
	entries     map[string]*entry
	order       []string // registration order, for Names
	pendingQ    []*entry
	outstanding int // entries not yet terminal
	nextID      uint64
	started     bool
	closed      bool
	journal     *os.File

	pool         *runner.Pool
	dispatchDone chan struct{}
}

var _ httpd.Controller = (*Supervisor)(nil)

// New builds a supervisor and, when cfg.JournalPath names an existing
// journal, replays it: terminal cells are re-registered in their final state,
// pending cells are re-enqueued. The pool does not start until Start.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Registry == nil {
		return nil, errors.New("fleet: Config.Registry is required")
	}
	if cfg.DefaultDriveWrites <= 0 {
		cfg.DefaultDriveWrites = 1
	}
	if cfg.exec == nil {
		cfg.exec = defaultExec
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Supervisor{
		cfg:     cfg,
		baseCtx: ctx,
		stop:    stop,
		entries: map[string]*entry{},
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.JournalPath != "" {
		if err := s.loadJournal(cfg.JournalPath); err != nil {
			stop()
			return nil, err
		}
		f, err := os.OpenFile(cfg.JournalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			stop()
			return nil, fmt.Errorf("fleet: open journal: %w", err)
		}
		s.journal = f
	}
	return s, nil
}

// Start launches the worker pool and the dispatcher. Separate from New so a
// journal can be inspected (Pending) — or handed to a different process —
// without running anything.
func (s *Supervisor) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	s.pool = runner.NewPool(s.cfg.Workers)
	s.dispatchDone = make(chan struct{})
	go s.dispatch()
}

// SubmitCell validates one submission against the trace/scheme machinery the
// batch harnesses use, registers it queued, journals it and enqueues it.
// Implements httpd.Controller.
func (s *Supervisor) SubmitCell(spec httpd.CellSpec) (string, error) {
	if strings.TrimSpace(spec.Trace) == "" {
		return "", errors.New("fleet: cell spec missing trace")
	}
	if strings.TrimSpace(spec.Scheme) == "" {
		return "", errors.New("fleet: cell spec missing scheme")
	}
	profiles, err := runner.ParseTraces(spec.Trace)
	if err != nil {
		return "", fmt.Errorf("fleet: %w", err)
	}
	if _, err := runner.ParseSchemes(spec.Scheme); err != nil {
		return "", fmt.Errorf("fleet: %w", err)
	}
	if len(profiles) != 1 || strings.Contains(spec.Trace, ",") || strings.Contains(spec.Scheme, ",") {
		return "", errors.New("fleet: submit exactly one trace and one scheme per cell")
	}
	if spec.DriveWrites < 0 {
		return "", fmt.Errorf("fleet: negative drive_writes %d", spec.DriveWrites)
	}
	if spec.DriveWrites == 0 {
		spec.DriveWrites = s.cfg.DefaultDriveWrites
	}
	if spec.OP < 0 || spec.OP >= 0.5 {
		return "", fmt.Errorf("fleet: op ratio %g out of range [0, 0.5)", spec.OP)
	}
	if spec.CellWorkers < 0 {
		return "", fmt.Errorf("fleet: negative cell_workers %d", spec.CellWorkers)
	}
	p := profiles[0]

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", errors.New("fleet: supervisor is shut down")
	}
	s.nextID++
	name := fmt.Sprintf("%s/%s@j%d", spec.Trace, spec.Scheme, s.nextID)
	en := &entry{id: s.nextID, name: name, spec: spec}
	if err := s.journalLocked(journalLine{Op: "submit", ID: en.id, Name: name, Spec: &spec}); err != nil {
		s.nextID--
		return "", err
	}
	en.rc = s.cfg.Registry.OpenCell(name, registry.CellMeta{
		Trace:     spec.Trace,
		Scheme:    spec.Scheme,
		TargetOps: uint64(spec.DriveWrites) * uint64(p.ExportedPages),
	})
	s.entries[name] = en
	s.order = append(s.order, name)
	s.pendingQ = append(s.pendingQ, en)
	s.outstanding++
	s.cond.Broadcast()
	return name, nil
}

// CancelCell cancels a queued or running cell. A queued cell goes terminal
// immediately; a running one has its context cancelled and goes terminal when
// the replay loop notices (one trace record of latency). Implements
// httpd.Controller.
func (s *Supervisor) CancelCell(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	en, ok := s.entries[name]
	if !ok {
		return fmt.Errorf("fleet: %q: %w", name, httpd.ErrUnknownCell)
	}
	if en.terminal {
		return fmt.Errorf("fleet: %q is %s: %w", name, en.rc.State(), httpd.ErrCellTerminal)
	}
	en.cancelled = true
	if en.cancelFn != nil {
		en.cancelFn() // the worker journals the terminal transition
		return nil
	}
	s.finishLocked(en, registry.StateCancelled)
	return nil
}

// Drain blocks until every submitted cell has reached a terminal state.
func (s *Supervisor) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.outstanding > 0 && !s.closed {
		s.cond.Wait()
	}
}

// Pending returns the number of cells waiting for a worker.
func (s *Supervisor) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pendingQ)
}

// Names returns every known cell name in registration order.
func (s *Supervisor) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Output returns a terminal cell's output (zero Output and false otherwise).
func (s *Supervisor) Output(name string) (runner.Output, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	en, ok := s.entries[name]
	if !ok || !en.terminal {
		return runner.Output{}, false
	}
	return en.out, true
}

// Shutdown stops the service gracefully: running cells are context-cancelled
// but NOT journaled terminal — unlike a user CancelCell, a shutdown is not a
// verdict on the cell, so interrupted and still-pending cells alike resume on
// the next Start of a supervisor over the same journal. Blocks until every
// worker has returned.
func (s *Supervisor) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	started := s.started
	s.cond.Broadcast()
	s.mu.Unlock()

	s.stop() // cancels every running cell's context
	if started {
		<-s.dispatchDone
		s.pool.Close()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal != nil {
		_ = s.journal.Close()
		s.journal = nil
	}
}

// dispatch feeds pending entries to the pool, one every Stagger.
func (s *Supervisor) dispatch() {
	defer close(s.dispatchDone)
	first := true
	for {
		s.mu.Lock()
		for len(s.pendingQ) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		en := s.pendingQ[0]
		s.pendingQ = s.pendingQ[1:]
		skip := en.terminal // cancelled while queued
		s.mu.Unlock()
		if skip {
			continue
		}
		if !first && s.cfg.Stagger > 0 {
			select {
			case <-s.baseCtx.Done():
				return
			case <-time.After(s.cfg.Stagger):
			}
		}
		first = false
		s.pool.Submit(func() { s.runEntry(en) })
	}
}

// runEntry executes one cell on a pool worker and classifies the outcome:
// done, cancelled (user cancel), re-queued (failure within the restart
// budget, or a shutdown interruption), or failed.
func (s *Supervisor) runEntry(en *entry) {
	s.mu.Lock()
	if en.terminal || s.closed {
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	en.cancelFn = cancel
	s.mu.Unlock()
	defer cancel()

	en.rc.SetState(registry.StateRunning)
	out := runner.ExecCell(func(runner.Cell) (runner.Output, error) {
		return s.cfg.exec(ctx, en.spec, en.rc)
	}, runner.Cell{Trace: en.spec.Trace, Scheme: sim.Scheme(en.spec.Scheme), OP: en.spec.OP})

	s.mu.Lock()
	defer s.mu.Unlock()
	en.cancelFn = nil
	switch {
	case out.Err == nil:
		en.out = out
		en.rc.PublishFinalWA(out.Result.WA)
		s.finishLocked(en, registry.StateDone)
	case errors.Is(out.Err, context.Canceled):
		if en.cancelled {
			en.out = out
			s.finishLocked(en, registry.StateCancelled)
		} else {
			// Graceful shutdown: back to queued with no journal entry, so
			// the next process re-runs the cell from scratch.
			en.rc.SetState(registry.StateQueued)
		}
	default:
		if en.restarts < s.cfg.MaxRestarts {
			en.restarts++
			en.rc.SetState(registry.StateQueued)
			s.pendingQ = append(s.pendingQ, en)
			s.cond.Broadcast()
		} else {
			en.out = out
			s.finishLocked(en, registry.StateFailed)
		}
	}
}

// finishLocked marks an entry terminal, journals the transition and wakes
// Drain. Caller holds s.mu.
func (s *Supervisor) finishLocked(en *entry, st registry.State) {
	en.terminal = true
	en.rc.SetState(st)
	_ = s.journalLocked(journalLine{Op: "state", Name: en.name, Stat: st.String()})
	s.outstanding--
	s.cond.Broadcast()
}

// defaultExec builds the spec's instance and replays it, mirroring the batch
// harnesses (wabench): default or sweep geometry, optional intra-cell
// workers, live-registry observation, buffered events/samples in the output.
func defaultExec(ctx context.Context, spec httpd.CellSpec, rc *registry.Cell) (runner.Output, error) {
	p, ok := workload.ProfileByID(spec.Trace)
	if !ok {
		return runner.Output{}, fmt.Errorf("fleet: unknown trace %q", spec.Trace)
	}
	var in *sim.Instance
	var err error
	if spec.OP > 0 {
		geo := sim.GeometryForDriveOP(p.ExportedPages, p.PageSize, spec.OP)
		in, err = sim.BuildOP(sim.Scheme(spec.Scheme), geo, spec.OP, nil)
	} else {
		geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
		in, err = sim.Build(sim.Scheme(spec.Scheme), geo, nil)
	}
	if err != nil {
		return runner.Output{}, err
	}
	if spec.CellWorkers > 1 {
		in.SetCellWorkers(spec.CellWorkers)
	}
	o := sim.Observe(in, sim.ObserveConfig{Cell: rc})
	res, err := sim.RunOnCtx(ctx, in, p, spec.DriveWrites)
	if err != nil {
		return runner.Output{}, err
	}
	return runner.Output{
		Result:  res,
		Events:  o.Rec.Events(),
		Samples: o.Sampler.Series(),
		Dropped: o.Rec.Dropped(),
	}, nil
}
