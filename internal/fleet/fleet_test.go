package fleet

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/phftl/phftl/internal/obs/httpd"
	"github.com/phftl/phftl/internal/obs/registry"
	"github.com/phftl/phftl/internal/runner"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/workload"
)

// smallExec is the real execution path over shrunken drives (4096 pages), so
// the journal-resume determinism test runs in milliseconds while exercising
// the same build/observe/replay pipeline as defaultExec.
func smallExec(ctx context.Context, spec httpd.CellSpec, rc *registry.Cell) (runner.Output, error) {
	p, ok := workload.ProfileByID(spec.Trace)
	if !ok {
		return runner.Output{}, fmt.Errorf("unknown trace %q", spec.Trace)
	}
	p.ExportedPages = 4096
	in, err := sim.Build(sim.Scheme(spec.Scheme), sim.GeometryForDrive(p.ExportedPages, p.PageSize), nil)
	if err != nil {
		return runner.Output{}, err
	}
	o := sim.Observe(in, sim.ObserveConfig{Cell: rc})
	res, err := sim.RunOnCtx(ctx, in, p, spec.DriveWrites)
	if err != nil {
		return runner.Output{}, err
	}
	return runner.Output{Result: res, Events: o.Rec.Events(), Samples: o.Sampler.Series()}, nil
}

func newSupervisor(t *testing.T, cfg Config) *Supervisor {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = registry.New()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func TestSubmitValidation(t *testing.T) {
	s := newSupervisor(t, Config{exec: smallExec})
	bad := []httpd.CellSpec{
		{},
		{Trace: "#52"},
		{Scheme: "PHFTL"},
		{Trace: "nope", Scheme: "PHFTL"},
		{Trace: "#52", Scheme: "NopeFTL"},
		{Trace: "#52,#144", Scheme: "PHFTL"},
		{Trace: "#52", Scheme: "Base,PHFTL"},
		{Trace: "#52", Scheme: "PHFTL", DriveWrites: -1},
		{Trace: "#52", Scheme: "PHFTL", OP: -0.1},
		{Trace: "#52", Scheme: "PHFTL", OP: 0.6},
		{Trace: "#52", Scheme: "PHFTL", CellWorkers: -2},
	}
	for _, spec := range bad {
		if _, err := s.SubmitCell(spec); err == nil {
			t.Errorf("SubmitCell(%+v) accepted", spec)
		}
	}
	name, err := s.SubmitCell(httpd.CellSpec{Trace: "#52", Scheme: "PHFTL"})
	if err != nil {
		t.Fatal(err)
	}
	if name != "#52/PHFTL@j1" {
		t.Fatalf("name = %q", name)
	}
	if c := s.cfg.Registry.Cell(name); c == nil || c.State() != registry.StateQueued {
		t.Fatalf("cell not registered queued: %v", c)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d", s.Pending())
	}
}

// render flattens an output for NaN-safe byte comparison (fmt prints NaN
// consistently; json.Marshal rejects it).
func render(out runner.Output) string {
	return fmt.Sprintf("res=%+v samples=%v", out.Result, out.Samples)
}

// TestJournalResumeIdenticalResults is the tentpole acceptance test: cells
// submitted to a journaled supervisor that is killed before running anything
// are resumed by a fresh supervisor over the same journal, and — the
// simulations being deterministic — produce outputs byte-identical to an
// uninterrupted service's.
func TestJournalResumeIdenticalResults(t *testing.T) {
	specs := []httpd.CellSpec{
		{Trace: "#52", Scheme: "PHFTL", DriveWrites: 2},
		{Trace: "#144", Scheme: "Base", DriveWrites: 2},
	}
	journal := filepath.Join(t.TempDir(), "queue.jsonl")

	// Phase 1: submit, never start, shut down ("kill" with pending work).
	s1 := newSupervisor(t, Config{exec: smallExec, JournalPath: journal})
	for _, spec := range specs {
		if _, err := s1.SubmitCell(spec); err != nil {
			t.Fatal(err)
		}
	}
	s1.Shutdown()

	// Phase 2: a fresh supervisor over the same journal resumes the queue.
	s2 := newSupervisor(t, Config{exec: smallExec, JournalPath: journal})
	if s2.Pending() != 2 {
		t.Fatalf("resumed Pending = %d, want 2", s2.Pending())
	}
	s2.Start()
	s2.Drain()
	names := s2.Names()
	if len(names) != 2 {
		t.Fatalf("resumed names: %v", names)
	}

	// Reference: the same specs through an uninterrupted journal-less run.
	ref := newSupervisor(t, Config{exec: smallExec})
	for _, spec := range specs {
		if _, err := ref.SubmitCell(spec); err != nil {
			t.Fatal(err)
		}
	}
	ref.Start()
	ref.Drain()

	for _, name := range names {
		got, ok := s2.Output(name)
		if !ok {
			t.Fatalf("%s: no output after Drain", name)
		}
		want, ok := ref.Output(name)
		if !ok {
			t.Fatalf("%s: reference run has no output (name drift)", name)
		}
		if got.Err != nil || want.Err != nil {
			t.Fatalf("%s: errs %v / %v", name, got.Err, want.Err)
		}
		if render(got) != render(want) {
			t.Errorf("%s: resumed output diverged\n got %s\nwant %s", name, render(got), render(want))
		}
		if !reflect.DeepEqual(got.Events, want.Events) {
			t.Errorf("%s: event streams diverged (%d vs %d events)", name, len(got.Events), len(want.Events))
		}
		if st := s2.cfg.Registry.Cell(name).State(); st != registry.StateDone {
			t.Errorf("%s: state %v, want done", name, st)
		}
	}

	// Phase 3: the journal now carries terminal states — a third supervisor
	// over it has nothing pending and every cell done.
	s3 := newSupervisor(t, Config{exec: smallExec, JournalPath: journal})
	if s3.Pending() != 0 {
		t.Fatalf("post-drain journal left Pending = %d", s3.Pending())
	}
	for _, name := range names {
		if st := s3.cfg.Registry.Cell(name).State(); st != registry.StateDone {
			t.Errorf("%s: replayed state %v, want done", name, st)
		}
	}
}

// blockingExec parks cells until their context is cancelled, reporting each
// start on the channel.
func blockingExec(started chan<- string) execFunc {
	return func(ctx context.Context, spec httpd.CellSpec, rc *registry.Cell) (runner.Output, error) {
		started <- spec.Trace + "/" + spec.Scheme
		<-ctx.Done()
		return runner.Output{}, ctx.Err()
	}
}

// TestCancelWhileRunning pins the satellite invariant: a user cancel of a
// running cell ends it cancelled — never failed — and a second cancel is a
// conflict.
func TestCancelWhileRunning(t *testing.T) {
	started := make(chan string, 1)
	s := newSupervisor(t, Config{Workers: 1, exec: blockingExec(started)})
	name, err := s.SubmitCell(httpd.CellSpec{Trace: "#52", Scheme: "PHFTL"})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("cell never started")
	}
	if err := s.CancelCell(name); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if st := s.cfg.Registry.Cell(name).State(); st != registry.StateCancelled {
		t.Fatalf("state = %v, want cancelled (must never be failed)", st)
	}
	if err := s.CancelCell(name); !errors.Is(err, httpd.ErrCellTerminal) {
		t.Fatalf("re-cancel err = %v, want ErrCellTerminal", err)
	}
	if err := s.CancelCell("ghost"); !errors.Is(err, httpd.ErrUnknownCell) {
		t.Fatalf("unknown cancel err = %v, want ErrUnknownCell", err)
	}
}

// TestCancelQueued pins cancellation before dispatch: the cell goes terminal
// immediately and the dispatcher skips it.
func TestCancelQueued(t *testing.T) {
	s := newSupervisor(t, Config{Workers: 1, exec: smallExec})
	name, err := s.SubmitCell(httpd.CellSpec{Trace: "#52", Scheme: "Base", DriveWrites: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CancelCell(name); err != nil {
		t.Fatal(err)
	}
	if st := s.cfg.Registry.Cell(name).State(); st != registry.StateCancelled {
		t.Fatalf("state = %v, want cancelled", st)
	}
	s.Start()
	s.Drain() // returns immediately: nothing outstanding
	if _, ok := s.Output(name); !ok {
		t.Fatal("cancelled cell has no terminal output record")
	}
}

// TestRestartPolicy pins the bounded restart loop: failures within the budget
// re-queue and eventually succeed; failures beyond it go terminal failed.
func TestRestartPolicy(t *testing.T) {
	var attempts atomic.Int32
	flaky := func(ctx context.Context, spec httpd.CellSpec, rc *registry.Cell) (runner.Output, error) {
		if attempts.Add(1) <= 2 {
			return runner.Output{}, errors.New("transient fault")
		}
		return smallExec(ctx, spec, rc)
	}
	s := newSupervisor(t, Config{Workers: 1, MaxRestarts: 3, exec: flaky})
	name, err := s.SubmitCell(httpd.CellSpec{Trace: "#52", Scheme: "Base", DriveWrites: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	s.Drain()
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (2 failures + 1 success)", got)
	}
	if st := s.cfg.Registry.Cell(name).State(); st != registry.StateDone {
		t.Fatalf("state = %v, want done after restarts", st)
	}

	attempts.Store(0)
	hopeless := func(context.Context, httpd.CellSpec, *registry.Cell) (runner.Output, error) {
		attempts.Add(1)
		return runner.Output{}, errors.New("permanent fault")
	}
	s2 := newSupervisor(t, Config{Workers: 1, MaxRestarts: 1, exec: hopeless})
	name2, err := s2.SubmitCell(httpd.CellSpec{Trace: "#52", Scheme: "Base", DriveWrites: 1})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	s2.Drain()
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2 (1 + 1 restart)", got)
	}
	if st := s2.cfg.Registry.Cell(name2).State(); st != registry.StateFailed {
		t.Fatalf("state = %v, want failed after exhausted restarts", st)
	}
	out, ok := s2.Output(name2)
	if !ok || out.Err == nil || !strings.Contains(out.Err.Error(), "permanent fault") {
		t.Fatalf("failed output = %+v, %v", out, ok)
	}
}

// TestShutdownRequeuesRunning pins the graceful-shutdown contract: a running
// cell interrupted by Shutdown is NOT journaled terminal, so the next
// supervisor over the journal re-runs it.
func TestShutdownRequeuesRunning(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "queue.jsonl")
	started := make(chan string, 1)
	s := newSupervisor(t, Config{Workers: 1, JournalPath: journal, exec: blockingExec(started)})
	name, err := s.SubmitCell(httpd.CellSpec{Trace: "#52", Scheme: "PHFTL"})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("cell never started")
	}
	s.Shutdown()

	s2 := newSupervisor(t, Config{JournalPath: journal, exec: smallExec})
	if s2.Pending() != 1 {
		t.Fatalf("Pending after shutdown-with-running = %d, want 1", s2.Pending())
	}
	if st := s2.cfg.Registry.Cell(name).State(); st != registry.StateQueued {
		t.Fatalf("resumed state = %v, want queued", st)
	}
	if _, err := s.SubmitCell(httpd.CellSpec{Trace: "#52", Scheme: "Base"}); err == nil {
		t.Fatal("submit after Shutdown accepted")
	}
}

// TestStagger pins that dispatches are spaced by at least the configured
// stagger (one interval between the first and second cell).
func TestStagger(t *testing.T) {
	var times [2]time.Time
	var idx atomic.Int32
	exec := func(context.Context, httpd.CellSpec, *registry.Cell) (runner.Output, error) {
		times[idx.Add(1)-1] = time.Now()
		return runner.Output{}, nil
	}
	s := newSupervisor(t, Config{Workers: 2, Stagger: 50 * time.Millisecond, exec: exec})
	for _, tr := range []string{"#52", "#144"} {
		if _, err := s.SubmitCell(httpd.CellSpec{Trace: tr, Scheme: "Base"}); err != nil {
			t.Fatal(err)
		}
	}
	s.Start()
	s.Drain()
	if gap := times[1].Sub(times[0]); gap < 40*time.Millisecond {
		t.Fatalf("dispatch gap %v, want >= ~50ms stagger", gap)
	}
}
