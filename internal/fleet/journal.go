package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"github.com/phftl/phftl/internal/obs/httpd"
	"github.com/phftl/phftl/internal/obs/registry"
	"github.com/phftl/phftl/internal/workload"
)

// journalLine is one record of the append-only queue journal. Two shapes:
//
//	{"op":"submit","id":3,"name":"#52/PHFTL@j3","spec":{...}}   a submission
//	{"op":"state","name":"#52/PHFTL@j3","state":"done"}          a terminal transition
//
// Only terminal transitions are journaled — running is reconstructed as
// queued on replay (the run never finished, so it must start over), and a
// graceful shutdown deliberately writes nothing so interrupted cells resume.
type journalLine struct {
	Op   string          `json:"op"`
	ID   uint64          `json:"id,omitempty"`
	Name string          `json:"name"`
	Spec *httpd.CellSpec `json:"spec,omitempty"`
	Stat string          `json:"state,omitempty"`
}

func stateByName(name string) (registry.State, bool) {
	for s := 0; s < registry.NumStates; s++ {
		if registry.State(s).String() == name {
			return registry.State(s), true
		}
	}
	return 0, false
}

// loadJournal replays an existing journal into the supervisor: every
// submission is re-registered, terminal states are applied, and everything
// still pending is re-enqueued in submission order. Called from New before
// the journal is reopened for appending.
func (s *Supervisor) loadJournal(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("fleet: open journal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l journalLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return fmt.Errorf("fleet: journal %s:%d: %w", path, lineNo, err)
		}
		switch l.Op {
		case "submit":
			if l.Spec == nil || l.Name == "" {
				return fmt.Errorf("fleet: journal %s:%d: submit without spec/name", path, lineNo)
			}
			en := &entry{id: l.ID, name: l.Name, spec: *l.Spec}
			s.entries[l.Name] = en
			s.order = append(s.order, l.Name)
			if l.ID > s.nextID {
				s.nextID = l.ID
			}
		case "state":
			en, ok := s.entries[l.Name]
			if !ok {
				return fmt.Errorf("fleet: journal %s:%d: state for unknown cell %q", path, lineNo, l.Name)
			}
			st, ok := stateByName(l.Stat)
			if !ok || !st.Terminal() {
				return fmt.Errorf("fleet: journal %s:%d: bad terminal state %q", path, lineNo, l.Stat)
			}
			en.terminal = true
			en.finalState = st
		default:
			return fmt.Errorf("fleet: journal %s:%d: unknown op %q", path, lineNo, l.Op)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("fleet: journal %s: %w", path, err)
	}

	// Register every cell with the registry in submission order, then
	// enqueue the survivors. TargetOps needs the profile; a journal written
	// by a newer binary could name a trace this one lacks — surface that
	// rather than running a cell we cannot build.
	for _, name := range s.order {
		en := s.entries[name]
		var target uint64
		if p, ok := workload.ProfileByID(en.spec.Trace); ok {
			target = uint64(en.spec.DriveWrites) * uint64(p.ExportedPages)
		} else if !en.terminal {
			return fmt.Errorf("fleet: journal %s: pending cell %q has unknown trace %q", path, name, en.spec.Trace)
		}
		en.rc = s.cfg.Registry.OpenCell(name, registry.CellMeta{
			Trace:     en.spec.Trace,
			Scheme:    en.spec.Scheme,
			TargetOps: target,
		})
		if en.terminal {
			en.rc.SetState(en.finalState)
			continue
		}
		s.pendingQ = append(s.pendingQ, en)
		s.outstanding++
	}
	return nil
}

// journalLocked appends one line and flushes it to the OS, so a killed
// process loses at most the line being written. Caller holds s.mu. A nil
// journal (no JournalPath) is a no-op.
func (s *Supervisor) journalLocked(l journalLine) error {
	if s.journal == nil {
		return nil
	}
	raw, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("fleet: journal encode: %w", err)
	}
	raw = append(raw, '\n')
	if _, err := s.journal.Write(raw); err != nil {
		return fmt.Errorf("fleet: journal write: %w", err)
	}
	return nil
}
