package obs

// Sample is one periodic snapshot of the system's gauges, taken on the FTL's
// virtual clock (user pages written).
type Sample struct {
	// Clock is the virtual-clock value the snapshot was taken at.
	Clock uint64
	// IntervalWA is the write amplification over the pages written since
	// the previous sample — the quantity Figure 5's trajectories plot.
	IntervalWA float64
	// CumWA is the cumulative write amplification since the start of run.
	CumWA float64
	// FreeSB is the current free-superblock count.
	FreeSB int
	// OpenFill is the per-stream fill fraction (written/data pages) of each
	// stream's open superblock; 0 when the stream has none open.
	OpenFill []float64
	// Threshold is PHFTL's current classification threshold (0 for
	// baselines and before the first window).
	Threshold float64
	// CacheHitRatio is the metadata cache's cumulative flash-backed hit
	// ratio. NaN marks schemes without a metadata store (the baselines);
	// the JSONL sink omits the field and the CSV sink leaves it empty.
	CacheHitRatio float64
	// QueueDepth is the busy-die count observed by the timing model at the
	// last request (0 outside timing-model runs).
	QueueDepth float64
	// LatencyP50MS and LatencyP99MS are the P50/P99 write-request latencies
	// in milliseconds over the interval since the previous sample, measured
	// by the timing model. NaN marks functional replays (no timing model)
	// and intervals without timed writes; the JSONL sink omits the fields
	// and the CSV sink leaves them empty.
	LatencyP50MS float64
	LatencyP99MS float64
	// WearSkew and WearCoV are wear-evenness gauges over the per-block
	// erase-count distribution maintained by internal/wear: WearSkew is the
	// max/mean ratio (1.0 = perfectly even) and WearCoV the coefficient of
	// variation (stddev/mean). NaN marks runs without wear accounting or
	// instants before the first erase; the JSONL sink omits the fields and
	// the CSV sink leaves them empty. In the CSV both columns sit at the
	// end of the row, after every pre-existing column, so baselines written
	// before their introduction still align (internal/golden ignores them).
	WearSkew float64
	WearCoV  float64
}

// SnapshotFunc produces one sample at the given virtual clock. The wiring
// layer (internal/sim) builds it as a closure over the live system.
type SnapshotFunc func(clock uint64) Sample

// Sampler turns a SnapshotFunc into an in-memory time series by sampling
// every fixed number of virtual-clock ticks. Tick is designed to sit on the
// replay loop: it is one comparison in the common (no sample due) case.
type Sampler struct {
	every  uint64
	next   uint64
	snap   SnapshotFunc
	series []Sample
}

// NewSampler creates a sampler emitting one sample every `every` user-page
// writes. every < 1 is clamped to 1.
func NewSampler(every uint64, snap SnapshotFunc) *Sampler {
	if every < 1 {
		every = 1
	}
	return &Sampler{every: every, next: every, snap: snap}
}

// Every returns the sampling interval in virtual-clock ticks.
func (s *Sampler) Every() uint64 { return s.every }

// Tick takes a sample if the clock has reached the next sampling instant.
// Clock jumps larger than the interval produce a single sample (the series
// records state, not per-interval deltas, so repeating a snapshot at one
// instant would only duplicate rows).
func (s *Sampler) Tick(clock uint64) {
	if clock < s.next {
		return
	}
	s.series = append(s.series, s.snap(clock))
	s.next = clock - clock%s.every + s.every
}

// Final forces a last sample at the given clock unless one was already taken
// there, so a run's end state is always in the series.
func (s *Sampler) Final(clock uint64) {
	if n := len(s.series); n > 0 && s.series[n-1].Clock == clock {
		return
	}
	s.series = append(s.series, s.snap(clock))
}

// Series returns the accumulated samples (oldest first). The slice is the
// sampler's own; callers must not modify it while sampling continues.
func (s *Sampler) Series() []Sample { return s.series }
