package httpd

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CheckExposition validates a Prometheus text-exposition stream (the
// /metrics payload) promlint-style: metric-name and label syntax, HELP/TYPE
// placement, parseable sample values, and histogram structure (cumulative
// le-bounds ending in +Inf, with matching _sum and _count). It exists so the
// smoke harness and the handler tests fail on a malformed line the moment
// the renderer drifts, without importing a Prometheus client library.
func CheckExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	c := expoChecker{
		typed:  map[string]string{},
		helped: map[string]bool{},
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if err := c.line(sc.Text()); err != nil {
			return fmt.Errorf("exposition line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := c.finishHistogram(); err != nil {
		return err
	}
	if lineNo == 0 {
		return fmt.Errorf("empty exposition")
	}
	return nil
}

type expoChecker struct {
	typed  map[string]string // family -> declared type
	helped map[string]bool
	seen   map[string]bool // family has samples (reset per family is not needed)

	// In-flight histogram child state: buckets must be cumulative and end
	// in le="+Inf"; _sum/_count must follow.
	histFamily string
	histChild  string // label signature minus le
	histPrev   float64
	histLast   float64 // +Inf bucket count
	histInf    bool
	histDone   int // 0 buckets open, 1 saw _sum, 2 saw _count
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (c *expoChecker) line(s string) error {
	if s == "" {
		return fmt.Errorf("blank line")
	}
	if strings.HasPrefix(s, "#") {
		return c.comment(s)
	}
	return c.sample(s)
}

func (c *expoChecker) comment(s string) error {
	fields := strings.SplitN(s, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", s)
	}
	name := fields[2]
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q in %q", name, s)
	}
	switch fields[1] {
	case "HELP":
		if c.helped[name] {
			return fmt.Errorf("duplicate HELP for %q", name)
		}
		c.helped[name] = true
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("TYPE without a type: %q", s)
		}
		typ := fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %q", typ, name)
		}
		if _, dup := c.typed[name]; dup {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		if c.seen[name] {
			return fmt.Errorf("TYPE for %q after its samples", name)
		}
		c.typed[name] = typ
	default:
		return fmt.Errorf("unknown comment keyword %q", fields[1])
	}
	return nil
}

// splitSample splits "name{labels} value" into its parts, validating the
// label block's name="value" syntax (with \\, \" and \n escapes).
func splitSample(s string) (name, labels, value string, err error) {
	rest := s
	if i := strings.IndexByte(s, '{'); i >= 0 {
		name = s[:i]
		j := strings.LastIndexByte(s, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unterminated label block in %q", s)
		}
		labels = s[i+1 : j]
		rest = strings.TrimSpace(s[j+1:])
	} else {
		k := strings.IndexByte(s, ' ')
		if k < 0 {
			return "", "", "", fmt.Errorf("no value in %q", s)
		}
		name = s[:k]
		rest = strings.TrimSpace(s[k+1:])
	}
	// Timestamps ("value ts") are legal; take the first token as the value.
	if k := strings.IndexByte(rest, ' '); k >= 0 {
		rest = rest[:k]
	}
	return name, labels, rest, nil
}

// parseLabels walks a label block, returning the pairs in order.
func parseLabels(block string) ([][2]string, error) {
	var out [][2]string
	i := 0
	for i < len(block) {
		eq := strings.IndexByte(block[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", block)
		}
		lname := block[i : i+eq]
		if !validMetricName(lname) {
			return nil, fmt.Errorf("invalid label name %q", lname)
		}
		i += eq + 1
		if i >= len(block) || block[i] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", block)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(block) {
			ch := block[i]
			if ch == '\\' {
				if i+1 >= len(block) {
					return nil, fmt.Errorf("dangling escape in %q", block)
				}
				val.WriteByte(block[i+1])
				i += 2
				continue
			}
			if ch == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(ch)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value in %q", block)
		}
		out = append(out, [2]string{lname, val.String()})
		if i < len(block) {
			if block[i] != ',' {
				return nil, fmt.Errorf("expected ',' between labels in %q", block)
			}
			i++
		}
	}
	return out, nil
}

// family maps a sample's metric name back to its declared family, folding
// the histogram suffixes.
func (c *expoChecker) family(name string) (fam, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && c.typed[base] == "histogram" {
			return base, suf
		}
	}
	return name, ""
}

func (c *expoChecker) sample(s string) error {
	name, labelBlock, value, err := splitSample(s)
	if err != nil {
		return err
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	v, err := strconv.ParseFloat(value, 64)
	if err != nil {
		return fmt.Errorf("unparsable value %q for %q", value, name)
	}
	labels, err := parseLabels(labelBlock)
	if err != nil {
		return err
	}
	fam, suffix := c.family(name)
	typ, ok := c.typed[fam]
	if !ok {
		return fmt.Errorf("sample %q without a TYPE declaration", name)
	}
	if !c.helped[fam] {
		return fmt.Errorf("sample %q without a HELP declaration", name)
	}
	if c.seen == nil {
		c.seen = map[string]bool{}
	}
	c.seen[fam] = true
	if typ == "counter" && (v < 0 || !strings.HasSuffix(fam, "_total")) {
		return fmt.Errorf("counter %q must be non-negative and end in _total", name)
	}
	if typ != "histogram" {
		if suffix != "" {
			return fmt.Errorf("suffix sample %q on non-histogram family", name)
		}
		return c.finishHistogram()
	}
	return c.histSample(fam, suffix, labels, v)
}

// histSample tracks one histogram child's bucket run: le must be present and
// ascending, counts cumulative, the run closed by +Inf then _sum and _count
// (with _count equal to the +Inf bucket).
func (c *expoChecker) histSample(fam, suffix string, labels [][2]string, v float64) error {
	le := ""
	var rest []string
	for _, l := range labels {
		if l[0] == "le" {
			le = l[1]
			continue
		}
		rest = append(rest, l[0]+"="+l[1])
	}
	child := fam + "{" + strings.Join(rest, ",") + "}"
	switch suffix {
	case "_bucket":
		if le == "" {
			return fmt.Errorf("%s_bucket without le label", fam)
		}
		if c.histFamily != fam || c.histChild != child || c.histDone != 0 {
			if err := c.finishHistogram(); err != nil {
				return err
			}
			c.histFamily, c.histChild, c.histPrev = fam, child, -1
		}
		if c.histInf {
			return fmt.Errorf("%s: bucket after le=\"+Inf\"", child)
		}
		if v < c.histPrev {
			return fmt.Errorf("%s: non-cumulative buckets (%g after %g)", child, v, c.histPrev)
		}
		c.histPrev = v
		if le == "+Inf" {
			c.histInf, c.histLast = true, v
		}
	case "_sum":
		if c.histFamily != fam || c.histChild != child || !c.histInf || c.histDone != 0 {
			return fmt.Errorf("%s_sum without a closed bucket run", fam)
		}
		c.histDone = 1
	case "_count":
		if c.histFamily != fam || c.histChild != child || c.histDone != 1 {
			return fmt.Errorf("%s_count out of order", fam)
		}
		if v != c.histLast {
			return fmt.Errorf("%s: _count %g != le=\"+Inf\" bucket %g", child, v, c.histLast)
		}
		c.histFamily, c.histChild, c.histInf, c.histDone = "", "", false, 0
	default:
		return fmt.Errorf("bare sample %q on histogram family %s", suffix, fam)
	}
	return nil
}

// finishHistogram errors if a histogram child's run was left open.
func (c *expoChecker) finishHistogram() error {
	if c.histFamily != "" {
		return fmt.Errorf("%s: histogram run not closed by _sum/_count", c.histChild)
	}
	return nil
}
