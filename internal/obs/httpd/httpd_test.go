package httpd

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/obs/registry"
)

// populated builds a registry with one running PHFTL cell and one queued
// baseline, the shape a scrape mid-benchmark sees.
func populated(t *testing.T) *registry.Registry {
	t.Helper()
	r := registry.New()
	c := r.OpenCell("#52/PHFTL", registry.CellMeta{Trace: "#52", Scheme: "PHFTL", TargetOps: 1000})
	c.SetState(registry.StateRunning)
	c.Record(obs.Event{Kind: obs.KindGCStart, Clock: 5, F0: 0.4})
	c.Record(obs.Event{Kind: obs.KindGCEnd, Clock: 6})
	c.Record(obs.Event{Kind: obs.KindWindowRetrain, Clock: 7})
	c.PublishSample(obs.Sample{
		Clock:         500,
		IntervalWA:    1.2,
		CumWA:         1.3,
		FreeSB:        12,
		Threshold:     900,
		CacheHitRatio: 0.75,
		LatencyP50MS:  math.NaN(),
		LatencyP99MS:  math.NaN(),
		WearSkew:      1.1,
		WearCoV:       0.05,
	}, registry.FTLTotals{UserWrites: 500, GCWrites: 100, MetaWrites: 20})
	r.OpenCell("#52/Base", registry.CellMeta{Trace: "#52", Scheme: "Base", TargetOps: 1000})
	return r
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp, body
}

func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(populated(t)))
	defer srv.Close()
	resp, body := get(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	if err := CheckExposition(strings.NewReader(string(body))); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		`phftl_cell_ops_total{cell="#52/PHFTL"} 500`,
		`phftl_cell_events_total{cell="#52/PHFTL",kind="gc_start"} 1`,
		`phftl_cell_cum_wa{cell="#52/PHFTL"} 1.3`,
		`phftl_cell_state{cell="#52/Base"} 0`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("missing %q in exposition", want)
		}
	}
}

func TestStatusEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(populated(t)))
	defer srv.Close()
	resp, body := get(t, srv, "/api/v1/status")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("status %d content type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var st StatusJSON
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if st.Service != "phftl" || st.GoVersion == "" {
		t.Fatalf("identity wrong: %+v", st)
	}
	if st.Ops != 500 || st.TargetOps != 2000 || st.Events != 3 {
		t.Fatalf("aggregate wrong: %+v", st)
	}
	if st.Cells["running"] != 1 || st.Cells["queued"] != 1 {
		t.Fatalf("cell states wrong: %v", st.Cells)
	}
	if st.ETASec == nil || *st.ETASec <= 0 {
		t.Fatalf("ETA missing with target ahead of ops: %+v", st.ETASec)
	}
}

func TestCellsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(populated(t)))
	defer srv.Close()
	_, body := get(t, srv, "/api/v1/cells")
	var doc CellsJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if len(doc.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(doc.Cells))
	}
	phftl, base := doc.Cells[0], doc.Cells[1]
	if phftl.Cell != "#52/PHFTL" || base.Cell != "#52/Base" {
		t.Fatalf("registration order not preserved: %s, %s", phftl.Cell, base.Cell)
	}
	if phftl.State != "running" || phftl.Ops != 500 || phftl.UserWrites != 500 || phftl.GCPasses != 1 {
		t.Fatalf("phftl cell wrong: %+v", phftl)
	}
	if phftl.CumWA == nil || *phftl.CumWA != 1.3 || phftl.CacheHit == nil || *phftl.CacheHit != 0.75 {
		t.Fatalf("phftl gauges wrong: %+v", phftl)
	}
	if phftl.Events["gc_start"] != 1 || phftl.Events["window_retrain"] != 1 {
		t.Fatalf("phftl events wrong: %v", phftl.Events)
	}
	// The queued baseline never published: every optional gauge must be
	// absent, not zero.
	if base.State != "queued" || base.Ops != 0 {
		t.Fatalf("base cell wrong: %+v", base)
	}
	if base.IntervalWA != nil || base.CumWA != nil || base.Threshold != nil ||
		base.CacheHit != nil || base.WearSkew != nil || base.FreeSB != nil {
		t.Fatalf("unobserved gauges present: %s", body)
	}
	if strings.Contains(string(body), `"cum_wa":null`) {
		t.Fatalf("null gauge serialized instead of omitted:\n%s", body)
	}
}

func TestEventsEndpointDrain(t *testing.T) {
	reg := populated(t)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, body := get(t, srv, "/api/v1/events?limit=2")
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("limit ignored: %d lines", len(lines))
	}
	var first struct {
		Seq uint64 `json:"seq"`
		Ev  string `json:"ev"`
		Run string `json:"run"`
		C   uint64 `json:"clock"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("decode %q: %v", lines[0], err)
	}
	if first.Seq != 1 || first.Ev != "gc_start" || first.Run != "#52/PHFTL" || first.C != 5 {
		t.Fatalf("first event wrong: %+v", first)
	}
	next := resp.Header.Get("X-Next-Seq")
	if next != "2" {
		t.Fatalf("X-Next-Seq = %q, want 2 (last delivered seq, not the ring head)", next)
	}

	// Resuming from the header picks up exactly where the truncated page
	// stopped: that is the cursor contract.
	_, body = get(t, srv, "/api/v1/events?since="+next)
	rest := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(rest) != 1 || !strings.Contains(rest[0], `"seq":3`) {
		t.Fatalf("resume drain wrong:\n%s", body)
	}

	// Fully drained: empty body, cursor unchanged.
	resp, body = get(t, srv, "/api/v1/events?since=3")
	if len(body) != 0 || resp.Header.Get("X-Next-Seq") != "3" {
		t.Fatalf("drained endpoint returned %q, X-Next-Seq %q", body, resp.Header.Get("X-Next-Seq"))
	}

	// Kind filter.
	_, body = get(t, srv, "/api/v1/events?kind=gc_end")
	filtered := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(filtered) != 1 || !strings.Contains(filtered[0], `"ev":"gc_end"`) {
		t.Fatalf("kind filter wrong:\n%s", body)
	}
}

// TestEventsEndpointTruncatedDrainNoLoss is the HTTP-level regression for the
// cursor-loss bug: a client that drains the ring in limit-truncated pages,
// advancing ?since= to each response's X-Next-Seq, must see every sequence
// exactly once. The old handler stamped the ring head into X-Next-Seq on
// truncated pages, silently skipping everything between the last returned
// line and the head.
func TestEventsEndpointTruncatedDrainNoLoss(t *testing.T) {
	reg := registry.New()
	c := reg.OpenCell("#52/PHFTL", registry.CellMeta{Trace: "#52", Scheme: "PHFTL"})
	const total = 57
	for i := 0; i < total; i++ {
		c.Record(obs.Event{Kind: obs.KindGCStart, Clock: uint64(i)})
	}
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	seen := make(map[uint64]int)
	since := uint64(0)
	for polls := 0; ; polls++ {
		if polls > total {
			t.Fatalf("drain did not terminate after %d polls (cursor stuck at %d)", polls, since)
		}
		resp, body := get(t, srv, "/api/v1/events?limit=10&since="+strconv.FormatUint(since, 10))
		next, err := strconv.ParseUint(resp.Header.Get("X-Next-Seq"), 10, 64)
		if err != nil {
			t.Fatalf("bad X-Next-Seq %q: %v", resp.Header.Get("X-Next-Seq"), err)
		}
		if next < since {
			t.Fatalf("cursor went backwards: %d -> %d", since, next)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
			if line == "" {
				continue
			}
			var ev struct {
				Seq uint64 `json:"seq"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("decode %q: %v", line, err)
			}
			seen[ev.Seq]++
		}
		if len(body) == 0 {
			break // drained
		}
		since = next
	}
	if len(seen) != total {
		t.Fatalf("drain delivered %d distinct seqs, want %d (events lost)", len(seen), total)
	}
	for seq := uint64(1); seq <= total; seq++ {
		if seen[seq] != 1 {
			t.Fatalf("seq %d delivered %d times, want exactly once", seq, seen[seq])
		}
	}
}

// fakeController records control-plane calls for the POST endpoint tests.
type fakeController struct {
	submitted []CellSpec
	submitErr error
	cancelErr error
	cancelled []string
}

func (f *fakeController) SubmitCell(spec CellSpec) (string, error) {
	if f.submitErr != nil {
		return "", f.submitErr
	}
	f.submitted = append(f.submitted, spec)
	return spec.Trace + "/" + spec.Scheme + "@j1", nil
}

func (f *fakeController) CancelCell(name string) error {
	if f.cancelErr != nil {
		return f.cancelErr
	}
	f.cancelled = append(f.cancelled, name)
	return nil
}

func post(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("POST %s read: %v", path, err)
	}
	return resp, b
}

func TestControlAPISubmitAndCancel(t *testing.T) {
	ctrl := &fakeController{}
	srv := httptest.NewServer(HandlerWith(populated(t), ctrl))
	defer srv.Close()

	resp, body := post(t, srv, "/api/v1/cells", `{"trace":"#52","scheme":"PHFTL","drive_writes":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202: %s", resp.StatusCode, body)
	}
	var sub SubmitJSON
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if sub.Cell != "#52/PHFTL@j1" || sub.State != "queued" {
		t.Fatalf("submit response wrong: %+v", sub)
	}
	if len(ctrl.submitted) != 1 || ctrl.submitted[0].DriveWrites != 2 {
		t.Fatalf("controller saw %+v", ctrl.submitted)
	}

	// Cell names contain '/' and '#': the cancel path segment must be
	// path-escaped and still route.
	resp, body = post(t, srv, "/api/v1/cells/"+url.PathEscape("#52/PHFTL@j1")+"/cancel", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.State != "cancelled" {
		t.Fatalf("cancel response wrong: %+v", sub)
	}
	if len(ctrl.cancelled) != 1 || ctrl.cancelled[0] != "#52/PHFTL@j1" {
		t.Fatalf("controller saw cancels %v", ctrl.cancelled)
	}

	// GET /api/v1/cells still serves the listing with a POST handler present.
	if resp, _ := get(t, srv, "/api/v1/cells"); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET cells status %d", resp.StatusCode)
	}
}

func TestControlAPIErrors(t *testing.T) {
	ctrl := &fakeController{}
	srv := httptest.NewServer(HandlerWith(populated(t), ctrl))
	defer srv.Close()

	if resp, _ := post(t, srv, "/api/v1/cells", `{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec JSON: status %d, want 400", resp.StatusCode)
	}
	ctrl.submitErr = errors.New("unknown trace \"nope\"")
	if resp, _ := post(t, srv, "/api/v1/cells", `{"trace":"nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("rejected spec: status %d, want 400", resp.StatusCode)
	}
	ctrl.cancelErr = ErrUnknownCell
	if resp, _ := post(t, srv, "/api/v1/cells/ghost/cancel", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cell cancel: status %d, want 404", resp.StatusCode)
	}
	ctrl.cancelErr = ErrCellTerminal
	if resp, _ := post(t, srv, "/api/v1/cells/done/cancel", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("terminal cell cancel: status %d, want 409", resp.StatusCode)
	}

	// Without a controller both POST endpoints answer 501, and the telemetry
	// endpoints are unaffected.
	bare := httptest.NewServer(Handler(populated(t)))
	defer bare.Close()
	if resp, _ := post(t, bare, "/api/v1/cells", `{}`); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("submit without controller: status %d, want 501", resp.StatusCode)
	}
	if resp, _ := post(t, bare, "/api/v1/cells/x/cancel", ""); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("cancel without controller: status %d, want 501", resp.StatusCode)
	}
}

func TestFleetEndpoint(t *testing.T) {
	reg := populated(t)
	reg.Cell("#52/PHFTL").PublishFinalWA(1.25)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, body := get(t, srv, "/api/v1/fleet")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("status %d content type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var doc FleetJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if doc.Cells["running"] != 1 || doc.Cells["queued"] != 1 {
		t.Fatalf("cell states wrong: %v", doc.Cells)
	}
	if doc.IntervalWA.Count != 1 || doc.IntervalWA.P50 == nil {
		t.Fatalf("fleet interval WA wrong: %+v", doc.IntervalWA)
	}
	if len(doc.Schemes) != 2 || doc.Schemes[0].Scheme != "Base" || doc.Schemes[1].Scheme != "PHFTL" {
		t.Fatalf("schemes wrong: %s", body)
	}
	p := doc.Schemes[1]
	if p.FinalWA.Count != 1 || p.FinalWA.Max == nil || *p.FinalWA.Max != 1.25 {
		t.Fatalf("PHFTL final WA wrong: %+v", p.FinalWA)
	}
	// The never-published Base scheme's quantiles are omitted, not null.
	if strings.Contains(string(body), "null") {
		t.Fatalf("null quantile serialized instead of omitted:\n%s", body)
	}
}

func TestEventsEndpointBadParams(t *testing.T) {
	srv := httptest.NewServer(Handler(populated(t)))
	defer srv.Close()
	for _, path := range []string{
		"/api/v1/events?kind=nope",
		"/api/v1/events?since=abc",
		"/api/v1/events?limit=0",
		"/api/v1/events?limit=-5",
	} {
		resp, _ := get(t, srv, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestIndexAndPprof(t *testing.T) {
	srv := httptest.NewServer(Handler(populated(t)))
	defer srv.Close()
	resp, body := get(t, srv, "/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "/api/v1/cells") {
		t.Fatalf("index wrong: %d\n%s", resp.StatusCode, body)
	}
	resp, _ = get(t, srv, "/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d, want 404", resp.StatusCode)
	}
	resp, body = get(t, srv, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index wrong: %d", resp.StatusCode)
	}
}

func TestServeLifecycle(t *testing.T) {
	reg := registry.New()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(srv.URL(), "http://127.0.0.1:") {
		t.Fatalf("URL = %q", srv.URL())
	}
	resp, err := http.Get(srv.URL() + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(srv.URL() + "/api/v1/status"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}
