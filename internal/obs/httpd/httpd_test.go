package httpd

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/obs/registry"
)

// populated builds a registry with one running PHFTL cell and one queued
// baseline, the shape a scrape mid-benchmark sees.
func populated(t *testing.T) *registry.Registry {
	t.Helper()
	r := registry.New()
	c := r.OpenCell("#52/PHFTL", registry.CellMeta{Trace: "#52", Scheme: "PHFTL", TargetOps: 1000})
	c.SetState(registry.StateRunning)
	c.Record(obs.Event{Kind: obs.KindGCStart, Clock: 5, F0: 0.4})
	c.Record(obs.Event{Kind: obs.KindGCEnd, Clock: 6})
	c.Record(obs.Event{Kind: obs.KindWindowRetrain, Clock: 7})
	c.PublishSample(obs.Sample{
		Clock:         500,
		IntervalWA:    1.2,
		CumWA:         1.3,
		FreeSB:        12,
		Threshold:     900,
		CacheHitRatio: 0.75,
		LatencyP50MS:  math.NaN(),
		LatencyP99MS:  math.NaN(),
		WearSkew:      1.1,
		WearCoV:       0.05,
	}, registry.FTLTotals{UserWrites: 500, GCWrites: 100, MetaWrites: 20})
	r.OpenCell("#52/Base", registry.CellMeta{Trace: "#52", Scheme: "Base", TargetOps: 1000})
	return r
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp, body
}

func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(populated(t)))
	defer srv.Close()
	resp, body := get(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	if err := CheckExposition(strings.NewReader(string(body))); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		`phftl_cell_ops_total{cell="#52/PHFTL"} 500`,
		`phftl_cell_events_total{cell="#52/PHFTL",kind="gc_start"} 1`,
		`phftl_cell_cum_wa{cell="#52/PHFTL"} 1.3`,
		`phftl_cell_state{cell="#52/Base"} 0`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("missing %q in exposition", want)
		}
	}
}

func TestStatusEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(populated(t)))
	defer srv.Close()
	resp, body := get(t, srv, "/api/v1/status")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("status %d content type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var st StatusJSON
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if st.Service != "phftl" || st.GoVersion == "" {
		t.Fatalf("identity wrong: %+v", st)
	}
	if st.Ops != 500 || st.TargetOps != 2000 || st.Events != 3 {
		t.Fatalf("aggregate wrong: %+v", st)
	}
	if st.Cells["running"] != 1 || st.Cells["queued"] != 1 {
		t.Fatalf("cell states wrong: %v", st.Cells)
	}
	if st.ETASec == nil || *st.ETASec <= 0 {
		t.Fatalf("ETA missing with target ahead of ops: %+v", st.ETASec)
	}
}

func TestCellsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(populated(t)))
	defer srv.Close()
	_, body := get(t, srv, "/api/v1/cells")
	var doc CellsJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if len(doc.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(doc.Cells))
	}
	phftl, base := doc.Cells[0], doc.Cells[1]
	if phftl.Cell != "#52/PHFTL" || base.Cell != "#52/Base" {
		t.Fatalf("registration order not preserved: %s, %s", phftl.Cell, base.Cell)
	}
	if phftl.State != "running" || phftl.Ops != 500 || phftl.UserWrites != 500 || phftl.GCPasses != 1 {
		t.Fatalf("phftl cell wrong: %+v", phftl)
	}
	if phftl.CumWA == nil || *phftl.CumWA != 1.3 || phftl.CacheHit == nil || *phftl.CacheHit != 0.75 {
		t.Fatalf("phftl gauges wrong: %+v", phftl)
	}
	if phftl.Events["gc_start"] != 1 || phftl.Events["window_retrain"] != 1 {
		t.Fatalf("phftl events wrong: %v", phftl.Events)
	}
	// The queued baseline never published: every optional gauge must be
	// absent, not zero.
	if base.State != "queued" || base.Ops != 0 {
		t.Fatalf("base cell wrong: %+v", base)
	}
	if base.IntervalWA != nil || base.CumWA != nil || base.Threshold != nil ||
		base.CacheHit != nil || base.WearSkew != nil || base.FreeSB != nil {
		t.Fatalf("unobserved gauges present: %s", body)
	}
	if strings.Contains(string(body), `"cum_wa":null`) {
		t.Fatalf("null gauge serialized instead of omitted:\n%s", body)
	}
}

func TestEventsEndpointDrain(t *testing.T) {
	reg := populated(t)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, body := get(t, srv, "/api/v1/events?limit=2")
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("limit ignored: %d lines", len(lines))
	}
	var first struct {
		Seq uint64 `json:"seq"`
		Ev  string `json:"ev"`
		Run string `json:"run"`
		C   uint64 `json:"clock"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("decode %q: %v", lines[0], err)
	}
	if first.Seq != 1 || first.Ev != "gc_start" || first.Run != "#52/PHFTL" || first.C != 5 {
		t.Fatalf("first event wrong: %+v", first)
	}
	next := resp.Header.Get("X-Next-Seq")
	if next != "3" {
		t.Fatalf("X-Next-Seq = %q, want 3 (newest stored seq)", next)
	}

	// Resume from the last line actually read, not the header: the header
	// reports the ring head, the cursor is what the client consumed.
	var last struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &last); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, srv, "/api/v1/events?since="+strconv.FormatUint(last.Seq, 10))
	rest := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(rest) != 1 || !strings.Contains(rest[0], `"seq":3`) {
		t.Fatalf("resume drain wrong:\n%s", body)
	}

	// Fully drained: empty body, cursor unchanged.
	resp, body = get(t, srv, "/api/v1/events?since=3")
	if len(body) != 0 || resp.Header.Get("X-Next-Seq") != "3" {
		t.Fatalf("drained endpoint returned %q, X-Next-Seq %q", body, resp.Header.Get("X-Next-Seq"))
	}

	// Kind filter.
	_, body = get(t, srv, "/api/v1/events?kind=gc_end")
	filtered := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(filtered) != 1 || !strings.Contains(filtered[0], `"ev":"gc_end"`) {
		t.Fatalf("kind filter wrong:\n%s", body)
	}
}

func TestEventsEndpointBadParams(t *testing.T) {
	srv := httptest.NewServer(Handler(populated(t)))
	defer srv.Close()
	for _, path := range []string{
		"/api/v1/events?kind=nope",
		"/api/v1/events?since=abc",
		"/api/v1/events?limit=0",
		"/api/v1/events?limit=-5",
	} {
		resp, _ := get(t, srv, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestIndexAndPprof(t *testing.T) {
	srv := httptest.NewServer(Handler(populated(t)))
	defer srv.Close()
	resp, body := get(t, srv, "/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "/api/v1/cells") {
		t.Fatalf("index wrong: %d\n%s", resp.StatusCode, body)
	}
	resp, _ = get(t, srv, "/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d, want 404", resp.StatusCode)
	}
	resp, body = get(t, srv, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index wrong: %d", resp.StatusCode)
	}
}

func TestServeLifecycle(t *testing.T) {
	reg := registry.New()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(srv.URL(), "http://127.0.0.1:") {
		t.Fatalf("URL = %q", srv.URL())
	}
	resp, err := http.Get(srv.URL() + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(srv.URL() + "/api/v1/status"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}
