package httpd

import (
	"strings"
	"testing"
)

// TestCheckExpositionAccepts pins the validator against a well-formed
// exposition exercising every construct the registry emits.
func TestCheckExpositionAccepts(t *testing.T) {
	const good = `# HELP phftl_a_total A counter.
# TYPE phftl_a_total counter
phftl_a_total{cell="#52/PHFTL",kind="gc_start"} 3
phftl_a_total{kind="gc_end"} 0
# HELP phftl_h A histogram.
# TYPE phftl_h histogram
phftl_h_bucket{le="0.5"} 1
phftl_h_bucket{le="1"} 2
phftl_h_bucket{le="+Inf"} 3
phftl_h_sum 3
phftl_h_count 3
# HELP phftl_g A gauge.
# TYPE phftl_g gauge
phftl_g{v="a\"b\\c\nd"} -1.5
`
	if err := CheckExposition(strings.NewReader(good)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

// TestCheckExpositionRejects pins the malformed-line detection the
// http-smoke target relies on.
func TestCheckExpositionRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "empty"},
		{"untyped sample", "phftl_x 1\n", "TYPE"},
		{"bad name", "# HELP 1bad h\n# TYPE 1bad gauge\n1bad 1\n", "name"},
		{"bad value", "# HELP phftl_x h\n# TYPE phftl_x gauge\nphftl_x zero\n", "value"},
		{"negative counter", "# HELP phftl_x_total h\n# TYPE phftl_x_total counter\nphftl_x_total -1\n", "negative"},
		{"counter without _total", "# HELP phftl_x h\n# TYPE phftl_x counter\nphftl_x 1\n", "_total"},
		{"unknown type", "# HELP phftl_x h\n# TYPE phftl_x summary2\n", "type"},
		{"duplicate TYPE", "# HELP phftl_x h\n# TYPE phftl_x gauge\n# TYPE phftl_x gauge\n", "duplicate"},
		{"non-cumulative buckets", "# HELP phftl_h h\n# TYPE phftl_h histogram\n" +
			"phftl_h_bucket{le=\"0.5\"} 5\nphftl_h_bucket{le=\"1\"} 3\nphftl_h_bucket{le=\"+Inf\"} 5\nphftl_h_sum 1\nphftl_h_count 5\n", "cumulative"},
		{"missing +Inf", "# HELP phftl_h h\n# TYPE phftl_h histogram\n" +
			"phftl_h_bucket{le=\"0.5\"} 1\nphftl_h_sum 1\nphftl_h_count 1\n", "bucket run"},
		{"count mismatch", "# HELP phftl_h h\n# TYPE phftl_h histogram\n" +
			"phftl_h_bucket{le=\"+Inf\"} 3\nphftl_h_sum 1\nphftl_h_count 2\n", "count"},
		{"bucket without le", "# HELP phftl_h h\n# TYPE phftl_h histogram\nphftl_h_bucket 1\n", "le"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckExposition(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("accepted malformed exposition:\n%s", tc.in)
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.wantErr)) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
