// Package httpd is the embedded HTTP telemetry surface over a metrics
// registry: the pull-based counterpart to the JSONL/CSV sinks. One server
// per process exposes
//
//	/metrics            Prometheus text exposition v0.0.4
//	/api/v1/status      JSON: process/fleet aggregate (uptime, cell states,
//	                    ops, ops/sec, ETA)
//	/api/v1/cells       JSON: per-(trace,scheme) cell state — ops, WA,
//	                    GC passes, threshold, cache hit rate, wear skew
//	/api/v1/events      JSONL drain of the bounded event ring
//	                    (?kind=<name>&since=<seq>&limit=<n>)
//	/debug/pprof/       the stdlib profiling mux
//
// The harnesses wire it behind -listen; cmd/watop's -http mode polls the
// JSON endpoints. Handlers only read the registry (atomics plus short
// critical sections), so scraping during a replay never blocks a cell.
package httpd

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/obs/registry"
)

// StatusJSON is the /api/v1/status document.
type StatusJSON struct {
	Service       string         `json:"service"`
	GoVersion     string         `json:"go_version"`
	UptimeSec     float64        `json:"uptime_sec"`
	Goroutines    int            `json:"goroutines"`
	Cells         map[string]int `json:"cells"` // state name -> count
	Ops           uint64         `json:"ops"`
	TargetOps     uint64         `json:"target_ops,omitempty"`
	OpsPerSec     float64        `json:"ops_per_sec"`
	ETASec        *float64       `json:"eta_sec,omitempty"`
	Events        uint64         `json:"events"`
	EventsDropped uint64         `json:"events_dropped"`
}

// CellJSON is one element of the /api/v1/cells document. Gauge fields are
// pointers: a nil field means the gauge is not applicable (or not yet
// observed), mirroring the NaN convention of the JSONL sink.
type CellJSON struct {
	Cell      string  `json:"cell"`
	Trace     string  `json:"trace"`
	Scheme    string  `json:"scheme"`
	State     string  `json:"state"`
	Ops       uint64  `json:"ops"`
	TargetOps uint64  `json:"target_ops,omitempty"`
	OpsPerSec float64 `json:"ops_per_sec"`

	UserWrites uint64 `json:"user_writes"`
	GCWrites   uint64 `json:"gc_writes"`
	MetaWrites uint64 `json:"meta_writes"`
	GCPasses   uint64 `json:"gc_passes"`

	IntervalWA *float64 `json:"interval_wa,omitempty"`
	CumWA      *float64 `json:"cum_wa,omitempty"`
	Threshold  *float64 `json:"threshold,omitempty"`
	CacheHit   *float64 `json:"cache_hit,omitempty"`
	WearSkew   *float64 `json:"wear_skew,omitempty"`
	WearCoV    *float64 `json:"wear_cov,omitempty"`
	FreeSB     *float64 `json:"free_sb,omitempty"`

	Events map[string]uint64 `json:"events,omitempty"`
}

// CellsJSON is the /api/v1/cells document.
type CellsJSON struct {
	Cells []CellJSON `json:"cells"`
}

func optFloat(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// cellJSON shapes one registry snapshot for the wire.
func cellJSON(s registry.CellSnapshot) CellJSON {
	return CellJSON{
		Cell:       s.Name,
		Trace:      s.Trace,
		Scheme:     s.Scheme,
		State:      s.State.String(),
		Ops:        s.Ops,
		TargetOps:  s.TargetOps,
		OpsPerSec:  s.OpsPerSec,
		UserWrites: s.UserWrites,
		GCWrites:   s.GCWrites,
		MetaWrites: s.MetaWrites,
		GCPasses:   s.GCPasses,
		IntervalWA: optFloat(s.IntervalWA),
		CumWA:      optFloat(s.CumWA),
		Threshold:  optFloat(s.Threshold),
		CacheHit:   optFloat(s.CacheHit),
		WearSkew:   optFloat(s.WearSkew),
		WearCoV:    optFloat(s.WearCoV),
		FreeSB:     optFloat(s.FreeSB),
		Events:     s.Events,
	}
}

// Handler builds the telemetry mux over a registry. Exposed separately from
// Serve so tests can drive it through net/http/httptest.
func Handler(reg *registry.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Registry state is read under short locks; write errors mean the
		// scraper hung up and need no handling beyond stopping.
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/api/v1/status", func(w http.ResponseWriter, r *http.Request) {
		t := reg.Totals()
		st := StatusJSON{
			Service:       "phftl",
			GoVersion:     runtime.Version(),
			UptimeSec:     reg.UptimeSeconds(),
			Goroutines:    runtime.NumGoroutine(),
			Cells:         make(map[string]int, registry.NumStates),
			Ops:           t.Ops,
			TargetOps:     t.TargetOps,
			Events:        t.Events,
			EventsDropped: reg.EventsDropped(),
		}
		for s := 0; s < registry.NumStates; s++ {
			st.Cells[registry.State(s).String()] = t.Cells[s]
		}
		if st.UptimeSec > 0 {
			st.OpsPerSec = float64(t.Ops) / st.UptimeSec
		}
		if t.TargetOps > t.Ops && st.OpsPerSec > 0 {
			eta := float64(t.TargetOps-t.Ops) / st.OpsPerSec
			st.ETASec = &eta
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("/api/v1/cells", func(w http.ResponseWriter, r *http.Request) {
		snaps := reg.Snapshot()
		doc := CellsJSON{Cells: make([]CellJSON, 0, len(snaps))}
		for _, s := range snaps {
			doc.Cells = append(doc.Cells, cellJSON(s))
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("/api/v1/events", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var kind obs.Kind
		if name := q.Get("kind"); name != "" {
			k, ok := obs.KindByName(name)
			if !ok {
				http.Error(w, fmt.Sprintf("unknown kind %q", name), http.StatusBadRequest)
				return
			}
			kind = k
		}
		var since uint64
		if s := q.Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad since %q", s), http.StatusBadRequest)
				return
			}
			since = v
		}
		limit := 1000
		if s := q.Get("limit"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, fmt.Sprintf("bad limit %q", s), http.StatusBadRequest)
				return
			}
			limit = v
		}
		events, newest := reg.EventsSince(since, kind, limit)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Next-Seq", strconv.FormatUint(newest, 10))
		var buf []byte
		for _, se := range events {
			buf = obs.AppendJSONSeq(buf[:0], se.Seq, se.Ev, se.Cell)
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "phftl telemetry\n\n"+
			"  /metrics           Prometheus text exposition\n"+
			"  /api/v1/status     fleet aggregate (JSON)\n"+
			"  /api/v1/cells      per-cell state (JSON)\n"+
			"  /api/v1/events     event drain (JSONL; ?kind=&since=&limit=)\n"+
			"  /debug/pprof/      runtime profiles\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running telemetry listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts serving the registry on addr (host:port; :0 picks a free
// port — read the chosen one back with Addr). The server runs until Close.
func Serve(addr string, reg *registry.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpd: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		// ErrServerClosed after Close is the clean path; any other serve
		// error leaves the process running without telemetry, which the
		// scraper notices immediately.
		_ = srv.Serve(ln)
	}()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (resolving a :0 request).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the http:// base URL of the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener and all active handlers.
func (s *Server) Close() error { return s.srv.Close() }
