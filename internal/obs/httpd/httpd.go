// Package httpd is the embedded HTTP telemetry and control surface over a
// metrics registry: the pull-based counterpart to the JSONL/CSV sinks. One
// server per process exposes
//
//	/metrics            Prometheus text exposition v0.0.4
//	/api/v1/status      JSON: process/fleet aggregate (uptime, cell states,
//	                    ops, ops/sec, ETA)
//	/api/v1/cells       GET: per-(trace,scheme) cell state — ops, WA,
//	                    GC passes, threshold, cache hit rate, wear skew
//	                    POST: submit a cell spec to the attached Controller
//	                    (fleet service only; 501 without one)
//	/api/v1/cells/{name}/cancel
//	                    POST: cancel a queued or running cell (the name is
//	                    path-escaped: "#52/PHFTL@j1" → "%2352%2FPHFTL@j1")
//	/api/v1/fleet       JSON: fleet-wide WA percentiles (p50/p90/p99/max
//	                    interval and end-of-run WA per scheme)
//	/api/v1/events      JSONL drain of the bounded event ring
//	                    (?kind=<name>&since=<seq>&limit=<n>)
//	/debug/pprof/       the stdlib profiling mux
//
// The harnesses wire it behind -listen; cmd/phftld attaches a fleet
// Controller; cmd/watop's -http mode polls the JSON endpoints. Read handlers
// only touch the registry (atomics plus short critical sections), so
// scraping during a replay never blocks a cell.
//
// Event-drain cursor contract: every /api/v1/events response carries an
// X-Next-Seq header — poll next with ?since= set to exactly this value. The
// header is the sequence of the last ring slot the scan covered, so a
// limit-truncated response resumes at the first undelivered event; it never
// jumps to the ring head past events the response did not contain.
package httpd

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/obs/registry"
)

// Controller is the control-plane hook behind the POST endpoints: a fleet
// supervisor (internal/fleet) that accepts runtime cell submissions and
// cancellations. A nil Controller serves the telemetry endpoints only.
type Controller interface {
	// SubmitCell validates and enqueues one cell, returning the name the
	// cell was registered under (the handle for /api/v1/cells and cancel).
	SubmitCell(spec CellSpec) (name string, err error)
	// CancelCell cancels a queued or running cell by registered name. It
	// wraps ErrUnknownCell / ErrCellTerminal for the HTTP status mapping.
	CancelCell(name string) error
}

// Sentinel errors a Controller wraps so the handlers can map control-plane
// failures onto HTTP statuses without knowing the implementation.
var (
	// ErrUnknownCell: the named cell was never submitted (404).
	ErrUnknownCell = errors.New("unknown cell")
	// ErrCellTerminal: the cell already reached done/failed/cancelled (409).
	ErrCellTerminal = errors.New("cell already terminal")
)

// CellSpec is the POST /api/v1/cells submission document: one trace×scheme
// replay with its knobs. Zero-valued optional fields select the service
// defaults (DriveWrites, CellWorkers) or the standard 7% OP geometry.
type CellSpec struct {
	Trace       string  `json:"trace"`
	Scheme      string  `json:"scheme"`
	DriveWrites int     `json:"drive_writes,omitempty"`
	OP          float64 `json:"op,omitempty"`
	CellWorkers int     `json:"cell_workers,omitempty"`
}

// SubmitJSON is the POST /api/v1/cells response.
type SubmitJSON struct {
	Cell  string `json:"cell"`
	State string `json:"state"`
}

// StatusJSON is the /api/v1/status document.
type StatusJSON struct {
	Service       string         `json:"service"`
	GoVersion     string         `json:"go_version"`
	UptimeSec     float64        `json:"uptime_sec"`
	Goroutines    int            `json:"goroutines"`
	Cells         map[string]int `json:"cells"` // state name -> count
	Ops           uint64         `json:"ops"`
	TargetOps     uint64         `json:"target_ops,omitempty"`
	OpsPerSec     float64        `json:"ops_per_sec"`
	ETASec        *float64       `json:"eta_sec,omitempty"`
	Events        uint64         `json:"events"`
	EventsDropped uint64         `json:"events_dropped"`
}

// CellJSON is one element of the /api/v1/cells document. Gauge fields are
// pointers: a nil field means the gauge is not applicable (or not yet
// observed), mirroring the NaN convention of the JSONL sink.
type CellJSON struct {
	Cell      string  `json:"cell"`
	Trace     string  `json:"trace"`
	Scheme    string  `json:"scheme"`
	State     string  `json:"state"`
	Ops       uint64  `json:"ops"`
	TargetOps uint64  `json:"target_ops,omitempty"`
	OpsPerSec float64 `json:"ops_per_sec"`

	UserWrites uint64 `json:"user_writes"`
	GCWrites   uint64 `json:"gc_writes"`
	MetaWrites uint64 `json:"meta_writes"`
	GCPasses   uint64 `json:"gc_passes"`

	IntervalWA *float64 `json:"interval_wa,omitempty"`
	CumWA      *float64 `json:"cum_wa,omitempty"`
	Threshold  *float64 `json:"threshold,omitempty"`
	CacheHit   *float64 `json:"cache_hit,omitempty"`
	WearSkew   *float64 `json:"wear_skew,omitempty"`
	WearCoV    *float64 `json:"wear_cov,omitempty"`
	FreeSB     *float64 `json:"free_sb,omitempty"`

	Events map[string]uint64 `json:"events,omitempty"`
}

// CellsJSON is the /api/v1/cells document.
type CellsJSON struct {
	Cells []CellJSON `json:"cells"`
}

func optFloat(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// cellJSON shapes one registry snapshot for the wire.
func cellJSON(s registry.CellSnapshot) CellJSON {
	return CellJSON{
		Cell:       s.Name,
		Trace:      s.Trace,
		Scheme:     s.Scheme,
		State:      s.State.String(),
		Ops:        s.Ops,
		TargetOps:  s.TargetOps,
		OpsPerSec:  s.OpsPerSec,
		UserWrites: s.UserWrites,
		GCWrites:   s.GCWrites,
		MetaWrites: s.MetaWrites,
		GCPasses:   s.GCPasses,
		IntervalWA: optFloat(s.IntervalWA),
		CumWA:      optFloat(s.CumWA),
		Threshold:  optFloat(s.Threshold),
		CacheHit:   optFloat(s.CacheHit),
		WearSkew:   optFloat(s.WearSkew),
		WearCoV:    optFloat(s.WearCoV),
		FreeSB:     optFloat(s.FreeSB),
		Events:     s.Events,
	}
}

// DistJSON is one WA distribution in the /api/v1/fleet document. Quantile
// fields are omitted (never null) when the distribution is empty.
type DistJSON struct {
	Count uint64   `json:"count"`
	P50   *float64 `json:"p50,omitempty"`
	P90   *float64 `json:"p90,omitempty"`
	P99   *float64 `json:"p99,omitempty"`
	Max   *float64 `json:"max,omitempty"`
}

func distJSON(d registry.WADist) DistJSON {
	return DistJSON{
		Count: d.Count,
		P50:   optFloat(d.P50),
		P90:   optFloat(d.P90),
		P99:   optFloat(d.P99),
		Max:   optFloat(d.Max),
	}
}

// FleetSchemeJSON is one scheme's WA distributions in /api/v1/fleet.
type FleetSchemeJSON struct {
	Scheme     string   `json:"scheme"`
	IntervalWA DistJSON `json:"interval_wa"`
	FinalWA    DistJSON `json:"final_wa"`
}

// FleetJSON is the /api/v1/fleet document: fleet-wide WA tail percentiles,
// the aggregation a thousand-drive service exists to serve.
type FleetJSON struct {
	UptimeSec  float64           `json:"uptime_sec"`
	Cells      map[string]int    `json:"cells"` // state name -> count
	OpsPerSec  float64           `json:"ops_per_sec"`
	IntervalWA DistJSON          `json:"interval_wa"` // all cells, all schemes
	Schemes    []FleetSchemeJSON `json:"schemes"`
}

// Handler builds the telemetry mux over a registry (no control plane: the
// POST endpoints answer 501). Exposed separately from Serve so tests can
// drive it through net/http/httptest.
func Handler(reg *registry.Registry) http.Handler {
	return HandlerWith(reg, nil)
}

// HandlerWith is Handler plus a control plane: with a non-nil Controller,
// POST /api/v1/cells submits cells and POST /api/v1/cells/{name}/cancel
// cancels them.
func HandlerWith(reg *registry.Registry, ctrl Controller) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Registry state is read under short locks; write errors mean the
		// scraper hung up and need no handling beyond stopping.
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/api/v1/status", func(w http.ResponseWriter, r *http.Request) {
		t := reg.Totals()
		st := StatusJSON{
			Service:       "phftl",
			GoVersion:     runtime.Version(),
			UptimeSec:     reg.UptimeSeconds(),
			Goroutines:    runtime.NumGoroutine(),
			Cells:         make(map[string]int, registry.NumStates),
			Ops:           t.Ops,
			TargetOps:     t.TargetOps,
			Events:        t.Events,
			EventsDropped: reg.EventsDropped(),
		}
		for s := 0; s < registry.NumStates; s++ {
			st.Cells[registry.State(s).String()] = t.Cells[s]
		}
		// Sliding-window rate (shared with the runner progress line), not the
		// lifetime average: after a slow warm-up or on an idle queue the
		// lifetime figure goes arbitrarily stale, and so would the ETA.
		st.OpsPerSec = reg.LiveOpsPerSec()
		if t.TargetOps > t.Ops && st.OpsPerSec > 0 {
			eta := float64(t.TargetOps-t.Ops) / st.OpsPerSec
			st.ETASec = &eta
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("/api/v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		t := reg.Totals()
		doc := FleetJSON{
			UptimeSec: reg.UptimeSeconds(),
			Cells:     make(map[string]int, registry.NumStates),
			OpsPerSec: reg.LiveOpsPerSec(),
		}
		for s := 0; s < registry.NumStates; s++ {
			doc.Cells[registry.State(s).String()] = t.Cells[s]
		}
		all, schemes := reg.FleetWA()
		doc.IntervalWA = distJSON(all)
		doc.Schemes = make([]FleetSchemeJSON, 0, len(schemes))
		for _, s := range schemes {
			doc.Schemes = append(doc.Schemes, FleetSchemeJSON{
				Scheme:     s.Scheme,
				IntervalWA: distJSON(s.IntervalWA),
				FinalWA:    distJSON(s.FinalWA),
			})
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("POST /api/v1/cells", func(w http.ResponseWriter, r *http.Request) {
		if ctrl == nil {
			http.Error(w, "no control plane attached (run the fleet service: phftld serve)", http.StatusNotImplemented)
			return
		}
		var spec CellSpec
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&spec); err != nil {
			http.Error(w, fmt.Sprintf("bad cell spec: %v", err), http.StatusBadRequest)
			return
		}
		name, err := ctrl.SubmitCell(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSONStatus(w, http.StatusAccepted, SubmitJSON{Cell: name, State: registry.StateQueued.String()})
	})
	mux.HandleFunc("POST /api/v1/cells/{name}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if ctrl == nil {
			http.Error(w, "no control plane attached (run the fleet service: phftld serve)", http.StatusNotImplemented)
			return
		}
		name := r.PathValue("name")
		if err := ctrl.CancelCell(name); err != nil {
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrUnknownCell):
				status = http.StatusNotFound
			case errors.Is(err, ErrCellTerminal):
				status = http.StatusConflict
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, SubmitJSON{Cell: name, State: registry.StateCancelled.String()})
	})
	mux.HandleFunc("/api/v1/cells", func(w http.ResponseWriter, r *http.Request) {
		snaps := reg.Snapshot()
		doc := CellsJSON{Cells: make([]CellJSON, 0, len(snaps))}
		for _, s := range snaps {
			doc.Cells = append(doc.Cells, cellJSON(s))
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("/api/v1/events", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var kind obs.Kind
		if name := q.Get("kind"); name != "" {
			k, ok := obs.KindByName(name)
			if !ok {
				http.Error(w, fmt.Sprintf("unknown kind %q", name), http.StatusBadRequest)
				return
			}
			kind = k
		}
		var since uint64
		if s := q.Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad since %q", s), http.StatusBadRequest)
				return
			}
			since = v
		}
		limit := 1000
		if s := q.Get("limit"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, fmt.Sprintf("bad limit %q", s), http.StatusBadRequest)
				return
			}
			limit = v
		}
		events, cursor := reg.EventsSince(since, kind, limit)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Next-Seq", strconv.FormatUint(cursor, 10))
		var buf []byte
		for _, se := range events {
			buf = obs.AppendJSONSeq(buf[:0], se.Seq, se.Ev, se.Cell)
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "phftl telemetry\n\n"+
			"  /metrics           Prometheus text exposition\n"+
			"  /api/v1/status     fleet aggregate (JSON)\n"+
			"  /api/v1/cells      per-cell state (JSON); POST submits a cell spec\n"+
			"  /api/v1/cells/{name}/cancel  POST cancels a cell (name path-escaped)\n"+
			"  /api/v1/fleet      fleet WA percentiles per scheme (JSON)\n"+
			"  /api/v1/events     event drain (JSONL; ?kind=&since=&limit=)\n"+
			"  /debug/pprof/      runtime profiles\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running telemetry listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts serving the registry on addr (host:port; :0 picks a free
// port — read the chosen one back with Addr). The server runs until Close.
func Serve(addr string, reg *registry.Registry) (*Server, error) {
	return ServeWith(addr, reg, nil)
}

// ServeWith is Serve plus a control plane, for processes (cmd/phftld) that
// accept cell submissions over HTTP.
func ServeWith(addr string, reg *registry.Registry, ctrl Controller) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpd: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: HandlerWith(reg, ctrl), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		// ErrServerClosed after Close is the clean path; any other serve
		// error leaves the process running without telemetry, which the
		// scraper notices immediately.
		_ = srv.Serve(ln)
	}()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (resolving a :0 request).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the http:// base URL of the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener and all active handlers.
func (s *Server) Close() error { return s.srv.Close() }
