package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
)

// appendFloat formats floats compactly and JSON-safely (NaN/Inf become 0,
// which JSON cannot represent).
func appendFloat(dst []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(dst, '0')
	}
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

func appendKV(dst []byte, key string, v int64) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, key...)
	dst = append(dst, '"', ':')
	return strconv.AppendInt(dst, v, 10)
}

func appendKVF(dst []byte, key string, v float64) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, key...)
	dst = append(dst, '"', ':')
	return appendFloat(dst, v)
}

// AppendJSON appends one event as a single JSON object (no trailing newline)
// with kind-specific field names, in stable order. run, when non-empty, tags
// the line so multiple runs can share one stream.
func AppendJSON(dst []byte, ev Event, run string) []byte {
	dst = append(dst, '{')
	return appendJSONBody(dst, ev, run)
}

// AppendJSONSeq is AppendJSON with a leading "seq" field, used by the HTTP
// events endpoint: the sequence number is the drain cursor clients pass back
// as ?since=. All other fields and their order match AppendJSON exactly, so
// line consumers (watop) parse both shapes with one decoder.
func AppendJSONSeq(dst []byte, seq uint64, ev Event, run string) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, seq, 10)
	dst = append(dst, ',')
	return appendJSONBody(dst, ev, run)
}

// appendJSONBody writes the event object's fields (from `"ev":` through the
// closing brace); the caller has already opened the object.
func appendJSONBody(dst []byte, ev Event, run string) []byte {
	dst = append(dst, `"ev":"`...)
	dst = append(dst, ev.Kind.String()...)
	dst = append(dst, '"')
	if run != "" {
		dst = append(dst, `,"run":`...)
		dst = strconv.AppendQuote(dst, run)
	}
	dst = appendKV(dst, "clock", int64(ev.Clock))
	switch ev.Kind {
	case KindGCStart:
		dst = appendKV(dst, "sb", int64(ev.SB))
		dst = appendKV(dst, "stream", int64(ev.Stream))
		dst = appendKV(dst, "gc_class", int64(ev.GCClass))
		dst = appendKV(dst, "valid", ev.A)
		dst = appendKV(dst, "free_sb", ev.B)
		dst = appendKVF(dst, "valid_ratio", ev.F0)
	case KindGCEnd:
		dst = appendKV(dst, "sb", int64(ev.SB))
		dst = appendKV(dst, "stream", int64(ev.Stream))
		dst = appendKV(dst, "gc_class", int64(ev.GCClass))
		dst = appendKV(dst, "migrated", ev.A)
		dst = appendKV(dst, "free_sb", ev.B)
		dst = appendKVF(dst, "valid_ratio", ev.F0)
	case KindSBOpen:
		dst = appendKV(dst, "sb", int64(ev.SB))
		dst = appendKV(dst, "stream", int64(ev.Stream))
		dst = appendKV(dst, "gc_class", int64(ev.GCClass))
		dst = appendKV(dst, "free_sb", ev.B)
	case KindSBClose:
		dst = appendKV(dst, "sb", int64(ev.SB))
		dst = appendKV(dst, "stream", int64(ev.Stream))
		dst = appendKV(dst, "gc_class", int64(ev.GCClass))
		dst = appendKV(dst, "valid", ev.A)
	case KindThresholdUpdate:
		dst = appendKVF(dst, "old", ev.F0)
		dst = appendKVF(dst, "new", ev.F1)
		dst = appendKVF(dst, "probe_accuracy", ev.F2)
		dst = appendKV(dst, "direction", ev.A)
		dst = appendKV(dst, "step", ev.B)
		dst = appendKV(dst, "inflection_seed", ev.C)
	case KindWindowRetrain:
		dst = appendKV(dst, "examples", ev.A)
		dst = appendKV(dst, "deployed", ev.B)
		if ev.C > 0 {
			// Wall-clock training duration, recorded only under
			// -wall-durations (core.Options.WallDurations). Omitting the
			// field when no duration was measured keeps default telemetry
			// byte-identical across runs, worker counts and hosts.
			dst = appendKV(dst, "duration_ns", ev.C)
		}
		dst = appendKVF(dst, "loss", ev.F0)
		dst = appendKVF(dst, "threshold", ev.F1)
	case KindMetaCacheHit, KindMetaCacheMiss, KindMetaCacheEvict:
		dst = appendKV(dst, "mppn", ev.A)
	case KindWriteStall:
		dst = appendKV(dst, "depth", ev.A)
		dst = appendKV(dst, "source", ev.B)
		dst = appendKV(dst, "wait_ns", ev.C)
	case KindErase:
		dst = appendKV(dst, "die", ev.A)
		dst = appendKV(dst, "block", ev.B)
		dst = appendKV(dst, "erase_count", ev.C)
	default:
		dst = appendKV(dst, "a", ev.A)
		dst = appendKV(dst, "b", ev.B)
		dst = appendKV(dst, "c", ev.C)
	}
	return append(dst, '}')
}

// AppendSampleJSON appends one sample as a single JSON object (no trailing
// newline), tagged "ev":"sample" so events and samples interleave in one
// JSONL stream.
func AppendSampleJSON(dst []byte, s Sample, run string) []byte {
	dst = append(dst, `{"ev":"sample"`...)
	if run != "" {
		dst = append(dst, `,"run":`...)
		dst = strconv.AppendQuote(dst, run)
	}
	dst = appendKV(dst, "clock", int64(s.Clock))
	dst = appendKVF(dst, "interval_wa", s.IntervalWA)
	dst = appendKVF(dst, "cum_wa", s.CumWA)
	dst = appendKV(dst, "free_sb", int64(s.FreeSB))
	dst = appendKVF(dst, "threshold", s.Threshold)
	if !math.IsNaN(s.CacheHitRatio) {
		// NaN means "no metadata cache" (baseline schemes); omit the field
		// rather than emit a fake value (JSON cannot represent NaN).
		dst = appendKVF(dst, "cache_hit", s.CacheHitRatio)
	}
	dst = appendKVF(dst, "queue_depth", s.QueueDepth)
	if !math.IsNaN(s.LatencyP50MS) {
		dst = appendKVF(dst, "lat_p50_ms", s.LatencyP50MS)
	}
	if !math.IsNaN(s.LatencyP99MS) {
		dst = appendKVF(dst, "lat_p99_ms", s.LatencyP99MS)
	}
	if !math.IsNaN(s.WearSkew) {
		dst = appendKVF(dst, "wear_skew", s.WearSkew)
	}
	if !math.IsNaN(s.WearCoV) {
		dst = appendKVF(dst, "wear_cov", s.WearCoV)
	}
	dst = append(dst, `,"open_fill":[`...)
	for i, f := range s.OpenFill {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendFloat(dst, f)
	}
	return append(dst, ']', '}')
}

// WriteJSONL writes the events followed by the samples as JSON Lines,
// merge-ordered by clock so the stream reads chronologically. run, when
// non-empty, tags every line.
func WriteJSONL(w io.Writer, run string, events []Event, samples []Sample) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	ei, si := 0, 0
	for ei < len(events) || si < len(samples) {
		buf = buf[:0]
		if si >= len(samples) || (ei < len(events) && events[ei].Clock <= samples[si].Clock) {
			buf = AppendJSON(buf, events[ei], run)
			ei++
		} else {
			buf = AppendSampleJSON(buf, samples[si], run)
			si++
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSamplesCSV writes the sample series as CSV with a header row.
// Per-stream open fill is flattened to its mean to keep the column set
// fixed; the JSONL stream retains the full vector. threshold is printed at
// %.6f — PHFTL's hill-climbing steps can be smaller than 0.001, and the
// golden-curve differ (internal/golden) must see them, so the CSV keeps
// enough precision to resolve a single step. New columns (wear_skew,
// wear_cov) are additive at the end of the row, keeping every pre-existing
// column at its historical position so checked-in golden baselines stay
// comparable without regeneration.
func WriteSamplesCSV(w io.Writer, samples []Sample) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "clock,interval_wa,cum_wa,free_sb,threshold,cache_hit,queue_depth,lat_p50_ms,lat_p99_ms,open_fill_mean,wear_skew,wear_cov"); err != nil {
		return err
	}
	for _, s := range samples {
		fill := 0.0
		if len(s.OpenFill) > 0 {
			for _, f := range s.OpenFill {
				fill += f
			}
			fill /= float64(len(s.OpenFill))
		}
		hit := ""
		if !math.IsNaN(s.CacheHitRatio) {
			hit = fmt.Sprintf("%.6f", s.CacheHitRatio)
		}
		p50, p99 := "", ""
		if !math.IsNaN(s.LatencyP50MS) {
			p50 = fmt.Sprintf("%.3f", s.LatencyP50MS)
		}
		if !math.IsNaN(s.LatencyP99MS) {
			p99 = fmt.Sprintf("%.3f", s.LatencyP99MS)
		}
		skew, cov := "", ""
		if !math.IsNaN(s.WearSkew) {
			skew = fmt.Sprintf("%.4f", s.WearSkew)
		}
		if !math.IsNaN(s.WearCoV) {
			cov = fmt.Sprintf("%.4f", s.WearCoV)
		}
		if _, err := fmt.Fprintf(bw, "%d,%.6f,%.6f,%d,%.6f,%s,%.2f,%s,%s,%.4f,%s,%s\n",
			s.Clock, s.IntervalWA, s.CumWA, s.FreeSB, s.Threshold,
			hit, s.QueueDepth, p50, p99, fill, skew, cov); err != nil {
			return err
		}
	}
	return bw.Flush()
}
