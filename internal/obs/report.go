package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Report is a run summary distilled from a trace recorder and a sampler: GC
// activity by stream, the valid-ratio distribution of collected victims, the
// threshold timeline and the cache/stall/retrain counters. It renders as
// text (String) for README-able output.
type Report struct {
	// Events is the number of retained events the report was built from;
	// EventsDropped counts ring overwrites (the totals below still include
	// them where per-kind counters were available).
	Events        int
	EventsDropped uint64

	GCCount     uint64
	GCByStream  map[int]uint64
	GCValidP50  float64
	GCValidP99  float64
	GCMigrated  uint64
	SBOpens     uint64
	SBCloses    uint64
	WriteStalls uint64
	// Erases counts block-erase events (one per die per collected
	// superblock); wear-skew trajectories live in the sample series and the
	// per-die heatmap in internal/wear.
	Erases      uint64
	CacheHits   uint64
	CacheMisses uint64
	CacheEvicts uint64
	// CacheSampleEvery is the recorded retention sampling rate of the
	// meta-cache event kinds (1 = every event retained). The hit/miss/evict
	// counters above are exact regardless.
	CacheSampleEvery uint64
	// EventsSampledOut counts events thinned by per-kind sampling before
	// storage (deliberate policy, distinct from ring-wraparound drops).
	EventsSampledOut uint64
	// Retrains counts all training windows (wrap-surviving counter);
	// RetainedRetrains, Deploys, GCMigrated, the valid-ratio percentiles
	// and the threshold timeline are computed from the retained event
	// window only.
	Retrains         uint64
	RetainedRetrains uint64
	Deploys          uint64
	LastTrainLoss    float64

	ThresholdUpdates  uint64
	ThresholdFirst    float64
	ThresholdMin      float64
	ThresholdMax      float64
	ThresholdFinal    float64
	ThresholdTimeline []ThresholdPoint

	Samples    int
	FinalCumWA float64
	PeakIntWA  float64
}

// ThresholdPoint is one threshold decision on the virtual clock.
type ThresholdPoint struct {
	Clock uint64
	Value float64
}

// BuildReport summarizes retained events and samples. rec may be nil when
// only samples are available (and vice versa: samples may be nil).
func BuildReport(rec *TraceRecorder, samples []Sample) *Report {
	r := &Report{GCByStream: map[int]uint64{}}
	var validRatios []float64
	if rec != nil {
		events := rec.Events()
		r.Events = len(events)
		r.EventsDropped = rec.Dropped()
		// Per-kind totals survive ring wraparound; distributions and the
		// threshold timeline are computed from the retained window.
		r.GCCount = rec.CountByKind(KindGCEnd)
		r.SBOpens = rec.CountByKind(KindSBOpen)
		r.SBCloses = rec.CountByKind(KindSBClose)
		r.WriteStalls = rec.CountByKind(KindWriteStall)
		r.Erases = rec.CountByKind(KindErase)
		r.CacheHits = rec.CountByKind(KindMetaCacheHit)
		r.CacheMisses = rec.CountByKind(KindMetaCacheMiss)
		r.CacheEvicts = rec.CountByKind(KindMetaCacheEvict)
		r.CacheSampleEvery = rec.SampleEveryOf(KindMetaCacheHit)
		r.EventsSampledOut = rec.SampledOut()
		r.Retrains = rec.CountByKind(KindWindowRetrain)
		r.ThresholdUpdates = rec.CountByKind(KindThresholdUpdate)
		for _, ev := range events {
			switch ev.Kind {
			case KindGCEnd:
				r.GCByStream[int(ev.Stream)]++
				r.GCMigrated += uint64(ev.A)
				validRatios = append(validRatios, ev.F0)
			case KindThresholdUpdate:
				r.ThresholdTimeline = append(r.ThresholdTimeline, ThresholdPoint{Clock: ev.Clock, Value: ev.F1})
			case KindWindowRetrain:
				r.RetainedRetrains++
				if ev.B != 0 {
					r.Deploys++
				}
				r.LastTrainLoss = ev.F0
			}
		}
	}
	if n := len(validRatios); n > 0 {
		sort.Float64s(validRatios)
		r.GCValidP50 = validRatios[n/2]
		r.GCValidP99 = validRatios[min(n-1, n*99/100)]
	}
	if n := len(r.ThresholdTimeline); n > 0 {
		r.ThresholdFirst = r.ThresholdTimeline[0].Value
		r.ThresholdFinal = r.ThresholdTimeline[n-1].Value
		r.ThresholdMin, r.ThresholdMax = r.ThresholdFirst, r.ThresholdFirst
		for _, p := range r.ThresholdTimeline {
			if p.Value < r.ThresholdMin {
				r.ThresholdMin = p.Value
			}
			if p.Value > r.ThresholdMax {
				r.ThresholdMax = p.Value
			}
		}
	}
	r.Samples = len(samples)
	for _, s := range samples {
		if s.IntervalWA > r.PeakIntWA {
			r.PeakIntWA = s.IntervalWA
		}
	}
	if len(samples) > 0 {
		r.FinalCumWA = samples[len(samples)-1].CumWA
	}
	return r
}

// String renders the report as aligned text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "observability report (%d retained events", r.Events)
	if r.EventsSampledOut > 0 {
		fmt.Fprintf(&b, ", %d thinned by per-kind sampling (counters exact)", r.EventsSampledOut)
	}
	if r.EventsDropped > 0 {
		fmt.Fprintf(&b, ", %d dropped by ring wraparound — raise the event-ring capacity (-ring-cap)", r.EventsDropped)
	}
	fmt.Fprintf(&b, ", %d samples)\n", r.Samples)
	fmt.Fprintf(&b, "  gc collections       %d (%d pages migrated, valid-ratio p50 %.2f p99 %.2f)\n",
		r.GCCount, r.GCMigrated, r.GCValidP50, r.GCValidP99)
	if len(r.GCByStream) > 0 {
		streams := make([]int, 0, len(r.GCByStream))
		for s := range r.GCByStream {
			streams = append(streams, s)
		}
		sort.Ints(streams)
		b.WriteString("  gc victims by stream ")
		for i, s := range streams {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "s%d:%d", s, r.GCByStream[s])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  superblocks          %d opened, %d sealed\n", r.SBOpens, r.SBCloses)
	if r.Erases > 0 {
		fmt.Fprintf(&b, "  block erases         %d\n", r.Erases)
	}
	if r.WriteStalls > 0 {
		fmt.Fprintf(&b, "  write stalls         %d\n", r.WriteStalls)
	}
	if r.CacheHits+r.CacheMisses > 0 {
		hitRate := float64(r.CacheHits) / float64(r.CacheHits+r.CacheMisses)
		fmt.Fprintf(&b, "  meta cache           %.2f%% hit rate (%d hits, %d misses, %d evictions)",
			hitRate*100, r.CacheHits, r.CacheMisses, r.CacheEvicts)
		if r.CacheSampleEvery > 1 {
			fmt.Fprintf(&b, " — events sampled 1/%d, counters exact", r.CacheSampleEvery)
		}
		b.WriteString("\n")
	}
	if r.Retrains > 0 {
		fmt.Fprintf(&b, "  model trainer        %d training windows", r.Retrains)
		if r.EventsDropped > 0 {
			fmt.Fprintf(&b, " (%d retained: %d deployed)", r.RetainedRetrains, r.Deploys)
		} else {
			fmt.Fprintf(&b, ", %d deployed", r.Deploys)
		}
		fmt.Fprintf(&b, ", last loss %.4f\n", r.LastTrainLoss)
	}
	if r.ThresholdUpdates > 0 {
		fmt.Fprintf(&b, "  threshold            %d updates: first %.0f, min %.0f, max %.0f, final %.0f\n",
			r.ThresholdUpdates, r.ThresholdFirst, r.ThresholdMin, r.ThresholdMax, r.ThresholdFinal)
	}
	if r.Samples > 0 {
		fmt.Fprintf(&b, "  write amplification  final %.1f%%, peak interval %.1f%%\n",
			r.FinalCumWA*100, r.PeakIntWA*100)
	}
	return b.String()
}
