// Package obs is the observability layer of the PHFTL reproduction: a typed
// structured-event bus, a periodic time-series sampler, JSONL/CSV sinks, a
// text report renderer, and runtime-profiling helpers. The paper's headline
// results (Figures 5-7, Table I) are trajectories — WA, threshold, latency
// and classifier quality evolving over a trace replay — and this package is
// what turns the simulator's end-of-run aggregates into those trajectories:
// every GC pass, superblock transition, threshold move, retraining pass,
// metadata-cache outcome and write stall becomes an Event, and a Sampler
// snapshots the system's gauges on a fixed virtual-clock cadence.
//
// Instrumentation sites hold a nil Recorder by default and guard every emit
// with a nil check, so the disabled path costs one predictable branch and
// stays off the critical path.
package obs

// Kind identifies an event type.
type Kind uint8

// The event taxonomy. Each kind documents how it uses the generic payload
// fields of Event (unused fields are zero).
const (
	// KindGCStart marks the start of one victim collection. SB is the
	// victim, Stream/GCClass describe the victim's placement, A is its
	// valid-page count, B the free-superblock count at selection time and
	// F0 the victim's valid ratio (valid pages / data pages).
	KindGCStart Kind = iota + 1
	// KindGCEnd marks the completed collection (victim erased). SB is the
	// victim, A the number of valid pages migrated, B the free-superblock
	// count after the erase, and F0 the victim's valid ratio at selection.
	KindGCEnd
	// KindSBOpen marks a superblock leaving the free list for writes.
	// SB is the superblock, Stream/GCClass its placement, B the
	// free-superblock count after the allocation.
	KindSBOpen
	// KindSBClose marks a full superblock sealing (meta pages programmed).
	// SB is the superblock, Stream/GCClass its placement, A its valid-page
	// count at close time.
	KindSBClose
	// KindThresholdUpdate records one window's classification-threshold
	// decision. F0 is the old threshold, F1 the new one, F2 the winning
	// probe accuracy (0 when seeded), A the hill-climb direction (-1/0/+1),
	// B the adjuster's step after refinement, and C is 1 when the value
	// came from the lifetime-CDF inflection point (first window) and 0 for
	// hill-climb windows.
	KindThresholdUpdate
	// KindWindowRetrain records one Model Trainer window with an active
	// threshold. A is the number of labeled training examples, B is 1 when
	// a training pass ran and deployed a new model (0 when the window had
	// too few examples), C the wall-clock training duration in nanoseconds
	// (recorded only when core.Options.WallDurations — the -wall-durations
	// flag — is set; 0 otherwise, and the JSONL sink omits the field when
	// 0, so default telemetry streams carry no wall-clock-dependent bytes),
	// F0 the last training loss and F1 the threshold the labels were cut
	// at.
	KindWindowRetrain
	// KindMetaCacheHit records a metadata retrieval served by the RAM
	// meta-page cache. A is the meta-page PPN.
	KindMetaCacheHit
	// KindMetaCacheMiss records a metadata retrieval that required a flash
	// meta-page read. A is the meta-page PPN.
	KindMetaCacheMiss
	// KindMetaCacheEvict records an LRU eviction from the meta-page cache.
	// A is the evicted meta-page PPN.
	KindMetaCacheEvict
	// KindWriteStall records a host write blocked on reclamation or die
	// contention. A is the free-superblock count (FTL hard-floor stalls) or
	// the busy-die count (timing-model stalls), B is 0 for FTL hard-floor
	// stalls and 1 for timing-model die-contention stalls, and C is the
	// stall duration in simulated nanoseconds (timing-model stalls only).
	KindWriteStall
	// KindErase records one block erase with its physical coordinates from
	// the internal/nand geometry: SB is the superblock (== in-die block
	// index), A the die, B the block-in-die (equal to SB under superblock
	// addressing) and C the block's cumulative erase count after this
	// erase. One superblock collection emits Geometry.Dies of these.
	KindErase

	numKinds = int(KindErase) + 1
)

// NumKinds is the number of distinct Kind slots, including the catch-all
// index 0 used for unknown kinds. Consumers that keep per-kind state (the
// metrics registry, ring policies) size their arrays with it.
const NumKinds = numKinds

// KindByName maps a snake_case kind name (the String form used in JSONL and
// the HTTP events endpoint) back to its Kind. Returns false for unknown
// names.
func KindByName(name string) (Kind, bool) {
	for k := Kind(1); int(k) < numKinds; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// String returns the snake_case name used in JSONL output.
func (k Kind) String() string {
	switch k {
	case KindGCStart:
		return "gc_start"
	case KindGCEnd:
		return "gc_end"
	case KindSBOpen:
		return "sb_open"
	case KindSBClose:
		return "sb_close"
	case KindThresholdUpdate:
		return "threshold_update"
	case KindWindowRetrain:
		return "window_retrain"
	case KindMetaCacheHit:
		return "meta_cache_hit"
	case KindMetaCacheMiss:
		return "meta_cache_miss"
	case KindMetaCacheEvict:
		return "meta_cache_evict"
	case KindWriteStall:
		return "write_stall"
	case KindErase:
		return "erase"
	default:
		return "unknown"
	}
}

// Event is one structured trace event. It is a flat value type — no
// per-event allocation, no interface boxing — with a small set of generic
// payload fields whose meaning is fixed per Kind (see the Kind constants).
type Event struct {
	Kind  Kind
	Clock uint64 // FTL virtual clock: user pages written so far

	SB      int32 // superblock / victim ID, -1 when not applicable
	Stream  int16 // placement stream, -1 when not applicable
	GCClass int16 // GC class, -1 when not applicable

	A, B, C    int64   // kind-specific integers
	F0, F1, F2 float64 // kind-specific floats
}
