package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Recorder consumes trace events. Implementations must tolerate events from
// multiple goroutines (the timing model fans requests out).
type Recorder interface {
	Record(ev Event)
}

// NopRecorder discards every event. It exists for call sites that want an
// always-non-nil Recorder; the instrumented packages instead keep a nil
// Recorder and skip the call entirely, which is cheaper still.
type NopRecorder struct{}

// Record implements Recorder. It does nothing and never allocates.
func (NopRecorder) Record(Event) {}

// teeRecorder fans one event out to two recorders.
type teeRecorder struct{ a, b Recorder }

// Record implements Recorder.
func (t teeRecorder) Record(ev Event) {
	t.a.Record(ev)
	t.b.Record(ev)
}

// Tee returns a Recorder that forwards every event to both recorders, in
// order. A nil argument collapses to the other recorder (nil both returns
// nil), so wiring layers can tee optional consumers without branching at
// every emit site.
func Tee(a, b Recorder) Recorder {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return teeRecorder{a, b}
}

// KindPolicy sizes the retention of one event kind.
type KindPolicy struct {
	// Cap bounds the retained events of the kind: the newest Cap events
	// (rounded up to a power of two) are kept, older ones are overwritten
	// and counted as dropped. Cap <= 0 makes the kind lossless: its buffer
	// grows without bound and nothing is ever overwritten.
	Cap int
	// SampleEvery thins the kind before storage: only every SampleEvery-th
	// event of the kind is retained (the first, then every Nth). Per-kind
	// totals stay exact — sampling loses payloads, not counts — and the
	// rate is queryable (SampleEveryOf) so consumers can rescale.
	// Values <= 1 retain every event.
	SampleEvery uint64
}

// RingPolicy assigns a KindPolicy to every event kind, indexed by Kind.
// Index 0 is the catch-all for unknown kinds.
type RingPolicy [numKinds]KindPolicy

// Default per-kind sizing. Hot kinds are the ones emitted per metadata
// retrieval — millions per replay — where a one-size ring used to evict
// every rare event long before the run ended; they get a bounded ring plus
// sampling. Rare kinds (superblock lifecycle, GC, erase, threshold,
// retrain, stall) arrive at per-GC-pass rates and are kept lossless.
const (
	// DefaultHotRingCapacity bounds each hot kind's ring.
	DefaultHotRingCapacity = 1 << 14
	// DefaultHotSampleEvery is the default thinning rate of hot kinds: one
	// in every 16 meta-cache events is retained (counters stay exact).
	DefaultHotSampleEvery = 16
)

// hotKinds are the event kinds emitted on the metadata-cache fast path.
var hotKinds = [...]Kind{KindMetaCacheHit, KindMetaCacheMiss, KindMetaCacheEvict}

// DefaultRingPolicy returns the default sizing: lossless rare kinds,
// bounded+sampled hot kinds, and a bounded catch-all for unknown kinds.
func DefaultRingPolicy() RingPolicy {
	var p RingPolicy
	for k := range p {
		p[k] = KindPolicy{Cap: 0, SampleEvery: 1} // rare: lossless, unsampled
	}
	p[0] = KindPolicy{Cap: DefaultRingCapacity, SampleEvery: 1}
	for _, k := range hotKinds {
		p[k] = KindPolicy{Cap: DefaultHotRingCapacity, SampleEvery: DefaultHotSampleEvery}
	}
	return p
}

// UniformRingPolicy bounds every kind (including the rare ones) at cap
// events, keeping the default sampling rates. It backs the deprecated
// -ring-cap flag, whose one-size semantics predate per-kind rings.
func UniformRingPolicy(cap int) RingPolicy {
	p := DefaultRingPolicy()
	for k := range p {
		p[k].Cap = cap
	}
	return p
}

// slot is one retained event plus its global record sequence number, which
// lets Events() re-merge the per-kind rings into record order.
type slot struct {
	seq uint64
	ev  Event
}

// kindRing retains one kind under its policy. Bounded rings allocate lazily
// (append until Cap, then wrap); lossless rings grow forever.
type kindRing struct {
	pol        KindPolicy
	cap        int // Cap rounded up to a power of two; 0 = lossless
	mask       uint64
	buf        []slot
	stored     uint64 // events stored into buf (including overwritten ones)
	sampledOut uint64 // events skipped by sampling (still counted)
}

func (r *kindRing) init(pol KindPolicy) {
	r.pol = pol
	if pol.Cap > 0 {
		n := 1
		for n < pol.Cap {
			n <<= 1
		}
		r.cap = n
		r.mask = uint64(n - 1)
	}
}

func (r *kindRing) store(seq uint64, ev Event, seen uint64) {
	if r.pol.SampleEvery > 1 && (seen-1)%r.pol.SampleEvery != 0 {
		r.sampledOut++
		return
	}
	s := slot{seq: seq, ev: ev}
	if r.cap == 0 || len(r.buf) < r.cap {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.stored&r.mask] = s
	}
	r.stored++
}

func (r *kindRing) dropped() uint64 {
	if r.cap > 0 && r.stored > uint64(len(r.buf)) {
		return r.stored - uint64(len(r.buf))
	}
	return 0
}

func (r *kindRing) reset() {
	r.buf = r.buf[:0]
	r.stored = 0
	r.sampledOut = 0
}

// TraceRecorder is a bounded in-memory event store with one ring per event
// kind: rare kinds (GC, erase, superblock lifecycle, threshold, retrain,
// stall) are retained losslessly, hot kinds (meta-cache traffic) are
// sampled into bounded rings, and per-kind totals are always exact. Slot
// writes are guarded by a mutex — at simulator event rates an uncontended
// mutex is faster than a correct lock-free slot protocol and keeps the
// race detector meaningful for callers.
type TraceRecorder struct {
	mu     sync.Mutex
	rings  [numKinds]kindRing
	next   atomic.Uint64
	counts [numKinds]atomic.Uint64
}

// DefaultRingCapacity is the bounded-ring capacity the deprecated one-size
// constructor path (NewTraceRecorder with capacity > 0 unset) used for
// every kind; it survives as the catch-all ring's default size.
const DefaultRingCapacity = 1 << 16

// NewTraceRecorder creates a recorder. capacity <= 0 selects
// DefaultRingPolicy (lossless rare kinds, sampled hot kinds); capacity > 0
// is the deprecated one-size path and bounds every kind's ring at capacity
// events (rounded up to a power of two), keeping default sampling.
func NewTraceRecorder(capacity int) *TraceRecorder {
	if capacity <= 0 {
		return NewTraceRecorderWithPolicy(DefaultRingPolicy())
	}
	return NewTraceRecorderWithPolicy(UniformRingPolicy(capacity))
}

// NewTraceRecorderWithPolicy creates a recorder with explicit per-kind
// sizing.
func NewTraceRecorderWithPolicy(pol RingPolicy) *TraceRecorder {
	r := &TraceRecorder{}
	for k := range r.rings {
		r.rings[k].init(pol[k])
	}
	return r
}

// Capacity returns the total bounded-ring capacity in events, excluding
// lossless kinds (which have no bound).
func (r *TraceRecorder) Capacity() int {
	total := 0
	for k := range r.rings {
		total += r.rings[k].cap
	}
	return total
}

// SampleEveryOf returns the retention sampling rate of a kind: 1 means
// every event of the kind is retained, N > 1 means one in N (counters are
// exact either way).
func (r *TraceRecorder) SampleEveryOf(k Kind) uint64 {
	if int(k) >= numKinds {
		k = 0
	}
	if s := r.rings[k].pol.SampleEvery; s > 1 {
		return s
	}
	return 1
}

// Record implements Recorder. The per-kind count is bumped under the same
// lock as the slot reservation: bumping it outside would let a concurrent
// Reset land between the two and leave counts/Total disagreeing about how
// many events this recorder has seen.
func (r *TraceRecorder) Record(ev Event) {
	k := int(ev.Kind)
	if k >= numKinds {
		k = 0 // catch-all ring for unknown kinds
	}
	r.mu.Lock()
	seen := r.counts[k].Add(1)
	seq := r.next.Add(1) - 1
	r.rings[k].store(seq, ev, seen)
	r.mu.Unlock()
}

// Total returns the number of events ever recorded (including sampled-out
// and overwritten ones). Safe to call concurrently with Record.
func (r *TraceRecorder) Total() uint64 { return r.next.Load() }

// Dropped returns how many stored events have been overwritten by ring
// wraparound across all bounded kinds. Events thinned by sampling are a
// deliberate policy, not a loss, and are reported by SampledOut instead.
func (r *TraceRecorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total uint64
	for k := range r.rings {
		total += r.rings[k].dropped()
	}
	return total
}

// SampledOut returns how many events were skipped by per-kind sampling
// (their kind counters still include them).
func (r *TraceRecorder) SampledOut() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total uint64
	for k := range r.rings {
		total += r.rings[k].sampledOut
	}
	return total
}

// CountByKind returns the total number of events of the given kind ever
// recorded, including sampled-out events and ones a ring has since
// overwritten.
func (r *TraceRecorder) CountByKind(k Kind) uint64 {
	if int(k) >= numKinds {
		return 0
	}
	return r.counts[k].Load()
}

// Events returns the retained events of every kind merged back into record
// order (oldest first).
func (r *TraceRecorder) Events() []Event {
	r.mu.Lock()
	var slots []slot
	for k := range r.rings {
		slots = append(slots, r.rings[k].buf...)
	}
	r.mu.Unlock()
	sort.Slice(slots, func(i, j int) bool { return slots[i].seq < slots[j].seq })
	out := make([]Event, len(slots))
	for i, s := range slots {
		out[i] = s.ev
	}
	return out
}

// Reset discards all retained events and totals. Ring policies survive.
func (r *TraceRecorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next.Store(0)
	for i := range r.counts {
		r.counts[i].Store(0)
	}
	for k := range r.rings {
		r.rings[k].reset()
	}
}
