package obs

import (
	"sync"
	"sync/atomic"
)

// Recorder consumes trace events. Implementations must tolerate events from
// multiple goroutines (the timing model fans requests out).
type Recorder interface {
	Record(ev Event)
}

// NopRecorder discards every event. It exists for call sites that want an
// always-non-nil Recorder; the instrumented packages instead keep a nil
// Recorder and skip the call entirely, which is cheaper still.
type NopRecorder struct{}

// Record implements Recorder. It does nothing and never allocates.
func (NopRecorder) Record(Event) {}

// TraceRecorder is a bounded in-memory event ring: the last capacity events
// are retained, older ones are overwritten, and per-kind totals survive
// overwrites. Slot indices are reserved with an atomic counter so ordering
// is cheap; the slot write itself is guarded by a mutex — at simulator event
// rates an uncontended mutex is faster than a correct lock-free slot
// protocol and keeps the race detector meaningful for callers.
type TraceRecorder struct {
	mu     sync.Mutex
	buf    []Event
	mask   uint64
	next   atomic.Uint64
	counts [numKinds]atomic.Uint64
}

// DefaultRingCapacity is the event capacity used when callers pass a
// non-positive capacity to NewTraceRecorder.
const DefaultRingCapacity = 1 << 16

// NewTraceRecorder creates a recorder retaining the last capacity events,
// rounded up to a power of two. capacity <= 0 selects DefaultRingCapacity.
func NewTraceRecorder(capacity int) *TraceRecorder {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &TraceRecorder{
		buf:  make([]Event, n),
		mask: uint64(n - 1),
	}
}

// Capacity returns the ring capacity in events.
func (r *TraceRecorder) Capacity() int { return len(r.buf) }

// Record implements Recorder. The per-kind count is bumped under the same
// lock as the slot reservation: bumping it outside would let a concurrent
// Reset land between the two and leave counts/Total disagreeing about how
// many events this recorder has seen.
func (r *TraceRecorder) Record(ev Event) {
	r.mu.Lock()
	if int(ev.Kind) < numKinds {
		r.counts[ev.Kind].Add(1)
	}
	i := r.next.Add(1) - 1
	r.buf[i&r.mask] = ev
	r.mu.Unlock()
}

// Total returns the number of events ever recorded (including overwritten
// ones). Safe to call concurrently with Record.
func (r *TraceRecorder) Total() uint64 { return r.next.Load() }

// Dropped returns how many events have been overwritten by ring wraparound.
func (r *TraceRecorder) Dropped() uint64 {
	if t := r.Total(); t > uint64(len(r.buf)) {
		return t - uint64(len(r.buf))
	}
	return 0
}

// CountByKind returns the total number of events of the given kind ever
// recorded, including ones the ring has since overwritten.
func (r *TraceRecorder) CountByKind(k Kind) uint64 {
	if int(k) >= numKinds {
		return 0
	}
	return r.counts[k].Load()
}

// Events returns the retained events in record order (oldest first).
func (r *TraceRecorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := r.next.Load()
	if total <= uint64(len(r.buf)) {
		out := make([]Event, total)
		copy(out, r.buf[:total])
		return out
	}
	out := make([]Event, len(r.buf))
	start := total & r.mask
	n := copy(out, r.buf[start:])
	copy(out[n:], r.buf[:start])
	return out
}

// Reset discards all retained events and totals.
func (r *TraceRecorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next.Store(0)
	for i := range r.counts {
		r.counts[i].Store(0)
	}
	for i := range r.buf {
		r.buf[i] = Event{}
	}
}
