package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// ProfileFlags bundles the standard Go runtime-profiling outputs so every
// cmd/ harness exposes them uniformly. The execution-trace flag is named
// -exectrace (not the conventional -trace) because phftlsim already uses
// -trace for workload selection.
type ProfileFlags struct {
	CPUProfile string
	MemProfile string
	ExecTrace  string
}

// Register installs the -cpuprofile, -memprofile and -exectrace flags on fs.
func (p *ProfileFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&p.ExecTrace, "exectrace", "", "write a runtime execution trace to this file")
}

// Start begins the requested profiles and returns a stop function that ends
// them and writes the heap profile. The stop function is safe to call once;
// callers should defer it immediately.
func (p *ProfileFlags) Start() (stop func() error, err error) {
	var cpuF, traceF *os.File
	if p.CPUProfile != "" {
		cpuF, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
	}
	if p.ExecTrace != "" {
		traceF, err = os.Create(p.ExecTrace)
		if err != nil {
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
			}
			return nil, fmt.Errorf("obs: exectrace: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
			}
			return nil, fmt.Errorf("obs: exectrace: %w", err)
		}
	}
	memPath := p.MemProfile
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
		}
		if traceF != nil {
			trace.Stop()
			if err := traceF.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // flush recently-freed objects out of the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("obs: memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
