package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestTraceRecorderBasics(t *testing.T) {
	r := NewTraceRecorder(8)
	// The deprecated one-size capacity bounds every per-kind ring, so the
	// total bounded capacity is cap × kinds.
	if r.Capacity() != 8*numKinds {
		t.Fatalf("Capacity = %d, want %d", r.Capacity(), 8*numKinds)
	}
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: KindSBOpen, Clock: uint64(i), SB: int32(i)})
	}
	if r.Total() != 5 || r.Dropped() != 0 {
		t.Fatalf("Total = %d, Dropped = %d", r.Total(), r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("Events len = %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Clock != uint64(i) || ev.SB != int32(i) {
			t.Errorf("event %d = %+v, want clock/sb %d", i, ev, i)
		}
	}
	if got := r.CountByKind(KindSBOpen); got != 5 {
		t.Errorf("CountByKind(SBOpen) = %d", got)
	}
	if got := r.CountByKind(KindGCEnd); got != 0 {
		t.Errorf("CountByKind(GCEnd) = %d", got)
	}
}

func TestTraceRecorderWraparound(t *testing.T) {
	r := NewTraceRecorder(4)
	const n = 11
	for i := 0; i < n; i++ {
		r.Record(Event{Kind: KindGCEnd, Clock: uint64(i)})
	}
	if r.Total() != n {
		t.Fatalf("Total = %d", r.Total())
	}
	if r.Dropped() != n-4 {
		t.Fatalf("Dropped = %d, want %d", r.Dropped(), n-4)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want ring capacity 4", len(evs))
	}
	// The retained window is the last 4 events, oldest first.
	for i, ev := range evs {
		want := uint64(n - 4 + i)
		if ev.Clock != want {
			t.Errorf("retained[%d].Clock = %d, want %d", i, ev.Clock, want)
		}
	}
	// Per-kind totals survive the overwrites.
	if got := r.CountByKind(KindGCEnd); got != n {
		t.Errorf("CountByKind = %d, want %d", got, n)
	}
	r.Reset()
	if r.Total() != 0 || len(r.Events()) != 0 || r.CountByKind(KindGCEnd) != 0 {
		t.Error("Reset did not clear the recorder")
	}
}

func TestTraceRecorderConcurrent(t *testing.T) {
	// The timing model fans requests across goroutines; recording must be
	// safe under the race detector with a ring smaller than the event
	// count (forcing slot reuse).
	r := NewTraceRecorder(64)
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Record(Event{Kind: KindMetaCacheHit, Clock: uint64(g*perG + i)})
				_ = r.Total() // concurrent reader of the counters
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != goroutines*perG {
		t.Fatalf("Total = %d, want %d", r.Total(), goroutines*perG)
	}
	if got := r.CountByKind(KindMetaCacheHit); got != goroutines*perG {
		t.Fatalf("CountByKind = %d, want %d", got, goroutines*perG)
	}
	if len(r.Events()) != 64 {
		t.Fatalf("Events len = %d, want full ring", len(r.Events()))
	}
}

// A Reset racing Record must never leave the per-kind counts and Total
// disagreeing about how many events the recorder has seen: both are updated
// under the recorder lock. (The count bump used to happen before taking the
// lock, so a Reset landing in between counted an event that then reached the
// ring — Total > counts — or vice versa.)
func TestTraceRecorderResetRaceConsistency(t *testing.T) {
	r := NewTraceRecorder(32)
	const writers, perW = 4, 5000
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				r.Record(Event{Kind: KindGCEnd, Clock: uint64(i)})
			}
		}()
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Reset()
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	total, byKind := r.Total(), r.CountByKind(KindGCEnd)
	if total != byKind {
		t.Fatalf("Total = %d but CountByKind = %d after concurrent Reset", total, byKind)
	}
	// Only one kind was recorded, so retention is bounded by that kind's
	// ring (the uniform cap of 32), not the recorder-wide Capacity().
	want := total
	if want > 32 {
		want = 32
	}
	if got := uint64(len(r.Events())); got != want {
		t.Fatalf("Events len = %d, want %d (total %d)", got, want, total)
	}
}

func TestNoOpRecorderZeroAlloc(t *testing.T) {
	var r Recorder = NopRecorder{}
	ev := Event{Kind: KindGCStart, Clock: 42, SB: 7, A: 100, F0: 0.5}
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Record(ev)
	}); allocs != 0 {
		t.Errorf("NopRecorder.Record allocates %v times per call", allocs)
	}
}

func TestTraceRecorderRecordZeroAlloc(t *testing.T) {
	// Bounded rings fill lazily via append; once a ring has wrapped, the
	// steady-state Record path must not allocate. Hot kinds (bounded by
	// default policy) are the ones on the replay fast path.
	r := NewTraceRecorder(1024)
	ev := Event{Kind: KindMetaCacheHit, Clock: 1, SB: 2, Stream: 3, A: 4}
	for i := 0; i < 64*1024; i++ { // fill past cap × sampling rate
		r.Record(ev)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Record(ev)
	}); allocs != 0 {
		t.Errorf("TraceRecorder.Record allocates %v times per call", allocs)
	}
}

// goldenJSONL is the exact JSONL stream for the events and samples in
// TestWriteJSONLGolden: one line per event/sample, merge-ordered by clock,
// with kind-specific field names in fixed order.
const goldenJSONL = `{"ev":"gc_start","run":"r1","clock":10,"sb":3,"stream":1,"gc_class":0,"valid":25,"free_sb":9,"valid_ratio":0.25}
{"ev":"gc_end","run":"r1","clock":10,"sb":3,"stream":1,"gc_class":0,"migrated":25,"free_sb":10,"valid_ratio":0.25}
{"ev":"erase","run":"r1","clock":10,"die":2,"block":3,"erase_count":7}
{"ev":"sample","run":"r1","clock":64,"interval_wa":0.125,"cum_wa":0.125,"free_sb":10,"threshold":500,"cache_hit":0.875,"queue_depth":0,"lat_p50_ms":0.25,"lat_p99_ms":1.5,"wear_skew":1.25,"wear_cov":0.125,"open_fill":[0.5,0]}
{"ev":"threshold_update","run":"r1","clock":100,"old":500,"new":620,"probe_accuracy":0.75,"direction":1,"step":5,"inflection_seed":0}
{"ev":"window_retrain","run":"r1","clock":100,"examples":256,"deployed":1,"duration_ns":1500000,"loss":0.0625,"threshold":620}
{"ev":"meta_cache_miss","run":"r1","clock":120,"mppn":4096}
{"ev":"write_stall","run":"r1","clock":130,"depth":3,"source":0,"wait_ns":0}
`

func TestWriteJSONLGolden(t *testing.T) {
	events := []Event{
		{Kind: KindGCStart, Clock: 10, SB: 3, Stream: 1, GCClass: 0, A: 25, B: 9, F0: 0.25},
		{Kind: KindGCEnd, Clock: 10, SB: 3, Stream: 1, GCClass: 0, A: 25, B: 10, F0: 0.25},
		{Kind: KindErase, Clock: 10, SB: 3, A: 2, B: 3, C: 7},
		{Kind: KindThresholdUpdate, Clock: 100, SB: -1, Stream: -1, GCClass: -1, A: 1, B: 5, C: 0, F0: 500, F1: 620, F2: 0.75},
		{Kind: KindWindowRetrain, Clock: 100, SB: -1, Stream: -1, GCClass: -1, A: 256, B: 1, C: 1500000, F0: 0.0625, F1: 620},
		{Kind: KindMetaCacheMiss, Clock: 120, SB: -1, Stream: -1, GCClass: -1, A: 4096},
		{Kind: KindWriteStall, Clock: 130, SB: -1, Stream: -1, GCClass: -1, A: 3, B: 0},
	}
	samples := []Sample{
		{Clock: 64, IntervalWA: 0.125, CumWA: 0.125, FreeSB: 10, Threshold: 500, CacheHitRatio: 0.875,
			LatencyP50MS: 0.25, LatencyP99MS: 1.5, WearSkew: 1.25, WearCoV: 0.125, OpenFill: []float64{0.5, 0}},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, "r1", events, samples); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenJSONL {
		t.Errorf("JSONL mismatch:\ngot:\n%s\nwant:\n%s", got, goldenJSONL)
	}
	// Every line must also be valid JSON.
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Errorf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if _, ok := m["ev"]; !ok {
			t.Errorf("line %d missing ev field", i)
		}
	}
}

func TestWriteSamplesCSV(t *testing.T) {
	samples := []Sample{
		{Clock: 128, IntervalWA: 0.25, CumWA: 0.2, FreeSB: 12, Threshold: 800, CacheHitRatio: 0.99, QueueDepth: 2,
			LatencyP50MS: 0.5, LatencyP99MS: 2.125, WearSkew: 1.25, WearCoV: 0.125, OpenFill: []float64{1, 0.5, 0}},
	}
	var buf bytes.Buffer
	if err := WriteSamplesCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1 row", len(lines))
	}
	// wear_skew and wear_cov sit strictly at the end of the row: every
	// pre-existing column keeps its historical position so golden baselines
	// written before their introduction still align.
	if lines[0] != "clock,interval_wa,cum_wa,free_sb,threshold,cache_hit,queue_depth,lat_p50_ms,lat_p99_ms,open_fill_mean,wear_skew,wear_cov" {
		t.Errorf("header = %q", lines[0])
	}
	// threshold carries 6 decimals: hill-climbing steps below 0.001 must
	// survive the round-trip into the golden-curve differ.
	if lines[1] != "128,0.250000,0.200000,12,800.000000,0.990000,2.00,0.500,2.125,0.5000,1.2500,0.1250" {
		t.Errorf("row = %q", lines[1])
	}
}

// A NaN CacheHitRatio marks schemes without a metadata cache, and NaN
// latency percentiles mark functional (untimed) replays: the JSONL sink
// must omit the fields (JSON cannot represent NaN, and 0 would read as a
// real measurement) and the CSV sink must leave the cells empty.
func TestSinksOmitNaNGauges(t *testing.T) {
	s := Sample{Clock: 64, IntervalWA: 0.5, CumWA: 0.5, FreeSB: 8,
		CacheHitRatio: math.NaN(), LatencyP50MS: math.NaN(), LatencyP99MS: math.NaN(),
		WearSkew: math.NaN(), WearCoV: math.NaN(),
		OpenFill: []float64{0.25}}
	line := string(AppendSampleJSON(nil, s, "r1"))
	for _, field := range []string{"cache_hit", "lat_p50_ms", "lat_p99_ms", "wear_skew", "wear_cov"} {
		if strings.Contains(line, field) {
			t.Errorf("JSONL line carries %s for NaN gauge: %s", field, line)
		}
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, line)
	}

	var buf bytes.Buffer
	if err := WriteSamplesCSV(&buf, []Sample{s}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if want := "64,0.500000,0.500000,8,0.000000,,0.00,,,0.2500,,"; lines[1] != want {
		t.Errorf("CSV row = %q, want %q", lines[1], want)
	}
}

func TestSamplerCadence(t *testing.T) {
	var clocks []uint64
	s := NewSampler(100, func(clock uint64) Sample { return Sample{Clock: clock} })
	for c := uint64(1); c <= 550; c++ {
		s.Tick(c)
	}
	for _, sm := range s.Series() {
		clocks = append(clocks, sm.Clock)
	}
	want := []uint64{100, 200, 300, 400, 500}
	if len(clocks) != len(want) {
		t.Fatalf("clocks = %v, want %v", clocks, want)
	}
	for i := range want {
		if clocks[i] != want[i] {
			t.Fatalf("clocks = %v, want %v", clocks, want)
		}
	}
	// A clock jump produces a single sample, not a backlog.
	s.Tick(1000)
	if n := len(s.Series()); n != 6 {
		t.Fatalf("after jump: %d samples, want 6", n)
	}
	// Final always records the end state, but not twice at one clock.
	s.Final(1000)
	if n := len(s.Series()); n != 6 {
		t.Fatalf("Final duplicated the last sample: %d", n)
	}
	s.Final(1042)
	if n := len(s.Series()); n != 7 || s.Series()[6].Clock != 1042 {
		t.Fatalf("Final did not record the end state: %+v", s.Series())
	}
}

func TestBuildReport(t *testing.T) {
	r := NewTraceRecorder(128)
	r.Record(Event{Kind: KindGCStart, Clock: 5, SB: 1, Stream: 0, A: 10, F0: 0.1})
	r.Record(Event{Kind: KindGCEnd, Clock: 5, SB: 1, Stream: 0, A: 10, F0: 0.1})
	r.Record(Event{Kind: KindGCEnd, Clock: 9, SB: 2, Stream: 1, A: 30, F0: 0.3})
	r.Record(Event{Kind: KindThresholdUpdate, Clock: 10, F0: 0, F1: 700, C: 1})
	r.Record(Event{Kind: KindThresholdUpdate, Clock: 20, F0: 700, F1: 650, A: -1, B: 4})
	r.Record(Event{Kind: KindWindowRetrain, Clock: 20, A: 100, B: 1, F0: 0.5})
	r.Record(Event{Kind: KindMetaCacheHit})
	r.Record(Event{Kind: KindMetaCacheHit})
	r.Record(Event{Kind: KindMetaCacheMiss})
	r.Record(Event{Kind: KindWriteStall, A: 4})
	samples := []Sample{
		{Clock: 10, IntervalWA: 0.5, CumWA: 0.5},
		{Clock: 20, IntervalWA: 0.1, CumWA: 0.3},
	}
	rep := BuildReport(r, samples)
	if rep.GCCount != 2 || rep.GCMigrated != 40 {
		t.Errorf("GC: %+v", rep)
	}
	if rep.GCByStream[0] != 1 || rep.GCByStream[1] != 1 {
		t.Errorf("GCByStream = %v", rep.GCByStream)
	}
	if rep.ThresholdUpdates != 2 || rep.ThresholdFirst != 700 || rep.ThresholdFinal != 650 {
		t.Errorf("threshold: %+v", rep)
	}
	if rep.CacheHits != 2 || rep.CacheMisses != 1 || rep.WriteStalls != 1 {
		t.Errorf("counters: %+v", rep)
	}
	if rep.Retrains != 1 || rep.Deploys != 1 {
		t.Errorf("retrains: %+v", rep)
	}
	if rep.FinalCumWA != 0.3 || rep.PeakIntWA != 0.5 {
		t.Errorf("WA: %+v", rep)
	}
	out := rep.String()
	for _, want := range []string{"gc collections       2", "threshold", "meta cache", "write stalls         1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report text missing %q:\n%s", want, out)
		}
	}
}

// Rare kinds are lossless under the default policy: a burst far larger than
// any bounded ring is retained in full, with nothing dropped or thinned.
func TestDefaultPolicyRareKindsLossless(t *testing.T) {
	r := NewTraceRecorder(0)
	const n = DefaultRingCapacity + 1000 // beyond the old one-size bound
	for i := 0; i < n; i++ {
		r.Record(Event{Kind: KindGCEnd, Clock: uint64(i)})
	}
	if got := len(r.Events()); got != n {
		t.Fatalf("retained %d of %d lossless events", got, n)
	}
	if r.Dropped() != 0 || r.SampledOut() != 0 {
		t.Fatalf("Dropped = %d, SampledOut = %d, want 0/0", r.Dropped(), r.SampledOut())
	}
	if got := r.SampleEveryOf(KindGCEnd); got != 1 {
		t.Fatalf("SampleEveryOf(GCEnd) = %d, want 1", got)
	}
}

// Hot kinds are sampled 1-in-N under the default policy: retention thins,
// per-kind counters stay exact, and the thinned events are reported as
// sampled-out, not dropped.
func TestDefaultPolicyHotKindsSampled(t *testing.T) {
	r := NewTraceRecorder(0)
	const n = 1600
	for i := 0; i < n; i++ {
		r.Record(Event{Kind: KindMetaCacheHit, Clock: uint64(i)})
	}
	if got := r.CountByKind(KindMetaCacheHit); got != n {
		t.Fatalf("CountByKind = %d, want exact %d despite sampling", got, n)
	}
	every := r.SampleEveryOf(KindMetaCacheHit)
	if every != DefaultHotSampleEvery {
		t.Fatalf("SampleEveryOf = %d, want %d", every, DefaultHotSampleEvery)
	}
	wantRetained := (n + int(every) - 1) / int(every) // first, then every Nth
	if got := len(r.Events()); got != wantRetained {
		t.Fatalf("retained %d events, want %d (1/%d of %d)", got, wantRetained, every, n)
	}
	if got := r.SampledOut(); got != uint64(n-wantRetained) {
		t.Fatalf("SampledOut = %d, want %d", got, n-wantRetained)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0 (sampling is not loss)", r.Dropped())
	}
	// Retention keeps the first event, then every Nth.
	evs := r.Events()
	for i, ev := range evs {
		if want := uint64(i) * every; ev.Clock != want {
			t.Fatalf("retained[%d].Clock = %d, want %d", i, ev.Clock, want)
		}
	}
}

// Events from different kinds — landing in different rings — merge back into
// exact record order.
func TestEventsMergeRecordOrder(t *testing.T) {
	r := NewTraceRecorder(0)
	kinds := []Kind{KindGCStart, KindSBOpen, KindErase, KindSBClose, KindGCEnd, KindThresholdUpdate}
	const n = 200
	for i := 0; i < n; i++ {
		r.Record(Event{Kind: kinds[i%len(kinds)], Clock: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != n {
		t.Fatalf("retained %d of %d", len(evs), n)
	}
	for i, ev := range evs {
		if ev.Clock != uint64(i) || ev.Kind != kinds[i%len(kinds)] {
			t.Fatalf("event %d out of record order: %+v", i, ev)
		}
	}
}

// The report surfaces the new wear/sampling facts: the erase counter, the
// hot-kind sampling rate and the thinned-event count.
func TestReportErasesAndSampling(t *testing.T) {
	r := NewTraceRecorder(0)
	for i := 0; i < 4; i++ {
		r.Record(Event{Kind: KindErase, Clock: uint64(i), A: int64(i % 2), B: 1, C: 1})
	}
	for i := 0; i < 64; i++ {
		r.Record(Event{Kind: KindMetaCacheHit, Clock: uint64(i)})
	}
	rep := BuildReport(r, nil)
	if rep.Erases != 4 {
		t.Fatalf("Erases = %d, want 4", rep.Erases)
	}
	if rep.CacheSampleEvery != DefaultHotSampleEvery {
		t.Fatalf("CacheSampleEvery = %d, want %d", rep.CacheSampleEvery, DefaultHotSampleEvery)
	}
	if rep.EventsSampledOut == 0 {
		t.Fatal("EventsSampledOut = 0, want > 0")
	}
	out := rep.String()
	for _, want := range []string{"block erases         4", "thinned by per-kind sampling", "events sampled 1/16"} {
		if !strings.Contains(out, want) {
			t.Errorf("report text missing %q:\n%s", want, out)
		}
	}
}
