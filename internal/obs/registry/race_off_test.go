//go:build !race

package registry

const raceEnabled = false
