package registry

import (
	"math"
	"strings"
	"testing"
)

// TestCounterSetTotal pins the monotone-publish contract: SetTotal never
// winds a counter backwards, so a lagging sampler cannot make a served
// counter non-monotonic.
func TestCounterSetTotal(t *testing.T) {
	var c Counter
	c.SetTotal(100)
	c.SetTotal(40) // stale writer: dropped
	if got := c.Value(); got != 100 {
		t.Fatalf("Value = %d after stale SetTotal, want 100", got)
	}
	c.SetTotal(150)
	if got := c.Value(); got != 150 {
		t.Fatalf("Value = %d, want 150", got)
	}
	if got := c.Inc(); got != 151 {
		t.Fatalf("Inc = %d, want 151", got)
	}
}

// TestGaugeNaNDefault pins the no-observation convention: a fresh gauge
// holds NaN and is skipped by the exposition until its first Set.
func TestGaugeNaNDefault(t *testing.T) {
	r := New()
	g := r.Gauge("phftl_test_gauge", "A test gauge.")
	if !math.IsNaN(g.Value()) {
		t.Fatalf("fresh gauge = %v, want NaN", g.Value())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "phftl_test_gauge") {
		t.Fatalf("NaN gauge rendered:\n%s", b.String())
	}
	g.Set(1.5)
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "phftl_test_gauge 1.5\n") {
		t.Fatalf("set gauge missing:\n%s", b.String())
	}
}

// TestHandleIdentity pins the resolve-once contract: the same (name, labels)
// always returns the same handle, regardless of label order at the call
// site.
func TestHandleIdentity(t *testing.T) {
	r := New()
	a := r.Counter("phftl_test_total", "t", Label{"x", "1"}, Label{"y", "2"})
	b := r.Counter("phftl_test_total", "t", Label{"y", "2"}, Label{"x", "1"})
	if a != b {
		t.Fatal("label order split the series")
	}
	other := r.Counter("phftl_test_total", "t", Label{"x", "other"}, Label{"y", "2"})
	if a == other {
		t.Fatal("distinct label values share a handle")
	}
}

// TestRegistrationPanics pins the programmer-error guards: invalid names,
// counters without _total, and cross-type re-registration all panic rather
// than corrupt the exposition.
func TestRegistrationPanics(t *testing.T) {
	r := New()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("invalid name", func() { r.Counter("bad name_total", "t") })
	mustPanic("counter without _total", func() { r.Counter("phftl_bad", "t") })
	mustPanic("type re-registration", func() {
		r.Gauge("phftl_g", "t")
		r.Histogram("phftl_g", "t", 4, 1)
	})
	mustPanic("invalid label name", func() { r.Counter("phftl_l_total", "t", Label{"bad name", "v"}) })
}

// expoGolden is the exact exposition for a small hand-built registry:
// families sorted by name, children by label signature, NaN gauges skipped,
// histograms as cumulative le buckets + _sum + _count. New() pre-registers
// the two cross-cell histograms, which render only once fed.
const expoGolden = `# HELP phftl_demo_events_total Events by kind.
# TYPE phftl_demo_events_total counter
phftl_demo_events_total{kind="gc_end"} 2
phftl_demo_events_total{kind="gc_start"} 3
# HELP phftl_demo_lat Latency histogram.
# TYPE phftl_demo_lat histogram
phftl_demo_lat_bucket{le="0.5"} 1
phftl_demo_lat_bucket{le="1"} 2
phftl_demo_lat_bucket{le="+Inf"} 3
phftl_demo_lat_sum 3
phftl_demo_lat_count 3
# HELP phftl_demo_wa Interval WA.
# TYPE phftl_demo_wa gauge
phftl_demo_wa{cell="#52/PHFTL"} 0.25
`

// TestWritePrometheusGolden pins the exposition renderer byte-for-byte.
func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("phftl_demo_events_total", "Events by kind.", Label{"kind", "gc_start"}).Add(3)
	r.Counter("phftl_demo_events_total", "Events by kind.", Label{"kind", "gc_end"}).Add(2)
	r.Gauge("phftl_demo_wa", "Interval WA.", Label{"cell", "#52/PHFTL"}).Set(0.25)
	r.Gauge("phftl_demo_nan", "Stays NaN, never rendered.")
	h := r.Histogram("phftl_demo_lat", "Latency histogram.", 3, 0.5)
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2) // overflow: absorbed by the final (+Inf) bucket
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != expoGolden {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, expoGolden)
	}
}

// TestLabelEscaping pins exposition-format escaping of label values.
func TestLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("phftl_esc_total", "t", Label{"v", "a\"b\\c\nd"}).Add(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `phftl_esc_total{v="a\"b\\c\nd"} 1` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped label missing %q in:\n%s", want, b.String())
	}
}
