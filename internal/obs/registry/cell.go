package registry

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/phftl/phftl/internal/obs"
)

// State is a cell's lifecycle phase, published by internal/runner (or a
// single-cell harness) and served by the control-plane endpoints.
type State int32

// The lifecycle. Queued cells are registered but not yet picked up by a
// worker; Done/Failed/Cancelled are terminal. Cancelled marks a cell stopped
// by an explicit control-plane cancel (fleet service), never by a failure.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
	StateCancelled
)

// NumStates is the number of lifecycle states.
const NumStates = int(StateCancelled) + 1

// String returns the snake-free lowercase name used in labels and JSON.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is an end state (done, failed or
// cancelled).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// CellMeta is the immutable identity of a cell.
type CellMeta struct {
	// Trace and Scheme echo the runner.Cell identity.
	Trace, Scheme string
	// TargetOps is the expected user-page-write total of the cell's replay
	// (0 = unknown). It feeds ETA estimation and the cells endpoint.
	TargetOps uint64
}

// FTLTotals carries the FTL's cumulative write counters into
// Cell.PublishSample (the sampler closure reads them off ftl.Stats).
type FTLTotals struct {
	UserWrites, GCWrites, MetaWrites uint64
}

// Cell is one (trace, scheme) replay's live metric set. All handles are
// resolved at OpenCell time, so the per-event and per-sample producers run
// allocation-free on pure atomics (plus one uncontended mutex for the event
// ring and histograms). Cell implements obs.Recorder; internal/sim tees the
// instrumented packages' recorder into it.
type Cell struct {
	name string
	meta CellMeta
	reg  *Registry

	state   atomic.Int32
	startNS atomic.Int64 // unix ns of the queued→running transition
	doneNS  atomic.Int64 // unix ns of the terminal transition

	events [obs.NumKinds]*Counter

	ops, userWrites, gcWrites, metaWrites *Counter

	intervalWA, cumWA, threshold, cacheHit *Gauge
	wearSkew, wearCoV, freeSB, stateG      *Gauge

	// Per-scheme cross-cell WA distributions (shared handles: every cell of
	// one scheme observes into the same pair). schemeIntervalWA is fed per
	// sample, schemeFinalWA once per completed run (PublishFinalWA); together
	// they back the /api/v1/fleet percentiles.
	schemeIntervalWA, schemeFinalWA *Histogram
}

// ringHot marks the event kinds emitted per metadata retrieval — millions
// per replay. Their per-cell counters stay exact, but only one in
// ringSampleEvery is stored into the HTTP drain ring (mirroring the
// DefaultRingPolicy thinning in internal/obs).
var ringHot = func() [obs.NumKinds]bool {
	var h [obs.NumKinds]bool
	h[obs.KindMetaCacheHit] = true
	h[obs.KindMetaCacheMiss] = true
	h[obs.KindMetaCacheEvict] = true
	return h
}()

// ringSampleEvery is the drain-ring thinning rate of hot kinds.
const ringSampleEvery = 16

// OpenCell registers (or returns the existing) cell under name, in state
// queued. Idempotent: the first caller's meta wins, so the runner can
// pre-register the fleet and the harness can re-open for the handle.
func (r *Registry) OpenCell(name string, meta CellMeta) *Cell {
	r.mu.Lock()
	if c, ok := r.cells[name]; ok {
		r.mu.Unlock()
		return c
	}
	r.mu.Unlock() // metric registration below re-enters r.mu

	c := &Cell{name: name, meta: meta, reg: r}
	cl := Label{"cell", name}
	for k := range c.events {
		kind := "unknown"
		if k > 0 {
			kind = obs.Kind(k).String()
		}
		c.events[k] = r.Counter("phftl_cell_events_total",
			"Trace events recorded per cell and kind (exact, including ring-thinned events).",
			cl, Label{"kind", kind})
	}
	c.ops = r.Counter("phftl_cell_ops_total",
		"User page writes replayed into the cell (the FTL virtual clock).", cl)
	c.userWrites = r.Counter("phftl_cell_user_writes_total",
		"User page programs issued by the cell's FTL.", cl)
	c.gcWrites = r.Counter("phftl_cell_gc_writes_total",
		"GC page migrations issued by the cell's FTL.", cl)
	c.metaWrites = r.Counter("phftl_cell_meta_writes_total",
		"Metadata page programs issued by the cell's FTL (PHFTL only).", cl)
	c.intervalWA = r.Gauge("phftl_cell_interval_wa",
		"Write amplification over the last sampling interval.", cl)
	c.cumWA = r.Gauge("phftl_cell_cum_wa",
		"Cumulative write amplification since the start of the cell.", cl)
	c.threshold = r.Gauge("phftl_cell_threshold",
		"PHFTL classification threshold in page-writes (absent for baselines).", cl)
	c.cacheHit = r.Gauge("phftl_cell_cache_hit_ratio",
		"Cumulative metadata-cache hit ratio (absent for schemes without a metadata store).", cl)
	c.wearSkew = r.Gauge("phftl_cell_wear_skew",
		"Max/mean per-block erase-count ratio (1.0 = perfectly even).", cl)
	c.wearCoV = r.Gauge("phftl_cell_wear_cov",
		"Coefficient of variation of per-block erase counts.", cl)
	c.freeSB = r.Gauge("phftl_cell_free_superblocks",
		"Current free-superblock count.", cl)
	c.stateG = r.Gauge("phftl_cell_state",
		"Cell lifecycle state: 0 queued, 1 running, 2 done, 3 failed, 4 cancelled.", cl)
	c.stateG.Set(float64(StateQueued))
	sl := Label{"scheme", meta.Scheme}
	c.schemeIntervalWA = r.Histogram("phftl_scheme_interval_wa",
		"Per-sample interval write amplification across cells, by scheme.",
		60, 0.05, sl)
	c.schemeFinalWA = r.Histogram("phftl_scheme_final_wa",
		"End-of-run write amplification of completed cells, by scheme.",
		60, 0.05, sl)

	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.cells[name]; ok {
		return existing // lost a registration race; metrics are shared anyway
	}
	r.cells[name] = c
	r.order = append(r.order, c)
	return c
}

// Cell returns the cell registered under name, or nil.
func (r *Registry) Cell(name string) *Cell {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cells[name]
}

// Name returns the cell's registered name (the run tag).
func (c *Cell) Name() string { return c.name }

// Meta returns the cell's identity.
func (c *Cell) Meta() CellMeta { return c.meta }

// State returns the current lifecycle state.
func (c *Cell) State() State { return State(c.state.Load()) }

// SetState publishes a lifecycle transition. The first transition to
// running stamps the start time; a terminal transition stamps the done
// time (both feed ops/sec and ETA).
func (c *Cell) SetState(s State) {
	c.state.Store(int32(s))
	c.stateG.Set(float64(s))
	now := time.Now().UnixNano()
	switch s {
	case StateQueued:
		// A re-queue (fleet restart policy) reopens the lifecycle window.
		c.doneNS.Store(0)
	case StateRunning:
		c.startNS.CompareAndSwap(0, now)
	case StateDone, StateFailed, StateCancelled:
		c.doneNS.CompareAndSwap(0, now)
	}
}

// Record implements obs.Recorder: exact per-kind counting plus a (thinned
// for hot kinds) store into the registry's drain ring. Allocation-free.
func (c *Cell) Record(ev obs.Event) {
	k := int(ev.Kind)
	if k >= obs.NumKinds {
		k = 0
	}
	seen := c.events[k].Inc()
	if ev.Kind == obs.KindGCStart {
		c.reg.gcValidRatio.Observe(ev.F0)
	}
	if ringHot[k] && (seen-1)%ringSampleEvery != 0 {
		return
	}
	c.reg.ring.store(c.name, ev)
}

// PublishSample folds one sampler snapshot into the cell's gauges and
// cumulative counters. NaN gauge fields keep their "not applicable"
// meaning (exposition and snapshots skip them). Allocation-free.
func (c *Cell) PublishSample(s obs.Sample, t FTLTotals) {
	c.ops.SetTotal(s.Clock)
	c.userWrites.SetTotal(t.UserWrites)
	c.gcWrites.SetTotal(t.GCWrites)
	c.metaWrites.SetTotal(t.MetaWrites)
	c.intervalWA.Set(s.IntervalWA)
	c.cumWA.Set(s.CumWA)
	c.freeSB.Set(float64(s.FreeSB))
	c.cacheHit.Set(s.CacheHitRatio)
	c.wearSkew.Set(s.WearSkew)
	c.wearCoV.Set(s.WearCoV)
	if s.Threshold > 0 {
		c.threshold.Set(s.Threshold)
	}
	c.reg.sampleIntervalWA.Observe(s.IntervalWA)
	c.schemeIntervalWA.Observe(s.IntervalWA)
}

// PublishFinalWA records a completed run's end-of-run write amplification
// into the per-scheme fleet distribution (served by /api/v1/fleet). Call once
// per successful cell completion; NaN is dropped like every histogram input.
func (c *Cell) PublishFinalWA(wa float64) {
	c.schemeFinalWA.Observe(wa)
}

// Ops returns the cell's current replayed-op total.
func (c *Cell) Ops() uint64 { return c.ops.Value() }

// elapsedSec returns the running (or final) wall duration in seconds, 0
// before the cell started.
func (c *Cell) elapsedSec(now time.Time) float64 {
	start := c.startNS.Load()
	if start == 0 {
		return 0
	}
	end := c.doneNS.Load()
	if end == 0 {
		end = now.UnixNano()
	}
	return float64(end-start) / 1e9
}

// OpsPerSec returns the cell's average replay rate over its lifetime so
// far, 0 before it started.
func (c *Cell) OpsPerSec() float64 {
	sec := c.elapsedSec(time.Now())
	if sec <= 0 {
		return 0
	}
	return float64(c.Ops()) / sec
}

// CellSnapshot is one cell's point-in-time view, the source of the
// /api/v1/cells JSON. Gauge fields are NaN when not applicable / not yet
// observed.
type CellSnapshot struct {
	Name      string
	Trace     string
	Scheme    string
	State     State
	TargetOps uint64
	Ops       uint64
	OpsPerSec float64

	UserWrites, GCWrites, MetaWrites uint64
	GCPasses                         uint64

	IntervalWA, CumWA, Threshold, CacheHit float64
	WearSkew, WearCoV, FreeSB              float64

	Events map[string]uint64 // kind name -> exact count, zero kinds omitted
}

// Snapshot returns every cell's current state in registration order.
func (r *Registry) Snapshot() []CellSnapshot {
	r.mu.Lock()
	cells := append([]*Cell(nil), r.order...)
	r.mu.Unlock()
	now := time.Now()
	out := make([]CellSnapshot, 0, len(cells))
	for _, c := range cells {
		s := CellSnapshot{
			Name:       c.name,
			Trace:      c.meta.Trace,
			Scheme:     c.meta.Scheme,
			State:      c.State(),
			TargetOps:  c.meta.TargetOps,
			Ops:        c.Ops(),
			UserWrites: c.userWrites.Value(),
			GCWrites:   c.gcWrites.Value(),
			MetaWrites: c.metaWrites.Value(),
			GCPasses:   c.events[obs.KindGCEnd].Value(),
			IntervalWA: c.intervalWA.Value(),
			CumWA:      c.cumWA.Value(),
			Threshold:  c.threshold.Value(),
			CacheHit:   c.cacheHit.Value(),
			WearSkew:   c.wearSkew.Value(),
			WearCoV:    c.wearCoV.Value(),
			FreeSB:     c.freeSB.Value(),
			Events:     make(map[string]uint64),
		}
		if sec := c.elapsedSec(now); sec > 0 {
			s.OpsPerSec = float64(s.Ops) / sec
		}
		for k := 1; k < obs.NumKinds; k++ {
			if n := c.events[k].Value(); n > 0 {
				s.Events[obs.Kind(k).String()] = n
			}
		}
		out = append(out, s)
	}
	return out
}

// Totals aggregates the fleet for the status endpoint and the runner's
// progress line.
type Totals struct {
	Ops       uint64
	TargetOps uint64 // sum over cells with a known target
	Cells     [NumStates]int
	Events    uint64 // exact event total across cells and kinds
}

// Totals returns the fleet aggregate.
func (r *Registry) Totals() Totals {
	r.mu.Lock()
	cells := append([]*Cell(nil), r.order...)
	r.mu.Unlock()
	var t Totals
	for _, c := range cells {
		t.Ops += c.Ops()
		t.TargetOps += c.meta.TargetOps
		if s := int(c.State()); s >= 0 && s < NumStates {
			t.Cells[s]++
		}
		for k := range c.events {
			t.Events += c.events[k].Value()
		}
	}
	return t
}

// SeqEvent is one drained event: its global ring sequence number (the
// ?since= cursor), the cell it came from, and the event itself.
type SeqEvent struct {
	Seq  uint64
	Cell string
	Ev   obs.Event
}

// eventRing is the bounded global event store behind /api/v1/events.
// Slots are preallocated; a full ring overwrites its oldest slot, so
// producers never block and a slow scraper only loses history, never
// progress. Sequence numbers start at 1 and are assigned per *stored*
// event (hot-kind thinning happens before the ring).
type eventRing struct {
	mu      sync.Mutex
	buf     []SeqEvent
	mask    uint64
	stored  uint64 // == last assigned seq
	dropped uint64
}

func (er *eventRing) init(capacity int) {
	n := 1
	for n < capacity {
		n <<= 1
	}
	er.buf = make([]SeqEvent, n)
	er.mask = uint64(n - 1)
}

func (er *eventRing) store(cell string, ev obs.Event) {
	er.mu.Lock()
	seq := er.stored + 1
	er.stored = seq
	if seq > uint64(len(er.buf)) {
		er.dropped++
	}
	er.buf[(seq-1)&er.mask] = SeqEvent{Seq: seq, Cell: cell, Ev: ev}
	er.mu.Unlock()
}

// EventsSince drains up to limit ring events with sequence number > since,
// oldest first, optionally filtered to one kind (kind 0 = all). The second
// return is the safe resume cursor: the sequence number of the last slot the
// scan *covered* (delivered, or skipped by the kind filter). Polling again
// with since set to this value delivers every subsequent event exactly once
// — in particular, when limit truncates the result the cursor points at the
// last returned event, never at the ring's newest sequence, so undelivered
// events between the two are not skipped. When nothing new is available the
// cursor is returned unchanged (or advanced to the oldest survivor when the
// gap was overwritten).
func (r *Registry) EventsSince(since uint64, kind obs.Kind, limit int) ([]SeqEvent, uint64) {
	if limit <= 0 {
		limit = 1000
	}
	er := &r.ring
	er.mu.Lock()
	defer er.mu.Unlock()
	newest := er.stored
	oldest := uint64(1)
	if newest > uint64(len(er.buf)) {
		oldest = newest - uint64(len(er.buf)) + 1
	}
	from := since + 1
	if from < oldest {
		from = oldest // the gap was overwritten; resume at the oldest survivor
	}
	cursor := from - 1
	var out []SeqEvent
	for seq := from; seq <= newest; seq++ {
		if len(out) == limit {
			break // truncated: cursor stays at the last scanned slot
		}
		se := er.buf[(seq-1)&er.mask]
		cursor = seq
		if kind != 0 && se.Ev.Kind != kind {
			continue
		}
		out = append(out, se)
	}
	return out, cursor
}

// EventsDropped returns how many ring slots have been overwritten before
// being guaranteed drained (a scrape-rate, not correctness, signal: exact
// per-kind counters never drop).
func (r *Registry) EventsDropped() uint64 {
	r.ring.mu.Lock()
	defer r.ring.mu.Unlock()
	return r.ring.dropped
}

// UptimeSeconds returns seconds since the registry was created.
func (r *Registry) UptimeSeconds() float64 {
	return time.Since(r.start).Seconds()
}

var _ obs.Recorder = (*Cell)(nil)
