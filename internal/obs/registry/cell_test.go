package registry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/phftl/phftl/internal/obs"
)

func testSample(clock uint64) obs.Sample {
	return obs.Sample{
		Clock:         clock,
		IntervalWA:    0.2,
		CumWA:         0.3,
		FreeSB:        12,
		Threshold:     900,
		CacheHitRatio: 0.75,
		LatencyP50MS:  math.NaN(),
		LatencyP99MS:  math.NaN(),
		WearSkew:      1.1,
		WearCoV:       0.05,
	}
}

// TestCellPublishAndSnapshot pins the event/sample write side against the
// snapshot read side.
func TestCellPublishAndSnapshot(t *testing.T) {
	r := New()
	c := r.OpenCell("#52/PHFTL", CellMeta{Trace: "#52", Scheme: "PHFTL", TargetOps: 1000})
	c.SetState(StateRunning)
	c.Record(obs.Event{Kind: obs.KindGCStart, Clock: 5, F0: 0.4})
	c.Record(obs.Event{Kind: obs.KindGCEnd, Clock: 6})
	c.Record(obs.Event{Kind: obs.KindGCEnd, Clock: 9})
	c.PublishSample(testSample(500), FTLTotals{UserWrites: 500, GCWrites: 100, MetaWrites: 20})

	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("Snapshot len = %d", len(snaps))
	}
	s := snaps[0]
	if s.Name != "#52/PHFTL" || s.Trace != "#52" || s.Scheme != "PHFTL" {
		t.Fatalf("identity wrong: %+v", s)
	}
	if s.State != StateRunning || s.Ops != 500 || s.TargetOps != 1000 {
		t.Fatalf("state/ops wrong: %+v", s)
	}
	if s.UserWrites != 500 || s.GCWrites != 100 || s.MetaWrites != 20 {
		t.Fatalf("write totals wrong: %+v", s)
	}
	if s.GCPasses != 2 {
		t.Fatalf("GCPasses = %d, want 2", s.GCPasses)
	}
	if s.IntervalWA != 0.2 || s.CumWA != 0.3 || s.Threshold != 900 || s.CacheHit != 0.75 {
		t.Fatalf("gauges wrong: %+v", s)
	}
	if s.Events["gc_start"] != 1 || s.Events["gc_end"] != 2 {
		t.Fatalf("event counts wrong: %v", s.Events)
	}

	tot := r.Totals()
	if tot.Ops != 500 || tot.TargetOps != 1000 || tot.Cells[StateRunning] != 1 || tot.Events != 3 {
		t.Fatalf("Totals wrong: %+v", tot)
	}

	c.SetState(StateDone)
	if got := r.Totals().Cells[StateDone]; got != 1 {
		t.Fatalf("done count = %d", got)
	}
}

// TestCellNaNGaugesSkipped pins the not-applicable propagation: baseline
// cells (no cache, NaN hit ratio) must not expose the gauge.
func TestCellNaNGaugesSkipped(t *testing.T) {
	r := New()
	c := r.OpenCell("#52/Base", CellMeta{Trace: "#52", Scheme: "Base"})
	s := testSample(10)
	s.CacheHitRatio = math.NaN()
	s.Threshold = 0
	c.PublishSample(s, FTLTotals{UserWrites: 10})
	snap := r.Snapshot()[0]
	if !math.IsNaN(snap.CacheHit) {
		t.Fatalf("CacheHit = %v, want NaN", snap.CacheHit)
	}
	if !math.IsNaN(snap.Threshold) {
		t.Fatalf("Threshold = %v, want NaN (never set)", snap.Threshold)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "cache_hit_ratio{") || strings.Contains(b.String(), "phftl_cell_threshold{") {
		t.Fatalf("NaN cell gauges rendered:\n%s", b.String())
	}
}

// TestOpenCellIdempotent pins re-open semantics: the first caller's meta
// wins and both callers share one cell.
func TestOpenCellIdempotent(t *testing.T) {
	r := New()
	a := r.OpenCell("x", CellMeta{Trace: "t", Scheme: "s", TargetOps: 5})
	b := r.OpenCell("x", CellMeta{Trace: "other", Scheme: "other", TargetOps: 99})
	if a != b {
		t.Fatal("OpenCell returned distinct cells for one name")
	}
	if got := a.Meta(); got.Trace != "t" || got.TargetOps != 5 {
		t.Fatalf("meta overwritten: %+v", got)
	}
	if r.Cell("x") != a || r.Cell("missing") != nil {
		t.Fatal("Cell lookup wrong")
	}
}

// TestEventsSinceCursor pins the drain protocol: seq starts at 1, since is
// exclusive, a partial drain resumes without loss, and an overwritten gap
// resumes at the oldest survivor.
func TestEventsSinceCursor(t *testing.T) {
	r := New()
	c := r.OpenCell("x", CellMeta{})
	for i := 1; i <= 10; i++ {
		c.Record(obs.Event{Kind: obs.KindGCStart, Clock: uint64(i)})
	}
	// A limit-truncated drain must hand back the last *scanned* sequence as
	// the cursor, not the ring's newest: polling from the newest would skip
	// events 5..10 entirely.
	first, cursor := r.EventsSince(0, 0, 4)
	if cursor != 4 || len(first) != 4 || first[0].Seq != 1 || first[3].Seq != 4 {
		t.Fatalf("first drain: %d events, cursor %d (want 4 events, cursor 4)", len(first), cursor)
	}
	rest, cursor := r.EventsSince(cursor, 0, 0)
	if len(rest) != 6 || rest[0].Seq != 5 || rest[5].Seq != 10 || cursor != 10 {
		t.Fatalf("resumed drain wrong: %d events, cursor %d", len(rest), cursor)
	}
	if rest[0].Cell != "x" || rest[0].Ev.Clock != 5 {
		t.Fatalf("payload wrong: %+v", rest[0])
	}
	// Fully drained: cursor unchanged, no events.
	empty, cursor := r.EventsSince(cursor, 0, 0)
	if len(empty) != 0 || cursor != 10 {
		t.Fatalf("drained ring returned %d events, cursor %d", len(empty), cursor)
	}

	// Kind filter: only gc_end events; the cursor still covers the filtered
	// slots so the next poll does not rescan them.
	c.Record(obs.Event{Kind: obs.KindGCEnd, Clock: 11})
	ends, cursor := r.EventsSince(0, obs.KindGCEnd, 0)
	if len(ends) != 1 || ends[0].Ev.Kind != obs.KindGCEnd || cursor != 11 {
		t.Fatalf("kind filter wrong: %+v (cursor %d)", ends, cursor)
	}
}

// TestEventsSinceTruncatedNoLoss is the headline drain-protocol regression:
// repeatedly draining a full ring with a small limit, always resuming from
// the returned cursor, must deliver every sequence exactly once. The old
// EventsSince returned the ring's newest sequence even when limit truncated
// the scan, so every full page silently skipped the events behind it.
func TestEventsSinceTruncatedNoLoss(t *testing.T) {
	r := New()
	c := r.OpenCell("x", CellMeta{})
	const total = 107
	for i := 1; i <= total; i++ {
		c.Record(obs.Event{Kind: obs.KindGCStart, Clock: uint64(i)})
	}
	seen := make(map[uint64]int)
	var cursor uint64
	for polls := 0; polls < total+2; polls++ {
		evs, next := r.EventsSince(cursor, 0, 10)
		for _, se := range evs {
			seen[se.Seq]++
		}
		if next == cursor && len(evs) == 0 {
			break // drained
		}
		if next < cursor {
			t.Fatalf("cursor went backwards: %d -> %d", cursor, next)
		}
		cursor = next
	}
	if len(seen) != total {
		t.Fatalf("drained %d distinct sequences, want %d", len(seen), total)
	}
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("seq %d delivered %d times", seq, n)
		}
	}
}

// TestEventsSinceOverwrite pins the lossy-ring resume: when the gap between
// the cursor and the ring head was overwritten, the drain restarts at the
// oldest surviving event and EventsDropped counts the loss.
func TestEventsSinceOverwrite(t *testing.T) {
	r := New()
	r.ring.init(8) // tiny ring for the test
	c := r.OpenCell("x", CellMeta{})
	for i := 1; i <= 20; i++ {
		c.Record(obs.Event{Kind: obs.KindGCStart, Clock: uint64(i)})
	}
	got, newest := r.EventsSince(0, 0, 0)
	if newest != 20 {
		t.Fatalf("newest = %d", newest)
	}
	if len(got) != 8 || got[0].Seq != 13 || got[7].Seq != 20 {
		t.Fatalf("overwritten drain: %d events, first seq %v", len(got), got[0].Seq)
	}
	if r.EventsDropped() != 12 {
		t.Fatalf("EventsDropped = %d, want 12", r.EventsDropped())
	}
}

// TestHotKindThinning pins the 1/16 drain-ring sampling of meta-cache kinds:
// counters stay exact while the ring stores a fixed fraction.
func TestHotKindThinning(t *testing.T) {
	r := New()
	c := r.OpenCell("x", CellMeta{})
	const n = 16 * 10
	for i := 0; i < n; i++ {
		c.Record(obs.Event{Kind: obs.KindMetaCacheHit, Clock: uint64(i)})
	}
	if got := r.Snapshot()[0].Events["meta_cache_hit"]; got != n {
		t.Fatalf("exact counter = %d, want %d", got, n)
	}
	stored, _ := r.EventsSince(0, 0, 0)
	if len(stored) != n/ringSampleEvery {
		t.Fatalf("ring stored %d hot events, want %d", len(stored), n/ringSampleEvery)
	}
}

// TestCellHotPathZeroAlloc pins the producer discipline: once handles are
// resolved, Record and PublishSample must not heap-allocate — they run on
// the replay hot path of every instrumented cell.
func TestCellHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	r := New()
	c := r.OpenCell("x", CellMeta{Trace: "t", Scheme: "s"})
	ev := obs.Event{Kind: obs.KindGCStart, Clock: 1, F0: 0.5}
	s := testSample(1)
	tot := FTLTotals{UserWrites: 1, GCWrites: 2, MetaWrites: 3}
	if allocs := testing.AllocsPerRun(1000, func() {
		ev.Clock++
		c.Record(ev)
	}); allocs != 0 {
		t.Errorf("Cell.Record allocates %v times per call", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		s.Clock++
		tot.UserWrites++
		c.PublishSample(s, tot)
	}); allocs != 0 {
		t.Errorf("Cell.PublishSample allocates %v times per call", allocs)
	}
}

// TestConcurrentProducersAndScrapers is the -race exercise: many cells
// recording and publishing while scrapers render the exposition, snapshot
// the cells and drain the ring concurrently.
func TestConcurrentProducersAndScrapers(t *testing.T) {
	r := New()
	const cells, events = 4, 2000
	var wg sync.WaitGroup
	for i := 0; i < cells; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.OpenCell(fmt.Sprintf("cell%d", i), CellMeta{Trace: "t", Scheme: "s", TargetOps: events})
			c.SetState(StateRunning)
			for j := 0; j < events; j++ {
				c.Record(obs.Event{Kind: obs.KindGCStart, Clock: uint64(j), F0: 0.5})
				if j%100 == 0 {
					c.PublishSample(testSample(uint64(j)), FTLTotals{UserWrites: uint64(j)})
				}
			}
			c.SetState(StateDone)
		}(i)
	}
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 3; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			var since uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				r.Snapshot()
				r.Totals()
				evs, newest := r.EventsSince(since, 0, 256)
				_ = evs
				since = newest
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
	tot := r.Totals()
	if tot.Events != cells*events || tot.Cells[StateDone] != cells {
		t.Fatalf("final totals wrong: %+v", tot)
	}
}
