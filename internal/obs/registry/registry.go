// Package registry is the live half of the observability layer: a
// lock-cheap metrics registry the HTTP telemetry surface (internal/obs/httpd)
// serves from while a replay is still running. Where internal/obs buffers a
// run's events and samples for post-hoc sinks (JSONL/CSV/report), this
// package keeps *current* state — atomic counters and gauges, fixed-bucket
// histograms layered on internal/metrics, per-cell lifecycle, and a bounded
// global event ring with a monotone sequence cursor — cheap enough to update
// from the replay hot path and safe to scrape concurrently.
//
// The write side is wired by internal/sim (Observe bridges the event
// recorder and gauge sampler into a Cell) and internal/runner (lifecycle
// transitions); the read side is the Prometheus text exposition
// (WritePrometheus), the JSON snapshots (Snapshot, Totals) and the event
// drain (EventsSince). A nil *Registry everywhere means "not serving":
// every producer call site guards with one nil check, so the disabled path
// costs the same single predictable branch as the rest of internal/obs.
package registry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/phftl/phftl/internal/metrics"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one and returns the new value.
func (c *Counter) Inc() uint64 { return c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// SetTotal publishes an externally maintained cumulative total (e.g. the
// FTL's user-page-write count). The value must be monotone per writer;
// stale stores (a lagging writer) are dropped rather than winding the
// counter backwards.
func (c *Counter) SetTotal(v uint64) {
	for {
		cur := c.v.Load()
		if v <= cur || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic float64 gauge. NaN marks "no observation yet / not
// applicable" (the same convention as obs.Sample); the Prometheus
// exposition and JSON snapshots skip NaN gauges instead of serving a fake
// zero.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram layered on metrics.Histogram: the
// same [0, n·width) linear buckets with overflow absorbed by the final
// bucket, the same NaN-drop discipline, and the same midpoint quantile
// estimator — guarded by a mutex so concurrent observers and scrapers stay
// race-free. Histograms sit off the per-write hot path (they are fed per
// sample and per GC pass), so an uncontended mutex is cheaper than a
// lock-free bucket protocol and keeps the race detector meaningful.
type Histogram struct {
	mu  sync.Mutex
	h   *metrics.Histogram
	max float64 // exact observed maximum; NaN until the first observation
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return // mirror metrics.Histogram's NaN-drop without touching max
	}
	h.mu.Lock()
	h.h.Add(v)
	if math.IsNaN(h.max) || v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Quantile estimates the q-quantile (see metrics.Histogram.Quantile).
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Quantile(q)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Count()
}

// Max returns the exact maximum observed value (NaN before the first
// observation) — histograms bucket away the tail, so the fleet summary
// tracks it separately.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// snapshot copies the exposition-relevant state under the lock.
func (h *Histogram) snapshot(buckets []uint64) ([]uint64, float64, uint64, float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.AppendBuckets(buckets[:0]), h.h.BucketWidth(), h.h.Count(), h.h.Sum()
}

// Label is one name/value pair attached to a metric.
type Label struct{ Name, Value string }

type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled instance of a family.
type child struct {
	labels string // rendered {name="value",...} block, "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one metric name: its help text, type, and labeled children.
type family struct {
	name, help string
	typ        metricType
	hBuckets   int     // histogram sizing, fixed across the family
	hWidth     float64 //
	mu         sync.Mutex
	children   map[string]*child
}

// Registry is the root object: metric families plus the cell set and the
// global event ring. All methods are safe for concurrent use; metric
// handles returned by Counter/Gauge/Histogram are resolved once and then
// updated with pure atomics (counters, gauges) or one uncontended mutex
// (histograms), so hot paths never re-enter the registry maps.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	cells map[string]*Cell
	order []*Cell // registration order, the stable JSON output order

	ring  eventRing
	start time.Time

	// Cross-cell distribution metrics, fed by every cell's bridge.
	sampleIntervalWA *Histogram
	gcValidRatio     *Histogram

	// opsRate is the fleet-wide sliding-window ops/sec estimator shared by
	// every live-rate surface (the runner progress line and /api/v1/status),
	// so both report the same figure from the same window.
	opsRate *RateWindow
}

// DefaultEventRingCap bounds the global HTTP-drain event ring. At the
// default per-kind retention (hot meta-cache kinds thinned 1/16) this holds
// minutes of events on the probed cells; older events are overwritten and
// counted, never blocking a writer.
const DefaultEventRingCap = 1 << 14

// New creates an empty registry.
func New() *Registry {
	r := &Registry{
		fams:    make(map[string]*family),
		cells:   make(map[string]*Cell),
		start:   time.Now(),
		opsRate: NewRateWindow(DefaultRateWindow),
	}
	r.ring.init(DefaultEventRingCap)
	// Interval WA across cells: 60 × 0.05 buckets cover [0, 3) — the range
	// the paper's trajectories live in — with the usual overflow bucket.
	r.sampleIntervalWA = r.Histogram("phftl_sample_interval_wa",
		"Per-sample interval write amplification across all cells.", 60, 0.05)
	// GC victim valid ratio is a true [0, 1] quantity.
	r.gcValidRatio = r.Histogram("phftl_gc_valid_ratio",
		"Valid-page ratio of each selected GC victim across all cells.", 20, 0.05)
	return r
}

// Start returns the registry's creation time (the service start for uptime
// reporting).
func (r *Registry) Start() time.Time { return r.start }

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels builds the canonical {a="b",c="d"} block (sorted by label
// name, values escaped per the exposition format). It is the child map key,
// so label order at the call site never splits a series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !validName(l.Name) {
			panic(fmt.Sprintf("registry: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		for _, r := range l.Value {
			switch r {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteRune(r)
			}
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// getFamily returns (creating if needed) the family, panicking on a name
// reused with a different type or help — both are programmer errors that
// would corrupt the exposition.
func (r *Registry) getFamily(name, help string, typ metricType) *family {
	if !validName(name) {
		panic(fmt.Sprintf("registry: invalid metric name %q", name))
	}
	if typ == typeCounter && !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("registry: counter %q must end in _total", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, children: make(map[string]*child)}
		r.fams[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("registry: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	return f
}

func (f *family) child(labels []Label) *child {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labels: key}
		switch f.typ {
		case typeCounter:
			c.c = &Counter{}
		case typeGauge:
			c.g = &Gauge{}
			c.g.Set(math.NaN()) // "no observation yet": skipped by exposition
		case typeHistogram:
			c.h = &Histogram{h: metrics.NewHistogram(f.hBuckets, f.hWidth), max: math.NaN()}
		}
		f.children[key] = c
	}
	return c
}

// Counter returns the counter named name with the given labels, creating it
// on first use. The handle is stable: resolve once, then Inc/Add with pure
// atomics.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.getFamily(name, help, typeCounter).child(labels).c
}

// Gauge returns the gauge named name with the given labels, creating it on
// first use (initialized to NaN = "no observation yet").
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.getFamily(name, help, typeGauge).child(labels).g
}

// Histogram returns the histogram named name with the given labels,
// creating it on first use with buckets × width linear buckets (the
// metrics.NewHistogram sizing; the final bucket absorbs overflow). Sizing
// is fixed per family: the first registration wins.
func (r *Registry) Histogram(name, help string, buckets int, width float64, labels ...Label) *Histogram {
	f := r.getFamily(name, help, typeHistogram)
	f.mu.Lock()
	if f.hBuckets == 0 {
		f.hBuckets, f.hWidth = buckets, width
	}
	f.mu.Unlock()
	return f.child(labels).h
}

// WritePrometheus renders every family in the text exposition format
// v0.0.4: families sorted by name, children sorted by label signature,
// histograms as cumulative le-bound buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var buf []byte
	var bucketScratch []uint64
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]*child, 0, len(keys))
		for _, k := range keys {
			children = append(children, f.children[k])
		}
		f.mu.Unlock()

		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.typ.String()...)
		buf = append(buf, '\n')
		wrote := false
		for _, c := range children {
			switch f.typ {
			case typeCounter:
				buf = append(buf, f.name...)
				buf = append(buf, c.labels...)
				buf = append(buf, ' ')
				buf = strconv.AppendUint(buf, c.c.Value(), 10)
				buf = append(buf, '\n')
				wrote = true
			case typeGauge:
				v := c.g.Value()
				if math.IsNaN(v) || math.IsInf(v, 0) {
					continue // no observation yet / not applicable
				}
				buf = append(buf, f.name...)
				buf = append(buf, c.labels...)
				buf = append(buf, ' ')
				buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
				buf = append(buf, '\n')
				wrote = true
			case typeHistogram:
				var width float64
				var count uint64
				var sum float64
				bucketScratch, width, count, sum = c.h.snapshot(bucketScratch)
				if count == 0 {
					continue // no observations yet: skipped, like NaN gauges
				}
				var cum uint64
				for i, n := range bucketScratch {
					cum += n
					le := "+Inf"
					if i < len(bucketScratch)-1 {
						le = strconv.FormatFloat(float64(i+1)*width, 'g', -1, 64)
					}
					buf = append(buf, f.name...)
					buf = append(buf, "_bucket"...)
					buf = appendLE(buf, c.labels, le)
					buf = append(buf, ' ')
					buf = strconv.AppendUint(buf, cum, 10)
					buf = append(buf, '\n')
				}
				buf = append(buf, f.name...)
				buf = append(buf, "_sum"...)
				buf = append(buf, c.labels...)
				buf = append(buf, ' ')
				buf = strconv.AppendFloat(buf, sum, 'g', -1, 64)
				buf = append(buf, '\n')
				buf = append(buf, f.name...)
				buf = append(buf, "_count"...)
				buf = append(buf, c.labels...)
				buf = append(buf, ' ')
				buf = strconv.AppendUint(buf, count, 10)
				buf = append(buf, '\n')
				wrote = true
			}
		}
		if !wrote {
			continue // family whose every gauge is still NaN: emit nothing
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendLE merges the le bucket label into an existing (possibly empty)
// rendered label block.
func appendLE(buf []byte, labels, le string) []byte {
	if labels == "" {
		buf = append(buf, `{le="`...)
	} else {
		buf = append(buf, labels[:len(labels)-1]...) // strip '}'
		buf = append(buf, `,le="`...)
	}
	buf = append(buf, le...)
	return append(buf, `"}`...)
}
