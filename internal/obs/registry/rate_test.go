package registry

import (
	"math"
	"testing"
	"time"

	"github.com/phftl/phftl/internal/obs"
)

// TestRateWindowBurstThenIdle pins the sliding-window behaviour both bug
// surfaces (runner progress line, /api/v1/status) now share: a burst followed
// by an idle queue must decay to a zero rate as the window slides past the
// burst, where the old lifetime average stayed pinned at a stale positive
// figure forever.
func TestRateWindowBurstThenIdle(t *testing.T) {
	w := NewRateWindow(10 * time.Second)
	t0 := time.Unix(1000, 0)
	if !math.IsNaN(w.Rate()) {
		t.Fatalf("empty window rate = %v, want NaN", w.Rate())
	}
	w.Observe(t0, 0)
	if !math.IsNaN(w.Rate()) {
		t.Fatalf("single-observation rate = %v, want NaN", w.Rate())
	}
	// Burst: 1000 ops/sec for 4 seconds.
	for i := 1; i <= 4; i++ {
		w.Observe(t0.Add(time.Duration(i)*time.Second), uint64(i)*1000)
	}
	if got := w.Rate(); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("burst rate = %v, want 1000", got)
	}
	// Idle: the counter stops. While the burst is still inside the window the
	// rate shrinks; once the window has slid fully past it, the rate is 0.
	w.Observe(t0.Add(8*time.Second), 4000)
	mid := w.Rate()
	if math.IsNaN(mid) || mid <= 0 || mid >= 1000 {
		t.Fatalf("mid-idle rate = %v, want in (0, 1000)", mid)
	}
	w.Observe(t0.Add(20*time.Second), 4000)
	w.Observe(t0.Add(25*time.Second), 4000)
	if got := w.Rate(); got != 0 {
		t.Fatalf("idle rate = %v, want 0 (lifetime average would report %v)",
			got, 4000.0/25.0)
	}
	// Stale observations (older time or lower total) are dropped.
	w.Observe(t0.Add(24*time.Second), 4000)
	w.Observe(t0.Add(26*time.Second), 3000)
	if got := w.Rate(); got != 0 {
		t.Fatalf("rate after stale observations = %v, want 0", got)
	}
}

// TestLiveOpsPerSecFallback pins the warm-up path: before the shared window
// has a slope, LiveOpsPerSec falls back to the lifetime average so the first
// status scrape still reports a figure.
func TestLiveOpsPerSecFallback(t *testing.T) {
	r := New()
	c := r.OpenCell("x", CellMeta{Trace: "t", Scheme: "s"})
	c.PublishSample(testSample(500), FTLTotals{UserWrites: 500})
	if got := r.LiveOpsPerSec(); got <= 0 {
		t.Fatalf("first LiveOpsPerSec = %v, want lifetime-average fallback > 0", got)
	}
}

// TestFleetWA pins the per-scheme WA aggregation behind /api/v1/fleet:
// interval WA fed per sample, final WA fed once per completed cell, schemes
// sorted, empty distributions flagged by Count 0 / NaN quantiles.
func TestFleetWA(t *testing.T) {
	r := New()
	phftl := r.OpenCell("#52/PHFTL", CellMeta{Trace: "#52", Scheme: "PHFTL"})
	base := r.OpenCell("#52/Base", CellMeta{Trace: "#52", Scheme: "Base"})
	base2 := r.OpenCell("#144/Base", CellMeta{Trace: "#144", Scheme: "Base"})

	for i, wa := range []float64{1.0, 1.2, 1.4, 2.9} {
		s := testSample(uint64(i))
		s.IntervalWA = wa
		base.PublishSample(s, FTLTotals{})
	}
	s := testSample(9)
	s.IntervalWA = 1.1
	base2.PublishSample(s, FTLTotals{})
	base.PublishFinalWA(1.31)
	base2.PublishFinalWA(1.05)

	all, schemes := r.FleetWA()
	if all.Count != 5 {
		t.Fatalf("fleet interval-WA count = %d, want 5", all.Count)
	}
	if len(schemes) != 2 || schemes[0].Scheme != "Base" || schemes[1].Scheme != "PHFTL" {
		t.Fatalf("schemes wrong: %+v", schemes)
	}
	b := schemes[0]
	if b.IntervalWA.Count != 5 || b.FinalWA.Count != 2 {
		t.Fatalf("Base counts wrong: %+v", b)
	}
	if b.IntervalWA.Max != 2.9 || b.FinalWA.Max != 1.31 {
		t.Fatalf("Base max wrong: interval %v final %v", b.IntervalWA.Max, b.FinalWA.Max)
	}
	if b.FinalWA.P50 <= 0 || b.FinalWA.P99 < b.FinalWA.P50 {
		t.Fatalf("Base final quantiles wrong: %+v", b.FinalWA)
	}
	p := schemes[1]
	if p.FinalWA.Count != 0 || !math.IsNaN(p.FinalWA.P50) || !math.IsNaN(p.FinalWA.Max) {
		t.Fatalf("PHFTL (never completed) final dist not empty: %+v", p.FinalWA)
	}
	_ = phftl
}

// TestStateCancelled pins the fifth lifecycle state end to end through the
// registry: string form, terminal stamping, state counts and the state gauge.
func TestStateCancelled(t *testing.T) {
	if StateCancelled.String() != "cancelled" || !StateCancelled.Terminal() {
		t.Fatal("StateCancelled identity wrong")
	}
	if StateQueued.Terminal() || StateRunning.Terminal() {
		t.Fatal("non-terminal states report terminal")
	}
	r := New()
	c := r.OpenCell("x", CellMeta{Trace: "t", Scheme: "s"})
	c.SetState(StateRunning)
	c.SetState(StateCancelled)
	if got := r.Totals().Cells[StateCancelled]; got != 1 {
		t.Fatalf("cancelled count = %d, want 1", got)
	}
	if s := r.Snapshot()[0]; s.State != StateCancelled {
		t.Fatalf("snapshot state = %v", s.State)
	}
	// A cancelled cell's elapsed time is frozen at the cancel stamp.
	c2 := r.OpenCell("y", CellMeta{})
	c2.SetState(StateRunning)
	c2.SetState(StateCancelled)
	e1 := c2.elapsedSec(time.Now())
	e2 := c2.elapsedSec(time.Now().Add(time.Hour))
	if e1 != e2 {
		t.Fatalf("cancelled cell elapsed advanced: %v -> %v", e1, e2)
	}
}

// TestEventsSinceAheadCursor pins the degenerate resume: a cursor at or past
// the ring head returns no events and does not move the cursor backwards.
func TestEventsSinceAheadCursor(t *testing.T) {
	r := New()
	c := r.OpenCell("x", CellMeta{})
	c.Record(obs.Event{Kind: obs.KindGCStart, Clock: 1})
	evs, cursor := r.EventsSince(5, 0, 0)
	if len(evs) != 0 || cursor != 5 {
		t.Fatalf("ahead cursor: %d events, cursor %d (want 0, 5)", len(evs), cursor)
	}
}
