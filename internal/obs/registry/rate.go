package registry

import (
	"math"
	"sort"
	"sync"
	"time"
)

// DefaultRateWindow is the sliding window over which live ops/sec figures
// are computed. Long enough to smooth sampler jitter, short enough that a
// burst-then-idle workload decays to zero within a minute instead of being
// averaged against the whole process lifetime.
const DefaultRateWindow = 30 * time.Second

// RateWindow estimates the rate of a monotone counter over a sliding time
// window. Callers feed it (time, total) observations — typically one per
// scrape or per progress tick — and read the rate between the oldest
// retained and the newest observation. Unlike a lifetime average
// (total/uptime), the estimate tracks the *current* rate: after a slow
// warm-up it converges to the steady-state rate, and on an idle queue it
// decays to zero as the window slides past the last progress.
type RateWindow struct {
	mu     sync.Mutex
	window time.Duration
	obs    []rateObs
}

type rateObs struct {
	t     time.Time
	total uint64
}

// NewRateWindow creates a RateWindow spanning the given duration (<= 0
// selects DefaultRateWindow).
func NewRateWindow(window time.Duration) *RateWindow {
	if window <= 0 {
		window = DefaultRateWindow
	}
	return &RateWindow{window: window}
}

// Observe records the counter's current total at time t. Observations must
// be fed in nondecreasing time order per window (concurrent observers racing
// within a lock acquisition are fine; a total lower than an already-recorded
// one is dropped so a lagging reader cannot corrupt the slope).
func (w *RateWindow) Observe(t time.Time, total uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := len(w.obs); n > 0 {
		last := w.obs[n-1]
		if t.Before(last.t) || total < last.total {
			return // stale reader: keep the window monotone on both axes
		}
	}
	w.obs = append(w.obs, rateObs{t: t, total: total})
	// Prune to the window, always keeping one observation at or before the
	// boundary as the slope's baseline, so the measured span stays ~window.
	cut := t.Add(-w.window)
	drop := 0
	for drop < len(w.obs)-1 && !w.obs[drop+1].t.After(cut) {
		drop++
	}
	if drop > 0 {
		w.obs = append(w.obs[:0], w.obs[drop:]...)
	}
}

// Rate returns the windowed rate in units per second, or NaN when fewer than
// two observations have been recorded (no slope yet — callers may fall back
// to a lifetime average). A genuinely idle window returns 0, not NaN.
func (w *RateWindow) Rate() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.obs) < 2 {
		return math.NaN()
	}
	first, last := w.obs[0], w.obs[len(w.obs)-1]
	sec := last.t.Sub(first.t).Seconds()
	if sec <= 0 {
		return math.NaN()
	}
	return float64(last.total-first.total) / sec
}

// LiveOpsPerSec returns the fleet's current replay rate: ops/sec over the
// registry's sliding window, falling back to the lifetime average until the
// window holds enough observations to have a slope. Every call records one
// observation, so any surface that polls this (the runner progress ticker,
// /api/v1/status scrapes) keeps the shared window fresh — and all of them
// report the same figure.
func (r *Registry) LiveOpsPerSec() float64 {
	t := r.Totals()
	r.opsRate.Observe(time.Now(), t.Ops)
	if rate := r.opsRate.Rate(); !math.IsNaN(rate) {
		return rate
	}
	if up := r.UptimeSeconds(); up > 0 {
		return float64(t.Ops) / up
	}
	return 0
}

// WADist summarizes one write-amplification distribution for the fleet
// endpoint. Quantile fields are NaN when Count is zero.
type WADist struct {
	Count         uint64
	P50, P90, P99 float64
	Max           float64
}

func distOf(h *Histogram) WADist {
	d := WADist{Count: h.Count(), Max: h.Max()}
	if d.Count == 0 {
		d.P50, d.P90, d.P99 = math.NaN(), math.NaN(), math.NaN()
		return d
	}
	d.P50 = h.Quantile(0.50)
	d.P90 = h.Quantile(0.90)
	d.P99 = h.Quantile(0.99)
	return d
}

// SchemeWA is one scheme's fleet-wide WA distributions: per-sample interval
// WA across all of the scheme's cells, and end-of-run WA across its
// completed cells.
type SchemeWA struct {
	Scheme     string
	IntervalWA WADist
	FinalWA    WADist
}

// FleetWA returns the per-scheme WA distributions (sorted by scheme name)
// plus the fleet-wide interval-WA distribution — the data behind
// /api/v1/fleet's percentiles.
func (r *Registry) FleetWA() (all WADist, schemes []SchemeWA) {
	all = distOf(r.sampleIntervalWA)
	r.mu.Lock()
	cells := append([]*Cell(nil), r.order...)
	r.mu.Unlock()
	seen := make(map[string]bool)
	for _, c := range cells {
		s := c.meta.Scheme
		if seen[s] {
			continue
		}
		seen[s] = true
		schemes = append(schemes, SchemeWA{
			Scheme:     s,
			IntervalWA: distOf(c.schemeIntervalWA),
			FinalWA:    distOf(c.schemeFinalWA),
		})
	}
	sort.Slice(schemes, func(i, j int) bool { return schemes[i].Scheme < schemes[j].Scheme })
	return all, schemes
}
