// Package tworegion implements the 2R baseline (Kang et al., "2R:
// Efficiently Isolating Cold Pages in Flash Storages", VLDB 2020) as
// characterized in the PHFTL paper's evaluation: user writes and GC writes
// are kept in two separate regions, exploiting the heuristic that pages
// still valid at GC time are long-living (cold) and should not be remixed
// with fresh, likely-hot user data.
package tworegion

import (
	"github.com/phftl/phftl/internal/ftl"
	"github.com/phftl/phftl/internal/nand"
)

// Separator routes user writes to stream 0 and all GC migrations to
// stream 1.
type Separator struct {
	ftl.NopSeparator
}

// New returns the 2R scheme.
func New() *Separator { return &Separator{} }

// Name implements ftl.Separator.
func (*Separator) Name() string { return "2R" }

// NumStreams implements ftl.Separator: one user region, one GC region.
func (*Separator) NumStreams() int { return 2 }

// StreamGCClass implements ftl.Separator: stream 1 holds GC'ed pages.
func (*Separator) StreamGCClass(stream int) int {
	if stream == 1 {
		return 1
	}
	return 0
}

// PlaceUserWrite implements ftl.Separator.
func (*Separator) PlaceUserWrite(ftl.UserWrite, uint64) (int, []byte) { return 0, nil }

// PlaceGCWrite implements ftl.Separator.
func (*Separator) PlaceGCWrite(nand.LPN, []byte, int, uint64) (int, []byte) { return 1, nil }
