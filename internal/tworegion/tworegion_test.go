package tworegion

import (
	"math/rand"
	"testing"

	"github.com/phftl/phftl/internal/ftl"
	"github.com/phftl/phftl/internal/nand"
)

func testGeo() nand.Geometry {
	return nand.Geometry{PageSize: 4096, OOBSize: 64, PagesPerBlock: 8, BlocksPerDie: 512, Dies: 2}
}

func TestRouting(t *testing.T) {
	s := New()
	if stream, oob := s.PlaceUserWrite(ftl.UserWrite{LPN: 1}, 0); stream != 0 || oob != nil {
		t.Errorf("user write -> stream %d oob %v", stream, oob)
	}
	if stream, _ := s.PlaceGCWrite(1, nil, 1, 0); stream != 1 {
		t.Errorf("gc write -> stream %d, want 1", stream)
	}
	if s.NumStreams() != 2 {
		t.Errorf("streams = %d", s.NumStreams())
	}
	if s.StreamGCClass(0) != 0 || s.StreamGCClass(1) != 1 {
		t.Error("StreamGCClass wrong")
	}
	if s.Name() != "2R" {
		t.Errorf("name = %q", s.Name())
	}
}

// Test2RBeatsBaseOnSkewedWorkload checks the paper's Fig. 5 ordering
// Base > 2R on a hot/cold mix: isolating GC survivors (cold pages) from
// fresh user writes lowers WA.
func Test2RBeatsBaseOnSkewedWorkload(t *testing.T) {
	run := func(sep ftl.Separator) float64 {
		cfg := ftl.DefaultConfig(testGeo())
		f, err := ftl.New(cfg, sep, ftl.CostBenefitPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		exported := f.ExportedPages()
		rng := rand.New(rand.NewSource(77))
		hot := exported / 50
		for lpn := 0; lpn < exported; lpn++ {
			if err := f.Write(ftl.UserWrite{LPN: nand.LPN(lpn)}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 6*exported; i++ {
			var lpn int
			if rng.Float64() < 0.8 {
				lpn = rng.Intn(hot)
			} else {
				lpn = hot + rng.Intn(exported-hot)
			}
			if err := f.Write(ftl.UserWrite{LPN: nand.LPN(lpn)}); err != nil {
				t.Fatal(err)
			}
		}
		return f.Stats().WA()
	}
	waBase := run(ftl.NewBaseSeparator())
	wa2R := run(New())
	t.Logf("WA base=%.3f 2r=%.3f", waBase, wa2R)
	if wa2R >= waBase {
		t.Fatalf("2R WA %.3f >= Base WA %.3f", wa2R, waBase)
	}
}
