// Package timeseries holds the tiny rendering primitives the live dashboard
// (cmd/watop) builds frames from: a fixed-capacity rolling window of float
// observations, a unicode sparkline, and a horizontal bar. They are plain
// string builders with no terminal handling, so they test byte-for-byte.
package timeseries

import (
	"math"
	"strings"
)

// Ring is a rolling window over the last Cap observations of one gauge.
// The zero value is unusable; make one with NewRing.
type Ring struct {
	buf   []float64
	head  int // next write position
	count int
}

// NewRing creates a window holding the most recent cap values (cap < 1 is
// clamped to 1).
func NewRing(cap int) *Ring {
	if cap < 1 {
		cap = 1
	}
	return &Ring{buf: make([]float64, cap)}
}

// Push appends an observation, evicting the oldest once full. NaN values
// are skipped: the telemetry stream omits not-applicable gauges, and a NaN
// hole would poison min/max scaling.
func (r *Ring) Push(v float64) {
	if math.IsNaN(v) {
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
}

// Len returns the number of held observations.
func (r *Ring) Len() int { return r.count }

// Last returns the most recent observation, or NaN when empty.
func (r *Ring) Last() float64 {
	if r.count == 0 {
		return math.NaN()
	}
	return r.buf[(r.head-1+len(r.buf))%len(r.buf)]
}

// Values returns the held observations oldest-first in a fresh slice.
func (r *Ring) Values() []float64 {
	out := make([]float64, 0, r.count)
	start := r.head - r.count
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[((start+i)%len(r.buf)+len(r.buf))%len(r.buf)])
	}
	return out
}

// sparkLevels are the eight vertical-bar glyphs a sparkline quantizes into.
var sparkLevels = []rune{'▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'}

// Sparkline renders vals (oldest first) as a fixed-width unicode strip. More
// values than width keeps the newest; fewer left-pads with spaces so the
// newest observation always sits at the right edge. Scaling is min..max over
// the rendered window; a flat window renders mid-level. NaNs render as
// spaces.
func Sparkline(vals []float64, width int) string {
	if width < 1 {
		width = 1
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for i := len(vals); i < width; i++ {
		b.WriteByte(' ')
	}
	for _, v := range vals {
		switch {
		case math.IsNaN(v):
			b.WriteByte(' ')
		case hi == lo:
			b.WriteRune(sparkLevels[len(sparkLevels)/2])
		default:
			idx := int((v - lo) / (hi - lo) * float64(len(sparkLevels)))
			if idx >= len(sparkLevels) {
				idx = len(sparkLevels) - 1
			}
			b.WriteRune(sparkLevels[idx])
		}
	}
	return b.String()
}

// Bar renders v as a horizontal bar of width cells scaled against max:
// full blocks for the filled fraction, a part-block for the remainder,
// spaces for the rest. max <= 0 or NaN v renders an empty bar.
func Bar(v, max float64, width int) string {
	if width < 1 {
		width = 1
	}
	var b strings.Builder
	fill := 0.0
	if max > 0 && !math.IsNaN(v) && v > 0 {
		fill = v / max
		if fill > 1 {
			fill = 1
		}
	}
	cells := fill * float64(width)
	full := int(cells)
	for i := 0; i < full; i++ {
		b.WriteRune('█')
	}
	rest := width - full
	if frac := cells - float64(full); frac > 0 && rest > 0 {
		// Part blocks step by eighths: ▏▎▍▌▋▊▉█.
		idx := int(frac * 8)
		if idx > 0 {
			b.WriteRune([]rune{'▏', '▎', '▍', '▌', '▋', '▊', '▉', '█'}[idx-1])
			rest--
		}
	}
	for i := 0; i < rest; i++ {
		b.WriteByte(' ')
	}
	return b.String()
}
