package timeseries

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestRingWindow(t *testing.T) {
	r := NewRing(3)
	if r.Len() != 0 || !math.IsNaN(r.Last()) {
		t.Fatalf("empty ring: Len %d, Last %v", r.Len(), r.Last())
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		r.Push(v)
	}
	if r.Len() != 3 || r.Last() != 5 {
		t.Fatalf("Len %d Last %v, want 3/5", r.Len(), r.Last())
	}
	got := r.Values()
	want := []float64{3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
}

func TestRingSkipsNaN(t *testing.T) {
	r := NewRing(4)
	r.Push(1)
	r.Push(math.NaN())
	r.Push(2)
	if r.Len() != 2 {
		t.Fatalf("Len = %d after NaN push, want 2", r.Len())
	}
	vals := r.Values()
	if vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("Values = %v", vals)
	}
}

func TestSparklineShape(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if s != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp sparkline = %q", s)
	}
	// Newest values stick to the right edge.
	s = Sparkline([]float64{1, 5}, 4)
	if utf8.RuneCountInString(s) != 4 || !strings.HasPrefix(s, "  ") {
		t.Fatalf("padded sparkline = %q", s)
	}
	// More values than width keeps the newest window.
	s = Sparkline([]float64{9, 9, 9, 0, 4, 8}, 3)
	if s != "▁▅█" {
		t.Fatalf("truncated sparkline = %q", s)
	}
}

func TestSparklineFlatAndEmpty(t *testing.T) {
	if s := Sparkline([]float64{2, 2, 2}, 3); utf8.RuneCountInString(s) != 3 || strings.ContainsRune(s, ' ') {
		t.Fatalf("flat sparkline = %q", s)
	}
	if s := Sparkline(nil, 5); s != "     " {
		t.Fatalf("empty sparkline = %q", s)
	}
	if s := Sparkline([]float64{1, math.NaN(), 3}, 3); utf8.RuneCountInString(s) != 3 || []rune(s)[1] != ' ' {
		t.Fatalf("NaN sparkline = %q", s)
	}
}

func TestBar(t *testing.T) {
	if b := Bar(10, 10, 4); b != "████" {
		t.Fatalf("full bar = %q", b)
	}
	if b := Bar(5, 10, 4); b != "██  " {
		t.Fatalf("half bar = %q", b)
	}
	if b := Bar(0, 10, 4); b != "    " {
		t.Fatalf("zero bar = %q", b)
	}
	if b := Bar(math.NaN(), 10, 4); b != "    " {
		t.Fatalf("NaN bar = %q", b)
	}
	if b := Bar(20, 10, 4); b != "████" {
		t.Fatalf("overflow bar = %q", b)
	}
	// A fraction renders a part block; width in cells stays fixed.
	b := Bar(1, 16, 4)
	if utf8.RuneCountInString(b) != 4 {
		t.Fatalf("fractional bar = %q (%d cells)", b, utf8.RuneCountInString(b))
	}
	if b[0] == ' ' {
		t.Fatalf("fractional bar shows nothing: %q", b)
	}
}
