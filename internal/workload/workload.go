// Package workload synthesizes block-level traces with the statistical
// structure of the Alibaba Cloud block traces the paper evaluates on (Li et
// al., IISWC 2020): strongly skewed write footprints where a small hot set
// receives most updates with near-periodic (and therefore learnable)
// lifetimes, sequential overwrite streams (logs, compactions), uniform
// random cold updates, read/write mixes, and slow workload drift (the hot
// set migrates over time).
//
// Each of the paper's 20 evaluated drives (#52 ... #679) is modeled by a
// Profile whose parameters were chosen to produce the same qualitative
// behaviour class: low-WA sequential-dominated drives, high-WA mixed drives,
// and highly-predictable periodic drives.
package workload

import (
	"math/rand"

	"github.com/phftl/phftl/internal/trace"
)

// Profile parameterizes one synthetic drive workload.
type Profile struct {
	// ID is the paper's trace identifier (e.g. "#52").
	ID string
	// DriveClass is the paper's drive-size label ("500GB", "100GB", ...).
	DriveClass string
	// ExportedPages is the scaled-down drive size in pages.
	ExportedPages int
	// PageSize in bytes (the paper configures 16 KiB pages).
	PageSize int

	// HotFrac is the hot set size as a fraction of the LPN space.
	HotFrac float64
	// HotWriteFrac is the fraction of non-sequential writes that target the
	// hot set.
	HotWriteFrac float64
	// HotJitter is the probability of a cyclic skip, dispersing hot-page
	// lifetimes (0 = perfectly periodic).
	HotJitter float64
	// HotSkipMax bounds each jitter skip.
	HotSkipMax int

	// AltFrac is the alternating set size as a fraction of the LPN space:
	// pages written in update pairs (write, then a follow-up rewrite a few
	// requests later, then quiet for a full cycle — think journal commit or
	// read-modify-write patterns). Their lifetimes alternate short/long, so
	// the common heuristic "next lifetime = previous lifetime" used by
	// rule-based separators is systematically wrong on them, while a
	// learned model picks up the inversion. Cloud traces show such
	// multi-phase update patterns (IISWC'20).
	AltFrac float64
	// AltWriteFrac is the fraction of non-sequential writes that target the
	// alternating set.
	AltWriteFrac float64

	// MedFrac is the medium set size as a fraction of the LPN space: a
	// cyclic tier updated a few times slower than the hot set but still
	// within one training window, giving the lifetime CDF its second
	// observable mode (real traces are multi-modal; with a single mode the
	// classification threshold has no gap to settle in).
	MedFrac float64
	// MedWriteFrac is the fraction of non-sequential, non-hot writes that
	// target the medium set.
	MedWriteFrac float64

	// WarmFrac is the warm set size as a fraction of the LPN space: a
	// second cyclic tier updated much more slowly than the hot set (think
	// application working sets), giving long- but finite-lifetime pages
	// whose invalidation is spatially concentrated.
	WarmFrac float64
	// WarmWriteFrac is the fraction of non-sequential, non-hot writes that
	// target the warm set (the rest are uniform cold updates).
	WarmWriteFrac float64

	// SeqFrac is the fraction of write requests that belong to sequential
	// overwrite streams (circular logs).
	SeqFrac float64
	// SeqRunPages is the length of one sequential burst in pages.
	SeqRunPages int
	// SeqRegionFrac is the fraction of the LPN space the sequential stream
	// cycles over.
	SeqRegionFrac float64

	// ReadFrac is the fraction of requests that are reads.
	ReadFrac float64
	// ReqPagesMax bounds random/hot request sizes (uniform 1..ReqPagesMax).
	ReqPagesMax int

	// PhaseEvery rotates the hot set by half its size every PhaseEvery page
	// writes (0 = static), exercising PHFTL's adaptive threshold and
	// retraining.
	PhaseEvery int

	// TrimFrac is the fraction of requests that are file-delete discard
	// bursts over the cold region (0 disables trims; all trim knobs at zero
	// leave the generated stream byte-identical to a trim-free profile).
	TrimFrac float64
	// TrimRunPages is the size of one file-delete discard burst in pages.
	TrimRunPages int
	// SeqTrimLagPages, when positive, truncates the circular log: every
	// sequential burst is followed by discards of the log extent more than
	// this many pages behind the head, modeling log-structured cleanup.
	SeqTrimLagPages int

	// InterArrivalUS is the mean request inter-arrival time in microseconds
	// (exponential), used by timing experiments.
	InterArrivalUS float64

	// Seed drives the generator.
	Seed int64
}

// Generator emits trace records for a profile. It is an infinite stream.
type Generator struct {
	p   Profile
	rng *rand.Rand

	// trimRng places file-delete bursts. Trims draw from their own stream so
	// enabling them never perturbs the base rng: a trim twin's write/read
	// records stay byte-identical to its base profile's. Nil when disabled.
	trimRng *rand.Rand

	hotBase int // current hot-region start (rotates with phases)
	hotSize int
	hotPtr  int

	altSize  int
	altPtr   int
	altPhase bool
	altPages int // request size of the pending pair follow-up

	medSize  int
	medPtr   int
	warmSize int
	warmPtr  int

	seqRegion int // pages in the sequential region
	seqPtr    int // next page of the circular log
	seqTotal  int // cumulative pages appended to the circular log
	trimPtr   int // cumulative log pages truncated (SeqTrimLagPages > 0)

	pageWrites int // total page writes emitted
	clockUS    uint64

	// pending holds follow-up records (log-truncation trims) emitted before
	// the next synthesized request. Always empty when trims are disabled.
	pending []trace.Record

	// Low-discrepancy accumulators for request-type selection: types arrive
	// at their exact configured rates with minimal interleave variance, so
	// per-page update periods are as regular as the jitter knobs dictate
	// (i.i.d. type sampling would add Poisson dispersion that swamps them).
	// trimAcc gates discard bursts the same way; it stays zero (and draws no
	// randomness) when TrimFrac is zero, so enabling trims on a twin profile
	// leaves the base request stream untouched.
	seqAcc, hotAcc, altAcc, medAcc, warmAcc, trimAcc float64
}

func bern(acc *float64, p float64) bool {
	*acc += p
	if *acc >= 1 {
		*acc--
		return true
	}
	return false
}

// NewGenerator builds the generator for a profile.
func (p Profile) NewGenerator() *Generator {
	hotSize := int(p.HotFrac * float64(p.ExportedPages))
	if hotSize < 1 {
		hotSize = 1
	}
	seqRegion := int(p.SeqRegionFrac * float64(p.ExportedPages))
	if seqRegion < 1 {
		seqRegion = 1
	}
	warmSize := int(p.WarmFrac * float64(p.ExportedPages))
	if warmSize < 1 {
		warmSize = 1
	}
	medSize := int(p.MedFrac * float64(p.ExportedPages))
	if medSize < 1 {
		medSize = 1
	}
	altSize := int(p.AltFrac * float64(p.ExportedPages))
	if altSize < 1 {
		altSize = 1
	}
	var trimRng *rand.Rand
	if p.TrimFrac > 0 || p.SeqTrimLagPages > 0 {
		trimRng = rand.New(rand.NewSource(p.Seed ^ 0x74726d)) // "trm"
	}
	return &Generator{
		p:         p,
		rng:       rand.New(rand.NewSource(p.Seed)),
		trimRng:   trimRng,
		hotSize:   hotSize,
		altSize:   altSize,
		medSize:   medSize,
		warmSize:  warmSize,
		seqRegion: seqRegion,
	}
}

// PageWrites returns the number of page writes emitted so far.
func (g *Generator) PageWrites() int { return g.pageWrites }

// Next produces the next request. Trim records (pending log truncations and
// file-delete bursts) draw their arrival gaps and placement from the
// dedicated trim rng, so a trim twin's interleaved write/read stream stays
// byte-identical to its base profile's.
func (g *Generator) Next() trace.Record {
	if len(g.pending) > 0 {
		g.clockUS += uint64(g.trimRng.ExpFloat64() * g.p.InterArrivalUS)
		rec := g.pending[0]
		g.pending = g.pending[1:]
		if len(g.pending) == 0 {
			g.pending = nil
		}
		rec.Time = g.clockUS
		return rec
	}

	// File-delete discard burst: a contiguous cold extent — a dead file —
	// is trimmed in one request. The burst lands in the span that receives
	// only uniform cold updates (above the warm region, below the circular
	// log), so discards free genuinely cold data the way file deletion does.
	// The low-discrepancy gate draws no randomness when TrimFrac is zero.
	if g.p.TrimFrac > 0 && bern(&g.trimAcc, g.p.TrimFrac) {
		g.clockUS += uint64(g.trimRng.ExpFloat64() * g.p.InterArrivalUS)
		rec := trace.Record{Time: g.clockUS, Op: trace.OpTrim}
		run := maxInt(g.p.TrimRunPages, 1)
		lo := g.p.ExportedPages/4 + g.warmSize
		hi := g.p.ExportedPages - g.seqRegion
		if hi-lo < run { // degenerate layout: fall back to the full cold span
			lo = 0
			if hi < run {
				hi = g.p.ExportedPages
			}
			if hi-lo < run {
				run = hi - lo
			}
		}
		start := lo + g.trimRng.Intn(hi-lo-run+1)
		rec.Offset = uint64(start) * uint64(g.p.PageSize)
		rec.Size = uint32(run * g.p.PageSize)
		return rec
	}

	g.clockUS += uint64(g.rng.ExpFloat64() * g.p.InterArrivalUS)
	rec := trace.Record{Time: g.clockUS}

	if g.rng.Float64() < g.p.ReadFrac {
		rec.Op = trace.OpRead
		// Reads favour the hot set (hot data is hot for reads too).
		var lpn int
		if g.rng.Float64() < 0.5 {
			lpn = g.hotBase + g.rng.Intn(g.hotSize)
		} else {
			lpn = g.rng.Intn(g.p.ExportedPages)
		}
		pages := 1 + g.rng.Intn(maxInt(g.p.ReqPagesMax, 1))
		lpn %= g.p.ExportedPages
		if lpn+pages > g.p.ExportedPages {
			pages = g.p.ExportedPages - lpn
		}
		rec.Offset = uint64(lpn) * uint64(g.p.PageSize)
		rec.Size = uint32(pages * g.p.PageSize)
		return rec
	}

	rec.Op = trace.OpWrite
	switch {
	case bern(&g.altAcc, g.p.AltWriteFrac):
		// Alternating update pair: the first write of a pair dies at its
		// follow-up a few requests later; the follow-up lives a full cycle.
		// "Next lifetime = previous lifetime" is systematically wrong here.
		if !g.altPhase {
			g.altPages = 1 + g.rng.Intn(maxInt(g.p.ReqPagesMax, 1))
			if start := g.altPtr % g.altSize; start+g.altPages > g.altSize {
				g.altPages = g.altSize - start
			}
		}
		lpn := g.altPtr % g.altSize
		if g.altPhase {
			g.altPtr += g.altPages // pair complete: next position
		}
		g.altPhase = !g.altPhase
		base := g.p.ExportedPages * 3 / 16
		rec.Offset = uint64(base+lpn) * uint64(g.p.PageSize)
		rec.Size = uint32(g.altPages * g.p.PageSize)
		g.pageWrites += g.altPages
	case bern(&g.seqAcc, g.p.SeqFrac):
		// Sequential circular-log burst: whole superblocks of data with a
		// deterministic region-cycle lifetime.
		run := g.p.SeqRunPages
		if run < 1 {
			run = 1
		}
		start := g.seqPtr % g.seqRegion
		if start+run > g.seqRegion {
			run = g.seqRegion - start // stay inside the region; wrap next time
		}
		g.seqPtr = (start + run) % g.seqRegion
		// The sequential region sits at the top of the LPN space.
		base := g.p.ExportedPages - g.seqRegion
		rec.Offset = uint64(base+start) * uint64(g.p.PageSize)
		rec.Size = uint32(run * g.p.PageSize)
		g.pageWrites += run
		g.seqTotal += run
		// Circular-log truncation: discard every extent more than the lag
		// behind the new head, clipped at the region wrap so each trim is
		// one contiguous request. Queued as pending records so the trims
		// follow the append that obsoleted them, like a log cleaner.
		if lag := g.p.SeqTrimLagPages; lag > 0 {
			if lag >= g.seqRegion {
				// A lag of a full region or more would leave extents the
				// wrapping head has already overwritten; the closest valid
				// truncation distance is just under one lap.
				lag = g.seqRegion - 1
			}
			for lag > 0 && g.seqTotal-g.trimPtr > lag {
				chunk := g.seqTotal - lag - g.trimPtr
				tStart := g.trimPtr % g.seqRegion
				if tStart+chunk > g.seqRegion {
					chunk = g.seqRegion - tStart
				}
				g.pending = append(g.pending, trace.Record{
					Op:     trace.OpTrim,
					Offset: uint64(base+tStart) * uint64(g.p.PageSize),
					Size:   uint32(chunk * g.p.PageSize),
				})
				g.trimPtr += chunk
			}
		}
	case bern(&g.hotAcc, g.p.HotWriteFrac):
		// Near-periodic hot update: the cycle pointer advances by the
		// request size so consecutive requests update disjoint objects.
		pages := 1 + g.rng.Intn(maxInt(g.p.ReqPagesMax, 1))
		lpn := g.hotBase + (g.hotPtr % g.hotSize)
		if g.hotPtr%g.hotSize+pages > g.hotSize {
			pages = g.hotSize - g.hotPtr%g.hotSize // stay inside the hot set
		}
		g.hotPtr += pages
		if g.rng.Float64() < g.p.HotJitter && g.p.HotSkipMax > 0 {
			// Skips scale with the hot-set size so small drives see the
			// same relative lifetime dispersion as large ones.
			skip := g.p.HotSkipMax
			if rel := g.hotSize / 16; rel < skip {
				skip = rel
			}
			if skip > 0 {
				g.hotPtr += g.rng.Intn(skip + 1)
			}
		}
		rec.Offset = uint64(lpn) * uint64(g.p.PageSize)
		rec.Size = uint32(pages * g.p.PageSize)
		g.pageWrites += pages
	case bern(&g.medAcc, g.p.MedWriteFrac):
		// Medium cyclic tier: lifetimes a few times the hot tier's, still
		// observable within a window. Lives between the hot region's
		// rotation range and the warm region.
		pages := 1 + g.rng.Intn(maxInt(g.p.ReqPagesMax, 1))
		start := g.medPtr % g.medSize
		if start+pages > g.medSize {
			pages = g.medSize - start
		}
		g.medPtr += pages
		base := g.p.ExportedPages / 8
		rec.Offset = uint64(base+start) * uint64(g.p.PageSize)
		rec.Size = uint32(pages * g.p.PageSize)
		g.pageWrites += pages
	case bern(&g.warmAcc, g.p.WarmWriteFrac):
		// Slow cyclic warm-set update: long but finite lifetimes with
		// concentrated invalidation. The warm region sits just above the
		// hot region's home range.
		pages := 1 + g.rng.Intn(maxInt(g.p.ReqPagesMax, 1))
		start := g.warmPtr % g.warmSize
		if start+pages > g.warmSize {
			pages = g.warmSize - start
		}
		g.warmPtr += pages
		base := g.p.ExportedPages / 4 // clear of the (rotating) hot region
		rec.Offset = uint64(base+start) * uint64(g.p.PageSize)
		rec.Size = uint32(pages * g.p.PageSize)
		g.pageWrites += pages
	default:
		// Uniform cold update outside the sequential region.
		coldSpan := g.p.ExportedPages - g.seqRegion
		if coldSpan < 1 {
			coldSpan = g.p.ExportedPages
		}
		lpn := g.rng.Intn(coldSpan)
		pages := 1 + g.rng.Intn(maxInt(g.p.ReqPagesMax, 1))
		rec.Offset = uint64(lpn) * uint64(g.p.PageSize)
		rec.Size = uint32(pages * g.p.PageSize)
		g.pageWrites += pages
	}

	if g.p.PhaseEvery > 0 && g.pageWrites/g.p.PhaseEvery != (g.pageWrites-int(rec.Size)/g.p.PageSize)/g.p.PhaseEvery {
		// Rotate the hot set by half its size: workload drift.
		g.hotBase = (g.hotBase + g.hotSize/2) % maxInt(g.p.ExportedPages/8-g.hotSize, 1)
	}
	return rec
}

// Records emits requests until at least nPageWrites page writes have been
// generated.
func (g *Generator) Records(nPageWrites int) []trace.Record {
	var out []trace.Record
	start := g.pageWrites
	for g.pageWrites-start < nPageWrites {
		out = append(out, g.Next())
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
