package workload

import (
	"testing"

	"github.com/phftl/phftl/internal/trace"
)

func testProfile() Profile {
	p := base("#test", "test", 4096)
	tuneHotFrac(&p, 0.4)
	return p
}

func TestProfilesWellFormed(t *testing.T) {
	ps := Profiles()
	if len(ps) != 20 {
		t.Fatalf("profiles = %d, want 20 (the paper's trace count)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.ID] {
			t.Errorf("duplicate profile %s", p.ID)
		}
		seen[p.ID] = true
		if p.ExportedPages <= 0 || p.PageSize <= 0 {
			t.Errorf("%s: bad sizes %d/%d", p.ID, p.ExportedPages, p.PageSize)
		}
		for name, v := range map[string]float64{
			"HotFrac": p.HotFrac, "HotWriteFrac": p.HotWriteFrac,
			"WarmFrac": p.WarmFrac, "WarmWriteFrac": p.WarmWriteFrac,
			"SeqFrac": p.SeqFrac, "SeqRegionFrac": p.SeqRegionFrac,
			"ReadFrac": p.ReadFrac, "HotJitter": p.HotJitter,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s: %s = %v outside [0,1]", p.ID, name, v)
			}
		}
		// The hot set must cycle well within one training window (5% of the
		// drive) or its lifetimes are unobservable; the noisiest profiles
		// may approach but not exceed the window.
		if p.HotFrac > 0.05 {
			t.Errorf("%s: HotFrac %v exceeds the window fraction", p.ID, p.HotFrac)
		}
	}
	for _, want := range []string{"#52", "#144", "#38", "#679"} {
		if !seen[want] {
			t.Errorf("missing paper trace %s", want)
		}
	}
}

func TestProfileByID(t *testing.T) {
	p, ok := ProfileByID("#52")
	if !ok || p.ID != "#52" {
		t.Fatalf("ProfileByID(#52) = %+v, %v", p, ok)
	}
	if _, ok := ProfileByID("#nope"); ok {
		t.Error("unknown ID resolved")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := testProfile()
	a := p.NewGenerator().Records(5000)
	b := p.NewGenerator().Records(5000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorRecordsMeetPageWriteTarget(t *testing.T) {
	p := testProfile()
	g := p.NewGenerator()
	g.Records(10000)
	if g.PageWrites() < 10000 {
		t.Fatalf("page writes = %d, want >= 10000", g.PageWrites())
	}
}

func TestGeneratorRecordsInBounds(t *testing.T) {
	for _, p := range Profiles()[:4] {
		g := p.NewGenerator()
		for _, r := range g.Records(20000) {
			if r.Size == 0 {
				t.Fatalf("%s: zero-size record", p.ID)
			}
			if r.Offset%uint64(p.PageSize) != 0 {
				t.Fatalf("%s: unaligned offset %d", p.ID, r.Offset)
			}
			end := (r.Offset + uint64(r.Size) + uint64(p.PageSize) - 1) / uint64(p.PageSize)
			if end > uint64(p.ExportedPages) {
				t.Fatalf("%s: request [%d,+%d) beyond drive (%d pages)", p.ID, r.Offset, r.Size, p.ExportedPages)
			}
			if r.Op != trace.OpRead && r.Op != trace.OpWrite {
				t.Fatalf("%s: bad op %c", p.ID, r.Op)
			}
		}
	}
}

func TestGeneratorMixesReadsAndWrites(t *testing.T) {
	p := testProfile()
	p.ReadFrac = 0.4
	g := p.NewGenerator()
	recs := g.Records(20000)
	s := trace.Summarize(recs)
	frac := float64(s.Reads) / float64(s.Reads+s.Writes)
	if frac < 0.3 || frac > 0.5 {
		t.Errorf("read fraction = %.3f, want ~0.4", frac)
	}
}

func TestGeneratorHotLifetimesMatchGapRatio(t *testing.T) {
	// With gapRatio 0.4 the dominant lifetime mode must sit well below one
	// window (5% of the drive) — this is the property PHFTL's sampling
	// depends on.
	p := base("#gap", "test", 8192)
	p.HotJitter = 0
	p.SeqFrac = 0
	p.ReadFrac = 0
	p.WarmWriteFrac = 0.9
	tuneHotFrac(&p, 0.4)
	g := p.NewGenerator()
	recs := g.Records(6 * 8192)
	ops := trace.Expand(recs, p.PageSize, p.ExportedPages)
	lifetimes := trace.AnnotateLifetimes(ops)
	window := float64(8192) * 0.05
	short := 0
	finite := 0
	for _, l := range lifetimes {
		if l == trace.InfiniteLifetime {
			continue
		}
		finite++
		if float64(l) < window {
			short++
		}
	}
	if finite == 0 {
		t.Fatal("no finite lifetimes")
	}
	if frac := float64(short) / float64(finite); frac < 0.5 {
		t.Errorf("only %.2f of finite lifetimes fall inside a window", frac)
	}
}

func TestGeneratorPhaseRotationMovesHotSet(t *testing.T) {
	p := testProfile()
	p.PhaseEvery = 2000
	g := p.NewGenerator()
	base0 := g.hotBase
	g.Records(10000)
	if g.hotBase == base0 {
		t.Error("hot base did not rotate despite PhaseEvery")
	}
}

func TestGeneratorTimestampsMonotone(t *testing.T) {
	p := testProfile()
	g := p.NewGenerator()
	var last uint64
	for _, r := range g.Records(5000) {
		if r.Time < last {
			t.Fatalf("timestamps regressed: %d after %d", r.Time, last)
		}
		last = r.Time
	}
}

func TestBernoulliAccumulatorExactRate(t *testing.T) {
	var acc float64
	hits := 0
	for i := 0; i < 1000; i++ {
		if bern(&acc, 0.3) {
			hits++
		}
	}
	if hits < 299 || hits > 301 {
		t.Errorf("low-discrepancy rate: %d/1000 hits, want 300 (+-1 float rounding)", hits)
	}
	// Rate 0 never fires; rate 1 always fires.
	acc = 0
	for i := 0; i < 10; i++ {
		if bern(&acc, 0) {
			t.Fatal("rate 0 fired")
		}
	}
	acc = 0
	for i := 0; i < 10; i++ {
		if !bern(&acc, 1) {
			t.Fatal("rate 1 missed")
		}
	}
}

func TestAlternatingTierLifetimes(t *testing.T) {
	// Isolate the alternating tier: its pages must show bimodal lifetimes —
	// a short intra-pair gap and a long inter-cycle gap — with the short
	// mode well below the long one. This is the structure that defeats
	// "next lifetime = previous lifetime" heuristics.
	p := base("#alt", "test", 8192)
	p.AltWriteFrac = 0.5
	p.ReadFrac = 0
	p.SeqFrac = 0
	p.HotJitter = 0
	tuneHotFrac(&p, 0.4)
	g := p.NewGenerator()
	recs := g.Records(40000)
	ops := trace.Expand(recs, p.PageSize, p.ExportedPages)
	lifetimes := trace.AnnotateLifetimes(ops)
	altLo := uint32(p.ExportedPages * 3 / 16)
	altHi := altLo + uint32(p.AltFrac*float64(p.ExportedPages)) + 1
	var short, long int
	widx := 0
	for _, op := range ops {
		if !op.Write {
			continue
		}
		l := lifetimes[widx]
		widx++
		if op.LPN < altLo || op.LPN >= altHi || l == trace.InfiniteLifetime {
			continue
		}
		if float64(l) < 0.3*0.05*float64(p.ExportedPages) {
			short++
		} else {
			long++
		}
	}
	if short == 0 || long == 0 {
		t.Fatalf("alternating tier not bimodal: %d short, %d long", short, long)
	}
	ratio := float64(short) / float64(short+long)
	if ratio < 0.3 || ratio > 0.7 {
		t.Errorf("pair phases unbalanced: %.2f short fraction", ratio)
	}
}

func TestProfilesAltAndMedInRange(t *testing.T) {
	for _, p := range Profiles() {
		for name, v := range map[string]float64{
			"AltFrac": p.AltFrac, "AltWriteFrac": p.AltWriteFrac,
			"MedFrac": p.MedFrac, "MedWriteFrac": p.MedWriteFrac,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s: %s = %v outside [0,1]", p.ID, name, v)
			}
		}
	}
}

func TestTrimProfilesWellFormed(t *testing.T) {
	tps := TrimProfiles()
	if len(tps) != 2 {
		t.Fatalf("trim profiles = %d, want 2", len(tps))
	}
	for _, p := range tps {
		if p.TrimFrac <= 0 || p.TrimRunPages <= 0 {
			t.Errorf("%s: trim knobs not set: %+v", p.ID, p)
		}
		got, ok := ProfileByID(p.ID)
		if !ok || got.ID != p.ID {
			t.Errorf("ProfileByID(%s) = %v, %v", p.ID, got.ID, ok)
		}
		// The twin must keep its base profile's seed so the write streams
		// coincide record-for-record.
		base, ok := ProfileByID(p.ID[:len(p.ID)-1])
		if !ok {
			t.Fatalf("%s has no base profile", p.ID)
		}
		if p.Seed != base.Seed {
			t.Errorf("%s: seed %d differs from base %d", p.ID, p.Seed, base.Seed)
		}
	}
}

// TestTrimTwinWriteStreamIdentical is the determinism contract behind every
// trim experiment: enabling the trim knobs must only add discard records —
// the interleaved write/read stream stays byte-identical to the base
// profile's, so WA deltas are attributable to the discards alone.
func TestTrimTwinWriteStreamIdentical(t *testing.T) {
	base := testProfile()
	twin := WithTrim(base, "#testT", 0.05, 32, 512)
	wantPages := 30000
	baseRecs := base.NewGenerator().Records(wantPages)
	twinRecs := twin.NewGenerator().Records(wantPages)
	trims := 0
	var nonTrim []trace.Record
	for _, r := range twinRecs {
		if r.Op == trace.OpTrim {
			trims++
			continue
		}
		nonTrim = append(nonTrim, r)
	}
	if trims == 0 {
		t.Fatal("twin emitted no trims")
	}
	if len(nonTrim) != len(baseRecs) {
		t.Fatalf("non-trim records: %d vs %d base", len(nonTrim), len(baseRecs))
	}
	for i := range nonTrim {
		a, b := nonTrim[i], baseRecs[i]
		// Timestamps shift (trim requests consume arrival gaps); everything
		// else must match exactly.
		a.Time, b.Time = 0, 0
		if a != b {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestTrimRecordsWellFormed(t *testing.T) {
	p := WithTrim(testProfile(), "#testT", 0.05, 32, 512)
	g := p.NewGenerator()
	seqRegion := int(p.SeqRegionFrac * float64(p.ExportedPages))
	logBase := uint64(p.ExportedPages-seqRegion) * uint64(p.PageSize)
	fileDeletes, truncations := 0, 0
	for _, r := range g.Records(60000) {
		if r.Op != trace.OpTrim {
			continue
		}
		if r.Size == 0 || r.Offset%uint64(p.PageSize) != 0 {
			t.Fatalf("malformed trim %+v", r)
		}
		end := r.Offset + uint64(r.Size)
		if end > uint64(p.ExportedPages)*uint64(p.PageSize) {
			t.Fatalf("trim [%d,+%d) beyond drive", r.Offset, r.Size)
		}
		if r.Offset >= logBase {
			truncations++
			if end > uint64(p.ExportedPages)*uint64(p.PageSize) {
				t.Fatalf("log truncation %+v leaves the log region", r)
			}
		} else {
			fileDeletes++
			if r.Offset < uint64(p.ExportedPages/4)*uint64(p.PageSize) {
				t.Errorf("file-delete burst at %d inside hot/warm tiers", r.Offset)
			}
		}
	}
	if fileDeletes == 0 {
		t.Error("no file-delete bursts generated")
	}
	if truncations == 0 {
		t.Error("no log truncations generated")
	}
}

// TestZeroTrimKnobsAreInert pins that a profile with all trim knobs at zero
// exercises none of the trim machinery (the base profiles regenerate
// byte-identically — the golden baselines depend on it).
func TestZeroTrimKnobsAreInert(t *testing.T) {
	p := testProfile()
	g := p.NewGenerator()
	for _, r := range g.Records(20000) {
		if r.Op == trace.OpTrim {
			t.Fatal("trim emitted with zero knobs")
		}
	}
	if g.pending != nil || g.trimAcc != 0 {
		t.Errorf("trim state touched: pending=%v acc=%v", g.pending, g.trimAcc)
	}
}
