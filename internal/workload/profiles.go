package workload

// Scaled drive sizes in pages (16 KiB pages). The paper replays 20 drive
// writes on 40-500 GB drives; we keep the size *ratios* between drive
// classes while scaling absolute capacity down ~2000x so a full Figure 5
// sweep runs in minutes (see DESIGN.md "Scale-down defaults").
const (
	pages500GB = 32768 // 512 MiB virtual drive
	pages100GB = 20480 // 320 MiB
	pages50GB  = 16384 // 256 MiB
	pages40GB  = 12288 // 192 MiB
)

// PageSize16K matches the paper's configured flash page size.
const PageSize16K = 16384

func base(id, class string, pages int) Profile {
	return Profile{
		ID:             id,
		DriveClass:     class,
		ExportedPages:  pages,
		PageSize:       PageSize16K,
		HotFrac:        0.008,
		HotWriteFrac:   0.75,
		HotJitter:      0.15,
		HotSkipMax:     5,
		AltWriteFrac:   0.08,
		MedWriteFrac:   0.40,
		WarmFrac:       0.15,
		WarmWriteFrac:  0.75,
		SeqFrac:        0.15,
		SeqRunPages:    32,
		SeqRegionFrac:  0.10,
		ReadFrac:       0.30,
		ReqPagesMax:    4,
		InterArrivalUS: 200,
		Seed:           1,
	}
}

// tuneHotFrac sizes the hot set so one full hot-set update cycle takes
// gapRatio training windows (a window is 5% of the drive, §III-B). Ratios
// well below 1 make hot lifetimes observable within a window and cleanly
// separable from the warm/sequential tiers; ratios near 1 blur the classes
// (lifetime samples are right-censored at the window boundary), which is how
// the noisy traces of Table I are modeled.
func tuneHotFrac(p *Profile, gapRatio float64) {
	r := (1 + float64(p.ReqPagesMax)) / 2
	seqPages := (1 - p.AltWriteFrac) * p.SeqFrac * float64(p.SeqRunPages)
	altPages := p.AltWriteFrac * r
	nonSeq := (1 - p.AltWriteFrac) * (1 - p.SeqFrac) * r
	hotPages := nonSeq * p.HotWriteFrac
	total := seqPages + altPages + nonSeq
	hotShare := hotPages / total
	// Jitter skips lengthen the effective cycle per request.
	inflate := 1 + p.HotJitter*float64(p.HotSkipMax)/2/r
	p.HotFrac = gapRatio * 0.05 * hotShare / inflate
	if p.HotFrac <= 0 {
		p.HotFrac = 0.001
	}
	// Size the medium tier so its cycle takes ~0.85 windows: the second
	// observable mode of the lifetime CDF.
	medShare := nonSeq * (1 - p.HotWriteFrac) * p.MedWriteFrac / total
	p.MedFrac = 0.85 * 0.05 * medShare
	if p.MedFrac <= 0 {
		p.MedFrac = 0.001
	}
	// Size the alternating tier so a full pair cycle takes ~2 windows: the
	// follow-up write's lifetime must exceed any plausible classification
	// threshold, so that the pair's short phase and long phase really do
	// belong to different classes (each position is written twice per
	// cycle).
	altShare := altPages / total
	p.AltFrac = 2.0 * 0.05 * altShare / 2
	if p.AltFrac <= 0 {
		p.AltFrac = 0.001
	}
}

// Profiles returns the 20 synthetic drive workloads standing in for the
// paper's 20 Alibaba Cloud traces. Parameters vary along the axes the
// Alibaba study (IISWC'20) identifies: update skew, periodicity, sequential
// share, read mix and drift — producing the same qualitative spread as
// Figure 5 (from near-zero-WA sequential drives to high-WA mixed drives)
// and Table I (classifier accuracy from ~0.8 to ~0.99).
func Profiles() []Profile {
	mk := func(id, class string, pages int, gapRatio float64, mut func(*Profile)) Profile {
		p := base(id, class, pages)
		var sum int64
		for _, c := range id {
			sum = sum*31 + int64(c)
		}
		p.Seed = sum
		if mut != nil {
			mut(&p)
		}
		tuneHotFrac(&p, gapRatio)
		return p
	}
	return []Profile{
		// --- 500 GB class ---
		// #52: lowest WA of the class — sequential-heavy, crisp periodic hot
		// set, almost no uniform cold churn.
		mk("#52", "500GB", pages500GB, 0.35, func(p *Profile) {
			p.SeqFrac = 0.30
			p.SeqRegionFrac = 0.25
			p.HotWriteFrac = 0.85
			p.HotJitter = 0.14
			p.WarmWriteFrac = 0.90
		}),
		// #58: periodic with drift (phase rotation).
		mk("#58", "500GB", pages500GB, 0.45, func(p *Profile) {
			p.SeqFrac = 0.20
			p.HotWriteFrac = 0.70
			p.HotJitter = 0.25
			p.WarmWriteFrac = 0.75
			p.PhaseEvery = 60000
		}),
		// #107: moderate skew, larger requests.
		mk("#107", "500GB", pages500GB, 0.40, func(p *Profile) {
			p.HotWriteFrac = 0.65
			p.ReqPagesMax = 8
			p.SeqFrac = 0.18
			p.WarmWriteFrac = 0.70
			p.PhaseEvery = 50000
		}),
		// #141: strongly periodic, little noise.
		mk("#141", "500GB", pages500GB, 0.30, func(p *Profile) {
			p.HotWriteFrac = 0.78
			p.HotJitter = 0.13
			p.SeqFrac = 0.22
			p.WarmWriteFrac = 0.85
		}),
		// #144: highest WA — heavy dispersed churn and real uniform cold.
		mk("#144", "500GB", pages500GB, 0.50, func(p *Profile) {
			p.AltWriteFrac = 0.02 // the pair-gap spike must stay below the CDF knee's mass
			p.HotWriteFrac = 0.55
			p.HotJitter = 0.30
			p.HotSkipMax = 7
			p.SeqFrac = 0.04
			p.WarmFrac = 0.25
			p.WarmWriteFrac = 0.67
			p.ReadFrac = 0.15
			p.PhaseEvery = 25000
		}),
		// #178: mixed, mild drift.
		mk("#178", "500GB", pages500GB, 0.45, func(p *Profile) {
			p.HotWriteFrac = 0.70
			p.HotJitter = 0.2
			p.WarmWriteFrac = 0.72
			p.PhaseEvery = 40000
		}),
		// #225: noisiest classifier target of the class (paper acc 0.814).
		mk("#225", "500GB", pages500GB, 0.60, func(p *Profile) {
			p.HotWriteFrac = 0.60
			p.HotJitter = 0.25
			p.HotSkipMax = 7
			p.SeqFrac = 0.10
			p.WarmWriteFrac = 0.65
			p.PhaseEvery = 30000
		}),

		// --- 100 GB class: cloud drives with very regular update cycles ---
		// #177: near-perfectly periodic (paper acc 0.972).
		mk("#177", "100GB", pages100GB, 0.30, func(p *Profile) {
			p.HotWriteFrac = 0.82
			p.HotJitter = 0.12
			p.SeqFrac = 0.20
			p.WarmWriteFrac = 0.88
		}),
		// #202: periodic + sequential (paper acc 0.969).
		mk("#202", "100GB", pages100GB, 0.42, func(p *Profile) {
			p.HotWriteFrac = 0.78
			p.HotJitter = 0.12
			p.SeqFrac = 0.30
			p.SeqRegionFrac = 0.15
			p.WarmWriteFrac = 0.85
			p.PhaseEvery = 70000
		}),
		// #316: regular with medium requests.
		mk("#316", "100GB", pages100GB, 0.35, func(p *Profile) {
			p.HotJitter = 0.13
			p.ReqPagesMax = 6
			p.WarmWriteFrac = 0.80
			p.PhaseEvery = 45000
		}),
		// #721: regular but read-heavy.
		mk("#721", "100GB", pages100GB, 0.40, func(p *Profile) {
			p.HotJitter = 0.12
			p.ReadFrac = 0.55
			p.WarmWriteFrac = 0.80
			p.PhaseEvery = 60000
		}),
		// #748: drifting hot set (paper acc 0.832 — hardest of the class).
		mk("#748", "100GB", pages100GB, 0.70, func(p *Profile) {
			p.HotWriteFrac = 0.62
			p.HotJitter = 0.3
			p.HotSkipMax = 7
			p.WarmWriteFrac = 0.70
			p.PhaseEvery = 20000
		}),

		// --- 50 GB class ---
		// #38: almost no short-living data (paper precision 0.213) —
		// write-once/read-many with rare hot updates.
		mk("#38", "50GB", pages50GB, 0.45, func(p *Profile) {
			p.HotWriteFrac = 0.12
			p.SeqFrac = 0.45
			p.SeqRegionFrac = 0.40
			p.ReadFrac = 0.60
			p.WarmWriteFrac = 0.85
		}),
		// #126: mixed with jitter.
		mk("#126", "50GB", pages50GB, 0.60, func(p *Profile) {
			p.HotWriteFrac = 0.68
			p.HotJitter = 0.35
			p.HotSkipMax = 7
			p.WarmWriteFrac = 0.72
			p.PhaseEvery = 30000
		}),
		// #132: regular periodic.
		mk("#132", "50GB", pages50GB, 0.42, func(p *Profile) {
			p.HotJitter = 0.14
			p.SeqFrac = 0.25
			p.WarmWriteFrac = 0.80
			p.PhaseEvery = 50000
		}),

		// --- 40 GB class: small drives with crisp periodicity ---
		// #223 (paper acc 0.951).
		mk("#223", "40GB", pages40GB, 0.42, func(p *Profile) {
			p.HotJitter = 0.13
			p.SeqFrac = 0.2
			p.WarmWriteFrac = 0.82
			p.PhaseEvery = 35000
		}),
		// #228 (paper acc 0.979).
		mk("#228", "40GB", pages40GB, 0.45, func(p *Profile) {
			p.HotWriteFrac = 0.82
			p.HotJitter = 0.12
			p.WarmWriteFrac = 0.88
			p.PhaseEvery = 25000
		}),
		// #277 (paper acc 0.971).
		mk("#277", "40GB", pages40GB, 0.46, func(p *Profile) {
			p.HotJitter = 0.12
			p.SeqFrac = 0.28
			p.SeqRegionFrac = 0.15
			p.WarmWriteFrac = 0.85
			p.PhaseEvery = 45000
		}),
		// #326 (paper acc 0.987 — most regular of all).
		mk("#326", "40GB", pages40GB, 0.35, func(p *Profile) {
			p.HotWriteFrac = 0.85
			p.HotJitter = 0.12
			p.SeqFrac = 0.15
			p.WarmWriteFrac = 0.90
		}),
		// #679: regular, read-leaning (paper recall 0.947, precision 0.606).
		mk("#679", "40GB", pages40GB, 0.42, func(p *Profile) {
			p.HotWriteFrac = 0.65
			p.HotJitter = 0.14
			p.ReadFrac = 0.5
			p.SeqFrac = 0.3
			p.WarmWriteFrac = 0.85
			p.PhaseEvery = 30000
		}),
	}
}

// WithTrim derives a trim-enabled twin of a profile: same seed and request
// stream, plus discard traffic. frac of requests become file-delete bursts of
// runPages cold pages, and (when lagPages > 0) the circular log is truncated
// lagPages behind its head. The twin shares the base profile's seed, so its
// write stream is byte-identical to the original — any WA difference is
// attributable to the discards alone.
func WithTrim(p Profile, id string, frac float64, runPages, lagPages int) Profile {
	p.ID = id
	p.TrimFrac = frac
	p.TrimRunPages = runPages
	p.SeqTrimLagPages = lagPages
	return p
}

// TrimProfiles returns the trim-enabled twins used by the TRIM scenarios:
// "#52T" (sequential-heavy drive with log truncation close behind the head)
// and "#144T" (high-WA churny drive with frequent file-delete bursts). They
// are kept out of Profiles() so the Figure 5 default sweep stays the paper's
// 20 traces.
func TrimProfiles() []Profile {
	var out []Profile
	if p, ok := profileFrom(Profiles(), "#52"); ok {
		out = append(out, WithTrim(p, "#52T", 0.04, 64, 1024))
	}
	if p, ok := profileFrom(Profiles(), "#144"); ok {
		out = append(out, WithTrim(p, "#144T", 0.06, 96, 256))
	}
	return out
}

func profileFrom(list []Profile, id string) (Profile, bool) {
	for _, p := range list {
		if p.ID == id {
			return p, true
		}
	}
	return Profile{}, false
}

// ProfileByID returns the profile with the given ID, searching the paper's
// 20 traces and the trim-enabled twins, or false.
func ProfileByID(id string) (Profile, bool) {
	if p, ok := profileFrom(Profiles(), id); ok {
		return p, true
	}
	return profileFrom(TrimProfiles(), id)
}
