package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestWriteAmp(t *testing.T) {
	cases := []struct {
		flash, user uint64
		want        float64
	}{
		{100, 100, 0},
		{200, 100, 1.0},
		{150, 100, 0.5},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := WriteAmp(c.flash, c.user); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WriteAmp(%d,%d) = %v, want %v", c.flash, c.user, got, c.want)
		}
	}
}

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	// 8 TP, 2 FP, 85 TN, 5 FN.
	for i := 0; i < 8; i++ {
		c.Add(true, true)
	}
	for i := 0; i < 2; i++ {
		c.Add(true, false)
	}
	for i := 0; i < 85; i++ {
		c.Add(false, false)
	}
	for i := 0; i < 5; i++ {
		c.Add(false, true)
	}
	if c.Total() != 100 {
		t.Fatalf("Total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-0.93) > 1e-9 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := c.Precision(); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("Precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-8.0/13.0) > 1e-9 {
		t.Errorf("Recall = %v", got)
	}
	p, r := 0.8, 8.0/13.0
	if got := c.F1(); math.Abs(got-2*p*r/(p+r)) > 1e-9 {
		t.Errorf("F1 = %v", got)
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func TestConfusionEmptyAndDegenerate(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Error("empty confusion should return zeros")
	}
	c.Add(false, false) // only negatives
	if c.Precision() != 0 || c.Recall() != 0 {
		t.Error("no-positive confusion should return zero precision/recall")
	}
}

func TestPercentiles(t *testing.T) {
	samples := make([]float64, 101)
	for i := range samples {
		samples[i] = float64(i)
	}
	rand.New(rand.NewSource(2)).Shuffle(len(samples), func(i, j int) {
		samples[i], samples[j] = samples[j], samples[i]
	})
	got := Percentiles(samples, 0, 50, 99, 100)
	want := []float64{0, 50, 99, 100}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("pct[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Percentiles(nil, 50) != nil {
		t.Error("Percentiles(nil) should be nil")
	}
}

// Percentiles linearly interpolates between the two closest ranks; it is NOT
// nearest-rank. The golden result files were produced with this definition,
// so this test pins it: nearest-rank would return 2 for the 25th percentile
// of {1,2,3,4}, interpolation returns 1.75.
func TestPercentilesLinearInterpolation(t *testing.T) {
	cases := []struct {
		p    float64
		want float64
	}{
		{10, 1.3},
		{25, 1.75},
		{50, 2.5},
		{75, 3.25},
		{90, 3.7},
	}
	for _, c := range cases {
		got := Percentiles([]float64{4, 2, 1, 3}, c.p)[0]
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentiles({1,2,3,4}, %v) = %v, want %v (interpolated)", c.p, got, c.want)
		}
	}
}

func TestMeanStdDev(t *testing.T) {
	s := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(s); math.Abs(m-5) > 1e-12 {
		t.Errorf("Mean = %v", m)
	}
	if sd := StdDev(s); math.Abs(sd-2) > 1e-12 {
		t.Errorf("StdDev = %v", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate Mean/StdDev should be 0")
	}
}

func TestInflectionPointSkewedDistribution(t *testing.T) {
	// 90% of lifetimes small (around 10), 10% a long tail (around 10000).
	// The inflection point must land near the knee, i.e. well below the tail.
	rng := rand.New(rand.NewSource(3))
	var lifetimes []float64
	for i := 0; i < 900; i++ {
		lifetimes = append(lifetimes, 5+rng.Float64()*10)
	}
	for i := 0; i < 100; i++ {
		lifetimes = append(lifetimes, 8000+rng.Float64()*4000)
	}
	v, idx := InflectionPoint(lifetimes)
	if v > 100 {
		t.Errorf("inflection value = %v, want near the short cluster (<100)", v)
	}
	if idx < 700 || idx > 999 {
		t.Errorf("inflection index = %d, want near the knee (>=700)", idx)
	}
}

func TestInflectionPointDegenerate(t *testing.T) {
	if v, _ := InflectionPoint(nil); v != 0 {
		t.Errorf("empty: %v", v)
	}
	if v, _ := InflectionPoint([]float64{7}); v != 7 {
		t.Errorf("single: %v", v)
	}
	if v, _ := InflectionPoint([]float64{3, 9}); v != 9 {
		t.Errorf("two: %v", v)
	}
	// All-equal samples: line is vertical, fall back to median.
	same := []float64{5, 5, 5, 5, 5}
	if v, _ := InflectionPoint(same); v != 5 {
		t.Errorf("uniform: %v", v)
	}
}

func TestPercentileOfValueAndBack(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if p := PercentileOfValue(sorted, 50); math.Abs(p-40) > 1e-9 {
		t.Errorf("PercentileOfValue(50) = %v, want 40 (4 of 10 strictly below)", p)
	}
	if v := ValueAtPercentile(sorted, 0); v != 10 {
		t.Errorf("ValueAtPercentile(0) = %v", v)
	}
	if v := ValueAtPercentile(sorted, 100); v != 100 {
		t.Errorf("ValueAtPercentile(100) = %v", v)
	}
	if v := ValueAtPercentile(sorted, -5); v != 10 {
		t.Errorf("clamped low = %v", v)
	}
	if v := ValueAtPercentile(sorted, 150); v != 100 {
		t.Errorf("clamped high = %v", v)
	}
	if PercentileOfValue(nil, 1) != 0 || ValueAtPercentile(nil, 50) != 0 {
		t.Error("empty inputs should return 0")
	}
}

// Property: for any sample set, ValueAtPercentile(PercentileOfValue(v)) <= v
// for values drawn from the set (round-trip stays consistent with ordering).
func TestPercentileRoundTripProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		sorted := make([]float64, len(raw))
		for i, b := range raw {
			sorted[i] = float64(b)
		}
		sort.Float64s(sorted)
		for _, v := range sorted {
			p := PercentileOfValue(sorted, v)
			got := ValueAtPercentile(sorted, p)
			if got > v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(100, 1.0)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	if h.Count() != 1000 {
		t.Errorf("Count = %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-49.5) > 1e-9 {
		t.Errorf("Mean = %v", m)
	}
	q50 := h.Quantile(0.5)
	if q50 < 45 || q50 > 55 {
		t.Errorf("Quantile(0.5) = %v, want ~50", q50)
	}
	// Overflow goes to the last bucket.
	h2 := NewHistogram(10, 1.0)
	h2.Add(1e9)
	if h2.Quantile(0.5) < 9 {
		t.Errorf("overflow quantile = %v", h2.Quantile(0.5))
	}
	if (&Histogram{}).Mean() != 0 {
		t.Error("empty histogram mean should be 0")
	}
}

func TestWriteAmpUnderflowGuard(t *testing.T) {
	// flashWrites < userWrites must clamp to 0, not wrap the unsigned
	// subtraction to ~1.8e19 (seen with interval deltas taken before any
	// GC/meta writes were counted, and with Trim-heavy accounting).
	cases := []struct{ flash, user uint64 }{
		{99, 100},
		{0, 100},
		{0, 1},
		{math.MaxUint64 - 1, math.MaxUint64},
	}
	for _, c := range cases {
		if got := WriteAmp(c.flash, c.user); got != 0 {
			t.Errorf("WriteAmp(%d,%d) = %v, want 0", c.flash, c.user, got)
		}
	}
	if got := WriteAmp(math.MaxUint64, math.MaxUint64-1); got < 0 {
		t.Errorf("WriteAmp(max,max-1) = %v, want >= 0", got)
	}
}

func TestHistogramSingleBucketQuantile(t *testing.T) {
	h := NewHistogram(1, 10.0)
	for _, v := range []float64{1, 2, 3} {
		h.Add(v)
	}
	// Every quantile lands in the lone bucket; the midpoint estimate (5.0)
	// must be clamped into the observed [1, 3] range.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 1 || got > 3 {
			t.Errorf("Quantile(%v) = %v, want within observed [1,3]", q, got)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(10, 1.0)
	h.Add(0.5)
	h.Add(1e9) // far past the histogram range: overflow bucket
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	// The high quantile falls in the overflow bucket, whose midpoint (9.5)
	// wildly underestimates; clamping reports the observed max instead.
	if got := h.Quantile(0.99); got != 1e9 {
		t.Errorf("Quantile(0.99) = %v, want observed max 1e9", got)
	}
	if got := h.Quantile(0); got < 0.5 || got > 1e9 {
		t.Errorf("Quantile(0) = %v outside observed range", got)
	}
}

// Quantile(0) must report the observed minimum, symmetric with the
// final-bucket → observed-max rule; a clamped bucket midpoint (the old
// behaviour) overstates the minimum whenever the first sample sits below its
// bucket's midpoint.
func TestHistogramQuantileZeroReturnsMin(t *testing.T) {
	h := NewHistogram(10, 1.0)
	h.Add(0.2)
	h.Add(5.5)
	if got := h.Quantile(0); got != 0.2 {
		t.Errorf("Quantile(0) = %v, want observed min 0.2 (not the 0.5 bucket midpoint)", got)
	}
	if got := h.Quantile(1); got != 5.5 {
		t.Errorf("Quantile(1) = %v, want observed max 5.5", got)
	}
	// A negative observed minimum (clamped into bucket 0 for counting) must
	// still be reported exactly.
	h2 := NewHistogram(10, 1.0)
	h2.Add(-4)
	h2.Add(4)
	if got := h2.Quantile(0); got != -4 {
		t.Errorf("Quantile(0) = %v, want observed min -4", got)
	}
}

func TestHistogramNaNAndNegative(t *testing.T) {
	h := NewHistogram(10, 1.0)
	h.Add(math.NaN()) // dropped: must not poison count, sum or extrema
	if h.Count() != 0 {
		t.Fatalf("NaN was counted: Count = %d", h.Count())
	}
	h.Add(2)
	if m := h.Mean(); math.IsNaN(m) || m != 2 {
		t.Errorf("Mean after NaN+2 = %v, want 2", m)
	}
	// Negative samples clamp into the first bucket but keep their value in
	// the running sum.
	h2 := NewHistogram(10, 1.0)
	h2.Add(-4)
	h2.Add(4)
	if h2.Count() != 2 {
		t.Fatalf("Count = %d", h2.Count())
	}
	if m := h2.Mean(); m != 0 {
		t.Errorf("Mean = %v, want 0", m)
	}
	if q := h2.Quantile(0); q < -4 || q > 4 {
		t.Errorf("Quantile(0) = %v outside observed [-4,4]", q)
	}
}
