// Package metrics provides the measurement primitives used across the PHFTL
// reproduction: write-amplification accounting, binary-classification scores
// (Table I), percentile estimation for latency distributions (Figure 7), and
// the lifetime-CDF inflection-point computation PHFTL uses to seed its
// classification threshold (Figure 2a).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// WriteAmp computes write amplification as defined in the paper, §V-B:
// WA = (F - U) / U where F is the flash write size and U the user write size
// (both in pages). A value of 0 means no amplification; 1.0 means flash
// writes were twice the user writes. Returns 0 when no user writes occurred,
// and clamps to 0 when flashWrites < userWrites — the unsigned subtraction
// would otherwise wrap to an astronomical value (possible on Trim-heavy
// accounting or interval deltas taken before any GC/meta writes landed).
func WriteAmp(flashWrites, userWrites uint64) float64 {
	if userWrites == 0 || flashWrites < userWrites {
		return 0
	}
	return float64(flashWrites-userWrites) / float64(userWrites)
}

// Confusion is a binary-classification confusion matrix. The "positive"
// class is short-living, following Table I.
type Confusion struct {
	TP, FP, TN, FN uint64
}

// Add records one prediction/ground-truth pair.
func (c *Confusion) Add(predictedPositive, actualPositive bool) {
	switch {
	case predictedPositive && actualPositive:
		c.TP++
	case predictedPositive && !actualPositive:
		c.FP++
	case !predictedPositive && actualPositive:
		c.FN++
	default:
		c.TN++
	}
}

// Total returns the number of recorded samples.
func (c *Confusion) Total() uint64 { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/total, or 0 with no samples.
func (c *Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// Precision returns TP/(TP+FP), or 0 when no positive predictions exist.
func (c *Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when no positive samples exist.
func (c *Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String formats the four Table I metrics.
func (c *Confusion) String() string {
	return fmt.Sprintf("acc=%.3f prec=%.3f rec=%.3f f1=%.3f (n=%d)",
		c.Accuracy(), c.Precision(), c.Recall(), c.F1(), c.Total())
}

// Percentiles computes the given percentiles (each in [0,100]) of samples
// using linear interpolation between the two closest ranks (the same
// definition as numpy's default): rank = p/100·(n−1), and a fractional rank
// blends the two neighbouring order statistics. This is NOT nearest-rank —
// e.g. the 25th percentile of {1,2,3,4} is 1.75, not 2 — and the checked-in
// golden results depend on the interpolating behaviour, so it must not be
// "fixed" to nearest-rank. The input slice is sorted in place. Returns nil
// for empty input.
func Percentiles(samples []float64, pcts ...float64) []float64 {
	if len(samples) == 0 {
		return nil
	}
	sort.Float64s(samples)
	out := make([]float64, len(pcts))
	for i, p := range pcts {
		out[i] = percentileSorted(samples, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// samples.
func StdDev(samples []float64) float64 {
	if len(samples) < 2 {
		return 0
	}
	m := Mean(samples)
	sum := 0.0
	for _, v := range samples {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(samples)))
}

// InflectionPoint implements PHFTL's initial-threshold selection (§III-B,
// Figure 2a): sort the lifetime samples to obtain coordinates (L_i, i); the
// sample whose coordinate has the maximum distance from the straight line
// connecting (L_1, 1) and (L_N, N) is the inflection point of the empirical
// CDF — the entrance to the distribution's long tail.
//
// The input is sorted in place. Returns the selected lifetime value and its
// index in the sorted slice. For fewer than 3 samples it returns the median.
func InflectionPoint(lifetimes []float64) (value float64, index int) {
	n := len(lifetimes)
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(lifetimes)
	if n < 3 {
		return lifetimes[n/2], n / 2
	}
	// Line through (x1,y1)=(L_0, 0) and (x2,y2)=(L_{n-1}, n-1).
	x1, y1 := lifetimes[0], 0.0
	x2, y2 := lifetimes[n-1], float64(n-1)
	dx, dy := x2-x1, y2-y1
	norm := math.Hypot(dx, dy)
	if norm == 0 {
		return lifetimes[n/2], n / 2
	}
	best, bestIdx := -1.0, n/2
	for i := 1; i < n-1; i++ {
		// Perpendicular distance from (L_i, i) to the line.
		d := math.Abs(dy*lifetimes[i]-dx*float64(i)+x2*y1-y2*x1) / norm
		if d > best {
			best = d
			bestIdx = i
		}
	}
	return lifetimes[bestIdx], bestIdx
}

// PercentileOfValue returns the percentile position (0-100) of value in the
// sorted sample set: the fraction of samples strictly below value. The input
// must already be sorted ascending.
func PercentileOfValue(sorted []float64, value float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(sorted, value)
	return float64(idx) / float64(len(sorted)) * 100
}

// ValueAtPercentile returns the sample at percentile p (0-100, clamped) of
// the sorted input.
func ValueAtPercentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return percentileSorted(sorted, clamp(p, 0, 100))
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Histogram is a fixed-bucket histogram over [0, max) with overflow counted
// in the last bucket, used for latency summaries where storing every sample
// would be too costly.
type Histogram struct {
	buckets []uint64
	width   float64
	count   uint64
	sum     float64
	minV    float64
	maxV    float64
}

// NewHistogram creates a histogram with n buckets of the given width.
func NewHistogram(n int, width float64) *Histogram {
	return &Histogram{
		buckets: make([]uint64, n),
		width:   width,
		minV:    math.Inf(1),
		maxV:    math.Inf(-1),
	}
}

// Add records one sample. NaN samples are dropped (a NaN would poison the
// running sum and min/max); negative samples are clamped into the first
// bucket but keep their exact value in the sum and extrema.
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := int(v / h.width)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.count++
	h.sum += v
	if v < h.minV {
		h.minV = v
	}
	if v > h.maxV {
		h.maxV = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact (unbucketed) sum of the recorded samples.
func (h *Histogram) Sum() float64 { return h.sum }

// BucketWidth returns the width of each bucket.
func (h *Histogram) BucketWidth() float64 { return h.width }

// AppendBuckets appends the per-bucket counts (not cumulative) to dst and
// returns it. Bucket i covers [i·width, (i+1)·width); the final bucket also
// absorbs every overflow sample. Exposition layers (the Prometheus /metrics
// renderer) turn these into cumulative le-bound counts.
func (h *Histogram) AppendBuckets(dst []uint64) []uint64 {
	return append(dst, h.buckets...)
}

// Mean returns the mean of the recorded samples (exact, not bucketed).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) from bucket
// midpoints, clamped to the observed [min, max] so coarse buckets never
// report a value outside the data. The extremes report exact observations
// rather than bucket estimates: q=0 returns the observed minimum, and a
// quantile landing in the final bucket reports the observed max — that
// bucket also absorbs every overflow sample, so its midpoint is meaningless.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.minV
	}
	target := uint64(clamp(q, 0, 1) * float64(h.count))
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			if i == len(h.buckets)-1 {
				return h.maxV
			}
			return clamp((float64(i)+0.5)*h.width, h.minV, h.maxV)
		}
	}
	return h.maxV
}
