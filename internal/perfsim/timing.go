// Package perfsim models the timing behaviour of the Cosmos+ OpenSSD
// prototype (PHFTL-hw, §IV/§V-D): a dual-core controller in front of
// multi-die NAND flash. It reproduces the two hardware experiments:
//
//   - Figure 6 (write-latency microbenchmark): fio-style writes confined to
//     the device RAM buffer, comparing the stock FTL, PHFTL with prediction
//     on the critical path ("sync"), and PHFTL with interleaved prediction
//     and decoupled command completion ("off-path").
//
//   - Figure 7 (trace replay): phase-1 closed-loop bandwidth over 20 drive
//     writes and phase-2 open-loop latency percentiles, where GC activity on
//     the dies is what differentiates the schemes.
//
// The model charges the constants measured in the paper (≈9 µs per
// prediction after SIMD tuning and 8-bit quantization) on top of a queueing
// model of dies, DMA and controller cores.
package perfsim

// Timing holds the service-time constants of the modeled device, in
// nanoseconds (and bytes/ns for DMA bandwidth).
type Timing struct {
	// Flash array.
	ReadNS    int64 // page read
	ProgramNS int64 // page program
	EraseNS   int64 // block erase (charged per superblock erase per die)

	// Controller.
	CmdNS         int64   // NVMe command handling on the I/O core
	CompletionNS  int64   // completion posting
	DMABytesPerNS float64 // host<->device payload bandwidth
	PredictNS     int64   // one Page Classifier prediction (paper: ~9 µs)
	SyncNS        int64   // cross-core handoff overhead for off-path mode

	// NoiseFrac adds uniform ±NoiseFrac jitter to per-request latency
	// (electrical and firmware variation; gives Figure 6 its error bars).
	NoiseFrac float64
}

// DefaultTiming mirrors the OpenSSD-class constants: TLC-like flash, PCIe
// DMA around 2 GB/s, 9 µs predictions.
func DefaultTiming() Timing {
	return Timing{
		ReadNS:        60_000,
		ProgramNS:     600_000,
		EraseNS:       3_000_000,
		CmdNS:         2_000,
		CompletionNS:  500,
		DMABytesPerNS: 2.5,
		PredictNS:     9_000,
		SyncNS:        500,
		NoiseFrac:     0.05,
	}
}

// PredPlacement selects where Page Classifier predictions run relative to
// the I/O path (Figure 6's three bars).
type PredPlacement int

const (
	// PredNone is the stock FTL: no predictions.
	PredNone PredPlacement = iota
	// PredSync runs predictions on the I/O core, on the critical path
	// (PHFTL-hw (sync) in Figure 6).
	PredSync
	// PredOffPath runs predictions on a dedicated core, interleaved with
	// the payload DMA, with command completion decoupled from prediction
	// (PHFTL-hw in Figure 6).
	PredOffPath
)

// String names the placement as in Figure 6.
func (p PredPlacement) String() string {
	switch p {
	case PredNone:
		return "Stock"
	case PredSync:
		return "PHFTL-hw (sync)"
	case PredOffPath:
		return "PHFTL-hw"
	default:
		return "PredPlacement(?)"
	}
}
