package perfsim

import (
	"math"
	"testing"

	"github.com/phftl/phftl/internal/nand"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/trace"
	"github.com/phftl/phftl/internal/workload"
)

func TestMicrobenchStockLatencyComposition(t *testing.T) {
	tm := DefaultTiming()
	tm.NoiseFrac = 0 // deterministic
	res := WriteLatencyMicrobench(tm, PredNone, 4096, 16384, 100, 1)
	want := float64(tm.CmdNS) + 4096/tm.DMABytesPerNS + float64(tm.CompletionNS)
	if math.Abs(res.MeanNS-want) > 1e-6 {
		t.Errorf("stock 4K latency = %v, want %v", res.MeanNS, want)
	}
	if res.StdDevNS > 1e-6 {
		t.Errorf("noise-free stddev = %v", res.StdDevNS)
	}
}

func TestMicrobenchSyncPenalty(t *testing.T) {
	tm := DefaultTiming()
	tm.NoiseFrac = 0
	for _, sz := range Fig6RequestSizes {
		stock := WriteLatencyMicrobench(tm, PredNone, sz, 16384, 10, 1)
		sync := WriteLatencyMicrobench(tm, PredSync, sz, 16384, 10, 1)
		pages := (sz + 16383) / 16384
		wantDelta := float64(pages) * float64(tm.PredictNS)
		if got := sync.MeanNS - stock.MeanNS; math.Abs(got-wantDelta) > 1e-6 {
			t.Errorf("size %d: sync penalty = %v, want %v", sz, got, wantDelta)
		}
	}
}

func TestMicrobenchOffPathNearStock(t *testing.T) {
	// Figure 6's claim: off-path prediction restores latency to roughly the
	// stock level (within a few percent), while sync inflates it massively
	// at small sizes; and off-path shows more variance than stock.
	tm := DefaultTiming()
	var sumStock, sumSync, sumOff float64
	for _, sz := range Fig6RequestSizes {
		stock := WriteLatencyMicrobench(tm, PredNone, sz, 16384, 2000, 1)
		sync := WriteLatencyMicrobench(tm, PredSync, sz, 16384, 2000, 2)
		off := WriteLatencyMicrobench(tm, PredOffPath, sz, 16384, 2000, 3)
		if off.MeanNS > stock.MeanNS*1.25 {
			t.Errorf("size %d: off-path %.0f too far above stock %.0f", sz, off.MeanNS, stock.MeanNS)
		}
		if sync.MeanNS <= off.MeanNS {
			t.Errorf("size %d: sync %.0f not above off-path %.0f", sz, sync.MeanNS, off.MeanNS)
		}
		sumStock += stock.MeanNS
		sumSync += sync.MeanNS
		sumOff += off.MeanNS
	}
	// Average inflation of sync mode should be large (paper: +139.7%).
	if infl := sumSync/sumStock - 1; infl < 0.5 {
		t.Errorf("sync inflation = %.2f, want > 0.5", infl)
	}
	if infl := sumOff/sumStock - 1; infl > 0.10 {
		t.Errorf("off-path inflation = %.2f, want <= 0.10", infl)
	}
}

func TestRunFig6Shape(t *testing.T) {
	res := RunFig6(DefaultTiming(), 16384, 50, 1)
	if len(res) != 3*len(Fig6RequestSizes) {
		t.Fatalf("cells = %d", len(res))
	}
	for _, r := range res {
		if r.MeanNS <= 0 {
			t.Errorf("%v %d: mean %v", r.Placement, r.ReqBytes, r.MeanNS)
		}
	}
}

func machineGeo() nand.Geometry {
	return nand.Geometry{PageSize: 16384, OOBSize: 64, PagesPerBlock: 16, BlocksPerDie: 200, Dies: 4}
}

func TestMachineSingleWriteLatency(t *testing.T) {
	tm := DefaultTiming()
	m, err := NewMachine(sim.SchemeBase, machineGeo(), tm, nil)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := m.WriteRequest(0, []nand.LPN{0}, false)
	if err != nil {
		t.Fatal(err)
	}
	want := tm.CmdNS + int64(float64(16384)/tm.DMABytesPerNS) + tm.ProgramNS + tm.CompletionNS
	if lat != want {
		t.Errorf("latency = %d, want %d", lat, want)
	}
}

func TestMachineQueueingOnSameDie(t *testing.T) {
	// Striped allocation puts consecutive pages on different dies, so a
	// 4-page write overlaps; writing 8 pages makes each die serve 2 programs
	// and the request latency must include the second round.
	tm := DefaultTiming()
	m, err := NewMachine(sim.SchemeBase, machineGeo(), tm, nil)
	if err != nil {
		t.Fatal(err)
	}
	lpns := make([]nand.LPN, 8)
	for i := range lpns {
		lpns[i] = nand.LPN(i)
	}
	lat, err := m.WriteRequest(0, lpns, true)
	if err != nil {
		t.Fatal(err)
	}
	if lat < 2*tm.ProgramNS {
		t.Errorf("8-page latency %d does not include two program rounds (%d)", lat, 2*tm.ProgramNS)
	}
}

func TestMachinePHFTLChargesPredictions(t *testing.T) {
	tm := DefaultTiming()
	mP, err := NewMachine(sim.SchemePHFTL, machineGeo(), tm, nil)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := mP.WriteRequest(0, []nand.LPN{0}, false)
	if err != nil {
		t.Fatal(err)
	}
	// The single prediction overlaps the DMA but the flush waits for it:
	// latency = cmd + max(dma, predict) + program + completion.
	dma := int64(float64(16384) / tm.DMABytesPerNS)
	pred := tm.PredictNS
	overlap := dma
	if pred > overlap {
		overlap = pred
	}
	want := tm.CmdNS + overlap + tm.ProgramNS + tm.CompletionNS
	if lat != want {
		t.Errorf("phftl latency = %d, want %d", lat, want)
	}
}

// TestMachineSamplesCarryLatencyPercentiles checks the sampler wiring: a
// timed run's samples must report per-interval P50/P99 write latency, the
// accumulator must drain at each snapshot, and percentiles must be ordered.
func TestMachineSamplesCarryLatencyPercentiles(t *testing.T) {
	tm := DefaultTiming()
	m, err := NewMachine(sim.SchemeBase, machineGeo(), tm, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := sim.Observe(m.In, sim.ObserveConfig{SampleEvery: 64})
	m.Observe(o)
	exported := m.In.FTL.ExportedPages()
	arrival := int64(0)
	for i := 0; i < 1024; i++ {
		lat, err := m.WriteRequest(arrival, []nand.LPN{nand.LPN(i % exported)}, false)
		if err != nil {
			t.Fatal(err)
		}
		arrival += lat
	}
	o.Finish(m.In.FTL.Clock())
	samples := o.Sampler.Series()
	if len(samples) < 2 {
		t.Fatalf("got %d samples, want >= 2", len(samples))
	}
	for i, s := range samples {
		if math.IsNaN(s.LatencyP50MS) || math.IsNaN(s.LatencyP99MS) {
			t.Fatalf("sample %d (clock %d) has NaN latency in a timed run", i, s.Clock)
		}
		if s.LatencyP50MS <= 0 || s.LatencyP99MS < s.LatencyP50MS {
			t.Errorf("sample %d: p50 %v p99 %v not positive/ordered", i, s.LatencyP50MS, s.LatencyP99MS)
		}
	}
	if len(m.intervalLats) != 0 {
		t.Errorf("interval accumulator not drained: %d entries", len(m.intervalLats))
	}
}

func TestMachineReadLatency(t *testing.T) {
	tm := DefaultTiming()
	m, err := NewMachine(sim.SchemeBase, machineGeo(), tm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteRequest(0, []nand.LPN{5}, false); err != nil {
		t.Fatal(err)
	}
	lat, err := m.ReadRequest(1e9, []nand.LPN{5})
	if err != nil {
		t.Fatal(err)
	}
	dma := int64(float64(16384) / tm.DMABytesPerNS)
	want := tm.CmdNS + tm.ReadNS + dma + tm.CompletionNS
	if lat != want {
		t.Errorf("read latency = %d, want %d", lat, want)
	}
	// Unmapped read: no flash op.
	lat, err = m.ReadRequest(2e9, []nand.LPN{100})
	if err != nil {
		t.Fatal(err)
	}
	if lat != tm.CmdNS+dma+tm.CompletionNS {
		t.Errorf("unmapped read latency = %d", lat)
	}
}

func TestPhase1BandwidthImprovesForPHFTLOnChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-drive-write timing replay")
	}
	// A churn-heavy profile: after the drive fills, GC dominates; PHFTL's
	// lower WA must translate into higher steady-state bandwidth than the
	// stock FTL (Figure 7 top).
	p, ok := workload.ProfileByID("#144")
	if !ok {
		t.Fatal("no profile")
	}
	p.ExportedPages = 8192
	geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
	run := func(scheme sim.Scheme) []BandwidthPoint {
		m, err := NewMachine(scheme, geo, DefaultTiming(), nil)
		if err != nil {
			t.Fatal(err)
		}
		gen := p.NewGenerator()
		recs := gen.Records(8 * p.ExportedPages)
		pts, err := m.RunPhase1(recs, p.PageSize, 32)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	stock := run(sim.SchemeBase)
	phftl := run(sim.SchemePHFTL)
	if len(stock) < 6 || len(phftl) < 6 {
		t.Fatalf("segments: stock %d, phftl %d", len(stock), len(phftl))
	}
	// Compare the last segments (steady state).
	sLast := stock[len(stock)-1].MBPerSec
	pLast := phftl[len(phftl)-1].MBPerSec
	t.Logf("steady-state bandwidth: stock %.1f MB/s vs phftl %.1f MB/s", sLast, pLast)
	if pLast <= sLast {
		t.Errorf("PHFTL steady-state bandwidth %.1f <= stock %.1f", pLast, sLast)
	}
	for _, pt := range append(stock, phftl...) {
		if pt.MBPerSec <= 0 {
			t.Errorf("non-positive bandwidth point %+v", pt)
		}
	}
}

func TestPhase2LatencyDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("timing replay")
	}
	p, _ := workload.ProfileByID("#144")
	p.ExportedPages = 4096
	p.InterArrivalUS = 800
	geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
	m, err := NewMachine(sim.SchemeBase, geo, DefaultTiming(), nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := p.NewGenerator()
	// Load phase then a timed tail.
	load := gen.Records(3 * p.ExportedPages)
	if _, err := m.RunPhase1(load, p.PageSize, 32); err != nil {
		t.Fatal(err)
	}
	tail := gen.Records(p.ExportedPages / 2)
	stats, err := m.RunPhase2(tail, p.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if stats.P50 <= 0 || stats.Avg <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if !(stats.P50 <= stats.P90 && stats.P90 <= stats.P99 && stats.P99 <= stats.P995 && stats.P995 <= stats.P999) {
		t.Fatalf("percentiles not monotone: %+v", stats)
	}
}

func TestExpandRequests(t *testing.T) {
	recs := []trace.Record{
		{Op: trace.OpWrite, Offset: 0, Size: 16384 * 2},
		{Op: trace.OpWrite, Offset: 16384 * 2, Size: 16384}, // sequential
		{Op: trace.OpRead, Offset: 0, Size: 16384},
	}
	reqs := expandRequests(recs, 16384, 100)
	if len(reqs) != 3 {
		t.Fatalf("reqs = %d", len(reqs))
	}
	if len(reqs[0].lpns) != 2 || reqs[0].seq {
		t.Errorf("req0 = %+v", reqs[0])
	}
	if !reqs[1].seq {
		t.Error("req1 should be sequential")
	}
	if reqs[2].write {
		t.Error("req2 should be a read")
	}
}
