package perfsim

import (
	"fmt"
	"math"

	"github.com/phftl/phftl/internal/core"
	"github.com/phftl/phftl/internal/ftl"
	"github.com/phftl/phftl/internal/metrics"
	"github.com/phftl/phftl/internal/nand"
	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/trace"
)

type pendingOp struct {
	kind nand.OpKind
	die  int
}

// Machine couples a functional FTL instance to the timing model: every flash
// operation the FTL performs is charged to its die's queue, predictions are
// charged to the dedicated classifier core, and request latencies emerge
// from the resulting contention (GC bursts block host operations on the same
// dies — the mechanism behind Figure 7's tail latencies).
type Machine struct {
	In     *sim.Instance
	timing Timing
	geo    nand.Geometry

	dieFree  []int64 // next instant each die is idle
	dieBusy  []int64 // cumulative service charged per die
	coreFree int64   // classifier core (PHFTL only)

	pending []pendingOp

	// rec/sampler, when non-nil (installed by Observe), capture
	// die-contention stall events and per-request gauge samples.
	rec         obs.Recorder
	sampler     *obs.Sampler
	lastArrival int64

	// intervalLats accumulates write-request latencies (ms) since the last
	// sample; the Observation's Latency hook drains it at each snapshot.
	intervalLats []float64
}

// NewMachine builds a scheme over a hooked device. For SchemePHFTL the
// classifier core is modeled; baselines skip prediction entirely.
func NewMachine(scheme sim.Scheme, geo nand.Geometry, t Timing, opts *core.Options) (*Machine, error) {
	dev, err := nand.NewDevice(geo)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		timing:  t,
		geo:     geo,
		dieFree: make([]int64, geo.Dies),
		dieBusy: make([]int64, geo.Dies),
	}
	dev.SetOpHook(func(kind nand.OpKind, p nand.PPN) {
		m.pending = append(m.pending, pendingOp{kind: kind, die: geo.DieOf(p)})
	})
	in, err := sim.BuildWithDevice(scheme, dev, geo, opts)
	if err != nil {
		return nil, err
	}
	m.In = in
	return m, nil
}

// Observe wires the machine into an instance observation (created with
// sim.Observe on m.In): host writes delayed by busy dies emit
// obs.KindWriteStall events, each request ticks the sampler, and samples
// gain the busy-die count as their queue-depth gauge plus the interval's
// P50/P99 write-request latencies.
func (m *Machine) Observe(o *sim.Observation) {
	m.rec = o.Rec
	m.sampler = o.Sampler
	o.QueueDepth = func() float64 {
		busy := 0
		for _, f := range m.dieFree {
			if f > m.lastArrival {
				busy++
			}
		}
		return float64(busy)
	}
	o.Latency = func() (p50, p99 float64) {
		if len(m.intervalLats) == 0 {
			return math.NaN(), math.NaN()
		}
		p := metrics.Percentiles(m.intervalLats, 50, 99)
		m.intervalLats = m.intervalLats[:0]
		return p[0], p[1]
	}
}

func (m *Machine) service(kind nand.OpKind) int64 {
	switch kind {
	case nand.OpRead:
		return m.timing.ReadNS
	case nand.OpProgram:
		return m.timing.ProgramNS
	default:
		return m.timing.EraseNS
	}
}

// WriteRequest runs one multi-page write arriving at arrivalNS through the
// FTL and the timing model, returning the request latency in ns. The
// command completes when every host data page has been programmed (the GC
// and metadata work it triggered keeps the dies busy afterwards, delaying
// future requests instead).
func (m *Machine) WriteRequest(arrivalNS int64, lpns []nand.LPN, seq bool) (int64, error) {
	m.lastArrival = arrivalNS
	start := arrivalNS + m.timing.CmdNS
	dmaDone := start + int64(float64(len(lpns)*m.geo.PageSize)/m.timing.DMABytesPerNS)
	hostFinish := dmaDone
	for _, lpn := range lpns {
		// Off-path prediction: runs on the classifier core as soon as the
		// command arrives; the flash flush of this page waits for its
		// prediction result (§III-C, decoupled completion).
		var predDone int64
		if m.In.PHFTL != nil {
			s := maxI64(start, m.coreFree)
			m.coreFree = s + m.timing.PredictNS
			predDone = m.coreFree
		}
		m.pending = m.pending[:0]
		if err := m.In.FTL.Write(ftl.UserWrite{LPN: lpn, ReqPages: len(lpns), Seq: seq}); err != nil {
			return 0, err
		}
		hostProgramSeen := false
		for _, op := range m.pending {
			svc := m.service(op.kind)
			s := maxI64(dmaDone, m.dieFree[op.die])
			if !hostProgramSeen && op.kind == nand.OpProgram {
				// The host page had to wait for its die: a GC or metadata
				// burst is blocking the critical path (Figure 7's tails).
				if wait := m.dieFree[op.die] - dmaDone; wait > 0 && m.rec != nil {
					busy := 0
					for _, f := range m.dieFree {
						if f > dmaDone {
							busy++
						}
					}
					m.rec.Record(obs.Event{
						Kind: obs.KindWriteStall, Clock: m.In.FTL.Clock(),
						SB: -1, Stream: -1, GCClass: -1,
						A: int64(busy), B: 1, C: wait,
					})
				}
				// The first program of this FTL call is the host page.
				if predDone > s {
					s = predDone
				}
			}
			f := s + svc
			m.dieFree[op.die] = f
			m.dieBusy[op.die] += svc
			if !hostProgramSeen && op.kind == nand.OpProgram {
				hostProgramSeen = true
				if f > hostFinish {
					hostFinish = f
				}
			}
		}
	}
	lat := hostFinish + m.timing.CompletionNS - arrivalNS
	if m.sampler != nil {
		// Record before Tick so a sample due at this clock includes this
		// request in its interval.
		m.intervalLats = append(m.intervalLats, float64(lat)/1e6)
		m.sampler.Tick(m.In.FTL.Clock())
	}
	return lat, nil
}

// ReadRequest runs one multi-page read arriving at arrivalNS.
func (m *Machine) ReadRequest(arrivalNS int64, lpns []nand.LPN) (int64, error) {
	start := arrivalNS + m.timing.CmdNS
	finish := start
	for _, lpn := range lpns {
		m.pending = m.pending[:0]
		if err := m.In.FTL.Read(lpn, len(lpns)); err != nil && err != ftl.ErrUnmapped {
			return 0, err
		}
		for _, op := range m.pending {
			svc := m.service(op.kind)
			s := maxI64(start, m.dieFree[op.die])
			f := s + svc
			m.dieFree[op.die] = f
			m.dieBusy[op.die] += svc
			if f > finish {
				finish = f
			}
		}
	}
	dma := int64(float64(len(lpns)*m.geo.PageSize) / m.timing.DMABytesPerNS)
	return finish + dma + m.timing.CompletionNS - arrivalNS, nil
}

// Elapsed returns the device-time frontier (the busiest die's clock).
func (m *Machine) Elapsed() int64 {
	var e int64
	for _, v := range m.dieFree {
		if v > e {
			e = v
		}
	}
	return e
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// request is a record expanded to page lists.
type request struct {
	write bool
	seq   bool
	lpns  []nand.LPN
}

func expandRequests(records []trace.Record, pageSize, exported int) []request {
	var out []request
	var lastWriteEnd, lastReadEnd uint64
	for _, r := range records {
		if r.Size == 0 {
			continue
		}
		first := r.Offset / uint64(pageSize)
		last := (r.Offset + uint64(r.Size) - 1) / uint64(pageSize)
		req := request{write: r.Op == trace.OpWrite}
		if req.write {
			req.seq = r.Offset == lastWriteEnd && lastWriteEnd != 0
			lastWriteEnd = r.Offset + uint64(r.Size)
		} else {
			req.seq = r.Offset == lastReadEnd && lastReadEnd != 0
			lastReadEnd = r.Offset + uint64(r.Size)
		}
		for p := first; p <= last; p++ {
			req.lpns = append(req.lpns, nand.LPN(p%uint64(exported)))
		}
		out = append(out, req)
	}
	return out
}

// BandwidthPoint is one phase-1 sample: average write bandwidth during one
// drive write.
type BandwidthPoint struct {
	DriveWrite int
	MBPerSec   float64
}

// RunPhase1 stress-loads the records through the machine with a closed-loop
// worker pool (the paper uses 32 workers) and reports the write bandwidth of
// each drive-write segment (Figure 7, top).
func (m *Machine) RunPhase1(records []trace.Record, pageSize, workers int) ([]BandwidthPoint, error) {
	if workers < 1 {
		workers = 1
	}
	exported := m.In.FTL.ExportedPages()
	reqs := expandRequests(records, pageSize, exported)
	workerFree := make([]int64, workers)
	var points []BandwidthPoint
	segPages := exported // one drive write per segment
	pagesInSeg := 0
	var segStart int64
	for _, rq := range reqs {
		// Next free worker issues the request.
		wi := 0
		for i := 1; i < workers; i++ {
			if workerFree[i] < workerFree[wi] {
				wi = i
			}
		}
		arrival := workerFree[wi]
		var lat int64
		var err error
		if rq.write {
			lat, err = m.WriteRequest(arrival, rq.lpns, rq.seq)
		} else {
			lat, err = m.ReadRequest(arrival, rq.lpns)
		}
		if err != nil {
			return nil, fmt.Errorf("perfsim: phase1: %w", err)
		}
		workerFree[wi] = arrival + lat
		if rq.write {
			pagesInSeg += len(rq.lpns)
			if pagesInSeg >= segPages {
				end := m.Elapsed()
				sec := float64(end-segStart) / 1e9
				if sec > 0 {
					points = append(points, BandwidthPoint{
						DriveWrite: len(points) + 1,
						MBPerSec:   float64(pagesInSeg*pageSize) / (1 << 20) / sec,
					})
				}
				segStart = end
				pagesInSeg = 0
			}
		}
	}
	return points, nil
}

// LatencyStats is the phase-2 distribution (Figure 7, bottom), in
// milliseconds.
type LatencyStats struct {
	P50, P90, P99, P995, P999, Avg float64
}

// RunPhase2 replays the records open-loop at their recorded timestamps and
// returns the write-latency distribution.
func (m *Machine) RunPhase2(records []trace.Record, pageSize int) (LatencyStats, error) {
	exported := m.In.FTL.ExportedPages()
	reqs := expandRequests(records, pageSize, exported)
	base := m.Elapsed() // continue after whatever load preceded phase 2
	var t0 uint64
	if len(records) > 0 {
		t0 = records[0].Time
	}
	var lats []float64
	ri := 0
	for _, r := range records {
		if r.Size == 0 {
			continue
		}
		rq := reqs[ri]
		ri++
		arrival := base + int64(r.Time-t0)*1000
		var lat int64
		var err error
		if rq.write {
			lat, err = m.WriteRequest(arrival, rq.lpns, rq.seq)
		} else {
			lat, err = m.ReadRequest(arrival, rq.lpns)
		}
		if err != nil {
			return LatencyStats{}, fmt.Errorf("perfsim: phase2: %w", err)
		}
		if rq.write {
			lats = append(lats, float64(lat)/1e6)
		}
	}
	if len(lats) == 0 {
		return LatencyStats{}, fmt.Errorf("perfsim: phase2: no writes in trace")
	}
	p := metrics.Percentiles(lats, 50, 90, 99, 99.5, 99.9)
	return LatencyStats{
		P50: p[0], P90: p[1], P99: p[2], P995: p[3], P999: p[4],
		Avg: metrics.Mean(lats),
	}, nil
}
