package perfsim

import (
	"math/rand"

	"github.com/phftl/phftl/internal/metrics"
)

// MicrobenchResult summarizes one (placement, request size) cell of
// Figure 6.
type MicrobenchResult struct {
	Placement PredPlacement
	ReqBytes  int
	MeanNS    float64
	StdDevNS  float64
}

// WriteLatencyMicrobench reproduces the Figure 6 experiment: n writes of
// reqBytes each, offsets confined to the device RAM buffer so no flash
// program is on the path, under the given prediction placement.
//
// Per request, the modeled path is:
//
//	stock:    cmd + DMA + completion
//	sync:     cmd + pages·predict + DMA + completion   (prediction blocks)
//	off-path: cmd + max(DMA, residual prediction backlog) + sync + completion
//
// Off-path prediction runs on the second core concurrently with the payload
// DMA; because completion is decoupled from prediction, a backlog on the
// prediction core never blocks the host — it only adds occasional
// synchronization jitter (the paper notes higher standard deviation from
// cross-core sharing).
func WriteLatencyMicrobench(t Timing, place PredPlacement, reqBytes, pageSize, n int, seed int64) MicrobenchResult {
	rng := rand.New(rand.NewSource(seed))
	pages := (reqBytes + pageSize - 1) / pageSize
	if pages < 1 {
		pages = 1
	}
	dma := float64(reqBytes) / t.DMABytesPerNS
	lat := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := float64(t.CmdNS) + dma + float64(t.CompletionNS)
		switch place {
		case PredSync:
			v += float64(pages) * float64(t.PredictNS)
		case PredOffPath:
			// Cross-core handoff plus occasional contention spikes from
			// cache-line sharing between the two cores.
			v += float64(t.SyncNS)
			if rng.Float64() < 0.15 {
				v += rng.Float64() * 3 * float64(t.SyncNS)
			}
		}
		v *= 1 + (rng.Float64()*2-1)*t.NoiseFrac
		lat = append(lat, v)
	}
	return MicrobenchResult{
		Placement: place,
		ReqBytes:  reqBytes,
		MeanNS:    metrics.Mean(lat),
		StdDevNS:  metrics.StdDev(lat),
	}
}

// Fig6RequestSizes are the request sizes of Figure 6.
var Fig6RequestSizes = []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// RunFig6 sweeps Figure 6: every placement at every request size.
func RunFig6(t Timing, pageSize, n int, seed int64) []MicrobenchResult {
	var out []MicrobenchResult
	for _, place := range []PredPlacement{PredNone, PredSync, PredOffPath} {
		for _, sz := range Fig6RequestSizes {
			out = append(out, WriteLatencyMicrobench(t, place, sz, pageSize, n, seed))
		}
	}
	return out
}
