// Package wear is the erase-coordinate accounting layer of the
// observability stack: it consumes block-erase notifications (the
// internal/nand erase hook) and maintains per-die and per-block erase
// counters plus the wear-evenness gauges the sampler snapshots — the
// max/mean skew ratio and the coefficient of variation of the per-block
// erase distribution. PHFTL's lifetime-class separation exists to even out
// where erases land; this package is what makes "where" observable: the
// gauges become telemetry columns, and Heatmap renders the end-of-run
// per-die wear picture for -report output.
//
// Unlike ftl.Wear (an end-of-run device scan), an Accountant is
// incremental: every counter is O(1) per erase, so the gauges are cheap
// enough to sample on the virtual-clock cadence mid-run.
package wear

import (
	"fmt"
	"math"
	"strings"
)

// Accountant tallies erases by physical coordinate. It is not safe for
// concurrent use; the simulator serializes device operations.
type Accountant struct {
	dies         int
	blocksPerDie int

	blocks    []uint32 // per-block erase counts, die-major
	dieTotals []uint64
	total     uint64
	maxBlock  uint32 // running max over blocks
	// sum of squares over per-block counts, maintained incrementally so CoV
	// is O(1): incrementing a count c to c+1 adds 2c+1.
	sumSq float64
}

// New creates an accountant for a device with the given die/block layout.
func New(dies, blocksPerDie int) *Accountant {
	if dies < 1 {
		dies = 1
	}
	if blocksPerDie < 1 {
		blocksPerDie = 1
	}
	return &Accountant{
		dies:         dies,
		blocksPerDie: blocksPerDie,
		blocks:       make([]uint32, dies*blocksPerDie),
		dieTotals:    make([]uint64, dies),
	}
}

// Dies returns the die count.
func (a *Accountant) Dies() int { return a.dies }

// BlocksPerDie returns the block count per die.
func (a *Accountant) BlocksPerDie() int { return a.blocksPerDie }

// OnErase records one block erase. Out-of-range coordinates are ignored
// (the device validates them before erasing).
func (a *Accountant) OnErase(die, blk int) {
	if die < 0 || die >= a.dies || blk < 0 || blk >= a.blocksPerDie {
		return
	}
	i := die*a.blocksPerDie + blk
	c := a.blocks[i]
	a.sumSq += float64(2*c + 1)
	c++
	a.blocks[i] = c
	if c > a.maxBlock {
		a.maxBlock = c
	}
	a.dieTotals[die]++
	a.total++
}

// Total returns the device-wide erase count.
func (a *Accountant) Total() uint64 { return a.total }

// DieTotal returns one die's erase count; out-of-range dies return 0.
func (a *Accountant) DieTotal(die int) uint64 {
	if die < 0 || die >= a.dies {
		return 0
	}
	return a.dieTotals[die]
}

// BlockCount returns one block's erase count; out-of-range coordinates
// return 0.
func (a *Accountant) BlockCount(die, blk int) uint32 {
	if die < 0 || die >= a.dies || blk < 0 || blk >= a.blocksPerDie {
		return 0
	}
	return a.blocks[die*a.blocksPerDie+blk]
}

// Skew returns the max/mean ratio of the per-block erase distribution
// (1.0 = perfectly even wear; the same quantity as ftl.WearReport's
// ImbalanceRatio, maintained incrementally). NaN before the first erase,
// matching the sinks' "gauge not applicable" convention.
func (a *Accountant) Skew() float64 {
	if a.total == 0 {
		return math.NaN()
	}
	mean := float64(a.total) / float64(len(a.blocks))
	return float64(a.maxBlock) / mean
}

// CoV returns the coefficient of variation (stddev/mean) of the per-block
// erase distribution; 0 = perfectly even. NaN before the first erase.
func (a *Accountant) CoV() float64 {
	if a.total == 0 {
		return math.NaN()
	}
	n := float64(len(a.blocks))
	mean := float64(a.total) / n
	variance := a.sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // float cancellation on perfectly even distributions
	}
	return math.Sqrt(variance) / mean
}

// heatShades maps a bucket's relative wear (vs the hottest bucket) to a
// display rune: space = untouched, then eight density steps.
var heatShades = []rune{'▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'}

// shade renders one heat cell for a mean erase count relative to the
// global maximum bucket mean.
func shade(v, max float64) rune {
	if v <= 0 {
		return ' '
	}
	idx := int(v / max * float64(len(heatShades)))
	if idx >= len(heatShades) {
		idx = len(heatShades) - 1
	}
	return heatShades[idx]
}

// Heatmap renders the per-die wear picture as aligned text: one row per
// die with its erase total, per-block min/mean/max, and a heat strip of at
// most width cells (each cell aggregates a contiguous run of blocks,
// shaded relative to the hottest cell across all dies). width < 8 is
// clamped to 8.
func (a *Accountant) Heatmap(width int) string {
	if width < 8 {
		width = 8
	}
	if width > a.blocksPerDie {
		width = a.blocksPerDie
	}
	// Bucket every die first so shading is relative to the global maximum.
	buckets := make([][]float64, a.dies)
	globalMax := 0.0
	for die := 0; die < a.dies; die++ {
		buckets[die] = make([]float64, width)
		for cell := 0; cell < width; cell++ {
			lo := cell * a.blocksPerDie / width
			hi := (cell + 1) * a.blocksPerDie / width
			if hi <= lo {
				hi = lo + 1
			}
			sum := 0.0
			for blk := lo; blk < hi; blk++ {
				sum += float64(a.blocks[die*a.blocksPerDie+blk])
			}
			v := sum / float64(hi-lo)
			buckets[die][cell] = v
			if v > globalMax {
				globalMax = v
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "per-die wear heatmap (%d erases over %d dies x %d blocks", a.total, a.dies, a.blocksPerDie)
	if a.total > 0 {
		fmt.Fprintf(&b, "; skew %.3f, cov %.3f", a.Skew(), a.CoV())
	}
	b.WriteString(")\n")
	for die := 0; die < a.dies; die++ {
		minC, maxC := a.blocks[die*a.blocksPerDie], uint32(0)
		for blk := 0; blk < a.blocksPerDie; blk++ {
			c := a.blocks[die*a.blocksPerDie+blk]
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		mean := float64(a.dieTotals[die]) / float64(a.blocksPerDie)
		fmt.Fprintf(&b, "  die %-2d %8d erases  blk min %d mean %.1f max %d  ", die, a.dieTotals[die], minC, mean, maxC)
		if globalMax > 0 {
			b.WriteString("|")
			for _, v := range buckets[die] {
				b.WriteRune(shade(v, globalMax))
			}
			b.WriteString("|")
		}
		b.WriteString("\n")
	}
	return b.String()
}
