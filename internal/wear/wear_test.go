package wear

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/phftl/phftl/internal/nand"
)

func TestCountersMatchDeviceGroundTruth(t *testing.T) {
	// Drive a real nand.Device through randomized program/erase churn and
	// check the accountant (fed by the erase hook) agrees with the device's
	// own counters at every level: total, per-die, per-block.
	geo := nand.Geometry{PageSize: 512, OOBSize: 16, PagesPerBlock: 16, BlocksPerDie: 8, Dies: 4}
	dev := nand.MustNewDevice(geo)
	acct := New(geo.Dies, geo.BlocksPerDie)
	dev.SetEraseHook(func(die, blk, count int) {
		acct.OnErase(die, blk)
		if got := acct.BlockCount(die, blk); int(got) != count {
			t.Fatalf("hook count mismatch at die %d blk %d: accountant %d, device %d", die, blk, got, count)
		}
	})

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		die := rng.Intn(geo.Dies)
		blk := rng.Intn(geo.BlocksPerDie)
		if err := dev.EraseBlock(die, blk); err != nil {
			t.Fatalf("EraseBlock(%d,%d): %v", die, blk, err)
		}
	}

	if acct.Total() != dev.Stats().Erases {
		t.Fatalf("total: accountant %d, device %d", acct.Total(), dev.Stats().Erases)
	}
	var dieSum uint64
	for die := 0; die < geo.Dies; die++ {
		devDie, err := dev.DieEraseCount(die)
		if err != nil {
			t.Fatalf("DieEraseCount(%d): %v", die, err)
		}
		if acct.DieTotal(die) != devDie {
			t.Fatalf("die %d: accountant %d, device %d", die, acct.DieTotal(die), devDie)
		}
		dieSum += devDie
		var blkSum uint64
		for blk := 0; blk < geo.BlocksPerDie; blk++ {
			blkSum += uint64(acct.BlockCount(die, blk))
		}
		if blkSum != acct.DieTotal(die) {
			t.Fatalf("die %d: block sum %d != die total %d", die, blkSum, acct.DieTotal(die))
		}
	}
	if dieSum != dev.Stats().Erases {
		t.Fatalf("die sum %d != device total %d", dieSum, dev.Stats().Erases)
	}
}

func TestSkewAndCoV(t *testing.T) {
	a := New(2, 2) // 4 blocks
	if !math.IsNaN(a.Skew()) || !math.IsNaN(a.CoV()) {
		t.Fatalf("expected NaN gauges before first erase, got skew %v cov %v", a.Skew(), a.CoV())
	}

	// Perfectly even: one erase per block → skew 1, cov 0.
	for die := 0; die < 2; die++ {
		for blk := 0; blk < 2; blk++ {
			a.OnErase(die, blk)
		}
	}
	if got := a.Skew(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("even skew = %v, want 1", got)
	}
	if got := a.CoV(); math.Abs(got) > 1e-9 {
		t.Fatalf("even cov = %v, want 0", got)
	}

	// Skewed: counts become [3,1,1,1]. mean = 1.5, max = 3 → skew 2.
	a.OnErase(0, 0)
	a.OnErase(0, 0)
	if got := a.Skew(); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("skew = %v, want 2", got)
	}
	// variance = mean(x²) − mean² = (9+1+1+1)/4 − 2.25 = 0.75; cov = √0.75/1.5.
	want := math.Sqrt(0.75) / 1.5
	if got := a.CoV(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("cov = %v, want %v", got, want)
	}
}

func TestOnEraseIgnoresOutOfRange(t *testing.T) {
	a := New(2, 3)
	for _, c := range [][2]int{{-1, 0}, {2, 0}, {0, -1}, {0, 3}} {
		a.OnErase(c[0], c[1])
	}
	if a.Total() != 0 {
		t.Fatalf("out-of-range erases counted: total %d", a.Total())
	}
}

func TestHeatmapTotalsAndShape(t *testing.T) {
	a := New(3, 32)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		a.OnErase(rng.Intn(3), rng.Intn(32))
	}
	out := a.Heatmap(16)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+3 {
		t.Fatalf("heatmap has %d lines, want header + 3 die rows:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "300 erases over 3 dies x 32 blocks") {
		t.Fatalf("header missing totals: %q", lines[0])
	}
	for die := 0; die < 3; die++ {
		row := lines[1+die]
		if !strings.Contains(row, "erases") {
			t.Fatalf("die row %d malformed: %q", die, row)
		}
		// The strip renders between the two pipes with exactly width cells.
		first := strings.IndexByte(row, '|')
		last := strings.LastIndexByte(row, '|')
		if first < 0 || last <= first {
			t.Fatalf("die row %d missing heat strip: %q", die, row)
		}
		if cells := len([]rune(row[first+1 : last])); cells != 16 {
			t.Fatalf("die row %d strip has %d cells, want 16: %q", die, cells, row)
		}
	}
}

func TestHeatmapClampsWidth(t *testing.T) {
	a := New(1, 4)
	a.OnErase(0, 0)
	out := a.Heatmap(64) // wider than blocksPerDie → clamps to 4 cells
	first := strings.IndexByte(out, '|')
	last := strings.LastIndexByte(out, '|')
	if cells := len([]rune(out[first+1 : last])); cells != 4 {
		t.Fatalf("strip has %d cells, want 4:\n%s", cells, out)
	}
}
