package runner

import (
	"fmt"
	"io"
	"strings"

	"github.com/phftl/phftl/internal/ftl"
	"github.com/phftl/phftl/internal/sim"
)

// CSVHeader is the wabench per-cell CSV header row (with trailing newline).
const CSVHeader = "trace,size,scheme,wa,data_wa,user_writes,gc_writes,meta_writes,hit_rate\n"

// WriteCSVRow writes one wabench CSV row for a cell result. hit_rate is a
// PHFTL-only quantity (the metadata-cache hit rate); baseline schemes have
// no metadata cache, so their rows leave the column empty instead of
// repeating a neighbouring PHFTL row's value.
func WriteCSVRow(w io.Writer, driveClass string, res sim.Result) error {
	hit := ""
	if res.Scheme == sim.SchemePHFTL {
		hit = fmt.Sprintf("%.4f", res.MetaStats.HitRate())
	}
	_, err := fmt.Fprintf(w, "%s,%s,%s,%.4f,%.4f,%d,%d,%d,%s\n",
		res.Profile, driveClass, res.Scheme, res.WA, res.DataWA,
		res.FTLStats.UserPageWrites, res.FTLStats.GCPageWrites,
		res.FTLStats.MetaPageWrites, hit)
	return err
}

// CellCSVName is the file name under which a cell's sample time series is
// stored by wabench -telemetry-csv and looked up by the golden-curve
// harness (cmd/wadiff, make golden-check): "<trace>_<scheme>.csv" with the
// trace ID's '#' prefix stripped and any path-hostile characters replaced
// by '_'.
func CellCSVName(c Cell) string {
	return sanitizeFile(c.Trace) + "_" + sanitizeFile(string(c.Scheme)) + ".csv"
}

func sanitizeFile(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-':
			b.WriteRune(r)
		case r == '#':
			// Trace IDs are "#52" etc.; the marker carries no information in
			// a file name.
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}

// Summary renders the single-run measurement block (WA, GC activity, wear,
// and for PHFTL the classifier/threshold/cache statistics) that phftlsim
// prints. lifetime 0 suppresses the endurance line.
func Summary(res sim.Result, wear ftl.WearReport, lifetime uint64) string {
	var b strings.Builder
	s := res.FTLStats
	fmt.Fprintf(&b, "write amplification    %.1f%% (data-only %.1f%%)\n", res.WA*100, res.DataWA*100)
	fmt.Fprintf(&b, "user page writes       %d\n", s.UserPageWrites)
	fmt.Fprintf(&b, "gc page migrations     %d (over %d victims, %d futile passes)\n", s.GCPageWrites, s.GCVictims, s.GCFutile)
	fmt.Fprintf(&b, "meta page writes       %d\n", s.MetaPageWrites)
	fmt.Fprintf(&b, "wear                   %d erases (max/block %d, imbalance %.2f)\n",
		wear.TotalErases, wear.MaxErases, wear.ImbalanceRatio)
	if len(wear.PerDie) > 0 && wear.TotalErases > 0 {
		b.WriteString("wear per die          ")
		for die, e := range wear.PerDie {
			fmt.Fprintf(&b, " d%d:%d", die, e)
		}
		b.WriteString("\n")
	}
	if lifetime > 0 {
		fmt.Fprintf(&b, "endurance estimate     %d user page writes at 3K P/E cycles\n", lifetime)
	}
	if res.Confusion != nil {
		fmt.Fprintf(&b, "classifier             %s\n", res.Confusion)
		fmt.Fprintf(&b, "threshold              %.0f page-writes\n", res.Threshold)
		ms := res.MetaStats
		fmt.Fprintf(&b, "metadata cache         %.2f%% hit rate (%d hits, %d misses, %d open-buffer hits)\n",
			ms.HitRate()*100, ms.CacheHits, ms.CacheMisses, ms.OpenHits)
	}
	return b.String()
}
