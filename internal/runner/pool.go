package runner

import (
	"runtime"
	"sync"
)

// Pool is the bounded worker pool at the core of both execution engines: the
// batch engine (Run) feeds it a fixed cell list and closes it, while the
// fleet service (internal/fleet) keeps one open for the process lifetime and
// feeds it cells as they are submitted over HTTP. Workers pull jobs until
// Close; a job is an opaque closure so the pool carries no cell semantics —
// panic recovery and lifecycle bookkeeping stay with the callers (ExecCell).
type Pool struct {
	jobs    chan func()
	wg      sync.WaitGroup
	workers int
}

// NewPool starts a pool of the given size (<= 0 selects GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{jobs: make(chan func()), workers: workers}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Submit hands one job to the pool, blocking until a worker accepts it (the
// unbuffered channel is the backpressure: a submitter can never race ahead of
// the workers). Submit after Close panics, like any send on a closed channel.
func (p *Pool) Submit(job func()) { p.jobs <- job }

// Close stops accepting jobs and waits for every in-flight job to return.
func (p *Pool) Close() {
	close(p.jobs)
	p.wg.Wait()
}
