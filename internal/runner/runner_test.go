package runner

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/workload"
)

// smallProfiles returns shrunk copies of three synthetic traces so a full
// trace×scheme sweep stays test-sized.
func smallProfiles(t *testing.T) map[string]workload.Profile {
	t.Helper()
	out := make(map[string]workload.Profile)
	for _, id := range []string{"#52", "#58", "#144"} {
		p, ok := workload.ProfileByID(id)
		if !ok {
			t.Fatalf("missing profile %s", id)
		}
		p.ExportedPages = 4096
		out[p.ID] = p
	}
	return out
}

// simFunc is the wabench-style cell body: build the scheme, observe,
// replay one drive write, return result plus buffered telemetry.
func simFunc(profiles map[string]workload.Profile) Func {
	return func(c Cell) (Output, error) {
		p := profiles[c.Trace]
		geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
		in, err := sim.Build(c.Scheme, geo, nil)
		if err != nil {
			return Output{}, err
		}
		sim.Observe(in, sim.ObserveConfig{})
		res, err := sim.RunOn(in, p, 1)
		if err != nil {
			return Output{}, err
		}
		return Output{
			Result:  res,
			Events:  in.Obs.Rec.Events(),
			Samples: in.Obs.Sampler.Series(),
		}, nil
	}
}

// TestRunDeterminism is the engine's core guarantee: a serial run and a
// 4-way parallel run over 3 traces × 2 schemes must produce identical
// Result slices and byte-identical CSV and merged JSONL telemetry.
// (Schemes without wall-clock event fields are used so even the event
// payloads are bit-reproducible across runs.)
func TestRunDeterminism(t *testing.T) {
	profiles := smallProfiles(t)
	var cells []Cell
	for _, id := range []string{"#52", "#58", "#144"} {
		for _, s := range []sim.Scheme{sim.SchemeBase, sim.Scheme2R} {
			cells = append(cells, Cell{Trace: id, Scheme: s})
		}
	}
	sweep := func(parallel int) ([]Output, string, string) {
		var jsonl bytes.Buffer
		outs, err := Run(cells, simFunc(profiles), Options{Parallel: parallel, Telemetry: &jsonl})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		var csv strings.Builder
		csv.WriteString(CSVHeader)
		for _, o := range outs {
			if err := WriteCSVRow(&csv, profiles[o.Cell.Trace].DriveClass, o.Result); err != nil {
				t.Fatal(err)
			}
		}
		return outs, jsonl.String(), csv.String()
	}
	serialOuts, serialJSONL, serialCSV := sweep(1)
	parOuts, parJSONL, parCSV := sweep(4)

	for i := range serialOuts {
		if !reflect.DeepEqual(serialOuts[i].Result, parOuts[i].Result) {
			t.Errorf("cell %d (%s): Result differs between serial and parallel",
				i, serialOuts[i].Cell.RunTag())
		}
		if !reflect.DeepEqual(serialOuts[i].Events, parOuts[i].Events) {
			t.Errorf("cell %d (%s): events differ", i, serialOuts[i].Cell.RunTag())
		}
	}
	if serialCSV != parCSV {
		t.Error("CSV bytes differ between serial and parallel runs")
	}
	if serialJSONL != parJSONL {
		t.Error("JSONL telemetry bytes differ between serial and parallel runs")
	}
	if len(serialJSONL) == 0 {
		t.Fatal("no telemetry emitted")
	}
	// Lines must be grouped per cell, in cell input order.
	wantTag := 0
	tags := make([]string, len(cells))
	for i, c := range cells {
		tags[i] = fmt.Sprintf("%q", c.RunTag())
	}
	for _, line := range strings.Split(strings.TrimSpace(serialJSONL), "\n") {
		for wantTag < len(tags)-1 && !strings.Contains(line, tags[wantTag]) {
			wantTag++
		}
		if !strings.Contains(line, tags[wantTag]) {
			t.Fatalf("telemetry line outside input-order grouping: %s", line)
		}
	}
}

// TestRunSharedSinkConcurrent drives many fast synthetic cells through one
// shared telemetry sink at parallelism 4. Run under -race (make check does)
// it verifies the collector is the sink's only writer; it also checks the
// emitted stream is complete and input-ordered.
func TestRunSharedSinkConcurrent(t *testing.T) {
	const n = 24
	var cells []Cell
	for i := 0; i < n; i++ {
		cells = append(cells, Cell{Trace: fmt.Sprintf("t%02d", i), Scheme: sim.SchemeBase})
	}
	fn := func(c Cell) (Output, error) {
		var evs []obs.Event
		for k := 0; k < 10; k++ {
			evs = append(evs, obs.Event{Kind: obs.KindSBOpen, Clock: uint64(k)})
		}
		return Output{
			Events:  evs,
			Samples: []obs.Sample{{Clock: 10, CumWA: 0.5}},
		}, nil
	}
	var sink bytes.Buffer
	outs, err := Run(cells, fn, Options{Parallel: 4, Telemetry: &sink})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != n {
		t.Fatalf("got %d outputs, want %d", len(outs), n)
	}
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != n*11 {
		t.Fatalf("got %d telemetry lines, want %d", len(lines), n*11)
	}
	for i, line := range lines {
		wantRun := fmt.Sprintf("%q", cells[i/11].RunTag())
		if !strings.Contains(line, wantRun) {
			t.Fatalf("line %d not tagged %s: %s", i, wantRun, line)
		}
	}
}

func TestRunPanicIsolation(t *testing.T) {
	cells := []Cell{
		{Trace: "a", Scheme: sim.SchemeBase},
		{Trace: "b", Scheme: sim.Scheme2R},
		{Trace: "c", Scheme: sim.SchemeBase},
	}
	fn := func(c Cell) (Output, error) {
		if c.Trace == "b" {
			panic("boom")
		}
		return Output{Result: sim.Result{Profile: c.Trace}}, nil
	}
	outs, err := Run(cells, fn, Options{Parallel: 3})
	if err == nil || !strings.Contains(err.Error(), "b/2R") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not reported with cell tag: %v", err)
	}
	if outs[1].Err == nil {
		t.Error("panicked cell has nil Err")
	}
	for _, i := range []int{0, 2} {
		if outs[i].Err != nil || outs[i].Result.Profile != cells[i].Trace {
			t.Errorf("cell %d corrupted by sibling panic: %+v", i, outs[i])
		}
	}
}

func TestRunErrorAggregation(t *testing.T) {
	cells := []Cell{
		{Trace: "a", Scheme: sim.SchemeBase},
		{Trace: "b", Scheme: sim.SchemeBase},
	}
	sentinel := errors.New("bad geometry")
	fn := func(c Cell) (Output, error) {
		if c.Trace == "a" {
			return Output{}, sentinel
		}
		return Output{}, nil
	}
	outs, err := Run(cells, fn, Options{Parallel: 2})
	if !errors.Is(err, sentinel) {
		t.Fatalf("joined error does not wrap cell error: %v", err)
	}
	if !strings.Contains(err.Error(), "a/Base") {
		t.Errorf("error lacks trace/scheme tag: %v", err)
	}
	if outs[1].Err != nil {
		t.Errorf("healthy cell tainted: %v", outs[1].Err)
	}
}

func TestRunProgressLine(t *testing.T) {
	var progress bytes.Buffer
	cells := []Cell{{Trace: "a", Scheme: sim.SchemeBase}}
	fn := func(Cell) (Output, error) { return Output{}, nil }
	if _, err := Run(cells, fn, Options{Parallel: 1, Progress: &progress}); err != nil {
		t.Fatal(err)
	}
	if got := progress.String(); !strings.Contains(got, "1/1 cells done") {
		t.Errorf("progress = %q", got)
	}
}

func TestParseSchemes(t *testing.T) {
	got, err := ParseSchemes("PHFTL, Base")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != sim.SchemePHFTL || got[1] != sim.SchemeBase {
		t.Errorf("schemes = %v", got)
	}
	if all, err := ParseSchemes(""); err != nil || len(all) != len(sim.Schemes()) {
		t.Errorf("empty flag: %v, %v", all, err)
	}
	_, err = ParseSchemes("Base,Bogus")
	if err == nil || !strings.Contains(err.Error(), `unknown scheme "Bogus"`) ||
		!strings.Contains(err.Error(), "valid: Base, 2R, SepBIT, PHFTL") {
		t.Errorf("err = %v", err)
	}
}

func TestParseTraces(t *testing.T) {
	got, err := ParseTraces("#144, #52")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "#144" || got[1].ID != "#52" {
		t.Errorf("traces = %v", got)
	}
	if all, err := ParseTraces(""); err != nil || len(all) != len(workload.Profiles()) {
		t.Errorf("empty flag: %d profiles, %v", len(all), err)
	}
	_, err = ParseTraces("#52,#999")
	if err == nil || !strings.Contains(err.Error(), `unknown trace "#999"`) ||
		!strings.Contains(err.Error(), "valid:") {
		t.Errorf("err = %v", err)
	}
}

// TestWriteCSVRowPHFTLColumns pins the hit_rate column semantics: PHFTL
// rows carry the metadata-cache hit rate, baseline rows leave it empty
// (previously they inherited whatever PHFTL value was computed last).
func TestWriteCSVRowPHFTLColumns(t *testing.T) {
	var b strings.Builder
	base := sim.Result{Profile: "#52", Scheme: sim.SchemeBase}
	if err := WriteCSVRow(&b, "500GB", base); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(b.String()); !strings.HasSuffix(got, ",") {
		t.Errorf("baseline row should end with empty hit_rate: %q", got)
	}
	b.Reset()
	phftl := sim.Result{Profile: "#52", Scheme: sim.SchemePHFTL}
	phftl.MetaStats.CacheHits = 3
	phftl.MetaStats.CacheMisses = 1
	if err := WriteCSVRow(&b, "500GB", phftl); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(b.String()); !strings.HasSuffix(got, ",0.7500") {
		t.Errorf("PHFTL row hit_rate = %q, want suffix ,0.7500", got)
	}
}

// CellCSVName is the contract between wabench -telemetry-csv and the
// golden-curve harness (testdata/golden file names); a change here orphans
// every checked-in baseline.
func TestCellCSVName(t *testing.T) {
	cases := []struct {
		cell Cell
		want string
	}{
		{Cell{Trace: "#52", Scheme: sim.SchemeBase}, "52_Base.csv"},
		{Cell{Trace: "#144", Scheme: sim.SchemePHFTL}, "144_PHFTL.csv"},
		{Cell{Trace: "#326", Scheme: sim.Scheme2R}, "326_2R.csv"},
		{Cell{Trace: "a/b c", Scheme: sim.SchemeSepBIT}, "a_b_c_SepBIT.csv"},
	}
	for _, c := range cases {
		if got := CellCSVName(c.cell); got != c.want {
			t.Errorf("CellCSVName(%v) = %q, want %q", c.cell, got, c.want)
		}
	}
}

func TestRunTagOPSuffix(t *testing.T) {
	c := Cell{Trace: "#52", Scheme: sim.SchemeBase}
	if got := c.RunTag(); got != "#52/Base" {
		t.Errorf("RunTag = %q", got)
	}
	c.OP = 0.15
	if got := c.RunTag(); got != "#52/Base@op0.15" {
		t.Errorf("RunTag = %q", got)
	}
}

func TestParseTracesTrimTwins(t *testing.T) {
	ps, err := ParseTraces("#52T,#144T")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].ID != "#52T" || ps[1].ID != "#144T" {
		t.Fatalf("parsed %+v", ps)
	}
	if ps[0].TrimFrac <= 0 {
		t.Error("twin lost its trim knobs")
	}
	if _, err := ParseTraces("#nope"); err == nil {
		t.Error("unknown trace accepted")
	} else if !strings.Contains(err.Error(), "#52T") {
		t.Errorf("error %v does not list trim twins", err)
	}
}
