package runner

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolRunsEverything pins the extracted worker core both engines share:
// every submitted job runs exactly once, Close waits for in-flight jobs, and
// concurrency never exceeds the pool size.
func TestPoolRunsEverything(t *testing.T) {
	const jobs = 100
	p := NewPool(3)
	if p.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", p.Workers())
	}
	var ran, active, peak atomic.Int64
	var mu sync.Mutex
	for i := 0; i < jobs; i++ {
		p.Submit(func() {
			n := active.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			ran.Add(1)
			active.Add(-1)
		})
	}
	p.Close()
	if ran.Load() != jobs {
		t.Fatalf("ran %d jobs, want %d", ran.Load(), jobs)
	}
	if peak.Load() > 3 {
		t.Fatalf("peak concurrency %d exceeds pool size 3", peak.Load())
	}
}

func TestPoolDefaultSize(t *testing.T) {
	p := NewPool(0)
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", p.Workers())
	}
	done := make(chan struct{})
	p.Submit(func() { close(done) })
	<-done
	p.Close()
}
