// Package runner is the concurrency engine behind the benchmark harnesses:
// it fans a set of independent (trace, scheme) simulation cells out over a
// bounded worker pool and re-serializes their outputs in input order, so a
// parallel run produces byte-identical tables, CSVs and merged JSONL
// telemetry to a serial one. Each cell's events and samples are buffered by
// the cell itself; all telemetry writes go through the single collector
// goroutine, which is the only writer of the shared sink. A cell that fails
// (error or panic) is reported with its trace/scheme tag and does not abort
// or corrupt the other cells.
package runner

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/workload"
)

// Cell identifies one independent unit of work: a trace replayed under a
// scheme. Trace is an opaque tag to the engine (harnesses map it back to a
// workload profile); it only feeds run tagging and error reports.
type Cell struct {
	Trace  string
	Scheme sim.Scheme

	// OP, when positive, marks an overprovisioning-sweep cell built at that
	// spare ratio instead of the default 7% (wabench -op-sweep). It feeds
	// run tagging only; the harness maps it to GeometryForDriveOP/BuildOP.
	OP float64
}

// RunTag returns the "trace/scheme" tag used for telemetry lines and error
// reports, matching the serial harnesses' historical tagging. OP-sweep cells
// append "@op<ratio>" so each sweep point is distinguishable in telemetry.
func (c Cell) RunTag() string {
	tag := c.Trace + "/" + string(c.Scheme)
	if c.OP > 0 {
		tag += fmt.Sprintf("@op%g", c.OP)
	}
	return tag
}

// Output is what one cell produces. Events and Samples are the cell's own
// buffered telemetry (nil when the cell did not observe); Dropped counts
// events the cell's ring overwrote (its retained window is incomplete);
// Extra carries any harness-specific payload (e.g. perfbench's phase
// results). Err is the cell's failure, if any, already tagged with the
// cell's trace/scheme.
type Output struct {
	Cell    Cell
	Result  sim.Result
	Events  []obs.Event
	Samples []obs.Sample
	Dropped uint64
	Extra   any
	Err     error
}

// WarnDropped prints one stderr-style warning line per cell whose event ring
// overflowed, so lossy telemetry never goes unnoticed in harness output.
func WarnDropped(w io.Writer, outs []Output) {
	for _, out := range outs {
		if out.Dropped > 0 {
			fmt.Fprintf(w, "warning: %s: event ring dropped %d events; raise -ring-cap for a lossless trace\n",
				out.Cell.RunTag(), out.Dropped)
		}
	}
}

// Func executes one cell. It runs on a worker goroutine and must not share
// mutable state with other cells; everything it returns is handed to the
// collector. A panic is recovered and converted into the cell's error.
type Func func(Cell) (Output, error)

// Options configures a Run.
type Options struct {
	// Parallel is the worker-pool size. <= 0 selects runtime.GOMAXPROCS(0).
	Parallel int

	// Telemetry, when non-nil, receives every cell's events and samples as
	// run-tagged JSONL, in cell input order. Writes are serialized through
	// the collector goroutine, so a plain *os.File is safe.
	Telemetry io.Writer

	// Progress, when non-nil, receives a carriage-return progress line
	// (completed/total cells, elapsed wall time) as cells finish, and a
	// final newline. Point it at os.Stderr to keep stdout parseable.
	Progress io.Writer
}

// Run executes every cell on a pool of Options.Parallel workers and returns
// the outputs indexed like cells. The returned error joins every per-cell
// failure (tagged trace/scheme) plus any telemetry-sink write error; outputs
// of surviving cells are valid even when some cells failed. Output order,
// telemetry line order and all output bytes are independent of Parallel.
func Run(cells []Cell, fn Func, opts Options) ([]Output, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	type completion struct {
		idx int
		out Output
	}
	jobs := make(chan int)
	completions := make(chan completion)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				completions <- completion{i, runCell(fn, cells[i])}
			}
		}()
	}
	go func() {
		for i := range cells {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(completions)
	}()

	// The collector is the single consumer of completions and the single
	// writer of the telemetry sink. Cells complete in any order; emission
	// is held back until every lower-index cell has been emitted.
	outputs := make([]Output, len(cells))
	errs := make([]error, len(cells))
	var sinkErr error
	pending := make(map[int]Output, workers)
	next, completed := 0, 0
	start := time.Now()
	for c := range completions {
		completed++
		pending[c.idx] = c.out
		for {
			out, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if out.Err != nil {
				errs[next] = out.Err
			} else if opts.Telemetry != nil && sinkErr == nil && (len(out.Events) > 0 || len(out.Samples) > 0) {
				if err := obs.WriteJSONL(opts.Telemetry, out.Cell.RunTag(), out.Events, out.Samples); err != nil {
					sinkErr = fmt.Errorf("runner: telemetry sink: %w", err)
				}
			}
			outputs[next] = out
			next++
		}
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "\r%d/%d cells done, %s elapsed",
				completed, len(cells), time.Since(start).Round(100*time.Millisecond))
		}
	}
	if opts.Progress != nil {
		fmt.Fprintln(opts.Progress)
	}
	return outputs, errors.Join(append(errs, sinkErr)...)
}

// runCell executes fn for one cell, converting a panic into an error so one
// bad cell cannot take down the whole sweep.
func runCell(fn Func, c Cell) (out Output) {
	defer func() {
		if r := recover(); r != nil {
			out = Output{Cell: c, Err: fmt.Errorf("%s: panic: %v\n%s", c.RunTag(), r, debug.Stack())}
		}
	}()
	o, err := fn(c)
	o.Cell = c
	if err != nil {
		o.Err = fmt.Errorf("%s: %w", c.RunTag(), err)
	}
	return o
}

// ParseSchemes validates a comma-separated scheme list against the Figure 5
// scheme set, preserving the caller's order. Empty selects all schemes.
func ParseSchemes(flagVal string) ([]sim.Scheme, error) {
	valid := sim.Schemes()
	if flagVal == "" {
		return valid, nil
	}
	names := make([]string, len(valid))
	for i, v := range valid {
		names[i] = string(v)
	}
	var out []sim.Scheme
	for _, f := range strings.Split(flagVal, ",") {
		s := sim.Scheme(strings.TrimSpace(f))
		ok := false
		for _, v := range valid {
			if s == v {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("unknown scheme %q (valid: %s)", s, strings.Join(names, ", "))
		}
		out = append(out, s)
	}
	return out, nil
}

// ParseTraces validates a comma-separated trace-ID list against the
// synthetic profile set, preserving the caller's order. Empty selects all
// profiles.
func ParseTraces(flagVal string) ([]workload.Profile, error) {
	if flagVal == "" {
		return workload.Profiles(), nil
	}
	var out []workload.Profile
	for _, f := range strings.Split(flagVal, ",") {
		id := strings.TrimSpace(f)
		p, ok := workload.ProfileByID(id)
		if !ok {
			all := append(workload.Profiles(), workload.TrimProfiles()...)
			names := make([]string, len(all))
			for i, q := range all {
				names[i] = q.ID
			}
			return nil, fmt.Errorf("unknown trace %q (valid: %s)", id, strings.Join(names, ", "))
		}
		out = append(out, p)
	}
	return out, nil
}
