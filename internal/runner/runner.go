// Package runner is the concurrency engine behind the benchmark harnesses:
// it fans a set of independent (trace, scheme) simulation cells out over a
// bounded worker pool and re-serializes their outputs in input order, so a
// parallel run produces byte-identical tables, CSVs and merged JSONL
// telemetry to a serial one. Each cell's events and samples are buffered by
// the cell itself; all telemetry writes go through the single collector
// goroutine, which is the only writer of the shared sink. A cell that fails
// (error or panic) is reported with its trace/scheme tag and does not abort
// or corrupt the other cells.
package runner

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/obs/registry"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/workload"
)

// Cell identifies one independent unit of work: a trace replayed under a
// scheme. Trace is an opaque tag to the engine (harnesses map it back to a
// workload profile); it only feeds run tagging and error reports.
type Cell struct {
	Trace  string
	Scheme sim.Scheme

	// OP, when positive, marks an overprovisioning-sweep cell built at that
	// spare ratio instead of the default 7% (wabench -op-sweep). It feeds
	// run tagging only; the harness maps it to GeometryForDriveOP/BuildOP.
	OP float64

	// TargetOps is the cell's expected user-page-write total (0 = unknown).
	// It feeds the live registry's per-cell target and the progress line's
	// fleet ETA; the engine never enforces it.
	TargetOps uint64
}

// RunTag returns the "trace/scheme" tag used for telemetry lines and error
// reports, matching the serial harnesses' historical tagging. OP-sweep cells
// append "@op<ratio>" so each sweep point is distinguishable in telemetry.
func (c Cell) RunTag() string {
	tag := c.Trace + "/" + string(c.Scheme)
	if c.OP > 0 {
		tag += fmt.Sprintf("@op%g", c.OP)
	}
	return tag
}

// Output is what one cell produces. Events and Samples are the cell's own
// buffered telemetry (nil when the cell did not observe); Dropped counts
// events the cell's ring overwrote (its retained window is incomplete);
// Extra carries any harness-specific payload (e.g. perfbench's phase
// results). Err is the cell's failure, if any, already tagged with the
// cell's trace/scheme.
type Output struct {
	Cell    Cell
	Result  sim.Result
	Events  []obs.Event
	Samples []obs.Sample
	Dropped uint64
	Extra   any
	Err     error
}

// WarnDropped prints one stderr-style warning line per cell whose event ring
// overflowed, so lossy telemetry never goes unnoticed in harness output.
func WarnDropped(w io.Writer, outs []Output) {
	for _, out := range outs {
		if out.Dropped > 0 {
			fmt.Fprintf(w, "warning: %s: event ring dropped %d events; raise -ring-cap for a lossless trace\n",
				out.Cell.RunTag(), out.Dropped)
		}
	}
}

// Func executes one cell. It runs on a worker goroutine and must not share
// mutable state with other cells; everything it returns is handed to the
// collector. A panic is recovered and converted into the cell's error.
type Func func(Cell) (Output, error)

// Options configures a Run.
type Options struct {
	// Parallel is the worker-pool size. <= 0 selects runtime.GOMAXPROCS(0).
	Parallel int

	// Telemetry, when non-nil, receives every cell's events and samples as
	// run-tagged JSONL, in cell input order. Writes are serialized through
	// the collector goroutine, so a plain *os.File is safe.
	Telemetry io.Writer

	// Progress, when non-nil, receives a carriage-return progress line
	// (completed/total cells, elapsed wall time) as cells finish, and a
	// final newline. Point it at os.Stderr to keep stdout parseable. With a
	// Registry attached, the line also reports the fleet's live ops/sec and
	// ETA (computed from the registry's per-cell counters — the same source
	// the HTTP endpoints serve) and refreshes once a second while cells run.
	Progress io.Writer

	// Registry, when non-nil, publishes the run's cell lifecycle into the
	// live metrics registry served by -listen: every cell is registered as
	// queued before the workers start, transitions to running when a worker
	// picks it up, and ends done or failed. Cell replay metrics flow in
	// separately via sim.ObserveConfig.Cell.
	Registry *registry.Registry
}

// Run executes every cell on a pool of Options.Parallel workers and returns
// the outputs indexed like cells. The returned error joins every per-cell
// failure (tagged trace/scheme) plus any telemetry-sink write error; outputs
// of surviving cells are valid even when some cells failed. Output order,
// telemetry line order and all output bytes are independent of Parallel.
func Run(cells []Cell, fn Func, opts Options) ([]Output, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	// Register the whole fleet as queued before any worker starts, so a
	// scrape racing the ramp-up already sees every cell.
	regCells := make([]*registry.Cell, len(cells))
	if opts.Registry != nil {
		for i, c := range cells {
			regCells[i] = opts.Registry.OpenCell(c.RunTag(), registry.CellMeta{
				Trace:     c.Trace,
				Scheme:    string(c.Scheme),
				TargetOps: c.TargetOps,
			})
		}
	}

	type completion struct {
		idx int
		out Output
	}
	completions := make(chan completion)

	// The dispatcher feeds the shared Pool (the same worker core the fleet
	// service runs on) and closes the completion stream once the pool drains.
	pool := NewPool(workers)
	go func() {
		for i := range cells {
			i := i
			pool.Submit(func() {
				if rc := regCells[i]; rc != nil {
					rc.SetState(registry.StateRunning)
				}
				out := ExecCell(fn, cells[i])
				if rc := regCells[i]; rc != nil {
					if out.Err != nil {
						rc.SetState(registry.StateFailed)
					} else {
						rc.PublishFinalWA(out.Result.WA)
						rc.SetState(registry.StateDone)
					}
				}
				completions <- completion{i, out}
			})
		}
		pool.Close()
		close(completions)
	}()

	// The collector is the single consumer of completions and the single
	// writer of the telemetry sink. Cells complete in any order; emission
	// is held back until every lower-index cell has been emitted.
	outputs := make([]Output, len(cells))
	errs := make([]error, len(cells))
	var sinkErr error
	pending := make(map[int]Output, workers)
	next := 0
	prog := newProgress(opts.Progress, len(cells), opts.Registry)
	defer prog.stop()
	for c := range completions {
		prog.completed.Add(1)
		pending[c.idx] = c.out
		for {
			out, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if out.Err != nil {
				errs[next] = out.Err
			} else if opts.Telemetry != nil && sinkErr == nil && (len(out.Events) > 0 || len(out.Samples) > 0) {
				if err := obs.WriteJSONL(opts.Telemetry, out.Cell.RunTag(), out.Events, out.Samples); err != nil {
					sinkErr = fmt.Errorf("runner: telemetry sink: %w", err)
				}
			}
			outputs[next] = out
			next++
		}
		prog.print()
	}
	prog.stop()
	return outputs, errors.Join(append(errs, sinkErr)...)
}

// progress renders the carriage-return progress line. Without a registry it
// reproduces the historical completion-driven line exactly; with one it adds
// the fleet's live ops/sec and ETA (from the registry counters, the same
// figures /api/v1/status serves) and a once-a-second refresh ticker so the
// line advances during long cells, not just between them.
type progress struct {
	w         io.Writer
	total     int
	start     time.Time
	reg       *registry.Registry
	completed atomic.Int64

	mu       sync.Mutex
	lastLen  int
	stopped  bool
	stopTick chan struct{}
}

func newProgress(w io.Writer, total int, reg *registry.Registry) *progress {
	p := &progress{w: w, total: total, start: time.Now(), reg: reg}
	if w != nil && reg != nil {
		p.stopTick = make(chan struct{})
		go func() {
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for {
				select {
				case <-p.stopTick:
					return
				case <-tick.C:
					p.print()
				}
			}
		}()
	}
	return p
}

func (p *progress) line() string {
	s := fmt.Sprintf("%d/%d cells done, %s elapsed",
		p.completed.Load(), p.total, time.Since(p.start).Round(100*time.Millisecond))
	if p.reg == nil {
		return s
	}
	t := p.reg.Totals()
	if t.Ops == 0 {
		return s
	}
	// Sliding-window rate via the registry's shared helper, so the progress
	// line and /api/v1/status always agree. The lifetime average both used to
	// compute independently diverges the moment the rate changes — after a
	// slow warm-up the ETA stayed pessimistic for the whole run, and on a
	// burst-then-idle fleet it reported a stale positive rate forever.
	rate := p.reg.LiveOpsPerSec()
	if rate <= 0 {
		return s
	}
	s += fmt.Sprintf(", %.0f ops/s", rate)
	if t.TargetOps > t.Ops && rate > 0 {
		eta := time.Duration(float64(t.TargetOps-t.Ops) / rate * float64(time.Second))
		s += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
	}
	return s
}

// print redraws the line in place, space-padding over any longer previous
// line so a shrinking ETA never leaves stale characters.
func (p *progress) print() {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	s := p.line()
	pad := p.lastLen - len(s)
	if pad < 0 {
		pad = 0
	}
	p.lastLen = len(s)
	fmt.Fprintf(p.w, "\r%s%s", s, strings.Repeat(" ", pad))
}

// stop ends the refresh ticker and terminates the line with a newline.
// Idempotent (Run defers it for the error paths and calls it on success).
func (p *progress) stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	p.stopped = true
	if p.stopTick != nil {
		close(p.stopTick)
	}
	if p.w != nil {
		fmt.Fprintln(p.w)
	}
}

// ExecCell executes fn for one cell, converting a panic into an error so one
// bad cell cannot take down the whole sweep. Both engines route every cell
// through it: the batch Run above, and the fleet service's long-running
// workers (internal/fleet).
func ExecCell(fn Func, c Cell) (out Output) {
	defer func() {
		if r := recover(); r != nil {
			out = Output{Cell: c, Err: fmt.Errorf("%s: panic: %v\n%s", c.RunTag(), r, debug.Stack())}
		}
	}()
	o, err := fn(c)
	o.Cell = c
	if err != nil {
		o.Err = fmt.Errorf("%s: %w", c.RunTag(), err)
	}
	return o
}

// ParseSchemes validates a comma-separated scheme list against the Figure 5
// scheme set, preserving the caller's order. Empty selects all schemes.
func ParseSchemes(flagVal string) ([]sim.Scheme, error) {
	valid := sim.Schemes()
	if flagVal == "" {
		return valid, nil
	}
	names := make([]string, len(valid))
	for i, v := range valid {
		names[i] = string(v)
	}
	var out []sim.Scheme
	for _, f := range strings.Split(flagVal, ",") {
		s := sim.Scheme(strings.TrimSpace(f))
		ok := false
		for _, v := range valid {
			if s == v {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("unknown scheme %q (valid: %s)", s, strings.Join(names, ", "))
		}
		out = append(out, s)
	}
	return out, nil
}

// ParseTraces validates a comma-separated trace-ID list against the
// synthetic profile set, preserving the caller's order. Empty selects all
// profiles.
func ParseTraces(flagVal string) ([]workload.Profile, error) {
	if flagVal == "" {
		return workload.Profiles(), nil
	}
	var out []workload.Profile
	for _, f := range strings.Split(flagVal, ",") {
		id := strings.TrimSpace(f)
		p, ok := workload.ProfileByID(id)
		if !ok {
			all := append(workload.Profiles(), workload.TrimProfiles()...)
			names := make([]string, len(all))
			for i, q := range all {
				names[i] = q.ID
			}
			return nil, fmt.Errorf("unknown trace %q (valid: %s)", id, strings.Join(names, ", "))
		}
		out = append(out, p)
	}
	return out, nil
}
