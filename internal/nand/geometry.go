// Package nand simulates a NAND flash device: channels, dies, blocks and
// pages, with the idiosyncrasies an FTL must respect — erase-before-write,
// strictly sequential programming inside a block, page-granularity reads and
// writes, and a per-page out-of-band (OOB) area. It also exposes the
// superblock addressing used by modern SSDs (all blocks with the same in-die
// offset form one superblock) and tracks wear and operation counts.
//
// The simulator stores only what an FTL experiment needs: the logical page
// number recorded in each programmed page plus the OOB bytes. No user payload
// is retained, which keeps multi-gigabyte virtual drives cheap to simulate.
package nand

import "fmt"

// Geometry describes the physical layout of a simulated NAND device.
//
// The device has Dies independent dies (the channel/way distinction is
// flattened: dies are the unit of parallelism). Each die holds BlocksPerDie
// blocks of PagesPerBlock pages, every page PageSize bytes of data plus
// OOBSize bytes of out-of-band area.
type Geometry struct {
	PageSize      int // data bytes per page, e.g. 16384
	OOBSize       int // out-of-band bytes per page, e.g. 256
	PagesPerBlock int // pages per block, e.g. 256
	BlocksPerDie  int // blocks per die; also the number of superblocks
	Dies          int // independent dies (parallel units)
}

// Validate reports an error if any geometry parameter is non-positive.
func (g Geometry) Validate() error {
	switch {
	case g.PageSize <= 0:
		return fmt.Errorf("nand: PageSize must be positive, got %d", g.PageSize)
	case g.OOBSize < 0:
		return fmt.Errorf("nand: OOBSize must be non-negative, got %d", g.OOBSize)
	case g.PagesPerBlock <= 0:
		return fmt.Errorf("nand: PagesPerBlock must be positive, got %d", g.PagesPerBlock)
	case g.BlocksPerDie <= 0:
		return fmt.Errorf("nand: BlocksPerDie must be positive, got %d", g.BlocksPerDie)
	case g.Dies <= 0:
		return fmt.Errorf("nand: Dies must be positive, got %d", g.Dies)
	}
	return nil
}

// TotalBlocks returns the number of blocks in the device.
func (g Geometry) TotalBlocks() int { return g.Dies * g.BlocksPerDie }

// TotalPages returns the number of pages in the device.
func (g Geometry) TotalPages() int { return g.TotalBlocks() * g.PagesPerBlock }

// Superblocks returns the number of superblocks. A superblock is formed by
// the blocks with the same in-die block index across all dies.
func (g Geometry) Superblocks() int { return g.BlocksPerDie }

// PagesPerSuperblock returns the number of pages in one superblock.
func (g Geometry) PagesPerSuperblock() int { return g.Dies * g.PagesPerBlock }

// PagesPerDie returns the number of pages in one die.
func (g Geometry) PagesPerDie() int { return g.BlocksPerDie * g.PagesPerBlock }

// CapacityBytes returns the raw data capacity of the device in bytes.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.TotalPages()) * int64(g.PageSize)
}

// PPN is a physical page number: a linear index over every page in the
// device, laid out die-major (die, then block within die, then page within
// block).
type PPN uint32

// InvalidPPN is the sentinel for "no physical page".
const InvalidPPN PPN = ^PPN(0)

// LPN is a logical page number as seen by the host.
type LPN uint32

// InvalidLPN is the sentinel for "no logical page", used for pages that were
// programmed without a logical identity (e.g. metadata pages).
const InvalidLPN LPN = ^LPN(0)

// PPNOf assembles a PPN from (die, blockInDie, pageInBlock).
func (g Geometry) PPNOf(die, block, page int) PPN {
	return PPN(die*g.PagesPerDie() + block*g.PagesPerBlock + page)
}

// Split decomposes a PPN into (die, blockInDie, pageInBlock).
func (g Geometry) Split(p PPN) (die, block, page int) {
	i := int(p)
	die = i / g.PagesPerDie()
	rem := i % g.PagesPerDie()
	return die, rem / g.PagesPerBlock, rem % g.PagesPerBlock
}

// DieOf returns the die index a PPN resides on.
func (g Geometry) DieOf(p PPN) int { return int(p) / g.PagesPerDie() }

// SuperblockOf returns the superblock index (the in-die block index) that a
// PPN belongs to.
func (g Geometry) SuperblockOf(p PPN) int {
	_, block, _ := g.Split(p)
	return block
}

// SuperblockPPN maps a superblock index and an allocation offset inside the
// superblock to a PPN. Offsets are striped round-robin across dies so that
// consecutive allocations land on different dies: offset k maps to die
// k mod Dies, page k div Dies of that die's block.
func (g Geometry) SuperblockPPN(sb, offset int) PPN {
	die := offset % g.Dies
	page := offset / g.Dies
	return g.PPNOf(die, sb, page)
}

// SuperblockOffset is the inverse of SuperblockPPN: it returns the
// round-robin allocation offset of a PPN inside its superblock.
func (g Geometry) SuperblockOffset(p PPN) int {
	die, _, page := g.Split(p)
	return page*g.Dies + die
}
