package nand

import (
	"testing"
	"testing/quick"
)

func testGeo() Geometry {
	return Geometry{PageSize: 16384, OOBSize: 64, PagesPerBlock: 8, BlocksPerDie: 16, Dies: 4}
}

func TestGeometryValidate(t *testing.T) {
	good := testGeo()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Geometry)
	}{
		{"zero page size", func(g *Geometry) { g.PageSize = 0 }},
		{"negative oob", func(g *Geometry) { g.OOBSize = -1 }},
		{"zero pages per block", func(g *Geometry) { g.PagesPerBlock = 0 }},
		{"zero blocks per die", func(g *Geometry) { g.BlocksPerDie = 0 }},
		{"zero dies", func(g *Geometry) { g.Dies = 0 }},
	}
	for _, tc := range cases {
		g := testGeo()
		tc.mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
}

func TestGeometryDerivedCounts(t *testing.T) {
	g := testGeo()
	if got, want := g.TotalBlocks(), 64; got != want {
		t.Errorf("TotalBlocks = %d, want %d", got, want)
	}
	if got, want := g.TotalPages(), 512; got != want {
		t.Errorf("TotalPages = %d, want %d", got, want)
	}
	if got, want := g.Superblocks(), 16; got != want {
		t.Errorf("Superblocks = %d, want %d", got, want)
	}
	if got, want := g.PagesPerSuperblock(), 32; got != want {
		t.Errorf("PagesPerSuperblock = %d, want %d", got, want)
	}
	if got, want := g.CapacityBytes(), int64(512*16384); got != want {
		t.Errorf("CapacityBytes = %d, want %d", got, want)
	}
}

func TestPPNSplitRoundTrip(t *testing.T) {
	g := testGeo()
	for die := 0; die < g.Dies; die++ {
		for blk := 0; blk < g.BlocksPerDie; blk++ {
			for pg := 0; pg < g.PagesPerBlock; pg++ {
				p := g.PPNOf(die, blk, pg)
				d2, b2, p2 := g.Split(p)
				if d2 != die || b2 != blk || p2 != pg {
					t.Fatalf("Split(PPNOf(%d,%d,%d)) = (%d,%d,%d)", die, blk, pg, d2, b2, p2)
				}
				if g.DieOf(p) != die {
					t.Fatalf("DieOf(%d) = %d, want %d", p, g.DieOf(p), die)
				}
				if g.SuperblockOf(p) != blk {
					t.Fatalf("SuperblockOf(%d) = %d, want %d", p, g.SuperblockOf(p), blk)
				}
			}
		}
	}
}

func TestSuperblockPPNStripesAcrossDies(t *testing.T) {
	g := testGeo()
	seen := map[PPN]bool{}
	for off := 0; off < g.PagesPerSuperblock(); off++ {
		p := g.SuperblockPPN(3, off)
		if seen[p] {
			t.Fatalf("offset %d maps to duplicate ppn %d", off, p)
		}
		seen[p] = true
		if g.SuperblockOf(p) != 3 {
			t.Fatalf("offset %d escaped superblock: got sb %d", off, g.SuperblockOf(p))
		}
		if want := off % g.Dies; g.DieOf(p) != want {
			t.Fatalf("offset %d on die %d, want %d (round-robin)", off, g.DieOf(p), want)
		}
		if back := g.SuperblockOffset(p); back != off {
			t.Fatalf("SuperblockOffset(SuperblockPPN(3,%d)) = %d", off, back)
		}
	}
}

func TestSuperblockOffsetRoundTripProperty(t *testing.T) {
	g := testGeo()
	f := func(sbRaw, offRaw uint16) bool {
		sb := int(sbRaw) % g.Superblocks()
		off := int(offRaw) % g.PagesPerSuperblock()
		p := g.SuperblockPPN(sb, off)
		return g.SuperblockOf(p) == sb && g.SuperblockOffset(p) == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
