package nand

import (
	"errors"
	"fmt"
)

// PageState is the lifecycle state of a physical page.
type PageState uint8

const (
	// PageFree means the page has been erased and may be programmed.
	PageFree PageState = iota
	// PageValid means the page holds live data.
	PageValid
	// PageInvalid means the page holds stale data awaiting erase.
	PageInvalid
)

// String returns a human-readable state name.
func (s PageState) String() string {
	switch s {
	case PageFree:
		return "free"
	case PageValid:
		return "valid"
	case PageInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("PageState(%d)", uint8(s))
	}
}

// OpKind identifies a flash operation reported to the device hook.
type OpKind uint8

const (
	// OpRead is a page read.
	OpRead OpKind = iota
	// OpProgram is a page program.
	OpProgram
	// OpErase is a block erase.
	OpErase
)

// String returns a human-readable operation name.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Latency holds per-operation service times in nanoseconds, used by timing
// models layered on top of the functional simulator. Defaults follow typical
// TLC NAND figures.
type Latency struct {
	ReadNS    int64 // page read, e.g. 50 µs
	ProgramNS int64 // page program, e.g. 600 µs
	EraseNS   int64 // block erase, e.g. 3 ms
}

// DefaultLatency returns typical TLC NAND latencies.
func DefaultLatency() Latency {
	return Latency{ReadNS: 50_000, ProgramNS: 600_000, EraseNS: 3_000_000}
}

// Errors returned by device operations.
var (
	ErrOutOfRange      = errors.New("nand: address out of range")
	ErrNotFree         = errors.New("nand: program target page is not free")
	ErrNotSequential   = errors.New("nand: program violates in-block sequential order")
	ErrReadFree        = errors.New("nand: read of an unwritten page")
	ErrInvalidateState = errors.New("nand: invalidate of a non-valid page")
	ErrEraseValid      = errors.New("nand: erase of a block holding valid pages")
	ErrOOBTooLarge     = errors.New("nand: OOB payload exceeds geometry OOB size")
	ErrDataTooLarge    = errors.New("nand: data payload exceeds geometry page size")
)

type page struct {
	state PageState
	lpn   LPN
	oob   []byte
	data  []byte // optional stored payload (metadata pages); nil for user data
}

type block struct {
	pages     []page
	writePtr  int // next page index to program (in-block sequential rule)
	validCnt  int
	eraseCnt  int
	programed int // pages programmed since last erase
}

// Stats aggregates operation counts for the whole device.
type Stats struct {
	Reads    uint64
	Programs uint64
	Erases   uint64
}

// Device is a functional simulator of a NAND flash package.
//
// Device is not safe for concurrent use; the FTL layered on top serializes
// access, matching a single firmware instance owning the media.
type Device struct {
	geo    Geometry
	dies   [][]block // [die][blockInDie]
	stats  Stats
	lat    Latency
	onOp   func(kind OpKind, p PPN)
	strict bool // enforce in-block sequential programming

	// Wear-observability state, kept after the hot fields above so adding
	// it did not shift the per-op counters' offsets.
	dieErase []uint64 // erase cycles per die (sums to stats.Erases)
	onErase  func(die, blk, count int)
}

// NewDevice builds a device with the given geometry. All pages start free.
func NewDevice(geo Geometry) (*Device, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	d := &Device{geo: geo, lat: DefaultLatency(), strict: true}
	d.dieErase = make([]uint64, geo.Dies)
	d.dies = make([][]block, geo.Dies)
	for i := range d.dies {
		d.dies[i] = make([]block, geo.BlocksPerDie)
		for j := range d.dies[i] {
			d.dies[i][j].pages = make([]page, geo.PagesPerBlock)
		}
	}
	return d, nil
}

// MustNewDevice is NewDevice that panics on invalid geometry; it is intended
// for tests and examples with constant geometries.
func MustNewDevice(geo Geometry) *Device {
	d, err := NewDevice(geo)
	if err != nil {
		panic(err)
	}
	return d
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geo }

// Latency returns the device's per-operation service times.
func (d *Device) Latency() Latency { return d.lat }

// SetLatency overrides the per-operation service times.
func (d *Device) SetLatency(l Latency) { d.lat = l }

// SetOpHook installs a callback invoked after every successful flash
// operation. Timing models use it to charge die service time. For OpErase
// the PPN is the first page of the erased block.
func (d *Device) SetOpHook(fn func(kind OpKind, p PPN)) { d.onOp = fn }

// SetEraseHook installs a callback invoked after every successful block
// erase with the block's physical coordinates and its new cumulative erase
// count. It is independent of the op hook so wear accounting (internal/wear)
// composes with a timing model holding the op hook. A nil hook (the
// default) costs the erase path one predictable branch.
func (d *Device) SetEraseHook(fn func(die, blk, count int)) { d.onErase = fn }

// Stats returns a copy of the accumulated operation counts.
func (d *Device) Stats() Stats { return d.stats }

func (d *Device) blockOf(p PPN) (*block, int, error) {
	if int(p) >= d.geo.TotalPages() {
		return nil, 0, fmt.Errorf("%w: ppn %d", ErrOutOfRange, p)
	}
	die, blk, pg := d.geo.Split(p)
	return &d.dies[die][blk], pg, nil
}

// Program writes a page. It records the logical identity lpn and an optional
// OOB payload (copied). Programming must target a free page and, within a
// block, must proceed in strictly ascending page order. User-data payloads
// are not retained (WA experiments only need the page's identity); use
// ProgramFull for pages whose data region must be readable back (metadata
// pages).
func (d *Device) Program(p PPN, lpn LPN, oob []byte) error {
	return d.ProgramFull(p, lpn, nil, oob)
}

// ProgramFull writes a page retaining both a data payload (up to PageSize
// bytes, copied) and an OOB payload.
func (d *Device) ProgramFull(p PPN, lpn LPN, data, oob []byte) error {
	b, pg, err := d.blockOf(p)
	if err != nil {
		return err
	}
	if len(oob) > d.geo.OOBSize {
		return fmt.Errorf("%w: %d > %d", ErrOOBTooLarge, len(oob), d.geo.OOBSize)
	}
	if len(data) > d.geo.PageSize {
		return fmt.Errorf("%w: %d > %d", ErrDataTooLarge, len(data), d.geo.PageSize)
	}
	pageRef := &b.pages[pg]
	if pageRef.state != PageFree {
		return fmt.Errorf("%w: ppn %d is %s", ErrNotFree, p, pageRef.state)
	}
	if d.strict && pg != b.writePtr {
		return fmt.Errorf("%w: ppn %d (page %d, expected %d)", ErrNotSequential, p, pg, b.writePtr)
	}
	pageRef.state = PageValid
	pageRef.lpn = lpn
	// Empty payloads truncate instead of nil-ing out, so the capacity a page
	// accumulated in earlier program/erase cycles survives for the next one.
	pageRef.oob = append(pageRef.oob[:0], oob...)
	pageRef.data = append(pageRef.data[:0], data...)
	b.writePtr = pg + 1
	b.validCnt++
	b.programed++
	d.stats.Programs++
	if d.onOp != nil {
		d.onOp(OpProgram, p)
	}
	return nil
}

// Read returns the logical identity and OOB payload stored in a page. The
// page may be valid or invalid (an FTL may read stale pages during debugging
// or GC races) but not free. The returned OOB slice aliases device memory and
// must not be modified.
func (d *Device) Read(p PPN) (LPN, []byte, error) {
	b, pg, err := d.blockOf(p)
	if err != nil {
		return InvalidLPN, nil, err
	}
	pageRef := &b.pages[pg]
	if pageRef.state == PageFree {
		return InvalidLPN, nil, fmt.Errorf("%w: ppn %d", ErrReadFree, p)
	}
	d.stats.Reads++
	if d.onOp != nil {
		d.onOp(OpRead, p)
	}
	return pageRef.lpn, pageRef.oob, nil
}

// ReadFull returns the logical identity, stored data payload and OOB payload
// of a non-free page. The returned slices alias device memory and must not
// be modified.
func (d *Device) ReadFull(p PPN) (LPN, []byte, []byte, error) {
	b, pg, err := d.blockOf(p)
	if err != nil {
		return InvalidLPN, nil, nil, err
	}
	pageRef := &b.pages[pg]
	if pageRef.state == PageFree {
		return InvalidLPN, nil, nil, fmt.Errorf("%w: ppn %d", ErrReadFree, p)
	}
	d.stats.Reads++
	if d.onOp != nil {
		d.onOp(OpRead, p)
	}
	return pageRef.lpn, pageRef.data, pageRef.oob, nil
}

// PeekPage returns a page's state, logical identity and OOB payload without
// charging a flash read: no stats are counted and no hooks fire. It is the
// side-effect-free read used by the parallel GC snapshot phase, where worker
// lanes inspect a victim's pages concurrently and the owning FTL charges the
// reads afterwards (ChargeRead) in deterministic merge order. The returned
// OOB slice aliases device memory and must not be modified. PPNs out of range
// panic; callers iterate geometry-derived offsets that cannot miss.
//
// Concurrent PeekPage calls are safe with each other but not with any
// mutating operation; the caller must quiesce programs/erases first.
func (d *Device) PeekPage(p PPN) (PageState, LPN, []byte) {
	die, blk, pg := d.geo.Split(p)
	pageRef := &d.dies[die][blk].pages[pg]
	return pageRef.state, pageRef.lpn, pageRef.oob
}

// ChargeRead accounts one flash read of a page whose content was obtained
// earlier via PeekPage: it bumps the read counter and fires the op hook,
// exactly as Read would have, without touching page content. Pairing
// PeekPage (parallel, unaccounted) with ChargeRead (serial, in merge order)
// keeps device stats and hook ordering byte-identical to the serial path.
func (d *Device) ChargeRead(p PPN) {
	d.stats.Reads++
	if d.onOp != nil {
		d.onOp(OpRead, p)
	}
}

// Invalidate marks a valid page as stale (its logical page was overwritten or
// trimmed).
func (d *Device) Invalidate(p PPN) error {
	b, pg, err := d.blockOf(p)
	if err != nil {
		return err
	}
	pageRef := &b.pages[pg]
	if pageRef.state != PageValid {
		return fmt.Errorf("%w: ppn %d is %s", ErrInvalidateState, p, pageRef.state)
	}
	pageRef.state = PageInvalid
	b.validCnt--
	return nil
}

// EraseBlock erases one block, freeing all its pages. Erasing a block that
// still holds valid pages is refused: the FTL must migrate them first.
func (d *Device) EraseBlock(die, blk int) error {
	if die < 0 || die >= d.geo.Dies || blk < 0 || blk >= d.geo.BlocksPerDie {
		return fmt.Errorf("%w: die %d block %d", ErrOutOfRange, die, blk)
	}
	b := &d.dies[die][blk]
	if b.validCnt != 0 {
		return fmt.Errorf("%w: die %d block %d has %d valid pages", ErrEraseValid, die, blk, b.validCnt)
	}
	// Reset page state but keep the oob/data buffer capacity: superblocks
	// cycle through erase constantly under GC, and dropping the buffers
	// here would make every re-program after an erase allocate afresh.
	for i := range b.pages {
		p := &b.pages[i]
		p.state = PageFree
		p.lpn = 0
		p.oob = p.oob[:0]
		p.data = p.data[:0]
	}
	b.writePtr = 0
	b.programed = 0
	b.eraseCnt++
	d.dieErase[die]++
	d.stats.Erases++
	if d.onOp != nil {
		d.onOp(OpErase, d.geo.PPNOf(die, blk, 0))
	}
	if d.onErase != nil {
		d.onErase(die, blk, b.eraseCnt)
	}
	return nil
}

// EraseSuperblock erases every block of a superblock across all dies.
func (d *Device) EraseSuperblock(sb int) error {
	if sb < 0 || sb >= d.geo.Superblocks() {
		return fmt.Errorf("%w: superblock %d", ErrOutOfRange, sb)
	}
	for die := 0; die < d.geo.Dies; die++ {
		if err := d.EraseBlock(die, sb); err != nil {
			return err
		}
	}
	return nil
}

// State returns the state of a page.
func (d *Device) State(p PPN) (PageState, error) {
	b, pg, err := d.blockOf(p)
	if err != nil {
		return PageFree, err
	}
	return b.pages[pg].state, nil
}

// LPNAt returns the logical identity recorded in a non-free page without
// counting a flash read (FTL-internal bookkeeping access).
func (d *Device) LPNAt(p PPN) (LPN, error) {
	b, pg, err := d.blockOf(p)
	if err != nil {
		return InvalidLPN, err
	}
	if b.pages[pg].state == PageFree {
		return InvalidLPN, fmt.Errorf("%w: ppn %d", ErrReadFree, p)
	}
	return b.pages[pg].lpn, nil
}

// BlockValidCount returns the number of valid pages in a block.
func (d *Device) BlockValidCount(die, blk int) (int, error) {
	if die < 0 || die >= d.geo.Dies || blk < 0 || blk >= d.geo.BlocksPerDie {
		return 0, fmt.Errorf("%w: die %d block %d", ErrOutOfRange, die, blk)
	}
	return d.dies[die][blk].validCnt, nil
}

// SuperblockValidCount returns the number of valid pages in a superblock.
func (d *Device) SuperblockValidCount(sb int) (int, error) {
	if sb < 0 || sb >= d.geo.Superblocks() {
		return 0, fmt.Errorf("%w: superblock %d", ErrOutOfRange, sb)
	}
	total := 0
	for die := 0; die < d.geo.Dies; die++ {
		total += d.dies[die][sb].validCnt
	}
	return total, nil
}

// EraseCount returns the wear (erase cycles) of a block.
func (d *Device) EraseCount(die, blk int) (int, error) {
	if die < 0 || die >= d.geo.Dies || blk < 0 || blk >= d.geo.BlocksPerDie {
		return 0, fmt.Errorf("%w: die %d block %d", ErrOutOfRange, die, blk)
	}
	return d.dies[die][blk].eraseCnt, nil
}

// DieEraseCount returns the total erase cycles absorbed by one die. The
// per-die counts always sum to Stats().Erases.
func (d *Device) DieEraseCount(die int) (uint64, error) {
	if die < 0 || die >= d.geo.Dies {
		return 0, fmt.Errorf("%w: die %d", ErrOutOfRange, die)
	}
	return d.dieErase[die], nil
}

// MaxEraseCount returns the highest erase count across all blocks, a proxy
// for device wear.
func (d *Device) MaxEraseCount() int {
	maxErase := 0
	for die := range d.dies {
		for blk := range d.dies[die] {
			if c := d.dies[die][blk].eraseCnt; c > maxErase {
				maxErase = c
			}
		}
	}
	return maxErase
}

// TotalEraseCount returns the sum of erase counts across all blocks.
func (d *Device) TotalEraseCount() uint64 { return d.stats.Erases }
