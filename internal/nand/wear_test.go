package nand

import (
	"math/rand"
	"testing"
)

// nonPow2Geo has no power-of-two dimension anywhere, so any addressing code
// that silently assumes shift/mask arithmetic fails here.
var nonPow2Geo = Geometry{PageSize: 96, OOBSize: 12, PagesPerBlock: 7, BlocksPerDie: 5, Dies: 3}

func TestCoordinateRoundTripNonPowerOfTwo(t *testing.T) {
	g := nonPow2Geo
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for die := 0; die < g.Dies; die++ {
		for blk := 0; blk < g.BlocksPerDie; blk++ {
			for pg := 0; pg < g.PagesPerBlock; pg++ {
				p := g.PPNOf(die, blk, pg)
				gotDie, gotBlk, gotPg := g.Split(p)
				if gotDie != die || gotBlk != blk || gotPg != pg {
					t.Fatalf("Split(PPNOf(%d,%d,%d)) = (%d,%d,%d)", die, blk, pg, gotDie, gotBlk, gotPg)
				}
				if g.DieOf(p) != die || g.SuperblockOf(p) != blk {
					t.Fatalf("DieOf/SuperblockOf(%d) = %d/%d, want %d/%d", p, g.DieOf(p), g.SuperblockOf(p), die, blk)
				}
			}
		}
	}
	// Superblock striping round-trips too: every offset of every superblock
	// maps to a distinct PPN inside that superblock and back.
	for sb := 0; sb < g.Superblocks(); sb++ {
		seen := map[PPN]bool{}
		for off := 0; off < g.PagesPerSuperblock(); off++ {
			p := g.SuperblockPPN(sb, off)
			if seen[p] {
				t.Fatalf("superblock %d offset %d reuses ppn %d", sb, off, p)
			}
			seen[p] = true
			if g.SuperblockOf(p) != sb {
				t.Fatalf("SuperblockOf(SuperblockPPN(%d,%d)) = %d", sb, off, g.SuperblockOf(p))
			}
			if got := g.SuperblockOffset(p); got != off {
				t.Fatalf("SuperblockOffset(SuperblockPPN(%d,%d)) = %d", sb, off, got)
			}
		}
	}
}

// Under randomized program/invalidate/erase churn — the access pattern GC
// produces — the per-die erase counters must always sum to the device total,
// and the erase hook must observe every single erase with its exact
// cumulative per-block count.
func TestDieEraseInvariantUnderChurn(t *testing.T) {
	d := MustNewDevice(nonPow2Geo)
	g := d.Geometry()

	var hookErases uint64
	hookCounts := make(map[[2]int]int)
	d.SetEraseHook(func(die, blk, count int) {
		hookErases++
		hookCounts[[2]int{die, blk}]++
		if hookCounts[[2]int{die, blk}] != count {
			t.Fatalf("hook count for die %d blk %d = %d, device says %d",
				die, blk, hookCounts[[2]int{die, blk}], count)
		}
	})

	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 200; round++ {
		die := rng.Intn(g.Dies)
		blk := rng.Intn(g.BlocksPerDie)
		// Fill part of the block, invalidate everything, erase. Programs
		// must be in-order from the block's current write pointer, so erase
		// first if the block was left partially programmed by an earlier
		// round targeting it.
		n := rng.Intn(g.PagesPerBlock) + 1
		for pg := 0; pg < n; pg++ {
			p := g.PPNOf(die, blk, pg)
			if st, _ := d.State(p); st != PageFree {
				break
			}
			if err := d.Program(p, LPN(pg), nil); err != nil {
				t.Fatalf("program die %d blk %d pg %d: %v", die, blk, pg, err)
			}
			if err := d.Invalidate(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.EraseBlock(die, blk); err != nil {
			t.Fatalf("erase die %d blk %d: %v", die, blk, err)
		}

		var dieSum uint64
		for dd := 0; dd < g.Dies; dd++ {
			c, err := d.DieEraseCount(dd)
			if err != nil {
				t.Fatal(err)
			}
			dieSum += c
		}
		if dieSum != d.Stats().Erases {
			t.Fatalf("round %d: die sum %d != device total %d", round, dieSum, d.Stats().Erases)
		}
	}
	if hookErases != d.Stats().Erases {
		t.Fatalf("hook saw %d erases, device counted %d", hookErases, d.Stats().Erases)
	}
	// Per-block hook tallies must match the device's wear counters exactly.
	for coord, n := range hookCounts {
		c, err := d.EraseCount(coord[0], coord[1])
		if err != nil {
			t.Fatal(err)
		}
		if c != n {
			t.Fatalf("die %d blk %d: hook %d, device %d", coord[0], coord[1], n, c)
		}
	}
}

func TestDieEraseCountRange(t *testing.T) {
	d := MustNewDevice(nonPow2Geo)
	for _, die := range []int{-1, nonPow2Geo.Dies} {
		if _, err := d.DieEraseCount(die); err == nil {
			t.Fatalf("DieEraseCount(%d) accepted out-of-range die", die)
		}
	}
}

// The erase hook is nil by default; its cost on the erase path must be a
// single predictable branch. This benchmark pairs with the hooked variant to
// show the delta.
func BenchmarkEraseBlock(b *testing.B) {
	run := func(b *testing.B, hook func(die, blk, count int)) {
		d := MustNewDevice(Geometry{PageSize: 512, OOBSize: 16, PagesPerBlock: 8, BlocksPerDie: 4, Dies: 2})
		d.SetEraseHook(hook)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := d.EraseBlock(0, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nil-hook", func(b *testing.B) { run(b, nil) })
	b.Run("hooked", func(b *testing.B) {
		var sink uint64
		run(b, func(die, blk, count int) { sink += uint64(count) })
	})
}
