package nand

import (
	"errors"
	"testing"
)

func TestProgramReadRoundTrip(t *testing.T) {
	d := MustNewDevice(testGeo())
	p := d.Geometry().PPNOf(0, 0, 0)
	oob := []byte{1, 2, 3, 4}
	if err := d.Program(p, 42, oob); err != nil {
		t.Fatalf("Program: %v", err)
	}
	lpn, got, err := d.Read(p)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if lpn != 42 {
		t.Errorf("lpn = %d, want 42", lpn)
	}
	if string(got) != string(oob) {
		t.Errorf("oob = %v, want %v", got, oob)
	}
	st, _ := d.State(p)
	if st != PageValid {
		t.Errorf("state = %v, want valid", st)
	}
}

func TestProgramEnforcesSequentialOrder(t *testing.T) {
	d := MustNewDevice(testGeo())
	g := d.Geometry()
	// Page 1 before page 0 must fail.
	if err := d.Program(g.PPNOf(0, 0, 1), 1, nil); !errors.Is(err, ErrNotSequential) {
		t.Fatalf("out-of-order program: err = %v, want ErrNotSequential", err)
	}
	if err := d.Program(g.PPNOf(0, 0, 0), 1, nil); err != nil {
		t.Fatalf("in-order program: %v", err)
	}
	if err := d.Program(g.PPNOf(0, 0, 1), 2, nil); err != nil {
		t.Fatalf("next in-order program: %v", err)
	}
}

func TestProgramRejectsNonFreePage(t *testing.T) {
	d := MustNewDevice(testGeo())
	p := d.Geometry().PPNOf(0, 0, 0)
	if err := d.Program(p, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Program(p, 2, nil); !errors.Is(err, ErrNotFree) {
		t.Fatalf("reprogram: err = %v, want ErrNotFree", err)
	}
}

func TestProgramRejectsOversizeOOB(t *testing.T) {
	d := MustNewDevice(testGeo())
	big := make([]byte, d.Geometry().OOBSize+1)
	err := d.Program(d.Geometry().PPNOf(0, 0, 0), 1, big)
	if !errors.Is(err, ErrOOBTooLarge) {
		t.Fatalf("err = %v, want ErrOOBTooLarge", err)
	}
}

func TestReadFreePageFails(t *testing.T) {
	d := MustNewDevice(testGeo())
	if _, _, err := d.Read(d.Geometry().PPNOf(0, 0, 0)); !errors.Is(err, ErrReadFree) {
		t.Fatalf("err = %v, want ErrReadFree", err)
	}
}

func TestInvalidateTransitions(t *testing.T) {
	d := MustNewDevice(testGeo())
	p := d.Geometry().PPNOf(0, 0, 0)
	if err := d.Invalidate(p); !errors.Is(err, ErrInvalidateState) {
		t.Fatalf("invalidate free: err = %v, want ErrInvalidateState", err)
	}
	if err := d.Program(p, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Invalidate(p); err != nil {
		t.Fatalf("invalidate valid: %v", err)
	}
	st, _ := d.State(p)
	if st != PageInvalid {
		t.Errorf("state = %v, want invalid", st)
	}
	if err := d.Invalidate(p); !errors.Is(err, ErrInvalidateState) {
		t.Fatalf("double invalidate: err = %v, want ErrInvalidateState", err)
	}
	// Invalid pages remain readable (stale data).
	if _, _, err := d.Read(p); err != nil {
		t.Fatalf("read invalid page: %v", err)
	}
}

func TestEraseRefusesValidPages(t *testing.T) {
	d := MustNewDevice(testGeo())
	p := d.Geometry().PPNOf(0, 0, 0)
	if err := d.Program(p, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.EraseBlock(0, 0); !errors.Is(err, ErrEraseValid) {
		t.Fatalf("erase with valid page: err = %v, want ErrEraseValid", err)
	}
	if err := d.Invalidate(p); err != nil {
		t.Fatal(err)
	}
	if err := d.EraseBlock(0, 0); err != nil {
		t.Fatalf("erase after invalidate: %v", err)
	}
	st, _ := d.State(p)
	if st != PageFree {
		t.Errorf("post-erase state = %v, want free", st)
	}
	if c, _ := d.EraseCount(0, 0); c != 1 {
		t.Errorf("erase count = %d, want 1", c)
	}
	// Erased block can be programmed again from page 0.
	if err := d.Program(p, 7, nil); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
}

func TestEraseSuperblock(t *testing.T) {
	d := MustNewDevice(testGeo())
	g := d.Geometry()
	// Fill superblock 2 via round-robin offsets, then invalidate everything.
	for off := 0; off < g.PagesPerSuperblock(); off++ {
		p := g.SuperblockPPN(2, off)
		if err := d.Program(p, LPN(off), nil); err != nil {
			t.Fatalf("program off %d: %v", off, err)
		}
	}
	if n, _ := d.SuperblockValidCount(2); n != g.PagesPerSuperblock() {
		t.Fatalf("valid count = %d, want %d", n, g.PagesPerSuperblock())
	}
	for off := 0; off < g.PagesPerSuperblock(); off++ {
		if err := d.Invalidate(g.SuperblockPPN(2, off)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.EraseSuperblock(2); err != nil {
		t.Fatalf("EraseSuperblock: %v", err)
	}
	if n, _ := d.SuperblockValidCount(2); n != 0 {
		t.Errorf("valid count after erase = %d", n)
	}
	if got := d.Stats().Erases; got != uint64(g.Dies) {
		t.Errorf("erases = %d, want %d", got, g.Dies)
	}
}

func TestOutOfRangeAddresses(t *testing.T) {
	d := MustNewDevice(testGeo())
	bad := PPN(d.Geometry().TotalPages())
	if err := d.Program(bad, 0, nil); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("program: err = %v, want ErrOutOfRange", err)
	}
	if _, _, err := d.Read(bad); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read: err = %v, want ErrOutOfRange", err)
	}
	if err := d.EraseBlock(99, 0); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("erase: err = %v, want ErrOutOfRange", err)
	}
	if err := d.EraseSuperblock(-1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("erase sb: err = %v, want ErrOutOfRange", err)
	}
}

func TestStatsAndOpHook(t *testing.T) {
	d := MustNewDevice(testGeo())
	g := d.Geometry()
	var hooks []OpKind
	d.SetOpHook(func(k OpKind, p PPN) { hooks = append(hooks, k) })
	p := g.PPNOf(0, 0, 0)
	if err := d.Program(p, 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Read(p); err != nil {
		t.Fatal(err)
	}
	if err := d.Invalidate(p); err != nil {
		t.Fatal(err)
	}
	if err := d.EraseBlock(0, 0); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Programs != 1 || s.Reads != 1 || s.Erases != 1 {
		t.Errorf("stats = %+v, want 1/1/1", s)
	}
	want := []OpKind{OpProgram, OpRead, OpErase}
	if len(hooks) != len(want) {
		t.Fatalf("hook calls = %v, want %v", hooks, want)
	}
	for i := range want {
		if hooks[i] != want[i] {
			t.Errorf("hook[%d] = %v, want %v", i, hooks[i], want[i])
		}
	}
}

func TestOOBIsCopied(t *testing.T) {
	d := MustNewDevice(testGeo())
	p := d.Geometry().PPNOf(0, 0, 0)
	oob := []byte{9, 9}
	if err := d.Program(p, 1, oob); err != nil {
		t.Fatal(err)
	}
	oob[0] = 0 // mutate caller's buffer
	_, got, _ := d.Read(p)
	if got[0] != 9 {
		t.Error("device OOB aliased caller buffer; want a copy")
	}
}

func TestWearTracking(t *testing.T) {
	d := MustNewDevice(testGeo())
	p := d.Geometry().PPNOf(1, 3, 0)
	for i := 0; i < 5; i++ {
		if err := d.Program(p, LPN(i), nil); err != nil {
			t.Fatal(err)
		}
		if err := d.Invalidate(p); err != nil {
			t.Fatal(err)
		}
		if err := d.EraseBlock(1, 3); err != nil {
			t.Fatal(err)
		}
	}
	if c, _ := d.EraseCount(1, 3); c != 5 {
		t.Errorf("erase count = %d, want 5", c)
	}
	if d.MaxEraseCount() != 5 {
		t.Errorf("MaxEraseCount = %d, want 5", d.MaxEraseCount())
	}
}

func TestStateStrings(t *testing.T) {
	if PageFree.String() != "free" || PageValid.String() != "valid" || PageInvalid.String() != "invalid" {
		t.Error("PageState strings wrong")
	}
	if OpRead.String() != "read" || OpProgram.String() != "program" || OpErase.String() != "erase" {
		t.Error("OpKind strings wrong")
	}
}

func TestProgramFullReadFull(t *testing.T) {
	d := MustNewDevice(testGeo())
	p := d.Geometry().PPNOf(0, 0, 0)
	data := make([]byte, 1000)
	data[0] = 0x5A
	oob := []byte{1, 2, 3}
	if err := d.ProgramFull(p, 7, data, oob); err != nil {
		t.Fatal(err)
	}
	lpn, gotData, gotOOB, err := d.ReadFull(p)
	if err != nil {
		t.Fatal(err)
	}
	if lpn != 7 || gotData[0] != 0x5A || len(gotData) != 1000 || gotOOB[1] != 2 {
		t.Errorf("ReadFull = %d, %d bytes, oob %v", lpn, len(gotData), gotOOB)
	}
	// Oversized data payload is rejected.
	big := make([]byte, d.Geometry().PageSize+1)
	if err := d.ProgramFull(d.Geometry().PPNOf(0, 0, 1), 8, big, nil); !errors.Is(err, ErrDataTooLarge) {
		t.Errorf("oversize data: err = %v", err)
	}
	// ReadFull of a free page fails.
	if _, _, _, err := d.ReadFull(d.Geometry().PPNOf(1, 0, 0)); !errors.Is(err, ErrReadFree) {
		t.Errorf("free ReadFull: err = %v", err)
	}
	// Data payload is copied.
	data[0] = 0
	_, gotData, _, _ = d.ReadFull(p)
	if gotData[0] != 0x5A {
		t.Error("data payload aliased caller buffer")
	}
}
