package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// RecordSource yields trace records one at a time. Next returns io.EOF when
// the stream is exhausted. Reader implements it for CSV files; workload
// generators can be adapted to it for synthetic streams.
type RecordSource interface {
	Next() (Record, error)
}

// Reader streams trace records from CSV without materializing the whole
// trace, so multi-GB files replay in constant memory. Three layouts are
// accepted, detected per row by field count:
//
//	4 fields (native):  timestamp_us,op,offset_bytes,size_bytes
//	5 fields (Alibaba): device_id,op,offset_bytes,size_bytes,timestamp_us
//	7 fields (MSR Cambridge):
//	    timestamp,hostname,disk_number,type,offset_bytes,size_bytes,response_time
//
// op is R/W/T (case-insensitive; D is accepted as a discard alias). The MSR
// type field is the word Read/Write/Trim. MSR timestamps are Windows
// filetime ticks (100 ns); they are converted to microseconds relative to
// the first record, matching the native layout's time base.
//
// Real trace files ship with a header row; a first line that fails to parse
// is skipped, exactly once (SkippedHeader reports it). Any later
// unparseable line is an error.
type Reader struct {
	cr      *csv.Reader
	line    int
	header  bool
	msrBase uint64
	msrSeen bool
}

// NewReader returns a streaming reader over r.
func NewReader(r io.Reader) *Reader {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	return &Reader{cr: cr}
}

// SkippedHeader reports whether the first line was skipped as a header row.
func (r *Reader) SkippedHeader() bool { return r.header }

// Next returns the next record, or io.EOF at end of stream.
func (r *Reader) Next() (Record, error) {
	for {
		fields, err := r.cr.Read()
		if err != nil {
			if err == io.EOF {
				return Record{}, io.EOF
			}
			return Record{}, fmt.Errorf("trace: %w", err)
		}
		r.line++
		rec, perr := r.parseRow(fields)
		if perr != nil {
			if r.line == 1 {
				r.header = true
				continue
			}
			return Record{}, fmt.Errorf("trace: line %d: %w", r.line, perr)
		}
		return rec, nil
	}
}

func (r *Reader) parseRow(fields []string) (Record, error) {
	switch len(fields) {
	case 4:
		return parseFields(fields[0], fields[1], fields[2], fields[3])
	case 5:
		return parseFields(fields[4], fields[1], fields[2], fields[3])
	case 7:
		return r.parseMSR(fields)
	default:
		return Record{}, fmt.Errorf("expected 4, 5 or 7 fields, got %d", len(fields))
	}
}

// parseMSR parses one MSR-Cambridge row and rebases its filetime timestamp
// to µs since the first record.
func (r *Reader) parseMSR(fields []string) (Record, error) {
	rec, err := parseFields("0", fields[3], fields[4], fields[5])
	if err != nil {
		return rec, err
	}
	ticks, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return rec, fmt.Errorf("bad timestamp %q: %w", fields[0], err)
	}
	us := ticks / 10 // 100 ns filetime ticks -> µs
	if !r.msrSeen {
		r.msrSeen = true
		r.msrBase = us
	}
	if us >= r.msrBase {
		rec.Time = us - r.msrBase
	}
	return rec, nil
}

func parseFields(ts, op, off, size string) (Record, error) {
	var rec Record
	t, err := strconv.ParseUint(ts, 10, 64)
	if err != nil {
		return rec, fmt.Errorf("bad timestamp %q: %w", ts, err)
	}
	o, err := strconv.ParseUint(off, 10, 64)
	if err != nil {
		return rec, fmt.Errorf("bad offset %q: %w", off, err)
	}
	s, err := strconv.ParseUint(size, 10, 32)
	if err != nil {
		return rec, fmt.Errorf("bad size %q: %w", size, err)
	}
	switch {
	case strings.EqualFold(op, "R") || strings.EqualFold(op, "Read"):
		rec.Op = OpRead
	case strings.EqualFold(op, "W") || strings.EqualFold(op, "Write"):
		rec.Op = OpWrite
	case strings.EqualFold(op, "T") || strings.EqualFold(op, "D") ||
		strings.EqualFold(op, "Trim"):
		rec.Op = OpTrim
	default:
		return rec, fmt.Errorf("bad op %q (want R, W or T)", op)
	}
	rec.Time = t
	rec.Offset = o
	rec.Size = uint32(s)
	return rec, nil
}
