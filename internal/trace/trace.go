// Package trace models block-level I/O traces: the record format, CSV
// parsing/writing (native and Alibaba-Cloud-style layouts), expansion of
// byte-addressed requests into page-level operations with the request
// context PHFTL's features need (io_len, is_seq), aggregate statistics, and
// offline page-lifetime annotation used as ground truth for Table I.
package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Op is the request type.
type Op byte

const (
	// OpRead is a host read.
	OpRead Op = 'R'
	// OpWrite is a host write.
	OpWrite Op = 'W'
)

// Record is one block-level request.
type Record struct {
	Time   uint64 // arrival time in microseconds since trace start
	Op     Op
	Offset uint64 // byte offset
	Size   uint32 // bytes
}

// PageOp is one page-granularity operation produced by expanding a Record,
// carrying the per-request context PHFTL extracts features from.
type PageOp struct {
	LPN      uint32
	Write    bool
	ReqPages int    // pages in the parent request (io_len)
	Seq      bool   // request starts where the previous request of same kind ended
	Time     uint64 // parent request arrival time, µs
}

// Expand converts byte-addressed records into page-level operations for the
// given page size, wrapping LPNs modulo drivePages so traces recorded on
// larger drives can be replayed on scaled-down ones. A request is sequential
// if its byte offset equals the end offset of the previous request of the
// same kind, mirroring how firmware detects streams.
func Expand(records []Record, pageSize int, drivePages int) []PageOp {
	var out []PageOp
	var lastWriteEnd, lastReadEnd uint64
	for _, r := range records {
		if r.Size == 0 {
			continue
		}
		first := r.Offset / uint64(pageSize)
		last := (r.Offset + uint64(r.Size) - 1) / uint64(pageSize)
		n := int(last - first + 1)
		seq := false
		if r.Op == OpWrite {
			seq = r.Offset == lastWriteEnd && lastWriteEnd != 0
			lastWriteEnd = r.Offset + uint64(r.Size)
		} else {
			seq = r.Offset == lastReadEnd && lastReadEnd != 0
			lastReadEnd = r.Offset + uint64(r.Size)
		}
		for p := first; p <= last; p++ {
			out = append(out, PageOp{
				LPN:      uint32(p % uint64(drivePages)),
				Write:    r.Op == OpWrite,
				ReqPages: n,
				Seq:      seq,
				Time:     r.Time,
			})
		}
	}
	return out
}

// Stats summarizes a trace.
type Stats struct {
	Reads, Writes           int
	ReadBytes, WriteBytes   uint64
	MinOffset, MaxOffsetEnd uint64
	Duration                uint64 // µs between first and last record
}

// Summarize computes aggregate statistics.
func Summarize(records []Record) Stats {
	var s Stats
	if len(records) == 0 {
		return s
	}
	s.MinOffset = ^uint64(0)
	first, last := records[0].Time, records[0].Time
	for _, r := range records {
		if r.Op == OpWrite {
			s.Writes++
			s.WriteBytes += uint64(r.Size)
		} else {
			s.Reads++
			s.ReadBytes += uint64(r.Size)
		}
		if r.Offset < s.MinOffset {
			s.MinOffset = r.Offset
		}
		if end := r.Offset + uint64(r.Size); end > s.MaxOffsetEnd {
			s.MaxOffsetEnd = end
		}
		if r.Time < first {
			first = r.Time
		}
		if r.Time > last {
			last = r.Time
		}
	}
	s.Duration = last - first
	return s
}

// InfiniteLifetime marks a page write that is never overwritten within the
// trace (read-only or written-once data).
const InfiniteLifetime = ^uint32(0)

// AnnotateLifetimes computes, for every page-level *write* in ops (in
// order), its ground-truth lifetime: the number of logical page writes
// between it and the next write to the same LPN, following the paper's
// definition of the global page-write counter as a virtual clock (§III-B).
// Writes never overwritten get InfiniteLifetime. The returned slice has one
// entry per write op, in encounter order; read ops contribute no entry.
func AnnotateLifetimes(ops []PageOp) []uint32 {
	// First pass: index of previous write per LPN, patched forward.
	type pending struct {
		writeIdx int    // index into the result slice
		clock    uint64 // virtual clock at that write
	}
	lastWrite := make(map[uint32]pending)
	var lifetimes []uint32
	var clock uint64
	for _, op := range ops {
		if !op.Write {
			continue
		}
		clock++
		if prev, ok := lastWrite[op.LPN]; ok {
			lifetimes[prev.writeIdx] = uint32(clock - prev.clock)
		}
		lifetimes = append(lifetimes, InfiniteLifetime)
		lastWrite[op.LPN] = pending{writeIdx: len(lifetimes) - 1, clock: clock}
	}
	return lifetimes
}

// ReadCSV parses trace records from r. Two layouts are accepted, detected
// per row by field count:
//
//	4 fields (native):  timestamp_us,op,offset_bytes,size_bytes
//	5 fields (Alibaba): device_id,op,offset_bytes,size_bytes,timestamp_us
//
// op is R/W (case-insensitive).
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = -1
	var out []Record
	line := 0
	for {
		fields, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line+1, err)
		}
		line++
		var rec Record
		switch len(fields) {
		case 4:
			rec, err = parseFields(fields[0], fields[1], fields[2], fields[3])
		case 5:
			rec, err = parseFields(fields[4], fields[1], fields[2], fields[3])
		default:
			return nil, fmt.Errorf("trace: line %d: expected 4 or 5 fields, got %d", line, len(fields))
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func parseFields(ts, op, off, size string) (Record, error) {
	var rec Record
	t, err := strconv.ParseUint(ts, 10, 64)
	if err != nil {
		return rec, fmt.Errorf("bad timestamp %q: %w", ts, err)
	}
	o, err := strconv.ParseUint(off, 10, 64)
	if err != nil {
		return rec, fmt.Errorf("bad offset %q: %w", off, err)
	}
	s, err := strconv.ParseUint(size, 10, 32)
	if err != nil {
		return rec, fmt.Errorf("bad size %q: %w", size, err)
	}
	switch op {
	case "R", "r":
		rec.Op = OpRead
	case "W", "w":
		rec.Op = OpWrite
	default:
		return rec, fmt.Errorf("bad op %q (want R or W)", op)
	}
	rec.Time = t
	rec.Offset = o
	rec.Size = uint32(s)
	return rec, nil
}

// WriteCSV writes records in the native 4-field layout.
func WriteCSV(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		if _, err := fmt.Fprintf(bw, "%d,%c,%d,%d\n", r.Time, r.Op, r.Offset, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}
