// Package trace models block-level I/O traces: the record format, CSV
// parsing/writing (native, Alibaba-Cloud-style and MSR-Cambridge layouts),
// expansion of byte-addressed requests into page-level operations with the
// request context PHFTL's features need (io_len, is_seq), aggregate
// statistics, and offline page-lifetime annotation used as ground truth for
// Table I. Reader and Expander are the streaming forms: multi-GB traces
// parse and expand in constant memory.
package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Op is the request type.
type Op byte

const (
	// OpRead is a host read.
	OpRead Op = 'R'
	// OpWrite is a host write.
	OpWrite Op = 'W'
	// OpTrim is a host discard: the addressed range no longer holds live
	// data and the device may invalidate it (ATA TRIM / NVMe deallocate).
	OpTrim Op = 'T'
)

// Record is one block-level request.
type Record struct {
	Time   uint64 // arrival time in microseconds since trace start
	Op     Op
	Offset uint64 // byte offset
	Size   uint32 // bytes
}

// PageOp is one page-granularity operation produced by expanding a Record,
// carrying the per-request context PHFTL extracts features from.
type PageOp struct {
	LPN      uint32
	Write    bool
	Trim     bool   // discard of the page (Write is false)
	ReqPages int    // pages in the parent request (io_len)
	Seq      bool   // request starts where the previous request of same kind ended
	Time     uint64 // parent request arrival time, µs
}

// request-kind indices for the Expander's per-kind stream-detection state.
const (
	kindWrite = iota
	kindRead
	kindTrim
	numKinds
)

func kindOf(op Op) int {
	switch op {
	case OpWrite:
		return kindWrite
	case OpTrim:
		return kindTrim
	default:
		return kindRead
	}
}

// Expander incrementally converts byte-addressed records into page-level
// operations for a given page size, wrapping LPNs modulo drivePages so
// traces recorded on larger drives replay on scaled-down ones. It holds only
// the per-kind sequential-stream state, so arbitrarily long traces expand in
// constant memory. A request is sequential if its byte offset equals the end
// offset of the previous request of the same kind, mirroring how firmware
// detects streams; whether a previous request exists is tracked explicitly
// per kind (a sentinel end-offset of 0 would misclassify requests
// legitimately continuing from offset 0).
type Expander struct {
	pageSize   int
	drivePages int
	lastEnd    [numKinds]uint64
	seen       [numKinds]bool
}

// NewExpander returns an Expander for the given page size and drive size.
func NewExpander(pageSize, drivePages int) *Expander {
	return &Expander{pageSize: pageSize, drivePages: drivePages}
}

// Expand converts one record into its page ops, invoking yield once per
// page in ascending LPN order. A non-nil error from yield aborts the
// expansion and is returned. Zero-size records expand to nothing.
func (e *Expander) Expand(r Record, yield func(PageOp) error) error {
	if r.Size == 0 {
		return nil
	}
	first := r.Offset / uint64(e.pageSize)
	last := (r.Offset + uint64(r.Size) - 1) / uint64(e.pageSize)
	n := int(last - first + 1)
	k := kindOf(r.Op)
	seq := e.seen[k] && r.Offset == e.lastEnd[k]
	e.seen[k] = true
	e.lastEnd[k] = r.Offset + uint64(r.Size)
	op := PageOp{
		Write:    r.Op == OpWrite,
		Trim:     r.Op == OpTrim,
		ReqPages: n,
		Seq:      seq,
		Time:     r.Time,
	}
	for p := first; p <= last; p++ {
		op.LPN = uint32(p % uint64(e.drivePages))
		if err := yield(op); err != nil {
			return err
		}
	}
	return nil
}

// Expand converts byte-addressed records into page-level operations for the
// given page size; it is the slice form of Expander (see there for the
// sequential-detection semantics).
func Expand(records []Record, pageSize int, drivePages int) []PageOp {
	var out []PageOp
	e := NewExpander(pageSize, drivePages)
	for _, r := range records {
		e.Expand(r, func(op PageOp) error { // nolint: errcheck — never errs
			out = append(out, op)
			return nil
		})
	}
	return out
}

// Stats summarizes a trace.
type Stats struct {
	Reads, Writes, Trims    int
	ReadBytes, WriteBytes   uint64
	TrimBytes               uint64
	MinOffset, MaxOffsetEnd uint64
	Duration                uint64 // µs between first and last record
}

// Summarize computes aggregate statistics.
func Summarize(records []Record) Stats {
	var s Stats
	if len(records) == 0 {
		return s
	}
	s.MinOffset = ^uint64(0)
	first, last := records[0].Time, records[0].Time
	for _, r := range records {
		switch r.Op {
		case OpWrite:
			s.Writes++
			s.WriteBytes += uint64(r.Size)
		case OpTrim:
			s.Trims++
			s.TrimBytes += uint64(r.Size)
		default:
			s.Reads++
			s.ReadBytes += uint64(r.Size)
		}
		if r.Offset < s.MinOffset {
			s.MinOffset = r.Offset
		}
		if end := r.Offset + uint64(r.Size); end > s.MaxOffsetEnd {
			s.MaxOffsetEnd = end
		}
		if r.Time < first {
			first = r.Time
		}
		if r.Time > last {
			last = r.Time
		}
	}
	s.Duration = last - first
	return s
}

// InfiniteLifetime marks a page write that is never overwritten within the
// trace (read-only or written-once data).
const InfiniteLifetime = ^uint32(0)

// clampLifetime converts a virtual-clock gap to its uint32 lifetime label.
// Gaps that do not fit in uint32 clamp to InfiniteLifetime: a page that
// lived 2^32−1 page writes is colder than any plausible classification
// threshold, and letting the conversion wrap would mislabel exactly those
// coldest pages as hot in the ground truth.
func clampLifetime(gap uint64) uint32 {
	if gap >= uint64(InfiniteLifetime) {
		return InfiniteLifetime
	}
	return uint32(gap)
}

// AnnotateLifetimes computes, for every page-level *write* in ops (in
// order), its ground-truth lifetime: the number of logical page writes
// between it and the next invalidation of the same LPN — an overwrite, or a
// trim (a discarded page is dead the instant the trim lands; the gap is
// counted as if the trim were the next write) — following the paper's
// definition of the global page-write counter as a virtual clock (§III-B).
// Writes never invalidated get InfiniteLifetime, as do (pathologically cold)
// writes whose lifetime overflows uint32. The returned slice has one entry
// per write op, in encounter order; read and trim ops contribute no entry.
func AnnotateLifetimes(ops []PageOp) []uint32 {
	// First pass: index of previous write per LPN, patched forward.
	type pending struct {
		writeIdx int    // index into the result slice
		clock    uint64 // virtual clock at that write
	}
	lastWrite := make(map[uint32]pending)
	var lifetimes []uint32
	var clock uint64
	for _, op := range ops {
		if op.Trim {
			if prev, ok := lastWrite[op.LPN]; ok {
				lifetimes[prev.writeIdx] = clampLifetime(clock - prev.clock + 1)
				delete(lastWrite, op.LPN)
			}
			continue
		}
		if !op.Write {
			continue
		}
		clock++
		if prev, ok := lastWrite[op.LPN]; ok {
			lifetimes[prev.writeIdx] = clampLifetime(clock - prev.clock)
		}
		lifetimes = append(lifetimes, InfiniteLifetime)
		lastWrite[op.LPN] = pending{writeIdx: len(lifetimes) - 1, clock: clock}
	}
	return lifetimes
}

// ReadCSV parses all trace records from r; it is the slice form of Reader
// (see there for the accepted layouts and header handling).
func ReadCSV(r io.Reader) ([]Record, error) {
	tr := NewReader(r)
	var out []Record
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// WriteCSV writes records in the native 4-field layout.
func WriteCSV(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		if _, err := fmt.Fprintf(bw, "%d,%c,%d,%d\n", r.Time, r.Op, r.Offset, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}
