package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExpandSplitsRequestsIntoPages(t *testing.T) {
	recs := []Record{
		{Time: 10, Op: OpWrite, Offset: 0, Size: 4096 * 3},
		{Time: 20, Op: OpRead, Offset: 4096, Size: 4096},
	}
	ops := Expand(recs, 4096, 1000)
	if len(ops) != 4 {
		t.Fatalf("len = %d, want 4", len(ops))
	}
	for i := 0; i < 3; i++ {
		op := ops[i]
		if !op.Write || op.LPN != uint32(i) || op.ReqPages != 3 || op.Time != 10 {
			t.Errorf("op[%d] = %+v", i, op)
		}
	}
	if ops[3].Write || ops[3].LPN != 1 || ops[3].ReqPages != 1 {
		t.Errorf("read op = %+v", ops[3])
	}
}

func TestExpandUnalignedRequest(t *testing.T) {
	// 100 bytes starting at byte 4000 straddles pages 0 and 1.
	ops := Expand([]Record{{Op: OpWrite, Offset: 4000, Size: 200}}, 4096, 100)
	if len(ops) != 2 || ops[0].LPN != 0 || ops[1].LPN != 1 {
		t.Fatalf("ops = %+v", ops)
	}
	// Zero-size requests disappear.
	if got := Expand([]Record{{Op: OpWrite, Offset: 0, Size: 0}}, 4096, 100); len(got) != 0 {
		t.Errorf("zero-size produced %d ops", len(got))
	}
}

func TestExpandSequentialDetection(t *testing.T) {
	recs := []Record{
		{Op: OpWrite, Offset: 4096, Size: 4096},  // not seq (first)
		{Op: OpWrite, Offset: 8192, Size: 4096},  // seq: starts at prev end
		{Op: OpRead, Offset: 0, Size: 4096},      // read stream independent
		{Op: OpWrite, Offset: 12288, Size: 4096}, // still seq for writes
		{Op: OpWrite, Offset: 0, Size: 4096},     // jump: not seq
	}
	ops := Expand(recs, 4096, 100)
	wantSeq := []bool{false, true, false, true, false}
	for i, w := range wantSeq {
		if ops[i].Seq != w {
			t.Errorf("op[%d].Seq = %v, want %v", i, ops[i].Seq, w)
		}
	}
}

func TestExpandWrapsLPNs(t *testing.T) {
	ops := Expand([]Record{{Op: OpWrite, Offset: 4096 * 105, Size: 4096}}, 4096, 100)
	if ops[0].LPN != 5 {
		t.Errorf("LPN = %d, want 5 (105 mod 100)", ops[0].LPN)
	}
}

func TestExpandSequentialContinuationFromOffsetZero(t *testing.T) {
	// Regression: the old implementation used `lastWriteEnd != 0` as its
	// "have we seen a request" sentinel, so a request whose predecessor
	// legitimately ended at byte offset 0 (end-of-address-space wrap) was
	// never flagged sequential.
	wrapStart := ^uint64(0) - 4095 // last 4096 bytes of the address space
	recs := []Record{
		{Op: OpWrite, Offset: wrapStart, Size: 4096}, // ends at offset 0
		{Op: OpWrite, Offset: 0, Size: 4096},         // continues the stream
	}
	ops := Expand(recs, 4096, 100)
	if ops[0].Seq {
		t.Error("first request of a kind flagged sequential")
	}
	if !ops[1].Seq {
		t.Error("request continuing from offset 0 not flagged sequential")
	}
	// And the first-ever request at offset 0 must still NOT be sequential.
	ops = Expand([]Record{{Op: OpWrite, Offset: 0, Size: 4096}}, 4096, 100)
	if ops[0].Seq {
		t.Error("first request at offset 0 flagged sequential")
	}
}

func TestExpandTrimOps(t *testing.T) {
	recs := []Record{
		{Op: OpTrim, Offset: 0, Size: 4096 * 2},
		{Op: OpTrim, Offset: 8192, Size: 4096}, // sequential trim stream
		{Op: OpWrite, Offset: 8192, Size: 4096},
	}
	ops := Expand(recs, 4096, 100)
	if len(ops) != 4 {
		t.Fatalf("len = %d", len(ops))
	}
	for i := 0; i < 3; i++ {
		if !ops[i].Trim || ops[i].Write {
			t.Errorf("op[%d] = %+v, want trim", i, ops[i])
		}
	}
	if ops[0].ReqPages != 2 || ops[0].LPN != 0 || ops[1].LPN != 1 {
		t.Errorf("trim expansion = %+v, %+v", ops[0], ops[1])
	}
	if !ops[2].Seq {
		t.Error("sequential trim not flagged")
	}
	// Trims maintain their own stream: the write at 8192 does not continue
	// the trim stream.
	if ops[3].Seq || ops[3].Trim || !ops[3].Write {
		t.Errorf("write op = %+v", ops[3])
	}
}

func TestExpanderMatchesExpand(t *testing.T) {
	f := func(raw []uint8) bool {
		recs := make([]Record, len(raw))
		ops := []Op{OpWrite, OpRead, OpTrim}
		for i, b := range raw {
			recs[i] = Record{
				Op:     ops[b%3],
				Offset: uint64(b) * 1000,
				Size:   uint32(b%5) * 2048,
				Time:   uint64(i),
			}
		}
		want := Expand(recs, 4096, 64)
		e := NewExpander(4096, 64)
		var got []PageOp
		for _, r := range recs {
			if err := e.Expand(r, func(op PageOp) error {
				got = append(got, op)
				return nil
			}); err != nil {
				return false
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Time: 100, Op: OpWrite, Offset: 0, Size: 8192},
		{Time: 300, Op: OpRead, Offset: 8192, Size: 4096},
	}
	s := Summarize(recs)
	if s.Writes != 1 || s.Reads != 1 {
		t.Errorf("counts = %d/%d", s.Writes, s.Reads)
	}
	if s.WriteBytes != 8192 || s.ReadBytes != 4096 {
		t.Errorf("bytes = %d/%d", s.WriteBytes, s.ReadBytes)
	}
	if s.MaxOffsetEnd != 12288 || s.MinOffset != 0 {
		t.Errorf("range = [%d,%d)", s.MinOffset, s.MaxOffsetEnd)
	}
	if s.Duration != 200 {
		t.Errorf("duration = %d", s.Duration)
	}
	if empty := Summarize(nil); empty.Writes != 0 {
		t.Errorf("empty = %+v", empty)
	}
}

func TestAnnotateLifetimes(t *testing.T) {
	// Write sequence of LPNs: 1, 2, 1, 3, 1 (virtual clock = write index+1).
	mk := func(lpns ...uint32) []PageOp {
		ops := make([]PageOp, len(lpns))
		for i, l := range lpns {
			ops[i] = PageOp{LPN: l, Write: true, ReqPages: 1}
		}
		return ops
	}
	lifetimes := AnnotateLifetimes(mk(1, 2, 1, 3, 1))
	// Write 0 (lpn 1, clock 1) overwritten at clock 3: lifetime 2.
	// Write 2 (lpn 1, clock 3) overwritten at clock 5: lifetime 2.
	// Writes to lpn 2, 3 and the final lpn-1 write: infinite.
	want := []uint32{2, InfiniteLifetime, 2, InfiniteLifetime, InfiniteLifetime}
	if len(lifetimes) != len(want) {
		t.Fatalf("len = %d", len(lifetimes))
	}
	for i := range want {
		if lifetimes[i] != want[i] {
			t.Errorf("lifetime[%d] = %d, want %d", i, lifetimes[i], want[i])
		}
	}
}

func TestAnnotateLifetimesIgnoresReads(t *testing.T) {
	ops := []PageOp{
		{LPN: 1, Write: true},
		{LPN: 1, Write: false},
		{LPN: 1, Write: true},
	}
	lifetimes := AnnotateLifetimes(ops)
	if len(lifetimes) != 2 {
		t.Fatalf("len = %d, want 2 (reads excluded)", len(lifetimes))
	}
	if lifetimes[0] != 1 {
		t.Errorf("lifetime[0] = %d, want 1 (reads don't advance the clock)", lifetimes[0])
	}
}

// Property: lifetimes are consistent — replaying the write sequence, each
// finite lifetime must equal the gap to the next same-LPN write.
func TestAnnotateLifetimesProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		ops := make([]PageOp, len(raw))
		for i, b := range raw {
			ops[i] = PageOp{LPN: uint32(b % 16), Write: true}
		}
		lifetimes := AnnotateLifetimes(ops)
		for i := range ops {
			if lifetimes[i] == InfiniteLifetime {
				// Must be the last write to that LPN.
				for j := i + 1; j < len(ops); j++ {
					if ops[j].LPN == ops[i].LPN {
						return false
					}
				}
				continue
			}
			j := i + int(lifetimes[i])
			if j >= len(ops) || ops[j].LPN != ops[i].LPN {
				return false
			}
			for k := i + 1; k < j; k++ {
				if ops[k].LPN == ops[i].LPN {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeTrims(t *testing.T) {
	recs := []Record{
		{Time: 0, Op: OpWrite, Offset: 0, Size: 4096},
		{Time: 5, Op: OpTrim, Offset: 0, Size: 8192},
	}
	s := Summarize(recs)
	if s.Trims != 1 || s.TrimBytes != 8192 {
		t.Errorf("trims = %d/%d bytes", s.Trims, s.TrimBytes)
	}
	if s.Writes != 1 || s.Reads != 0 {
		t.Errorf("counts = %d writes, %d reads", s.Writes, s.Reads)
	}
	if s.MaxOffsetEnd != 8192 {
		t.Errorf("MaxOffsetEnd = %d", s.MaxOffsetEnd)
	}
}

func TestClampLifetime(t *testing.T) {
	// Regression: a lifetime >= 2^32 page writes used to silently wrap to a
	// small value, mislabeling the coldest pages as hot.
	cases := []struct {
		gap  uint64
		want uint32
	}{
		{1, 1},
		{1 << 31, 1 << 31},
		{uint64(InfiniteLifetime) - 1, InfiniteLifetime - 1},
		{uint64(InfiniteLifetime), InfiniteLifetime},
		{uint64(InfiniteLifetime) + 1, InfiniteLifetime}, // would wrap to 0
		{1 << 33, InfiniteLifetime},                      // would wrap to 2^33 mod 2^32 = 0
		{(1 << 32) + 7, InfiniteLifetime},                // would wrap to 7 ("hot")
	}
	for _, c := range cases {
		if got := clampLifetime(c.gap); got != c.want {
			t.Errorf("clampLifetime(%d) = %d, want %d", c.gap, got, c.want)
		}
	}
}

func TestAnnotateLifetimesTrim(t *testing.T) {
	// Writes to LPNs 1, 2; then LPN 1 is trimmed; then LPN 1 is rewritten.
	ops := []PageOp{
		{LPN: 1, Write: true},
		{LPN: 2, Write: true},
		{LPN: 1, Trim: true},
		{LPN: 1, Write: true},
	}
	lifetimes := AnnotateLifetimes(ops)
	if len(lifetimes) != 3 {
		t.Fatalf("len = %d, want 3 (trims contribute no entry)", len(lifetimes))
	}
	// Write 0 (clock 1) dies at the trim (clock still 2): gap 2-1+1 = 2.
	if lifetimes[0] != 2 {
		t.Errorf("trimmed write lifetime = %d, want 2", lifetimes[0])
	}
	// The rewrite after the trim must NOT resolve against the trimmed
	// write; both it and the LPN-2 write are never invalidated.
	if lifetimes[1] != InfiniteLifetime || lifetimes[2] != InfiniteLifetime {
		t.Errorf("lifetimes = %v", lifetimes)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := []Record{
		{Time: 1, Op: OpWrite, Offset: 4096, Size: 8192},
		{Time: 2, Op: OpRead, Offset: 0, Size: 512},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("rec[%d] = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestReadCSVAlibabaLayout(t *testing.T) {
	in := "3,W,8192,4096,123456\n3,r,0,512,123789\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Time != 123456 || got[0].Op != OpWrite || got[0].Offset != 8192 || got[0].Size != 4096 {
		t.Errorf("rec[0] = %+v", got[0])
	}
	if got[1].Op != OpRead {
		t.Errorf("rec[1].Op = %c", got[1].Op)
	}
}

func TestReadCSVErrors(t *testing.T) {
	// A bad first line is tolerated as a header row, so each malformed line
	// sits behind a valid one.
	cases := []string{
		"1,W,0,4096\n1,W,0\n",                      // too few fields
		"1,W,0,4096\nx,W,0,1\n",                    // bad timestamp
		"1,W,0,4096\n1,X,0,1\n",                    // bad op
		"1,W,0,4096\n1,W,abc,1\n",                  // bad offset
		"1,W,0,4096\n1,W,0,99999999999999999999\n", // size overflow
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestReadCSVHeaderRow(t *testing.T) {
	// Real Alibaba/MSR trace files ship with a header; exactly one
	// unparseable first line is skipped.
	in := "timestamp,op,offset,size\n10,W,0,4096\n20,R,4096,4096\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Op != OpWrite || got[1].Op != OpRead {
		t.Fatalf("records = %+v", got)
	}
	r := NewReader(strings.NewReader(in))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if !r.SkippedHeader() {
		t.Error("SkippedHeader = false after skipping a header")
	}
	// Headerless input must not report a skipped header.
	r = NewReader(strings.NewReader("10,W,0,4096\n"))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if r.SkippedHeader() {
		t.Error("SkippedHeader = true on headerless input")
	}
}

func TestReadCSVTrimOps(t *testing.T) {
	// Native, Alibaba and alias spellings of a discard.
	in := "1,T,0,4096\n0,t,4096,4096,2\n3,D,8192,4096\n4,d,12288,4096\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	for i, r := range got {
		if r.Op != OpTrim {
			t.Errorf("rec[%d].Op = %c, want T", i, r.Op)
		}
	}
	if got[1].Time != 2 || got[1].Offset != 4096 {
		t.Errorf("alibaba trim = %+v", got[1])
	}
}

func TestCSVTrimRoundTrip(t *testing.T) {
	recs := []Record{
		{Time: 1, Op: OpWrite, Offset: 0, Size: 4096},
		{Time: 2, Op: OpTrim, Offset: 0, Size: 4096},
		{Time: 3, Op: OpRead, Offset: 4096, Size: 512},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("rec[%d] = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestReadCSVMSRLayout(t *testing.T) {
	in := "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n" +
		"128166372003061629,usr,0,Write,8192,4096,551\n" +
		"128166372003071629,usr,0,Read,0,512,560\n" +
		"128166372003081629,usr,0,Trim,16384,4096,10\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Op != OpWrite || got[0].Offset != 8192 || got[0].Size != 4096 {
		t.Errorf("rec[0] = %+v", got[0])
	}
	if got[0].Time != 0 {
		t.Errorf("first MSR timestamp not rebased to 0: %d", got[0].Time)
	}
	// 10^4 filetime ticks = 1 ms = 1000 µs between rows.
	if got[1].Time != 1000 || got[2].Time != 2000 {
		t.Errorf("rebased times = %d, %d, want 1000, 2000", got[1].Time, got[2].Time)
	}
	if got[1].Op != OpRead || got[2].Op != OpTrim {
		t.Errorf("ops = %c, %c", got[1].Op, got[2].Op)
	}
}

func TestStreamingReaderMatchesReadCSV(t *testing.T) {
	in := "ts,op,off,size\n1,W,0,4096\n2,R,4096,512\n3,T,0,4096\n9,w,8192,8192,7\n"
	want, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(strings.NewReader(in))
	var got []Record
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		got = append(got, rec)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d records, slice form %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rec[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}
