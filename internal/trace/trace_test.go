package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExpandSplitsRequestsIntoPages(t *testing.T) {
	recs := []Record{
		{Time: 10, Op: OpWrite, Offset: 0, Size: 4096 * 3},
		{Time: 20, Op: OpRead, Offset: 4096, Size: 4096},
	}
	ops := Expand(recs, 4096, 1000)
	if len(ops) != 4 {
		t.Fatalf("len = %d, want 4", len(ops))
	}
	for i := 0; i < 3; i++ {
		op := ops[i]
		if !op.Write || op.LPN != uint32(i) || op.ReqPages != 3 || op.Time != 10 {
			t.Errorf("op[%d] = %+v", i, op)
		}
	}
	if ops[3].Write || ops[3].LPN != 1 || ops[3].ReqPages != 1 {
		t.Errorf("read op = %+v", ops[3])
	}
}

func TestExpandUnalignedRequest(t *testing.T) {
	// 100 bytes starting at byte 4000 straddles pages 0 and 1.
	ops := Expand([]Record{{Op: OpWrite, Offset: 4000, Size: 200}}, 4096, 100)
	if len(ops) != 2 || ops[0].LPN != 0 || ops[1].LPN != 1 {
		t.Fatalf("ops = %+v", ops)
	}
	// Zero-size requests disappear.
	if got := Expand([]Record{{Op: OpWrite, Offset: 0, Size: 0}}, 4096, 100); len(got) != 0 {
		t.Errorf("zero-size produced %d ops", len(got))
	}
}

func TestExpandSequentialDetection(t *testing.T) {
	recs := []Record{
		{Op: OpWrite, Offset: 4096, Size: 4096},  // not seq (first)
		{Op: OpWrite, Offset: 8192, Size: 4096},  // seq: starts at prev end
		{Op: OpRead, Offset: 0, Size: 4096},      // read stream independent
		{Op: OpWrite, Offset: 12288, Size: 4096}, // still seq for writes
		{Op: OpWrite, Offset: 0, Size: 4096},     // jump: not seq
	}
	ops := Expand(recs, 4096, 100)
	wantSeq := []bool{false, true, false, true, false}
	for i, w := range wantSeq {
		if ops[i].Seq != w {
			t.Errorf("op[%d].Seq = %v, want %v", i, ops[i].Seq, w)
		}
	}
}

func TestExpandWrapsLPNs(t *testing.T) {
	ops := Expand([]Record{{Op: OpWrite, Offset: 4096 * 105, Size: 4096}}, 4096, 100)
	if ops[0].LPN != 5 {
		t.Errorf("LPN = %d, want 5 (105 mod 100)", ops[0].LPN)
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Time: 100, Op: OpWrite, Offset: 0, Size: 8192},
		{Time: 300, Op: OpRead, Offset: 8192, Size: 4096},
	}
	s := Summarize(recs)
	if s.Writes != 1 || s.Reads != 1 {
		t.Errorf("counts = %d/%d", s.Writes, s.Reads)
	}
	if s.WriteBytes != 8192 || s.ReadBytes != 4096 {
		t.Errorf("bytes = %d/%d", s.WriteBytes, s.ReadBytes)
	}
	if s.MaxOffsetEnd != 12288 || s.MinOffset != 0 {
		t.Errorf("range = [%d,%d)", s.MinOffset, s.MaxOffsetEnd)
	}
	if s.Duration != 200 {
		t.Errorf("duration = %d", s.Duration)
	}
	if empty := Summarize(nil); empty.Writes != 0 {
		t.Errorf("empty = %+v", empty)
	}
}

func TestAnnotateLifetimes(t *testing.T) {
	// Write sequence of LPNs: 1, 2, 1, 3, 1 (virtual clock = write index+1).
	mk := func(lpns ...uint32) []PageOp {
		ops := make([]PageOp, len(lpns))
		for i, l := range lpns {
			ops[i] = PageOp{LPN: l, Write: true, ReqPages: 1}
		}
		return ops
	}
	lifetimes := AnnotateLifetimes(mk(1, 2, 1, 3, 1))
	// Write 0 (lpn 1, clock 1) overwritten at clock 3: lifetime 2.
	// Write 2 (lpn 1, clock 3) overwritten at clock 5: lifetime 2.
	// Writes to lpn 2, 3 and the final lpn-1 write: infinite.
	want := []uint32{2, InfiniteLifetime, 2, InfiniteLifetime, InfiniteLifetime}
	if len(lifetimes) != len(want) {
		t.Fatalf("len = %d", len(lifetimes))
	}
	for i := range want {
		if lifetimes[i] != want[i] {
			t.Errorf("lifetime[%d] = %d, want %d", i, lifetimes[i], want[i])
		}
	}
}

func TestAnnotateLifetimesIgnoresReads(t *testing.T) {
	ops := []PageOp{
		{LPN: 1, Write: true},
		{LPN: 1, Write: false},
		{LPN: 1, Write: true},
	}
	lifetimes := AnnotateLifetimes(ops)
	if len(lifetimes) != 2 {
		t.Fatalf("len = %d, want 2 (reads excluded)", len(lifetimes))
	}
	if lifetimes[0] != 1 {
		t.Errorf("lifetime[0] = %d, want 1 (reads don't advance the clock)", lifetimes[0])
	}
}

// Property: lifetimes are consistent — replaying the write sequence, each
// finite lifetime must equal the gap to the next same-LPN write.
func TestAnnotateLifetimesProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		ops := make([]PageOp, len(raw))
		for i, b := range raw {
			ops[i] = PageOp{LPN: uint32(b % 16), Write: true}
		}
		lifetimes := AnnotateLifetimes(ops)
		for i := range ops {
			if lifetimes[i] == InfiniteLifetime {
				// Must be the last write to that LPN.
				for j := i + 1; j < len(ops); j++ {
					if ops[j].LPN == ops[i].LPN {
						return false
					}
				}
				continue
			}
			j := i + int(lifetimes[i])
			if j >= len(ops) || ops[j].LPN != ops[i].LPN {
				return false
			}
			for k := i + 1; k < j; k++ {
				if ops[k].LPN == ops[i].LPN {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := []Record{
		{Time: 1, Op: OpWrite, Offset: 4096, Size: 8192},
		{Time: 2, Op: OpRead, Offset: 0, Size: 512},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("rec[%d] = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestReadCSVAlibabaLayout(t *testing.T) {
	in := "3,W,8192,4096,123456\n3,r,0,512,123789\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Time != 123456 || got[0].Op != OpWrite || got[0].Offset != 8192 || got[0].Size != 4096 {
		t.Errorf("rec[0] = %+v", got[0])
	}
	if got[1].Op != OpRead {
		t.Errorf("rec[1].Op = %c", got[1].Op)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"1,W,0\n",                      // too few fields
		"x,W,0,1\n",                    // bad timestamp
		"1,X,0,1\n",                    // bad op
		"1,W,abc,1\n",                  // bad offset
		"1,W,0,99999999999999999999\n", // size overflow
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}
