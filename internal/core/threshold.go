package core

import (
	"math"
	"sort"

	"github.com/phftl/phftl/internal/metrics"
	"github.com/phftl/phftl/internal/ml"
)

// ThresholdAdjuster implements the paper's Algorithm 1: at the end of each
// write window it moves the classification threshold toward the direction
// that improves prediction accuracy, probing three candidate thresholds
// (the previous threshold's percentile ± an adaptive step) with lightweight
// logistic-regression models, and seeding the very first window with the
// inflection point of the lifetime CDF (Figure 2).
type ThresholdAdjuster struct {
	step         int // percentile step length, clamped to [1,10]
	prev         float64
	prevValid    bool
	prevAdjusted bool
	prevDir      int
	seed         int64
	last         Decision

	// Pooled probe machinery: three candidates are probed per window, so the
	// labeling buffers and the logistic-regression evaluator are reused
	// across windows instead of reallocated (results are bit-identical).
	probe probeScratch
	eval  ml.LogRegEvaluator
}

// Decision describes how the last Pick call arrived at its threshold, for
// observability (obs.KindThresholdUpdate events).
type Decision struct {
	// Seeded is true when the threshold came from the lifetime-CDF
	// inflection point (the very first window), false for hill-climb
	// windows.
	Seeded bool
	// Direction is the winning hill-climb direction: -1, 0 (hold) or +1.
	Direction int
	// Step is the percentile step length after this window's refinement.
	Step int
	// ProbeAccuracy is the winning probe's logistic-regression accuracy
	// (0 when seeded or when no probe had both classes).
	ProbeAccuracy float64
}

// LastDecision returns how the most recent Pick chose its threshold.
func (ta *ThresholdAdjuster) LastDecision() Decision { return ta.last }

// initialStep is Algorithm 1's initialization of the adjustment step.
const initialStep = 5

// NewThresholdAdjuster returns an adjuster with the paper's initial state.
// seed makes the logistic-regression probes deterministic.
func NewThresholdAdjuster(seed int64) *ThresholdAdjuster {
	return &ThresholdAdjuster{step: initialStep, seed: seed}
}

// Current returns the threshold chosen at the last window (0 before any
// window completed).
func (ta *ThresholdAdjuster) Current() float64 {
	if !ta.prevValid {
		return 0
	}
	return ta.prev
}

// Step returns the current adjustment step (exported for ablation benches).
func (ta *ThresholdAdjuster) Step() int { return ta.step }

// probeSample is one training example for the probes: the features of the
// write and the observed (or censored) lifetime.
type probeSample struct {
	feat     []float64
	lifetime float64
	censored bool // page not overwritten; lifetime is elapsed time so far
}

// labelAndResample labels samples against threshold t (1 = short-living) and
// balances classes by undersampling, following Algorithm 1's
// LabelAndResample. Censored samples whose elapsed time has not yet exceeded
// t are unknowable and skipped.
func labelAndResample(samples []probeSample, t float64, cap int) ([][]float64, []int) {
	return new(probeScratch).labelAndResample(samples, t, cap)
}

// probeScratch pools labelAndResample's buffers; the returned slices alias
// the scratch and are overwritten by the next call.
type probeScratch struct {
	posF, negF, feats [][]float64
	labels            []int
}

func (ps *probeScratch) labelAndResample(samples []probeSample, t float64, cap int) ([][]float64, []int) {
	posF, negF := ps.posF[:0], ps.negF[:0]
	for i := range samples {
		s := &samples[i]
		if s.lifetime < t {
			if s.censored {
				continue // might still die before t; label unknown
			}
			posF = append(posF, s.feat)
		} else {
			negF = append(negF, s.feat)
		}
	}
	ps.posF, ps.negF = posF, negF
	n := len(posF)
	if len(negF) < n {
		n = len(negF)
	}
	if cap > 0 && n > cap {
		n = cap
	}
	feats := ps.feats[:0]
	labels := ps.labels[:0]
	for i := 0; i < n; i++ {
		feats = append(feats, posF[i], negF[i])
		labels = append(labels, 1, 0)
	}
	ps.feats, ps.labels = feats, labels
	return feats, labels
}

// Pick runs one window's threshold adjustment. lifetimes are the window's
// resolved lifetime samples; samples are the probe training examples. It
// returns the new threshold and updates the adjuster's state.
func (ta *ThresholdAdjuster) Pick(lifetimes []float64, samples []probeSample) float64 {
	if len(lifetimes) == 0 {
		// Nothing observed this window: keep the previous threshold.
		ta.last = Decision{Step: ta.step}
		return ta.Current()
	}
	if !ta.prevValid {
		v, _ := metrics.InflectionPoint(lifetimes)
		ta.prev = v
		ta.prevValid = true
		ta.last = Decision{Seeded: true, Step: ta.step}
		return v
	}
	sort.Float64s(lifetimes)
	p := metrics.PercentileOfValue(lifetimes, ta.prev)

	// Evaluate the stay-put candidate first: when several candidates yield
	// identical labelings (flat accuracy landscape), ties must keep the
	// current threshold, or the walk drifts systematically in whichever
	// direction happens to be evaluated first.
	bestAccu := math.Inf(-1)
	bestT := ta.prev
	bestDir := 0
	for _, dir := range []int{0, -1, 1} {
		t := metrics.ValueAtPercentile(lifetimes, p+float64(dir*ta.step))
		if dir != 0 && t == bestT {
			continue // percentile step collapsed onto the same value
		}
		feats, labels := ta.probe.labelAndResample(samples, t, 2048)
		if len(feats) == 0 {
			continue
		}
		accu := ta.eval.Eval(feats, labels, ta.seed)
		if accu > bestAccu {
			bestAccu = accu
			bestT = t
			bestDir = dir
		}
	}
	if math.IsInf(bestAccu, -1) {
		// No candidate had both classes; threshold unchanged this window.
		bestT = ta.prev
		bestDir = 0
	}

	// Adaptive step refinement (Algorithm 1's tail).
	adjusted := bestDir != 0
	switch {
	case !ta.prevAdjusted && !adjusted:
		ta.step++ // stuck: widen to escape a local optimum
	case ta.prevAdjusted && !adjusted:
		ta.step-- // settled: try a finer step
	case ta.prevAdjusted && adjusted && ta.prevDir != bestDir:
		ta.step-- // fluctuating: damp
	case ta.prevAdjusted && adjusted && ta.prevDir == bestDir:
		ta.step++ // consistent direction: accelerate
	}
	if ta.step > 10 {
		ta.step = 10
	}
	if ta.step < 1 {
		ta.step = 1
	}
	ta.prevAdjusted = adjusted
	ta.prevDir = bestDir
	ta.prev = bestT
	ta.last = Decision{Direction: bestDir, Step: ta.step}
	if !math.IsInf(bestAccu, -1) {
		ta.last.ProbeAccuracy = bestAccu
	}
	return bestT
}
