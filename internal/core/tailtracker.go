package core

import "github.com/phftl/phftl/internal/nand"

// TailTracker is the pipelined-replay front stage's replica of PHFTL's
// feature-tail statistics. The tail (io_len, is_seq, chunk_write, chunk_read,
// rw_rat — see TailDim) depends only on the op stream, so a tracker fed the
// same wrapped LPN sequence as the FTL reproduces PHFTL's EncodeTail output
// bit for bit, one pipeline stage ahead of the write reaching the FTL.
//
// The tracker is deliberately redundant: PHFTL keeps all of its own
// bookkeeping (NoteWrite, NoteRead, window Decay) regardless of staging, and
// a staged tail only replaces the EncodeTail computation. A diverging replica
// can therefore only produce wrong feature values — caught by the
// determinism tests — never corrupt scheme state.
//
// A TailTracker is single-owner (the front-stage goroutine).
type TailTracker struct {
	feat         *FeatureExtractor
	windowSize   int
	windowWrites int
}

// NewTailTracker builds a tracker sized identically to the scheme's own
// extractor and window, guaranteeing replica agreement.
func (p *PHFTL) NewTailTracker() *TailTracker {
	return &TailTracker{
		feat:       NewFeatureExtractor(p.exported, p.opts.ChunkPages),
		windowSize: p.windowSize,
	}
}

// EncodeWrite appends the feature tail for the next user write to lpn onto
// dst[:0] and advances the replica exactly as PHFTL will when the write
// reaches it: encode before noting the write (features describe history),
// then decay at the window boundary.
func (t *TailTracker) EncodeWrite(dst []float64, lpn nand.LPN, ioLen int, seq bool) []float64 {
	dst = t.feat.EncodeTail(dst[:0], lpn, ioLen, seq)
	t.feat.NoteWrite(lpn)
	t.windowWrites++
	if t.windowWrites >= t.windowSize {
		t.windowWrites = 0
		t.feat.Decay()
	}
	return dst
}

// NoteRead mirrors PHFTL.OnUserRead, which the FTL invokes for every host
// read inside exported capacity (mapped or not).
func (t *TailTracker) NoteRead(lpn nand.LPN) { t.feat.NoteRead(lpn) }
