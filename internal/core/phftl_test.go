package core

import (
	"math/rand"
	"testing"

	"github.com/phftl/phftl/internal/ftl"
	"github.com/phftl/phftl/internal/nand"
)

func phftlGeo() nand.Geometry {
	// 32-page superblocks (31 data + 1 meta with 4 KiB pages), 240
	// superblocks: enough spare for PHFTL's 7-stream GC reserve at 7% OP.
	return nand.Geometry{PageSize: 4096, OOBSize: 64, PagesPerBlock: 16, BlocksPerDie: 240, Dies: 2}
}

// runHotCold drives a strongly bimodal workload shaped like the cloud
// traces the paper evaluates on: 90% of writes cycle (with jitter) through a
// hot set of 1% of the LPN space — near-periodic updates with dispersed but
// predictable lifetimes — while 10% land uniformly on the cold remainder.
func runHotCold(t *testing.T, f *ftl.FTL, p *PHFTL, driveWrites int, seed int64) {
	t.Helper()
	exported := f.ExportedPages()
	hot := exported / 100
	rng := rand.New(rand.NewSource(seed))
	for lpn := 0; lpn < exported; lpn++ {
		if err := f.Write(ftl.UserWrite{LPN: nand.LPN(lpn), ReqPages: 1}); err != nil {
			t.Fatal(err)
		}
	}
	h := 0
	for i := 0; i < driveWrites*exported; i++ {
		var lpn int
		if rng.Float64() < 0.9 {
			lpn = h % hot
			h++
			if rng.Float64() < 0.15 {
				h += rng.Intn(5) // lifetime dispersion, still periodic
			}
		} else {
			lpn = hot + rng.Intn(exported-hot)
		}
		if err := f.Write(ftl.UserWrite{LPN: nand.LPN(lpn), ReqPages: 1}); err != nil {
			t.Fatal(err)
		}
		if rng.Float64() < 0.2 {
			_ = f.Read(nand.LPN(rng.Intn(exported)), 1)
		}
	}
	if p != nil {
		if err := p.Err(); err != nil {
			t.Fatalf("PHFTL internal error: %v", err)
		}
		p.Finish(f.Clock())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestPHFTLEndToEnd(t *testing.T) {
	f, p, err := Build(phftlGeo(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	runHotCold(t, f, p, 5, 11)

	st := p.Stats()
	if st.Windows < 10 {
		t.Errorf("windows = %d, want >= 10", st.Windows)
	}
	if st.Deploys == 0 {
		t.Fatal("model never deployed")
	}
	if p.Threshold() <= 0 {
		t.Errorf("threshold = %v, want > 0", p.Threshold())
	}
	if st.Predictions == 0 {
		t.Fatal("no predictions recorded")
	}
	// On a strongly bimodal workload the classifier must do far better than
	// chance (the paper reports 81%-99% accuracy on real traces).
	conf := p.Confusion()
	if conf.Total() == 0 {
		t.Fatal("no resolved predictions")
	}
	if acc := conf.Accuracy(); acc < 0.75 {
		t.Errorf("accuracy = %.3f, want >= 0.75 (%s)", acc, conf)
	}
	// The paper's 98%+ metadata hit rate needs spatially local traffic
	// (TestPHFTLMetaLocalityOnSequentialWorkload); random cold traffic only
	// has to keep the cache functional.
	ms := p.MetaStats()
	if ms.CacheHits+ms.CacheMisses > 0 {
		if hr := ms.HitRate(); hr <= 0 {
			t.Errorf("meta cache hit rate = %.4f", hr)
		}
	}
	// Meta pages were written but amount to well under 5% of flash writes.
	fs := f.Stats()
	if fs.MetaPageWrites == 0 {
		t.Error("no meta pages written")
	}
	if frac := float64(fs.MetaPageWrites) / float64(fs.FlashPageWrites()); frac > 0.05 {
		t.Errorf("meta overhead = %.4f of flash writes", frac)
	}
}

func TestPHFTLBeatsBaseOnHotCold(t *testing.T) {
	fBase, err := ftl.New(ftl.DefaultConfig(phftlGeo()), ftl.NewBaseSeparator(), ftl.CostBenefitPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	runHotCold(t, fBase, nil, 5, 11)
	fP, p, err := Build(phftlGeo(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	runHotCold(t, fP, p, 5, 11)
	waBase := fBase.Stats().WA()
	waP := fP.Stats().WA()
	t.Logf("WA base=%.3f phftl=%.3f (classifier %s)", waBase, waP, p.Confusion())
	if waP >= 0.7*waBase {
		t.Fatalf("PHFTL WA %.3f not clearly below Base WA %.3f", waP, waBase)
	}
}

// TestPHFTLMetaLocalityOnSequentialWorkload reproduces the §V-B claim that
// the tiny RAM metadata cache serves 98.2%-99.9% of retrievals: when
// overwrites have spatial locality (here: a circular-log overwrite pattern),
// consecutive pages' metadata share meta pages, so one flash read serves
// many retrievals.
func TestPHFTLMetaLocalityOnSequentialWorkload(t *testing.T) {
	// Hit rate is capped at 1 - metaPages/dataPages per superblock, so this
	// test uses production-shaped superblocks (128 pages: 126 data + 2
	// meta) rather than the miniature ones of the other tests.
	geo := nand.Geometry{PageSize: 4096, OOBSize: 64, PagesPerBlock: 32, BlocksPerDie: 160, Dies: 4}
	f, p, err := Build(geo, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	exported := f.ExportedPages()
	for pass := 0; pass < 4; pass++ {
		for lpn := 0; lpn < exported; lpn++ {
			if err := f.Write(ftl.UserWrite{LPN: nand.LPN(lpn), ReqPages: 8, Seq: true}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	ms := p.MetaStats()
	if ms.CacheHits+ms.CacheMisses == 0 {
		t.Fatal("no flash-backed metadata retrievals")
	}
	if hr := ms.HitRate(); hr < 0.98 {
		t.Fatalf("sequential-workload hit rate = %.4f, want >= 0.98 (paper: 98.2%%-99.9%%)", hr)
	}
}

func TestPHFTLDeterminism(t *testing.T) {
	run := func() (float64, uint64) {
		f, p, err := Build(phftlGeo(), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		runHotCold(t, f, p, 2, 33)
		return f.Stats().WA(), p.Confusion().Total()
	}
	wa1, n1 := run()
	wa2, n2 := run()
	if wa1 != wa2 || n1 != n2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", wa1, n1, wa2, n2)
	}
}

func TestPHFTLMetadataSurvivesGC(t *testing.T) {
	f, p, err := Build(phftlGeo(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	exported := f.ExportedPages()
	// Write LPN 0 once, then churn everything else until LPN 0's page has
	// been migrated by GC at least once.
	if err := f.Write(ftl.UserWrite{LPN: 0, ReqPages: 1}); err != nil {
		t.Fatal(err)
	}
	for lpn := 1; lpn < exported; lpn++ {
		if err := f.Write(ftl.UserWrite{LPN: nand.LPN(lpn), ReqPages: 1}); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 4*exported; i++ {
		if err := f.Write(ftl.UserWrite{LPN: nand.LPN(1 + rng.Intn(exported-1)), ReqPages: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	// LPN 0 was written exactly once (LastWrite = 1); its metadata must
	// have ridden through GC migrations via the OOB copy.
	entry, err := p.meta.Get(f.MappedPPN(0))
	if err != nil {
		t.Fatal(err)
	}
	if entry.LastWrite != 1 {
		t.Fatalf("LPN 0 metadata LastWrite = %d, want 1 (preserved through GC)", entry.LastWrite)
	}
	// And the page itself must have been GC-migrated (it's cold).
	if f.Stats().GCPageWrites == 0 {
		t.Fatal("workload did not trigger GC")
	}
}

func TestPHFTLSeqLen1Ablation(t *testing.T) {
	opts := DefaultOptions()
	opts.SeqLen = 1
	f, p, err := Build(phftlGeo(), opts)
	if err != nil {
		t.Fatal(err)
	}
	runHotCold(t, f, p, 3, 55)
	if p.Stats().Deploys == 0 {
		t.Fatal("seqlen-1 model never deployed")
	}
	if p.Confusion().Total() == 0 {
		t.Fatal("no resolved predictions")
	}
}

func TestPHFTLUnquantizedAblation(t *testing.T) {
	opts := DefaultOptions()
	opts.Quantize = false
	f, p, err := Build(phftlGeo(), opts)
	if err != nil {
		t.Fatal(err)
	}
	runHotCold(t, f, p, 2, 66)
	if p.Stats().Deploys == 0 {
		t.Fatal("float model never deployed")
	}
}

func TestPHFTLOptionValidation(t *testing.T) {
	geo := phftlGeo()
	bad := DefaultOptions()
	bad.Hidden = HiddenBytes + 1
	if _, err := New(geo, 1000, bad); err == nil {
		t.Error("oversized hidden accepted")
	}
	bad = DefaultOptions()
	bad.SeqLen = 0
	if _, err := New(geo, 1000, bad); err == nil {
		t.Error("zero seqlen accepted")
	}
	bad = DefaultOptions()
	bad.WindowFrac = 0
	if _, err := New(geo, 1000, bad); err == nil {
		t.Error("zero window accepted")
	}
	bad = DefaultOptions()
	bad.GCStreams = 0
	if _, err := New(geo, 1000, bad); err == nil {
		t.Error("zero GC streams accepted")
	}
	smallOOB := geo
	smallOOB.OOBSize = EntrySize - 1
	if _, err := New(smallOOB, 1000, DefaultOptions()); err == nil {
		t.Error("undersized OOB accepted")
	}
}

func TestStreamLayout(t *testing.T) {
	p, err := New(phftlGeo(), 1000, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStreams() != 7 {
		t.Errorf("streams = %d, want 7", p.NumStreams())
	}
	if p.StreamGCClass(StreamUserLong) != 0 || p.StreamGCClass(StreamUserShort) != 0 {
		t.Error("user streams must be class 0")
	}
	for k := 1; k <= 5; k++ {
		if got := p.StreamGCClass(StreamGCBase + k - 1); got != k {
			t.Errorf("StreamGCClass(%d) = %d, want %d", StreamGCBase+k-1, got, k)
		}
	}
	if !p.IsShortStream(StreamUserShort) || p.IsShortStream(StreamUserLong) {
		t.Error("IsShortStream wrong")
	}
	if p.Name() != "PHFTL" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestFeatureRing(t *testing.T) {
	var r featureRing
	dim := 2
	mk := func(v float64) []float64 { return []float64{v, v + 0.5} }
	newDst := func() [][]float64 {
		dst := make([][]float64, 3)
		for i := range dst {
			dst[i] = make([]float64, dim)
		}
		return dst
	}
	if r.n != 0 {
		t.Fatalf("fresh ring n = %d", r.n)
	}
	for i := 1; i <= 5; i++ {
		r.append(mk(float64(i)), 3)
	}
	snap := r.snapshotInto(newDst(), 3, dim)
	if len(snap) != 3 {
		t.Fatalf("len = %d", len(snap))
	}
	// Oldest-first: 3, 4, 5.
	for i, want := range []float64{3, 4, 5} {
		if snap[i][0] != want {
			t.Errorf("snap[%d][0] = %v, want %v", i, snap[i][0], want)
		}
	}
	// Snapshot is a copy.
	snap[0][0] = 999
	if again := r.snapshotInto(newDst(), 3, dim); again[0][0] == 999 {
		t.Error("snapshot aliases ring storage")
	}
	// Partially filled rings truncate the destination.
	var r2 featureRing
	r2.append(mk(1), 3)
	r2.append(mk(2), 3)
	if got := r2.snapshotInto(newDst(), 3, dim); len(got) != 2 || got[0][0] != 1 || got[1][0] != 2 {
		t.Errorf("partial snapshot = %v", got)
	}
}

func TestPHFTLModelVariants(t *testing.T) {
	// The design-space models (§III-B): LSTM (16 hidden to fit the 32-byte
	// state slot) and stateless MLP must run end to end.
	for _, mk := range []struct {
		model  string
		hidden int
	}{{"lstm", 16}, {"mlp", 32}} {
		opts := DefaultOptions()
		opts.Model = mk.model
		opts.Hidden = mk.hidden
		f, p, err := Build(phftlGeo(), opts)
		if err != nil {
			t.Fatalf("%s: %v", mk.model, err)
		}
		runHotCold(t, f, p, 2, 77)
		if p.Stats().Deploys == 0 {
			t.Fatalf("%s: never deployed", mk.model)
		}
		if p.Confusion().Total() == 0 {
			t.Fatalf("%s: no resolved predictions", mk.model)
		}
	}
	// An LSTM with 32 hidden units needs 64 state bytes: rejected.
	opts := DefaultOptions()
	opts.Model = "lstm"
	if _, err := New(phftlGeo(), 1000, opts); err == nil {
		t.Error("oversized LSTM state accepted")
	}
	opts = DefaultOptions()
	opts.Model = "transformer"
	if _, err := New(phftlGeo(), 1000, opts); err == nil {
		t.Error("unknown model accepted")
	}
}

// PHFTL must opt in to trim notifications.
var _ ftl.TrimAware = (*PHFTL)(nil)

func TestPHFTLOnTrimResolvesAndResets(t *testing.T) {
	f, p, err := Build(phftlGeo(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Two writes then a trim: the trim must resolve the second version's
	// lifetime, reset the host history, and zero the open-buffer metadata.
	if err := f.Write(ftl.UserWrite{LPN: 9, ReqPages: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(ftl.UserWrite{LPN: 9, ReqPages: 1}); err != nil {
		t.Fatal(err)
	}
	ppn := f.MappedPPN(9)
	if p.hostLast[9] == 0 {
		t.Fatal("hostLast not set by writes")
	}
	examplesBefore := len(p.examples)
	if err := f.Trim(9); err != nil {
		t.Fatal(err)
	}
	if p.hostLast[9] != 0 {
		t.Error("hostLast not reset by trim")
	}
	if p.rings[9].n != 0 {
		t.Error("feature ring not reset by trim")
	}
	if len(p.examples) != examplesBefore+1 {
		t.Errorf("examples = %d, want %d (trim harvests the pending write)", len(p.examples), examplesBefore+1)
	}
	ent, err := p.meta.Get(ppn)
	if err != nil {
		t.Fatal(err)
	}
	if ent != (Entry{}) {
		t.Errorf("metadata entry not invalidated: %+v", ent)
	}
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
}

// TestPHFTLTrimChurn exercises the full pipeline (training, prediction
// resolution via trims, metastore invalidation across sealed/open
// superblocks) under randomized write/trim churn.
func TestPHFTLTrimChurn(t *testing.T) {
	f, p, err := Build(phftlGeo(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	exported := f.ExportedPages()
	rng := rand.New(rand.NewSource(3))
	for lpn := 0; lpn < exported; lpn++ {
		if err := f.Write(ftl.UserWrite{LPN: nand.LPN(lpn), ReqPages: 1}); err != nil {
			t.Fatal(err)
		}
	}
	hot := exported / 20
	for i := 0; i < 4*exported; i++ {
		lpn := nand.LPN(rng.Intn(hot))
		if rng.Intn(8) == 0 {
			lpn = nand.LPN(hot + rng.Intn(exported-hot))
		}
		if rng.Intn(6) == 0 {
			if err := f.Trim(lpn); err != nil {
				t.Fatal(err)
			}
		} else if err := f.Write(ftl.UserWrite{LPN: lpn, ReqPages: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Err(); err != nil {
		t.Fatalf("PHFTL internal error: %v", err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if f.Stats().Trims == 0 {
		t.Fatal("no trims issued")
	}
	if p.Stats().Deploys == 0 {
		t.Error("model never deployed under trim churn")
	}
}
