package core

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"github.com/phftl/phftl/internal/ftl"
	"github.com/phftl/phftl/internal/metrics"
	"github.com/phftl/phftl/internal/ml"
	"github.com/phftl/phftl/internal/nand"
	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/par"
)

// Stream layout: two user streams selected by the Page Classifier plus one
// stream per GC class (§III-A(3)).
const (
	// StreamUserLong receives pages predicted long-living (and all user
	// writes before the first model deployment).
	StreamUserLong = 0
	// StreamUserShort receives pages predicted short-living.
	StreamUserShort = 1
	// StreamGCBase is the stream of GC class 1; class k maps to
	// StreamGCBase+k-1.
	StreamGCBase = 2
)

// Options configures PHFTL.
type Options struct {
	// WindowFrac sizes the training window as a fraction of the drive's
	// exported capacity (paper: 5%).
	WindowFrac float64
	// SeqLen is the feature-sequence length used for training (and the
	// per-page history ring size). 1 reproduces the paper's truncation
	// ablation: prediction then ignores the cached hidden state.
	SeqLen int
	// Hidden is the GRU hidden width (paper: 32; the model's persisted
	// state must fit HiddenBytes — note an LSTM persists 2×Hidden values).
	Hidden int
	// Model selects the classifier architecture: "gru" (the paper's
	// choice), "lstm", or "mlp" (stateless), reproducing the design-space
	// exploration of §III-B.
	Model string
	// ChunkPages is the chunk size for chunk_write/chunk_read features.
	ChunkPages int
	// GCStreams is the number of GC classes (paper: 5 — pages GC'ed five
	// times or more share a superblock).
	GCStreams int
	// CacheFrac is the metadata cache capacity as a fraction of the meta
	// pages in the device (paper: 1%).
	CacheFrac float64
	// MaxExamples caps the per-window training-example reservoir.
	MaxExamples int
	// Train configures the per-window training pass (paper: one epoch,
	// Adam, cross-entropy).
	Train ml.TrainConfig
	// Quantize deploys an int8-quantized model (paper §IV); disabling it
	// deploys float weights (quantization-loss ablation).
	Quantize bool
	// Seed drives every random choice (init, shuffles, reservoir).
	Seed int64
	// OPRatio, when positive, overrides the FTL overprovisioning ratio in
	// Build (0 keeps ftl.DefaultConfig's value, the paper's 7%). OP sweeps
	// use it to re-derive the exported capacity per spare factor.
	OPRatio float64
	// WallDurations, when set, measures wall-clock durations into telemetry
	// (today: the window_retrain event's duration_ns). Off by default: wall
	// time varies across hosts, runs and worker counts, and skipping the
	// measurement keeps default telemetry byte-identical everywhere (the
	// JSONL sink omits the field when the duration is 0). The harnesses
	// expose it as -wall-durations.
	WallDurations bool
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{
		WindowFrac:  0.05,
		SeqLen:      8,
		Hidden:      32,
		ChunkPages:  64,
		GCStreams:   5,
		CacheFrac:   0.01,
		MaxExamples: 4096,
		Train:       ml.DefaultTrainConfig(),
		Model:       "gru",
		Quantize:    true,
		Seed:        1,
	}
}

// Stats aggregates PHFTL-specific activity.
type Stats struct {
	Predictions     uint64 // classifier invocations on user writes
	PredictedShort  uint64
	Windows         uint64 // completed training windows
	Deploys         uint64 // model deployments
	TrainedExamples uint64 // samples used across all training passes
	LastTrainLoss   float64
}

type example struct {
	seq      [][]float64
	lifetime float64
	censored bool
}

type featureRing struct {
	buf []float64 // seqLen * InputDim, circular
	n   int       // total vectors ever appended
}

const (
	predNone  = 0
	predLong  = 1
	predShort = 2
)

// PHFTL is the paper's FTL scheme, implemented as an ftl.Separator plus the
// host-side Model Trainer. Construct it with Build (or New + Attach).
type PHFTL struct {
	opts     Options
	geo      nand.Geometry
	exported int

	meta *MetaStore
	feat *FeatureExtractor
	adj  *ThresholdAdjuster

	model    ml.SequenceModel // host-side float model, trained every window
	deployed ml.SequenceModel // device-side model (quantized when opts.Quantize)
	opt      *ml.Adam

	rings    []featureRing
	hostLast []uint32 // host-side last-write clock per LPN, 1-based; 0 = never

	pendingEntry Entry
	pendingValid bool

	windowSize   int
	windowStart  uint64 // 1-based clock of the current window's first write
	windowWrites int
	lifetimes    []float64
	examples     []example
	examplesSeen int

	// Window membership as an epoch-marked array instead of a map: LPN lpn
	// was written in the current window iff windowSeen[lpn] == windowEpoch.
	// windowLPNs lists them in insertion order (sorted at window end). Both
	// reuse their storage across windows, keeping the per-write bookkeeping
	// allocation-free.
	windowSeen  []uint64
	windowEpoch uint64
	windowLPNs  []uint32

	// seqPool recycles the [][]float64 training-sequence snapshots (one
	// SeqLen×InputDim buffer each) between examples, so window retraining
	// stops churning the GC. Sequences are returned to the pool when their
	// example is dropped by the reservoir and at the end of each window,
	// strictly after training and threshold probing are done with them.
	seqPool [][][]float64

	threshold   float64
	trainedOnce bool
	deployClock uint64 // virtual clock of the last model deployment

	pred       []uint8
	predThresh []float64
	confusion  metrics.Confusion

	// OnResolve, when non-nil, is invoked for every prediction resolved
	// against its ground-truth lifetime (debugging / analysis hook).
	OnResolve func(lpn nand.LPN, predictedShort bool, lifetime, threshold float64)

	// rec, when non-nil, receives threshold-update and retraining events;
	// the metadata store carries its own recorder reference.
	rec obs.Recorder

	rng      *rand.Rand
	stats    Stats
	xScratch []float64
	hScratch []float64
	oobBuf   []byte
	err      error // first internal error (surfaced via Err)

	// stagedTail, when valid, is a precomputed feature tail for the next
	// user write (pipelined replay front stage, see TailTracker + StageTail).
	// It replaces only the EncodeTail computation; all of PHFTL's own
	// statistics bookkeeping proceeds unchanged.
	stagedTail []float64
	stagedSet  bool

	// trainer runs the per-window retraining data-parallel over a fixed
	// number of gradient shards; deployed weights depend on the shard count
	// only, never on the attached pool (see ml.ShardedTrainer).
	trainer *ml.ShardedTrainer

	// Pooled window scratch: probe set, training set, resampler. Reused
	// across windows so endWindow stops allocating in steady state.
	probeBuf  []probeSample
	sampleBuf []ml.Sample
	resample  ml.ResampleScratch
}

// TrainerLanes is the fixed gradient-shard count of the window retrainer.
// It is a structural constant, not a tuning knob: changing it changes the
// gradient summation order and therefore the deployed weights (the golden
// curves pin the current value).
const TrainerLanes = 4

// New creates a PHFTL scheme for the given geometry and exported capacity.
// Attach must be called with the owning FTL before the first write. Most
// callers should use Build instead.
func New(geo nand.Geometry, exportedPages int, opts Options) (*PHFTL, error) {
	if opts.Hidden <= 0 {
		return nil, fmt.Errorf("core: Hidden must be positive, got %d", opts.Hidden)
	}
	if opts.Model == "" {
		opts.Model = "gru"
	}
	if opts.SeqLen < 1 {
		return nil, fmt.Errorf("core: SeqLen must be >= 1, got %d", opts.SeqLen)
	}
	if opts.GCStreams < 1 {
		return nil, fmt.Errorf("core: GCStreams must be >= 1, got %d", opts.GCStreams)
	}
	if opts.WindowFrac <= 0 || opts.WindowFrac > 1 {
		return nil, fmt.Errorf("core: WindowFrac %v outside (0,1]", opts.WindowFrac)
	}
	if geo.OOBSize < EntrySize {
		return nil, fmt.Errorf("core: OOB size %d cannot hold the %d-byte metadata entry", geo.OOBSize, EntrySize)
	}
	dataPages, metaPages, epp := MetaLayout(geo.PagesPerSuperblock(), geo.PageSize)
	rng := rand.New(rand.NewSource(opts.Seed))
	var model ml.SequenceModel
	switch opts.Model {
	case "gru":
		model = ml.NewGRUNet(InputDim, opts.Hidden, ml.NumClassesDefault, rng)
	case "lstm":
		model = ml.NewLSTMNet(InputDim, opts.Hidden, ml.NumClassesDefault, rng)
	case "mlp":
		model = ml.NewMLPNet(InputDim, opts.Hidden, ml.NumClassesDefault, rng)
	default:
		return nil, fmt.Errorf("core: unknown Model %q (gru, lstm or mlp)", opts.Model)
	}
	if model.StateSize() > HiddenBytes {
		return nil, fmt.Errorf("core: %s with Hidden %d persists %d state bytes, exceeding the %d-byte metadata slot",
			opts.Model, opts.Hidden, model.StateSize(), HiddenBytes)
	}
	windowSize := int(opts.WindowFrac * float64(exportedPages))
	if windowSize < 1 {
		windowSize = 1
	}
	p := &PHFTL{
		opts:        opts,
		geo:         geo,
		exported:    exportedPages,
		meta:        NewMetaStore(geo, dataPages, metaPages, epp, opts.CacheFrac, nil),
		feat:        NewFeatureExtractor(exportedPages, opts.ChunkPages),
		adj:         NewThresholdAdjuster(opts.Seed),
		model:       model,
		opt:         ml.NewAdam(opts.Train.LR),
		rings:       make([]featureRing, exportedPages),
		hostLast:    make([]uint32, exportedPages),
		windowSize:  windowSize,
		windowStart: 1,
		windowSeen:  make([]uint64, exportedPages),
		windowEpoch: 1,
		pred:        make([]uint8, exportedPages),
		predThresh:  make([]float64, exportedPages),
		rng:         rng,
		hScratch:    make([]float64, model.StateSize()),
		trainer:     ml.NewShardedTrainer(TrainerLanes),
	}
	// The device ships with the initial (untrained) model so hidden states
	// accumulate from the first write; separation activates after the first
	// deployment.
	p.deployed = p.model.QuantizeModel()
	return p, nil
}

// Attach wires the metadata store to the FTL that owns this separator.
func (p *PHFTL) Attach(reader FlashReader) { p.meta.reader = reader }

// Build assembles a complete PHFTL system: the FTL configured with the meta
// layout, the Adjusted Greedy victim policy fed by the adaptive threshold,
// and the wired-up scheme.
func Build(geo nand.Geometry, opts Options) (*ftl.FTL, *PHFTL, error) {
	return BuildWithDevice(nil, geo, opts)
}

// BuildWithDevice is Build over a caller-supplied fresh device (so timing
// models can install device hooks first). A nil device allocates one.
func BuildWithDevice(dev *nand.Device, geo nand.Geometry, opts Options) (*ftl.FTL, *PHFTL, error) {
	dataPages, metaPages, _ := MetaLayout(geo.PagesPerSuperblock(), geo.PageSize)
	cfg := ftl.DefaultConfig(geo)
	cfg.MetaPagesPerSB = metaPages
	cfg.MaxGCClass = opts.GCStreams
	if opts.OPRatio > 0 {
		cfg.OPRatio = opts.OPRatio
	}
	exported := int(float64(geo.Superblocks()*dataPages) / (1 + cfg.OPRatio))
	p, err := New(geo, exported, opts)
	if err != nil {
		return nil, nil, err
	}
	policy := &ftl.AdjustedGreedyPolicy{Thresh: p, IsShortStream: p.IsShortStream}
	if dev == nil {
		dev, err = nand.NewDevice(geo)
		if err != nil {
			return nil, nil, err
		}
	} else {
		// An injected device implies a timing model is watching: charge
		// host reads as flash reads.
		cfg.CountHostReads = true
	}
	f, err := ftl.NewWithDevice(cfg, dev, p, policy)
	if err != nil {
		return nil, nil, err
	}
	if f.ExportedPages() != exported {
		return nil, nil, fmt.Errorf("core: exported-capacity mismatch: %d vs %d", f.ExportedPages(), exported)
	}
	p.Attach(f)
	return f, p, nil
}

// Err returns the first internal error encountered on the data path (the
// Separator interface cannot propagate errors inline).
func (p *PHFTL) Err() error { return p.err }

// Stats returns PHFTL activity counters.
func (p *PHFTL) Stats() Stats { return p.stats }

// MetaStats returns metadata-cache statistics (§V-B hit-rate claim).
func (p *PHFTL) MetaStats() MetaStats { return p.meta.Stats() }

// Meta exposes the metadata store (observability wiring and tests).
func (p *PHFTL) Meta() *MetaStore { return p.meta }

// SetRecorder installs a trace-event recorder on the scheme and its
// metadata store. clockFn supplies the virtual clock for metadata-cache
// events (the FTL's Clock method; nil stamps 0).
func (p *PHFTL) SetRecorder(r obs.Recorder, clockFn func() uint64) {
	p.rec = r
	p.meta.SetRecorder(r, clockFn)
}

// StageTail hands the next user write's precomputed feature tail (TailDim
// values, produced by a TailTracker fed the same op stream) to the scheme.
// The slice must stay valid until the write reaches PlaceUserWrite, which
// consumes it; it is used for exactly one write.
func (p *PHFTL) StageTail(tail []float64) {
	p.stagedTail = tail
	p.stagedSet = true
}

// SetParallel attaches (or removes, with nil) the worker pool used for
// data-parallel window retraining. Deployed weights are bit-identical with
// and without a pool; only wall-clock changes.
func (p *PHFTL) SetParallel(pool *par.Pool) { p.trainer.SetPool(pool) }

// Confusion returns the runtime prediction quality against ground-truth
// lifetimes (Table I). Call Finish first to resolve outstanding predictions.
func (p *PHFTL) Confusion() *metrics.Confusion { return &p.confusion }

// Threshold implements ftl.ThresholdSource for the Adjusted Greedy policy.
func (p *PHFTL) Threshold() float64 { return p.threshold }

// IsShortStream reports whether a stream holds predicted-short-living pages.
func (p *PHFTL) IsShortStream(stream int) bool { return stream == StreamUserShort }

// Name implements ftl.Separator.
func (*PHFTL) Name() string { return "PHFTL" }

// NumStreams implements ftl.Separator.
func (p *PHFTL) NumStreams() int { return 2 + p.opts.GCStreams }

// StreamGCClass implements ftl.Separator.
func (p *PHFTL) StreamGCClass(stream int) int {
	if stream >= StreamGCBase {
		return stream - StreamGCBase + 1
	}
	return 0
}

func (r *featureRing) append(x []float64, seqLen int) {
	dim := len(x)
	if r.buf == nil {
		r.buf = make([]float64, seqLen*dim)
	}
	slot := r.n % seqLen
	copy(r.buf[slot*dim:(slot+1)*dim], x)
	r.n++
}

// snapshotInto copies the ring's vectors oldest-first into dst, whose header
// must hold seqLen rows of dim values each, and returns dst truncated to the
// copied count. The caller owns dst (see PHFTL.getSeq/putSeq).
func (r *featureRing) snapshotInto(dst [][]float64, seqLen, dim int) [][]float64 {
	count := r.n
	if count > seqLen {
		count = seqLen
	}
	for i := 0; i < count; i++ {
		idx := (r.n - count + i) % seqLen
		copy(dst[i], r.buf[idx*dim:(idx+1)*dim])
	}
	return dst[:count]
}

// snapshotSeq returns a pooled copy of an LPN's feature history (nil when the
// page has none). Ownership passes to the example it lands in; putSeq returns
// it to the pool once the window is done with it.
func (p *PHFTL) snapshotSeq(lpn uint32) [][]float64 {
	r := &p.rings[lpn]
	if r.n == 0 {
		return nil
	}
	return r.snapshotInto(p.getSeq(), p.opts.SeqLen, InputDim)
}

func (p *PHFTL) getSeq() [][]float64 {
	if n := len(p.seqPool); n > 0 {
		s := p.seqPool[n-1]
		p.seqPool[n-1] = nil
		p.seqPool = p.seqPool[:n-1]
		return s
	}
	seqLen := p.opts.SeqLen
	flat := make([]float64, seqLen*InputDim)
	s := make([][]float64, seqLen)
	for i := range s {
		s[i] = flat[i*InputDim : (i+1)*InputDim]
	}
	return s
}

func (p *PHFTL) putSeq(s [][]float64) {
	if cap(s) != p.opts.SeqLen {
		return
	}
	p.seqPool = append(p.seqPool, s[:p.opts.SeqLen])
}

// PlaceUserWrite implements ftl.Separator: this is PHFTL's per-write path —
// metadata retrieval, feature extraction, O(1) prediction from the cached
// hidden state, window bookkeeping, and stream selection.
func (p *PHFTL) PlaceUserWrite(w ftl.UserWrite, clock uint64) (int, []byte) {
	lpn := uint32(w.LPN)
	now := clock + 1

	entry, err := p.meta.Get(w.OldPPN)
	if err != nil && p.err == nil {
		p.err = err
	}
	prevLife := uint64(MaxLifetimeFeature)
	if entry.LastWrite > 0 {
		prevLife = now - uint64(entry.LastWrite)
	}

	// Host-side trainer bookkeeping: resolve the previous write's lifetime.
	if hl := uint64(p.hostLast[lpn]); hl > 0 {
		life := float64(now - hl)
		if p.pred[lpn] != predNone {
			p.confusion.Add(p.pred[lpn] == predShort, life < p.predThresh[lpn])
			if p.OnResolve != nil {
				p.OnResolve(w.LPN, p.pred[lpn] == predShort, life, p.predThresh[lpn])
			}
			p.pred[lpn] = predNone
		}
		if hl >= p.windowStart {
			p.lifetimes = append(p.lifetimes, life)
		}
		p.addExample(example{
			seq:      p.snapshotSeq(lpn),
			lifetime: life,
		})
	}

	x := p.xScratch[:0]
	x = ml.HexDigits(x, prevLife, digitsPrevLifetime)
	if p.stagedSet {
		// The front stage already computed the tail from the op stream; only
		// the prev_lifetime digits need FTL state.
		x = append(x, p.stagedTail...)
		p.stagedSet = false
	} else {
		x = p.feat.EncodeTail(x, w.LPN, w.ReqPages, w.Seq)
	}
	p.xScratch = x

	// Device-side prediction: one GRU step from the cached hidden state.
	// A cached state computed before the last model deployment belongs to
	// an older model generation — feeding it to the new weights is noise,
	// so such pages cold-start from the zero state, exactly matching the
	// training distribution (training sequences start at h = 0). Pages
	// updated faster than the window always keep a fresh state.
	stateSize := p.deployed.StateSize()
	h := ml.DequantizeHidden(entry.Hidden[:stateSize], p.hScratch)
	if p.opts.SeqLen == 1 || uint64(entry.LastWrite) <= p.deployClock {
		for i := range h {
			h[i] = 0
		}
	}
	cls := p.deployed.PredictInto(h, x, h)
	short := cls == 1
	if p.trainedOnce {
		p.stats.Predictions++
		if short {
			p.stats.PredictedShort++
		}
		if short {
			p.pred[lpn] = predShort
		} else {
			p.pred[lpn] = predLong
		}
		p.predThresh[lpn] = p.threshold
	}

	newEntry := Entry{LastWrite: uint32(now)}
	ml.QuantizeHidden(h, newEntry.Hidden[:stateSize])
	p.pendingEntry = newEntry
	p.pendingValid = true
	p.oobBuf = EncodeEntry(p.oobBuf, newEntry)

	// Host bookkeeping after feature extraction (features describe history).
	p.rings[lpn].append(x, p.opts.SeqLen)
	p.hostLast[lpn] = uint32(now)
	if p.windowSeen[lpn] != p.windowEpoch {
		p.windowSeen[lpn] = p.windowEpoch
		p.windowLPNs = append(p.windowLPNs, lpn)
	}
	p.feat.NoteWrite(w.LPN)

	p.windowWrites++
	if p.windowWrites >= p.windowSize {
		p.endWindow(now)
	}

	if short && p.trainedOnce {
		return StreamUserShort, p.oobBuf
	}
	return StreamUserLong, p.oobBuf
}

// PlaceGCWrite implements ftl.Separator: GC survivors are separated by GC
// count; their metadata travels in the per-page OOB copy, so no meta-page
// read is needed during GC (§III-C).
func (p *PHFTL) PlaceGCWrite(_ nand.LPN, oldOOB []byte, gcClass int, _ uint64) (int, []byte) {
	entry := DecodeEntry(oldOOB)
	p.pendingEntry = entry
	p.pendingValid = true
	p.oobBuf = EncodeEntry(p.oobBuf, entry)
	if gcClass < 1 {
		gcClass = 1
	}
	if gcClass > p.opts.GCStreams {
		gcClass = p.opts.GCStreams
	}
	return StreamGCBase + gcClass - 1, p.oobBuf
}

// OnPagePlaced implements ftl.Separator.
func (p *PHFTL) OnPagePlaced(_ nand.LPN, ppn nand.PPN, _ bool) {
	if p.pendingValid {
		p.meta.Put(ppn, p.pendingEntry)
		p.pendingValid = false
	}
}

// OnTrim implements ftl.TrimAware. A discard is a ground-truth invalidation:
// the trimmed write's lifetime resolves now (the trim counts as the LPN's
// next virtual write, matching trace.AnnotateLifetimes), so the trainer
// harvests the example and scores any outstanding prediction instead of
// leaving both dangling forever. The entry in the metadata store is zeroed
// and the host-side history reset, so a later reincarnation of the LPN
// cold-starts like a never-written page rather than inheriting the dead
// file's hidden state.
func (p *PHFTL) OnTrim(lpn nand.LPN, oldPPN nand.PPN, clock uint64) {
	l := uint32(lpn)
	now := clock + 1
	if hl := uint64(p.hostLast[l]); hl > 0 {
		life := float64(now - hl)
		if p.pred[l] != predNone {
			p.confusion.Add(p.pred[l] == predShort, life < p.predThresh[l])
			if p.OnResolve != nil {
				p.OnResolve(lpn, p.pred[l] == predShort, life, p.predThresh[l])
			}
			p.pred[l] = predNone
		}
		if hl >= p.windowStart {
			p.lifetimes = append(p.lifetimes, life)
		}
		p.addExample(example{
			seq:      p.snapshotSeq(l),
			lifetime: life,
		})
	}
	p.hostLast[l] = 0
	p.rings[l].n = 0
	p.meta.Invalidate(oldPPN)
}

// OnUserRead implements ftl.Separator.
func (p *PHFTL) OnUserRead(lpn nand.LPN, _ int) { p.feat.NoteRead(lpn) }

// MetaPages implements ftl.Separator.
func (p *PHFTL) MetaPages(sb int) [][]byte { return p.meta.Seal(sb) }

// OnSuperblockErased implements ftl.Separator.
func (p *PHFTL) OnSuperblockErased(sb int) { p.meta.DropSB(sb) }

func (p *PHFTL) addExample(ex example) {
	if len(ex.seq) == 0 {
		return
	}
	p.examplesSeen++
	if p.opts.MaxExamples <= 0 || len(p.examples) < p.opts.MaxExamples {
		p.examples = append(p.examples, ex)
		return
	}
	// Reservoir sampling keeps a uniform subset of the window's examples.
	if j := p.rng.Intn(p.examplesSeen); j < len(p.examples) {
		p.putSeq(p.examples[j].seq)
		p.examples[j] = ex
	} else {
		p.putSeq(ex.seq)
	}
}

// endWindow runs the Model Trainer: adaptive labeling (Algorithm 1), one
// training epoch, quantization, and deployment (§III-B).
func (p *PHFTL) endWindow(now uint64) {
	p.stats.Windows++

	// Censored examples: pages written in the window and not overwritten.
	// Iterate in sorted LPN order — insertion order would make training
	// depend on write order in ways the map-based predecessor of this code
	// avoided by sorting, so keep sorting.
	slices.Sort(p.windowLPNs)
	for _, lpn := range p.windowLPNs {
		hl := uint64(p.hostLast[lpn])
		if hl < p.windowStart {
			continue
		}
		elapsed := float64(now - hl)
		if elapsed <= 0 {
			continue
		}
		p.addExample(example{
			seq:      p.snapshotSeq(lpn),
			lifetime: elapsed,
			censored: true,
		})
	}

	// Threshold probes rank candidates on *resolved* lifetime samples only:
	// censored pages (mostly long-living bulk data) would flood the
	// negative class and flatten the accuracy landscape the hill-climb
	// needs. The GRU's training set below keeps the censored examples —
	// without them the model would never see long-living feature patterns.
	probes := p.probeBuf[:0]
	for i := range p.examples {
		ex := &p.examples[i]
		if ex.censored {
			continue
		}
		probes = append(probes, probeSample{
			feat:     ex.seq[len(ex.seq)-1],
			lifetime: ex.lifetime,
		})
	}
	p.probeBuf = probes
	oldThreshold := p.threshold
	if t := p.adj.Pick(p.lifetimes, probes); t > 0 {
		p.threshold = t
	}
	if p.rec != nil {
		d := p.adj.LastDecision()
		seeded := int64(0)
		if d.Seeded {
			seeded = 1
		}
		p.rec.Record(obs.Event{
			Kind: obs.KindThresholdUpdate, Clock: now,
			SB: -1, Stream: -1, GCClass: -1,
			A: int64(d.Direction), B: int64(d.Step), C: seeded,
			F0: oldThreshold, F1: p.threshold, F2: d.ProbeAccuracy,
		})
	}

	if p.threshold > 0 {
		labeled := p.sampleBuf[:0]
		for i := range p.examples {
			ex := &p.examples[i]
			if ex.censored && ex.lifetime < p.threshold {
				continue // unknowable: might still die before the threshold
			}
			label := 0
			if ex.lifetime < p.threshold {
				label = 1
			}
			labeled = append(labeled, ml.Sample{Seq: ex.seq, Label: label})
		}
		p.sampleBuf = labeled
		samples := p.resample.Resample(labeled, 0, p.opts.Seed+int64(p.stats.Windows))
		deployed := int64(0)
		var trainDur time.Duration
		if len(samples) >= 8 {
			cfg := p.opts.Train
			cfg.Seed = p.opts.Seed + int64(p.stats.Windows)
			// Wall-clock timing is opt-in (Options.WallDurations): a zero
			// duration tells the sink to omit duration_ns, keeping default
			// telemetry deterministic.
			var trainStart time.Time
			if p.opts.WallDurations {
				trainStart = time.Now()
			}
			p.stats.LastTrainLoss = p.trainer.Train(p.model, samples, p.opt, cfg)
			if p.opts.WallDurations {
				trainDur = time.Since(trainStart)
			}
			p.stats.TrainedExamples += uint64(len(samples))
			// Deploy in place: copy (and optionally quantize) the trained
			// weights into the device-side model rather than allocating a
			// fresh one. The fallback covers a deployed model of a different
			// shape (cannot happen today, but stays correct if it could).
			if !ml.SyncModel(p.deployed, p.model, p.opts.Quantize) {
				if p.opts.Quantize {
					p.deployed = p.model.QuantizeModel()
				} else {
					p.deployed = p.model.CloneModel()
				}
			}
			p.trainedOnce = true
			p.deployClock = now
			p.stats.Deploys++
			deployed = 1
		}
		if p.rec != nil {
			p.rec.Record(obs.Event{
				Kind: obs.KindWindowRetrain, Clock: now,
				SB: -1, Stream: -1, GCClass: -1,
				A: int64(len(samples)), B: deployed, C: trainDur.Nanoseconds(),
				F0: p.stats.LastTrainLoss, F1: p.threshold,
			})
		}
	}

	p.windowStart = now + 1
	p.windowWrites = 0
	p.lifetimes = p.lifetimes[:0]
	// Training and probing are done: every surviving example's sequence can
	// go back to the pool for the next window.
	for i := range p.examples {
		p.putSeq(p.examples[i].seq)
		p.examples[i].seq = nil
	}
	p.examples = p.examples[:0]
	p.examplesSeen = 0
	p.windowLPNs = p.windowLPNs[:0]
	p.windowEpoch++
	p.feat.Decay()
}

// Finish resolves outstanding predictions at end of run: pages never
// overwritten whose elapsed time exceeds their prediction-time threshold are
// ground-truth long-living; the rest are right-censored and skipped.
func (p *PHFTL) Finish(finalClock uint64) {
	for lpn := range p.pred {
		if p.pred[lpn] == predNone {
			continue
		}
		elapsed := float64(finalClock + 1 - uint64(p.hostLast[lpn]))
		if elapsed >= p.predThresh[lpn] {
			p.confusion.Add(p.pred[lpn] == predShort, false)
		}
		p.pred[lpn] = predNone
	}
}
