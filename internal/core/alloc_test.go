package core

import (
	"math/rand"
	"runtime"
	"testing"

	"github.com/phftl/phftl/internal/ftl"
	"github.com/phftl/phftl/internal/nand"
)

func allocTestGeo() nand.Geometry {
	return nand.Geometry{PageSize: 4096, OOBSize: 64, PagesPerBlock: 8, BlocksPerDie: 256, Dies: 2}
}

// TestWritePathZeroAllocs pins the end-to-end zero-allocation invariant of
// the steady-state PHFTL write path: once the device has cycled (every page
// programmed at least once, buffers pooled, model deployed), a user write —
// feature extraction, metadata fetch, quantized-GRU prediction, placement,
// metadata put, GC when triggered — performs zero heap allocations.
//
// The measurement is aligned to start just after a window boundary and spans
// far fewer writes than a window, so no retraining (which allocates by
// design, on the host side) lands inside it.
func TestWritePathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	f, p, err := Build(allocTestGeo(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	write := func() {
		lpn := nand.LPN(rng.Intn(f.ExportedPages()))
		if err := f.Write(ftl.UserWrite{LPN: lpn, ReqPages: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: sequential fill, then enough random overwrites to cycle every
	// superblock through GC and deploy a model.
	for lpn := 0; lpn < f.ExportedPages(); lpn++ {
		if err := f.Write(ftl.UserWrite{LPN: nand.LPN(lpn), ReqPages: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4*f.ExportedPages(); i++ {
		write()
	}
	if p.Stats().Deploys == 0 {
		t.Fatal("warmup deployed no model; write path would skip prediction")
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	// Align to a fresh training window so the measured writes cannot cross a
	// retrain boundary.
	w := p.Stats().Windows
	for p.Stats().Windows == w {
		write()
	}
	runs := 64
	if max := p.windowSize / 2; runs > max {
		runs = max
	}
	if runs < 1 {
		t.Skipf("window size %d too small to measure inside a window", p.windowSize)
	}
	if allocs := testing.AllocsPerRun(runs, write); allocs != 0 {
		t.Errorf("steady-state write allocates %.2f per call, want 0", allocs)
	}
}

// TestWritePathBytesCeiling bounds the amortized heap traffic of the
// steady-state write path INCLUDING window retraining: unlike
// TestWritePathZeroAllocs (which measures between retrain boundaries), this
// spans several full training windows — probe labeling, resampling, the
// sharded trainer, threshold search and quantized deployment — and asserts
// the whole loop averages under 100 bytes of allocation per user write.
// Every window-boundary buffer is pooled on the PHFTL side, so steady-state
// retraining rides on warm scratch instead of reallocating it each window.
func TestWritePathBytesCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	f, p, err := Build(allocTestGeo(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	write := func() {
		lpn := nand.LPN(rng.Intn(f.ExportedPages()))
		if err := f.Write(ftl.UserWrite{LPN: lpn, ReqPages: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up past the first deploys so every pooled buffer has reached its
	// steady-state capacity.
	for lpn := 0; lpn < f.ExportedPages(); lpn++ {
		if err := f.Write(ftl.UserWrite{LPN: nand.LPN(lpn), ReqPages: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4*f.ExportedPages(); i++ {
		write()
	}
	if p.Stats().Deploys == 0 {
		t.Fatal("warmup deployed no model")
	}
	writes := 4 * p.windowSize // spans >= 4 retrain boundaries
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	windows := p.Stats().Windows
	for i := 0; i < writes; i++ {
		write()
	}
	runtime.ReadMemStats(&after)
	if got := p.Stats().Windows - windows; got < 3 {
		t.Fatalf("measurement crossed only %d retrain windows, want >= 3", got)
	}
	perOp := float64(after.TotalAlloc-before.TotalAlloc) / float64(writes)
	t.Logf("amortized heap traffic: %.1f B/write over %d writes", perOp, writes)
	if perOp >= 100 {
		t.Errorf("steady-state write path allocates %.1f B/write amortized, want < 100", perOp)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
}
