package core

import (
	"testing"
)

func TestFeatureVectorShape(t *testing.T) {
	fe := NewFeatureExtractor(1000, 64)
	x := fe.Encode(nil, 5, 100, 4, true)
	if len(x) != InputDim {
		t.Fatalf("len = %d, want %d", len(x), InputDim)
	}
	for i, v := range x {
		if v < 0 || v > 1 {
			t.Errorf("x[%d] = %v outside [0,1]", i, v)
		}
	}
}

func TestFeaturesReflectChunkTraffic(t *testing.T) {
	fe := NewFeatureExtractor(1000, 10)
	// Pages 0-9 are chunk 0; pages 10-19 chunk 1.
	for i := 0; i < 20; i++ {
		fe.NoteWrite(3)
	}
	fe.NoteRead(15)
	hotChunk := fe.Encode(nil, 7, 100, 1, false)   // same chunk as page 3
	coldChunk := fe.Encode(nil, 25, 100, 1, false) // untouched chunk
	// chunk_write digits live right after prev_lifetime + io_len + is_seq.
	base := digitsPrevLifetime + digitsIOLen + 1
	hotW := hotChunk[base]
	coldW := coldChunk[base]
	if hotW <= coldW {
		t.Errorf("chunk_write digit: hot %v <= cold %v", hotW, coldW)
	}
}

func TestIsSeqNeuron(t *testing.T) {
	fe := NewFeatureExtractor(100, 10)
	seqPos := digitsPrevLifetime + digitsIOLen
	if x := fe.Encode(nil, 0, 1, 1, true); x[seqPos] != 1 {
		t.Error("seq bit not set")
	}
	if x := fe.Encode(nil, 0, 1, 1, false); x[seqPos] != 0 {
		t.Error("seq bit set for non-sequential write")
	}
}

func TestRWRatio(t *testing.T) {
	fe := NewFeatureExtractor(100, 10)
	if fe.RWRatio() != 0 {
		t.Error("empty ratio should be 0")
	}
	fe.NoteRead(0)
	fe.NoteRead(0)
	fe.NoteWrite(0)
	fe.NoteWrite(0)
	if got := fe.RWRatio(); got != 0.5 {
		t.Errorf("ratio = %v", got)
	}
}

func TestDecayHalvesCounters(t *testing.T) {
	fe := NewFeatureExtractor(100, 10)
	for i := 0; i < 8; i++ {
		fe.NoteWrite(0)
		fe.NoteRead(0)
	}
	fe.Decay()
	if fe.chunkW[0] != 4 || fe.chunkR[0] != 4 {
		t.Errorf("chunk counters after decay = %d/%d", fe.chunkW[0], fe.chunkR[0])
	}
	if fe.reads != 4 || fe.writes != 4 {
		t.Errorf("globals after decay = %d/%d", fe.reads, fe.writes)
	}
}

func TestPrevLifetimeSaturates(t *testing.T) {
	fe := NewFeatureExtractor(100, 10)
	x := fe.Encode(nil, 0, MaxLifetimeFeature+5, 1, false)
	for i := 0; i < digitsPrevLifetime; i++ {
		if x[i] != 1 {
			t.Errorf("digit %d = %v, want saturated", i, x[i])
		}
	}
}

func TestChunkPagesFloor(t *testing.T) {
	fe := NewFeatureExtractor(10, 0) // clamps to 1 page per chunk
	fe.NoteWrite(9)                  // must not panic
	if fe.chunkW[9] != 1 {
		t.Error("chunk accounting broken at floor")
	}
}
