// Package core implements PHFTL, the paper's contribution: a flash
// translation layer with device-side learning-based data separation. It
// provides the Page Classifier (a GRU sequence model predicting whether each
// written page is short- or long-living, §III-B), the adaptive labeling and
// classification-threshold adjustment algorithm (Algorithm 1), the host-side
// Model Trainer, the flash metadata layout with its RAM metadata cache
// (§III-C), and the ftl.Separator gluing it all into the FTL framework with
// the Adjusted Greedy GC policy (§III-D).
package core

import (
	"encoding/binary"
	"fmt"

	"github.com/phftl/phftl/internal/nand"
	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/rbtree"
)

// HiddenBytes is the size of the cached, 8-bit-quantized GRU hidden state
// per page (the paper's 32 B for a 32-neuron hidden layer).
const HiddenBytes = 32

// EntrySize is the per-page ML metadata footprint: 4 B last-write timestamp
// plus the quantized hidden state (the paper's 36 B, §III-C).
const EntrySize = 4 + HiddenBytes

// Entry is one page's ML metadata.
type Entry struct {
	// LastWrite is the virtual-clock value just *after* the page's last
	// write, 1-based: 0 means the page has never been written.
	LastWrite uint32
	// Hidden is the cached GRU hidden state after the last prediction.
	Hidden [HiddenBytes]int8
}

// EncodeEntry serializes an entry into dst (little-endian timestamp followed
// by the hidden state) and returns the EntrySize-byte slice.
func EncodeEntry(dst []byte, e Entry) []byte {
	if cap(dst) < EntrySize {
		dst = make([]byte, EntrySize)
	}
	dst = dst[:EntrySize]
	binary.LittleEndian.PutUint32(dst, e.LastWrite)
	for i, v := range e.Hidden {
		dst[4+i] = byte(v)
	}
	return dst
}

// DecodeEntry parses an entry from buf. Short or nil buffers decode to the
// zero entry (never-written), tolerating schemes that programmed no OOB.
func DecodeEntry(buf []byte) Entry {
	var e Entry
	if len(buf) < EntrySize {
		return e
	}
	e.LastWrite = binary.LittleEndian.Uint32(buf)
	for i := range e.Hidden {
		e.Hidden[i] = int8(buf[4+i])
	}
	return e
}

// MetaLayout computes the split of a superblock into data pages and tail
// meta pages such that the meta pages can hold one EntrySize record per data
// page (§III-C, Figure 4). entriesPerPage is how many records fit in one
// flash page.
func MetaLayout(pagesPerSB, pageSize int) (dataPages, metaPages, entriesPerPage int) {
	entriesPerPage = pageSize / EntrySize
	if entriesPerPage < 1 {
		entriesPerPage = 1
	}
	metaPages = 0
	for {
		dataPages = pagesPerSB - metaPages
		need := (dataPages + entriesPerPage - 1) / entriesPerPage
		if need <= metaPages || dataPages <= 1 {
			return dataPages, metaPages, entriesPerPage
		}
		metaPages++
	}
}

// FlashReader reads meta-page payloads from flash; the FTL implements it.
type FlashReader interface {
	ReadMetaPage(ppn nand.PPN) ([]byte, error)
}

// MetaStats counts metadata-retrieval outcomes.
type MetaStats struct {
	CacheHits   uint64 // served from the RAM meta-page cache
	CacheMisses uint64 // required a flash meta-page read
	OpenHits    uint64 // served from an open superblock's RAM buffer
	Defaults    uint64 // never-written pages (no metadata exists)
}

// HitRate returns the fraction of flash-backed retrievals served from RAM
// (the paper reports 98.2%–99.9%).
func (s MetaStats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 1
	}
	return float64(s.CacheHits) / float64(total)
}

// cacheEnt is one cached meta page plus its LRU linkage (intrusive doubly
// linked list; head = most recent).
type cacheEnt struct {
	mppn       nand.PPN
	buf        []byte
	prev, next *cacheEnt
}

// MetaStore implements PHFTL's metadata management: entries for open
// superblocks accumulate in RAM buffers; when a superblock closes they are
// sealed into its tail meta pages; reads of closed-superblock metadata go
// through an on-demand RAM cache of meta pages, indexed by MPPN with a
// red-black tree and evicted LRU (§III-C, Figure 4).
type MetaStore struct {
	geo            nand.Geometry
	dataPages      int
	metaPages      int
	entriesPerPage int
	reader         FlashReader

	openBufs map[int][]Entry // superblock -> per-offset entries

	cache    *rbtree.Tree[nand.PPN, *cacheEnt]
	lruHead  *cacheEnt
	lruTail  *cacheEnt
	capacity int

	// memo is a one-slot MRU memo in front of the red-black-tree lookup:
	// consecutive Gets of entries sharing a meta page (the paper's batching
	// locality, the common case on the write path) skip the tree walk
	// entirely. Invariant: memo, when non-nil, is the LRU head. Memo hits
	// count as cache hits and emit the same event, so telemetry is
	// unaffected by the memo layer.
	memo *cacheEnt

	// freeEnts recycles evicted cacheEnts (linked through next) and
	// entryPool recycles open-superblock Entry buffers, so steady-state GC
	// churn stops allocating. sealBufs are Seal's reusable output pages.
	freeEnts  *cacheEnt
	entryPool [][]Entry
	sealBufs  [][]byte

	stats MetaStats

	// rec, when non-nil, receives cache hit/miss/evict events stamped with
	// clockFn's virtual clock (the FTL's user-write clock).
	rec     obs.Recorder
	clockFn func() uint64
}

// NewMetaStore builds a metadata store for the geometry. cacheFrac is the
// RAM cache capacity as a fraction of the device's meta-page count (paper:
// 1%), floored at 4 pages.
func NewMetaStore(geo nand.Geometry, dataPages, metaPages, entriesPerPage int, cacheFrac float64, reader FlashReader) *MetaStore {
	totalMeta := geo.Superblocks() * metaPages
	capPages := int(cacheFrac * float64(totalMeta))
	if capPages < 4 {
		capPages = 4
	}
	return &MetaStore{
		geo:            geo,
		dataPages:      dataPages,
		metaPages:      metaPages,
		entriesPerPage: entriesPerPage,
		reader:         reader,
		openBufs:       make(map[int][]Entry),
		cache:          rbtree.New[nand.PPN, *cacheEnt](),
		capacity:       capPages,
	}
}

// Stats returns retrieval statistics.
func (m *MetaStore) Stats() MetaStats { return m.stats }

// SetRecorder installs a trace-event recorder. clockFn supplies the virtual
// clock stamped on events (nil stamps 0).
func (m *MetaStore) SetRecorder(r obs.Recorder, clockFn func() uint64) {
	m.rec = r
	m.clockFn = clockFn
}

func (m *MetaStore) emit(kind obs.Kind, mppn nand.PPN) {
	var clock uint64
	if m.clockFn != nil {
		clock = m.clockFn()
	}
	m.rec.Record(obs.Event{
		Kind: kind, Clock: clock,
		SB: -1, Stream: -1, GCClass: -1,
		A: int64(mppn),
	})
}

// CacheCapacity returns the cache capacity in meta pages.
func (m *MetaStore) CacheCapacity() int { return m.capacity }

// CacheLen returns the number of currently cached meta pages.
func (m *MetaStore) CacheLen() int { return m.cache.Len() }

// MPPNFor returns the meta-page PPN holding the entry of the data page at
// ppn.
func (m *MetaStore) MPPNFor(ppn nand.PPN) nand.PPN {
	sb := m.geo.SuperblockOf(ppn)
	off := m.geo.SuperblockOffset(ppn)
	return m.geo.SuperblockPPN(sb, m.dataPages+off/m.entriesPerPage)
}

// Get retrieves the metadata entry for a logical page currently stored at
// ppn (its L2P mapping). InvalidPPN returns the zero entry (never written).
func (m *MetaStore) Get(ppn nand.PPN) (Entry, error) {
	if ppn == nand.InvalidPPN {
		m.stats.Defaults++
		return Entry{}, nil
	}
	sb := m.geo.SuperblockOf(ppn)
	off := m.geo.SuperblockOffset(ppn)
	if buf, ok := m.openBufs[sb]; ok {
		m.stats.OpenHits++
		return buf[off], nil
	}
	mppn := m.geo.SuperblockPPN(sb, m.dataPages+off/m.entriesPerPage)
	page, err := m.metaPage(mppn)
	if err != nil {
		return Entry{}, err
	}
	idx := (off % m.entriesPerPage) * EntrySize
	if idx+EntrySize > len(page) {
		return Entry{}, fmt.Errorf("core: meta page %d too short for entry %d", mppn, off)
	}
	return DecodeEntry(page[idx:]), nil
}

// Invalidate clears the metadata entry of the data page at ppn (the page was
// discarded). Only entries in a still-open superblock's RAM buffer need
// zeroing: once the superblock seals, the entry is reachable only through the
// L2P mapping the FTL clears alongside this call, and the sealed flash copy
// disappears wholesale when GC erases the superblock.
func (m *MetaStore) Invalidate(ppn nand.PPN) {
	if ppn == nand.InvalidPPN {
		return
	}
	sb := m.geo.SuperblockOf(ppn)
	if buf, ok := m.openBufs[sb]; ok {
		buf[m.geo.SuperblockOffset(ppn)] = Entry{}
	}
}

// metaPage returns the cached contents of a meta page. The returned slice is
// owned by the cache and only valid until the entry is evicted or dropped;
// callers decode out of it immediately.
func (m *MetaStore) metaPage(mppn nand.PPN) ([]byte, error) {
	if ent := m.memo; ent != nil && ent.mppn == mppn {
		// Same bookkeeping as a tree hit; the memo is the LRU head, so no
		// LRU movement is needed.
		m.stats.CacheHits++
		if m.rec != nil {
			m.emit(obs.KindMetaCacheHit, mppn)
		}
		return ent.buf, nil
	}
	if ent, ok := m.cache.Get(mppn); ok {
		m.stats.CacheHits++
		if m.rec != nil {
			m.emit(obs.KindMetaCacheHit, mppn)
		}
		m.lruTouch(ent)
		m.memo = ent
		return ent.buf, nil
	}
	m.stats.CacheMisses++
	if m.rec != nil {
		m.emit(obs.KindMetaCacheMiss, mppn)
	}
	data, err := m.reader.ReadMetaPage(mppn)
	if err != nil {
		return nil, fmt.Errorf("core: meta page read %d: %w", mppn, err)
	}
	ent := m.freeEnts
	if ent != nil {
		m.freeEnts = ent.next
		ent.next = nil
		ent.mppn = mppn
	} else {
		ent = &cacheEnt{mppn: mppn}
	}
	ent.buf = append(ent.buf[:0], data...) // copy out of device memory
	m.cache.Put(mppn, ent)
	m.lruPush(ent)
	m.memo = ent
	for m.cache.Len() > m.capacity {
		m.evictLRU()
	}
	return ent.buf, nil
}

// releaseEnt returns a cacheEnt (already unlinked from LRU and tree) to the
// freelist, keeping its buffer capacity for the next miss.
func (m *MetaStore) releaseEnt(e *cacheEnt) {
	if m.memo == e {
		m.memo = nil
	}
	e.prev = nil
	e.next = m.freeEnts
	m.freeEnts = e
}

func (m *MetaStore) lruPush(e *cacheEnt) {
	e.prev = nil
	e.next = m.lruHead
	if m.lruHead != nil {
		m.lruHead.prev = e
	}
	m.lruHead = e
	if m.lruTail == nil {
		m.lruTail = e
	}
}

func (m *MetaStore) lruUnlink(e *cacheEnt) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (m *MetaStore) lruTouch(e *cacheEnt) {
	if m.lruHead == e {
		return
	}
	m.lruUnlink(e)
	m.lruPush(e)
}

func (m *MetaStore) evictLRU() {
	victim := m.lruTail
	if victim == nil {
		return
	}
	m.lruUnlink(victim)
	m.cache.Delete(victim.mppn)
	if m.rec != nil {
		m.emit(obs.KindMetaCacheEvict, victim.mppn)
	}
	m.releaseEnt(victim)
}

// Put records the metadata entry for a data page just programmed at ppn in
// its (open) superblock's RAM buffer.
func (m *MetaStore) Put(ppn nand.PPN, e Entry) {
	sb := m.geo.SuperblockOf(ppn)
	buf, ok := m.openBufs[sb]
	if !ok {
		if n := len(m.entryPool); n > 0 {
			buf = m.entryPool[n-1]
			m.entryPool = m.entryPool[:n-1]
			clear(buf)
		} else {
			buf = make([]Entry, m.dataPages)
		}
		m.openBufs[sb] = buf
	}
	buf[m.geo.SuperblockOffset(ppn)] = e
}

// Seal serializes an open superblock's buffered entries into its tail meta
// pages and releases the RAM buffer. The returned buffers are owned by the
// store and reused on the next Seal call: the FTL programs them immediately
// (the device copies page payloads), so nothing downstream retains them.
func (m *MetaStore) Seal(sb int) [][]byte {
	buf := m.openBufs[sb]
	if buf != nil {
		delete(m.openBufs, sb)
		m.entryPool = append(m.entryPool, buf)
	}
	if m.sealBufs == nil {
		m.sealBufs = make([][]byte, m.metaPages)
		for p := range m.sealBufs {
			m.sealBufs[p] = make([]byte, m.entriesPerPage*EntrySize)
		}
	}
	pages := m.sealBufs
	for p := range pages {
		page := pages[p]
		for i := 0; i < m.entriesPerPage; i++ {
			off := p*m.entriesPerPage + i
			var e Entry
			if buf != nil && off < len(buf) {
				e = buf[off]
			}
			EncodeEntry(page[i*EntrySize:i*EntrySize:(i+1)*EntrySize], e)
		}
	}
	return pages
}

// DropSB invalidates cached meta pages of an erased superblock: their MPPNs
// are about to be reused with fresh contents.
func (m *MetaStore) DropSB(sb int) {
	if buf, ok := m.openBufs[sb]; ok {
		delete(m.openBufs, sb)
		m.entryPool = append(m.entryPool, buf)
	}
	for p := 0; p < m.metaPages; p++ {
		mppn := m.geo.SuperblockPPN(sb, m.dataPages+p)
		if ent, ok := m.cache.Get(mppn); ok {
			m.lruUnlink(ent)
			m.cache.Delete(mppn)
			m.releaseEnt(ent)
		}
	}
}
