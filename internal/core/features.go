package core

import (
	"github.com/phftl/phftl/internal/ml"
	"github.com/phftl/phftl/internal/nand"
)

// Feature encoding widths in hexadecimal digits (§III-B: "The number of
// digits used for each feature is chosen so that most cases can be handled
// without overflow").
const (
	digitsPrevLifetime = 6 // up to ~16.7M page writes between updates
	digitsIOLen        = 3 // request size up to 4095 pages
	digitsChunkWrite   = 4
	digitsChunkRead    = 4
	digitsRWRat        = 2
)

// InputDim is the Page Classifier input width: every hexadecimal digit is
// one neuron, plus one binary neuron for is_seq.
const InputDim = digitsPrevLifetime + digitsIOLen + 1 + digitsChunkWrite + digitsChunkRead + digitsRWRat

// TailDim is the width of the feature tail — every dimension except the
// prev_lifetime digits. The tail depends only on the op stream (request
// shape plus chunk/global traffic statistics), never on FTL state, which is
// what lets the pipelined replay front stage precompute it ahead of the FTL
// (see TailTracker).
const TailDim = InputDim - digitsPrevLifetime

// MaxLifetimeFeature saturates prev_lifetime for never-written pages.
const MaxLifetimeFeature = 1<<(4*digitsPrevLifetime) - 1

// FeatureExtractor maintains the request- and locality-derived statistics
// behind the paper's feature set: io_len and is_seq from the current
// request, chunk_write/chunk_read (recent traffic to the page's enclosing
// chunk), and rw_rat (the global read/write ratio). Chunk and global
// counters are halved at every training window so "recent" tracks the
// workload (§III-B).
type FeatureExtractor struct {
	chunkPages int
	chunkW     []uint32
	chunkR     []uint32
	reads      uint64
	writes     uint64
}

// NewFeatureExtractor builds an extractor for a drive with exportedPages
// logical pages, grouping chunkPages consecutive pages per chunk (the paper
// suggests a "larger chunk"; 64 pages = 1 MiB at 16 KiB pages).
func NewFeatureExtractor(exportedPages, chunkPages int) *FeatureExtractor {
	if chunkPages < 1 {
		chunkPages = 1
	}
	chunks := (exportedPages + chunkPages - 1) / chunkPages
	return &FeatureExtractor{
		chunkPages: chunkPages,
		chunkW:     make([]uint32, chunks),
		chunkR:     make([]uint32, chunks),
	}
}

func (fe *FeatureExtractor) chunkOf(lpn nand.LPN) int { return int(lpn) / fe.chunkPages }

// NoteWrite records a page write for chunk/global statistics. Call after
// encoding the write's features so the features describe history, not the
// write itself.
func (fe *FeatureExtractor) NoteWrite(lpn nand.LPN) {
	fe.chunkW[fe.chunkOf(lpn)]++
	fe.writes++
}

// NoteRead records a page read.
func (fe *FeatureExtractor) NoteRead(lpn nand.LPN) {
	fe.chunkR[fe.chunkOf(lpn)]++
	fe.reads++
}

// RWRatio returns the global read fraction in [0,1].
func (fe *FeatureExtractor) RWRatio() float64 {
	total := fe.reads + fe.writes
	if total == 0 {
		return 0
	}
	return float64(fe.reads) / float64(total)
}

// Decay halves every counter; the trainer calls it at window boundaries so
// the statistics emphasize recent traffic.
func (fe *FeatureExtractor) Decay() {
	for i := range fe.chunkW {
		fe.chunkW[i] /= 2
		fe.chunkR[i] /= 2
	}
	fe.reads /= 2
	fe.writes /= 2
}

// Encode assembles the feature vector for a write to lpn whose previous
// version lived prevLifetime virtual-clock ticks (MaxLifetimeFeature when
// never written), arriving in a request of ioLen pages with sequentiality
// seq. dst is reused when large enough.
func (fe *FeatureExtractor) Encode(dst []float64, lpn nand.LPN, prevLifetime uint64, ioLen int, seq bool) []float64 {
	dst = dst[:0]
	dst = ml.HexDigits(dst, prevLifetime, digitsPrevLifetime)
	return fe.EncodeTail(dst, lpn, ioLen, seq)
}

// EncodeTail appends the TailDim feature-tail values (io_len, is_seq,
// chunk_write, chunk_read, rw_rat) for a write to lpn onto dst. Unlike
// Encode it does not reset dst, so callers can prepend the prev_lifetime
// digits themselves.
func (fe *FeatureExtractor) EncodeTail(dst []float64, lpn nand.LPN, ioLen int, seq bool) []float64 {
	dst = ml.HexDigits(dst, uint64(ioLen), digitsIOLen)
	dst = ml.Bit(dst, seq)
	c := fe.chunkOf(lpn)
	dst = ml.HexDigits(dst, uint64(fe.chunkW[c]), digitsChunkWrite)
	dst = ml.HexDigits(dst, uint64(fe.chunkR[c]), digitsChunkRead)
	dst = ml.Ratio01(dst, fe.RWRatio(), digitsRWRat)
	return dst
}
