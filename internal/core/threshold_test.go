package core

import (
	"math/rand"
	"testing"
)

// bimodal builds lifetime samples with a short cluster around shortMean and
// a long tail around longMean, plus probe samples whose first feature
// perfectly separates the two groups (so the LR probes can rank candidate
// thresholds meaningfully).
func bimodal(rng *rand.Rand, n int, shortFrac float64, shortMean, longMean float64) ([]float64, []probeSample) {
	var lifetimes []float64
	var probes []probeSample
	for i := 0; i < n; i++ {
		short := rng.Float64() < shortFrac
		var life float64
		if short {
			life = shortMean * (0.5 + rng.Float64())
		} else {
			life = longMean * (0.5 + rng.Float64())
		}
		lifetimes = append(lifetimes, life)
		feat := []float64{0, rng.Float64()}
		if short {
			feat[0] = 1
		}
		probes = append(probes, probeSample{feat: feat, lifetime: life})
	}
	return lifetimes, probes
}

func TestFirstWindowUsesInflectionPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lifetimes, probes := bimodal(rng, 500, 0.7, 20, 5000)
	ta := NewThresholdAdjuster(1)
	if ta.Current() != 0 {
		t.Error("initial threshold should be 0")
	}
	got := ta.Pick(lifetimes, probes)
	// The inflection point must land at the knee: above the bulk of the
	// short cluster ([10,30]) and below the long tail ([2500,7500]).
	if got < 25 || got > 2500 {
		t.Fatalf("first-window threshold = %v, want near the knee", got)
	}
	if ta.Current() != got {
		t.Error("Current() does not track the picked threshold")
	}
}

func TestAdjustmentTracksSeparationBoundary(t *testing.T) {
	// Feed several windows where the ideal boundary sits between the
	// clusters; the adjuster must stay in the gap and not drift into either
	// cluster.
	rng := rand.New(rand.NewSource(2))
	ta := NewThresholdAdjuster(2)
	var got float64
	for w := 0; w < 10; w++ {
		lifetimes, probes := bimodal(rng, 400, 0.6, 20, 5000)
		got = ta.Pick(lifetimes, probes)
	}
	if got < 30 || got > 2600 {
		t.Fatalf("threshold after 10 windows = %v, want inside the gap", got)
	}
}

func TestStepStaysClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ta := NewThresholdAdjuster(3)
	for w := 0; w < 30; w++ {
		lifetimes, probes := bimodal(rng, 200, 0.5, 10, 1000)
		ta.Pick(lifetimes, probes)
		if s := ta.Step(); s < 1 || s > 10 {
			t.Fatalf("window %d: step = %d outside [1,10]", w, s)
		}
	}
}

func TestEmptyWindowKeepsThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ta := NewThresholdAdjuster(4)
	lifetimes, probes := bimodal(rng, 300, 0.5, 10, 1000)
	first := ta.Pick(lifetimes, probes)
	got := ta.Pick(nil, nil)
	if got != first {
		t.Fatalf("empty window changed threshold: %v -> %v", first, got)
	}
}

func TestLabelAndResample(t *testing.T) {
	samples := []probeSample{
		{feat: []float64{1}, lifetime: 5},                  // short
		{feat: []float64{2}, lifetime: 6},                  // short
		{feat: []float64{3}, lifetime: 100},                // long
		{feat: []float64{4}, lifetime: 7, censored: true},  // unknown at t=10
		{feat: []float64{5}, lifetime: 50, censored: true}, // long at t=10
	}
	feats, labels := labelAndResample(samples, 10, 0)
	if len(feats) != len(labels) {
		t.Fatal("length mismatch")
	}
	pos, neg := 0, 0
	for _, l := range labels {
		if l == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos != neg {
		t.Errorf("unbalanced: %d pos, %d neg", pos, neg)
	}
	if pos != 2 {
		t.Errorf("pos = %d, want 2 (censored short-side sample must be skipped)", pos)
	}
	// Cap applies per class.
	feats, _ = labelAndResample(samples, 10, 1)
	if len(feats) != 2 {
		t.Errorf("capped len = %d, want 2", len(feats))
	}
}

func TestSingleClassWindowKeepsThreshold(t *testing.T) {
	ta := NewThresholdAdjuster(5)
	rng := rand.New(rand.NewSource(5))
	lifetimes, probes := bimodal(rng, 300, 0.5, 10, 1000)
	first := ta.Pick(lifetimes, probes)
	// A window where every sample is long-living relative to any candidate:
	// all candidates collapse to the same degenerate labeling.
	var lifetimes2 []float64
	var probes2 []probeSample
	for i := 0; i < 50; i++ {
		lifetimes2 = append(lifetimes2, 1e6+float64(i))
		probes2 = append(probes2, probeSample{feat: []float64{1, 0}, lifetime: 1e6 + float64(i)})
	}
	got := ta.Pick(lifetimes2, probes2)
	// Threshold may move to a candidate value, but must remain finite and
	// positive; and the adjuster must not crash on degenerate input.
	if got <= 0 {
		t.Fatalf("degenerate window produced threshold %v (first was %v)", got, first)
	}
}
