package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/phftl/phftl/internal/nand"
)

func TestMetaLayout(t *testing.T) {
	// 16 KiB pages hold 455 36-byte entries; a 256-page superblock needs
	// ceil(255/455) = 1 meta page.
	data, meta, epp := MetaLayout(256, 16384)
	if epp != 16384/EntrySize {
		t.Errorf("entriesPerPage = %d", epp)
	}
	if meta != 1 || data != 255 {
		t.Errorf("layout = %d data + %d meta", data, meta)
	}
	// Every data page must have an entry slot.
	if data > meta*epp {
		t.Errorf("meta pages hold %d entries for %d data pages", meta*epp, data)
	}
}

func TestMetaLayoutProperty(t *testing.T) {
	f := func(rawSB, rawPS uint16) bool {
		pagesPerSB := int(rawSB%512) + 2
		pageSize := (int(rawPS%64) + 1) * 256 // 256B..16KiB
		data, meta, epp := MetaLayout(pagesPerSB, pageSize)
		if data+meta != pagesPerSB || data < 1 {
			return false
		}
		// Either the meta region covers all data pages, or the layout hit
		// the degenerate floor (data == 1).
		return data <= meta*epp || data == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryRoundTrip(t *testing.T) {
	var e Entry
	e.LastWrite = 0xDEADBEEF
	for i := range e.Hidden {
		e.Hidden[i] = int8(i - 16)
	}
	buf := EncodeEntry(nil, e)
	if len(buf) != EntrySize {
		t.Fatalf("len = %d", len(buf))
	}
	got := DecodeEntry(buf)
	if got != e {
		t.Fatalf("round trip: got %+v want %+v", got, e)
	}
	// Short and nil buffers decode to the zero entry.
	if DecodeEntry(nil) != (Entry{}) || DecodeEntry(buf[:10]) != (Entry{}) {
		t.Error("short buffers must decode to zero entry")
	}
}

func TestEntryRoundTripProperty(t *testing.T) {
	f := func(lw uint32, h [HiddenBytes]int8) bool {
		e := Entry{LastWrite: lw, Hidden: h}
		return DecodeEntry(EncodeEntry(nil, e)) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// fakeReader serves meta pages from a map and counts reads.
type fakeReader struct {
	pages map[nand.PPN][]byte
	reads int
}

func (f *fakeReader) ReadMetaPage(ppn nand.PPN) ([]byte, error) {
	f.reads++
	buf, ok := f.pages[ppn]
	if !ok {
		return nil, fmt.Errorf("fake: no page %d", ppn)
	}
	return buf, nil
}

func metaTestGeo() nand.Geometry {
	// 8 dies x 4 pages/block: 32-page superblocks; 1440-byte pages hold 40
	// entries, so MetaLayout gives 31 data + 1 meta.
	return nand.Geometry{PageSize: 1440, OOBSize: 64, PagesPerBlock: 4, BlocksPerDie: 64, Dies: 8}
}

func TestMetaStoreOpenBufferAndSeal(t *testing.T) {
	geo := metaTestGeo()
	data, meta, epp := MetaLayout(geo.PagesPerSuperblock(), geo.PageSize)
	rd := &fakeReader{pages: map[nand.PPN][]byte{}}
	ms := NewMetaStore(geo, data, meta, epp, 0.01, rd)

	// Fill superblock 3's data region with entries.
	want := make([]Entry, data)
	for off := 0; off < data; off++ {
		e := Entry{LastWrite: uint32(off + 1)}
		e.Hidden[0] = int8(off % 100)
		want[off] = e
		ms.Put(geo.SuperblockPPN(3, off), e)
	}
	// While open, Get serves from the RAM buffer with no flash reads.
	for off := 0; off < data; off++ {
		got, err := ms.Get(geo.SuperblockPPN(3, off))
		if err != nil {
			t.Fatal(err)
		}
		if got != want[off] {
			t.Fatalf("open get off %d: %+v != %+v", off, got, want[off])
		}
	}
	if rd.reads != 0 {
		t.Fatalf("open gets caused %d flash reads", rd.reads)
	}
	if ms.Stats().OpenHits != uint64(data) {
		t.Errorf("open hits = %d", ms.Stats().OpenHits)
	}

	// Seal: entries now live in meta pages. Seal's buffers are reused on
	// the next call, so the fake flash (which retains them, unlike the FTL,
	// which programs immediately) must copy.
	pages := ms.Seal(3)
	if len(pages) != meta {
		t.Fatalf("sealed %d pages, want %d", len(pages), meta)
	}
	for i, buf := range pages {
		rd.pages[geo.SuperblockPPN(3, data+i)] = append([]byte(nil), buf...)
	}
	// First access misses (flash read), subsequent entries in the same meta
	// page hit the cache — the paper's batching locality.
	for off := 0; off < data; off++ {
		got, err := ms.Get(geo.SuperblockPPN(3, off))
		if err != nil {
			t.Fatal(err)
		}
		if got != want[off] {
			t.Fatalf("closed get off %d: %+v != %+v", off, got, want[off])
		}
	}
	if rd.reads != meta {
		t.Fatalf("closed gets caused %d flash reads, want %d", rd.reads, meta)
	}
	s := ms.Stats()
	if s.CacheMisses != uint64(meta) {
		t.Errorf("misses = %d", s.CacheMisses)
	}
	if s.CacheHits != uint64(data-meta) {
		t.Errorf("hits = %d, want %d", s.CacheHits, data-meta)
	}
	if hr := s.HitRate(); hr < 0.9 {
		t.Errorf("hit rate = %.3f", hr)
	}
}

func TestMetaStoreDefaultEntry(t *testing.T) {
	geo := metaTestGeo()
	data, meta, epp := MetaLayout(geo.PagesPerSuperblock(), geo.PageSize)
	ms := NewMetaStore(geo, data, meta, epp, 0.01, &fakeReader{})
	got, err := ms.Get(nand.InvalidPPN)
	if err != nil {
		t.Fatal(err)
	}
	if got != (Entry{}) {
		t.Errorf("default entry = %+v", got)
	}
	if ms.Stats().Defaults != 1 {
		t.Errorf("defaults = %d", ms.Stats().Defaults)
	}
}

func TestMetaStoreLRUEviction(t *testing.T) {
	geo := metaTestGeo()
	data, meta, epp := MetaLayout(geo.PagesPerSuperblock(), geo.PageSize)
	rd := &fakeReader{pages: map[nand.PPN][]byte{}}
	ms := NewMetaStore(geo, data, meta, epp, 0.0, rd) // floor: 4 pages
	if ms.CacheCapacity() != 4 {
		t.Fatalf("capacity = %d, want floor 4", ms.CacheCapacity())
	}
	// Seal 6 superblocks and touch one entry in each.
	for sb := 0; sb < 6; sb++ {
		ms.Put(geo.SuperblockPPN(sb, 0), Entry{LastWrite: uint32(sb + 1)})
		for i, buf := range ms.Seal(sb) {
			rd.pages[geo.SuperblockPPN(sb, data+i)] = append([]byte(nil), buf...)
		}
	}
	for sb := 0; sb < 6; sb++ {
		if _, err := ms.Get(geo.SuperblockPPN(sb, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if ms.CacheLen() > 4 {
		t.Fatalf("cache len = %d exceeds capacity", ms.CacheLen())
	}
	// Superblock 0's meta page was evicted (LRU): re-access misses again.
	before := rd.reads
	if _, err := ms.Get(geo.SuperblockPPN(0, 0)); err != nil {
		t.Fatal(err)
	}
	if rd.reads != before+1 {
		t.Error("expected a flash read after LRU eviction")
	}
	// Most-recent superblock 5 is still cached.
	before = rd.reads
	if _, err := ms.Get(geo.SuperblockPPN(5, 0)); err != nil {
		t.Fatal(err)
	}
	if rd.reads != before {
		t.Error("expected a cache hit for the most recent meta page")
	}
}

func TestMetaStoreDropSB(t *testing.T) {
	geo := metaTestGeo()
	data, meta, epp := MetaLayout(geo.PagesPerSuperblock(), geo.PageSize)
	rd := &fakeReader{pages: map[nand.PPN][]byte{}}
	ms := NewMetaStore(geo, data, meta, epp, 0.5, rd)
	ms.Put(geo.SuperblockPPN(2, 0), Entry{LastWrite: 7})
	for i, buf := range ms.Seal(2) {
		rd.pages[geo.SuperblockPPN(2, data+i)] = append([]byte(nil), buf...)
	}
	if _, err := ms.Get(geo.SuperblockPPN(2, 0)); err != nil {
		t.Fatal(err)
	}
	if ms.CacheLen() == 0 {
		t.Fatal("expected cached page")
	}
	ms.DropSB(2)
	if ms.CacheLen() != 0 {
		t.Fatalf("cache len after drop = %d", ms.CacheLen())
	}
	// Re-access must read flash again (simulating post-erase reuse).
	before := rd.reads
	if _, err := ms.Get(geo.SuperblockPPN(2, 0)); err != nil {
		t.Fatal(err)
	}
	if rd.reads != before+1 {
		t.Error("stale cache served after DropSB")
	}
}

func TestMetaStoreSealUnknownSB(t *testing.T) {
	geo := metaTestGeo()
	data, meta, epp := MetaLayout(geo.PagesPerSuperblock(), geo.PageSize)
	ms := NewMetaStore(geo, data, meta, epp, 0.01, &fakeReader{})
	pages := ms.Seal(9) // never Put: all-zero entries
	if len(pages) != meta {
		t.Fatalf("pages = %d", len(pages))
	}
	if DecodeEntry(pages[0]) != (Entry{}) {
		t.Error("expected zero entries for unwritten superblock")
	}
}

func TestMPPNFor(t *testing.T) {
	geo := metaTestGeo()
	data, meta, epp := MetaLayout(geo.PagesPerSuperblock(), geo.PageSize)
	ms := NewMetaStore(geo, data, meta, epp, 0.01, &fakeReader{})
	// Entries 0..epp-1 share the first meta page.
	first := ms.MPPNFor(geo.SuperblockPPN(1, 0))
	if got := geo.SuperblockOf(first); got != 1 {
		t.Errorf("meta page in sb %d", got)
	}
	if off := geo.SuperblockOffset(first); off != data {
		t.Errorf("meta page at offset %d, want %d", off, data)
	}
	if epp > 1 {
		second := ms.MPPNFor(geo.SuperblockPPN(1, 1))
		if second != first {
			t.Error("adjacent entries should share a meta page")
		}
	}
}
