package sim

import (
	"errors"

	"github.com/phftl/phftl/internal/core"
	"github.com/phftl/phftl/internal/nand"
	"github.com/phftl/phftl/internal/trace"
)

// The pipelined replay splits one cell's work into two stages connected by a
// bounded batch channel:
//
//	front stage (1 goroutine)          FTL stage (caller + worker pool)
//	------------------------           --------------------------------
//	trace generation / decoding   -->  replayOp: FTL write/read/trim,
//	page-op expansion                  GC (die-parallel victim snapshot),
//	PHFTL feature-tail encoding        window retraining (sharded)
//
// The front stage owns a TailTracker replica of PHFTL's feature statistics,
// so the feature tail of every user write is computed ahead of the FTL and
// merely consumed (StageTail) on the critical path. All ops are applied by
// the consumer in trace order, so results are byte-identical to the serial
// replay; the determinism tests in parallel_test.go pin this.
const (
	pipeBatchCap = 256 // ops per batch: amortizes channel synchronization
	pipeInFlight = 4   // bounded buffering between the stages
)

// pipeOp is one expanded page op plus its precomputed PHFTL feature tail.
type pipeOp struct {
	op      trace.PageOp
	tail    [core.TailDim]float64
	hasTail bool
}

// pipeBatch carries a block of ops; err (if any) is the producer's terminal
// error, observed by the consumer after the batch's ops.
type pipeBatch struct {
	ops []pipeOp
	err error
}

// errPipeAborted signals the producer that the consumer stopped early.
var errPipeAborted = errors.New("sim: pipeline aborted")

// opProducer drives a source of page ops, invoking yield for each in order.
type opProducer func(yield func(trace.PageOp) error) error

// runOps replays everything produce yields: serially when cellWorkers <= 1
// (exactly the historical code path), pipelined otherwise.
func (in *Instance) runOps(produce opProducer) error {
	exported := in.FTL.ExportedPages()
	if in.cellWorkers <= 1 {
		yield := func(op trace.PageOp) error { return in.replayOp(op, exported) }
		return produce(yield)
	}
	return in.runPipelined(produce, exported)
}

// runPipelined runs produce on a front-stage goroutine and applies its ops on
// the calling goroutine, recycling batches through a free list so the steady
// state allocates nothing.
func (in *Instance) runPipelined(produce opProducer, exported int) error {
	work := make(chan *pipeBatch, pipeInFlight)
	freeq := make(chan *pipeBatch, pipeInFlight+1)
	for i := 0; i < pipeInFlight+1; i++ {
		freeq <- &pipeBatch{ops: make([]pipeOp, 0, pipeBatchCap)}
	}
	quit := make(chan struct{})

	go in.pipeFront(produce, exported, work, freeq, quit)

	var firstErr error
	for b := range work {
		if firstErr == nil {
			for i := range b.ops {
				po := &b.ops[i]
				if po.hasTail {
					in.PHFTL.StageTail(po.tail[:])
				}
				if err := in.replayOp(po.op, exported); err != nil {
					firstErr = err
					break
				}
			}
			if firstErr == nil {
				firstErr = b.err
			}
			if firstErr != nil {
				// Unblock the producer (it may be mid-send), then fall
				// through to drain until it closes the channel.
				close(quit)
			}
		}
		select {
		case freeq <- b:
		default:
		}
	}
	return firstErr
}

// pipeFront is the front stage: it expands ops, precomputes PHFTL feature
// tails against a TailTracker replica, and ships batches downstream. It
// closes work on exit.
func (in *Instance) pipeFront(produce opProducer, exported int, work chan<- *pipeBatch, freeq <-chan *pipeBatch, quit <-chan struct{}) {
	defer close(work)
	var cur *pipeBatch
	acquire := func() bool {
		select {
		case cur = <-freeq:
			cur.ops = cur.ops[:0]
			cur.err = nil
			return true
		case <-quit:
			return false
		}
	}
	if !acquire() {
		return
	}
	var tracker *core.TailTracker
	if in.PHFTL != nil {
		tracker = in.PHFTL.NewTailTracker()
	}
	var tailBuf []float64
	yield := func(op trace.PageOp) error {
		po := pipeOp{op: op}
		if tracker != nil {
			lpn := nand.LPN(op.LPN % uint32(exported))
			switch {
			case op.Write:
				tailBuf = tracker.EncodeWrite(tailBuf, lpn, op.ReqPages, op.Seq)
				copy(po.tail[:], tailBuf)
				po.hasTail = true
			case op.Trim:
				// Trims touch no feature statistics.
			default:
				tracker.NoteRead(lpn)
			}
		}
		cur.ops = append(cur.ops, po)
		if len(cur.ops) == pipeBatchCap {
			select {
			case work <- cur:
			case <-quit:
				return errPipeAborted
			}
			if !acquire() {
				return errPipeAborted
			}
		}
		return nil
	}
	err := produce(yield)
	if err == errPipeAborted {
		return // consumer already stopped; nothing left to report
	}
	cur.err = err
	select {
	case work <- cur:
	case <-quit:
	}
}
