package sim

import (
	"strings"
	"testing"

	"github.com/phftl/phftl/internal/obs/registry"
)

// TestObserveWithRegistryCell replays a small PHFTL cell with a live
// registry attached and checks the served figures against the authoritative
// end-of-run FTL stats: same totals, monotone event stream, and a rendered
// exposition that carries the cell.
func TestObserveWithRegistryCell(t *testing.T) {
	p := smallProfile()
	geo := GeometryForDrive(p.ExportedPages, p.PageSize)
	in, err := Build(SchemePHFTL, geo, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	cell := reg.OpenCell(p.ID+"/PHFTL", registry.CellMeta{Trace: p.ID, Scheme: "PHFTL"})
	cell.SetState(registry.StateRunning)
	o := Observe(in, ObserveConfig{Cell: cell})
	res, err := RunOn(in, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	o.Finish(in.FTL.Clock())
	cell.SetState(registry.StateDone)

	s := reg.Snapshot()[0]
	if s.State != registry.StateDone {
		t.Fatalf("state = %v", s.State)
	}
	// The final sample (Observation.Finish) publishes the closing totals, so
	// the registry must agree exactly with the result's FTL stats.
	if s.UserWrites != res.FTLStats.UserPageWrites ||
		s.GCWrites != res.FTLStats.GCPageWrites ||
		s.MetaWrites != res.FTLStats.MetaPageWrites {
		t.Fatalf("registry writes (%d/%d/%d) != FTL stats (%d/%d/%d)",
			s.UserWrites, s.GCWrites, s.MetaWrites,
			res.FTLStats.UserPageWrites, res.FTLStats.GCPageWrites, res.FTLStats.MetaPageWrites)
	}
	if s.Ops != in.FTL.Clock() {
		t.Fatalf("registry ops %d != clock %d", s.Ops, in.FTL.Clock())
	}
	if s.CumWA != res.FTLStats.WA() {
		t.Fatalf("registry cum WA %v != stats %v", s.CumWA, res.FTLStats.WA())
	}
	if s.GCPasses == 0 || s.Events["gc_start"] != s.GCPasses {
		t.Fatalf("GC accounting wrong: passes %d, events %v", s.GCPasses, s.Events)
	}
	// The teed recorder must not starve the buffered observation: the JSONL
	// sinks and the live registry see the same stream.
	if len(o.Rec.Events()) == 0 || len(o.Sampler.Series()) == 0 {
		t.Fatal("buffered observation empty with registry attached")
	}

	events, newest := reg.EventsSince(0, 0, 0)
	if len(events) == 0 || newest == 0 {
		t.Fatal("drain ring empty after replay")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("ring seq gap: %d -> %d", events[i-1].Seq, events[i].Seq)
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `phftl_cell_cum_wa{cell="`+p.ID+`/PHFTL"}`) {
		t.Fatalf("cell missing from exposition:\n%s", b.String())
	}
}

// TestObserveNilCellUnchanged pins the disabled path: without a registry
// cell, Observe must behave exactly as before the telemetry surface existed
// (same recorder, same series, no panics from typed-nil recorders).
func TestObserveNilCellUnchanged(t *testing.T) {
	p := smallProfile()
	run := func(cfg ObserveConfig) (float64, int, int) {
		geo := GeometryForDrive(p.ExportedPages, p.PageSize)
		in, err := Build(SchemePHFTL, geo, nil)
		if err != nil {
			t.Fatal(err)
		}
		o := Observe(in, cfg)
		res, err := RunOn(in, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		o.Finish(in.FTL.Clock())
		return res.WA, len(o.Rec.Events()), len(o.Sampler.Series())
	}
	wa, nev, ns := run(ObserveConfig{})
	reg := registry.New()
	waR, nevR, nsR := run(ObserveConfig{Cell: reg.OpenCell("x", registry.CellMeta{})})
	if wa != waR || nev != nevR || ns != nsR {
		t.Fatalf("registry attachment changed the replay: (%v,%d,%d) vs (%v,%d,%d)",
			wa, nev, ns, waR, nevR, nsR)
	}
}
