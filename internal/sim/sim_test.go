package sim

import (
	"testing"

	"github.com/phftl/phftl/internal/core"
	"github.com/phftl/phftl/internal/workload"
)

func smallProfile() workload.Profile {
	// #144 keeps enough uniform cold churn that even short runs produce
	// nonzero WA for every scheme.
	p, ok := workload.ProfileByID("#144")
	if !ok {
		panic("missing profile")
	}
	p.ExportedPages = 4096
	return p
}

func TestGeometryForDriveAcceptsAllSchemes(t *testing.T) {
	for _, pages := range []int{4096, 16384} {
		geo := GeometryForDrive(pages, 16384)
		for _, s := range Schemes() {
			in, err := Build(s, geo, nil)
			if err != nil {
				t.Fatalf("%s at %d pages: %v", s, pages, err)
			}
			if in.FTL.ExportedPages() < pages {
				t.Errorf("%s: exported %d < requested %d", s, in.FTL.ExportedPages(), pages)
			}
		}
	}
}

func TestBuildUnknownScheme(t *testing.T) {
	geo := GeometryForDrive(4096, 16384)
	if _, err := Build("Nope", geo, nil); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunProfileAllSchemes(t *testing.T) {
	p := smallProfile()
	var was []float64
	for _, s := range Schemes() {
		res, err := RunProfile(p, s, 3, nil)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.Scheme != s || res.Profile != p.ID {
			t.Errorf("result identity: %+v", res)
		}
		if res.WA < 0 {
			t.Errorf("%s: negative WA %v", s, res.WA)
		}
		if res.FTLStats.UserPageWrites == 0 {
			t.Errorf("%s: no user writes recorded", s)
		}
		was = append(was, res.DataWA)
	}
	// Figure 5 ordering on this periodic profile: Base worst, PHFTL best.
	base, phftl := was[0], was[3]
	if phftl >= base {
		t.Errorf("PHFTL data-WA %.3f not below Base %.3f", phftl, base)
	}
}

func TestRunProfilePHFTLResultFields(t *testing.T) {
	p := smallProfile()
	res, err := RunProfile(p, SchemePHFTL, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion == nil || res.Confusion.Total() == 0 {
		t.Fatal("missing classifier results")
	}
	if res.Threshold <= 0 {
		t.Errorf("threshold = %v", res.Threshold)
	}
	if res.MetaStats.CacheHits+res.MetaStats.CacheMisses+res.MetaStats.OpenHits == 0 {
		t.Error("no metadata retrievals recorded")
	}
}

func TestRunProfileDeterminism(t *testing.T) {
	p := smallProfile()
	a, err := RunProfile(p, SchemePHFTL, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunProfile(p, SchemePHFTL, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.WA != b.WA || a.Confusion.Total() != b.Confusion.Total() {
		t.Fatalf("non-deterministic: %v/%d vs %v/%d", a.WA, a.Confusion.Total(), b.WA, b.Confusion.Total())
	}
}

func TestBuildPHFTLWithPolicy(t *testing.T) {
	geo := GeometryForDrive(4096, 16384)
	for _, pol := range []string{"adjusted", "greedy", "costbenefit"} {
		in, err := BuildPHFTLWithPolicy(geo, core.DefaultOptions(), pol)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if in.PHFTL == nil {
			t.Fatalf("%s: no PHFTL instance", pol)
		}
	}
	if _, err := BuildPHFTLWithPolicy(geo, core.DefaultOptions(), "nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestSchemesOrder(t *testing.T) {
	s := Schemes()
	if len(s) != 4 || s[0] != SchemeBase || s[3] != SchemePHFTL {
		t.Errorf("schemes = %v", s)
	}
}
