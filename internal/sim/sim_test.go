package sim

import (
	"io"
	"testing"

	"github.com/phftl/phftl/internal/trace"

	"github.com/phftl/phftl/internal/core"
	"github.com/phftl/phftl/internal/workload"
)

func smallProfile() workload.Profile {
	// #144 keeps enough uniform cold churn that even short runs produce
	// nonzero WA for every scheme.
	p, ok := workload.ProfileByID("#144")
	if !ok {
		panic("missing profile")
	}
	p.ExportedPages = 4096
	return p
}

func TestGeometryForDriveAcceptsAllSchemes(t *testing.T) {
	for _, pages := range []int{4096, 16384} {
		geo := GeometryForDrive(pages, 16384)
		for _, s := range Schemes() {
			in, err := Build(s, geo, nil)
			if err != nil {
				t.Fatalf("%s at %d pages: %v", s, pages, err)
			}
			if in.FTL.ExportedPages() < pages {
				t.Errorf("%s: exported %d < requested %d", s, in.FTL.ExportedPages(), pages)
			}
		}
	}
}

func TestBuildUnknownScheme(t *testing.T) {
	geo := GeometryForDrive(4096, 16384)
	if _, err := Build("Nope", geo, nil); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunProfileAllSchemes(t *testing.T) {
	p := smallProfile()
	var was []float64
	for _, s := range Schemes() {
		res, err := RunProfile(p, s, 3, nil)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.Scheme != s || res.Profile != p.ID {
			t.Errorf("result identity: %+v", res)
		}
		if res.WA < 0 {
			t.Errorf("%s: negative WA %v", s, res.WA)
		}
		if res.FTLStats.UserPageWrites == 0 {
			t.Errorf("%s: no user writes recorded", s)
		}
		was = append(was, res.DataWA)
	}
	// Figure 5 ordering on this periodic profile: Base worst, PHFTL best.
	base, phftl := was[0], was[3]
	if phftl >= base {
		t.Errorf("PHFTL data-WA %.3f not below Base %.3f", phftl, base)
	}
}

func TestRunProfilePHFTLResultFields(t *testing.T) {
	p := smallProfile()
	res, err := RunProfile(p, SchemePHFTL, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion == nil || res.Confusion.Total() == 0 {
		t.Fatal("missing classifier results")
	}
	if res.Threshold <= 0 {
		t.Errorf("threshold = %v", res.Threshold)
	}
	if res.MetaStats.CacheHits+res.MetaStats.CacheMisses+res.MetaStats.OpenHits == 0 {
		t.Error("no metadata retrievals recorded")
	}
}

func TestRunProfileDeterminism(t *testing.T) {
	p := smallProfile()
	a, err := RunProfile(p, SchemePHFTL, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunProfile(p, SchemePHFTL, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.WA != b.WA || a.Confusion.Total() != b.Confusion.Total() {
		t.Fatalf("non-deterministic: %v/%d vs %v/%d", a.WA, a.Confusion.Total(), b.WA, b.Confusion.Total())
	}
}

func TestBuildPHFTLWithPolicy(t *testing.T) {
	geo := GeometryForDrive(4096, 16384)
	for _, pol := range []string{"adjusted", "greedy", "costbenefit"} {
		in, err := BuildPHFTLWithPolicy(geo, core.DefaultOptions(), pol)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if in.PHFTL == nil {
			t.Fatalf("%s: no PHFTL instance", pol)
		}
	}
	if _, err := BuildPHFTLWithPolicy(geo, core.DefaultOptions(), "nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestSchemesOrder(t *testing.T) {
	s := Schemes()
	if len(s) != 4 || s[0] != SchemeBase || s[3] != SchemePHFTL {
		t.Errorf("schemes = %v", s)
	}
}

// sliceSource adapts a record slice to trace.RecordSource.
type sliceSource struct {
	recs []trace.Record
	i    int
}

func (s *sliceSource) Next() (trace.Record, error) {
	if s.i >= len(s.recs) {
		return trace.Record{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// TestReplayStreamMatchesSliceReplay is the streaming-equivalence acceptance
// criterion: replaying the same records through ReplayStream must leave the
// FTL in a state with identical statistics to the slice-based Expand+Replay
// path.
func TestReplayStreamMatchesSliceReplay(t *testing.T) {
	p := smallProfile()
	p.TrimFrac, p.TrimRunPages, p.SeqTrimLagPages = 0.05, 32, 128
	geo := GeometryForDrive(p.ExportedPages, p.PageSize)
	records := p.NewGenerator().Records(3 * p.ExportedPages)

	slice, err := Build(SchemeBase, geo, nil)
	if err != nil {
		t.Fatal(err)
	}
	ops := trace.Expand(records, p.PageSize, slice.FTL.ExportedPages())
	if err := slice.Replay(ops); err != nil {
		t.Fatal(err)
	}

	stream, err := Build(SchemeBase, geo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.ReplayStream(&sliceSource{recs: records}, p.PageSize); err != nil {
		t.Fatal(err)
	}

	if a, b := slice.FTL.Stats(), stream.FTL.Stats(); a != b {
		t.Fatalf("stats diverge:\nslice:  %+v\nstream: %+v", a, b)
	}
}

// TestReplayRoutesTrimsAllSchemes runs a trim twin through every scheme and
// checks Stats.Trims matches the discards that hit mapped pages, with clean
// invariants.
func TestReplayRoutesTrimsAllSchemes(t *testing.T) {
	p := smallProfile()
	p.TrimFrac, p.TrimRunPages, p.SeqTrimLagPages = 0.06, 48, 128
	for _, s := range Schemes() {
		res, err := RunProfile(p, s, 3, nil)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.FTLStats.Trims == 0 {
			t.Errorf("%s: no trims reached the FTL", s)
		}
	}
}

// TestTrimLowersWA replays a trim twin and its no-trim base on the Base
// scheme: discarding dead data before GC sees it must lower measured WA (the
// whole point of TRIM).
func TestTrimLowersWA(t *testing.T) {
	p := smallProfile()
	twin := workload.WithTrim(p, p.ID+"T", 0.06, 48, 128)
	base, err := RunProfile(p, SchemeBase, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	trimmed, err := RunProfile(twin, SchemeBase, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if trimmed.WA >= base.WA {
		t.Errorf("trim twin WA %.4f not below base WA %.4f", trimmed.WA, base.WA)
	}
}

// TestOPSweepMonotone checks the acceptance criterion for -op-sweep: Base
// WA must decrease monotonically as the spare factor grows (Frankie et al.'s
// closed-form curves are strictly decreasing in OP).
func TestOPSweepMonotone(t *testing.T) {
	p := smallProfile()
	prev := -1.0
	for i, op := range []float64{0.07, 0.15, 0.28} {
		geo := GeometryForDriveOP(p.ExportedPages, p.PageSize, op)
		in, err := BuildOP(SchemeBase, geo, op, nil)
		if err != nil {
			t.Fatalf("op=%v: %v", op, err)
		}
		res, err := RunOn(in, p, 4)
		if err != nil {
			t.Fatalf("op=%v: %v", op, err)
		}
		if i > 0 && res.WA >= prev {
			t.Errorf("WA(op=%v) = %.4f, not below WA at previous OP %.4f", op, res.WA, prev)
		}
		prev = res.WA
	}
}

// TestGeometryDefaultOPUnchanged pins that the OP-parameterized sizing at 7%
// reproduces the historical geometry bit-for-bit (golden baselines depend on
// it).
func TestGeometryDefaultOPUnchanged(t *testing.T) {
	for _, pages := range []int{4096, 12288, 16384, 20480, 32768} {
		a := GeometryForDrive(pages, 16384)
		b := GeometryForDriveOP(pages, 16384, 0.07)
		if a != b {
			t.Fatalf("%d pages: %+v vs %+v", pages, a, b)
		}
	}
}
