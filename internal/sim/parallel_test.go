package sim

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/trace"
	"github.com/phftl/phftl/internal/workload"
)

// parallelProfiles are the two traces the intra-cell determinism suite runs:
// the uniform-churn profile the rest of the package uses plus the hot/cold
// golden trace, with a trim twin mixed in so the pipeline's trim path is
// exercised too.
func parallelProfiles() []workload.Profile {
	p1 := smallProfile()
	p2, ok := workload.ProfileByID("#52")
	if !ok {
		panic("missing profile")
	}
	p2.ExportedPages = 4096
	p2 = workload.WithTrim(p2, p2.ID+"T", 0.05, 32, 128)
	return []workload.Profile{p1, p2}
}

// runCell runs one (scheme, profile) cell at the given worker count with
// observability attached and returns the result, the recorded events and the
// gauge samples rendered to strings (NaN-safe comparison). Events compare
// exactly: wall-clock durations are opt-in (core.Options.WallDurations,
// default off), so the default event stream is fully deterministic.
func runCell(t *testing.T, scheme Scheme, p workload.Profile, workers, dw int) (Result, []obs.Event, []string) {
	t.Helper()
	geo := GeometryForDrive(p.ExportedPages, p.PageSize)
	in, err := Build(scheme, geo, nil)
	if err != nil {
		t.Fatalf("%s/%s: %v", scheme, p.ID, err)
	}
	in.SetCellWorkers(workers)
	if got := in.CellWorkers(); got != workers && !(workers < 1 && got == 1) {
		t.Fatalf("CellWorkers() = %d after SetCellWorkers(%d)", got, workers)
	}
	o := Observe(in, ObserveConfig{})
	res, err := RunOn(in, p, dw)
	if err != nil {
		t.Fatalf("%s/%s workers=%d: %v", scheme, p.ID, workers, err)
	}
	events := o.Rec.Events()
	samples := make([]string, 0, len(o.Sampler.Series()))
	for _, s := range o.Sampler.Series() {
		samples = append(samples, fmt.Sprintf("%v", s))
	}
	return res, events, samples
}

// victims extracts the GC victim sequence (superblock IDs in collection
// order) from an event stream.
func victims(events []obs.Event) []int32 {
	var v []int32
	for _, ev := range events {
		if ev.Kind == obs.KindGCStart {
			v = append(v, ev.SB)
		}
	}
	return v
}

// TestCellWorkersDeterminism is the tentpole acceptance test: for every
// (trace, scheme) cell, replaying with -cell-workers 2 and 4 must produce
// results, event streams, GC victim sequences and telemetry samples
// byte-identical to the serial replay. Under -race this doubles as the data
// -race check on the pipeline, parallel GC and sharded retrainer.
func TestCellWorkersDeterminism(t *testing.T) {
	const dw = 2
	for _, p := range parallelProfiles() {
		for _, scheme := range []Scheme{SchemeBase, SchemePHFTL} {
			t.Run(fmt.Sprintf("%s/%s", p.ID, scheme), func(t *testing.T) {
				wantRes, wantEvents, wantSamples := runCell(t, scheme, p, 1, dw)
				if len(wantEvents) == 0 {
					t.Fatal("serial run recorded no events")
				}
				for _, workers := range []int{2, 4} {
					res, events, samples := runCell(t, scheme, p, workers, dw)
					if !reflect.DeepEqual(res, wantRes) {
						t.Errorf("workers=%d: result diverges\nserial:   %+v\nparallel: %+v", workers, wantRes, res)
					}
					if !reflect.DeepEqual(victims(events), victims(wantEvents)) {
						t.Errorf("workers=%d: GC victim sequence diverges", workers)
					}
					if !reflect.DeepEqual(events, wantEvents) {
						t.Errorf("workers=%d: event streams diverge (%d vs %d events)", workers, len(events), len(wantEvents))
					}
					if !reflect.DeepEqual(samples, wantSamples) {
						t.Errorf("workers=%d: telemetry samples diverge (%d vs %d)", workers, len(samples), len(wantSamples))
					}
				}
			})
		}
	}
}

// TestCellWorkersReplayStream pins the pipelined ReplayStream path against
// the serial one (RunOn covers the generator path; this covers record
// sources, including trims).
func TestCellWorkersReplayStream(t *testing.T) {
	p := smallProfile()
	p.TrimFrac, p.TrimRunPages, p.SeqTrimLagPages = 0.05, 32, 128
	geo := GeometryForDrive(p.ExportedPages, p.PageSize)
	records := p.NewGenerator().Records(2 * p.ExportedPages)

	serial, err := Build(SchemePHFTL, geo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.ReplayStream(&sliceSource{recs: records}, p.PageSize); err != nil {
		t.Fatal(err)
	}
	serial.Finish()

	piped, err := Build(SchemePHFTL, geo, nil)
	if err != nil {
		t.Fatal(err)
	}
	piped.SetCellWorkers(4)
	if err := piped.ReplayStream(&sliceSource{recs: records}, p.PageSize); err != nil {
		t.Fatal(err)
	}
	piped.Finish()

	if a, b := serial.FTL.Stats(), piped.FTL.Stats(); a != b {
		t.Fatalf("stats diverge:\nserial: %+v\npiped:  %+v", a, b)
	}
	if a, b := serial.PHFTL.Confusion().Total(), piped.PHFTL.Confusion().Total(); a != b {
		t.Fatalf("confusion totals diverge: %d vs %d", a, b)
	}
	if a, b := serial.PHFTL.Threshold(), piped.PHFTL.Threshold(); a != b {
		t.Fatalf("thresholds diverge: %v vs %v", a, b)
	}
}

// TestCellWorkersErrorPropagates checks the pipeline's abort protocol: a
// producer error must surface from the pipelined replay exactly as it does
// serially, without deadlocking the front stage.
func TestCellWorkersErrorPropagates(t *testing.T) {
	p := smallProfile()
	geo := GeometryForDrive(p.ExportedPages, p.PageSize)
	in, err := Build(SchemeBase, geo, nil)
	if err != nil {
		t.Fatal(err)
	}
	in.SetCellWorkers(2)
	wantErr := fmt.Errorf("source went away")
	records := p.NewGenerator().Records(p.ExportedPages / 2)
	src := &failingSource{recs: records, failAfter: len(records) / 2, err: wantErr}
	if err := in.ReplayStream(src, p.PageSize); err != wantErr {
		t.Fatalf("ReplayStream error = %v, want %v", err, wantErr)
	}
	in.Finish()
	// The instance must remain usable serially after the abort.
	in.SetCellWorkers(1)
	if err := in.ReplayStream(&sliceSource{recs: records}, p.PageSize); err != nil {
		t.Fatalf("post-abort serial replay: %v", err)
	}
}

// failingSource yields records then fails with a fixed error.
type failingSource struct {
	recs      []trace.Record
	failAfter int
	err       error
	i         int
}

func (s *failingSource) Next() (trace.Record, error) {
	if s.i >= s.failAfter {
		return trace.Record{}, s.err
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}
