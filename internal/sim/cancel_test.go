package sim

import (
	"context"
	"errors"
	"testing"
)

// TestRunOnCtxCancel pins cooperative cancellation through the replay loop:
// a cancelled context stops the run early (serial and pipelined alike) and
// surfaces context.Canceled through the run-tagged error, which is how the
// fleet supervisor distinguishes a user cancel from a genuine failure.
func TestRunOnCtxCancel(t *testing.T) {
	p := smallProfile()
	for _, workers := range []int{1, 2} {
		in, err := Build(SchemePHFTL, GeometryForDrive(p.ExportedPages, p.PageSize), nil)
		if err != nil {
			t.Fatal(err)
		}
		in.SetCellWorkers(workers)
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // cancelled before the first record: the run must do ~no work
		_, err = RunOnCtx(ctx, in, p, 100)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if w := in.FTL.Stats().UserPageWrites; w > uint64(p.ExportedPages) {
			t.Fatalf("workers=%d: %d user writes after pre-cancelled run", workers, w)
		}
	}
}

// TestRunOnCtxBackground pins that the nil-Done fast path still completes a
// run identically to plain RunOn.
func TestRunOnCtxBackground(t *testing.T) {
	p := smallProfile()
	run := func(f func(in *Instance) (Result, error)) Result {
		in, err := Build(SchemeBase, GeometryForDrive(p.ExportedPages, p.PageSize), nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f(in)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(func(in *Instance) (Result, error) { return RunOn(in, p, 2) })
	got := run(func(in *Instance) (Result, error) { return RunOnCtx(context.Background(), in, p, 2) })
	if want != got {
		t.Fatalf("RunOnCtx(Background) diverged:\n got %+v\nwant %+v", got, want)
	}
}
