// Package sim glues the pieces into runnable experiments: it sizes device
// geometries for the scaled-down drives, constructs each evaluated scheme
// (Base, 2R, SepBIT, PHFTL) over the same geometry, replays traces, and
// collects per-run results. The cmd/ harnesses and the benchmark suite are
// thin wrappers over this package.
package sim

import (
	"context"
	"fmt"
	"io"
	"math"

	"github.com/phftl/phftl/internal/core"
	"github.com/phftl/phftl/internal/ftl"
	"github.com/phftl/phftl/internal/metrics"
	"github.com/phftl/phftl/internal/nand"
	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/obs/registry"
	"github.com/phftl/phftl/internal/par"
	"github.com/phftl/phftl/internal/sepbit"
	"github.com/phftl/phftl/internal/trace"
	"github.com/phftl/phftl/internal/tworegion"
	"github.com/phftl/phftl/internal/wear"
	"github.com/phftl/phftl/internal/workload"
)

// Scheme identifies a data-separation scheme under evaluation.
type Scheme string

// The four schemes of Figure 5.
const (
	SchemeBase   Scheme = "Base"
	Scheme2R     Scheme = "2R"
	SchemeSepBIT Scheme = "SepBIT"
	SchemePHFTL  Scheme = "PHFTL"
)

// Schemes returns the Figure 5 scheme set in presentation order.
func Schemes() []Scheme {
	return []Scheme{SchemeBase, Scheme2R, SchemeSepBIT, SchemePHFTL}
}

// phftlStreams is the stream count PHFTL needs; geometries are sized for it
// so every scheme shares one geometry.
const phftlStreams = 7

// GeometryForDrive sizes a device for a scaled drive: 4 dies, ~128-page
// superblocks, 7% OP, and enough superblocks for PHFTL's GC reserve.
func GeometryForDrive(exportedPages, pageSize int) nand.Geometry {
	return GeometryForDriveOP(exportedPages, pageSize, 0.07)
}

// GeometryForDriveOP is GeometryForDrive at an arbitrary overprovisioning
// ratio, for OP sweeps. The superblock-count target uses integer basis-point
// arithmetic so the default 7% sizing is bit-identical to what the fixed
// GeometryForDrive always produced.
func GeometryForDriveOP(exportedPages, pageSize int, opRatio float64) nand.Geometry {
	dies := 4
	opBP := int(opRatio*10000 + 0.5)
	targetSBs := (exportedPages*(10000+opBP)/10000)/(dies*32) + 1
	if targetSBs < 320 {
		// Small drives need many (small) superblocks: the OP spare must
		// fund the GC floor plus garbage headroom in whole superblocks.
		// The floor scales with the requested OP (320 at the default 7%):
		// with a fixed floor, small-drive physical capacity would quantize
		// so coarsely that different OP ratios collapse onto the same
		// geometry and an OP sweep would measure nothing.
		targetSBs = 320 * (10000 + opBP) / 10700
	}
	return ftl.GeometryFor(exportedPages, opRatio, 1, phftlStreams, dies, targetSBs, pageSize, 64)
}

// Instance is one scheme instantiated over a device.
type Instance struct {
	Scheme Scheme
	FTL    *ftl.FTL
	PHFTL  *core.PHFTL // nil for baselines

	// Obs, when non-nil (installed by Observe), collects trace events and
	// periodic samples during Replay/RunOn.
	Obs *Observation

	// cellWorkers/pool implement intra-cell parallelism (SetCellWorkers):
	// a front-stage goroutine pipelines trace expansion + feature encoding
	// ahead of the FTL, and the pool parallelizes GC victim snapshots and
	// window retraining. 0 or 1 = fully serial (the historical behavior).
	cellWorkers int
	pool        *par.Pool
}

// SetCellWorkers configures intra-cell parallelism for subsequent replays.
// n <= 1 runs fully serial — byte-identical to the historical single-threaded
// replay. n >= 2 runs the pipelined replay with an n-lane worker pool wired
// into the FTL's GC and (for PHFTL) the scheme's window retrainer. Results
// are byte-identical for every n; only wall-clock changes. Call before
// Replay/RunOn/ReplayStream; Finish releases the pool.
func (in *Instance) SetCellWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if in.pool != nil {
		in.pool.Close()
		in.pool = nil
	}
	in.cellWorkers = n
	in.pool = par.New(n) // nil when n == 1
	in.FTL.SetParallel(in.pool)
	if in.PHFTL != nil {
		in.PHFTL.SetParallel(in.pool)
	}
}

// CellWorkers returns the configured intra-cell worker count (minimum 1).
func (in *Instance) CellWorkers() int {
	if in.cellWorkers < 1 {
		return 1
	}
	return in.cellWorkers
}

// Observation couples a trace recorder and a gauge sampler to an instance.
type Observation struct {
	Rec     *obs.TraceRecorder
	Sampler *obs.Sampler

	// Wear accounts erases by physical coordinate (fed by the device's
	// erase hook); it backs the sampled wear-skew/CoV gauges and the
	// end-of-run per-die heatmap. Nil when the instance has no device.
	Wear *wear.Accountant

	// QueueDepth, when non-nil, supplies the timing model's busy-die count
	// to samples (set by perfsim.Machine.Observe).
	QueueDepth func() float64

	// Latency, when non-nil, supplies per-interval P50/P99 write-request
	// latencies in milliseconds (set by perfsim.Machine.Observe). Each call
	// drains the interval's accumulated latencies, so consecutive samples
	// report disjoint intervals; NaN means no timed writes this interval.
	Latency func() (p50, p99 float64)
}

// ObserveConfig sizes an Observation. Zero values select defaults.
type ObserveConfig struct {
	// RingCap, when positive, bounds every per-kind event ring at that
	// capacity (the deprecated -ring-cap uniform policy). Zero selects
	// obs.DefaultRingPolicy: lossless rings for rare kinds, bounded sampled
	// rings for the hot meta-cache kinds.
	RingCap int
	// SampleEvery is the sampling interval in user-page writes (default:
	// 1/64th of the exported capacity, floored at 64 pages).
	SampleEvery uint64
	// Cell, when non-nil, additionally publishes the run into the live
	// metrics registry (the -listen HTTP telemetry surface): events are teed
	// into the cell's counters and the drain ring, and every sampler snapshot
	// updates the cell's gauges and cumulative write counters. Nil keeps the
	// historical buffered-only observation.
	Cell *registry.Cell
}

// Observe instruments an instance: the FTL, the PHFTL scheme and its
// metadata store all emit into one trace recorder, and a sampler snapshots
// interval WA, free superblocks, per-stream open-superblock fill, threshold
// and cache hit ratio on the virtual clock. Call before Replay/RunOn.
func Observe(in *Instance, cfg ObserveConfig) *Observation {
	every := cfg.SampleEvery
	if every == 0 {
		every = uint64(in.FTL.ExportedPages() / 64)
		if every < 64 {
			every = 64
		}
	}
	o := &Observation{Rec: obs.NewTraceRecorder(cfg.RingCap)}
	// The live-registry cell (if any) sees the same event stream as the
	// buffered recorder. The typed-nil guard matters: a nil *registry.Cell
	// wrapped in the Recorder interface would not compare equal to nil.
	var rec obs.Recorder = o.Rec
	if cfg.Cell != nil {
		rec = obs.Tee(o.Rec, cfg.Cell)
	}
	if dev := in.FTL.Device(); dev != nil {
		geo := dev.Geometry()
		o.Wear = wear.New(geo.Dies, geo.BlocksPerDie)
		rec, wa := rec, o.Wear
		dev.SetEraseHook(func(die, blk, count int) {
			wa.OnErase(die, blk)
			rec.Record(obs.Event{
				Kind:  obs.KindErase,
				Clock: in.FTL.Clock(),
				SB:    int32(blk),
				A:     int64(die),
				B:     int64(blk),
				C:     int64(count),
			})
		})
	}
	var prevUser, prevFlash uint64
	var fillBuf []float64
	o.Sampler = obs.NewSampler(every, func(clock uint64) obs.Sample {
		st := in.FTL.Stats()
		fillBuf = in.FTL.OpenFill(fillBuf)
		s := obs.Sample{
			Clock:      clock,
			IntervalWA: metrics.WriteAmp(st.FlashPageWrites()-prevFlash, st.UserPageWrites-prevUser),
			CumWA:      st.WA(),
			FreeSB:     in.FTL.FreeSuperblocks(),
			OpenFill:   append([]float64(nil), fillBuf...),
			// Baselines have no metadata cache; NaN marks the gauge as
			// not-applicable (the sinks omit it) instead of a fake 100%.
			CacheHitRatio: math.NaN(),
			// Functional replays have no timing model; NaN keeps the
			// latency fields out of the sinks (same convention as above).
			LatencyP50MS: math.NaN(),
			LatencyP99MS: math.NaN(),
			// NaN until the first erase (and always without wear accounting).
			WearSkew: math.NaN(),
			WearCoV:  math.NaN(),
		}
		if o.Wear != nil {
			s.WearSkew = o.Wear.Skew()
			s.WearCoV = o.Wear.CoV()
		}
		prevUser, prevFlash = st.UserPageWrites, st.FlashPageWrites()
		if in.PHFTL != nil {
			s.Threshold = in.PHFTL.Threshold()
			s.CacheHitRatio = in.PHFTL.MetaStats().HitRate()
		}
		if o.QueueDepth != nil {
			s.QueueDepth = o.QueueDepth()
		}
		if o.Latency != nil {
			s.LatencyP50MS, s.LatencyP99MS = o.Latency()
		}
		if cfg.Cell != nil {
			cfg.Cell.PublishSample(s, registry.FTLTotals{
				UserWrites: st.UserPageWrites,
				GCWrites:   st.GCPageWrites,
				MetaWrites: st.MetaPageWrites,
			})
		}
		return s
	})
	in.FTL.SetRecorder(rec)
	if in.PHFTL != nil {
		in.PHFTL.SetRecorder(rec, in.FTL.Clock)
	}
	in.Obs = o
	return o
}

// Finish takes a final sample at the given clock.
func (o *Observation) Finish(clock uint64) { o.Sampler.Final(clock) }

// Build constructs a scheme over the geometry. PHFTL options apply only to
// SchemePHFTL; pass nil for defaults.
func Build(scheme Scheme, geo nand.Geometry, opts *core.Options) (*Instance, error) {
	return BuildWithDevice(scheme, nil, geo, opts)
}

// BuildOP is Build at an explicit overprovisioning ratio (0 keeps the
// DefaultConfig value), for OP sweeps. The geometry should come from
// GeometryForDriveOP at the same ratio so the spare actually exists.
func BuildOP(scheme Scheme, geo nand.Geometry, opRatio float64, opts *core.Options) (*Instance, error) {
	return buildWithDevice(scheme, nil, geo, opRatio, opts)
}

// BuildWithDevice is Build over a caller-supplied fresh device, letting
// timing models install device hooks first. With a non-nil device, host
// reads are charged as flash reads. A nil device allocates one.
func BuildWithDevice(scheme Scheme, dev *nand.Device, geo nand.Geometry, opts *core.Options) (*Instance, error) {
	return buildWithDevice(scheme, dev, geo, 0, opts)
}

func buildWithDevice(scheme Scheme, dev *nand.Device, geo nand.Geometry, opRatio float64, opts *core.Options) (*Instance, error) {
	cfg := ftl.DefaultConfig(geo)
	if opRatio > 0 {
		cfg.OPRatio = opRatio
	}
	newFTL := func(sep ftl.Separator) (*ftl.FTL, error) {
		if dev == nil {
			return ftl.New(cfg, sep, ftl.CostBenefitPolicy{})
		}
		cfg.CountHostReads = true
		return ftl.NewWithDevice(cfg, dev, sep, ftl.CostBenefitPolicy{})
	}
	switch scheme {
	case SchemePHFTL:
		o := core.DefaultOptions()
		if opts != nil {
			o = *opts
		}
		if opRatio > 0 {
			o.OPRatio = opRatio
		}
		f, p, err := core.BuildWithDevice(dev, geo, o)
		if err != nil {
			return nil, err
		}
		return &Instance{Scheme: scheme, FTL: f, PHFTL: p}, nil
	case SchemeBase:
		f, err := newFTL(ftl.NewBaseSeparator())
		if err != nil {
			return nil, err
		}
		return &Instance{Scheme: scheme, FTL: f}, nil
	case Scheme2R:
		f, err := newFTL(tworegion.New())
		if err != nil {
			return nil, err
		}
		return &Instance{Scheme: scheme, FTL: f}, nil
	case SchemeSepBIT:
		// SepBIT's RAM table is sized to the exported capacity the FTL will
		// derive from this config (no meta pages: the full superblock is
		// data), mirroring ftl.NewWithDevice's computation.
		exported := int(float64(geo.Superblocks()*geo.PagesPerSuperblock()) / (1 + cfg.OPRatio))
		f, err := newFTL(sepbit.New(exported))
		if err != nil {
			return nil, err
		}
		return &Instance{Scheme: scheme, FTL: f}, nil
	default:
		return nil, fmt.Errorf("sim: unknown scheme %q", scheme)
	}
}

// BuildPHFTLWithPolicy constructs PHFTL under an alternative victim policy
// (for the Adjusted Greedy ablation). policy is "adjusted", "greedy" or
// "costbenefit".
func BuildPHFTLWithPolicy(geo nand.Geometry, opts core.Options, policy string) (*Instance, error) {
	if policy == "adjusted" {
		f, p, err := core.Build(geo, opts)
		if err != nil {
			return nil, err
		}
		return &Instance{Scheme: SchemePHFTL, FTL: f, PHFTL: p}, nil
	}
	dataPages, metaPages, _ := core.MetaLayout(geo.PagesPerSuperblock(), geo.PageSize)
	cfg := ftl.DefaultConfig(geo)
	cfg.MetaPagesPerSB = metaPages
	cfg.MaxGCClass = opts.GCStreams
	exported := int(float64(geo.Superblocks()*dataPages) / (1 + cfg.OPRatio))
	p, err := core.New(geo, exported, opts)
	if err != nil {
		return nil, err
	}
	var pol ftl.VictimPolicy
	switch policy {
	case "greedy":
		pol = ftl.GreedyPolicy{}
	case "costbenefit":
		pol = ftl.CostBenefitPolicy{}
	default:
		return nil, fmt.Errorf("sim: unknown policy %q", policy)
	}
	f, err := ftl.New(cfg, p, pol)
	if err != nil {
		return nil, err
	}
	p.Attach(f)
	return &Instance{Scheme: SchemePHFTL, FTL: f, PHFTL: p}, nil
}

// replayOp drives one page-level operation through the instance. Unmapped
// reads are ignored (hosts read zeroes); trims route to FTL.Trim, which
// no-ops on unmapped pages.
func (in *Instance) replayOp(op trace.PageOp, exported int) error {
	lpn := nand.LPN(op.LPN % uint32(exported))
	switch {
	case op.Write:
		if err := in.FTL.Write(ftl.UserWrite{LPN: lpn, ReqPages: op.ReqPages, Seq: op.Seq}); err != nil {
			return err
		}
		if in.Obs != nil {
			in.Obs.Sampler.Tick(in.FTL.Clock())
		}
	case op.Trim:
		if err := in.FTL.Trim(lpn); err != nil {
			return err
		}
	default:
		if err := in.FTL.Read(lpn, op.ReqPages); err != nil && err != ftl.ErrUnmapped {
			return err
		}
	}
	return nil
}

// Replay drives page-level operations through the instance.
func (in *Instance) Replay(ops []trace.PageOp) error {
	err := in.runOps(func(yield func(trace.PageOp) error) error {
		for _, op := range ops {
			if err := yield(op); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if in.PHFTL != nil {
		if err := in.PHFTL.Err(); err != nil {
			return err
		}
	}
	return nil
}

// ReplayStream drives a record stream through the instance in constant
// memory: each record is expanded and replayed before the next is pulled, so
// multi-GB trace files never materialize as a slice. pageSize is the replay
// page size (records are byte-addressed); drivePages for LPN wrapping is the
// profile-independent exported capacity of the instance itself.
func (in *Instance) ReplayStream(src trace.RecordSource, pageSize int) error {
	e := trace.NewExpander(pageSize, in.FTL.ExportedPages())
	err := in.runOps(func(yield func(trace.PageOp) error) error {
		for {
			rec, err := src.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := e.Expand(rec, yield); err != nil {
				return err
			}
		}
	})
	if err != nil {
		return err
	}
	if in.PHFTL != nil {
		if err := in.PHFTL.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Finish resolves outstanding classifier predictions, takes the final
// observation sample, and releases the intra-cell worker pool (safe because
// pooled and serial execution produce identical results).
func (in *Instance) Finish() {
	if in.pool != nil {
		in.pool.Close()
		in.pool = nil
		in.FTL.SetParallel(nil)
		if in.PHFTL != nil {
			in.PHFTL.SetParallel(nil)
		}
	}
	if in.PHFTL != nil {
		in.PHFTL.Finish(in.FTL.Clock())
	}
	if in.Obs != nil {
		in.Obs.Finish(in.FTL.Clock())
	}
}

// Result is the outcome of one (profile, scheme) run.
type Result struct {
	Profile   string
	Scheme    Scheme
	WA        float64
	DataWA    float64
	FTLStats  ftl.Stats
	Confusion *metrics.Confusion // nil for baselines
	MetaStats core.MetaStats     // zero for baselines
	Threshold float64
}

// RunProfile replays driveWrites full-drive writes of the profile's
// synthetic trace under the scheme and returns the measurements. opts
// customizes PHFTL (nil = defaults).
func RunProfile(p workload.Profile, scheme Scheme, driveWrites int, opts *core.Options) (Result, error) {
	geo := GeometryForDrive(p.ExportedPages, p.PageSize)
	in, err := Build(scheme, geo, opts)
	if err != nil {
		return Result{}, err
	}
	return RunOn(in, p, driveWrites)
}

// RunOn replays the profile on an existing instance. The generator's records
// are expanded and replayed one at a time, so a run's memory footprint is
// independent of driveWrites (the slice-based path materialized every record
// and page op up front — hundreds of MB for deep -dw replays).
func RunOn(in *Instance, p workload.Profile, driveWrites int) (Result, error) {
	return RunOnCtx(context.Background(), in, p, driveWrites)
}

// RunOnCtx is RunOn with cooperative cancellation: the replay loop checks the
// context between trace records (a record expands to a bounded burst of page
// ops, so cancellation latency is one record's expansion plus any GC it
// triggers). A cancelled run returns the context's error wrapped in the usual
// run annotation — test with errors.Is(err, context.Canceled) — and leaves the
// instance mid-replay; discard it rather than reusing it.
func RunOnCtx(ctx context.Context, in *Instance, p workload.Profile, driveWrites int) (Result, error) {
	gen := p.NewGenerator()
	target := driveWrites * p.ExportedPages
	e := trace.NewExpander(p.PageSize, p.ExportedPages)
	// Background and other never-cancelled contexts report a nil Done channel:
	// skip the select entirely so plain RunOn keeps its historical hot loop.
	done := ctx.Done()
	err := in.runOps(func(yield func(trace.PageOp) error) error {
		for gen.PageWrites() < target {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			if err := e.Expand(gen.Next(), yield); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Result{}, fmt.Errorf("sim: %s on %s: %w", in.Scheme, p.ID, err)
	}
	if in.PHFTL != nil {
		if err := in.PHFTL.Err(); err != nil {
			return Result{}, fmt.Errorf("sim: %s on %s: %w", in.Scheme, p.ID, err)
		}
	}
	in.Finish()
	res := Result{
		Profile:  p.ID,
		Scheme:   in.Scheme,
		WA:       in.FTL.Stats().WA(),
		DataWA:   in.FTL.Stats().DataWA(),
		FTLStats: in.FTL.Stats(),
	}
	if in.PHFTL != nil {
		res.Confusion = in.PHFTL.Confusion()
		res.MetaStats = in.PHFTL.MetaStats()
		res.Threshold = in.PHFTL.Threshold()
	}
	return res, nil
}
