package sim

import (
	"testing"

	"github.com/phftl/phftl/internal/workload"
)

// TestUniformClosedForm pins the Base scheme's greedy-GC behaviour on
// uniform-random traffic against the closed-form overprovisioning
// approximation of Frankie et al., WA = (1-Sf)/(2*Sf) at effective spare
// factor Sf (stated in this repo's extra-flash-writes-per-user-write
// convention). The approximation is not exact for greedy victim selection —
// it overshoots at generous spare and undershoots at tight spare — so the
// test asserts the measured curve stays within a bracket of the prediction
// and, independently, that it decreases monotonically in Sf. A GC or
// allocation change that moves uniform-random WA outside the analytic
// corridor fails here before it can silently shift every skewed-trace
// result.
func TestUniformClosedForm(t *testing.T) {
	// All skew knobs zero: every write is a single-page uniform-random
	// update over the full exported LPN space, the regime the closed form
	// models.
	p := workload.Profile{
		ID: "#uniform", DriveClass: "probe",
		ExportedPages: 65536, PageSize: 4096,
		InterArrivalUS: 100, ReqPagesMax: 1, Seed: 1,
	}
	prevWA := -1.0
	for _, op := range []float64{0.07, 0.15, 0.28} {
		geo := GeometryForDriveOP(p.ExportedPages, p.PageSize, op)
		in, err := BuildOP(SchemeBase, geo, op, nil)
		if err != nil {
			t.Fatalf("op=%v: %v", op, err)
		}
		res, err := RunOn(in, p, 8)
		if err != nil {
			t.Fatalf("op=%v: %v", op, err)
		}
		totalData := float64(geo.Superblocks() * in.FTL.DataPagesPerSB())
		sf := (totalData - float64(p.ExportedPages)) / totalData
		pred := (1 - sf) / (2 * sf)
		ratio := res.WA / pred
		t.Logf("op=%.2f sf=%.4f measured=%.4f pred=%.4f ratio=%.3f", op, sf, res.WA, pred, ratio)
		if ratio < 0.5 || ratio > 1.7 {
			t.Errorf("op=%v: measured WA %.4f vs closed form %.4f (ratio %.3f) outside [0.5, 1.7]",
				op, res.WA, pred, ratio)
		}
		if prevWA >= 0 && res.WA >= prevWA {
			t.Errorf("op=%v: WA %.4f did not decrease from %.4f at the previous spare factor",
				op, res.WA, prevWA)
		}
		prevWA = res.WA
	}
}
