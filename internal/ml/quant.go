package ml

import "math"

// Quantization (§IV): "All model parameters are quantized to 8-bit integers
// at a loss of accuracy in less than 1%." We implement symmetric per-tensor
// post-training quantization: each weight tensor is snapped to a 255-level
// int8 grid (w ≈ q·scale with q ∈ [−127,127]). The cached per-page hidden
// state is likewise stored as 32 int8 values (32 bytes, as the paper's 36-byte
// metadata entry requires), exploiting the fact that GRU hidden states are
// bounded in (−1,1).

// HiddenScale is the fixed quantization scale for hidden states: values in
// (−1,1) map onto int8 via round(h*127).
const HiddenScale = 127.0

// QuantizeTensor snaps a tensor's values onto the int8 grid in place,
// returning the scale used. A zero tensor gets scale 0.
func QuantizeTensor(t *Tensor) float64 {
	maxAbs := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	scale := maxAbs / 127.0
	for i, v := range t.Data {
		q := math.Round(v / scale)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		t.Data[i] = q * scale
	}
	return scale
}

// Quantize returns a copy of the network with every parameter snapped onto
// the int8 grid. Inference through the returned network is numerically
// identical to integer inference with dequantize-on-use, so the accuracy
// delta it exhibits is exactly the deployment quantization loss.
func (n *GRUNet) Quantize() *GRUNet {
	q := n.Clone()
	for _, t := range q.Params() {
		QuantizeTensor(t)
	}
	return q
}

// QuantizeHidden packs a float hidden state into int8 (the 32-byte cached
// state stored in flash metadata), writing into dst (allocating when dst is
// nil or too short) and returning it. The hot path passes the metadata
// entry's array directly so quantized deployment stays allocation-free.
func QuantizeHidden(h []float64, dst []int8) []int8 {
	out := dst
	if len(out) < len(h) {
		out = make([]int8, len(h))
	}
	out = out[:len(h)]
	for i, v := range h {
		q := math.Round(v * HiddenScale)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		out[i] = int8(q)
	}
	return out
}

// DequantizeHidden unpacks an int8 hidden state into dst (allocating when
// dst is nil or too short) and returns it.
func DequantizeHidden(q []int8, dst []float64) []float64 {
	if len(dst) < len(q) {
		dst = make([]float64, len(q))
	}
	dst = dst[:len(q)]
	for i, v := range q {
		dst[i] = float64(v) / HiddenScale
	}
	return dst
}
