package ml

import (
	"math/rand"
	"testing"
)

// raceEnabled is set to true by alloc_race_test.go under -race; the race
// runtime instruments allocations, so AllocsPerRun assertions only hold in
// normal builds.

// TestInferenceZeroAllocs pins the zero-allocation invariant of the
// device-side prediction hot path: after one warm-up call (which sizes the
// per-instance scratch), StepState, LogitsFromState and PredictInto must not
// heap-allocate for any deployed model family. The paper's 9 µs prediction
// budget (§III-C) leaves no room for GC churn on the per-write path.
func TestInferenceZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(1))
	models := []struct {
		name string
		m    SequenceModel
	}{
		{"GRU", NewGRUNet(8, 32, 2, rng)},
		{"LSTM", NewLSTMNet(8, 32, 2, rng)},
		{"MLP", NewMLPNet(8, 32, 2, rng)},
	}
	for _, tc := range models {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.m
			x := make([]float64, m.InputSize())
			for i := range x {
				x[i] = rng.Float64()
			}
			state := make([]float64, m.StateSize())
			out := make([]float64, m.StateSize())

			m.StepState(state, x, out) // warm up scratch
			if allocs := testing.AllocsPerRun(100, func() {
				m.StepState(state, x, out)
			}); allocs != 0 {
				t.Errorf("StepState allocates %.1f per call", allocs)
			}
			if allocs := testing.AllocsPerRun(100, func() {
				_ = m.LogitsFromState(out)
			}); allocs != 0 {
				t.Errorf("LogitsFromState allocates %.1f per call", allocs)
			}
			if allocs := testing.AllocsPerRun(100, func() {
				_ = m.PredictInto(state, x, out)
			}); allocs != 0 {
				t.Errorf("PredictInto allocates %.1f per call", allocs)
			}
		})
	}
}

// TestQuantizedInferenceZeroAllocs covers the actually-deployed artifact: the
// int8-quantized network produced by QuantizeModel, which is what PHFTL runs
// per write.
func TestQuantizedInferenceZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(2))
	m := NewGRUNet(8, 32, 2, rng).QuantizeModel()
	x := make([]float64, m.InputSize())
	state := make([]float64, m.StateSize())
	out := make([]float64, m.StateSize())
	_ = m.PredictInto(state, x, out)
	if allocs := testing.AllocsPerRun(100, func() {
		_ = m.PredictInto(state, x, out)
	}); allocs != 0 {
		t.Errorf("quantized PredictInto allocates %.1f per call", allocs)
	}
}

// TestQuantizeHiddenZeroAllocs pins buffer reuse in the hidden-state
// round-trip that brackets every prediction.
func TestQuantizeHiddenZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	h := make([]float64, 32)
	q := make([]int8, 32)
	f := make([]float64, 32)
	if allocs := testing.AllocsPerRun(100, func() {
		q = QuantizeHidden(h, q)
		f = DequantizeHidden(q, f)
	}); allocs != 0 {
		t.Errorf("hidden-state round trip allocates %.1f per call", allocs)
	}
}

func BenchmarkPredictStep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	families := []struct {
		name string
		m    SequenceModel
	}{
		{"gru", NewGRUNet(8, 32, 2, rng)},
		{"gru-quantized", NewGRUNet(8, 32, 2, rng).QuantizeModel()},
		{"lstm", NewLSTMNet(8, 32, 2, rng)},
		{"mlp", NewMLPNet(8, 32, 2, rng)},
	}
	for _, tc := range families {
		b.Run(tc.name, func(b *testing.B) {
			m := tc.m
			x := make([]float64, m.InputSize())
			for i := range x {
				x[i] = rng.Float64()
			}
			state := make([]float64, m.StateSize())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m.PredictInto(state, x, state)
			}
		})
	}
}
