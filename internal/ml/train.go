package ml

import (
	"math"
	"math/rand"
)

// Adam is the Adam optimizer (Kingma & Ba) over a set of parameter tensors,
// as used by PHFTL's Model Trainer (§III-B: "trained ... with the cross
// entropy loss function and the Adam optimizer").
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	step int
	m, v [][]float64
}

// NewAdam returns an Adam optimizer with the standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Update applies one optimization step to params using their accumulated
// gradients (scaled by 1/batch), then leaves gradients untouched — callers
// should ZeroGrad afterwards.
func (a *Adam) Update(params []*Tensor, batch int) {
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, len(p.Data))
			a.v[i] = make([]float64, len(p.Data))
		}
	}
	a.step++
	scale := 1.0
	if batch > 1 {
		scale = 1.0 / float64(batch)
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range params {
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			g := p.Grad[j] * scale
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mHat := m[j] / bc1
			vHat := v[j] / bc2
			p.Data[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// SoftmaxCrossEntropy returns the loss and the gradient w.r.t. the logits
// for a single sample with integer label.
func SoftmaxCrossEntropy(logits []float64, label int) (float64, []float64) {
	return SoftmaxCrossEntropyInto(logits, label, make([]float64, len(logits)))
}

// SoftmaxCrossEntropyInto is the allocation-free form of SoftmaxCrossEntropy:
// probs is caller-owned scratch of len(logits), overwritten with the gradient
// (which is also returned). Numerically identical to SoftmaxCrossEntropy.
func SoftmaxCrossEntropyInto(logits []float64, label int, probs []float64) (float64, []float64) {
	maxL := logits[0]
	for _, v := range logits[1:] {
		if v > maxL {
			maxL = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		probs[i] = math.Exp(v - maxL)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	loss := -math.Log(math.Max(probs[label], 1e-15))
	grad := probs
	grad[label] -= 1
	return loss, grad
}

// Sample is one training example: a feature sequence and its binary label
// (1 = short-living).
type Sample struct {
	Seq   [][]float64
	Label int
}

// TrainConfig controls one training run.
type TrainConfig struct {
	Epochs    int     // paper: one epoch per window
	BatchSize int     // mini-batch size
	LR        float64 // Adam learning rate
	Seed      int64   // shuffle seed for determinism
}

// DefaultTrainConfig mirrors the paper: one epoch, small batches.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 1, BatchSize: 32, LR: 0.01, Seed: 1}
}

// TrainEpochs trains the network in place on the samples and returns the
// mean loss of the final epoch.
func TrainEpochs(n *GRUNet, samples []Sample, opt *Adam, cfg TrainConfig) float64 {
	if len(samples) == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 1
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	lastLoss := 0.0
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		inBatch := 0
		n.ZeroGrad()
		for _, idx := range order {
			s := samples[idx]
			if len(s.Seq) == 0 {
				continue
			}
			traces, h := n.forward(s.Seq)
			logits := n.Logits(h)
			loss, dLogits := SoftmaxCrossEntropy(logits, s.Label)
			total += loss
			outerAddGrad(n.Wout, dLogits, h)
			addGrad(n.Bout, dLogits)
			n.ensureTrainScratch()
			dh := n.dhScratch
			for i := range dh {
				dh[i] = 0
			}
			matTVecAdd(n.Wout, dLogits, dh)
			n.backward(traces, dh)
			inBatch++
			if inBatch == batch {
				opt.Update(n.Params(), inBatch)
				n.ZeroGrad()
				inBatch = 0
			}
		}
		if inBatch > 0 {
			opt.Update(n.Params(), inBatch)
			n.ZeroGrad()
		}
		lastLoss = total / float64(len(order))
	}
	return lastLoss
}

// EvalAccuracy returns the fraction of samples whose argmax prediction
// matches the label.
func EvalAccuracy(n *GRUNet, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if n.Predict(s.Seq) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// ResampleBalanced returns a class-balanced subset of samples (paper,
// Algorithm 1: "label and resample to a small, balanced training set"),
// undersampling the majority class, capped at maxPerClass per class.
// The selection is deterministic for a given seed.
func ResampleBalanced(samples []Sample, maxPerClass int, seed int64) []Sample {
	return new(ResampleScratch).Resample(samples, maxPerClass, seed)
}

// ResampleScratch holds the reusable buffers (and reseedable RNG) behind
// ResampleBalanced, so a caller that resamples every window — PHFTL's
// endWindow — stops paying ~5 KB of rand.Rand plus three slices per call.
// The zero value is ready to use; results are bit-identical to
// ResampleBalanced for the same (samples, maxPerClass, seed).
type ResampleScratch struct {
	rng      *rand.Rand
	pos, neg []int
	out      []Sample
}

// Resample is ResampleBalanced against pooled scratch. The returned slice
// aliases the scratch and is overwritten by the next call.
func (rs *ResampleScratch) Resample(samples []Sample, maxPerClass int, seed int64) []Sample {
	pos, neg := rs.pos[:0], rs.neg[:0]
	for i, s := range samples {
		if s.Label == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rs.pos, rs.neg = pos, neg
	if rs.rng == nil {
		rs.rng = rand.New(rand.NewSource(seed))
	} else {
		// Seeding an existing Rand restarts the exact stream a fresh
		// rand.New(rand.NewSource(seed)) would produce, without allocating.
		rs.rng.Seed(seed)
	}
	rs.rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rs.rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	n := len(pos)
	if len(neg) < n {
		n = len(neg)
	}
	if maxPerClass > 0 && n > maxPerClass {
		n = maxPerClass
	}
	out := rs.out[:0]
	for i := 0; i < n; i++ {
		out = append(out, samples[pos[i]], samples[neg[i]])
	}
	rs.out = out
	return out
}
