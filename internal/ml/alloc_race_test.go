//go:build race

package ml

const raceEnabled = true
