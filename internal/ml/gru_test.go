package ml

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad estimates dLoss/dparam by central differences for one
// parameter element.
func numericalGrad(n *GRUNet, seq [][]float64, label int, t *Tensor, idx int) float64 {
	const eps = 1e-5
	orig := t.Data[idx]
	lossAt := func(v float64) float64 {
		t.Data[idx] = v
		_, h := n.forward(seq)
		logits := n.Logits(h)
		loss, _ := SoftmaxCrossEntropy(logits, label)
		return loss
	}
	plus := lossAt(orig + eps)
	minus := lossAt(orig - eps)
	t.Data[idx] = orig
	return (plus - minus) / (2 * eps)
}

// TestGRUGradientCheck verifies the hand-written BPTT against finite
// differences on every parameter tensor. This is the load-bearing
// correctness test for the whole training stack.
func TestGRUGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := NewGRUNet(3, 4, 2, rng)
	seq := [][]float64{
		{0.1, -0.4, 0.9},
		{0.8, 0.2, -0.3},
		{-0.5, 0.6, 0.1},
	}
	label := 1

	// Analytic gradients.
	n.ZeroGrad()
	traces, h := n.forward(seq)
	logits := n.Logits(h)
	_, dLogits := SoftmaxCrossEntropy(logits, label)
	outerAddGrad(n.Wout, dLogits, h)
	addGrad(n.Bout, dLogits)
	dh := make([]float64, n.Hidden)
	matTVecAdd(n.Wout, dLogits, dh)
	n.backward(traces, dh)

	names := []string{"Wz", "Uz", "Bz", "Wr", "Ur", "Br", "Wc", "Uc", "Bc", "Wout", "Bout"}
	for ti, tensor := range n.Params() {
		for idx := 0; idx < len(tensor.Data); idx += 3 { // sample every 3rd element
			want := numericalGrad(n, seq, label, tensor, idx)
			got := tensor.Grad[idx]
			diff := math.Abs(got - want)
			tol := 1e-6 + 1e-4*math.Abs(want)
			if diff > tol {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g (diff %g)", names[ti], idx, got, want, diff)
			}
		}
	}
}

func TestGRUStepBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := NewGRUNet(5, 8, 2, rng)
	h := make([]float64, 8)
	for step := 0; step < 200; step++ {
		x := make([]float64, 5)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		n.Step(h, x, h)
		for i, v := range h {
			if v <= -1 || v >= 1 || math.IsNaN(v) {
				t.Fatalf("step %d: h[%d] = %v escaped (-1,1)", step, i, v)
			}
		}
	}
}

func TestGRUPredictFromMatchesFullSequence(t *testing.T) {
	// The O(1) incremental prediction path (cached hidden state + one step)
	// must agree with re-running the whole sequence from h0 = 0.
	rng := rand.New(rand.NewSource(9))
	n := NewGRUNet(4, 6, 2, rng)
	var seq [][]float64
	h := make([]float64, 6)
	for step := 0; step < 10; step++ {
		x := make([]float64, 4)
		for i := range x {
			x[i] = rng.Float64()
		}
		seq = append(seq, x)
		full := n.Predict(seq)
		incr, hNext := n.PredictFrom(h, x)
		if full != incr {
			t.Fatalf("step %d: full-sequence %d vs incremental %d", step, full, incr)
		}
		h = hNext
	}
}

func TestTrainLearnsSequenceTask(t *testing.T) {
	// Task: label 1 iff the sum of first-feature values across the sequence
	// exceeds 0 — requires integrating over time, so a working GRU should
	// reach high accuracy while a broken recurrence would not.
	rng := rand.New(rand.NewSource(10))
	makeSample := func() Sample {
		l := 3 + rng.Intn(5)
		seq := make([][]float64, l)
		sum := 0.0
		for i := range seq {
			v := rng.Float64()*2 - 1
			sum += v
			seq[i] = []float64{v, rng.Float64()}
		}
		label := 0
		if sum > 0 {
			label = 1
		}
		return Sample{Seq: seq, Label: label}
	}
	var train, test []Sample
	for i := 0; i < 600; i++ {
		train = append(train, makeSample())
	}
	for i := 0; i < 200; i++ {
		test = append(test, makeSample())
	}
	n := NewGRUNet(2, 12, 2, rng)
	opt := NewAdam(0.01)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 12
	TrainEpochs(n, train, opt, cfg)
	acc := EvalAccuracy(n, test)
	if acc < 0.85 {
		t.Fatalf("test accuracy %.3f, want >= 0.85", acc)
	}
}

func TestTrainReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var samples []Sample
	for i := 0; i < 100; i++ {
		x := rng.Float64()
		label := 0
		if x > 0.5 {
			label = 1
		}
		samples = append(samples, Sample{Seq: [][]float64{{x}}, Label: label})
	}
	n := NewGRUNet(1, 6, 2, rng)
	opt := NewAdam(0.02)
	cfg := DefaultTrainConfig()
	first := TrainEpochs(n, samples, opt, cfg)
	var last float64
	for i := 0; i < 20; i++ {
		last = TrainEpochs(n, samples, opt, cfg)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %.4f, last %.4f", first, last)
	}
}

func TestTrainEpochsEmptyAndDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := NewGRUNet(2, 4, 2, rng)
	opt := NewAdam(0.01)
	if loss := TrainEpochs(n, nil, opt, DefaultTrainConfig()); loss != 0 {
		t.Errorf("empty training loss = %v", loss)
	}
	// Empty sequences are skipped without panicking.
	samples := []Sample{{Seq: nil, Label: 0}, {Seq: [][]float64{{1, 2}}, Label: 1}}
	TrainEpochs(n, samples, opt, DefaultTrainConfig())
	if EvalAccuracy(n, nil) != 0 {
		t.Error("EvalAccuracy(nil) should be 0")
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	logits := []float64{1.5, -0.3, 0.7}
	label := 2
	loss, grad := SoftmaxCrossEntropy(append([]float64(nil), logits...), label)
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	// Gradient sums to zero and grad[label] is negative.
	sum := 0.0
	for _, g := range grad {
		sum += g
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("grad sum = %v, want 0", sum)
	}
	if grad[label] >= 0 {
		t.Errorf("grad[label] = %v, want negative", grad[label])
	}
	// Numeric check.
	const eps = 1e-6
	for i := range logits {
		lp := append([]float64(nil), logits...)
		lp[i] += eps
		lossP, _ := SoftmaxCrossEntropy(lp, label)
		lm := append([]float64(nil), logits...)
		lm[i] -= eps
		lossM, _ := SoftmaxCrossEntropy(lm, label)
		want := (lossP - lossM) / (2 * eps)
		if math.Abs(grad[i]-want) > 1e-6 {
			t.Errorf("grad[%d] = %v, numeric %v", i, grad[i], want)
		}
	}
}

func TestResampleBalanced(t *testing.T) {
	var samples []Sample
	for i := 0; i < 90; i++ {
		samples = append(samples, Sample{Seq: [][]float64{{0}}, Label: 0})
	}
	for i := 0; i < 10; i++ {
		samples = append(samples, Sample{Seq: [][]float64{{1}}, Label: 1})
	}
	out := ResampleBalanced(samples, 0, 1)
	if len(out) != 20 {
		t.Fatalf("len = %d, want 20", len(out))
	}
	pos := 0
	for _, s := range out {
		if s.Label == 1 {
			pos++
		}
	}
	if pos != 10 {
		t.Errorf("positives = %d, want 10", pos)
	}
	capped := ResampleBalanced(samples, 4, 1)
	if len(capped) != 8 {
		t.Errorf("capped len = %d, want 8", len(capped))
	}
	if got := ResampleBalanced(samples[:90], 0, 1); len(got) != 0 {
		t.Errorf("single-class resample len = %d, want 0", len(got))
	}
}

func TestCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := NewGRUNet(2, 3, 2, rng)
	c := n.Clone()
	n.Wz.Data[0] = 999
	if c.Wz.Data[0] == 999 {
		t.Error("Clone shares weight storage")
	}
}

func BenchmarkGRUStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := NewGRUNet(20, 32, 2, rng)
	h := make([]float64, 32)
	x := make([]float64, 20)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(h, x, h)
	}
}

func BenchmarkGRUTrainSample(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := NewGRUNet(20, 32, 2, rng)
	opt := NewAdam(0.01)
	seq := make([][]float64, 8)
	for i := range seq {
		seq[i] = make([]float64, 20)
		for j := range seq[i] {
			seq[i][j] = rng.Float64()
		}
	}
	samples := []Sample{{Seq: seq, Label: 1}}
	cfg := DefaultTrainConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainEpochs(n, samples, opt, cfg)
	}
}

func TestTrainModelMatchesTrainEpochsForGRU(t *testing.T) {
	// TrainModel (interface path) and TrainEpochs (GRU fast path) implement
	// the same algorithm; with identical seeds they must produce identical
	// weights.
	rng1 := rand.New(rand.NewSource(99))
	rng2 := rand.New(rand.NewSource(99))
	a := NewGRUNet(2, 4, 2, rng1)
	b := NewGRUNet(2, 4, 2, rng2)
	var samples []Sample
	srng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		x := srng.Float64()
		label := 0
		if x > 0.5 {
			label = 1
		}
		samples = append(samples, Sample{Seq: [][]float64{{x, srng.Float64()}}, Label: label})
	}
	cfg := DefaultTrainConfig()
	lossA := TrainEpochs(a, samples, NewAdam(0.01), cfg)
	lossB := TrainModel(b, samples, NewAdam(0.01), cfg)
	if math.Abs(lossA-lossB) > 1e-12 {
		t.Fatalf("losses diverge: %v vs %v", lossA, lossB)
	}
	for ti := range a.Params() {
		pa, pb := a.Params()[ti], b.Params()[ti]
		for j := range pa.Data {
			if math.Abs(pa.Data[j]-pb.Data[j]) > 1e-12 {
				t.Fatalf("weights diverge at tensor %d elem %d", ti, j)
			}
		}
	}
}
