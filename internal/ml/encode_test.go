package ml

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHexDigits(t *testing.T) {
	got := HexDigits(nil, 0xAB3, 3)
	want := []float64{3.0 / 15, 11.0 / 15, 10.0 / 15} // LSD first
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("digit %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHexDigitsSaturation(t *testing.T) {
	// 0x1FF does not fit in 2 digits; it must saturate to 0xFF, not wrap.
	got := HexDigits(nil, 0x1FF, 2)
	for i, v := range got {
		if v != 1.0 {
			t.Errorf("digit %d = %v, want saturated 1.0", i, v)
		}
	}
	// Full-width (16-digit) encoding of max uint64 must not overflow.
	full := HexDigits(nil, ^uint64(0), 16)
	for i, v := range full {
		if v != 1.0 {
			t.Errorf("full digit %d = %v", i, v)
		}
	}
}

func TestHexDigitsAppend(t *testing.T) {
	dst := []float64{42}
	dst = HexDigits(dst, 1, 2)
	if len(dst) != 3 || dst[0] != 42 {
		t.Errorf("append behaviour broken: %v", dst)
	}
}

func TestHexDigitsRangeProperty(t *testing.T) {
	f := func(v uint32, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		out := HexDigits(nil, uint64(v), n)
		if len(out) != n {
			return false
		}
		for _, d := range out {
			if d < 0 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHexDigitsReconstructProperty(t *testing.T) {
	// For in-range values, digits reconstruct the original value exactly.
	f := func(v uint16) bool {
		out := HexDigits(nil, uint64(v), 4)
		var back uint64
		for i := 3; i >= 0; i-- {
			back = back<<4 | uint64(out[i]*15+0.5)
		}
		return back == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBit(t *testing.T) {
	if got := Bit(nil, true); got[0] != 1 {
		t.Errorf("Bit(true) = %v", got)
	}
	if got := Bit(nil, false); got[0] != 0 {
		t.Errorf("Bit(false) = %v", got)
	}
}

func TestRatio01(t *testing.T) {
	lo := Ratio01(nil, 0, 2)
	hi := Ratio01(nil, 1, 2)
	for _, v := range lo {
		if v != 0 {
			t.Errorf("Ratio01(0) digits = %v", lo)
		}
	}
	for _, v := range hi {
		if v != 1 {
			t.Errorf("Ratio01(1) digits = %v", hi)
		}
	}
	// Clamping.
	if got := Ratio01(nil, -3, 2); got[0] != 0 {
		t.Errorf("negative ratio not clamped: %v", got)
	}
	if got := Ratio01(nil, 7, 2); got[0] != 1 {
		t.Errorf("oversized ratio not clamped: %v", got)
	}
	// Monotonicity: larger ratio encodes to a value that is >= when decoded.
	decode := func(d []float64) float64 {
		v := 0.0
		for i := len(d) - 1; i >= 0; i-- {
			v = v*16 + d[i]*15
		}
		return v
	}
	prev := -1.0
	for r := 0.0; r <= 1.0; r += 0.05 {
		v := decode(Ratio01(nil, r, 2))
		if v < prev {
			t.Fatalf("Ratio01 not monotonic at %v", r)
		}
		prev = v
	}
}
