package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeTensorGrid(t *testing.T) {
	tensor := NewTensor(1, 5)
	copy(tensor.Data, []float64{-1.0, -0.5, 0, 0.5, 1.0})
	scale := QuantizeTensor(tensor)
	if scale <= 0 {
		t.Fatalf("scale = %v", scale)
	}
	for i, v := range tensor.Data {
		q := v / scale
		if math.Abs(q-math.Round(q)) > 1e-9 {
			t.Errorf("elem %d = %v is not on the int8 grid (scale %v)", i, v, scale)
		}
		if math.Abs(math.Round(q)) > 127 {
			t.Errorf("elem %d quantizes to %v, outside [-127,127]", i, math.Round(q))
		}
	}
	zero := NewTensor(2, 2)
	if s := QuantizeTensor(zero); s != 0 {
		t.Errorf("zero tensor scale = %v", s)
	}
}

func TestQuantizeErrorBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	tensor := NewTensor(8, 8)
	for i := range tensor.Data {
		tensor.Data[i] = rng.NormFloat64()
	}
	orig := append([]float64(nil), tensor.Data...)
	scale := QuantizeTensor(tensor)
	for i := range tensor.Data {
		if math.Abs(tensor.Data[i]-orig[i]) > scale/2+1e-12 {
			t.Errorf("elem %d error %v exceeds half a quantization step %v",
				i, math.Abs(tensor.Data[i]-orig[i]), scale/2)
		}
	}
}

func TestQuantizedModelAgreesWithFloat(t *testing.T) {
	// Quantized deployment must agree with the float model on the vast
	// majority of inputs (paper: <1% accuracy loss).
	rng := rand.New(rand.NewSource(21))
	n := NewGRUNet(6, 16, 2, rng)
	// Train briefly so weights are meaningful, not just random.
	var samples []Sample
	for i := 0; i < 200; i++ {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.Float64()
		}
		label := 0
		if x[0] > 0.5 {
			label = 1
		}
		samples = append(samples, Sample{Seq: [][]float64{x}, Label: label})
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 5
	TrainEpochs(n, samples, NewAdam(0.01), cfg)

	q := n.Quantize()
	agree := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		seq := make([][]float64, 4)
		for s := range seq {
			seq[s] = make([]float64, 6)
			for j := range seq[s] {
				seq[s][j] = rng.Float64()
			}
		}
		if n.Predict(seq) == q.Predict(seq) {
			agree++
		}
	}
	if rate := float64(agree) / trials; rate < 0.99 {
		t.Fatalf("quantized agreement %.3f, want >= 0.99", rate)
	}
}

func TestHiddenQuantRoundTrip(t *testing.T) {
	h := []float64{-0.999, -0.5, 0, 0.25, 0.999}
	q := QuantizeHidden(h, nil)
	if len(q) != len(h) {
		t.Fatalf("len = %d", len(q))
	}
	back := DequantizeHidden(q, nil)
	for i := range h {
		if math.Abs(back[i]-h[i]) > 1.0/HiddenScale {
			t.Errorf("elem %d: %v -> %v, error > 1/127", i, h[i], back[i])
		}
	}
	// Out-of-range values clamp instead of wrapping.
	q2 := QuantizeHidden([]float64{5, -5}, nil)
	if q2[0] != 127 || q2[1] != -127 {
		t.Errorf("clamping failed: %v", q2)
	}
	// Reuse of destination slices.
	dst := make([]float64, 8)
	got := DequantizeHidden(q, dst)
	if &got[0] != &dst[0] {
		t.Error("DequantizeHidden did not reuse dst")
	}
	qdst := make([]int8, 8)
	qgot := QuantizeHidden(h, qdst)
	if &qgot[0] != &qdst[0] {
		t.Error("QuantizeHidden did not reuse dst")
	}
	if len(qgot) != len(h) {
		t.Errorf("QuantizeHidden reused-dst len = %d, want %d", len(qgot), len(h))
	}
}

func TestHiddenQuantRoundTripProperty(t *testing.T) {
	f := func(raw []int8) bool {
		h := make([]float64, len(raw))
		for i, v := range raw {
			if v == -128 { // hidden states live in (-1,1); -128 is unreachable
				v = -127
			}
			h[i] = float64(v) / HiddenScale
		}
		back := DequantizeHidden(QuantizeHidden(h, nil), nil)
		for i := range h {
			if math.Abs(back[i]-h[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
