package ml

import (
	"math/rand"
	"testing"
)

func TestLogRegLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	var feats [][]float64
	var labels []int
	for i := 0; i < 400; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		label := 0
		if x[0]+x[1] > 0 {
			label = 1
		}
		feats = append(feats, x)
		labels = append(labels, label)
	}
	m := NewLogReg(2)
	m.Train(feats, labels, 30, 0.2, 1)
	if acc := m.Accuracy(feats, labels); acc < 0.95 {
		t.Fatalf("accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestTrainEvalLogRegHeldOut(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var feats [][]float64
	var labels []int
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64()}
		label := 0
		if x[0] > 0.5 {
			label = 1
		}
		feats = append(feats, x)
		labels = append(labels, label)
	}
	acc := TrainEvalLogReg(feats, labels, 1)
	if acc < 0.9 {
		t.Fatalf("held-out accuracy = %.3f, want >= 0.9", acc)
	}
	// Random labels should score near chance, clearly below the separable
	// case — this is what lets Algorithm 1 rank candidate thresholds.
	randLabels := make([]int, len(labels))
	for i := range randLabels {
		randLabels[i] = rng.Intn(2)
	}
	randAcc := TrainEvalLogReg(feats, randLabels, 1)
	if randAcc > acc {
		t.Fatalf("random labels scored %.3f >= separable %.3f", randAcc, acc)
	}
}

func TestTrainEvalLogRegDegenerate(t *testing.T) {
	if acc := TrainEvalLogReg(nil, nil, 1); acc != 0 {
		t.Errorf("empty = %v", acc)
	}
	// Tiny set falls back to training accuracy without panicking.
	acc := TrainEvalLogReg([][]float64{{1}}, []int{1}, 1)
	if acc != 1 {
		t.Errorf("single sample accuracy = %v, want 1 (memorized)", acc)
	}
}

func TestLogRegEmptyTrain(t *testing.T) {
	m := NewLogReg(3)
	m.Train(nil, nil, 5, 0.1, 1) // must not panic
	if m.Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
	if m.Predict([]float64{0, 0, 0}) != 1 {
		t.Error("zero model with sigmoid(0)=0.5 should predict class 1 at the boundary")
	}
}
