// Package ml is a small, dependency-free machine-learning library built for
// PHFTL's Page Classifier: a single-layer GRU sequence model with a fully
// connected output head (§III-B of the paper), trained with backpropagation
// through time under the Adam optimizer with cross-entropy loss, plus the
// lightweight logistic-regression probes used by the classification-threshold
// adjustment algorithm (Algorithm 1) and the 8-bit post-training quantization
// applied before deploying the model to the device (§IV).
//
// Numeric features are encoded the way the paper describes: each hexadecimal
// digit of a feature value becomes one input neuron.
package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major matrix (or vector when Rows==1 or Cols==1)
// holding parameters and their accumulated gradients.
type Tensor struct {
	Rows, Cols int
	Data       []float64
	Grad       []float64
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(rows, cols int) *Tensor {
	return &Tensor{
		Rows: rows,
		Cols: cols,
		Data: make([]float64, rows*cols),
		Grad: make([]float64, rows*cols),
	}
}

// At returns element (r, c).
func (t *Tensor) At(r, c int) float64 { return t.Data[r*t.Cols+c] }

// Set assigns element (r, c).
func (t *Tensor) Set(r, c int, v float64) { t.Data[r*t.Cols+c] = v }

// ZeroGrad clears the accumulated gradient.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// InitXavier fills the tensor with Xavier/Glorot-uniform values using rng.
func (t *Tensor) InitXavier(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(t.Rows+t.Cols))
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// Clone returns a deep copy (gradients zeroed).
func (t *Tensor) Clone() *Tensor {
	c := NewTensor(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	return c
}

// Shadow returns a gradient shadow of the tensor: Data is shared with the
// receiver (weight updates propagate automatically), Grad is private. Shadow
// tensors let several goroutines accumulate gradients from the same weights
// concurrently; the owner then reduces the shadow gradients in a fixed order
// (see ShardedTrainer).
func (t *Tensor) Shadow() *Tensor {
	return &Tensor{Rows: t.Rows, Cols: t.Cols, Data: t.Data, Grad: make([]float64, len(t.Grad))}
}

// String describes the tensor shape.
func (t *Tensor) String() string { return fmt.Sprintf("Tensor(%dx%d)", t.Rows, t.Cols) }

// The kernels below re-slice their vector operands to the exact loop extent
// before the hot loops: the compiler's prove pass then eliminates the inner
// bounds checks, which matters because training spends most of its time here.
// Summation order within every dot product is strictly sequential and must
// stay that way — reassociating (multiple accumulators, SIMD-style blocking)
// would change rounding and break the simulator's determinism guarantees.

// matVec computes out = W*x for W (m×n), x (n), out (m).
func matVec(w *Tensor, x, out []float64) {
	n := w.Cols
	x = x[:n]
	out = out[:w.Rows]
	for r := range out {
		row := w.Data[r*n : r*n+n]
		sum := 0.0
		for c, v := range row {
			sum += v * x[c]
		}
		out[r] = sum
	}
}

// matVecAdd computes out += W*x.
func matVecAdd(w *Tensor, x, out []float64) {
	n := w.Cols
	x = x[:n]
	out = out[:w.Rows]
	for r := range out {
		row := w.Data[r*n : r*n+n]
		sum := 0.0
		for c, v := range row {
			sum += v * x[c]
		}
		out[r] += sum
	}
}

// matVec2 interleaves two matVec+matVecAdd pairs sharing operand vectors:
// out1 = w1·x + u1·h and out2 = w2·x + u2·h. Each dot product keeps its own
// strictly sequential accumulation (bit-identical to running the four kernels
// separately), but rows are processed in pairs, so the inner loops carry four
// independent dependency chains — a serial FP-add chain is latency-bound, and
// independent chains are the only way to overlap it without reassociating.
// All four matrices are m×n over x and m×k over h.
func matVec2(w1, w2, u1, u2 *Tensor, x, h, out1, out2 []float64) {
	rows, n, k := w1.Rows, w1.Cols, u1.Cols
	x = x[:n]
	h = h[:k]
	out1 = out1[:rows]
	out2 = out2[:rows]
	r := 0
	for ; r+2 <= rows; r += 2 {
		w1a := w1.Data[r*n : r*n+n]
		w1b := w1.Data[(r+1)*n : (r+1)*n+n]
		w2a := w2.Data[r*n : r*n+n]
		w2b := w2.Data[(r+1)*n : (r+1)*n+n]
		var s1a, s1b, s2a, s2b float64
		for c, xc := range x {
			s1a += w1a[c] * xc
			s1b += w1b[c] * xc
			s2a += w2a[c] * xc
			s2b += w2b[c] * xc
		}
		u1a := u1.Data[r*k : r*k+k]
		u1b := u1.Data[(r+1)*k : (r+1)*k+k]
		u2a := u2.Data[r*k : r*k+k]
		u2b := u2.Data[(r+1)*k : (r+1)*k+k]
		var t1a, t1b, t2a, t2b float64
		for c, hc := range h {
			t1a += u1a[c] * hc
			t1b += u1b[c] * hc
			t2a += u2a[c] * hc
			t2b += u2b[c] * hc
		}
		out1[r] = s1a + t1a
		out1[r+1] = s1b + t1b
		out2[r] = s2a + t2a
		out2[r+1] = s2b + t2b
	}
	for ; r < rows; r++ {
		w1row := w1.Data[r*n : r*n+n]
		w2row := w2.Data[r*n : r*n+n]
		var s1, s2 float64
		for c, xc := range x {
			s1 += w1row[c] * xc
			s2 += w2row[c] * xc
		}
		u1row := u1.Data[r*k : r*k+k]
		u2row := u2.Data[r*k : r*k+k]
		var t1, t2 float64
		for c, hc := range h {
			t1 += u1row[c] * hc
			t2 += u2row[c] * hc
		}
		out1[r] = s1 + t1
		out2[r] = s2 + t2
	}
}

// matVecPair computes out = w·x + u·h (one matVec + matVecAdd fused per
// row, without the intermediate store/reload of out[r]); each dot product
// keeps its sequential order, so the result is bit-identical to the two
// separate calls. Rows are paired for two independent accumulation chains
// per inner loop (see matVec2).
func matVecPair(w, u *Tensor, x, h, out []float64) {
	rows, n, k := w.Rows, w.Cols, u.Cols
	x = x[:n]
	h = h[:k]
	out = out[:rows]
	r := 0
	for ; r+2 <= rows; r += 2 {
		wa := w.Data[r*n : r*n+n]
		wb := w.Data[(r+1)*n : (r+1)*n+n]
		var sa, sb float64
		for c, xc := range x {
			sa += wa[c] * xc
			sb += wb[c] * xc
		}
		ua := u.Data[r*k : r*k+k]
		ub := u.Data[(r+1)*k : (r+1)*k+k]
		var ta, tb float64
		for c, hc := range h {
			ta += ua[c] * hc
			tb += ub[c] * hc
		}
		out[r] = sa + ta
		out[r+1] = sb + tb
	}
	for ; r < rows; r++ {
		wrow := w.Data[r*n : r*n+n]
		sum := 0.0
		for c, v := range wrow {
			sum += v * x[c]
		}
		urow := u.Data[r*k : r*k+k]
		t := 0.0
		for c, v := range urow {
			t += v * h[c]
		}
		out[r] = sum + t
	}
}

// matTVecAdd computes out += Wᵀ*g for W (m×n), g (m), out (n). It iterates
// column-major with four per-column accumulators held in registers: each
// out[c] still receives its contributions in ascending row order starting
// from its prior value — the same floating-point chain as the row-major
// version, so results are bit-identical — but the four chains are
// independent, letting the CPU overlap them instead of serializing on
// store-to-load forwarding through out[c].
func matTVecAdd(w *Tensor, g, out []float64) {
	n := w.Cols
	g = g[:w.Rows]
	out = out[:n]
	data := w.Data
	c := 0
	for ; c+8 <= n; c += 8 {
		s0, s1, s2, s3 := out[c], out[c+1], out[c+2], out[c+3]
		s4, s5, s6, s7 := out[c+4], out[c+5], out[c+6], out[c+7]
		for r, gr := range g {
			if gr == 0 {
				continue
			}
			row := data[r*n+c : r*n+c+8]
			s0 += row[0] * gr
			s1 += row[1] * gr
			s2 += row[2] * gr
			s3 += row[3] * gr
			s4 += row[4] * gr
			s5 += row[5] * gr
			s6 += row[6] * gr
			s7 += row[7] * gr
		}
		out[c], out[c+1], out[c+2], out[c+3] = s0, s1, s2, s3
		out[c+4], out[c+5], out[c+6], out[c+7] = s4, s5, s6, s7
	}
	for ; c+4 <= n; c += 4 {
		s0, s1, s2, s3 := out[c], out[c+1], out[c+2], out[c+3]
		for r, gr := range g {
			if gr == 0 {
				continue
			}
			row := data[r*n+c : r*n+c+4]
			s0 += row[0] * gr
			s1 += row[1] * gr
			s2 += row[2] * gr
			s3 += row[3] * gr
		}
		out[c], out[c+1], out[c+2], out[c+3] = s0, s1, s2, s3
	}
	for ; c < n; c++ {
		s := out[c]
		for r, gr := range g {
			if gr == 0 {
				continue
			}
			s += data[r*n+c] * gr
		}
		out[c] = s
	}
}

// outerAddGrad accumulates W.Grad += g ⊗ x (g is m, x is n, W is m×n).
func outerAddGrad(w *Tensor, g, x []float64) {
	n := w.Cols
	g = g[:w.Rows]
	x = x[:n]
	for r, gr := range g {
		if gr == 0 {
			continue
		}
		grow := w.Grad[r*n : r*n+n]
		for c := range grow {
			grow[c] += gr * x[c]
		}
	}
}

// outerAddGrad2 fuses two outerAddGrad calls sharing x: W1.Grad += g1 ⊗ x and
// W2.Grad += g2 ⊗ x. Element updates are independent, so fusing the row loops
// is bit-identical to two separate calls (including the skip-zero-row
// behaviour, preserved per matrix).
func outerAddGrad2(w1, w2 *Tensor, g1, g2, x []float64) {
	n := w1.Cols
	g1 = g1[:w1.Rows]
	g2 = g2[:w1.Rows]
	x = x[:n]
	for r, gr1 := range g1 {
		gr2 := g2[r]
		grow1 := w1.Grad[r*n : r*n+n]
		grow2 := w2.Grad[r*n : r*n+n]
		switch {
		case gr1 != 0 && gr2 != 0:
			for c := range grow1 {
				grow1[c] += gr1 * x[c]
				grow2[c] += gr2 * x[c]
			}
		case gr1 != 0:
			for c := range grow1 {
				grow1[c] += gr1 * x[c]
			}
		case gr2 != 0:
			for c := range grow2 {
				grow2[c] += gr2 * x[c]
			}
		}
	}
}

// addGrad accumulates b.Grad += g for a bias vector.
func addGrad(b *Tensor, g []float64) {
	for i := range g {
		b.Grad[i] += g[i]
	}
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }
