// Package ml is a small, dependency-free machine-learning library built for
// PHFTL's Page Classifier: a single-layer GRU sequence model with a fully
// connected output head (§III-B of the paper), trained with backpropagation
// through time under the Adam optimizer with cross-entropy loss, plus the
// lightweight logistic-regression probes used by the classification-threshold
// adjustment algorithm (Algorithm 1) and the 8-bit post-training quantization
// applied before deploying the model to the device (§IV).
//
// Numeric features are encoded the way the paper describes: each hexadecimal
// digit of a feature value becomes one input neuron.
package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major matrix (or vector when Rows==1 or Cols==1)
// holding parameters and their accumulated gradients.
type Tensor struct {
	Rows, Cols int
	Data       []float64
	Grad       []float64
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(rows, cols int) *Tensor {
	return &Tensor{
		Rows: rows,
		Cols: cols,
		Data: make([]float64, rows*cols),
		Grad: make([]float64, rows*cols),
	}
}

// At returns element (r, c).
func (t *Tensor) At(r, c int) float64 { return t.Data[r*t.Cols+c] }

// Set assigns element (r, c).
func (t *Tensor) Set(r, c int, v float64) { t.Data[r*t.Cols+c] = v }

// ZeroGrad clears the accumulated gradient.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// InitXavier fills the tensor with Xavier/Glorot-uniform values using rng.
func (t *Tensor) InitXavier(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(t.Rows+t.Cols))
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// Clone returns a deep copy (gradients zeroed).
func (t *Tensor) Clone() *Tensor {
	c := NewTensor(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	return c
}

// String describes the tensor shape.
func (t *Tensor) String() string { return fmt.Sprintf("Tensor(%dx%d)", t.Rows, t.Cols) }

// matVec computes out = W*x for W (m×n), x (n), out (m).
func matVec(w *Tensor, x, out []float64) {
	for r := 0; r < w.Rows; r++ {
		row := w.Data[r*w.Cols : (r+1)*w.Cols]
		sum := 0.0
		for c, v := range row {
			sum += v * x[c]
		}
		out[r] = sum
	}
}

// matVecAdd computes out += W*x.
func matVecAdd(w *Tensor, x, out []float64) {
	for r := 0; r < w.Rows; r++ {
		row := w.Data[r*w.Cols : (r+1)*w.Cols]
		sum := 0.0
		for c, v := range row {
			sum += v * x[c]
		}
		out[r] += sum
	}
}

// matTVecAdd computes out += Wᵀ*g for W (m×n), g (m), out (n).
func matTVecAdd(w *Tensor, g, out []float64) {
	for r := 0; r < w.Rows; r++ {
		row := w.Data[r*w.Cols : (r+1)*w.Cols]
		gr := g[r]
		if gr == 0 {
			continue
		}
		for c, v := range row {
			out[c] += v * gr
		}
	}
}

// outerAddGrad accumulates W.Grad += g ⊗ x (g is m, x is n, W is m×n).
func outerAddGrad(w *Tensor, g, x []float64) {
	for r := 0; r < w.Rows; r++ {
		gr := g[r]
		if gr == 0 {
			continue
		}
		grow := w.Grad[r*w.Cols : (r+1)*w.Cols]
		for c := range grow {
			grow[c] += gr * x[c]
		}
	}
}

// addGrad accumulates b.Grad += g for a bias vector.
func addGrad(b *Tensor, g []float64) {
	for i := range g {
		b.Grad[i] += g[i]
	}
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }
