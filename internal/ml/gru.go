package ml

import (
	"math"
	"math/rand"
)

// GRUNet is PHFTL's Page Classifier network (Figure 3): a single-layer gated
// recurrent unit with Hidden neurons followed by a fully connected layer to
// NumClasses output neurons; argmax of the logits is the prediction.
//
// Gate equations (per step, x = input, h = previous hidden state):
//
//	z = σ(Wz·x + Uz·h + bz)        update gate
//	r = σ(Wr·x + Ur·h + br)        reset gate
//	c = tanh(Wc·x + Uc·(r⊙h) + bc) candidate state
//	h' = (1−z)⊙h + z⊙c
//
// Because h' is a convex combination of h (initially 0) and c ∈ (−1,1),
// hidden states always lie in (−1,1) — the property PHFTL relies on to cache
// them as 8-bit integers (§III-C).
type GRUNet struct {
	In, Hidden, NumClasses int

	Wz, Uz, Bz *Tensor
	Wr, Ur, Br *Tensor
	Wc, Uc, Bc *Tensor
	Wout, Bout *Tensor

	// Per-instance inference scratch, sized lazily: Step, Logits and
	// PredictInto reuse these so the steady-state prediction path performs
	// zero heap allocations (the §III-C hot path runs once per host write).
	// Not shared across goroutines — a network is single-owner, like its
	// gradients.
	scrZ, scrR, scrC, scrRH, scrLogits []float64

	// Training scratch: forward reuses one stepTrace arena across samples
	// and backward ping-pongs two dhPrev buffers, so a training epoch stops
	// allocating per sample. Values are unchanged — only buffer reuse.
	trArena            []stepTrace
	zeroState          []float64 // all-zero initial hidden state; never written
	bwA, bwB           []float64
	daZ, daR, daC, drh []float64
	dhScratch          []float64
	scrProbs           []float64 // softmax scratch for AccumulateGradients
}

// NumClassesDefault is the binary short-living / long-living output of the
// paper's classifier.
const NumClassesDefault = 2

// NewGRUNet builds a randomly initialized network.
func NewGRUNet(in, hidden, classes int, rng *rand.Rand) *GRUNet {
	n := &GRUNet{
		In: in, Hidden: hidden, NumClasses: classes,
		Wz: NewTensor(hidden, in), Uz: NewTensor(hidden, hidden), Bz: NewTensor(1, hidden),
		Wr: NewTensor(hidden, in), Ur: NewTensor(hidden, hidden), Br: NewTensor(1, hidden),
		Wc: NewTensor(hidden, in), Uc: NewTensor(hidden, hidden), Bc: NewTensor(1, hidden),
		Wout: NewTensor(classes, hidden), Bout: NewTensor(1, classes),
	}
	for _, t := range n.weights() {
		t.InitXavier(rng)
	}
	return n
}

func (n *GRUNet) weights() []*Tensor {
	return []*Tensor{n.Wz, n.Uz, n.Bz, n.Wr, n.Ur, n.Br, n.Wc, n.Uc, n.Bc, n.Wout, n.Bout}
}

// Params returns every learnable tensor (for the optimizer).
func (n *GRUNet) Params() []*Tensor { return n.weights() }

// ZeroGrad clears all parameter gradients.
func (n *GRUNet) ZeroGrad() {
	for _, t := range n.weights() {
		t.ZeroGrad()
	}
}

// Clone returns a deep copy of the network.
func (n *GRUNet) Clone() *GRUNet {
	return &GRUNet{
		In: n.In, Hidden: n.Hidden, NumClasses: n.NumClasses,
		Wz: n.Wz.Clone(), Uz: n.Uz.Clone(), Bz: n.Bz.Clone(),
		Wr: n.Wr.Clone(), Ur: n.Ur.Clone(), Br: n.Br.Clone(),
		Wc: n.Wc.Clone(), Uc: n.Uc.Clone(), Bc: n.Bc.Clone(),
		Wout: n.Wout.Clone(), Bout: n.Bout.Clone(),
	}
}

// stepTrace captures one step's intermediates for backpropagation.
type stepTrace struct {
	x, hPrev, z, r, c, h, rh []float64
}

// Step advances the GRU one time step: given the previous hidden state hPrev
// and input x, it writes the next hidden state into hOut (which may alias
// hPrev). This is the O(1) incremental prediction path of §III-C: with the
// hidden state cached per page, a prediction costs exactly one Step plus one
// Logits call, regardless of how long the page's history is.
func (n *GRUNet) Step(hPrev, x, hOut []float64) {
	n.ensureScratch()
	n.stepInto(hPrev, x, n.scrZ, n.scrR, n.scrC, n.scrRH, hOut)
}

func (n *GRUNet) ensureScratch() {
	if len(n.scrZ) != n.Hidden {
		n.scrZ = make([]float64, n.Hidden)
		n.scrR = make([]float64, n.Hidden)
		n.scrC = make([]float64, n.Hidden)
		n.scrRH = make([]float64, n.Hidden)
	}
	if len(n.scrLogits) != n.NumClasses {
		n.scrLogits = make([]float64, n.NumClasses)
	}
}

// stepInto is the allocation-free core of Step: all intermediates (z, r, c,
// rh) are caller-owned. The gate loops are fused — z, r and r⊙h are produced
// in one pass — and hOut may alias hPrev (hPrev[i] is read only before
// hOut[i] is written).
func (n *GRUNet) stepInto(hPrev, x, z, r, c, rh, hOut []float64) {
	matVec2(n.Wz, n.Wr, n.Uz, n.Ur, x, hPrev, z, r)
	for i := range z {
		z[i] = sigmoid(z[i] + n.Bz.Data[i])
		r[i] = sigmoid(r[i] + n.Br.Data[i])
		rh[i] = r[i] * hPrev[i]
	}
	matVecPair(n.Wc, n.Uc, x, rh, c)
	for i := range c {
		ci := tanh(c[i] + n.Bc.Data[i])
		c[i] = ci
		hOut[i] = (1-z[i])*hPrev[i] + z[i]*ci
	}
}

func tanh(v float64) float64 { return math.Tanh(v) }

// Logits applies the fully connected output layer to a hidden state. The
// returned slice is network-owned scratch, overwritten by the next Logits
// call on this network: use it before the next call, or copy it.
func (n *GRUNet) Logits(h []float64) []float64 {
	n.ensureScratch()
	out := n.scrLogits
	matVec(n.Wout, h, out)
	for i := range out {
		out[i] += n.Bout.Data[i]
	}
	return out
}

// Predict runs a full sequence from a zero hidden state and returns the
// argmax class of the final step.
func (n *GRUNet) Predict(seq [][]float64) int {
	h := make([]float64, n.Hidden)
	for _, x := range seq {
		n.Step(h, x, h)
	}
	return Argmax(n.Logits(h))
}

// PredictFrom runs one incremental step from a cached hidden state and
// returns (class, new hidden state).
func (n *GRUNet) PredictFrom(hPrev, x []float64) (int, []float64) {
	h := make([]float64, n.Hidden)
	cls := n.PredictInto(hPrev, x, h)
	return cls, h
}

// PredictInto is the allocation-free incremental prediction: one Step from
// statePrev writing the new state into stateOut (which may alias statePrev),
// returning the argmax class. This is the device-side per-write hot path.
func (n *GRUNet) PredictInto(statePrev, x, stateOut []float64) int {
	n.Step(statePrev, x, stateOut)
	return Argmax(n.Logits(stateOut))
}

// Argmax returns the index of the largest element.
func Argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// forward runs a sequence keeping per-step traces for BPTT and returns the
// traces and the final hidden state. Traces live in a per-network arena that
// the next forward call overwrites; backward must consume them first (which
// AccumulateGradients does).
func (n *GRUNet) forward(seq [][]float64) ([]stepTrace, []float64) {
	H := n.Hidden
	if len(n.zeroState) != H {
		n.zeroState = make([]float64, H)
	}
	for len(n.trArena) < len(seq) {
		n.trArena = append(n.trArena, stepTrace{
			hPrev: make([]float64, H),
			z:     make([]float64, H),
			r:     make([]float64, H),
			c:     make([]float64, H),
			h:     make([]float64, H),
			rh:    make([]float64, H),
		})
	}
	traces := n.trArena[:len(seq)]
	h := n.zeroState
	for i, x := range seq {
		tr := &traces[i]
		tr.x = x
		copy(tr.hPrev, h)
		n.stepInto(tr.hPrev, x, tr.z, tr.r, tr.c, tr.rh, tr.h)
		h = tr.h
	}
	return traces, h
}

// backward backpropagates dh (gradient w.r.t. the final hidden state)
// through the recorded traces, accumulating parameter gradients. All
// temporaries are per-network scratch; the caller's dh is only read.
func (n *GRUNet) backward(traces []stepTrace, dh []float64) {
	H := n.Hidden
	n.ensureTrainScratch()
	daZ, daR, daC, drh := n.daZ, n.daR, n.daC, n.drh
	// dhPrev buffers ping-pong: the target is always distinct from the
	// current dh (which on the first step is the caller's slice).
	spare, next := n.bwA, n.bwB
	for t := len(traces) - 1; t >= 0; t-- {
		tr := &traces[t]
		dhPrev := spare
		for i := 0; i < H; i++ {
			z, c := tr.z[i], tr.c[i]
			daC[i] = dh[i] * z * (1 - c*c)
			daZ[i] = dh[i] * (c - tr.hPrev[i]) * z * (1 - z)
			dhPrev[i] = dh[i] * (1 - z)
		}
		outerAddGrad(n.Wc, daC, tr.x)
		outerAddGrad(n.Uc, daC, tr.rh)
		addGrad(n.Bc, daC)
		for i := range drh {
			drh[i] = 0
		}
		matTVecAdd(n.Uc, daC, drh)
		for i := 0; i < H; i++ {
			r := tr.r[i]
			dhPrev[i] += drh[i] * r
			daR[i] = drh[i] * tr.hPrev[i] * r * (1 - r)
		}
		outerAddGrad2(n.Wz, n.Wr, daZ, daR, tr.x)
		outerAddGrad2(n.Uz, n.Ur, daZ, daR, tr.hPrev)
		addGrad(n.Bz, daZ)
		addGrad(n.Br, daR)
		matTVecAdd(n.Uz, daZ, dhPrev)
		matTVecAdd(n.Ur, daR, dhPrev)
		dh = dhPrev
		spare, next = next, spare
	}
}

func (n *GRUNet) ensureTrainScratch() {
	if len(n.daZ) != n.Hidden {
		n.daZ = make([]float64, n.Hidden)
		n.daR = make([]float64, n.Hidden)
		n.daC = make([]float64, n.Hidden)
		n.drh = make([]float64, n.Hidden)
		n.bwA = make([]float64, n.Hidden)
		n.bwB = make([]float64, n.Hidden)
		n.dhScratch = make([]float64, n.Hidden)
	}
}

// --- SequenceModel conformance ---

// InputSize implements SequenceModel.
func (n *GRUNet) InputSize() int { return n.In }

// StateSize implements SequenceModel: the GRU persists its hidden vector.
func (n *GRUNet) StateSize() int { return n.Hidden }

// NumOutputs implements SequenceModel.
func (n *GRUNet) NumOutputs() int { return n.NumClasses }

// StepState implements SequenceModel.
func (n *GRUNet) StepState(statePrev, x, stateOut []float64) { n.Step(statePrev, x, stateOut) }

// LogitsFromState implements SequenceModel.
func (n *GRUNet) LogitsFromState(state []float64) []float64 { return n.Logits(state) }

// CloneModel implements SequenceModel.
func (n *GRUNet) CloneModel() SequenceModel { return n.Clone() }

// QuantizeModel implements SequenceModel.
func (n *GRUNet) QuantizeModel() SequenceModel { return n.Quantize() }

// ShadowClone implements SequenceModel: parameter Data is shared with the
// receiver, gradients and scratch are private (see Tensor.Shadow).
func (n *GRUNet) ShadowClone() SequenceModel {
	return &GRUNet{
		In: n.In, Hidden: n.Hidden, NumClasses: n.NumClasses,
		Wz: n.Wz.Shadow(), Uz: n.Uz.Shadow(), Bz: n.Bz.Shadow(),
		Wr: n.Wr.Shadow(), Ur: n.Ur.Shadow(), Br: n.Br.Shadow(),
		Wc: n.Wc.Shadow(), Uc: n.Uc.Shadow(), Bc: n.Bc.Shadow(),
		Wout: n.Wout.Shadow(), Bout: n.Bout.Shadow(),
	}
}

// AccumulateGradients implements SequenceModel: forward + BPTT for one
// labeled sequence, accumulating parameter gradients.
func (n *GRUNet) AccumulateGradients(seq [][]float64, label int) float64 {
	traces, h := n.forward(seq)
	logits := n.Logits(h)
	if len(n.scrProbs) != n.NumClasses {
		n.scrProbs = make([]float64, n.NumClasses)
	}
	loss, dLogits := SoftmaxCrossEntropyInto(logits, label, n.scrProbs)
	outerAddGrad(n.Wout, dLogits, h)
	addGrad(n.Bout, dLogits)
	n.ensureTrainScratch()
	dh := n.dhScratch
	for i := range dh {
		dh[i] = 0
	}
	matTVecAdd(n.Wout, dLogits, dh)
	n.backward(traces, dh)
	return loss
}
