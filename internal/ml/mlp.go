package ml

import "math/rand"

// MLPNet is a stateless two-layer perceptron classifying each write from its
// current feature vector alone — the "no history" end of the paper's model
// design space (§III-B notes prev_lifetime alone reaches ~70% accuracy; the
// sequence model adds the rest). It satisfies SequenceModel by exposing its
// last hidden activation as the "state", but never reads the previous state:
// Predict uses only the final element of the sequence.
type MLPNet struct {
	In, Hidden, NumClasses int

	W1, B1     *Tensor
	Wout, Bout *Tensor

	// Logits scratch (see GRUNet): LogitsFromState reuses this buffer so
	// steady-state prediction is allocation-free. Single-owner.
	scrLogits []float64
}

// NewMLPNet builds a randomly initialized network.
func NewMLPNet(in, hidden, classes int, rng *rand.Rand) *MLPNet {
	n := &MLPNet{
		In: in, Hidden: hidden, NumClasses: classes,
		W1: NewTensor(hidden, in), B1: NewTensor(1, hidden),
		Wout: NewTensor(classes, hidden), Bout: NewTensor(1, classes),
	}
	for _, t := range n.Params() {
		t.InitXavier(rng)
	}
	return n
}

// Params implements SequenceModel.
func (n *MLPNet) Params() []*Tensor { return []*Tensor{n.W1, n.B1, n.Wout, n.Bout} }

// ZeroGrad implements SequenceModel.
func (n *MLPNet) ZeroGrad() {
	for _, t := range n.Params() {
		t.ZeroGrad()
	}
}

// InputSize implements SequenceModel.
func (n *MLPNet) InputSize() int { return n.In }

// StateSize implements SequenceModel: the tanh hidden activation is exposed
// (and int8-able) but never consumed.
func (n *MLPNet) StateSize() int { return n.Hidden }

// NumOutputs implements SequenceModel.
func (n *MLPNet) NumOutputs() int { return n.NumClasses }

// CloneModel implements SequenceModel.
func (n *MLPNet) CloneModel() SequenceModel {
	return &MLPNet{
		In: n.In, Hidden: n.Hidden, NumClasses: n.NumClasses,
		W1: n.W1.Clone(), B1: n.B1.Clone(),
		Wout: n.Wout.Clone(), Bout: n.Bout.Clone(),
	}
}

// ShadowClone implements SequenceModel: parameter Data is shared with the
// receiver, gradients and scratch are private (see Tensor.Shadow).
func (n *MLPNet) ShadowClone() SequenceModel {
	return &MLPNet{
		In: n.In, Hidden: n.Hidden, NumClasses: n.NumClasses,
		W1: n.W1.Shadow(), B1: n.B1.Shadow(),
		Wout: n.Wout.Shadow(), Bout: n.Bout.Shadow(),
	}
}

// QuantizeModel implements SequenceModel.
func (n *MLPNet) QuantizeModel() SequenceModel {
	q := n.CloneModel().(*MLPNet)
	for _, t := range q.Params() {
		QuantizeTensor(t)
	}
	return q
}

func (n *MLPNet) hiddenOf(x, out []float64) {
	matVec(n.W1, x, out)
	for i := range out {
		out[i] = tanh(out[i] + n.B1.Data[i])
	}
}

// StepState implements SequenceModel: stateless — the new state depends only
// on x.
func (n *MLPNet) StepState(_, x, stateOut []float64) { n.hiddenOf(x, stateOut) }

// LogitsFromState implements SequenceModel. The returned slice is
// network-owned scratch, overwritten by the next call on this network.
func (n *MLPNet) LogitsFromState(state []float64) []float64 {
	if len(n.scrLogits) != n.NumClasses {
		n.scrLogits = make([]float64, n.NumClasses)
	}
	out := n.scrLogits
	matVec(n.Wout, state, out)
	for i := range out {
		out[i] += n.Bout.Data[i]
	}
	return out
}

// PredictFrom implements SequenceModel.
func (n *MLPNet) PredictFrom(_, x []float64) (int, []float64) {
	h := make([]float64, n.Hidden)
	cls := n.PredictInto(nil, x, h)
	return cls, h
}

// PredictInto implements SequenceModel: stateless, so statePrev is ignored
// and stateOut receives the hidden activation of x alone.
func (n *MLPNet) PredictInto(_, x, stateOut []float64) int {
	n.hiddenOf(x, stateOut)
	return Argmax(n.LogitsFromState(stateOut))
}

// Predict implements SequenceModel: only the last feature vector matters.
func (n *MLPNet) Predict(seq [][]float64) int {
	cls, _ := n.PredictFrom(nil, seq[len(seq)-1])
	return cls
}

// AccumulateGradients implements SequenceModel.
func (n *MLPNet) AccumulateGradients(seq [][]float64, label int) float64 {
	x := seq[len(seq)-1]
	h := make([]float64, n.Hidden)
	n.hiddenOf(x, h)
	logits := n.LogitsFromState(h)
	loss, dLogits := SoftmaxCrossEntropy(logits, label)
	outerAddGrad(n.Wout, dLogits, h)
	addGrad(n.Bout, dLogits)
	dh := make([]float64, n.Hidden)
	matTVecAdd(n.Wout, dLogits, dh)
	for i := range dh {
		dh[i] *= 1 - h[i]*h[i] // through tanh
	}
	outerAddGrad(n.W1, dh, x)
	addGrad(n.B1, dh)
	return loss
}
