package ml

// SequenceModel is the interface PHFTL's Page Classifier programs against,
// abstracting the model architecture. The paper settled on a single-layer
// GRU after "exploring a wide variety of machine learning models" (§III-B);
// the LSTM and MLP implementations reproduce that design-space exploration
// (see BenchmarkAblationModelArch).
//
// A model carries a persistent per-page state of StateSize float64 values
// (bounded in (−1,1) so it can be cached as int8 in the flash metadata
// entry). Stateless models report StateSize 0 behaviour by ignoring the
// state.
type SequenceModel interface {
	// InputSize returns the feature-vector width.
	InputSize() int
	// StateSize returns the number of persisted state values per page.
	StateSize() int
	// NumOutputs returns the number of classes.
	NumOutputs() int

	// StepState advances the persistent state by one input, writing
	// StateSize values into stateOut (which may alias statePrev). It must
	// not heap-allocate in steady state.
	StepState(statePrev, x, stateOut []float64)
	// LogitsFromState computes class logits from a state. The returned
	// slice is model-owned scratch, overwritten by the next call: use it
	// before the next call, or copy it.
	LogitsFromState(state []float64) []float64
	// PredictFrom advances one step from a cached state and returns
	// (argmax class, new state). It allocates the returned state; the
	// per-write hot path uses PredictInto instead.
	PredictFrom(statePrev, x []float64) (int, []float64)
	// PredictInto advances one step from statePrev, writing the new state
	// into stateOut (which may alias statePrev), and returns the argmax
	// class. It must not heap-allocate in steady state — this is the
	// device-side per-write hot path (§III-C, 9 µs prediction budget).
	PredictInto(statePrev, x, stateOut []float64) int
	// Predict runs a whole sequence from the zero state.
	Predict(seq [][]float64) int

	// AccumulateGradients runs forward + backward for one labeled sequence,
	// accumulating parameter gradients, and returns the sample loss.
	AccumulateGradients(seq [][]float64, label int) float64

	// Params exposes the learnable tensors for the optimizer.
	Params() []*Tensor
	// ZeroGrad clears accumulated gradients.
	ZeroGrad()
	// CloneModel returns an independent deep copy.
	CloneModel() SequenceModel
	// QuantizeModel returns a copy with parameters snapped to the int8 grid.
	QuantizeModel() SequenceModel
	// ShadowClone returns a gradient shadow of the model: weights are shared
	// with the receiver (Tensor.Shadow), gradients and scratch are private.
	// Shadows support concurrent AccumulateGradients against frozen weights;
	// they must not be trained directly (their Data aliases the original's).
	ShadowClone() SequenceModel
}

// Compile-time conformance.
var (
	_ SequenceModel = (*GRUNet)(nil)
	_ SequenceModel = (*LSTMNet)(nil)
	_ SequenceModel = (*MLPNet)(nil)
)

// SyncModel copies src's parameters into dst in place, optionally snapping
// them onto the int8 grid, and reports whether the models were compatible
// (same parameter shapes). A successful SyncModel(dst, src, true) leaves dst
// numerically identical to src.QuantizeModel() — and SyncModel(dst, src,
// false) to src.CloneModel() — without allocating a fresh model, which is
// what keeps PHFTL's per-window deployment off the heap.
func SyncModel(dst, src SequenceModel, quantize bool) bool {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return false
	}
	for i, s := range sp {
		d := dp[i]
		if d.Rows != s.Rows || d.Cols != s.Cols {
			return false
		}
		// A shadow of src must never be synced: quantizing it in place would
		// corrupt src's own weights through the shared backing array.
		if len(d.Data) > 0 && &d.Data[0] == &s.Data[0] {
			return false
		}
	}
	for i, s := range sp {
		d := dp[i]
		copy(d.Data, s.Data)
		if quantize {
			QuantizeTensor(d)
		}
	}
	return true
}

// TrainModel trains any SequenceModel on the samples with Adam, mirroring
// TrainEpochs (which remains for the GRU fast path).
func TrainModel(m SequenceModel, samples []Sample, opt *Adam, cfg TrainConfig) float64 {
	if len(samples) == 0 {
		return 0
	}
	rng := newShuffler(cfg.Seed, len(samples))
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 1
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	lastLoss := 0.0
	for e := 0; e < epochs; e++ {
		order := rng.order()
		total := 0.0
		inBatch := 0
		m.ZeroGrad()
		for _, idx := range order {
			s := samples[idx]
			if len(s.Seq) == 0 {
				continue
			}
			total += m.AccumulateGradients(s.Seq, s.Label)
			inBatch++
			if inBatch == batch {
				opt.Update(m.Params(), inBatch)
				m.ZeroGrad()
				inBatch = 0
			}
		}
		if inBatch > 0 {
			opt.Update(m.Params(), inBatch)
			m.ZeroGrad()
		}
		lastLoss = total / float64(len(order))
	}
	return lastLoss
}

// EvalModelAccuracy returns the fraction of samples classified correctly.
func EvalModelAccuracy(m SequenceModel, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if m.Predict(s.Seq) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// shuffler produces fresh permutations per epoch, deterministically.
type shuffler struct {
	rng *randSource
	ord []int
}

func newShuffler(seed int64, n int) *shuffler {
	s := &shuffler{rng: newRandSource(seed), ord: make([]int, n)}
	s.reset(seed, n)
	return s
}

// reset restores the shuffler to the state of newShuffler(seed, n), reusing
// its buffers: the identity order and a freshly-seeded stream. Pooled callers
// (ShardedTrainer) use this to train every window without reallocating.
func (s *shuffler) reset(seed int64, n int) {
	s.rng.reseed(seed)
	if cap(s.ord) < n {
		s.ord = make([]int, n)
	}
	s.ord = s.ord[:n]
	for i := range s.ord {
		s.ord[i] = i
	}
}

func (s *shuffler) order() []int {
	s.rng.shuffle(len(s.ord), func(i, j int) { s.ord[i], s.ord[j] = s.ord[j], s.ord[i] })
	return s.ord
}
