package ml

import "math/rand"

// randSource is a thin wrapper so training helpers share one seeded PRNG
// without exposing math/rand in APIs.
type randSource struct{ r *rand.Rand }

func newRandSource(seed int64) *randSource {
	return &randSource{r: rand.New(rand.NewSource(seed))}
}

func (s *randSource) shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// reseed restarts the stream as if freshly constructed with seed, without
// allocating a new generator.
func (s *randSource) reseed(seed int64) { s.r.Seed(seed) }
