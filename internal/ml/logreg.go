package ml

import "math/rand"

// LogReg is the lightweight binary logistic-regression model used by
// Algorithm 1 to score candidate classification thresholds: for each
// candidate, the window's training data are labeled and a LogReg is trained;
// the candidate with the highest evaluation accuracy wins.
type LogReg struct {
	W []float64
	B float64
}

// NewLogReg returns a zero-initialized model for dim-dimensional inputs.
func NewLogReg(dim int) *LogReg { return &LogReg{W: make([]float64, dim)} }

// Prob returns P(label=1 | x).
func (m *LogReg) Prob(x []float64) float64 {
	s := m.B
	x = x[:len(m.W)]
	for i, w := range m.W {
		s += w * x[i]
	}
	return sigmoid(s)
}

// Predict returns the argmax class.
func (m *LogReg) Predict(x []float64) int {
	if m.Prob(x) >= 0.5 {
		return 1
	}
	return 0
}

// Train fits the model with mini-batch SGD for the given number of epochs.
func (m *LogReg) Train(features [][]float64, labels []int, epochs int, lr float64, seed int64) {
	if len(features) == 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	order := make([]int, len(features))
	for i := range order {
		order[i] = i
	}
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			x := features[idx]
			y := float64(labels[idx])
			err := m.Prob(x) - y
			le := lr * err
			w := m.W
			x = x[:len(w)]
			for i := range w {
				w[i] -= le * x[i]
			}
			m.B -= le
		}
	}
}

// Accuracy returns the fraction of correct predictions.
func (m *LogReg) Accuracy(features [][]float64, labels []int) float64 {
	if len(features) == 0 {
		return 0
	}
	correct := 0
	for i, x := range features {
		if m.Predict(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(features))
}

// TrainEvalLogReg implements Algorithm 1's TrainEvalLightModel: it trains a
// logistic regression on a 70% split and returns held-out accuracy on the
// remaining 30% (falling back to training accuracy for tiny sets). The split
// is deterministic for the seed.
func TrainEvalLogReg(features [][]float64, labels []int, seed int64) float64 {
	n := len(features)
	if n == 0 {
		return 0
	}
	dim := len(features[0])
	rng := rand.New(rand.NewSource(seed))
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	cut := n * 7 / 10
	if cut < 1 || n-cut < 1 {
		m := NewLogReg(dim)
		m.Train(features, labels, 20, 0.1, seed)
		return m.Accuracy(features, labels)
	}
	trF := make([][]float64, 0, cut)
	trL := make([]int, 0, cut)
	teF := make([][]float64, 0, n-cut)
	teL := make([]int, 0, n-cut)
	for i, idx := range order {
		if i < cut {
			trF = append(trF, features[idx])
			trL = append(trL, labels[idx])
		} else {
			teF = append(teF, features[idx])
			teL = append(teL, labels[idx])
		}
	}
	m := NewLogReg(dim)
	m.Train(trF, trL, 40, 0.1, seed)
	return m.Accuracy(teF, teL)
}
