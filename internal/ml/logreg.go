package ml

import "math/rand"

// LogReg is the lightweight binary logistic-regression model used by
// Algorithm 1 to score candidate classification thresholds: for each
// candidate, the window's training data are labeled and a LogReg is trained;
// the candidate with the highest evaluation accuracy wins.
type LogReg struct {
	W []float64
	B float64
}

// NewLogReg returns a zero-initialized model for dim-dimensional inputs.
func NewLogReg(dim int) *LogReg { return &LogReg{W: make([]float64, dim)} }

// Prob returns P(label=1 | x).
func (m *LogReg) Prob(x []float64) float64 {
	s := m.B
	x = x[:len(m.W)]
	for i, w := range m.W {
		s += w * x[i]
	}
	return sigmoid(s)
}

// Predict returns the argmax class.
func (m *LogReg) Predict(x []float64) int {
	if m.Prob(x) >= 0.5 {
		return 1
	}
	return 0
}

// Train fits the model with mini-batch SGD for the given number of epochs.
func (m *LogReg) Train(features [][]float64, labels []int, epochs int, lr float64, seed int64) {
	if len(features) == 0 {
		return
	}
	order := make([]int, len(features))
	m.trainWith(features, labels, epochs, lr, rand.New(rand.NewSource(seed)), order)
}

// trainWith is Train against caller-owned scratch: rng must be freshly seeded
// (its stream replaces rand.New(rand.NewSource(seed))) and order must have
// len(features) elements, which trainWith overwrites.
func (m *LogReg) trainWith(features [][]float64, labels []int, epochs int, lr float64, rng *rand.Rand, order []int) {
	for i := range order {
		order[i] = i
	}
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			x := features[idx]
			y := float64(labels[idx])
			err := m.Prob(x) - y
			le := lr * err
			w := m.W
			x = x[:len(w)]
			for i := range w {
				w[i] -= le * x[i]
			}
			m.B -= le
		}
	}
}

// Accuracy returns the fraction of correct predictions.
func (m *LogReg) Accuracy(features [][]float64, labels []int) float64 {
	if len(features) == 0 {
		return 0
	}
	correct := 0
	for i, x := range features {
		if m.Predict(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(features))
}

// TrainEvalLogReg implements Algorithm 1's TrainEvalLightModel: it trains a
// logistic regression on a 70% split and returns held-out accuracy on the
// remaining 30% (falling back to training accuracy for tiny sets). The split
// is deterministic for the seed.
func TrainEvalLogReg(features [][]float64, labels []int, seed int64) float64 {
	return new(LogRegEvaluator).Eval(features, labels, seed)
}

// LogRegEvaluator is TrainEvalLogReg with pooled scratch: the RNG, the split
// permutation, the train/test views and the model weights are all reused
// across calls, so the per-window threshold probes (three per window in
// Algorithm 1) stop allocating. The zero value is ready to use; results are
// bit-identical to TrainEvalLogReg for the same inputs.
type LogRegEvaluator struct {
	rng      *rand.Rand
	order    []int
	trF, teF [][]float64
	trL, teL []int
	model    LogReg
}

// Eval is TrainEvalLogReg against the pooled scratch.
func (ev *LogRegEvaluator) Eval(features [][]float64, labels []int, seed int64) float64 {
	n := len(features)
	if n == 0 {
		return 0
	}
	dim := len(features[0])
	if ev.rng == nil {
		ev.rng = rand.New(rand.NewSource(seed))
	} else {
		ev.rng.Seed(seed)
	}
	if cap(ev.order) < n {
		ev.order = make([]int, n)
	}
	order := ev.order[:n]
	for i := range order {
		order[i] = i
	}
	ev.rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	m := &ev.model
	if cap(m.W) < dim {
		m.W = make([]float64, dim)
	}
	m.W = m.W[:dim]
	for i := range m.W {
		m.W[i] = 0
	}
	m.B = 0
	cut := n * 7 / 10
	if cut < 1 || n-cut < 1 {
		// LogReg.Train builds its own generator from the same seed, so the
		// training stream restarts; reseeding reproduces that exactly.
		ev.rng.Seed(seed)
		m.trainWith(features, labels, 20, 0.1, ev.rng, order)
		return m.Accuracy(features, labels)
	}
	trF, trL := ev.trF[:0], ev.trL[:0]
	teF, teL := ev.teF[:0], ev.teL[:0]
	for i, idx := range order {
		if i < cut {
			trF = append(trF, features[idx])
			trL = append(trL, labels[idx])
		} else {
			teF = append(teF, features[idx])
			teL = append(teL, labels[idx])
		}
	}
	ev.trF, ev.trL, ev.teF, ev.teL = trF, trL, teF, teL
	ev.rng.Seed(seed)
	m.trainWith(trF, trL, 40, 0.1, ev.rng, order[:cut])
	return m.Accuracy(teF, teL)
}
