package ml

import "github.com/phftl/phftl/internal/par"

// ShardedTrainer is a data-parallel drop-in for TrainModel. Each mini-batch
// is split into Lanes fixed, index-ordered shards; every shard accumulates
// gradients into a private shadow of the model (shared weights, private
// gradients — see SequenceModel.ShadowClone), and the shard gradients are
// then reduced into the master in ascending shard order before the Adam step.
//
// Determinism contract: the deployed weights depend only on Lanes, never on
// the pool — the shard partition, the within-shard accumulation order, and
// the reduction order are all fixed, so running with a nil pool (serial), a
// 2-lane pool, or an 8-lane pool produces bit-identical weights. Shards are
// distributed over pool lanes by striding (shard ≡ lane mod pool size), which
// keeps shard contents independent of how many goroutines happen to exist.
//
// With Lanes == 1 the trainer reduces a single shard accumulated in shuffled
// sample order into zeroed master gradients — numerically identical to
// TrainModel (x + 0 = x exactly), which the tests pin. With Lanes > 1 the
// gradient summation order differs from TrainModel's single fold, so weights
// legitimately differ from TrainModel in low-order bits; the golden curves
// were regenerated once when PHFTL switched to this trainer.
//
// A ShardedTrainer is single-owner and reusable across windows: shadows,
// shuffler and loss buffers are built once and reused, so steady-state
// training performs no per-window allocations beyond what the model's own
// lazily-grown scratch needs.
type ShardedTrainer struct {
	lanes   int
	pool    *par.Pool
	master  SequenceModel
	shadows []SequenceModel

	sh        *shuffler
	idx       []int // non-empty sample indices of the current epoch, shuffled
	chunk     []int // current mini-batch window into idx
	samples   []Sample
	shardLoss []float64
	poolLanes int
	laneFn    func(lane int)
}

// NewShardedTrainer returns a trainer with the given fixed shard count
// (values < 1 are treated as 1). The pool (optional, may be nil for serial
// execution) can be attached later with SetPool.
func NewShardedTrainer(lanes int) *ShardedTrainer {
	if lanes < 1 {
		lanes = 1
	}
	t := &ShardedTrainer{lanes: lanes, shardLoss: make([]float64, lanes)}
	t.laneFn = t.laneStep
	return t
}

// Lanes returns the fixed shard count.
func (t *ShardedTrainer) Lanes() int { return t.lanes }

// SetPool attaches (or detaches, with nil) the worker pool used to execute
// shards. Switching pools never changes training results, only wall-clock.
func (t *ShardedTrainer) SetPool(p *par.Pool) { t.pool = p }

// bind (re)builds the per-shard shadows when the master model changes.
func (t *ShardedTrainer) bind(m SequenceModel) {
	if t.master == m && len(t.shadows) == t.lanes {
		return
	}
	t.master = m
	t.shadows = make([]SequenceModel, t.lanes)
	for i := range t.shadows {
		t.shadows[i] = m.ShadowClone()
	}
}

// laneStep processes every shard assigned to one pool lane: shards are strided
// across pool lanes so their contents do not depend on the pool size.
func (t *ShardedTrainer) laneStep(lane int) {
	n := len(t.chunk)
	for shard := lane; shard < t.lanes; shard += t.poolLanes {
		lo := shard * n / t.lanes
		hi := (shard + 1) * n / t.lanes
		m := t.shadows[shard]
		total := 0.0
		for _, si := range t.chunk[lo:hi] {
			s := t.samples[si]
			total += m.AccumulateGradients(s.Seq, s.Label)
		}
		t.shardLoss[shard] = total
	}
}

// reduce folds the shard gradients into the master in ascending shard order
// and returns the chunk's loss sum (also in shard order).
func (t *ShardedTrainer) reduce() float64 {
	mp := t.master.Params()
	for _, sh := range t.shadows {
		sp := sh.Params()
		for i, p := range mp {
			g, sg := p.Grad, sp[i].Grad
			for j := range g {
				g[j] += sg[j]
			}
		}
	}
	loss := 0.0
	for _, l := range t.shardLoss {
		loss += l
	}
	return loss
}

// Train trains m in place on the samples, mirroring TrainModel's schedule
// (shuffle per epoch, skip empty sequences, Adam step per BatchSize non-empty
// samples plus a leftover step) with the shard-parallel gradient accumulation
// described above. It returns the mean loss of the final epoch.
func (t *ShardedTrainer) Train(m SequenceModel, samples []Sample, opt *Adam, cfg TrainConfig) float64 {
	if len(samples) == 0 {
		return 0
	}
	t.bind(m)
	if t.sh == nil {
		t.sh = newShuffler(cfg.Seed, len(samples))
	} else {
		t.sh.reset(cfg.Seed, len(samples))
	}
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 1
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	t.samples = samples
	t.poolLanes = t.pool.Lanes()
	lastLoss := 0.0
	for e := 0; e < epochs; e++ {
		order := t.sh.order()
		idx := t.idx[:0]
		for _, i := range order {
			if len(samples[i].Seq) > 0 {
				idx = append(idx, i)
			}
		}
		t.idx = idx
		total := 0.0
		m.ZeroGrad()
		for start := 0; start < len(idx); start += batch {
			end := start + batch
			if end > len(idx) {
				end = len(idx)
			}
			t.chunk = idx[start:end]
			for i := range t.shardLoss {
				t.shardLoss[i] = 0
			}
			t.pool.Run(t.laneFn)
			total += t.reduce()
			opt.Update(m.Params(), end-start)
			m.ZeroGrad()
			for _, sh := range t.shadows {
				sh.ZeroGrad()
			}
		}
		lastLoss = total / float64(len(order))
	}
	t.samples = nil
	t.chunk = nil
	return lastLoss
}
