package ml

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGradModel estimates dLoss/dparam by central differences.
func numericalGradModel(m SequenceModel, seq [][]float64, label int, t *Tensor, idx int) float64 {
	const eps = 1e-5
	orig := t.Data[idx]
	lossAt := func(v float64) float64 {
		t.Data[idx] = v
		probe := m.CloneModel()
		probe.ZeroGrad()
		loss := probe.AccumulateGradients(seq, label)
		return loss
	}
	plus := lossAt(orig + eps)
	minus := lossAt(orig - eps)
	t.Data[idx] = orig
	return (plus - minus) / (2 * eps)
}

func gradCheckModel(t *testing.T, m SequenceModel, seq [][]float64, label int) {
	t.Helper()
	m.ZeroGrad()
	m.AccumulateGradients(seq, label)
	for ti, tensor := range m.Params() {
		for idx := 0; idx < len(tensor.Data); idx += 5 {
			want := numericalGradModel(m, seq, label, tensor, idx)
			got := tensor.Grad[idx]
			diff := math.Abs(got - want)
			tol := 1e-6 + 1e-4*math.Abs(want)
			if diff > tol {
				t.Fatalf("param %d elem %d: analytic %g vs numeric %g", ti, idx, got, want)
			}
		}
	}
}

func TestLSTMGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := NewLSTMNet(3, 4, 2, rng)
	seq := [][]float64{
		{0.2, -0.7, 0.1},
		{0.9, 0.3, -0.5},
		{-0.2, 0.8, 0.4},
	}
	gradCheckModel(t, n, seq, 1)
}

func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := NewMLPNet(4, 6, 2, rng)
	seq := [][]float64{{0.3, -0.1, 0.8, 0.5}}
	gradCheckModel(t, n, seq, 0)
}

func TestLSTMStateBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := NewLSTMNet(5, 8, 2, rng)
	state := make([]float64, n.StateSize())
	for step := 0; step < 300; step++ {
		x := make([]float64, 5)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		n.StepState(state, x, state)
		for i, v := range state {
			if v <= -1 || v >= 1 || math.IsNaN(v) {
				t.Fatalf("step %d: state[%d] = %v escaped (-1,1)", step, i, v)
			}
		}
	}
}

func TestLSTMPredictFromMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	n := NewLSTMNet(3, 5, 2, rng)
	var seq [][]float64
	state := make([]float64, n.StateSize())
	for step := 0; step < 8; step++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		seq = append(seq, x)
		full := n.Predict(seq)
		incr, next := n.PredictFrom(state, x)
		if full != incr {
			t.Fatalf("step %d: full %d vs incremental %d", step, full, incr)
		}
		state = next
	}
}

// TestModelsLearnSequenceTask compares the three architectures on the
// sum-over-time task: the recurrent models must learn it; the stateless MLP
// (which sees only the last step) cannot — reproducing why the paper's
// design iterations favoured sequence models (§III-B, §V-C).
func TestModelsLearnSequenceTask(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	makeSample := func() Sample {
		l := 3 + rng.Intn(5)
		seq := make([][]float64, l)
		sum := 0.0
		for i := range seq {
			v := rng.Float64()*2 - 1
			sum += v
			seq[i] = []float64{v, rng.Float64()}
		}
		label := 0
		if sum > 0 {
			label = 1
		}
		return Sample{Seq: seq, Label: label}
	}
	var train, test []Sample
	for i := 0; i < 500; i++ {
		train = append(train, makeSample())
	}
	for i := 0; i < 200; i++ {
		test = append(test, makeSample())
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 12
	accOf := func(m SequenceModel) float64 {
		TrainModel(m, train, NewAdam(0.01), cfg)
		return EvalModelAccuracy(m, test)
	}
	gru := accOf(NewGRUNet(2, 12, 2, rand.New(rand.NewSource(1))))
	lstm := accOf(NewLSTMNet(2, 12, 2, rand.New(rand.NewSource(2))))
	mlp := accOf(NewMLPNet(2, 12, 2, rand.New(rand.NewSource(3))))
	t.Logf("accuracy: gru=%.3f lstm=%.3f mlp=%.3f", gru, lstm, mlp)
	if gru < 0.85 {
		t.Errorf("GRU accuracy %.3f < 0.85", gru)
	}
	if lstm < 0.80 {
		t.Errorf("LSTM accuracy %.3f < 0.80", lstm)
	}
	if mlp > 0.75 {
		t.Errorf("stateless MLP accuracy %.3f unexpectedly high on a memory task", mlp)
	}
	if mlp > gru || mlp > lstm {
		t.Error("MLP should not beat the recurrent models on a memory task")
	}
}

func TestQuantizeModelVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for _, m := range []SequenceModel{
		NewLSTMNet(4, 6, 2, rng),
		NewMLPNet(4, 6, 2, rng),
	} {
		q := m.QuantizeModel()
		if q.StateSize() != m.StateSize() || q.InputSize() != m.InputSize() {
			t.Errorf("quantized model changed shape")
		}
		// Quantization is idempotent on the grid.
		for i, tensor := range q.Params() {
			before := append([]float64(nil), tensor.Data...)
			QuantizeTensor(q.Params()[i])
			for j := range before {
				if math.Abs(before[j]-q.Params()[i].Data[j]) > 1e-9 {
					t.Fatalf("quantization not idempotent at %d/%d", i, j)
					break
				}
			}
		}
	}
}

func TestMLPIgnoresHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	n := NewMLPNet(2, 4, 2, rng)
	last := []float64{0.3, 0.9}
	a := n.Predict([][]float64{{1, 1}, {0, 0}, last})
	b := n.Predict([][]float64{last})
	if a != b {
		t.Error("MLP prediction depends on history")
	}
}
