package ml

import (
	"math"
	"math/rand"
	"testing"

	"github.com/phftl/phftl/internal/par"
)

func shardedTestSamples(n, dim int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	samples := make([]Sample, n)
	for i := range samples {
		seqLen := rng.Intn(6) // includes empty sequences, which training skips
		seq := make([][]float64, seqLen)
		for j := range seq {
			x := make([]float64, dim)
			for k := range x {
				x[k] = rng.Float64()
			}
			seq[j] = x
		}
		samples[i] = Sample{Seq: seq, Label: rng.Intn(2)}
	}
	return samples
}

func freshGRU(dim int) SequenceModel {
	return NewGRUNet(dim, 12, NumClassesDefault, rand.New(rand.NewSource(7)))
}

func freshMLP(dim int) SequenceModel {
	return NewMLPNet(dim, 12, NumClassesDefault, rand.New(rand.NewSource(7)))
}

func weightsBits(m SequenceModel) [][]uint64 {
	params := m.Params()
	out := make([][]uint64, len(params))
	for i, p := range params {
		bits := make([]uint64, len(p.Data))
		for j, v := range p.Data {
			bits[j] = math.Float64bits(v)
		}
		out[i] = bits
	}
	return out
}

func requireSameWeights(t *testing.T, want, got [][]uint64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: param count %d != %d", label, len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("%s: param %d element %d differs: %x != %x",
					label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestShardedTrainerPoolInvariance pins the tentpole determinism contract:
// deployed weights depend only on the shard count, never on the pool, so
// serial (nil pool) and 2/3/4-lane pools yield bit-identical weights.
func TestShardedTrainerPoolInvariance(t *testing.T) {
	const dim = 8
	samples := shardedTestSamples(120, dim, 42)
	cfg := TrainConfig{Epochs: 2, BatchSize: 32, LR: 0.01, Seed: 3}

	for name, fresh := range map[string]func(int) SequenceModel{"gru": freshGRU, "mlp": freshMLP} {
		t.Run(name, func(t *testing.T) {
			ref := fresh(dim)
			refTrainer := NewShardedTrainer(4)
			refLoss := refTrainer.Train(ref, samples, NewAdam(cfg.LR), cfg)
			want := weightsBits(ref)

			for _, lanes := range []int{2, 3, 4} {
				pool := par.New(lanes)
				m := fresh(dim)
				tr := NewShardedTrainer(4)
				tr.SetPool(pool)
				loss := tr.Train(m, samples, NewAdam(cfg.LR), cfg)
				pool.Close()
				if math.Float64bits(loss) != math.Float64bits(refLoss) {
					t.Fatalf("pool=%d: loss %v != serial loss %v", lanes, loss, refLoss)
				}
				requireSameWeights(t, want, weightsBits(m), "pool invariance")
			}
		})
	}
}

// TestShardedTrainerSingleLaneMatchesTrainModel pins that Lanes=1 reproduces
// TrainModel exactly: a single shard accumulates in shuffled sample order and
// reduces into zeroed master gradients, which cannot change any bit.
func TestShardedTrainerSingleLaneMatchesTrainModel(t *testing.T) {
	const dim = 8
	samples := shardedTestSamples(90, dim, 11)
	cfg := TrainConfig{Epochs: 3, BatchSize: 16, LR: 0.02, Seed: 5}

	ref := freshGRU(dim)
	refLoss := TrainModel(ref, samples, NewAdam(cfg.LR), cfg)

	m := freshGRU(dim)
	loss := NewShardedTrainer(1).Train(m, samples, NewAdam(cfg.LR), cfg)

	if math.Float64bits(loss) != math.Float64bits(refLoss) {
		t.Fatalf("loss %v != TrainModel loss %v", loss, refLoss)
	}
	requireSameWeights(t, weightsBits(ref), weightsBits(m), "lanes=1 vs TrainModel")
}

// TestShardedTrainerReuseAcrossWindows exercises the pooled path PHFTL uses:
// the same trainer instance trains successive windows (different sample sets
// and seeds) and must behave exactly like a fresh trainer each time.
func TestShardedTrainerReuseAcrossWindows(t *testing.T) {
	const dim = 8
	reused := NewShardedTrainer(4)
	mReused := freshGRU(dim)
	mFresh := freshGRU(dim)
	optReused, optFresh := NewAdam(0.01), NewAdam(0.01)
	for w := 0; w < 3; w++ {
		samples := shardedTestSamples(60+10*w, dim, int64(100+w))
		cfg := TrainConfig{Epochs: 1, BatchSize: 32, LR: 0.01, Seed: int64(w)}
		lossReused := reused.Train(mReused, samples, optReused, cfg)
		lossFresh := NewShardedTrainer(4).Train(mFresh, samples, optFresh, cfg)
		if math.Float64bits(lossReused) != math.Float64bits(lossFresh) {
			t.Fatalf("window %d: reused loss %v != fresh loss %v", w, lossReused, lossFresh)
		}
		requireSameWeights(t, weightsBits(mFresh), weightsBits(mReused), "trainer reuse")
	}
}

// TestShadowCloneSharesWeightsPrivatelyGrads pins the Shadow contract all of
// the above relies on.
func TestShadowCloneSharesWeightsPrivatelyGrads(t *testing.T) {
	m := freshGRU(8)
	sh := m.ShadowClone()
	mp, sp := m.Params(), sh.Params()
	if len(mp) != len(sp) {
		t.Fatalf("param count mismatch: %d vs %d", len(mp), len(sp))
	}
	for i := range mp {
		if &mp[i].Data[0] != &sp[i].Data[0] {
			t.Fatalf("param %d: shadow does not share Data", i)
		}
		if &mp[i].Grad[0] == &sp[i].Grad[0] {
			t.Fatalf("param %d: shadow shares Grad", i)
		}
	}
	if SyncModel(m, sh, true) {
		t.Fatal("SyncModel must refuse to quantize a model from its own shadow")
	}
}
