package ml

// Hexadecimal-digit input encoding (§III-B): "For efficient processing,
// PHFTL breaks numerical inputs into hexadecimal digits and each digit
// represents a neuron. The number of digits used for each feature is chosen
// so that most cases can be handled without overflow."
//
// Each digit is normalized to [0,1] by dividing by 15 so that all input
// neurons share one dynamic range.

// HexDigits writes the n least-significant hexadecimal digits of v into dst
// (least significant digit first), each normalized to [0,1]. Values that do
// not fit in n digits saturate to all-0xF, matching firmware behaviour where
// digit counts are sized for the common case. It returns dst extended by n
// entries.
func HexDigits(dst []float64, v uint64, n int) []float64 {
	limit := uint64(1)<<(4*uint(n)) - 1
	if n >= 16 {
		limit = ^uint64(0)
	}
	if v > limit {
		v = limit
	}
	for i := 0; i < n; i++ {
		dst = append(dst, float64(v&0xF)/15.0)
		v >>= 4
	}
	return dst
}

// Bit appends a single 0/1 neuron.
func Bit(dst []float64, b bool) []float64 {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// Ratio01 appends a ratio in [0,1] quantized to n hexadecimal digits (the
// paper's rw_rat feature is a global read/write ratio).
func Ratio01(dst []float64, r float64, n int) []float64 {
	if r < 0 {
		r = 0
	} else if r > 1 {
		r = 1
	}
	limit := uint64(1)<<(4*uint(n)) - 1
	return HexDigits(dst, uint64(r*float64(limit)+0.5), n)
}
