package ml

import "math/rand"

// LSTMNet is a single-layer long short-term memory network with a fully
// connected output head — one of the architectures explored in the paper's
// design iterations before settling on the GRU (§III-B). Its persistent
// per-page state is the concatenation [h ‖ c] (both bounded in (−1,1): h by
// the output tanh·sigmoid product, c by an explicit clamp), so it can be
// cached in the flash metadata entry like the GRU hidden state but needs
// twice the bytes per hidden unit.
//
// Gate equations (per step):
//
//	i = σ(Wi·x + Ui·h + bi)         input gate
//	f = σ(Wf·x + Uf·h + bf)         forget gate
//	o = σ(Wo·x + Uo·h + bo)         output gate
//	g = tanh(Wg·x + Ug·h + bg)      candidate cell
//	c' = clamp(f⊙c + i⊙g, −1, 1)
//	h' = o ⊙ tanh(c')
type LSTMNet struct {
	In, Hidden, NumClasses int

	Wi, Ui, Bi *Tensor
	Wf, Uf, Bf *Tensor
	Wo, Uo, Bo *Tensor
	Wg, Ug, Bg *Tensor
	Wout, Bout *Tensor

	// Per-instance inference scratch (see GRUNet): StepState, LogitsFromState
	// and PredictInto reuse these, making steady-state prediction
	// allocation-free. Single-owner, like the gradients.
	scrI, scrF, scrO, scrG, scrLogits []float64
}

// NewLSTMNet builds a randomly initialized network.
func NewLSTMNet(in, hidden, classes int, rng *rand.Rand) *LSTMNet {
	n := &LSTMNet{
		In: in, Hidden: hidden, NumClasses: classes,
		Wi: NewTensor(hidden, in), Ui: NewTensor(hidden, hidden), Bi: NewTensor(1, hidden),
		Wf: NewTensor(hidden, in), Uf: NewTensor(hidden, hidden), Bf: NewTensor(1, hidden),
		Wo: NewTensor(hidden, in), Uo: NewTensor(hidden, hidden), Bo: NewTensor(1, hidden),
		Wg: NewTensor(hidden, in), Ug: NewTensor(hidden, hidden), Bg: NewTensor(1, hidden),
		Wout: NewTensor(classes, hidden), Bout: NewTensor(1, classes),
	}
	for _, t := range n.Params() {
		t.InitXavier(rng)
	}
	// Forget-gate bias initialized positive, the standard LSTM trick for
	// gradient flow early in training.
	for i := range n.Bf.Data {
		n.Bf.Data[i] = 1
	}
	return n
}

// Params implements SequenceModel.
func (n *LSTMNet) Params() []*Tensor {
	return []*Tensor{
		n.Wi, n.Ui, n.Bi, n.Wf, n.Uf, n.Bf,
		n.Wo, n.Uo, n.Bo, n.Wg, n.Ug, n.Bg,
		n.Wout, n.Bout,
	}
}

// ZeroGrad implements SequenceModel.
func (n *LSTMNet) ZeroGrad() {
	for _, t := range n.Params() {
		t.ZeroGrad()
	}
}

// InputSize implements SequenceModel.
func (n *LSTMNet) InputSize() int { return n.In }

// StateSize implements SequenceModel: h and c are both persisted.
func (n *LSTMNet) StateSize() int { return 2 * n.Hidden }

// NumOutputs implements SequenceModel.
func (n *LSTMNet) NumOutputs() int { return n.NumClasses }

// CloneModel implements SequenceModel.
func (n *LSTMNet) CloneModel() SequenceModel {
	c := &LSTMNet{In: n.In, Hidden: n.Hidden, NumClasses: n.NumClasses}
	src := n.Params()
	dst := []**Tensor{
		&c.Wi, &c.Ui, &c.Bi, &c.Wf, &c.Uf, &c.Bf,
		&c.Wo, &c.Uo, &c.Bo, &c.Wg, &c.Ug, &c.Bg,
		&c.Wout, &c.Bout,
	}
	for i, t := range src {
		*dst[i] = t.Clone()
	}
	return c
}

// ShadowClone implements SequenceModel: parameter Data is shared with the
// receiver, gradients and scratch are private (see Tensor.Shadow).
func (n *LSTMNet) ShadowClone() SequenceModel {
	c := &LSTMNet{In: n.In, Hidden: n.Hidden, NumClasses: n.NumClasses}
	src := n.Params()
	dst := []**Tensor{
		&c.Wi, &c.Ui, &c.Bi, &c.Wf, &c.Uf, &c.Bf,
		&c.Wo, &c.Uo, &c.Bo, &c.Wg, &c.Ug, &c.Bg,
		&c.Wout, &c.Bout,
	}
	for i, t := range src {
		*dst[i] = t.Shadow()
	}
	return c
}

// QuantizeModel implements SequenceModel.
func (n *LSTMNet) QuantizeModel() SequenceModel {
	q := n.CloneModel().(*LSTMNet)
	for _, t := range q.Params() {
		QuantizeTensor(t)
	}
	return q
}

// lstmTrace captures one step's intermediates for backpropagation.
type lstmTrace struct {
	x, hPrev, cPrev, i, f, o, g, cRaw, c, tc, h []float64
	clamped                                     []bool
}

func (n *LSTMNet) stepTraced(hPrev, cPrev, x []float64) lstmTrace {
	H := n.Hidden
	tr := lstmTrace{
		x:     x,
		hPrev: append([]float64(nil), hPrev...),
		cPrev: append([]float64(nil), cPrev...),
		i:     make([]float64, H), f: make([]float64, H),
		o: make([]float64, H), g: make([]float64, H),
		cRaw: make([]float64, H), c: make([]float64, H),
		tc: make([]float64, H), h: make([]float64, H),
		clamped: make([]bool, H),
	}
	matVec(n.Wi, x, tr.i)
	matVecAdd(n.Ui, hPrev, tr.i)
	matVec(n.Wf, x, tr.f)
	matVecAdd(n.Uf, hPrev, tr.f)
	matVec(n.Wo, x, tr.o)
	matVecAdd(n.Uo, hPrev, tr.o)
	matVec(n.Wg, x, tr.g)
	matVecAdd(n.Ug, hPrev, tr.g)
	for k := 0; k < H; k++ {
		tr.i[k] = sigmoid(tr.i[k] + n.Bi.Data[k])
		tr.f[k] = sigmoid(tr.f[k] + n.Bf.Data[k])
		tr.o[k] = sigmoid(tr.o[k] + n.Bo.Data[k])
		tr.g[k] = tanh(tr.g[k] + n.Bg.Data[k])
		tr.cRaw[k] = tr.f[k]*cPrev[k] + tr.i[k]*tr.g[k]
		tr.c[k] = tr.cRaw[k]
		// Clamp the cell into (−1,1) so the persisted state stays int8-able.
		if tr.c[k] > 0.999 {
			tr.c[k] = 0.999
			tr.clamped[k] = true
		} else if tr.c[k] < -0.999 {
			tr.c[k] = -0.999
			tr.clamped[k] = true
		}
		tr.tc[k] = tanh(tr.c[k])
		tr.h[k] = tr.o[k] * tr.tc[k]
	}
	return tr
}

// StepState implements SequenceModel: statePrev/stateOut are [h ‖ c].
// stateOut may alias statePrev; no heap allocations in steady state.
func (n *LSTMNet) StepState(statePrev, x, stateOut []float64) {
	n.ensureScratch()
	H := n.Hidden
	hPrev, cPrev := statePrev[:H], statePrev[H:2*H]
	i, f, o, g := n.scrI, n.scrF, n.scrO, n.scrG
	matVec(n.Wi, x, i)
	matVecAdd(n.Ui, hPrev, i)
	matVec(n.Wf, x, f)
	matVecAdd(n.Uf, hPrev, f)
	matVec(n.Wo, x, o)
	matVecAdd(n.Uo, hPrev, o)
	matVec(n.Wg, x, g)
	matVecAdd(n.Ug, hPrev, g)
	// Same math (and the same ±0.999 cell clamp) as stepTraced; hPrev is
	// fully consumed by the matVecAdds above and cPrev[k] is read before
	// stateOut[H+k] is written, so in-place stepping is safe.
	for k := 0; k < H; k++ {
		ik := sigmoid(i[k] + n.Bi.Data[k])
		fk := sigmoid(f[k] + n.Bf.Data[k])
		ok := sigmoid(o[k] + n.Bo.Data[k])
		gk := tanh(g[k] + n.Bg.Data[k])
		ck := fk*cPrev[k] + ik*gk
		if ck > 0.999 {
			ck = 0.999
		} else if ck < -0.999 {
			ck = -0.999
		}
		stateOut[k] = ok * tanh(ck)
		stateOut[H+k] = ck
	}
}

func (n *LSTMNet) ensureScratch() {
	if len(n.scrI) != n.Hidden {
		n.scrI = make([]float64, n.Hidden)
		n.scrF = make([]float64, n.Hidden)
		n.scrO = make([]float64, n.Hidden)
		n.scrG = make([]float64, n.Hidden)
	}
	if len(n.scrLogits) != n.NumClasses {
		n.scrLogits = make([]float64, n.NumClasses)
	}
}

// LogitsFromState implements SequenceModel. The returned slice is
// network-owned scratch, overwritten by the next call on this network.
func (n *LSTMNet) LogitsFromState(state []float64) []float64 {
	n.ensureScratch()
	out := n.scrLogits
	matVec(n.Wout, state[:n.Hidden], out)
	for i := range out {
		out[i] += n.Bout.Data[i]
	}
	return out
}

// PredictFrom implements SequenceModel.
func (n *LSTMNet) PredictFrom(statePrev, x []float64) (int, []float64) {
	state := make([]float64, 2*n.Hidden)
	cls := n.PredictInto(statePrev, x, state)
	return cls, state
}

// PredictInto implements SequenceModel: one allocation-free step, stateOut
// may alias statePrev.
func (n *LSTMNet) PredictInto(statePrev, x, stateOut []float64) int {
	n.StepState(statePrev, x, stateOut)
	return Argmax(n.LogitsFromState(stateOut))
}

// Predict implements SequenceModel.
func (n *LSTMNet) Predict(seq [][]float64) int {
	state := make([]float64, 2*n.Hidden)
	for _, x := range seq {
		n.StepState(state, x, state)
	}
	return Argmax(n.LogitsFromState(state))
}

// AccumulateGradients implements SequenceModel (full BPTT).
func (n *LSTMNet) AccumulateGradients(seq [][]float64, label int) float64 {
	H := n.Hidden
	h := make([]float64, H)
	c := make([]float64, H)
	traces := make([]lstmTrace, 0, len(seq))
	for _, x := range seq {
		tr := n.stepTraced(h, c, x)
		h, c = tr.h, tr.c
		traces = append(traces, tr)
	}
	logits := n.LogitsFromState(append(append([]float64(nil), h...), c...))
	loss, dLogits := SoftmaxCrossEntropy(logits, label)
	outerAddGrad(n.Wout, dLogits, h)
	addGrad(n.Bout, dLogits)
	dh := make([]float64, H)
	dc := make([]float64, H)
	matTVecAdd(n.Wout, dLogits, dh)

	daI := make([]float64, H)
	daF := make([]float64, H)
	daO := make([]float64, H)
	daG := make([]float64, H)
	for t := len(traces) - 1; t >= 0; t-- {
		tr := &traces[t]
		dhPrev := make([]float64, H)
		dcPrev := make([]float64, H)
		for k := 0; k < H; k++ {
			// h = o · tanh(c)
			do := dh[k] * tr.tc[k]
			dcTot := dc[k] + dh[k]*tr.o[k]*(1-tr.tc[k]*tr.tc[k])
			if tr.clamped[k] {
				dcTot = 0 // gradient does not flow through the clamp
			}
			di := dcTot * tr.g[k]
			df := dcTot * tr.cPrev[k]
			dg := dcTot * tr.i[k]
			dcPrev[k] = dcTot * tr.f[k]
			daI[k] = di * tr.i[k] * (1 - tr.i[k])
			daF[k] = df * tr.f[k] * (1 - tr.f[k])
			daO[k] = do * tr.o[k] * (1 - tr.o[k])
			daG[k] = dg * (1 - tr.g[k]*tr.g[k])
		}
		outerAddGrad(n.Wi, daI, tr.x)
		outerAddGrad(n.Ui, daI, tr.hPrev)
		addGrad(n.Bi, daI)
		outerAddGrad(n.Wf, daF, tr.x)
		outerAddGrad(n.Uf, daF, tr.hPrev)
		addGrad(n.Bf, daF)
		outerAddGrad(n.Wo, daO, tr.x)
		outerAddGrad(n.Uo, daO, tr.hPrev)
		addGrad(n.Bo, daO)
		outerAddGrad(n.Wg, daG, tr.x)
		outerAddGrad(n.Ug, daG, tr.hPrev)
		addGrad(n.Bg, daG)
		matTVecAdd(n.Ui, daI, dhPrev)
		matTVecAdd(n.Uf, daF, dhPrev)
		matTVecAdd(n.Uo, daO, dhPrev)
		matTVecAdd(n.Ug, daG, dhPrev)
		dh, dc = dhPrev, dcPrev
	}
	return loss
}
