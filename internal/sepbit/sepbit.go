// Package sepbit implements the SepBIT baseline (Wang et al., "Separating
// Data via Block Invalidation Time Inference for Write Amplification
// Reduction in Log-Structured Storage", FAST 2022), the strongest rule-based
// scheme PHFTL compares against.
//
// SepBIT infers the lifetime (block invalidation time) of a newly written
// page from the lifespan of the version it overwrites: a page whose previous
// version lived shorter than a threshold ℓ is predicted short-living. User
// writes are split into two streams by this inference; GC-rewritten pages
// are split into four streams by their age at collection time using
// geometric bands of ℓ. The threshold ℓ adapts as half the average observed
// lifespan of user-overwritten pages, tracked with an exponential moving
// average (the original paper estimates it from a monitoring window; the
// EWMA preserves the same adaptive behaviour in streaming form).
package sepbit

import (
	"github.com/phftl/phftl/internal/ftl"
	"github.com/phftl/phftl/internal/nand"
)

// Stream layout.
const (
	streamUserShort = 0 // inferred lifespan < ℓ
	streamUserLong  = 1 // inferred lifespan ≥ ℓ (or unknown)
	streamGC0       = 2 // GC write, age < 4ℓ
	streamGC1       = 3 // GC write, age < 16ℓ
	streamGC2       = 4 // GC write, age < 64ℓ
	streamGC3       = 5 // GC write, age ≥ 64ℓ
	numStreams      = 6
)

const (
	// ewmaAlpha is the smoothing factor of the lifespan average.
	ewmaAlpha = 0.01
	// initialThreshold seeds ℓ before any lifespan has been observed.
	initialThreshold = 1024
)

// Separator is the SepBIT scheme. It tracks the last write time of every
// logical page in RAM (simulator bookkeeping standing in for SepBIT's
// compact per-zone metadata).
type Separator struct {
	ftl.NopSeparator
	lastWrite []uint64 // clock+1 of last write per LPN; 0 = never written
	avgLife   float64  // EWMA of observed lifespans
	seeded    bool
}

// New returns a SepBIT scheme for a drive with exportedPages logical pages.
func New(exportedPages int) *Separator {
	return &Separator{lastWrite: make([]uint64, exportedPages)}
}

// Name implements ftl.Separator.
func (*Separator) Name() string { return "SepBIT" }

// NumStreams implements ftl.Separator.
func (*Separator) NumStreams() int { return numStreams }

// StreamGCClass implements ftl.Separator: the four GC streams hold
// GC-survivor pages.
func (*Separator) StreamGCClass(stream int) int {
	if stream >= streamGC0 {
		return stream - streamGC0 + 1
	}
	return 0
}

// Threshold returns the current inference threshold ℓ.
func (s *Separator) Threshold() float64 {
	if !s.seeded {
		return initialThreshold
	}
	return s.avgLife / 2
}

// PlaceUserWrite implements ftl.Separator: infer the new page's lifetime as
// the lifespan of the version it overwrites.
func (s *Separator) PlaceUserWrite(w ftl.UserWrite, clock uint64) (int, []byte) {
	prev := s.lastWrite[w.LPN]
	s.lastWrite[w.LPN] = clock + 1
	if prev == 0 {
		// First write: no inference possible, treat as long-living.
		return streamUserLong, nil
	}
	lifespan := float64(clock + 1 - prev)
	if s.seeded {
		s.avgLife += ewmaAlpha * (lifespan - s.avgLife)
	} else {
		s.avgLife = lifespan
		s.seeded = true
	}
	if lifespan < s.Threshold() {
		return streamUserShort, nil
	}
	return streamUserLong, nil
}

// OnTrim implements ftl.TrimAware: a discard ends the page's current version,
// so its lifespan (trim acting as the next write) feeds the same EWMA an
// overwrite would, and the last-write record is cleared so the LPN's next
// write is treated as a first write instead of inheriting the dead file's
// timing.
func (s *Separator) OnTrim(lpn nand.LPN, _ nand.PPN, clock uint64) {
	prev := s.lastWrite[lpn]
	s.lastWrite[lpn] = 0
	if prev == 0 {
		return
	}
	lifespan := float64(clock + 1 - prev)
	if s.seeded {
		s.avgLife += ewmaAlpha * (lifespan - s.avgLife)
	} else {
		s.avgLife = lifespan
		s.seeded = true
	}
}

// PlaceGCWrite implements ftl.Separator: band GC survivors by age.
func (s *Separator) PlaceGCWrite(lpn nand.LPN, _ []byte, _ int, clock uint64) (int, []byte) {
	prev := s.lastWrite[lpn]
	age := float64(clock + 1 - prev)
	l := s.Threshold()
	switch {
	case age < 4*l:
		return streamGC0, nil
	case age < 16*l:
		return streamGC1, nil
	case age < 64*l:
		return streamGC2, nil
	default:
		return streamGC3, nil
	}
}
