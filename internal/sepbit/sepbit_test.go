package sepbit

import (
	"math/rand"
	"testing"

	"github.com/phftl/phftl/internal/ftl"
	"github.com/phftl/phftl/internal/nand"
)

func testGeo() nand.Geometry {
	return nand.Geometry{PageSize: 4096, OOBSize: 64, PagesPerBlock: 8, BlocksPerDie: 512, Dies: 2}
}

func TestFirstWriteGoesLong(t *testing.T) {
	s := New(100)
	stream, oob := s.PlaceUserWrite(ftl.UserWrite{LPN: 1}, 0)
	if stream != streamUserLong {
		t.Errorf("first write stream = %d, want long (%d)", stream, streamUserLong)
	}
	if oob != nil {
		t.Error("sepbit should not attach OOB metadata")
	}
}

func TestShortLifespanInferredShort(t *testing.T) {
	s := New(100)
	// Warm the average with long lifespans on another page.
	s.PlaceUserWrite(ftl.UserWrite{LPN: 2}, 0)
	s.PlaceUserWrite(ftl.UserWrite{LPN: 2}, 5000)
	// Page 1: overwrite after 3 clock ticks — far below ℓ = avg/2.
	s.PlaceUserWrite(ftl.UserWrite{LPN: 1}, 100)
	stream, _ := s.PlaceUserWrite(ftl.UserWrite{LPN: 1}, 103)
	if stream != streamUserShort {
		t.Errorf("short-lifespan write stream = %d, want short (%d)", stream, streamUserShort)
	}
	// Page 2 overwritten after a long gap: long stream.
	stream, _ = s.PlaceUserWrite(ftl.UserWrite{LPN: 2}, 50000)
	if stream != streamUserLong {
		t.Errorf("long-lifespan write stream = %d, want long (%d)", stream, streamUserLong)
	}
}

func TestThresholdAdapts(t *testing.T) {
	s := New(10)
	before := s.Threshold()
	if before != initialThreshold {
		t.Errorf("unseeded threshold = %v", before)
	}
	s.PlaceUserWrite(ftl.UserWrite{LPN: 0}, 0)
	s.PlaceUserWrite(ftl.UserWrite{LPN: 0}, 10)
	if got := s.Threshold(); got != 5 {
		t.Errorf("threshold after lifespan 10 = %v, want 5", got)
	}
	// Repeated short lifespans drag the EWMA down.
	clk := uint64(10)
	for i := 0; i < 500; i++ {
		clk += 2
		s.PlaceUserWrite(ftl.UserWrite{LPN: 0}, clk)
	}
	if got := s.Threshold(); got > 5 {
		t.Errorf("threshold did not adapt downward: %v", got)
	}
}

func TestGCAgeBands(t *testing.T) {
	s := New(10)
	// Seed ℓ = 50 (avg 100).
	s.PlaceUserWrite(ftl.UserWrite{LPN: 0}, 0)
	s.PlaceUserWrite(ftl.UserWrite{LPN: 0}, 100)
	if s.Threshold() != 50 {
		t.Fatalf("ℓ = %v", s.Threshold())
	}
	// Page 1 written at clock 999 (lastWrite = 1000).
	s.PlaceUserWrite(ftl.UserWrite{LPN: 1}, 999)
	cases := []struct {
		clock  uint64
		stream int
	}{
		{1000 + 100 - 1, streamGC0},   // age 100 < 200
		{1000 + 300 - 1, streamGC1},   // 200 <= age < 800
		{1000 + 1000 - 1, streamGC2},  // 800 <= age < 3200
		{1000 + 10000 - 1, streamGC3}, // age >= 3200
	}
	for _, c := range cases {
		stream, _ := s.PlaceGCWrite(1, nil, 1, c.clock)
		if stream != c.stream {
			t.Errorf("clock %d: stream = %d, want %d", c.clock, stream, c.stream)
		}
	}
}

func TestStreamGCClass(t *testing.T) {
	s := New(1)
	if s.StreamGCClass(streamUserShort) != 0 || s.StreamGCClass(streamUserLong) != 0 {
		t.Error("user streams must be class 0")
	}
	for i, stream := range []int{streamGC0, streamGC1, streamGC2, streamGC3} {
		if got := s.StreamGCClass(stream); got != i+1 {
			t.Errorf("StreamGCClass(%d) = %d, want %d", stream, got, i+1)
		}
	}
}

// TestSepBITBeatsBaseOnSkewedWorkload is the end-to-end sanity check: SepBIT
// must reduce WA versus Base on a hot/cold workload (the paper's Fig. 5
// ordering Base > SepBIT).
func TestSepBITBeatsBaseOnSkewedWorkload(t *testing.T) {
	run := func(mk func(exported int) ftl.Separator) float64 {
		cfg := ftl.DefaultConfig(testGeo())
		probe, err := ftl.New(cfg, ftl.NewBaseSeparator(), ftl.CostBenefitPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		exported := probe.ExportedPages()
		f, err := ftl.New(cfg, mk(exported), ftl.CostBenefitPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(77))
		hot := exported / 50
		for lpn := 0; lpn < exported; lpn++ {
			if err := f.Write(ftl.UserWrite{LPN: nand.LPN(lpn)}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 6*exported; i++ {
			var lpn int
			if rng.Float64() < 0.8 {
				lpn = rng.Intn(hot)
			} else {
				lpn = hot + rng.Intn(exported-hot)
			}
			if err := f.Write(ftl.UserWrite{LPN: nand.LPN(lpn)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return f.Stats().WA()
	}
	waBase := run(func(int) ftl.Separator { return ftl.NewBaseSeparator() })
	waSepBIT := run(func(exported int) ftl.Separator { return New(exported) })
	t.Logf("WA base=%.3f sepbit=%.3f", waBase, waSepBIT)
	if waSepBIT >= waBase {
		t.Fatalf("SepBIT WA %.3f >= Base WA %.3f", waSepBIT, waBase)
	}
}

// SepBIT must opt in to trim notifications.
var _ ftl.TrimAware = (*Separator)(nil)

func TestOnTrimFeedsEWMAAndClearsHistory(t *testing.T) {
	s := New(64)
	s.PlaceUserWrite(ftl.UserWrite{LPN: 5}, 0) // first write at clock 0
	s.OnTrim(5, 0, 10)                         // trimmed 10 writes later
	if !s.seeded {
		t.Fatal("trim lifespan did not seed the EWMA")
	}
	if s.avgLife != 10 {
		t.Errorf("avgLife = %v, want 10 (trim acts as the next write)", s.avgLife)
	}
	if s.lastWrite[5] != 0 {
		t.Error("lastWrite not cleared by trim")
	}
	// The next write of the trimmed LPN is a first write again: long stream.
	if stream, _ := s.PlaceUserWrite(ftl.UserWrite{LPN: 5}, 20); stream != streamUserLong {
		t.Errorf("post-trim write stream = %d, want long (%d)", stream, streamUserLong)
	}
	// Trimming a never-written LPN is a no-op.
	before := s.avgLife
	s.OnTrim(7, 0, 30)
	if s.avgLife != before {
		t.Error("trim of never-written LPN moved the EWMA")
	}
}
