// Package golden implements the golden-curve regression harness: it loads
// two sample-series CSVs in the cmd/wabench/cmd/phftlsim -telemetry-csv
// format, aligns them on the virtual clock, and compares the behavioural
// columns point by point under per-column absolute+relative tolerances. An
// end-of-run WA scalar hides trades between early-run and late-run
// behaviour; diffing the whole trajectory makes a GC or separator change
// that improves the final number while degrading the curve visible in CI.
//
// # Compared columns
//
// Of the twelve CSV columns, four are compared by default:
//
//   - interval_wa — the per-interval write amplification, the quantity the
//     paper's Figure 5 trajectories actually plot. The primary regression
//     signal: early-/late-run WA trades show up here first.
//   - cum_wa — the cumulative WA; integrates interval_wa, so a divergence
//     here that interval_wa misses indicates sustained drift below the
//     per-point tolerance.
//   - threshold — PHFTL's classification threshold. The separator's entire
//     decision state; a shifted hill-climb trajectory changes stream
//     placement long before it changes WA.
//   - cache_hit — the metadata-cache cumulative hit ratio; detects
//     metadata-locality regressions that WA alone absorbs. Empty on
//     baseline schemes in both series (absent-vs-absent compares equal;
//     absent-vs-present is a divergence).
//
// The remaining columns are excluded deliberately:
//
//   - clock is the alignment key, not a measurement.
//   - queue_depth, lat_p50_ms and lat_p99_ms are only populated under the
//     timing model (cmd/perfbench); the functional replays that produce
//     golden baselines leave them zero/empty, so comparing them adds
//     nothing and would invalidate baselines the moment a timed harness
//     writes them.
//   - free_sb and open_fill_mean are instantaneous allocator state: they
//     legitimately jump by whole superblocks depending on where inside a
//     GC cycle the sampling instant lands, so they alarm on benign
//     reorderings whose WA trajectory is unchanged. Their behavioural
//     content is already integrated into interval_wa.
//   - wear_skew and wear_cov (internal/wear gauges, appended at the end of
//     the row) are derived from the same erase stream interval_wa already
//     integrates, and baselines checked in before their introduction lack
//     the columns entirely; comparing them would invalidate every old
//     baseline for no added signal. Because comparison is by column name
//     over tols keys only, extra candidate columns are ignored
//     automatically — which is what keeps old baselines green.
//
// Wall-clock-noisy fields are excluded by construction twice over: the one
// such field (the window_retrain event's duration_ns) exists only in the
// JSONL event stream, never in the CSV sample format this package consumes,
// and it is only measured at all under the opt-in -wall-durations flag
// (core.Options.WallDurations) — default telemetry is byte-identical across
// runs, hosts and worker counts.
//
// # Tolerances
//
// The replay is deterministic on the virtual clock, so a same-binary replay
// reproduces the golden CSVs exactly; the default tolerances only absorb
// the CSV decimal quantization (one quantum of the %.6f encoding) plus
// last-ulp float formatting drift, and are deliberately far below any real
// behavioural change. A point pair (g, c) matches when
//
//	|g − c| <= Abs + Rel·max(|g|, |c|)
//
// Intentional behavioural changes are recorded by regenerating the
// baselines (make golden), never by widening tolerances.
package golden

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Series is one parsed sample time series: the clock column plus every
// other column as a float vector. Empty CSV cells (gauges that were
// not applicable, e.g. cache_hit on baseline schemes) parse as NaN.
type Series struct {
	// Columns is the header order, excluding the leading clock column.
	Columns []string
	// Clocks holds the virtual-clock value of each row, strictly ascending.
	Clocks []uint64
	// Values maps a column name to its per-row values, parallel to Clocks.
	Values map[string][]float64
}

// Len returns the number of rows.
func (s *Series) Len() int { return len(s.Clocks) }

// Column returns the values of the named column, or nil when absent.
func (s *Series) Column(name string) []float64 { return s.Values[name] }

// ReadSeries parses a -telemetry-csv sample stream: a header row whose
// first column is "clock", then one row per sample. Clocks must be strictly
// ascending (the sampler emits them that way; anything else indicates a
// corrupt or concatenated file).
func ReadSeries(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("golden: empty CSV (no header)")
	}
	if err != nil {
		return nil, fmt.Errorf("golden: reading header: %w", err)
	}
	if len(header) < 2 || header[0] != "clock" {
		return nil, fmt.Errorf("golden: not a sample CSV: first header column is %q, want \"clock\"", header[0])
	}
	s := &Series{
		Columns: append([]string(nil), header[1:]...),
		Values:  make(map[string][]float64, len(header)-1),
	}
	for _, c := range s.Columns {
		if _, dup := s.Values[c]; dup {
			return nil, fmt.Errorf("golden: duplicate column %q in header", c)
		}
		s.Values[c] = nil
	}
	for row := 2; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("golden: row %d: %w", row, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("golden: row %d has %d fields, header has %d", row, len(rec), len(header))
		}
		clock, err := strconv.ParseUint(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("golden: row %d: bad clock %q: %w", row, rec[0], err)
		}
		if n := len(s.Clocks); n > 0 && clock <= s.Clocks[n-1] {
			return nil, fmt.Errorf("golden: row %d: clock %d not ascending (previous %d)", row, clock, s.Clocks[n-1])
		}
		s.Clocks = append(s.Clocks, clock)
		for i, c := range s.Columns {
			cell := rec[i+1]
			v := math.NaN() // empty cell: gauge not applicable on this row
			if cell != "" {
				if v, err = strconv.ParseFloat(cell, 64); err != nil {
					return nil, fmt.Errorf("golden: row %d, column %s: bad value %q: %w", row, c, cell, err)
				}
			}
			s.Values[c] = append(s.Values[c], v)
		}
	}
	return s, nil
}

// LoadSeries reads a sample CSV from a file.
func LoadSeries(path string) (*Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadSeries(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Tolerance bounds the acceptable divergence for one column: a point pair
// (g, c) is within tolerance when |g−c| <= Abs + Rel·max(|g|, |c|).
type Tolerance struct {
	Abs float64
	Rel float64
}

func (t Tolerance) String() string { return fmt.Sprintf("abs %g, rel %g", t.Abs, t.Rel) }

// within reports whether the pair (g, c) is inside the tolerance. A pair
// where exactly one side is NaN (gauge present in one series only) is never
// within tolerance; NaN-vs-NaN is (both sides agree the gauge does not
// apply).
func (t Tolerance) within(g, c float64) bool {
	gn, cn := math.IsNaN(g), math.IsNaN(c)
	if gn || cn {
		return gn && cn
	}
	return math.Abs(g-c) <= t.Abs+t.Rel*math.Max(math.Abs(g), math.Abs(c))
}

// quantum6 is one quantum of the CSV sinks' %.6f encoding; the default
// absolute tolerance absorbs re-quantization but nothing behavioural.
const quantum6 = 1e-6

// ComparedColumns is the default compared-column order (see the package
// comment for the rationale per column).
var ComparedColumns = []string{"interval_wa", "cum_wa", "threshold", "cache_hit"}

// DefaultTolerances returns the default per-column tolerance set over
// ComparedColumns: one CSV quantum absolute plus a 1e-6 relative term so
// large-magnitude thresholds are not held to sub-quantum precision.
func DefaultTolerances() map[string]Tolerance {
	m := make(map[string]Tolerance, len(ComparedColumns))
	for _, c := range ComparedColumns {
		m[c] = Tolerance{Abs: quantum6, Rel: 1e-6}
	}
	return m
}

// PointDiff is one compared point pair.
type PointDiff struct {
	Clock             uint64
	Column            string
	Golden, Candidate float64
	// Diff is |Golden−Candidate|; +Inf marks a presence mismatch (the gauge
	// is empty in exactly one series at this clock).
	Diff float64
}

// ColumnReport is the comparison outcome of one column.
type ColumnReport struct {
	Column   string
	Tol      Tolerance
	Compared int // point pairs compared (clocks aligned in both series)
	// Missing is set when the column is absent from one series entirely;
	// an absent column is a divergence.
	MissingGolden, MissingCandidate bool
	Violations                      int
	// First is the earliest out-of-tolerance point, nil when none.
	First *PointDiff
	// Max is the largest-|Diff| compared point (even when within
	// tolerance), meaningful only when Compared > 0.
	Max PointDiff
}

// Report is the outcome of comparing a candidate series against a golden
// one.
type Report struct {
	// GoldenLabel/CandidateLabel identify the inputs in String output
	// (file paths when the CLI drives the comparison).
	GoldenLabel, CandidateLabel string
	// Aligned counts clocks present in both series.
	Aligned int
	// GoldenOnly/CandidateOnly count clocks present in exactly one series;
	// the first few are retained for the report.
	GoldenOnly, CandidateOnly         int
	GoldenOnlyHead, CandidateOnlyHead []uint64
	Columns                           []ColumnReport
}

const onlyHeadMax = 5

// Divergent reports whether any compared column violated its tolerance,
// any compared column was missing from one series, or the clock grids
// disagree.
func (r *Report) Divergent() bool {
	if r.GoldenOnly > 0 || r.CandidateOnly > 0 {
		return true
	}
	for _, c := range r.Columns {
		if c.Violations > 0 || c.MissingGolden || c.MissingCandidate {
			return true
		}
	}
	return false
}

// FirstDivergence returns the earliest out-of-tolerance point across all
// columns (ties broken by column order), or nil when none.
func (r *Report) FirstDivergence() *PointDiff {
	var first *PointDiff
	for _, c := range r.Columns {
		if c.First != nil && (first == nil || c.First.Clock < first.Clock) {
			first = c.First
		}
	}
	return first
}

// Compare aligns the two series on the virtual clock and compares every
// column in tols (nil selects DefaultTolerances) point by point. Columns
// are reported in ComparedColumns order, then any extra tols keys sorted.
func Compare(golden, candidate *Series, tols map[string]Tolerance) *Report {
	if tols == nil {
		tols = DefaultTolerances()
	}
	r := &Report{}

	// Clock alignment: two-pointer walk over the (strictly ascending)
	// clock grids. gi/ci index aligned row pairs for the column pass.
	var alignedG, alignedC []int
	gi, ci := 0, 0
	for gi < len(golden.Clocks) && ci < len(candidate.Clocks) {
		gc, cc := golden.Clocks[gi], candidate.Clocks[ci]
		switch {
		case gc == cc:
			alignedG = append(alignedG, gi)
			alignedC = append(alignedC, ci)
			gi++
			ci++
		case gc < cc:
			if r.GoldenOnly < onlyHeadMax {
				r.GoldenOnlyHead = append(r.GoldenOnlyHead, gc)
			}
			r.GoldenOnly++
			gi++
		default:
			if r.CandidateOnly < onlyHeadMax {
				r.CandidateOnlyHead = append(r.CandidateOnlyHead, cc)
			}
			r.CandidateOnly++
			ci++
		}
	}
	for ; gi < len(golden.Clocks); gi++ {
		if r.GoldenOnly < onlyHeadMax {
			r.GoldenOnlyHead = append(r.GoldenOnlyHead, golden.Clocks[gi])
		}
		r.GoldenOnly++
	}
	for ; ci < len(candidate.Clocks); ci++ {
		if r.CandidateOnly < onlyHeadMax {
			r.CandidateOnlyHead = append(r.CandidateOnlyHead, candidate.Clocks[ci])
		}
		r.CandidateOnly++
	}
	r.Aligned = len(alignedG)

	for _, col := range orderedColumns(tols) {
		tol := tols[col]
		cr := ColumnReport{Column: col, Tol: tol}
		gv, cv := golden.Column(col), candidate.Column(col)
		cr.MissingGolden, cr.MissingCandidate = gv == nil, cv == nil
		if gv != nil && cv != nil {
			for k := range alignedG {
				g, c := gv[alignedG[k]], cv[alignedC[k]]
				d := math.Abs(g - c)
				gn, cn := math.IsNaN(g), math.IsNaN(c)
				if gn != cn {
					d = math.Inf(1) // presence mismatch
				} else if gn {
					d = 0 // both absent: agree
				}
				pd := PointDiff{Clock: golden.Clocks[alignedG[k]], Column: col, Golden: g, Candidate: c, Diff: d}
				cr.Compared++
				if d > cr.Max.Diff || cr.Compared == 1 {
					cr.Max = pd
				}
				if !tol.within(g, c) {
					cr.Violations++
					if cr.First == nil {
						first := pd
						cr.First = &first
					}
				}
			}
		}
		r.Columns = append(r.Columns, cr)
	}
	return r
}

// orderedColumns lists tols keys in ComparedColumns order first, then any
// extras sorted, so reports are stable.
func orderedColumns(tols map[string]Tolerance) []string {
	var out []string
	seen := make(map[string]bool, len(tols))
	for _, c := range ComparedColumns {
		if _, ok := tols[c]; ok {
			out = append(out, c)
			seen[c] = true
		}
	}
	var extra []string
	for c := range tols {
		if !seen[c] {
			extra = append(extra, c)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// fmtVal renders a point value; NaN (an empty CSV cell) prints as "-".
func fmtVal(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// String renders the report as aligned human-readable text: the per-column
// verdicts with max deviation, then the overall first divergence, if any.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "golden-curve diff: %s vs %s\n", r.GoldenLabel, r.CandidateLabel)
	fmt.Fprintf(&b, "  aligned %d samples", r.Aligned)
	if r.GoldenOnly > 0 || r.CandidateOnly > 0 {
		fmt.Fprintf(&b, "; CLOCK GRID MISMATCH: %d golden-only, %d candidate-only clocks",
			r.GoldenOnly, r.CandidateOnly)
		if len(r.GoldenOnlyHead) > 0 {
			fmt.Fprintf(&b, " (golden-only head: %v)", r.GoldenOnlyHead)
		}
		if len(r.CandidateOnlyHead) > 0 {
			fmt.Fprintf(&b, " (candidate-only head: %v)", r.CandidateOnlyHead)
		}
	}
	b.WriteString("\n")
	for _, c := range r.Columns {
		fmt.Fprintf(&b, "  %-12s", c.Column)
		switch {
		case c.MissingGolden && c.MissingCandidate:
			b.WriteString(" MISSING from both series\n")
			continue
		case c.MissingGolden:
			b.WriteString(" MISSING from golden series\n")
			continue
		case c.MissingCandidate:
			b.WriteString(" MISSING from candidate series\n")
			continue
		}
		fmt.Fprintf(&b, " compared %d", c.Compared)
		if c.Compared > 0 {
			fmt.Fprintf(&b, "  max |Δ| %g @clock %d", c.Max.Diff, c.Max.Clock)
		}
		if c.Violations > 0 {
			fmt.Fprintf(&b, "  DIVERGED at %d points, first @clock %d: golden %s candidate %s (tol %s)",
				c.Violations, c.First.Clock, fmtVal(c.First.Golden), fmtVal(c.First.Candidate), c.Tol)
		} else {
			fmt.Fprintf(&b, "  within tol (%s)", c.Tol)
		}
		b.WriteString("\n")
	}
	if first := r.FirstDivergence(); first != nil {
		fmt.Fprintf(&b, "  FIRST DIVERGENCE @clock %d in %s: golden %s, candidate %s, |Δ| %g\n",
			first.Clock, first.Column, fmtVal(first.Golden), fmtVal(first.Candidate), first.Diff)
	}
	return b.String()
}

// CompareFiles loads and compares two sample CSV files with the given
// tolerances (nil selects defaults), labelling the report with the paths.
func CompareFiles(goldenPath, candidatePath string, tols map[string]Tolerance) (*Report, error) {
	g, err := LoadSeries(goldenPath)
	if err != nil {
		return nil, err
	}
	c, err := LoadSeries(candidatePath)
	if err != nil {
		return nil, err
	}
	r := Compare(g, c, tols)
	r.GoldenLabel, r.CandidateLabel = goldenPath, candidatePath
	return r, nil
}
