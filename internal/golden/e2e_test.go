package golden_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"github.com/phftl/phftl/internal/core"
	"github.com/phftl/phftl/internal/golden"
	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/workload"
)

// runSeries replays dw drive writes of profile id on the instance and
// returns the sample series round-tripped through the CSV sink — exactly
// what a golden baseline file contains.
func runSeries(t *testing.T, in *sim.Instance, id string, dw int) *golden.Series {
	t.Helper()
	p, ok := workload.ProfileByID(id)
	if !ok {
		t.Fatalf("unknown profile %s", id)
	}
	sim.Observe(in, sim.ObserveConfig{})
	if _, err := sim.RunOn(in, p, dw); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteSamplesCSV(&buf, in.Obs.Sampler.Series()); err != nil {
		t.Fatal(err)
	}
	s, err := golden.ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildPHFTL(t *testing.T, id, policy string) *sim.Instance {
	t.Helper()
	p, _ := workload.ProfileByID(id)
	geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
	in, err := sim.BuildPHFTLWithPolicy(geo, core.DefaultOptions(), policy)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// The harness's foundational property: a same-binary replay reproduces the
// sample curve exactly, so comparing a fresh run against itself (two
// independent instances, separate generators) yields zero divergence. If
// this breaks, every golden baseline becomes noise.
func TestSelfCompareZeroDiff(t *testing.T) {
	const id, dw = "#223", 1
	a := runSeries(t, buildPHFTL(t, id, "adjusted"), id, dw)
	b := runSeries(t, buildPHFTL(t, id, "adjusted"), id, dw)
	if a.Len() == 0 {
		t.Fatal("no samples collected")
	}
	r := golden.Compare(a, b, nil)
	if r.Divergent() {
		t.Fatalf("two identical replays diverged — replay is not deterministic:\n%s", r)
	}
	for _, c := range r.Columns {
		if c.Compared != a.Len() {
			t.Errorf("column %s compared %d of %d samples", c.Column, c.Compared, a.Len())
		}
		if c.Max.Diff != 0 {
			t.Errorf("column %s max |Δ| %g, want exact reproduction", c.Column, c.Max.Diff)
		}
	}
}

// Perturbing the GC victim policy (AdjustedGreedy → plain Greedy) changes
// which superblocks are collected and therefore the interval-WA trajectory;
// the differ must flag it with a first-divergence point even when end-of-run
// scalars move little. This is the regression the golden harness exists to
// catch. Several drive writes are needed: early in a run the spare pool is
// still draining and both policies pick the same (fully- or near-fully
// invalid) victims, so the WA curves only separate once steady-state GC
// pressure forces genuinely different victim choices (#326 at 4 drive
// writes is the smallest probed trace×depth where interval_wa itself
// diverges, not just the metadata-cache trajectory).
func TestGCPolicyPerturbationFlagged(t *testing.T) {
	const id, dw = "#326", 4
	base := runSeries(t, buildPHFTL(t, id, "adjusted"), id, dw)
	pert := runSeries(t, buildPHFTL(t, id, "greedy"), id, dw)
	r := golden.Compare(base, pert, nil)
	if !r.Divergent() {
		t.Fatalf("GC victim-policy perturbation was not flagged:\n%s", r)
	}
	byName := map[string]golden.ColumnReport{}
	for _, c := range r.Columns {
		byName[c.Column] = c
	}
	if iw := byName["interval_wa"]; iw.Violations == 0 {
		t.Errorf("interval_wa curve did not diverge under a different victim policy:\n%s", r)
	}
	if first := r.FirstDivergence(); first == nil {
		t.Error("no first-divergence point reported")
	} else if first.Clock == 0 {
		t.Errorf("first divergence at clock 0: %+v", first)
	}
}

// historicalColumns is the CSV header as it stood before the wear PR added
// wear_skew/wear_cov: baselines of that vintage survive in the wild, so new
// columns must only ever be appended after these and the differ must keep an
// old-header baseline green against a new-header replay.
var historicalColumns = []string{
	"interval_wa", "cum_wa", "free_sb", "threshold", "cache_hit",
	"queue_depth", "lat_p50_ms", "lat_p99_ms", "open_fill_mean",
}

// historicalFields is the per-row CSV field count of that vintage: the
// clock column plus the value columns above.
const historicalFields = 10

// Additive-columns compatibility pin: a baseline recorded before the
// wear_skew/wear_cov columns existed has a shorter header than a fresh
// replay, and the compared-column mechanism must keep such a pair green —
// old baselines stay valid because new columns are appended at the end of
// the row and only ComparedColumns are examined. The legacy-vintage file is
// derived from the checked-in baseline by truncating every row to the
// historical header (values are identical by construction, as they were for
// real pre-wear baselines: the wear PR changed no sampled behavior). If
// this test fails, either a new column landed in the middle of the row
// (breaking historical positions) or the differ started comparing columns
// the old baselines do not carry.
func TestGoldenBaselineToleratesAdditiveColumns(t *testing.T) {
	raw, err := os.ReadFile("../../testdata/golden/52_PHFTL.csv")
	if err != nil {
		t.Fatal(err)
	}
	current, err := golden.ReadSeries(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"wear_skew", "wear_cov"} {
		if current.Column(col) == nil {
			t.Fatalf("checked-in baseline is missing the %s column", col)
		}
	}
	// Historical positions must not move: the current header must be the
	// pre-wear header plus appended columns.
	if len(current.Columns) < len(historicalColumns) {
		t.Fatalf("current header %v shorter than the historical one %v", current.Columns, historicalColumns)
	}
	for i, col := range historicalColumns {
		if current.Columns[i] != col {
			t.Fatalf("column %d moved: historical %q, current %q — historical positions must not change", i, col, current.Columns[i])
		}
	}

	// Truncate every row to the historical column count to reconstruct a
	// pre-wear-vintage baseline file.
	var legacy bytes.Buffer
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		fields := strings.Split(line, ",")
		if len(fields) < historicalFields {
			t.Fatalf("row has %d fields, want >= %d: %q", len(fields), historicalFields, line)
		}
		legacy.WriteString(strings.Join(fields[:historicalFields], ","))
		legacy.WriteByte('\n')
	}
	old, err := golden.ReadSeries(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"wear_skew", "wear_cov"} {
		if old.Column(col) != nil {
			t.Fatalf("legacy view still carries %s", col)
		}
	}

	r := golden.Compare(old, current, nil)
	if r.Divergent() {
		t.Fatalf("new-header series diverged from old-header baseline despite additive-only columns:\n%s", r)
	}
	for _, c := range r.Columns {
		if c.Compared != old.Len() {
			t.Errorf("column %s compared %d of %d samples", c.Column, c.Compared, old.Len())
		}
	}
}
