package golden_test

import (
	"bytes"
	"testing"

	"github.com/phftl/phftl/internal/core"
	"github.com/phftl/phftl/internal/golden"
	"github.com/phftl/phftl/internal/obs"
	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/workload"
)

// runSeries replays dw drive writes of profile id on the instance and
// returns the sample series round-tripped through the CSV sink — exactly
// what a golden baseline file contains.
func runSeries(t *testing.T, in *sim.Instance, id string, dw int) *golden.Series {
	t.Helper()
	p, ok := workload.ProfileByID(id)
	if !ok {
		t.Fatalf("unknown profile %s", id)
	}
	sim.Observe(in, sim.ObserveConfig{})
	if _, err := sim.RunOn(in, p, dw); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteSamplesCSV(&buf, in.Obs.Sampler.Series()); err != nil {
		t.Fatal(err)
	}
	s, err := golden.ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildPHFTL(t *testing.T, id, policy string) *sim.Instance {
	t.Helper()
	p, _ := workload.ProfileByID(id)
	geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
	in, err := sim.BuildPHFTLWithPolicy(geo, core.DefaultOptions(), policy)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// The harness's foundational property: a same-binary replay reproduces the
// sample curve exactly, so comparing a fresh run against itself (two
// independent instances, separate generators) yields zero divergence. If
// this breaks, every golden baseline becomes noise.
func TestSelfCompareZeroDiff(t *testing.T) {
	const id, dw = "#223", 1
	a := runSeries(t, buildPHFTL(t, id, "adjusted"), id, dw)
	b := runSeries(t, buildPHFTL(t, id, "adjusted"), id, dw)
	if a.Len() == 0 {
		t.Fatal("no samples collected")
	}
	r := golden.Compare(a, b, nil)
	if r.Divergent() {
		t.Fatalf("two identical replays diverged — replay is not deterministic:\n%s", r)
	}
	for _, c := range r.Columns {
		if c.Compared != a.Len() {
			t.Errorf("column %s compared %d of %d samples", c.Column, c.Compared, a.Len())
		}
		if c.Max.Diff != 0 {
			t.Errorf("column %s max |Δ| %g, want exact reproduction", c.Column, c.Max.Diff)
		}
	}
}

// Perturbing the GC victim policy (AdjustedGreedy → plain Greedy) changes
// which superblocks are collected and therefore the interval-WA trajectory;
// the differ must flag it with a first-divergence point even when end-of-run
// scalars move little. This is the regression the golden harness exists to
// catch. Several drive writes are needed: early in a run the spare pool is
// still draining and both policies pick the same (fully- or near-fully
// invalid) victims, so the WA curves only separate once steady-state GC
// pressure forces genuinely different victim choices (#326 at 4 drive
// writes is the smallest probed trace×depth where interval_wa itself
// diverges, not just the metadata-cache trajectory).
func TestGCPolicyPerturbationFlagged(t *testing.T) {
	const id, dw = "#326", 4
	base := runSeries(t, buildPHFTL(t, id, "adjusted"), id, dw)
	pert := runSeries(t, buildPHFTL(t, id, "greedy"), id, dw)
	r := golden.Compare(base, pert, nil)
	if !r.Divergent() {
		t.Fatalf("GC victim-policy perturbation was not flagged:\n%s", r)
	}
	byName := map[string]golden.ColumnReport{}
	for _, c := range r.Columns {
		byName[c.Column] = c
	}
	if iw := byName["interval_wa"]; iw.Violations == 0 {
		t.Errorf("interval_wa curve did not diverge under a different victim policy:\n%s", r)
	}
	if first := r.FirstDivergence(); first == nil {
		t.Error("no first-divergence point reported")
	} else if first.Clock == 0 {
		t.Errorf("first divergence at clock 0: %+v", first)
	}
}

// Additive-columns compatibility pin: the checked-in baselines predate the
// wear_skew/wear_cov CSV columns, while a fresh replay now emits them. The
// compared-column mechanism must keep such a pair green — old baselines stay
// valid because new columns are appended at the end of the row and only
// ComparedColumns are examined. If this test fails, either a new column
// landed in the middle of the row (breaking historical positions) or the
// differ started comparing columns the baselines do not carry.
func TestGoldenBaselineToleratesAdditiveColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a full golden cell")
	}
	const id, dw = "#52", 4 // mirrors make golden: GOLDEN_TRACES cell at GOLDEN_DW
	baseline, err := golden.LoadSeries("../../testdata/golden/52_PHFTL.csv")
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"wear_skew", "wear_cov"} {
		if baseline.Column(col) != nil {
			t.Fatalf("baseline already carries %s — regenerate-proof pin lost; rewrite this test against a pre-wear baseline fixture", col)
		}
	}

	p, _ := workload.ProfileByID(id)
	geo := sim.GeometryForDrive(p.ExportedPages, p.PageSize)
	in, err := sim.Build(sim.SchemePHFTL, geo, nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh := runSeries(t, in, id, dw)
	for _, col := range []string{"wear_skew", "wear_cov"} {
		if fresh.Column(col) == nil {
			t.Fatalf("fresh replay is missing the %s column", col)
		}
	}
	// The new columns must sit strictly after every baseline column.
	if n := len(baseline.Columns); len(fresh.Columns) < n+2 {
		t.Fatalf("fresh header %v is not baseline header + appended columns %v", fresh.Columns, baseline.Columns)
	}
	for i, col := range baseline.Columns {
		if fresh.Columns[i] != col {
			t.Fatalf("column %d moved: baseline %q, fresh %q — historical positions must not change", i, col, fresh.Columns[i])
		}
	}

	r := golden.Compare(baseline, fresh, nil)
	if r.Divergent() {
		t.Fatalf("fresh replay diverged from checked-in baseline despite additive-only columns:\n%s", r)
	}
}
