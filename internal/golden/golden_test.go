package golden

import (
	"math"
	"strings"
	"testing"
)

const header = "clock,interval_wa,cum_wa,free_sb,threshold,cache_hit,queue_depth,lat_p50_ms,lat_p99_ms,open_fill_mean\n"

// csvOf builds a sample CSV from rows of raw CSV text (no clock ordering
// changes, exactly as the sink would emit them).
func csvOf(rows ...string) string {
	return header + strings.Join(rows, "\n") + "\n"
}

func mustRead(t *testing.T, text string) *Series {
	t.Helper()
	s, err := ReadSeries(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReadSeries(t *testing.T) {
	s := mustRead(t, csvOf(
		"512,0.100000,0.050000,12,487.000000,0.960000,0.00,,,0.4000",
		"1024,0.200000,0.100000,11,487.500000,,0.00,,,0.5000",
	))
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Clocks[0] != 512 || s.Clocks[1] != 1024 {
		t.Errorf("Clocks = %v", s.Clocks)
	}
	if got := s.Column("interval_wa"); got[0] != 0.1 || got[1] != 0.2 {
		t.Errorf("interval_wa = %v", got)
	}
	if got := s.Column("threshold"); got[1] != 487.5 {
		t.Errorf("threshold = %v", got)
	}
	// Empty cells (cache_hit row 2, latency columns) parse as NaN.
	if got := s.Column("cache_hit"); !math.IsNaN(got[1]) || got[0] != 0.96 {
		t.Errorf("cache_hit = %v", got)
	}
	if got := s.Column("lat_p50_ms"); !math.IsNaN(got[0]) {
		t.Errorf("lat_p50_ms = %v", got)
	}
	if s.Column("no_such_column") != nil {
		t.Error("unknown column should be nil")
	}
}

func TestReadSeriesErrors(t *testing.T) {
	cases := []struct {
		name, text, wantSub string
	}{
		{"empty", "", "empty CSV"},
		{"bad header", "time,interval_wa\n1,2\n", `first header column is "time"`},
		{"duplicate column", "clock,wa,wa\n1,2,3\n", "duplicate column"},
		{"non-ascending clock", "clock,x\n100,1\n100,2\n", "not ascending"},
		{"bad clock", "clock,x\nabc,1\n", "bad clock"},
		{"bad value", "clock,x\n1,zap\n", "bad value"},
		{"field count", "clock,x\n1,2,3\n", ""}, // encoding/csv flags the record
	}
	for _, c := range cases {
		_, err := ReadSeries(strings.NewReader(c.text))
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.wantSub)
		}
	}
}

func TestCompareIdentical(t *testing.T) {
	text := csvOf(
		"512,0.100000,0.050000,12,487.000000,0.960000,0.00,,,0.4000",
		"1024,0.200000,0.100000,11,487.500000,0.970000,0.00,,,0.5000",
	)
	r := Compare(mustRead(t, text), mustRead(t, text), nil)
	if r.Divergent() {
		t.Fatalf("self-compare diverged:\n%s", r)
	}
	if r.Aligned != 2 || r.GoldenOnly != 0 || r.CandidateOnly != 0 {
		t.Errorf("alignment: %+v", r)
	}
	if r.FirstDivergence() != nil {
		t.Error("FirstDivergence on identical series")
	}
	for _, c := range r.Columns {
		if c.Compared != 2 || c.Violations != 0 || c.Max.Diff != 0 {
			t.Errorf("column %s: %+v", c.Column, c)
		}
	}
}

func TestCompareDivergence(t *testing.T) {
	g := mustRead(t, csvOf(
		"512,0.100000,0.050000,12,487.000000,0.960000,0.00,,,0.4000",
		"1024,0.200000,0.100000,11,487.000000,0.970000,0.00,,,0.5000",
		"1536,0.300000,0.150000,10,487.000000,0.980000,0.00,,,0.6000",
	))
	c := mustRead(t, csvOf(
		"512,0.100000,0.050000,12,487.000000,0.960000,0.00,,,0.4000",
		"1024,0.250000,0.100000,11,487.000000,0.970000,0.00,,,0.5000", // interval_wa +0.05
		"1536,0.300000,0.150000,10,487.000000,0.880000,0.00,,,0.6000", // cache_hit −0.1
	))
	r := Compare(g, c, nil)
	if !r.Divergent() {
		t.Fatalf("perturbed series did not diverge:\n%s", r)
	}
	first := r.FirstDivergence()
	if first == nil || first.Clock != 1024 || first.Column != "interval_wa" {
		t.Fatalf("FirstDivergence = %+v, want interval_wa @1024", first)
	}
	byName := map[string]ColumnReport{}
	for _, col := range r.Columns {
		byName[col.Column] = col
	}
	iw := byName["interval_wa"]
	if iw.Violations != 1 || iw.First == nil || iw.First.Clock != 1024 {
		t.Errorf("interval_wa report: %+v", iw)
	}
	if math.Abs(iw.Max.Diff-0.05) > 1e-12 || iw.Max.Clock != 1024 {
		t.Errorf("interval_wa max: %+v", iw.Max)
	}
	ch := byName["cache_hit"]
	if ch.Violations != 1 || ch.First == nil || ch.First.Clock != 1536 {
		t.Errorf("cache_hit report: %+v", ch)
	}
	if cw := byName["cum_wa"]; cw.Violations != 0 {
		t.Errorf("cum_wa should be clean: %+v", cw)
	}
	out := r.String()
	for _, want := range []string{"FIRST DIVERGENCE @clock 1024 in interval_wa", "DIVERGED at 1 points"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	g := mustRead(t, "clock,x\n100,1.000000\n")
	within := mustRead(t, "clock,x\n100,1.000001\n") // exactly Abs away (1e-6, before the Rel term)
	beyond := mustRead(t, "clock,x\n100,1.000010\n")
	tols := map[string]Tolerance{"x": {Abs: 1e-6, Rel: 0}}
	if r := Compare(g, within, tols); r.Divergent() {
		t.Errorf("|Δ| == Abs must be within tolerance:\n%s", r)
	}
	if r := Compare(g, beyond, tols); !r.Divergent() {
		t.Errorf("|Δ| = 10×Abs must diverge:\n%s", r)
	}
	// The relative term scales with magnitude: a 0.4 gap at value ~5000
	// passes rel 1e-4 (tol 0.5) but a 0.6 gap does not.
	g2 := mustRead(t, "clock,x\n100,5000.0\n")
	pass := mustRead(t, "clock,x\n100,5000.4\n")
	fail := mustRead(t, "clock,x\n100,5000.6\n")
	rtols := map[string]Tolerance{"x": {Abs: 0, Rel: 1e-4}}
	if r := Compare(g2, pass, rtols); r.Divergent() {
		t.Errorf("within relative tolerance diverged:\n%s", r)
	}
	if r := Compare(g2, fail, rtols); !r.Divergent() {
		t.Errorf("beyond relative tolerance passed:\n%s", r)
	}
}

// A gauge present in one series but empty in the other is a divergence (the
// schemes disagree about whether the gauge applies); empty-vs-empty agrees.
func TestComparePresenceMismatch(t *testing.T) {
	g := mustRead(t, "clock,cache_hit\n100,\n200,\n")
	same := mustRead(t, "clock,cache_hit\n100,\n200,\n")
	tols := map[string]Tolerance{"cache_hit": {Abs: 1e-6, Rel: 0}}
	if r := Compare(g, same, tols); r.Divergent() {
		t.Errorf("empty-vs-empty diverged:\n%s", r)
	}
	c := mustRead(t, "clock,cache_hit\n100,\n200,0.5\n")
	r := Compare(g, c, tols)
	if !r.Divergent() {
		t.Fatalf("presence mismatch not flagged:\n%s", r)
	}
	first := r.FirstDivergence()
	if first == nil || first.Clock != 200 || !math.IsInf(first.Diff, 1) {
		t.Errorf("FirstDivergence = %+v, want +Inf diff @200", first)
	}
}

func TestCompareClockGridMismatch(t *testing.T) {
	g := mustRead(t, "clock,x\n100,1\n200,2\n300,3\n")
	c := mustRead(t, "clock,x\n100,1\n250,2\n300,3\n")
	r := Compare(g, c, map[string]Tolerance{"x": {Abs: 1, Rel: 0}})
	if !r.Divergent() {
		t.Fatalf("grid mismatch not flagged:\n%s", r)
	}
	if r.Aligned != 2 || r.GoldenOnly != 1 || r.CandidateOnly != 1 {
		t.Errorf("alignment: aligned %d goldenOnly %d candidateOnly %d", r.Aligned, r.GoldenOnly, r.CandidateOnly)
	}
	if len(r.GoldenOnlyHead) != 1 || r.GoldenOnlyHead[0] != 200 {
		t.Errorf("GoldenOnlyHead = %v", r.GoldenOnlyHead)
	}
	if !strings.Contains(r.String(), "CLOCK GRID MISMATCH") {
		t.Errorf("report missing grid mismatch:\n%s", r)
	}
}

func TestCompareMissingColumn(t *testing.T) {
	g := mustRead(t, "clock,interval_wa,threshold\n100,0.1,487\n")
	c := mustRead(t, "clock,interval_wa\n100,0.1\n")
	tols := map[string]Tolerance{"interval_wa": {Abs: 1e-6}, "threshold": {Abs: 1e-6}}
	r := Compare(g, c, tols)
	if !r.Divergent() {
		t.Fatalf("missing column not flagged:\n%s", r)
	}
	var thr *ColumnReport
	for i := range r.Columns {
		if r.Columns[i].Column == "threshold" {
			thr = &r.Columns[i]
		}
	}
	if thr == nil || !thr.MissingCandidate || thr.MissingGolden {
		t.Errorf("threshold report: %+v", thr)
	}
	if !strings.Contains(r.String(), "MISSING from candidate") {
		t.Errorf("report missing MISSING marker:\n%s", r)
	}
}

// DefaultTolerances must cover exactly the documented compared columns so
// the harness and its docs cannot drift apart silently.
func TestDefaultTolerancesCoverComparedColumns(t *testing.T) {
	tols := DefaultTolerances()
	if len(tols) != len(ComparedColumns) {
		t.Fatalf("DefaultTolerances has %d entries, ComparedColumns %d", len(tols), len(ComparedColumns))
	}
	for _, c := range ComparedColumns {
		tol, ok := tols[c]
		if !ok {
			t.Errorf("no tolerance for %s", c)
		}
		if tol.Abs <= 0 || tol.Abs > 1e-5 {
			t.Errorf("%s: Abs = %g outside the CSV-quantum regime", c, tol.Abs)
		}
	}
}
