// Package par provides a small deterministic fork-join worker pool for
// intra-cell parallelism. A Pool owns lanes-1 persistent helper goroutines;
// Run executes one function across all lanes with the caller participating as
// lane 0 and returns only when every lane has finished, so the caller's
// single-threaded invariants hold again at return.
//
// Determinism is the design constraint, not a side effect: callers partition
// work by a fixed structural key (die number, shard index) — never by "next
// free worker" — and apply results in a fixed merge order after Run returns.
// The pool itself allocates nothing per Run, so parallel phases preserve the
// steady-state zero-allocation invariant of the replay hot path.
package par

import "sync"

// Pool is a fixed-size fork-join worker pool. A nil *Pool is valid and runs
// everything serially on the caller, which keeps "parallelism off" the
// zero-cost default.
type Pool struct {
	lanes int
	fn    func(lane int)
	gate  chan int
	done  sync.WaitGroup
}

// New creates a pool with the given number of lanes (caller + lanes-1 helper
// goroutines). lanes <= 1 returns nil: the serial pool.
func New(lanes int) *Pool {
	if lanes <= 1 {
		return nil
	}
	p := &Pool{lanes: lanes, gate: make(chan int)}
	for i := 1; i < lanes; i++ {
		go p.helper()
	}
	return p
}

// Lanes returns the pool's lane count (1 for a nil pool).
func (p *Pool) Lanes() int {
	if p == nil {
		return 1
	}
	return p.lanes
}

func (p *Pool) helper() {
	for lane := range p.gate {
		p.fn(lane)
		p.done.Done()
	}
}

// Run executes fn(lane) for every lane in [0, Lanes()) and returns when all
// are done. The caller runs lane 0; helpers run the rest concurrently. fn
// must confine its writes to lane-indexed state — Run provides the
// happens-before edges at fork and join, nothing in between. On a nil pool
// Run degenerates to fn(0).
//
// To keep Run allocation-free, pass a pre-bound function value (a field
// holding a method value), not a fresh closure.
func (p *Pool) Run(fn func(lane int)) {
	if p == nil {
		fn(0)
		return
	}
	p.fn = fn
	p.done.Add(p.lanes - 1)
	for i := 1; i < p.lanes; i++ {
		p.gate <- i
	}
	fn(0)
	p.done.Wait()
}

// Close stops the helper goroutines. The pool must not be used after Close.
// Close on a nil pool is a no-op.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	close(p.gate)
}
