package par

import (
	"sync/atomic"
	"testing"
)

func TestNilPoolRunsSerially(t *testing.T) {
	var p *Pool
	if got := p.Lanes(); got != 1 {
		t.Fatalf("nil pool lanes = %d, want 1", got)
	}
	ran := 0
	p.Run(func(lane int) {
		if lane != 0 {
			t.Fatalf("nil pool ran lane %d", lane)
		}
		ran++
	})
	if ran != 1 {
		t.Fatalf("nil pool ran fn %d times, want 1", ran)
	}
	p.Close() // no-op
}

func TestNewCollapsesToNilBelowTwoLanes(t *testing.T) {
	for _, lanes := range []int{-1, 0, 1} {
		if p := New(lanes); p != nil {
			t.Fatalf("New(%d) = %v, want nil", lanes, p)
		}
	}
}

// TestRunCoversEveryLaneExactlyOnce drives many Run rounds and checks each
// lane fires exactly once per round, with all writes visible at join.
func TestRunCoversEveryLaneExactlyOnce(t *testing.T) {
	for _, lanes := range []int{2, 3, 4, 8} {
		p := New(lanes)
		hits := make([]int, lanes)
		for round := 0; round < 200; round++ {
			p.Run(func(lane int) { hits[lane]++ })
			for lane, h := range hits {
				if h != round+1 {
					t.Fatalf("lanes=%d round %d: lane %d ran %d times", lanes, round, lane, h)
				}
			}
		}
		p.Close()
	}
}

// TestRunIsDeterministicUnderFixedPartition simulates the pool's intended
// use: lane-indexed accumulation merged in fixed lane order must give the
// same result at any lane count.
func TestRunIsDeterministicUnderFixedPartition(t *testing.T) {
	const items = 1000
	want := 0.0
	for i := 0; i < items; i++ {
		want += float64(i) * 1.5
	}
	for _, lanes := range []int{1, 2, 4, 7} {
		p := New(lanes)
		partial := make([]float64, p.Lanes())
		p.Run(func(lane int) {
			sum := 0.0
			for i := lane; i < items; i += p.Lanes() {
				sum += float64(i) * 1.5
			}
			partial[lane] = sum
		})
		got := 0.0
		for _, s := range partial {
			got += s
		}
		if got != want {
			t.Fatalf("lanes=%d: sum %v, want %v", lanes, got, want)
		}
		p.Close()
	}
}

// TestRunZeroAllocs pins the pool's own allocation-free guarantee when fn is
// a pre-bound function value.
func TestRunZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	p := New(4)
	defer p.Close()
	var counter atomic.Int64
	var fn func(int)
	fn = func(lane int) { counter.Add(int64(lane)) }
	// Warm one round so lazy runtime state settles.
	p.Run(fn)
	if allocs := testing.AllocsPerRun(100, func() { p.Run(fn) }); allocs != 0 {
		t.Errorf("Run allocates %.2f per call, want 0", allocs)
	}
}
