// Quickstart: build a miniature PHFTL SSD, write data with hot/cold skew,
// and inspect write amplification, the learned classification threshold and
// the Page Classifier's runtime accuracy.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/phftl/phftl/internal/core"
	"github.com/phftl/phftl/internal/ftl"
	"github.com/phftl/phftl/internal/nand"
)

// drive runs the demo workload against any FTL instance.
func drive(f *ftl.FTL) error {
	exported := f.ExportedPages()
	rng := rand.New(rand.NewSource(42))
	for lpn := 0; lpn < exported; lpn++ {
		if err := f.Write(ftl.UserWrite{LPN: nand.LPN(lpn), ReqPages: 1}); err != nil {
			return err
		}
	}
	hot := exported / 100
	med := exported / 400
	h, m, cold := 0, 0, 0
	for i := 0; i < 6*exported; i++ {
		var lpn int
		switch r := rng.Float64(); {
		case r < 0.82:
			lpn = h % hot
			h++
			if rng.Float64() < 0.15 {
				h += rng.Intn(5) // disperse lifetimes as real workloads do
			}
		case r < 0.90:
			lpn = hot + m%med
			m++
		default:
			lpn = hot + med + cold%(exported-hot-med)
			cold++
		}
		if err := f.Write(ftl.UserWrite{LPN: nand.LPN(lpn), ReqPages: 1}); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	// A small virtual SSD: 4 dies, 360 superblocks of 64 pages, 16 KiB
	// pages, 7% over-provisioning (ftl.DefaultConfig inside core.Build).
	geo := nand.Geometry{PageSize: 16384, OOBSize: 64, PagesPerBlock: 16, BlocksPerDie: 360, Dies: 4}

	// Baseline for comparison: the same drive with no data separation.
	base, err := ftl.New(ftl.DefaultConfig(geo), ftl.NewBaseSeparator(), ftl.CostBenefitPolicy{})
	if err != nil {
		log.Fatal(err)
	}
	if err := drive(base); err != nil {
		log.Fatal(err)
	}

	f, phftl, err := core.Build(geo, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	exported := f.ExportedPages()
	fmt.Printf("drive: %d logical pages (%d MiB), %d superblocks\n",
		exported, int64(exported)*16384>>20, geo.Superblocks())
	if err := drive(f); err != nil {
		log.Fatal(err)
	}

	if err := phftl.Err(); err != nil {
		log.Fatal(err)
	}
	phftl.Finish(f.Clock())

	s := f.Stats()
	fmt.Printf("user writes:        %d pages\n", s.UserPageWrites)
	fmt.Printf("gc migrations:      %d pages (Base FTL on the same workload: %d)\n",
		s.GCPageWrites, base.Stats().GCPageWrites)
	fmt.Printf("write amplification %.1f%% vs Base %.1f%% — data separation cut WA by %.0f%%\n",
		s.DataWA()*100, base.Stats().DataWA()*100, (1-s.DataWA()/base.Stats().DataWA())*100)
	fmt.Println("(absolute WA is inflated at this toy scale; the relative gain is the point)")
	fmt.Printf("threshold:          %.0f page-writes (adapted over %d windows)\n",
		phftl.Threshold(), phftl.Stats().Windows)
	fmt.Printf("classifier:         %s\n", phftl.Confusion())
	fmt.Printf("metadata cache:     %.1f%% hit rate\n", phftl.MetaStats().HitRate()*100)
}
