// Tracereplay shows the external-trace path: it synthesizes a block trace,
// round-trips it through the CSV codec (the same format phftlsim -csv
// accepts, compatible with Alibaba-style 5-field rows), annotates
// ground-truth page lifetimes offline, and replays it under PHFTL.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/trace"
	"github.com/phftl/phftl/internal/workload"
)

func main() {
	profile, ok := workload.ProfileByID("#177")
	if !ok {
		log.Fatal("profile missing")
	}
	profile.ExportedPages = 4096

	// 1. Synthesize and serialize a trace.
	gen := profile.NewGenerator()
	records := gen.Records(3 * profile.ExportedPages)
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, records); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized %d requests to %d bytes of CSV\n", len(records), buf.Len())

	// 2. Parse it back (this is exactly what an external trace goes through).
	parsed, err := trace.ReadCSV(&buf)
	if err != nil {
		log.Fatal(err)
	}
	stats := trace.Summarize(parsed)
	fmt.Printf("parsed: %d writes (%d MiB), %d reads, span %d ms\n",
		stats.Writes, stats.WriteBytes>>20, stats.Reads, stats.Duration/1000)

	// 3. Offline lifetime annotation (Table I ground truth).
	ops := trace.Expand(parsed, profile.PageSize, profile.ExportedPages)
	lifetimes := trace.AnnotateLifetimes(ops)
	var finite []float64
	for _, l := range lifetimes {
		if l != trace.InfiniteLifetime {
			finite = append(finite, float64(l))
		}
	}
	sort.Float64s(finite)
	if len(finite) > 0 {
		fmt.Printf("lifetimes: %d finite samples, median %.0f, p95 %.0f page-writes\n",
			len(finite), finite[len(finite)/2], finite[len(finite)*95/100])
	}

	// 4. Replay under PHFTL.
	geo := sim.GeometryForDrive(profile.ExportedPages, profile.PageSize)
	in, err := sim.Build(sim.SchemePHFTL, geo, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := in.Replay(ops); err != nil {
		log.Fatal(err)
	}
	in.Finish()
	fmt.Printf("replayed under PHFTL: WA %.1f%%, classifier %s\n",
		in.FTL.Stats().DataWA()*100, in.PHFTL.Confusion())
}
