// Hotcold compares all four data-separation schemes (Base, 2R, SepBIT,
// PHFTL) on one hot/cold cloud-style workload — a miniature Figure 5 — and
// prints each scheme's write amplification and GC activity.
package main

import (
	"fmt"
	"log"

	"github.com/phftl/phftl/internal/sim"
	"github.com/phftl/phftl/internal/workload"
)

func main() {
	// Use the paper's trace #228 profile (a small drive with a crisp
	// periodic hot set) so the example finishes in seconds.
	profile, ok := workload.ProfileByID("#228")
	if !ok {
		log.Fatal("profile #228 missing")
	}
	const driveWrites = 5

	fmt.Printf("workload %s: %d pages, %d drive writes, %.1f%% hot set, %.0f%% sequential\n\n",
		profile.ID, profile.ExportedPages, driveWrites, profile.HotFrac*100, profile.SeqFrac*100)
	fmt.Printf("%-8s %10s %12s %12s %10s\n", "scheme", "WA", "user writes", "gc writes", "victims")
	for _, scheme := range sim.Schemes() {
		res, err := sim.RunProfile(profile, scheme, driveWrites, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %9.1f%% %12d %12d %10d\n",
			scheme, res.DataWA*100, res.FTLStats.UserPageWrites,
			res.FTLStats.GCPageWrites, res.FTLStats.GCVictims)
		if res.Confusion != nil {
			fmt.Printf("%8s classifier: %s, threshold %.0f\n", "", res.Confusion, res.Threshold)
		}
	}
	fmt.Println("\nexpected ordering (paper Fig. 5): Base > 2R > SepBIT > PHFTL")
}
