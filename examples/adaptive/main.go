// Adaptive demonstrates PHFTL's runtime adaptation (§III-B): the workload's
// hot-set update period changes abruptly mid-run, and the classification
// threshold — re-picked every write window by Algorithm 1 — follows it.
// It also prints the lifetime CDF knee of each regime (Figure 2a).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/phftl/phftl/internal/core"
	"github.com/phftl/phftl/internal/ftl"
	"github.com/phftl/phftl/internal/metrics"
	"github.com/phftl/phftl/internal/nand"
)

func main() {
	geo := nand.Geometry{PageSize: 16384, OOBSize: 64, PagesPerBlock: 16, BlocksPerDie: 360, Dies: 4}
	f, phftl, err := core.Build(geo, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	exported := f.ExportedPages()
	rng := rand.New(rand.NewSource(7))

	for lpn := 0; lpn < exported; lpn++ {
		if err := f.Write(ftl.UserWrite{LPN: nand.LPN(lpn), ReqPages: 1}); err != nil {
			log.Fatal(err)
		}
	}

	// Two regimes: a fast-cycling small hot set, then an abrupt switch to a
	// hot set 3x larger (3x longer lifetimes). Collect true lifetimes per
	// regime for the CDF knee.
	runRegime := func(name string, hot int, writes int) {
		lastSeen := make(map[int]uint64)
		var lifetimes []float64
		h := 0
		for i := 0; i < writes; i++ {
			var lpn int
			if rng.Float64() < 0.9 {
				lpn = h % hot
				h++
				if rng.Float64() < 0.15 {
					h += rng.Intn(5)
				}
			} else {
				lpn = hot + rng.Intn(exported-hot)
			}
			clock := f.Clock()
			if prev, ok := lastSeen[lpn]; ok {
				lifetimes = append(lifetimes, float64(clock-prev))
			}
			lastSeen[lpn] = clock
			if err := f.Write(ftl.UserWrite{LPN: nand.LPN(lpn), ReqPages: 1}); err != nil {
				log.Fatal(err)
			}
		}
		knee, _ := metrics.InflectionPoint(lifetimes)
		fmt.Printf("%-14s hot=%4d pages  true lifetime knee ≈ %6.0f  learned threshold = %6.0f\n",
			name, hot, knee, phftl.Threshold())
	}

	fmt.Printf("drive: %d pages, window = %d writes\n\n", exported, exported/20)
	runRegime("regime A", exported/100, 3*exported)
	runRegime("regime B", 3*exported/100, 3*exported)
	runRegime("regime A again", exported/100, 3*exported)

	if err := phftl.Err(); err != nil {
		log.Fatal(err)
	}
	phftl.Finish(f.Clock())
	st := phftl.Stats()
	fmt.Printf("\nwindows: %d, model deployments: %d, classifier: %s\n",
		st.Windows, st.Deploys, phftl.Confusion())
	fmt.Println("the learned threshold tracks each regime's lifetime knee (Algorithm 1)")
}
