module github.com/phftl/phftl

go 1.22
