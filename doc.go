// Package phftl is a from-scratch reproduction of "Learning-based Data
// Separation for Write Amplification Reduction in Solid State Drives"
// (PHFTL, DAC 2023): a flash translation layer with device-side,
// GRU-based page-lifetime prediction for data separation.
//
// The implementation lives under internal/:
//
//   - internal/nand      — NAND flash device simulator
//   - internal/ftl       — FTL framework: L2P, superblocks, GC, policies
//   - internal/ml        — GRU + BPTT, Adam, logistic regression, int8 quantization
//   - internal/core      — PHFTL itself: classifier, adaptive labeling, metadata layout
//   - internal/sepbit    — SepBIT baseline (FAST'22)
//   - internal/tworegion — 2R baseline (VLDB'20)
//   - internal/workload  — synthetic cloud-trace generators (20 profiles)
//   - internal/trace     — trace model, CSV codec, lifetime annotation
//   - internal/perfsim   — OpenSSD-class timing model (Figures 6 and 7)
//   - internal/metrics   — WA, confusion, percentiles, CDF inflection
//   - internal/sim       — experiment glue used by cmd/ and the benchmarks
//
// See README.md for the quickstart, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's evaluation
// at reduced scale; the cmd/ harnesses run them at full (scaled) size.
package phftl

// Version identifies this reproduction release.
const Version = "1.0.0"
